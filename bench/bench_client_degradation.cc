/**
 * @file
 * Client degradation bench — streams the paper's 720p60 accounting
 * operating point through scripted *device* stress (thermal soak,
 * NPU dropout, memory-pressure decode stalls, hot ambient, a mixed
 * schedule) on thermally-enabled device models, and compares the
 * deadline-watchdog degradation ladder against a ladder-disabled
 * client.
 *
 * The headline result is the thermal death spiral: without the
 * ladder, throttled NPU latency inflates per-frame energy, which
 * heats the SoC further, which throttles harder — deadline misses
 * run away. The ladder sheds NPU work (shrunken RoI, then GPU-only,
 * then frame holds), letting the device cool and recover, and asks
 * the server for bitrate_step^tier of the bitrate while degraded.
 *
 * Writes BENCH_client_degradation.json. `--smoke` runs a reduced
 * configuration for CI.
 */

#include <algorithm>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/report.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

struct DeviceCase
{
    std::string name;
    DeviceProfile profile;
};

struct StressCase
{
    std::string name;
    DeviceFaultScenario scenario;
};

struct CellResult
{
    std::string device;
    std::string scenario;
    bool ladder = false;
    int frames = 0;

    f64 p50_mtp_ms = 0.0;
    f64 p99_mtp_ms = 0.0;
    f64 miss_rate = 0.0;
    f64 bitrate_mbps = 0.0;
    DegradationStats deg;
};

f64
percentile(std::vector<f64> sorted, f64 p)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = size_t(p * f64(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

CellResult
runCell(const DeviceCase &dc, const StressCase &sc, bool ladder_on,
        int frames)
{
    SessionConfig config = accountingSessionConfig();
    config.frames = frames;
    config.device = dc.profile;
    config.device_faults = sc.scenario;
    // The target sits inside the encoder's controllable range at
    // this operating point (the QP floor is ~40 Mbit/s), so the
    // ladder's bitrate_step^tier retarget is visible in the achieved
    // rate.
    config.device_stress.enabled = true;
    config.ladder.enabled = ladder_on;
    config.target_bitrate_mbps = 60.0;
    config.resilience.aimd = false;

    SessionResult result = runSession(config);

    CellResult cell;
    cell.device = dc.name;
    cell.scenario = sc.name;
    cell.ladder = ladder_on;
    cell.frames = frames;
    cell.deg = result.degradation;

    std::vector<f64> mtp;
    size_t bytes = 0;
    i64 processed = 0;
    for (const FrameTrace &t : result.traces) {
        if (!t.dropped)
            bytes += t.encoded_bytes;
        if (!t.dropped && !t.concealed) {
            mtp.push_back(t.mtpLatencyMs());
            processed += 1;
        }
    }
    cell.p50_mtp_ms = percentile(mtp, 0.50);
    cell.p99_mtp_ms = percentile(mtp, 0.99);
    cell.miss_rate = frames > 0
                         ? f64(cell.deg.deadline_misses) / f64(frames)
                         : 0.0;
    f64 session_s = f64(frames) / 60.0;
    cell.bitrate_mbps =
        session_s > 0.0 ? f64(bytes) * 8.0 / 1e6 / session_s : 0.0;
    return cell;
}

void
writeReport(bool smoke, const std::vector<CellResult> &cells)
{
    obs::Report report("BENCH_client_degradation.json",
                       "client_degradation", smoke);
    obs::JsonWriter &w = report.json();

    w.key("sweep");
    w.beginArray();
    for (const CellResult &c : cells) {
        w.beginObject();
        w.field("device", c.device);
        w.field("scenario", c.scenario);
        w.field("ladder", c.ladder);
        w.field("frames", c.frames);
        w.field("p50_mtp_ms", c.p50_mtp_ms, 3);
        w.field("p99_mtp_ms", c.p99_mtp_ms, 3);
        w.field("deadline_misses", c.deg.deadline_misses);
        w.field("miss_rate", c.miss_rate, 4);
        w.field("step_downs", c.deg.ladder_step_downs);
        w.field("step_ups", c.deg.ladder_step_ups);
        w.field("npu_faults", c.deg.npu_faults);
        w.field("decode_stalls", c.deg.decode_stalls);
        w.field("frames_held", c.deg.frames_held);
        w.key("tier_frames");
        w.beginArray();
        for (i64 n : c.deg.tier_frames)
            w.value(n);
        w.endArray();
        w.field("final_tier", c.deg.final_tier);
        w.field("peak_temperature_c", c.deg.peak_temperature_c, 2);
        w.field("bitrate_mbps", c.bitrate_mbps, 3);
        w.endObject();
    }
    w.endArray();

    report.close();
}

std::string
tierString(const DegradationStats &deg)
{
    std::string s;
    for (int t = 0; t < DegradationLadder::kTierCount; ++t) {
        if (t)
            s += "/";
        s += std::to_string(deg.tier_frames[t]);
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    printHeader("Client degradation",
                "device stress x degradation ladder, 720p60 "
                "accounting" +
                    std::string(smoke ? " (smoke)" : ""));

    const int frames = smoke ? 180 : 600;

    std::vector<DeviceCase> devices;
    devices.push_back({"tab-s8", DeviceProfile::galaxyTabS8()});
    if (!smoke)
        devices.push_back({"pixel-7", DeviceProfile::pixel7Pro()});

    std::vector<StressCase> scenarios;
    scenarios.push_back({"clean", DeviceFaultScenario::none()});
    scenarios.push_back(
        {"thermal-soak",
         DeviceFaultScenario::thermalSoak(0, frames, 2.5)});
    scenarios.push_back(
        {"npu-dropout",
         DeviceFaultScenario::npuDropout(frames / 6, frames / 3,
                                         0.25)});
    scenarios.push_back(
        {"memory-pressure",
         DeviceFaultScenario::memoryPressure(frames / 6, frames / 3,
                                             0.3, 6.0)});
    scenarios.push_back(
        {"hot-ambient",
         DeviceFaultScenario::hotAmbient(0, frames, 12.0)});
    scenarios.push_back(
        {"mixed", DeviceFaultScenario::mixed(frames / 8, frames / 4)});

    std::vector<CellResult> cells;
    TableWriter table({"device", "scenario", "ladder", "p50 MTP",
                       "p99 MTP", "misses", "held", "tiers 0-4",
                       "peak degC", "Mbit/s"});
    for (const DeviceCase &dc : devices) {
        for (const StressCase &sc : scenarios) {
            for (bool ladder_on : {true, false}) {
                cells.push_back(runCell(dc, sc, ladder_on, frames));
                const CellResult &c = cells.back();
                table.addRow(
                    {c.device, c.scenario, c.ladder ? "on" : "off",
                     TableWriter::num(c.p50_mtp_ms, 1),
                     TableWriter::num(c.p99_mtp_ms, 1),
                     std::to_string(c.deg.deadline_misses),
                     std::to_string(c.deg.frames_held),
                     tierString(c.deg),
                     TableWriter::num(c.deg.peak_temperature_c, 1),
                     TableWriter::num(c.bitrate_mbps, 2)});
            }
        }
    }
    printTable(table);

    // The death-spiral headline: thermal soak, ladder on vs. off.
    const CellResult *soak_on = nullptr;
    const CellResult *soak_off = nullptr;
    for (const CellResult &c : cells) {
        if (c.device == devices.front().name &&
            c.scenario == "thermal-soak")
            (c.ladder ? soak_on : soak_off) = &c;
    }
    if (soak_on && soak_off) {
        std::cout << "\nthermal soak (" << devices.front().name
                  << "): ladder misses "
                  << soak_on->deg.deadline_misses << "/" << frames
                  << " (peak "
                  << TableWriter::num(soak_on->deg.peak_temperature_c,
                                      1)
                  << " degC), no-ladder misses "
                  << soak_off->deg.deadline_misses << "/" << frames
                  << " (peak "
                  << TableWriter::num(
                         soak_off->deg.peak_temperature_c, 1)
                  << " degC)\n";
        GSSR_ASSERT(soak_on->deg.deadline_misses <
                        soak_off->deg.deadline_misses,
                    "ladder must strictly reduce deadline misses "
                    "under thermal soak");
    }

    writeReport(smoke, cells);
    return 0;
}
