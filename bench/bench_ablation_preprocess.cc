/**
 * @file
 * Ablation — depth pre-processing design choices (Fig. 8): spatial
 * weighting on/off and the number of depth layers, evaluated by how
 * centre-biased and how near the selected RoI is across the games
 * (the paper's insights ① and ②: players look at the centre, and
 * the nearest detailed content matters most).
 */

#include "bench_util.hh"
#include "render/rasterizer.hh"
#include "roi/roi_detector.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

struct Variant
{
    const char *name;
    DepthPreprocessConfig config;
};

struct Outcome
{
    f64 centre_dist = 0.0; ///< mean normalized distance to centre
    f64 roi_depth = 0.0;   ///< mean depth inside the RoI
    int frames = 0;
};

} // namespace

int
main()
{
    printHeader("Ablation",
                "depth pre-processing variants across the Table I "
                "games (640x360, 150 px window)");

    std::vector<Variant> variants;
    variants.push_back({"full pipeline (paper)", {}});
    {
        DepthPreprocessConfig c;
        c.enable_spatial_weighting = false;
        variants.push_back({"no spatial weighting", c});
    }
    {
        DepthPreprocessConfig c;
        c.enable_layering = false;
        variants.push_back({"no layering/selection", c});
    }
    for (int layers : {2, 8}) {
        DepthPreprocessConfig c;
        c.depth_layers = layers;
        variants.push_back(
            {layers == 2 ? "2 depth layers" : "8 depth layers", c});
    }

    std::vector<Outcome> outcomes(variants.size());
    ServerProfile server = ServerProfile::gamingWorkstation();

    for (const GameInfo &game : tableOneGames()) {
        GameWorld world(game.id, 13);
        RenderOutput frame =
            renderScene(world.sceneAt(1.4), {640, 360});
        for (size_t v = 0; v < variants.size(); ++v) {
            RoiDetector detector(variants[v].config,
                                 RoiSearchConfig{}, server);
            RoiDetection d =
                detector.detect(frame.depth, {150, 150});
            if (!d.depth_guided)
                continue;
            f64 cx = d.roi.x + d.roi.width * 0.5;
            f64 cy = d.roi.y + d.roi.height * 0.5;
            f64 dist = std::sqrt((cx - 320) * (cx - 320) +
                                 (cy - 180) * (cy - 180)) /
                       std::sqrt(320.0 * 320.0 + 180.0 * 180.0);
            f64 mean_depth = 0.0;
            for (int y = d.roi.y; y < d.roi.bottom(); ++y)
                for (int x = d.roi.x; x < d.roi.right(); ++x)
                    mean_depth += frame.depth.at(x, y);
            mean_depth /= f64(d.roi.area());

            outcomes[v].centre_dist += dist;
            outcomes[v].roi_depth += mean_depth;
            outcomes[v].frames += 1;
        }
    }

    TableWriter table({"variant", "mean centre distance (0..1)",
                       "mean RoI depth (0=near)", "frames"});
    for (size_t v = 0; v < variants.size(); ++v) {
        int n = std::max(1, outcomes[v].frames);
        table.addRow({variants[v].name,
                      TableWriter::num(outcomes[v].centre_dist / n,
                                       3),
                      TableWriter::num(outcomes[v].roi_depth / n, 3),
                      std::to_string(outcomes[v].frames)});
    }
    printTable(table);
    std::cout
        << "\ntakeaways: (1) every variant keeps the RoI on near "
           "content; (2) the full pipeline\n(with the centre-biased "
           "layer-selection score) centres best — dropping either "
           "the\nspatial weighting or the layering lets large "
           "near-but-peripheral surfaces (ground\nstrips, side "
           "walls) pull the RoI off-centre, which is exactly the "
           "failure the\npaper's challenge ② describes.\n";
    return 0;
}
