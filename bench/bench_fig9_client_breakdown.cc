/**
 * @file
 * Fig. 9 — Frame upscaling at the client: the parallel NPU/GPU
 * split for one 720p -> 1440p frame on the Galaxy Tab S8.
 *
 * Paper anchors: 300x300 RoI on the NPU ~16.2 ms, in parallel with
 * the non-RoI bilinear upscale on the GPU ~1.4 ms; the merged frame
 * is ready within the 16.66 ms budget.
 */

#include "bench_util.hh"
#include "pipeline/client.hh"
#include "sr/interpolate.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Fig. 9",
                "client-side frame upscaling breakdown (S8 Tab, "
                "720p -> 1440p, 300x300 RoI)");

    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    DnnUpscaler dnn(std::make_shared<const CompactSrNet>(), 2);

    Rect roi{490, 210, 300, 300};
    i64 roi_macs = dnn.macs({roi.width, roi.height}, 2);
    f64 npu_ms = s8.npu.latencyMs(roi_macs, roi.area());
    i64 gpu_ops = resizeOpCount({2560, 1440}, InterpKernel::Bilinear);
    f64 gpu_ms = s8.gpu.latencyMs(gpu_ops);
    f64 merge_ms = s8.gpu.latencyMs(roi.area() * 4);
    f64 decode_ms = s8.hw_decoder.latencyMs(1280 * 720);

    TableWriter table({"step", "unit", "latency (ms)", "paper"});
    table.addRow({"hardware decode (720p)", "HW decoder",
                  TableWriter::num(decode_ms, 2), "-"});
    table.addRow({"RoI 300x300 DNN SR", "NPU",
                  TableWriter::num(npu_ms, 2), "16.2 ms"});
    table.addRow({"non-RoI bilinear (1440p)", "GPU (parallel)",
                  TableWriter::num(gpu_ms, 2), "1.4 ms"});
    table.addRow({"merge RoI into framebuffer", "GPU",
                  TableWriter::num(merge_ms, 2), "-"});
    table.addRow({"upscale stage total (parallel)", "max(NPU, GPU)",
                  TableWriter::num(std::max(npu_ms, gpu_ms), 2),
                  "~16.2 ms < 16.66 ms"});
    printTable(table);
    return 0;
}
