/**
 * @file
 * Fig. 15 / Sec. VI — the RoI-guided SR-integrated decoder
 * prototype (future work): cache the RoI-upscaled reference frame in
 * the decoder buffer and reconstruct non-reference frames inside the
 * extended decoder hardware, bypassing the NPU.
 *
 * Paper expectation: up to ~50 % additional energy savings over
 * this work, while keeping real-time throughput.
 */

#include "bench_util.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Fig. 15",
                "RoI-guided SR-integrated decoder prototype "
                "(Sec. VI future work)");

    DeviceProfile device = DeviceProfile::pixel7Pro();
    TableWriter table({"design", "processing mJ/frame",
                       "overall GOP energy (mJ)",
                       "savings vs SOTA (%)",
                       "savings vs this work (%)", "ref FPS",
                       "nonref FPS"});

    f64 nemo_overall = 0.0;
    f64 ours_overall = 0.0;
    for (DesignKind design :
         {DesignKind::Nemo, DesignKind::GameStreamSR,
          DesignKind::SrDecoder}) {
        SessionConfig config = accountingSessionConfig();
        config.game = GameId::G3_Witcher3;
        config.device = device;
        config.design = design;
        SessionResult r = runSession(config);
        f64 overall =
            r.overallClientEnergyMj(device.base_power_w);
        if (design == DesignKind::Nemo)
            nemo_overall = overall;
        if (design == DesignKind::GameStreamSR)
            ours_overall = overall;
        std::string vs_ours = "-";
        if (design == DesignKind::SrDecoder) {
            vs_ours = TableWriter::num(
                (ours_overall - overall) / ours_overall * 100.0, 1);
        }
        table.addRow(
            {designName(design),
             TableWriter::num(r.meanClientEnergyMj(), 1),
             TableWriter::num(overall, 0),
             TableWriter::num(
                 (nemo_overall - overall) / nemo_overall * 100.0, 1),
             vs_ours,
             TableWriter::num(r.outputFps(FrameType::Reference), 1),
             TableWriter::num(r.outputFps(FrameType::NonReference),
                              1)});
    }
    printTable(table);
    std::cout << "\npaper: the SR-integrated decoder is expected to "
                 "save up to ~50 % energy (vs. SOTA) by bypassing "
                 "the upscale engine on non-reference frames.\n";
    return 0;
}
