/**
 * @file
 * Table I — the ten game workloads, with the per-genre scene
 * statistics our procedural worlds reproduce: geometry complexity,
 * depth distribution (foreground fraction, near/far separation) and
 * camera motion magnitude. These statistics are what make the RoI
 * detector's job differ across genres.
 */

#include "bench_util.hh"
#include "frame/downsample.hh"
#include "render/rasterizer.hh"
#include "roi/depth_processing.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Table I", "game workloads and scene statistics");

    TableWriter table({"id", "title", "genre", "triangles",
                       "mean depth", "fg fraction (%)",
                       "camera speed (u/s)", "depth-guided"});

    for (const GameInfo &game : tableOneGames()) {
        GameWorld world(game.id, 1);
        Scene scene = world.sceneAt(1.0);
        RenderOutput frame = renderScene(scene, {320, 180});

        f64 mean_depth = 0.0;
        for (f32 d : frame.depth.plane().data())
            mean_depth += d;
        mean_depth /= f64(frame.depth.plane().sampleCount());

        DepthPreprocessResult pre =
            preprocessDepthMap(frame.depth, DepthPreprocessConfig{});

        f64 speed = (world.sceneAt(2.0).camera.position -
                     world.sceneAt(1.0).camera.position)
                        .length();

        table.addRow({game.short_name, game.title, game.genre,
                      std::to_string(scene.triangleCount()),
                      TableWriter::num(mean_depth, 3),
                      TableWriter::num(
                          pre.foreground_fraction * 100.0, 1),
                      TableWriter::num(speed, 1),
                      pre.depth_informative ? "yes" : "no"});
    }
    printTable(table);

    std::cout << "\ndegenerate perspectives (Sec. VI, not part of "
                 "Table I):\n";
    TableWriter degenerate({"id", "perspective", "depth-guided"});
    for (GameId id :
         {GameId::TopDownStrategy, GameId::SideScroller}) {
        GameWorld world(id, 1);
        RenderOutput frame =
            renderScene(world.sceneAt(1.0), {320, 180});
        DepthPreprocessResult pre =
            preprocessDepthMap(frame.depth, DepthPreprocessConfig{});
        degenerate.addRow({gameInfo(id).short_name,
                           gameInfo(id).genre,
                           pre.depth_informative
                               ? "yes"
                               : "no (centre fallback)"});
    }
    printTable(degenerate);
    return 0;
}
