/**
 * @file
 * Quantized-precision sweep (NAWQ-SR direction, DESIGN.md §14) —
 * the two halves of the precision trade on one page:
 *
 *  - Quality: the trained CompactSrNet upscales held-out renderer
 *    frames at fp32 / int16 / hybrid-int8 / int8 activation
 *    schedules (int8 weights everywhere when quantized) and reports
 *    per-precision PSNR. The hybrid schedule must land within
 *    0.5 dB of fp32 while int8-everywhere is strictly worse.
 *  - NPU accounting: the EDSR-16/64 cost model priced at each
 *    precision on an RoI-sized (300x300) and a full-frame (720p)
 *    invocation. int8 must at least halve both latency and energy
 *    vs fp32; hybrid (int16 edge + int8 body) sits between the
 *    uniform schedules.
 *
 * Writes BENCH_quant.json. `--smoke` runs a reduced configuration
 * for CI. The acceptance bars are asserted, not just printed — a
 * regression fails the bench binary itself.
 */

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "obs/report.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "sr/edsr.hh"
#include "sr/upscaler.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

constexpr Precision kPrecisions[] = {
    Precision::Fp32,
    Precision::Int16,
    Precision::HybridInt8,
    Precision::Int8,
};

struct QualityRow
{
    Precision precision = Precision::Fp32;
    f64 mean_psnr_db = 0.0;
    f64 delta_vs_fp32_db = 0.0;
    int frames = 0;
};

struct NpuRow
{
    std::string roi;
    Precision precision = Precision::Fp32;
    f64 latency_ms = 0.0;
    f64 power_w = 0.0;
    f64 energy_mj = 0.0;
    f64 latency_speedup = 1.0;
    f64 energy_reduction = 1.0;
};

/** Held-out frames: different game/seed than the trainer corpus. */
std::vector<ColorImage>
heldOutFrames(bool smoke)
{
    std::vector<ColorImage> frames;
    const Size hr{320, 192};
    GameWorld tomb(GameId::G7_TombRaider, 77);
    frames.push_back(renderScene(tomb.sceneAt(1.3), hr).color);
    frames.push_back(renderScene(tomb.sceneAt(2.6), hr).color);
    if (!smoke) {
        GameWorld forza(GameId::G10_ForzaHorizon5, 15);
        frames.push_back(renderScene(forza.sceneAt(0.9), hr).color);
        frames.push_back(renderScene(forza.sceneAt(2.2), hr).color);
    }
    return frames;
}

std::vector<QualityRow>
runQualitySweep(bool smoke)
{
    // One upscaler for the whole sweep: the quantized nets calibrate
    // on the first frame's luma, as the streaming client does.
    DnnUpscaler dnn(sharedSrNet(), 2);
    std::vector<ColorImage> frames = heldOutFrames(smoke);

    std::vector<QualityRow> rows;
    for (Precision p : kPrecisions) {
        QualityRow row;
        row.precision = p;
        row.frames = int(frames.size());
        for (const ColorImage &hr : frames) {
            ColorImage lr = boxDownsample(hr, 2);
            row.mean_psnr_db +=
                psnr(dnn.upscaleWithPrecision(lr, 2, p), hr);
        }
        row.mean_psnr_db /= f64(frames.size());
        rows.push_back(row);
    }
    for (QualityRow &row : rows)
        row.delta_vs_fp32_db = row.mean_psnr_db - rows[0].mean_psnr_db;
    return rows;
}

std::vector<NpuRow>
runNpuSweep()
{
    DnnUpscaler dnn(sharedSrNet(), 2);
    const NpuModel npu = DeviceProfile::galaxyTabS8().npu;

    std::vector<NpuRow> rows;
    for (Size roi : {Size{300, 300}, Size{1280, 720}}) {
        f64 fp32_ms = 0.0;
        f64 fp32_mj = 0.0;
        for (Precision p : kPrecisions) {
            NpuModel::InvocationCost cost =
                dnn.npuCost(npu, roi, 2, p);
            NpuRow row;
            row.roi = std::to_string(roi.width) + "x" +
                      std::to_string(roi.height);
            row.precision = p;
            row.latency_ms = cost.latency_ms;
            row.power_w = cost.power_w;
            row.energy_mj = cost.latency_ms * cost.power_w;
            if (p == Precision::Fp32) {
                fp32_ms = row.latency_ms;
                fp32_mj = row.energy_mj;
            }
            row.latency_speedup = fp32_ms / row.latency_ms;
            row.energy_reduction = fp32_mj / row.energy_mj;
            rows.push_back(row);
        }
    }
    return rows;
}

void
checkAcceptance(const std::vector<QualityRow> &quality,
                const std::vector<NpuRow> &npu)
{
    // Quality bars (ISSUE acceptance criteria).
    f64 fp32_db = 0.0, hybrid_db = 0.0, int8_db = 0.0;
    for (const QualityRow &r : quality) {
        if (r.precision == Precision::Fp32)
            fp32_db = r.mean_psnr_db;
        if (r.precision == Precision::HybridInt8)
            hybrid_db = r.mean_psnr_db;
        if (r.precision == Precision::Int8)
            int8_db = r.mean_psnr_db;
    }
    GSSR_ASSERT(hybrid_db >= fp32_db - 0.5,
                "hybrid-int8 PSNR fell more than 0.5 dB below fp32");
    GSSR_ASSERT(int8_db < hybrid_db,
                "int8-everywhere should be strictly worse than the "
                "hybrid schedule");

    // NPU bars: >= 2x latency and energy reduction at int8, on both
    // the RoI and the full-frame invocation.
    for (const NpuRow &r : npu) {
        if (r.precision != Precision::Int8)
            continue;
        GSSR_ASSERT(r.latency_speedup >= 2.0,
                    "int8 NPU latency reduction under 2x");
        GSSR_ASSERT(r.energy_reduction >= 2.0,
                    "int8 NPU energy reduction under 2x");
    }
}

void
writeReport(bool smoke, const std::vector<QualityRow> &quality,
            const std::vector<NpuRow> &npu)
{
    obs::Report report("BENCH_quant.json", "quant_precision", smoke);
    obs::JsonWriter &w = report.json();

    w.key("quality");
    w.beginArray();
    for (const QualityRow &r : quality) {
        w.beginObject();
        w.field("precision", precisionName(r.precision));
        w.field("frames", r.frames);
        w.field("mean_psnr_db", r.mean_psnr_db, 4);
        w.field("delta_vs_fp32_db", r.delta_vs_fp32_db, 4);
        w.endObject();
    }
    w.endArray();

    w.key("npu");
    w.beginArray();
    for (const NpuRow &r : npu) {
        w.beginObject();
        w.field("model", "edsr-16-64");
        w.field("roi", r.roi);
        w.field("precision", precisionName(r.precision));
        w.field("latency_ms", r.latency_ms, 4);
        w.field("power_w", r.power_w, 4);
        w.field("energy_mj", r.energy_mj, 4);
        w.field("latency_speedup_vs_fp32", r.latency_speedup, 4);
        w.field("energy_reduction_vs_fp32", r.energy_reduction, 4);
        w.endObject();
    }
    w.endArray();

    report.close();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    printHeader("Quantized precision",
                "hybrid int8/int16 SR quality + EDSR-16/64 NPU "
                "accounting" +
                    std::string(smoke ? " (smoke)" : ""));

    std::vector<QualityRow> quality = runQualitySweep(smoke);
    TableWriter qtable(
        {"precision", "frames", "PSNR dB", "vs fp32 dB"});
    for (const QualityRow &r : quality)
        qtable.addRow({precisionName(r.precision),
                       std::to_string(r.frames),
                       TableWriter::num(r.mean_psnr_db, 2),
                       TableWriter::num(r.delta_vs_fp32_db, 3)});
    printTable(qtable);

    std::vector<NpuRow> npu = runNpuSweep();
    TableWriter ntable({"roi", "precision", "latency ms", "power W",
                        "energy mJ", "speedup", "energy x"});
    for (const NpuRow &r : npu)
        ntable.addRow({r.roi, precisionName(r.precision),
                       TableWriter::num(r.latency_ms, 1),
                       TableWriter::num(r.power_w, 2),
                       TableWriter::num(r.energy_mj, 1),
                       TableWriter::num(r.latency_speedup, 2),
                       TableWriter::num(r.energy_reduction, 2)});
    printTable(ntable);

    checkAcceptance(quality, npu);
    writeReport(smoke, quality, npu);
    return 0;
}
