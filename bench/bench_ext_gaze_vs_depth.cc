/**
 * @file
 * Extension bench — Sec. III-A quantified: depth-guided RoI
 * detection (this work, runs on the server for free) vs. the
 * "direct approach" of camera-based software eye tracking on the
 * client (+2.8 W, noisy, lagged).
 *
 * Metrics per game: the fraction of frames where the player's true
 * gaze point lands inside each method's RoI window (gaze hit rate)
 * and the client-side energy overhead of each RoI source.
 */

#include "bench_util.hh"
#include "render/rasterizer.hh"
#include "roi/gaze.hh"
#include "roi/roi_detector.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Extension",
                "RoI source comparison: depth-guided (server) vs. "
                "camera eye tracking (client), 320x180, 150 px "
                "window equivalent");

    const Size frame_size{320, 180};
    const Size window{75, 75}; // 300 px at 720p scaled to 320
    const int frames = 90;     // 1.5 s of gameplay per game

    RoiDetector detector(ServerProfile::gamingWorkstation());
    CameraTrackerConfig tracker_config;

    TableWriter table({"game", "depth RoI gaze-hit (%)",
                       "camera RoI gaze-hit (%)",
                       "centre RoI gaze-hit (%)"});
    SampleStats depth_hits, camera_hits, centre_hits;

    for (const GameInfo &game : tableOneGames()) {
        GameWorld world(game.id, 6);
        GazeModel gaze(GazeModelConfig{}, frame_size);
        CameraGazeTracker tracker(tracker_config, frame_size,
                                  77 + u64(game.id));
        int depth_hit = 0, camera_hit = 0, centre_hit = 0, used = 0;
        Rect centre{(frame_size.width - window.width) / 2,
                    (frame_size.height - window.height) / 2,
                    window.width, window.height};

        for (int i = 0; i < frames; ++i) {
            RenderOutput frame =
                renderScene(world.sceneAt(i / 60.0), frame_size);
            Point true_gaze = gaze.nextGaze(frame.depth);
            tracker.observe(true_gaze);

            RoiDetection depth_roi =
                detector.detect(frame.depth, window);
            Rect camera_roi = tracker.roiFromEstimate(window);

            used += 1;
            depth_hit +=
                depth_roi.roi.contains(true_gaze.x, true_gaze.y);
            camera_hit +=
                camera_roi.contains(true_gaze.x, true_gaze.y);
            centre_hit += centre.contains(true_gaze.x, true_gaze.y);
        }
        f64 d = 100.0 * depth_hit / used;
        f64 c = 100.0 * camera_hit / used;
        f64 z = 100.0 * centre_hit / used;
        depth_hits.add(d);
        camera_hits.add(c);
        centre_hits.add(z);
        table.addRow({game.short_name, TableWriter::num(d, 1),
                      TableWriter::num(c, 1), TableWriter::num(z, 1)});
    }
    table.addRow({"MEAN", TableWriter::num(depth_hits.mean(), 1),
                  TableWriter::num(camera_hits.mean(), 1),
                  TableWriter::num(centre_hits.mean(), 1)});
    printTable(table);

    // Energy comparison.
    DeviceProfile pixel = DeviceProfile::pixel7Pro();
    CameraGazeTracker tracker(tracker_config, frame_size, 1);
    f64 frame_ms = 1000.0 / 60.0;
    std::cout << "\nclient energy overhead of the RoI source "
                 "(per frame):\n";
    TableWriter energy({"RoI source", "client mJ/frame", "notes"});
    energy.addRow({"depth-guided (this work)", "0.0",
                   "runs on the server GPU during rendering"});
    energy.addRow(
        {"camera eye tracking",
         TableWriter::num(tracker.energyMjPerFrame(frame_ms), 1),
         "+2.8 W continuous (paper's Pixel 7 Pro profiling)"});
    energy.addRow(
        {"(for scale: our whole NPU+GPU upscale)",
         TableWriter::num(
             pixel.npu.energyMj(16.4) + pixel.gpu.energyMj(1.4), 1),
         "the tracker alone would out-consume it"});
    printTable(energy);
    return 0;
}
