/**
 * @file
 * Fig. 11 — Overall client energy savings of GameStreamSR relative
 * to the SOTA for each game on both devices, over a full GOP at the
 * paper's operating point (including the constant device base power
 * over the session wall-clock).
 *
 * Paper anchors: ~26 % average savings on the S8 Tab, ~33 % on the
 * Pixel 7 Pro (the tablet's larger panel eats into the savings).
 */

#include "bench_util.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Fig. 11",
                "overall client energy savings vs. SOTA (GOP of 60, "
                "720p -> 1440p)");

    TableWriter table({"game", "S8 savings (%)", "Pixel savings (%)"});
    SampleStats s8_savings, pixel_savings;

    for (const GameInfo &game : tableOneGames()) {
        std::vector<std::string> row = {game.short_name};
        for (const DeviceProfile &device :
             {DeviceProfile::galaxyTabS8(),
              DeviceProfile::pixel7Pro()}) {
            SessionConfig config = accountingSessionConfig();
            config.game = game.id;
            config.device = device;

            config.design = DesignKind::GameStreamSR;
            f64 ours = runSession(config).overallClientEnergyMj(
                device.base_power_w);
            config.design = DesignKind::Nemo;
            f64 nemo = runSession(config).overallClientEnergyMj(
                device.base_power_w);

            f64 savings = (nemo - ours) / nemo * 100.0;
            (device.name == "galaxy-tab-s8" ? s8_savings
                                            : pixel_savings)
                .add(savings);
            row.push_back(TableWriter::num(savings, 1));
        }
        table.addRow(row);
    }
    table.addRow({"MEAN", TableWriter::num(s8_savings.mean(), 1),
                  TableWriter::num(pixel_savings.mean(), 1)});
    printTable(table);
    std::cout << "\npaper: ~26 % (S8 Tab), ~33 % (Pixel 7 Pro)\n";
    return 0;
}
