/**
 * @file
 * Resilience bench — streams the paper's operating point through
 * scripted fault scenarios (loss bursts, bandwidth collapse, RTT
 * spikes, Gilbert–Elliott burst channels) and sweeps the recovery
 * designs (no recovery, NACK + hold concealment, NACK + motion
 * extrapolation), plus an AIMD bitrate-backoff comparison on a
 * congested channel and a transient-PSNR dip/recovery curve measured
 * on the concealed output.
 *
 * Writes BENCH_resilience.json with the full sweep. `--smoke` runs a
 * reduced configuration for CI.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/report.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

struct ScenarioCase
{
    std::string name;
    ChannelConfig channel;
    FaultScenario scenario;
};

struct PolicyCase
{
    std::string name;
    bool nack;
    ConcealmentMode concealment;
};

struct SweepRow
{
    std::string scenario;
    std::string policy;
    int frames = 0;
    ResilienceStats stats;
};

/** One sweep cell: an accounting session under (scenario, policy). */
SweepRow
runCell(const ScenarioCase &sc, const PolicyCase &po, int frames)
{
    SessionConfig config = accountingSessionConfig();
    config.frames = frames;
    config.channel = sc.channel;
    config.fault_scenario = sc.scenario;
    config.resilience.nack = po.nack;
    config.resilience.concealment = po.concealment;

    SweepRow row;
    row.scenario = sc.name;
    row.policy = po.name;
    row.frames = frames;
    row.stats = runSession(config).resilience;
    return row;
}

/** AIMD on/off comparison on an overloaded channel. */
struct AimdResult
{
    i64 dropped = 0;
    i64 backoffs = 0;
    i64 tail_dropped = 0; ///< drops in the steady-state tail
    int frames = 0;
    int tail_start = 0;
};

AimdResult
runAimdCase(bool aimd_on, int frames)
{
    ChannelConfig congested = ChannelConfig::wifi();
    congested.name = "wifi-congested";
    congested.bandwidth_mbps = 3.0;
    congested.bandwidth_jitter = 0.10;
    congested.packet_loss = 0.0;

    SessionConfig config;
    config.frames = frames;
    config.lr_size = {192, 96};
    config.codec.gop_size = 6;
    config.compute_pixels = false;
    config.channel = congested;
    config.target_bitrate_mbps = 6.0;
    config.resilience.aimd = aimd_on;
    config.resilience.aimd_config.min_mbps = 0.5;
    config.resilience.aimd_config.increase_mbps_per_s = 0.5;

    SessionResult result = runSession(config);
    AimdResult out;
    out.frames = frames;
    out.tail_start = frames * 2 / 3;
    out.dropped = result.resilience.frames_dropped;
    out.backoffs = result.resilience.aimd_backoffs;
    for (size_t i = size_t(out.tail_start); i < result.traces.size(); ++i)
        out.tail_dropped += result.traces[i].dropped;
    return out;
}

void
writeReport(bool smoke, const std::vector<SweepRow> &rows,
            const AimdResult &with, const AimdResult &without,
            const SessionResult &transient)
{
    obs::Report report("BENCH_resilience.json", "resilience", smoke);
    obs::JsonWriter &w = report.json();

    w.key("sweep");
    w.beginArray();
    for (const SweepRow &r : rows) {
        const ResilienceStats &s = r.stats;
        w.beginObject();
        w.field("scenario", r.scenario);
        w.field("policy", r.policy);
        w.field("frames", r.frames);
        w.field("dropped", s.frames_dropped);
        w.field("discarded", s.frames_discarded);
        w.field("concealed", s.frames_concealed);
        w.field("nacks", s.nacks_sent);
        w.field("intra_refreshes", s.intra_refreshes);
        w.field("longest_stale_run", s.longest_stale_run);
        w.field("recovery_latency_ms_mean",
                s.recovery_latency_ms.mean(), 3);
        w.field("recovery_episodes", s.recovery_latency_ms.count());
        w.endObject();
    }
    w.endArray();

    w.key("aimd");
    w.beginObject();
    w.field("channel_mbps", 3.0, 1);
    w.field("initial_target_mbps", 6.0, 1);
    w.field("frames", with.frames);
    w.field("tail_start", with.tail_start);
    auto aimdCase = [&w](const char *key, const AimdResult &c) {
        w.key(key);
        w.beginObject();
        w.field("dropped", c.dropped);
        w.field("backoffs", c.backoffs);
        w.field("tail_dropped", c.tail_dropped);
        w.endObject();
    };
    aimdCase("with_backoff", with);
    aimdCase("without_backoff", without);
    w.endObject();

    const ResilienceStats &ts = transient.resilience;
    w.key("transient");
    w.beginObject();
    w.field("delivered_psnr_db", ts.delivered_psnr_db.mean(), 3);
    w.field("concealed_psnr_db", ts.concealed_psnr_db.mean(), 3);
    w.key("frames");
    w.beginArray();
    for (const FrameQuality &q : transient.quality)
        w.value(q.frame_index);
    w.endArray();
    w.key("psnr_db");
    w.beginArray();
    for (const FrameQuality &q : transient.quality)
        w.value(q.psnr_db, 3);
    w.endArray();
    w.key("concealed");
    w.beginArray();
    for (const FrameQuality &q : transient.quality)
        w.value(q.concealed);
    w.endArray();
    w.endObject();

    report.close();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    printHeader("Resilience",
                "fault scenarios x recovery designs, 720p60 "
                "accounting" + std::string(smoke ? " (smoke)" : ""));

    const int frames = smoke ? 120 : 300;

    std::vector<ScenarioCase> scenarios;
    scenarios.push_back({"clean", ChannelConfig::wifi(),
                         FaultScenario::none()});
    scenarios.push_back({"loss-burst", ChannelConfig::wifi(),
                         FaultScenario::lossBurst(30, 3)});
    scenarios.push_back({"bw-collapse", ChannelConfig::wifi(),
                         FaultScenario::bandwidthCollapse(60, 30, 0.10)});
    scenarios.push_back({"rtt-spike", ChannelConfig::wifi(),
                         FaultScenario::rttSpike(60, 30)});
    scenarios.push_back({"mixed", ChannelConfig::wifi(),
                         FaultScenario::mixed(30, 25)});
    scenarios.push_back({"ge-bursty", ChannelConfig::wifiBursty(),
                         FaultScenario::none()});

    const std::vector<PolicyCase> policies = {
        {"no-recovery", false, ConcealmentMode::Hold},
        {"nack-hold", true, ConcealmentMode::Hold},
        {"nack-extrap", true, ConcealmentMode::MotionExtrapolate},
    };

    std::vector<SweepRow> rows;
    TableWriter table({"scenario", "policy", "dropped", "discarded",
                       "concealed", "nacks", "intras", "max stale",
                       "recovery (ms)"});
    for (const ScenarioCase &sc : scenarios) {
        for (const PolicyCase &po : policies) {
            rows.push_back(runCell(sc, po, frames));
            const ResilienceStats &s = rows.back().stats;
            table.addRow(
                {sc.name, po.name,
                 std::to_string(s.frames_dropped),
                 std::to_string(s.frames_discarded),
                 std::to_string(s.frames_concealed),
                 std::to_string(s.nacks_sent),
                 std::to_string(s.intra_refreshes),
                 std::to_string(s.longest_stale_run),
                 s.recovery_latency_ms.count()
                     ? TableWriter::num(s.recovery_latency_ms.mean(), 1)
                     : "-"});
        }
    }
    printTable(table);

    // AIMD backoff: a 6 Mbit/s target offered to a 3 Mbit/s channel.
    std::cout << "\nAIMD bitrate backoff on an overloaded channel "
                 "(6 Mbit/s target, 3 Mbit/s capacity):\n";
    AimdResult with = runAimdCase(true, smoke ? 180 : 360);
    AimdResult without = runAimdCase(false, smoke ? 180 : 360);
    TableWriter aimd_table({"policy", "dropped", "backoffs",
                            "steady-state drops"});
    aimd_table.addRow({"aimd", std::to_string(with.dropped),
                       std::to_string(with.backoffs),
                       std::to_string(with.tail_dropped)});
    aimd_table.addRow({"fixed-rate", std::to_string(without.dropped),
                       std::to_string(without.backoffs),
                       std::to_string(without.tail_dropped)});
    printTable(aimd_table);

    // Transient quality: the honest PSNR dip while concealing a loss
    // burst, and the recovery after the NACK-forced intra. The smoke
    // run trains a quick throwaway net; the full run uses the shared
    // bench net at a larger frame size.
    std::cout << "\nmeasuring transient PSNR through a loss burst ...\n";
    SessionConfig tq;
    tq.game = GameId::G3_Witcher3;
    tq.design = DesignKind::GameStreamSR;
    tq.measure_quality = true;
    if (smoke) {
        tq.lr_size = {192, 96};
        tq.frames = 16;
        tq.codec.gop_size = 16;
        tq.fault_scenario = FaultScenario::lossBurst(6, 2);
        TrainerConfig trainer;
        trainer.iterations = 150;
        tq.sr_net = std::make_shared<const CompactSrNet>(
            trainedSrNet("", trainer));
    } else {
        tq.lr_size = {320, 180};
        tq.frames = 60;
        tq.codec.gop_size = 30;
        tq.fault_scenario = FaultScenario::lossBurst(12, 3);
        tq.sr_net = sharedSrNet();
    }
    SessionResult transient = runSession(tq);

    TableWriter tq_table({"frame", "type", "PSNR (dB)", "output"});
    for (const FrameQuality &q : transient.quality) {
        tq_table.addRow({std::to_string(q.frame_index),
                         frameTypeName(q.type),
                         TableWriter::num(q.psnr_db, 2),
                         q.concealed ? "concealed" : "delivered"});
    }
    printTable(tq_table);
    std::cout << "mean PSNR: delivered "
              << TableWriter::num(
                     transient.resilience.delivered_psnr_db.mean(), 2)
              << " dB, concealed "
              << TableWriter::num(
                     transient.resilience.concealed_psnr_db.mean(), 2)
              << " dB (dip of "
              << TableWriter::num(
                     transient.resilience.delivered_psnr_db.mean() -
                         transient.resilience.concealed_psnr_db.mean(),
                     2)
              << " dB while stale)\n";

    writeReport(smoke, rows, with, without, transient);
    return 0;
}
