/**
 * @file
 * Sec. II-A / Sec. IV-B2 motivation numbers:
 *  - frame-drop rates when streaming 2K vs. 720p over WiFi and 5G
 *    mmWave (paper: ~90 % and ~44 % drops for high-resolution
 *    streams; 720p streams fit),
 *  - the bandwidth reduction from streaming 720p + RoI metadata
 *    instead of 2K frames (paper: ~66 %),
 *  - server GPU utilization at the two render resolutions
 *    (paper: 79 % at 1440p vs. 52 % at 720p on a GTX 3080 Ti).
 */

#include "bench_util.hh"
#include "codec/codec.hh"
#include "frame/downsample.hh"
#include "net/channel.hh"
#include "render/rasterizer.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Motivation",
                "network drops, bandwidth reduction and server GPU "
                "utilization");

    // Measure real compressed sizes for the same content at the two
    // actual stream resolutions (bytes/pixel is not scale-invariant,
    // so no area extrapolation here). A 2K render is downsampled to
    // give the anti-aliased 720p stream.
    GameWorld world(GameId::G5_GrandTheftAutoV, 3);
    const Size size_2k{2560, 1440};
    const int frames = 8;
    CodecConfig codec;
    codec.gop_size = frames;
    GopEncoder lr_enc(codec, {1280, 720});
    GopEncoder hr_enc(codec, size_2k);
    f64 lr_bytes = 0.0, hr_bytes = 0.0;
    std::cout << "encoding " << frames
              << " frames at 720p and 2K (takes ~1 min) ...\n";
    for (int i = 0; i < frames; ++i) {
        ColorImage hr =
            renderScene(world.sceneAt(i / 60.0), size_2k).color;
        hr_bytes += f64(hr_enc.encode(hr).sizeBytes());
        lr_bytes += f64(lr_enc.encode(boxDownsample(hr, 2))
                            .sizeBytes());
    }
    f64 bytes_720p = lr_bytes / frames + 16.0; // + RoI metadata
    f64 bytes_2k = hr_bytes / frames;
    f64 mbps_720p = streamBitrateMbps(bytes_720p, 60.0);
    f64 mbps_2k = streamBitrateMbps(bytes_2k, 60.0);

    std::cout << "stream bitrates (our codec): 720p+RoI "
              << TableWriter::num(mbps_720p, 1) << " Mbps, 2K "
              << TableWriter::num(mbps_2k, 1) << " Mbps\n";
    std::cout << "bandwidth reduction from 720p+RoI streaming: "
              << TableWriter::num((1.0 - bytes_720p / bytes_2k) *
                                      100.0, 1)
              << " % (paper: ~66 %)\n\n";

    // Drop rates per channel and stream.
    TableWriter drops({"channel", "stream", "bitrate (Mbps)",
                       "drop rate (%)", "paper"});
    for (const ChannelConfig &channel_config :
         {ChannelConfig::wifi(), ChannelConfig::fiveGEmbb()}) {
        for (bool high_res : {true, false}) {
            NetworkChannel channel(channel_config, 17);
            f64 bytes = high_res ? bytes_2k : bytes_720p;
            f64 mbps = high_res ? mbps_2k : mbps_720p;
            for (int i = 0; i < 2000; ++i)
                channel.transmitFrame(size_t(bytes), mbps);
            std::string paper = "-";
            if (high_res && channel_config.name == "wifi")
                paper = "~90 %";
            if (high_res && channel_config.name == "5g-embb")
                paper = "~44 %";
            drops.addRow({channel_config.name,
                          high_res ? "2K" : "720p+RoI",
                          TableWriter::num(mbps, 1),
                          TableWriter::num(channel.dropRate() * 100.0,
                                           1),
                          paper});
        }
    }
    printTable(drops);

    // 5G bandwidth/latency trade-off (Sec. II-A).
    std::cout << "\n5G channel trade-off (Sec. II-A):\n";
    TableWriter tradeoff({"channel", "bandwidth (Mbps)", "RTT (ms)"});
    for (const ChannelConfig &c :
         {ChannelConfig::fiveGEmbb(), ChannelConfig::fiveGUrllc()}) {
        tradeoff.addRow({c.name, TableWriter::num(c.bandwidth_mbps, 0),
                         TableWriter::num(c.rtt_ms, 0)});
    }
    printTable(tradeoff);

    ServerProfile server = ServerProfile::gamingWorkstation();
    std::cout << "\nserver GPU utilization (render+encode): 1440p "
              << TableWriter::num(server.gpu_utilization_1440p * 100,
                                  0)
              << " %, 720p "
              << TableWriter::num(server.gpu_utilization_720p * 100, 0)
              << " % (paper: 79 % vs 52 %) — the freed headroom "
                 "hosts the RoI detection.\n";
    return 0;
}
