/**
 * @file
 * Fig. 13 — Transient PSNR snapshot for Witcher 3 (G3) across
 * consecutive GOPs: the SOTA starts each GOP high (DNN-upscaled
 * reference) and decays below the 30 dB acceptability line as
 * bilinear reconstruction errors accumulate over non-reference
 * frames; GameStreamSR stays consistently above 30 dB.
 *
 * Runs at 640x360 -> 1280x720 (half the paper's pixel scale) so the
 * bench completes in a few minutes; the drift *shape* is the
 * reproduced quantity.
 */

#include "bench_util.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Fig. 13",
                "transient PSNR across 2 GOPs, G3 (Witcher 3), "
                "640x360 -> 1280x720");

    const int gop = 30;
    const int frames = 2 * gop;

    SessionConfig config = paperSessionConfig();
    config.game = GameId::G3_Witcher3;
    config.lr_size = {640, 360};
    config.frames = frames;
    config.codec.gop_size = gop;
    config.sr_net = sharedSrNet();
    config.measure_quality = true;
    config.quality_stride = 2;

    config.design = DesignKind::GameStreamSR;
    std::cout << "running GameStreamSR ...\n";
    SessionResult ours = runSession(config);
    config.design = DesignKind::Nemo;
    std::cout << "running SOTA (NEMO) ...\n";
    SessionResult nemo = runSession(config);

    TableWriter table({"frame", "type", "SOTA PSNR (dB)",
                       "ours PSNR (dB)", ">=30 dB"});
    SampleStats ours_stats, nemo_stats;
    i64 nemo_below_30 = 0;
    for (size_t i = 0; i < ours.quality.size(); ++i) {
        const FrameQuality &o = ours.quality[i];
        const FrameQuality &n = nemo.quality[i];
        ours_stats.add(o.psnr_db);
        nemo_stats.add(n.psnr_db);
        nemo_below_30 += n.psnr_db < 30.0;
        table.addRow({std::to_string(o.frame_index),
                      frameTypeName(o.type),
                      TableWriter::num(n.psnr_db, 2),
                      TableWriter::num(o.psnr_db, 2),
                      o.psnr_db >= 30.0
                          ? (n.psnr_db >= 30.0 ? "both" : "ours only")
                          : "-"});
    }
    printTable(table);

    std::cout << "\nmean PSNR: ours "
              << TableWriter::num(ours_stats.mean(), 2)
              << " dB (min "
              << TableWriter::num(ours_stats.min(), 2)
              << "), SOTA " << TableWriter::num(nemo_stats.mean(), 2)
              << " dB (min " << TableWriter::num(nemo_stats.min(), 2)
              << ")\n";
    std::cout << "SOTA frames below 30 dB: " << nemo_below_30 << "/"
              << nemo.quality.size()
              << " (paper: SOTA dips below 30 dB within each GOP; "
                 "ours stays above)\n";
    return 0;
}
