/**
 * @file
 * Fig. 10c — Motion-to-photon latency breakdown across the game
 * streaming pipeline stages for Witcher 3 (G3) on the Pixel 7 Pro,
 * reference frames, ours vs. the SOTA.
 *
 * Paper anchors: SOTA's upscale stage alone is ~233 ms (violating
 * the MTP budget); ours is 16.4 ms and the end-to-end MTP stays
 * below 70 ms.
 */

#include "bench_util.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Fig. 10c",
                "MTP breakdown, G3 (Witcher 3) on Pixel 7 Pro, "
                "reference frames");

    SessionConfig config = accountingSessionConfig();
    config.game = GameId::G3_Witcher3;
    config.device = DeviceProfile::pixel7Pro();
    config.frames = 12;
    config.codec.gop_size = 12;

    config.design = DesignKind::GameStreamSR;
    SessionResult ours = runSession(config);
    config.design = DesignKind::Nemo;
    SessionResult nemo = runSession(config);

    const Stage stages[] = {
        Stage::InputCapture, Stage::GameLogic, Stage::Render,
        Stage::RoiDetect,    Stage::Encode,    Stage::Network,
        Stage::Decode,       Stage::Upscale,   Stage::Merge,
        Stage::Display,
    };

    TableWriter table({"stage", "SOTA (ms)", "GameStreamSR (ms)",
                       "paper (ours)"});
    for (Stage stage : stages) {
        std::string note = "-";
        if (stage == Stage::Upscale)
            note = "16.4 ms (SOTA ~233 ms)";
        table.addRow(
            {stageName(stage),
             TableWriter::num(
                 nemo.meanStageMs(stage, FrameType::Reference), 2),
             TableWriter::num(
                 ours.meanStageMs(stage, FrameType::Reference), 2),
             note});
    }
    table.addRow({"TOTAL (MTP)",
                  TableWriter::num(
                      nemo.meanMtpMs(FrameType::Reference), 1),
                  TableWriter::num(
                      ours.meanMtpMs(FrameType::Reference), 1),
                  "<70 ms"});
    printTable(table);

    std::cout << "\nnon-reference MTP: SOTA "
              << TableWriter::num(
                     nemo.meanMtpMs(FrameType::NonReference), 1)
              << " ms, ours "
              << TableWriter::num(
                     ours.meanMtpMs(FrameType::NonReference), 1)
              << " ms (paper: both <100 ms, ours <70 ms)\n";
    return 0;
}
