/**
 * @file
 * Extension bench — SR architecture trade-off (the paper's related
 * work on efficient mobile SR, [43]/[51]/[108]): compare the
 * executable quality models (CompactSrNet, FSRCNN-style) and the
 * EDSR cost model on quality per MAC and the resulting NPU latency
 * for the 300x300 RoI.
 *
 * Both executable nets are trained briefly in-process on the same
 * codec-decoded corpus; quality is held-out PSNR at x2.
 */

#include "bench_util.hh"
#include "codec/codec.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "render/rasterizer.hh"
#include "sr/fsrcnn.hh"
#include "sr/interpolate.hh"
#include "sr/trainer.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

/** Held-out evaluation pair (codec-decoded LR, native HR). */
struct EvalPair
{
    PlaneU8 lr;
    PlaneU8 hr;
};

std::vector<EvalPair>
heldOutPairs()
{
    std::vector<EvalPair> out;
    CodecConfig codec;
    codec.gop_size = 1;
    for (GameId id : {GameId::G4_RedDeadRedemption2,
                      GameId::G7_TombRaider}) {
        GameWorld world(id, 88);
        GopEncoder encoder(codec, {160, 96});
        FrameDecoder decoder(codec, {160, 96});
        for (int i = 0; i < 2; ++i) {
            ColorImage hr =
                renderScene(world.sceneAt(0.9 + i * 0.7),
                            {320, 192})
                    .color;
            ColorImage lr = yuv420ToRgb(decoder.decode(
                encoder.encode(boxDownsample(hr, 2))));
            out.push_back(
                {toGrayscale(lr), toGrayscale(hr)});
        }
    }
    return out;
}

template <typename Net>
f64
evalPsnr(const Net &net, const std::vector<EvalPair> &pairs)
{
    f64 total = 0.0;
    for (const auto &p : pairs) {
        Tensor up = net.forward(Tensor::fromPlane(p.lr));
        total += psnr(up.toPlane(), p.hr);
    }
    return total / f64(pairs.size());
}

/** Train any residual SR net on the shared corpus via its own
 *  gradient interface (mirrors SrTrainer for non-CompactSrNet). */
template <typename Net>
void
quickTrain(Net &net, int iterations)
{
    // Build the same codec-decoded corpus used by trainedSrNet and
    // train this net on it with identical hyperparameters.
    CodecConfig codec;
    codec.gop_size = 1;
    std::vector<EvalPair> pairs;
    for (GameId id : {GameId::G1_MetroExodus, GameId::G3_Witcher3,
                      GameId::G5_GrandTheftAutoV,
                      GameId::G10_ForzaHorizon5}) {
        GameWorld world(id, 42);
        GopEncoder encoder(codec, {160, 96});
        FrameDecoder decoder(codec, {160, 96});
        for (int frame = 0; frame < 3; ++frame) {
            ColorImage hr =
                renderScene(world.sceneAt(frame * 0.8), {320, 192})
                    .color;
            ColorImage lr = yuv420ToRgb(decoder.decode(
                encoder.encode(boxDownsample(hr, 2))));
            pairs.push_back({toGrayscale(lr), toGrayscale(hr)});
        }
    }

    Adam::Config adam_config;
    adam_config.learning_rate = 2e-3;
    Adam adam(net.params(), adam_config);
    Rng rng(11);
    const int patch = 48;
    for (int iter = 0; iter < iterations; ++iter) {
        for (int b = 0; b < 4; ++b) {
            const EvalPair &p =
                pairs[size_t(rng.uniformInt(0, int(pairs.size()) - 1))];
            int x = rng.uniformInt(0, p.lr.width() - patch);
            int y = rng.uniformInt(0, p.lr.height() - patch);
            net.accumulateGradients(
                Tensor::fromPlane(p.lr.crop({x, y, patch, patch})),
                Tensor::fromPlane(p.hr.crop(
                    {x * 2, y * 2, patch * 2, patch * 2})));
        }
        adam.step();
        if (iter == iterations * 2 / 3)
            adam.setLearningRate(2e-3 * 0.3);
    }
}

} // namespace

int
main()
{
    printHeader("Extension",
                "SR architecture trade-off: quality vs. compute "
                "(x2, held-out codec-decoded frames)");

    const int iters = 700;
    std::cout << "training CompactSrNet and FsrcnnNet (" << iters
              << " iterations each) ...\n";
    CompactSrNet compact;
    quickTrain(compact, iters);
    FsrcnnNet fsrcnn;
    quickTrain(fsrcnn, iters);

    std::vector<EvalPair> pairs = heldOutPairs();
    f64 bilinear_psnr = 0.0;
    for (const auto &p : pairs) {
        bilinear_psnr += psnr(
            resizePlane(p.lr, p.hr.size(), InterpKernel::Bilinear),
            p.hr);
    }
    bilinear_psnr /= f64(pairs.size());

    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    EdsrNetwork edsr{EdsrConfig{}};

    TableWriter table({"model", "MACs/px (x2)",
                       "NPU ms (300x300 RoI)", "held-out PSNR (dB)",
                       "role"});
    auto npu_ms = [&](i64 macs) {
        return s8.npu.latencyMs(macs, 300 * 300);
    };
    table.addRow({"bilinear (GPU)", "-", "-",
                  TableWriter::num(bilinear_psnr, 2),
                  "non-RoI path"});
    table.addRow({"FsrcnnNet",
                  std::to_string(fsrcnn.macs(1, 1)),
                  TableWriter::num(npu_ms(fsrcnn.macs(300, 300)), 2),
                  TableWriter::num(evalPsnr(fsrcnn, pairs), 2),
                  "efficient-mobile-SR class"});
    table.addRow({"CompactSrNet",
                  std::to_string(compact.macs(1, 1)),
                  TableWriter::num(npu_ms(compact.macs(300, 300)), 2),
                  TableWriter::num(evalPsnr(compact, pairs), 2),
                  "quality stand-in (this repo)"});
    table.addRow({"EDSR-16/64 (cost model)",
                  std::to_string(edsr.macs(1, 1)),
                  TableWriter::num(npu_ms(edsr.macs(300, 300)), 2),
                  "(not executed at scale)",
                  "deployed model (paper)"});
    printTable(table);
    std::cout << "\ntakeaway: lighter architectures trade a little "
                 "quality for large MAC savings — with a lighter "
                 "model the real-time RoI window could grow beyond "
                 "300 px, the knob the paper's future work points "
                 "at.\n";
    return 0;
}
