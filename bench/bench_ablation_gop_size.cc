/**
 * @file
 * Ablation — keyframe interval (GOP size) sensitivity (Sec. II-B:
 * live game streams use *shorter* keyframe intervals than video
 * streaming, which is exactly what breaks NEMO): per-GOP-average
 * upscale latency and client energy for both designs across GOP
 * sizes. NEMO amortizes its expensive reference frames over the GOP
 * so it improves with longer GOPs; GameStreamSR is flat — its
 * advantage grows as keyframes get more frequent.
 */

#include "bench_util.hh"
#include "pipeline/client.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

struct GopNumbers
{
    f64 mean_upscale_ms = 0.0;
    f64 mean_energy_mj = 0.0;
};

GopNumbers
measure(StreamingClient &client, int gop,
        const std::optional<Rect> &roi)
{
    GopNumbers out;
    for (i64 i = 0; i < gop; ++i) {
        EncodedFrame frame;
        frame.type =
            i == 0 ? FrameType::Reference : FrameType::NonReference;
        frame.size = {1280, 720};
        frame.index = i;
        FrameTrace t = client.processFrame(frame, roi).trace;
        out.mean_upscale_ms += t.clientBottleneckMs();
        out.mean_energy_mj += t.clientEnergyMj();
    }
    out.mean_upscale_ms /= f64(gop);
    out.mean_energy_mj /= f64(gop);
    return out;
}

} // namespace

int
main()
{
    printHeader("Ablation",
                "keyframe interval (GOP size) sensitivity, "
                "720p -> 1440p on Galaxy Tab S8");

    ClientConfig config;
    config.device = DeviceProfile::galaxyTabS8();
    config.lr_size = {1280, 720};
    config.compute_pixels = false;
    Rect roi{490, 210, 300, 300};

    TableWriter table({"GOP (frames)", "keyframe interval",
                       "SOTA mean stage (ms)", "ours mean stage (ms)",
                       "GOP speedup", "SOTA mJ/frame",
                       "ours mJ/frame"});
    for (int gop : {15, 30, 60, 120, 240}) {
        GssrClient ours(config);
        NemoClient nemo(config);
        GopNumbers ours_n = measure(ours, gop, roi);
        GopNumbers nemo_n = measure(nemo, gop, std::nullopt);
        f64 seconds = f64(gop) / 60.0;
        table.addRow(
            {std::to_string(gop),
             TableWriter::num(seconds, 2) + " s",
             TableWriter::num(nemo_n.mean_upscale_ms, 1),
             TableWriter::num(ours_n.mean_upscale_ms, 1),
             TableWriter::num(nemo_n.mean_upscale_ms /
                                  ours_n.mean_upscale_ms, 2) + "x",
             TableWriter::num(nemo_n.mean_energy_mj, 1),
             TableWriter::num(ours_n.mean_energy_mj, 1)});
    }
    printTable(table);
    std::cout << "\ntakeaway: video streaming's 4 s keyframe "
                 "interval (GOP 240) is where NEMO's amortization "
                 "works; at the <=1-2 s intervals live game streams "
                 "need (Sec. II-B), the per-GOP cost of full-frame "
                 "reference SR dominates and GameStreamSR's "
                 "advantage widens. NEMO's quality *drift* over long "
                 "GOPs (Fig. 13) is measured separately.\n";
    return 0;
}
