/**
 * @file
 * Ablation — Algorithm 1's two-phase RoI search vs. a coarse-only
 * scan and an exhaustive stride-1 scan, on real rendered depth maps
 * across the ten games: positions evaluated (compute), achieved
 * window score relative to the exhaustive optimum, and the charged
 * server-GPU time.
 */

#include "bench_util.hh"
#include "render/rasterizer.hh"
#include "roi/roi_detector.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Ablation",
                "RoI search strategy (Algorithm 1) across the "
                "Table I games, 640x360 depth maps");

    struct Totals
    {
        f64 score_ratio_sum = 0.0;
        i64 positions = 0;
        int frames = 0;
    };
    Totals totals[3];
    const RoiSearchMode modes[3] = {RoiSearchMode::Exhaustive,
                                    RoiSearchMode::TwoPhase,
                                    RoiSearchMode::CoarseOnly};
    const char *mode_names[3] = {"exhaustive (stride 1)",
                                 "two-phase (Algorithm 1)",
                                 "coarse-only"};

    for (const GameInfo &game : tableOneGames()) {
        GameWorld world(game.id, 5);
        RenderOutput frame =
            renderScene(world.sceneAt(1.2), {640, 360});
        DepthPreprocessResult pre =
            preprocessDepthMap(frame.depth, DepthPreprocessConfig{});
        if (!pre.depth_informative)
            continue;

        RoiSearchConfig config;
        config.window_width = 150; // paper's 300 px scaled to 640
        config.window_height = 150;

        f64 exhaustive_score = 0.0;
        for (int m = 0; m < 3; ++m) {
            config.mode = modes[m];
            RoiSearchResult r = searchRoi(pre.processed, config);
            if (m == 0)
                exhaustive_score = r.score;
            totals[m].score_ratio_sum +=
                exhaustive_score > 0.0 ? r.score / exhaustive_score
                                       : 1.0;
            totals[m].positions += r.positions_evaluated;
            totals[m].frames += 1;
        }
    }

    TableWriter table({"strategy", "positions/frame",
                       "score vs exhaustive (%)",
                       "server GPU (ms, 720p map)"});
    for (int m = 0; m < 3; ++m) {
        RoiSearchConfig cost_config;
        cost_config.window_width = 300;
        cost_config.window_height = 300;
        cost_config.mode = modes[m];
        f64 gpu_ms =
            f64(roiSearchOpCount({1280, 720}, cost_config)) /
            ServerProfile::gamingWorkstation().gpu_ops_per_ms;
        table.addRow(
            {mode_names[m],
             std::to_string(totals[m].positions /
                            std::max(1, totals[m].frames)),
             TableWriter::num(totals[m].score_ratio_sum /
                                  std::max(1, totals[m].frames) *
                                  100.0, 2),
             TableWriter::num(gpu_ms, 3)});
    }
    printTable(table);
    std::cout << "\ntakeaway: the two-phase search recovers the "
                 "exhaustive optimum (>99 %) at a small fraction of "
                 "the positions.\n";
    return 0;
}
