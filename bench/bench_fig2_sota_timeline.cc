/**
 * @file
 * Fig. 2 — Super-resolution execution timeline of the SOTA (NEMO)
 * for 3 consecutive GOPs of a 720p -> 1440p game stream on the
 * Galaxy Tab S8: the reference-frame DNN upscaling towers over the
 * 16.66 ms deadline, and even the non-reference interpolation path
 * misses it.
 *
 * Paper shape: reference peaks of hundreds of ms every GOP;
 * non-reference frames above the 16.66 ms line.
 */

#include "bench_util.hh"
#include "pipeline/client.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Fig. 2",
                "SOTA SR execution timeline, 3 GOPs (S8 Tab, "
                "720p -> 1440p)");

    ClientConfig config;
    config.device = DeviceProfile::galaxyTabS8();
    config.lr_size = {1280, 720};
    config.scale_factor = 2;
    config.compute_pixels = false;

    // Live-game keyframe interval of 1 s (Sec. II-B: shorter than
    // video streaming's 4 s) -> GOP of 60 frames at 60 FPS.
    const int gop = 60;
    const int gops = 3;

    NemoClient nemo(config);
    GssrClient ours(config);

    std::cout << "frame  type           sota-upscale(ms)  "
                 "ours-upscale(ms)  deadline\n";
    f64 sota_ref = 0.0, sota_nonref = 0.0;
    f64 ours_ref = 0.0, ours_nonref = 0.0;
    Rect roi{490, 210, 300, 300};
    for (i64 i = 0; i < gop * gops; ++i) {
        EncodedFrame frame;
        frame.type = i % gop == 0 ? FrameType::Reference
                                  : FrameType::NonReference;
        frame.size = config.lr_size;
        frame.index = i;
        f64 sota_ms = nemo.processFrame(frame, std::nullopt)
                          .trace.clientBottleneckMs();
        f64 ours_ms =
            ours.processFrame(frame, roi).trace.clientBottleneckMs();
        if (frame.type == FrameType::Reference) {
            sota_ref = sota_ms;
            ours_ref = ours_ms;
        } else {
            sota_nonref = sota_ms;
            ours_nonref = ours_ms;
        }
        // Print the GOP boundaries and a few frames around them.
        if (i % gop <= 2 || i % gop == gop - 1) {
            std::printf("%5ld  %-13s %17.1f %17.1f  %s\n", long(i),
                        frameTypeName(frame.type), sota_ms, ours_ms,
                        sota_ms > 1000.0 / 60.0 ? "VIOLATED" : "ok");
        } else if (i % gop == 3) {
            std::printf("  ...  (non-reference frames continue)\n");
        }
    }

    std::cout << "\nsummary (per-frame upscaling-stage latency):\n";
    TableWriter table(
        {"frame type", "SOTA (ms)", "GameStreamSR (ms)",
         "deadline 16.66 ms"});
    table.addRow({"reference", TableWriter::num(sota_ref, 1),
                  TableWriter::num(ours_ref, 1),
                  "SOTA violates, ours meets"});
    table.addRow({"non-reference", TableWriter::num(sota_nonref, 1),
                  TableWriter::num(ours_nonref, 1),
                  "SOTA violates, ours meets"});
    printTable(table);
    std::cout << "\npaper: SOTA reference peaks >200 ms each GOP; "
                 "non-reference ~26 ms; both above 16.66 ms.\n";
    return 0;
}
