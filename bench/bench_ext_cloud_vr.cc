/**
 * @file
 * Extension bench — Cloud VR (Sec. VI): the same depth-guided RoI
 * pipeline over stereo renders. Two questions:
 *
 *  1. Do the per-eye RoIs agree (so one detection could serve both
 *     eyes, halving the server cost)?
 *  2. What RoI window fits the real-time budget when the NPU must
 *     upscale *two* eyes per frame period?
 */

#include "bench_util.hh"
#include "render/stereo.hh"
#include "roi/foveal.hh"
#include "roi/roi_detector.hh"
#include "sr/upscaler.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Extension",
                "Cloud VR: per-eye depth-guided RoI on stereo "
                "renders (Sec. VI)");

    // 1. Per-eye RoI agreement across games.
    RoiDetector detector(ServerProfile::gamingWorkstation());
    TableWriter agreement({"game", "|dx| (px)", "|dy| (px)",
                           "overlap (%)"});
    SampleStats overlap_stats;
    for (const GameInfo &game : tableOneGames()) {
        GameWorld world(game.id, 8);
        Scene scene = world.sceneAt(1.0);
        StereoRenderOutput eyes = renderStereo(scene, {320, 180});
        RoiDetection left = detector.detect(eyes.left.depth, {75, 75});
        RoiDetection right =
            detector.detect(eyes.right.depth, {75, 75});
        Rect inter = left.roi.intersect(right.roi);
        f64 overlap = 100.0 * f64(inter.area()) /
                      f64(left.roi.area());
        overlap_stats.add(overlap);
        agreement.addRow(
            {game.short_name,
             std::to_string(std::abs(left.roi.x - right.roi.x)),
             std::to_string(std::abs(left.roi.y - right.roi.y)),
             TableWriter::num(overlap, 1)});
    }
    agreement.addRow({"MEAN", "-", "-",
                      TableWriter::num(overlap_stats.mean(), 1)});
    printTable(agreement);

    // 2. Two-eye real-time NPU budget.
    std::cout << "\ntwo-eye NPU budget (each frame period must fit "
                 "both eyes' RoI SR):\n";
    DnnUpscaler edsr(std::make_shared<const CompactSrNet>(), 2);
    TableWriter budget({"device", "mono RoI (px)",
                        "stereo RoI (px/eye)",
                        "stereo latency both eyes (ms)"});
    for (const DeviceProfile &device :
         {DeviceProfile::galaxyTabS8(), DeviceProfile::pixel7Pro()}) {
        int mono = maxRoiSizePixels(device.npu, edsr, 2,
                                    kRealTimeDeadlineMs);
        // Both eyes serialized on one NPU: per-eye deadline is half
        // a frame period.
        int stereo = maxRoiSizePixels(device.npu, edsr, 2,
                                      kRealTimeDeadlineMs / 2.0);
        f64 both_ms =
            2.0 * device.npu.latencyMs(
                      edsr.macs({stereo, stereo}, 2),
                      i64(stereo) * stereo);
        budget.addRow({device.name, std::to_string(mono),
                       std::to_string(stereo),
                       TableWriter::num(both_ms, 1)});
    }
    printTable(budget);
    std::cout << "\ntakeaway: the high per-eye RoI agreement means "
                 "one detection can serve both eyes; the NPU budget "
                 "halves the per-eye window edge by ~sqrt(2), still "
                 "well above the foveal minimum at VR viewing "
                 "distances.\n";
    return 0;
}
