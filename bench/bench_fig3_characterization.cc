/**
 * @file
 * Fig. 3 — SR characterization on the mobile NPU:
 *  (a) execution latency and quality across upscaling factors
 *      (x2/x3/x4 to a fixed 1440p target): quality drops sharply
 *      with the factor, so x2 from 720p is the quality-preserving
 *      choice — but its full-frame latency misses the deadline;
 *  (b) execution latency across input resolutions at x2: only small
 *      inputs (~240p) meet the 16.66 ms deadline.
 */

#include "bench_util.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "render/rasterizer.hh"
#include "sr/upscaler.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    DeviceProfile s8 = DeviceProfile::galaxyTabS8();

    // ---- Fig. 3a: upscale factor sweep to a fixed target. -------
    printHeader("Fig. 3a",
                "SR latency and quality vs. upscale factor "
                "(fixed 1440p target, S8 Tab NPU)");

    // Quality measured against a shared ground truth render; the
    // LR input for factor k is the k x box-downsample (SSAA render).
    GameWorld world(GameId::G3_Witcher3, 21);
    const Size gt_size{480, 240}; // divisible by 2, 3 and 4
    ColorImage ground_truth =
        renderScene(world.sceneAt(0.8), gt_size).color;
    DnnUpscaler dnn(sharedSrNet(), 2);

    TableWriter fig3a({"factor", "input (for 1440p)", "NPU latency (ms)",
                       "PSNR (dB)", "meets 16.66 ms"});
    for (int factor : {2, 3, 4}) {
        Size input{2560 / factor, 1440 / factor};
        i64 macs = dnn.macs(input, factor);
        f64 latency = s8.npu.latencyMs(macs, input.area());

        ColorImage lr = boxDownsample(ground_truth, factor);
        f64 quality = psnr(dnn.upscale(lr, factor), ground_truth);
        fig3a.addRow({"x" + std::to_string(factor),
                      std::to_string(input.width) + "x" +
                          std::to_string(input.height),
                      TableWriter::num(latency, 1),
                      TableWriter::num(quality, 2),
                      latency <= 1000.0 / 60.0 ? "yes" : "no"});
    }
    printTable(fig3a);
    std::cout << "paper shape: quality drops sharply beyond x2; "
                 "x2-from-720p latency far above the deadline.\n";

    // ---- Fig. 3b: input resolution sweep at x2. ------------------
    printHeader("Fig. 3b",
                "SR latency vs. input resolution (x2, S8 Tab NPU)");
    TableWriter fig3b({"input", "pixels", "GMACs", "latency (ms)",
                       "meets 16.66 ms"});
    struct Res
    {
        const char *name;
        Size size;
    };
    for (const Res &r :
         {Res{"144p", {256, 144}}, Res{"240p", {320, 240}},
          Res{"300x300 (RoI)", {300, 300}}, Res{"360p", {640, 360}},
          Res{"480p", {854, 480}}, Res{"720p", {1280, 720}}}) {
        i64 macs = dnn.macs(r.size, 2);
        f64 latency = s8.npu.latencyMs(macs, r.size.area());
        fig3b.addRow({r.name,
                      std::to_string(r.size.area()),
                      TableWriter::num(f64(macs) / 1e9, 1),
                      TableWriter::num(latency, 1),
                      latency <= 1000.0 / 60.0 ? "yes" : "no"});
    }
    printTable(fig3b);
    std::cout << "paper shape: ~240p meets the real-time deadline, "
                 "720p is ~13x over it.\n";
    return 0;
}
