/**
 * @file
 * Fig. 10a — Upscaling performance speedup of GameStreamSR over the
 * SOTA (NEMO) on both devices, for reference frames, non-reference
 * frames and full GOPs, plus the resulting output frame rates.
 *
 * Paper anchors: reference 13x (S8) / 14x (Pixel); non-reference
 * >1.5x; GOP ~2x; FPS 4.6 -> 61.7 (S8) and 4.3 -> 61 (Pixel).
 */

#include "bench_util.hh"
#include "pipeline/client.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

struct DesignNumbers
{
    f64 ref_ms = 0.0;
    f64 nonref_ms = 0.0;

    /** Mean per-frame stage latency over a GOP of 60. */
    f64
    gopMs() const
    {
        return (ref_ms + 59.0 * nonref_ms) / 60.0;
    }
};

DesignNumbers
measure(StreamingClient &client, const std::optional<Rect> &roi)
{
    DesignNumbers out;
    for (i64 i = 0; i < 4; ++i) {
        EncodedFrame frame;
        frame.type =
            i == 0 ? FrameType::Reference : FrameType::NonReference;
        frame.size = {1280, 720};
        frame.index = i;
        f64 ms = client.processFrame(frame, roi)
                     .trace.clientBottleneckMs();
        if (i == 0)
            out.ref_ms = ms;
        else
            out.nonref_ms = ms;
    }
    return out;
}

} // namespace

int
main()
{
    printHeader("Fig. 10a",
                "upscaling speedup and output FPS vs. SOTA "
                "(720p -> 1440p, GOP 60)");

    TableWriter table({"device", "frame type", "SOTA (ms)",
                       "ours (ms)", "speedup", "SOTA FPS",
                       "ours FPS", "paper"});

    for (const DeviceProfile &device :
         {DeviceProfile::galaxyTabS8(), DeviceProfile::pixel7Pro()}) {
        ClientConfig config;
        config.device = device;
        config.lr_size = {1280, 720};
        config.compute_pixels = false;

        GssrClient ours(config);
        NemoClient nemo(config);
        Rect roi{490, 210, 300, 300};
        DesignNumbers ours_n = measure(ours, roi);
        DesignNumbers nemo_n = measure(nemo, std::nullopt);

        bool s8 = device.name == "galaxy-tab-s8";
        table.addRow({device.name, "reference",
                      TableWriter::num(nemo_n.ref_ms, 1),
                      TableWriter::num(ours_n.ref_ms, 1),
                      TableWriter::num(nemo_n.ref_ms / ours_n.ref_ms,
                                       1) + "x",
                      TableWriter::num(1000.0 / nemo_n.ref_ms, 1),
                      TableWriter::num(1000.0 / ours_n.ref_ms, 1),
                      s8 ? "13x; 4.6->61.7 FPS"
                         : "14x; 4.3->61 FPS"});
        table.addRow({device.name, "non-reference",
                      TableWriter::num(nemo_n.nonref_ms, 1),
                      TableWriter::num(ours_n.nonref_ms, 1),
                      TableWriter::num(
                          nemo_n.nonref_ms / ours_n.nonref_ms, 1) +
                          "x",
                      TableWriter::num(1000.0 / nemo_n.nonref_ms, 1),
                      TableWriter::num(1000.0 / ours_n.nonref_ms, 1),
                      ">1.5x"});
        table.addRow({device.name, "GOP (1+59)",
                      TableWriter::num(nemo_n.gopMs(), 1),
                      TableWriter::num(ours_n.gopMs(), 1),
                      TableWriter::num(nemo_n.gopMs() / ours_n.gopMs(),
                                       1) + "x",
                      "-", "-", "~2x"});
    }
    printTable(table);
    std::cout << "\nnote: speedups are content-independent (device "
                 "models); the paper reports no significant "
                 "variation across games either.\n";
    return 0;
}
