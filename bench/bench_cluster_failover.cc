/**
 * @file
 * Cluster failover bench — sweeps 1k–10k accounting-only (proxy
 * render) sessions across a six-server heterogeneous cluster and
 * injects a single-server crash, comparing live migration against
 * the no-migration baseline in which displaced sessions are simply
 * lost and score zero QoE for the rest of the run. A
 * rolling-maintenance scenario cycles every server through a drain
 * window at the smallest sweep point, and the smallest crash run is
 * replayed to pin byte-identical determinism at a fixed seed.
 *
 * Contract checks (GSSR_ASSERT, so CI fails loudly):
 *  - the migration arm loses zero sessions at every sweep point;
 *  - every displaced session is back on a server within the handoff
 *    deadline plus one frame period;
 *  - the migration arm's fleet p10 QoE strictly beats the
 *    no-migration baseline's at every sweep point;
 *  - the replayed run is byte-identical (fleet fingerprint and every
 *    failover counter).
 *
 * Writes BENCH_cluster.json. `--smoke` runs a reduced configuration
 * for CI; `--seed <n>` offsets the cluster / channel / world seeds
 * (default 0 keeps the pinned deterministic configuration).
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "cluster/cluster.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

/** Seed-offset knob shared by every run of one bench invocation. */
struct SeedPlan
{
    u64 seed = 0;

    u64 cluster() const { return 1 + seed; }
    u64 world(int i) const { return 1 + u64(i) + seed * 7919; }
    u64 channel(int i) const
    {
        return 1000 + u64(i) + seed * 1000003;
    }
};

/** One (scenario x arm) cluster run. */
struct RunResult
{
    std::string scenario;
    bool migration = true;
    int sessions = 0;
    int ticks = 0;
    ClusterResult cluster;
};

/**
 * The heterogeneous six-server fleet for @p sessions admitted
 * streams: two local, two metro (+4 ms) and two WAN (+12 ms) racks,
 * slot counts weighted so capacity is uneven but the fleet holds
 * every session with enough headroom for the five survivors to
 * absorb a crashed server's tenants.
 */
ClusterConfig
fleetConfig(int sessions)
{
    static const struct
    {
        const char *region;
        f64 rtt_ms;
        f64 weight;
    } kRacks[6] = {{"local", 0.0, 1.0},  {"local", 0.0, 1.25},
                   {"metro", 4.0, 0.75}, {"metro", 4.0, 1.25},
                   {"wan", 12.0, 0.75},  {"wan", 12.0, 1.0}};

    ClusterConfig config;
    for (const auto &rack : kRacks) {
        ClusterServerConfig server;
        const int slots = std::max(
            6, int(f64(sessions) / 8.0 * rack.weight + 0.5));
        server.profile = ServerProfile::edgeRack(slots);
        server.region = rack.region;
        server.region_rtt_ms = rack.rtt_ms;
        config.servers.push_back(server);
    }
    return config;
}

RunResult
runCluster(const std::string &scenario_name,
           const ClusterFaultScenario &scenario, bool migration,
           int sessions, int ticks, const SeedPlan &seeds)
{
    ClusterConfig config = fleetConfig(sessions);
    config.migration = migration;
    config.seed = seeds.cluster();

    obs::Telemetry telemetry(/*spans=*/false);
    ClusterController cluster(config);
    cluster.setTelemetry(&telemetry);

    for (int i = 0; i < sessions; ++i) {
        SessionConfig session = fleetMixSessionConfig(i);
        session.frames = ticks;
        // The sweep is accounting-only at a small proxy raster — the
        // point is fleet-scale failover dynamics, not pixels.
        session.server_proxy_size = {32, 18};
        session.world_seed = seeds.world(i);
        session.channel_seed = seeds.channel(i);
        cluster.admit(session);
    }

    RunResult run;
    run.scenario = scenario_name;
    run.migration = migration;
    run.sessions = sessions;
    run.ticks = ticks;
    run.cluster = cluster.run(ticks, scenario);

    // The cluster.* instruments must agree with the typed result —
    // the observability plane is part of the bench contract.
    obs::MetricsRegistry &reg = telemetry.registry();
    if (auto id = reg.find("cluster.migrations"))
        GSSR_ASSERT(reg.counterValue(*id) == run.cluster.migrations,
                    "cluster.migrations counter out of sync");
    if (auto id = reg.find("cluster.sessions_lost"))
        GSSR_ASSERT(reg.counterValue(*id) ==
                        run.cluster.sessions_lost,
                    "cluster.sessions_lost counter out of sync");
    return run;
}

void
armJson(obs::JsonWriter &w, const RunResult &run)
{
    const ClusterResult &c = run.cluster;
    w.beginObject();
    w.field("arm", std::string(run.migration ? "migration"
                                             : "no-migration"));
    w.field("admitted", c.fleet.admitted + c.fleet.degraded);
    w.field("rejected", c.fleet.rejected);
    w.field("frames", c.fleet.frames_total);
    w.field("displaced", c.sessions_displaced);
    w.field("migrations", c.migrations);
    w.field("cold_readmissions", c.cold_readmissions);
    w.field("sessions_lost", c.sessions_lost);
    w.field("handoff_attempts", c.handoff_attempts);
    w.field("handoff_retries", c.handoff_retries);
    w.field("displaced_frames", c.displaced_frames);
    w.field("p10_qoe", c.fleet.qoe.percentile(10.0), 4);
    w.field("mean_qoe", c.fleet.qoe.mean(), 4);
    w.field("p99_mtp_ms", c.fleet.mtp_ms.percentile(99.0), 4);
    if (c.time_to_recover_ms.count() > 0) {
        w.field("ttr_p50_ms", c.time_to_recover_ms.percentile(50.0),
                4);
        w.field("ttr_max_ms", c.time_to_recover_ms.max(), 4);
    }
    w.hexField("fingerprint", c.fleet.fingerprint);
    w.endObject();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    SeedPlan seeds;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seeds.seed = u64(std::strtoull(argv[++i], nullptr, 10));
    }

    printHeader("Cluster failover",
                "live migration vs. lost sessions under server "
                "crash and rolling maintenance" +
                    std::string(smoke ? " (smoke)" : ""));

    // Sweep points chosen so every run simulates a comparable frame
    // volume (~48k session-frames): scale comes from the admitted
    // population, not from run length.
    std::vector<std::pair<int, int>> sweep; // (sessions, ticks)
    if (smoke)
        sweep = {{96, 48}};
    else
        sweep = {{1000, 48}, {2500, 20}, {5000, 10}, {10000, 8}};

    const f64 kFramePeriodMs = 1000.0 / 60.0;
    const HandoffConfig handoff; // pinned defaults, reported below

    std::vector<RunResult> runs;
    TableWriter table({"scenario", "arm", "N", "ticks", "displaced",
                       "migrated", "cold", "lost", "retries",
                       "p10 QoE", "mean QoE", "TTRmax ms"});
    auto addRow = [&](const RunResult &run) {
        const ClusterResult &c = run.cluster;
        table.addRow(
            {run.scenario,
             run.migration ? "migration" : "no-migration",
             std::to_string(run.sessions),
             std::to_string(run.ticks),
             std::to_string(c.sessions_displaced),
             std::to_string(c.migrations),
             std::to_string(c.cold_readmissions),
             std::to_string(c.sessions_lost),
             std::to_string(c.handoff_retries),
             TableWriter::num(c.fleet.qoe.percentile(10.0), 2),
             TableWriter::num(c.fleet.qoe.mean(), 2),
             c.time_to_recover_ms.count()
                 ? TableWriter::num(c.time_to_recover_ms.max(), 2)
                 : std::string("-")});
    };

    for (const auto &[sessions, ticks] : sweep) {
        const ClusterFaultScenario crash =
            ClusterFaultScenario::serverCrash(0, ticks / 8, ticks);
        for (bool migration : {true, false}) {
            runs.push_back(runCluster("server-crash", crash,
                                      migration, sessions, ticks,
                                      seeds));
            addRow(runs.back());
        }
    }

    // Rolling maintenance cycles all six servers through end-to-end
    // drain windows at the smallest sweep point (every session in
    // the fleet is displaced at least once and must survive).
    {
        const auto [sessions, ticks] = sweep.front();
        const i64 drain = std::max<i64>(2, ticks / 8);
        runs.push_back(runCluster(
            "rolling-maintenance",
            ClusterFaultScenario::rollingMaintenance(6, ticks / 6,
                                                     drain),
            true, sessions, ticks, seeds));
        addRow(runs.back());
    }

    // Replay the smallest crash run: a fixed seed must reproduce the
    // fleet byte for byte, faults and retries included.
    const RunResult &first = runs.front();
    const RunResult replay = runCluster(
        "server-crash",
        ClusterFaultScenario::serverCrash(0, first.ticks / 8,
                                          first.ticks),
        true, first.sessions, first.ticks, seeds);
    printTable(table);

    // Contract checks.
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
        const ClusterResult &mig = runs[i].cluster;
        const ClusterResult &base = runs[i + 1].cluster;
        if (runs[i].scenario != "server-crash")
            break;
        GSSR_ASSERT(mig.fleet.rejected == 0,
                    "the fleet must hold the whole sweep population");
        GSSR_ASSERT(mig.sessions_displaced > 0,
                    "the crash must displace the failed server's "
                    "tenants");
        GSSR_ASSERT(mig.sessions_lost == 0,
                    "migration must lose zero sessions on a "
                    "single-server crash");
        GSSR_ASSERT(mig.time_to_recover_ms.count() ==
                        mig.sessions_displaced,
                    "every displaced session must be re-homed");
        GSSR_ASSERT(mig.time_to_recover_ms.max() <=
                        handoff.deadline_ms + kFramePeriodMs,
                    "time-to-recover must respect the handoff "
                    "deadline");
        GSSR_ASSERT(base.sessions_lost > 0,
                    "the no-migration baseline must lose the "
                    "crashed server's sessions");
        const f64 gain = mig.fleet.qoe.percentile(10.0) -
                         base.fleet.qoe.percentile(10.0);
        std::cout << "\nN=" << runs[i].sessions << ": p10 QoE "
                  << TableWriter::num(
                         base.fleet.qoe.percentile(10.0), 2)
                  << " -> "
                  << TableWriter::num(
                         mig.fleet.qoe.percentile(10.0), 2)
                  << " (+" << TableWriter::num(gain, 2)
                  << "), TTR max "
                  << TableWriter::num(mig.time_to_recover_ms.max(),
                                      2)
                  << " ms\n";
        GSSR_ASSERT(gain > 0.0,
                    "migration must strictly beat the no-migration "
                    "baseline's fleet p10 QoE");
    }
    const ClusterResult &rolling = runs.back().cluster;
    GSSR_ASSERT(rolling.sessions_lost == 0,
                "rolling maintenance must not lose sessions");
    GSSR_ASSERT(rolling.sessions_displaced >=
                    i64(runs.back().sessions),
                "rolling maintenance must displace every session");

    GSSR_ASSERT(replay.cluster.fleet.fingerprint ==
                        first.cluster.fleet.fingerprint &&
                    replay.cluster.migrations ==
                        first.cluster.migrations &&
                    replay.cluster.handoff_attempts ==
                        first.cluster.handoff_attempts &&
                    replay.cluster.handoff_retries ==
                        first.cluster.handoff_retries,
                "a fixed seed must replay the faulty run "
                "byte-identically");
    std::cout << "replay: fingerprint match at seed " << seeds.seed
              << "\n";

    obs::Report report("BENCH_cluster.json", "cluster_failover",
                       smoke);
    obs::JsonWriter &w = report.json();
    w.field("seed", i64(seeds.seed));
    w.field("placement", std::string("least-loaded"));
    w.key("handoff");
    w.beginObject();
    w.field("max_attempts", i64(handoff.max_attempts));
    w.field("base_backoff_ms", handoff.base_backoff_ms, 2);
    w.field("backoff_multiplier", handoff.backoff_multiplier, 2);
    w.field("max_backoff_ms", handoff.max_backoff_ms, 2);
    w.field("jitter", handoff.jitter, 2);
    w.field("deadline_ms", handoff.deadline_ms, 2);
    w.endObject();
    w.key("servers");
    w.beginArray();
    for (const ClusterServerConfig &s :
         fleetConfig(sweep.front().first).servers) {
        w.beginObject();
        w.field("region", s.region);
        w.field("region_rtt_ms", s.region_rtt_ms, 2);
        w.field("gpu_slots", i64(s.profile.gpu_slots));
        w.endObject();
    }
    w.endArray();
    w.key("sweep");
    w.beginArray();
    for (size_t i = 0; i + 1 < runs.size(); i += 2) {
        if (runs[i].scenario != "server-crash")
            break;
        w.beginObject();
        w.field("scenario", runs[i].scenario);
        w.field("sessions", i64(runs[i].sessions));
        w.field("ticks", i64(runs[i].ticks));
        w.key("arms");
        w.beginArray();
        armJson(w, runs[i]);
        armJson(w, runs[i + 1]);
        w.endArray();
        w.field("p10_qoe_gain",
                runs[i].cluster.fleet.qoe.percentile(10.0) -
                    runs[i + 1].cluster.fleet.qoe.percentile(10.0),
                4);
        w.endObject();
    }
    {
        const RunResult &run = runs.back();
        w.beginObject();
        w.field("scenario", run.scenario);
        w.field("sessions", i64(run.sessions));
        w.field("ticks", i64(run.ticks));
        w.key("arms");
        w.beginArray();
        armJson(w, run);
        w.endArray();
        w.endObject();
    }
    w.endArray();
    w.key("determinism");
    w.beginObject();
    w.field("sessions", i64(first.sessions));
    w.hexField("fingerprint_a", first.cluster.fleet.fingerprint);
    w.hexField("fingerprint_b", replay.cluster.fleet.fingerprint);
    w.field("match", true);
    w.endObject();
    report.close();
    return 0;
}
