/**
 * @file
 * Host-side microbenchmarks (google-benchmark) of the library's
 * computational kernels: rasterization, transform coding, motion
 * estimation, RoI detection, interpolation and CNN inference. These
 * measure *this host's* throughput (the simulated device timings in
 * the figure benches come from the device models instead).
 */

#include <benchmark/benchmark.h>

#include "codec/codec.hh"
#include "codec/dct.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "nn/layers.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "roi/roi_detector.hh"
#include "sr/interpolate.hh"
#include "sr/srcnn.hh"

namespace gssr
{
namespace
{

void
BM_RasterizeGameFrame(benchmark::State &state)
{
    GameWorld world(GameId::G3_Witcher3, 1);
    Scene scene = world.sceneAt(1.0);
    int width = int(state.range(0));
    int height = width * 9 / 16;
    for (auto _ : state) {
        RenderOutput out = renderScene(scene, {width, height});
        benchmark::DoNotOptimize(out.color.r().data().data());
    }
    state.SetItemsProcessed(state.iterations() * width * height);
}
BENCHMARK(BM_RasterizeGameFrame)->Arg(320)->Arg(640)
    ->Unit(benchmark::kMillisecond);

void
BM_Dct8x8RoundTrip(benchmark::State &state)
{
    Rng rng(1);
    Block8x8 block{};
    for (auto &v : block)
        v = f32(rng.uniform(-128.0, 128.0));
    for (auto _ : state) {
        Block8x8 out = inverseDct8x8(forwardDct8x8(block));
        benchmark::DoNotOptimize(out[0]);
    }
}
BENCHMARK(BM_Dct8x8RoundTrip);

void
BM_EncodeFrame(benchmark::State &state)
{
    GameWorld world(GameId::G5_GrandTheftAutoV, 1);
    int width = int(state.range(0));
    int height = width * 9 / 16;
    ColorImage frame =
        renderScene(world.sceneAt(0.5), {width, height}).color;
    CodecConfig config;
    config.gop_size = 2;
    for (auto _ : state) {
        GopEncoder encoder(config, frame.size());
        EncodedFrame out = encoder.encode(frame);
        benchmark::DoNotOptimize(out.payload.data());
    }
    state.SetItemsProcessed(state.iterations() * width * height);
}
BENCHMARK(BM_EncodeFrame)->Arg(320)->Unit(benchmark::kMillisecond);

void
BM_MotionEstimation(benchmark::State &state)
{
    GameWorld world(GameId::G10_ForzaHorizon5, 1);
    PlaneU8 ref =
        toGrayscale(renderScene(world.sceneAt(0.5), {320, 180}).color);
    PlaneU8 cur =
        toGrayscale(renderScene(world.sceneAt(0.55), {320, 180}).color);
    for (auto _ : state) {
        MvField mv = estimateMotion(ref, cur, 16, 7);
        benchmark::DoNotOptimize(mv.vectors.data());
    }
}
BENCHMARK(BM_MotionEstimation)->Unit(benchmark::kMillisecond);

void
BM_RoiDetection(benchmark::State &state)
{
    GameWorld world(GameId::G1_MetroExodus, 1);
    DepthMap depth =
        renderScene(world.sceneAt(1.0), {640, 360}).depth;
    RoiDetector detector(ServerProfile::gamingWorkstation());
    for (auto _ : state) {
        RoiDetection d = detector.detect(depth, {150, 150});
        benchmark::DoNotOptimize(d.roi);
    }
}
BENCHMARK(BM_RoiDetection)->Unit(benchmark::kMillisecond);

void
BM_BilinearUpscale2x(benchmark::State &state)
{
    GameWorld world(GameId::G2_FarCry5, 1);
    ColorImage lr = renderScene(world.sceneAt(0.4), {320, 180}).color;
    for (auto _ : state) {
        ColorImage hr =
            resizeImage(lr, {640, 360}, InterpKernel::Bilinear);
        benchmark::DoNotOptimize(hr.r().data().data());
    }
    state.SetItemsProcessed(state.iterations() * 640 * 360);
}
BENCHMARK(BM_BilinearUpscale2x)->Unit(benchmark::kMillisecond);

void
BM_CompactSrNetForward(benchmark::State &state)
{
    CompactSrNet net;
    int edge = int(state.range(0));
    Tensor input(1, edge, edge);
    for (auto _ : state) {
        Tensor out = net.forward(input);
        benchmark::DoNotOptimize(out.data().data());
    }
}
BENCHMARK(BM_CompactSrNetForward)->Arg(75)->Arg(150)
    ->Unit(benchmark::kMillisecond);

void
BM_Conv2dForward(benchmark::State &state)
{
    Rng rng(2);
    Conv2d conv(14, 14, 3);
    conv.initHe(rng);
    Tensor input(14, 64, 64);
    for (auto _ : state) {
        Tensor out = conv.forward(input);
        benchmark::DoNotOptimize(out.data().data());
    }
}
BENCHMARK(BM_Conv2dForward)->Unit(benchmark::kMillisecond);

void
BM_PsnrFullFrame(benchmark::State &state)
{
    GameWorld world(GameId::G6_GodOfWar, 1);
    ColorImage a = renderScene(world.sceneAt(0.2), {640, 360}).color;
    ColorImage b = boxDownsample(
        resizeImage(a, {1280, 720}, InterpKernel::Bilinear), 2);
    for (auto _ : state) {
        f64 v = psnr(a, b);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_PsnrFullFrame)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace gssr

BENCHMARK_MAIN();
