/**
 * @file
 * Host-side microbenchmarks of the library's computational kernels.
 *
 * Two parts:
 *  1. A thread-scaling sweep of the parallelized hot kernels (conv2d,
 *     motion search, plane transform coding, SSIM/PSNR, RoI depth
 *     preprocessing and search) over GSSR_THREADS ∈ {1, 2, 4, N}.
 *     Prints a scaling table, asserts the outputs are byte-identical
 *     across thread counts, and writes machine-readable
 *     BENCH_parallel.json. Disable with --no-sweep.
 *  2. The original google-benchmark microbenches (rasterization,
 *     transform coding, motion estimation, RoI detection,
 *     interpolation and CNN inference). These measure *this host's*
 *     throughput (the simulated device timings in the figure benches
 *     come from the device models instead).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "codec/codec.hh"
#include "codec/dct.hh"
#include "codec/motion.hh"
#include "codec/plane_coder.hh"
#include "common/fingerprint.hh"
#include "common/parallel.hh"
#include "common/stats.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "frame/depth_map.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "metrics/ssim.hh"
#include "nn/layers.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "roi/depth_processing.hh"
#include "roi/roi_detector.hh"
#include "roi/roi_search.hh"
#include "sr/interpolate.hh"
#include "sr/srcnn.hh"

namespace gssr
{
namespace
{

void
BM_RasterizeGameFrame(benchmark::State &state)
{
    GameWorld world(GameId::G3_Witcher3, 1);
    Scene scene = world.sceneAt(1.0);
    int width = int(state.range(0));
    int height = width * 9 / 16;
    for (auto _ : state) {
        RenderOutput out = renderScene(scene, {width, height});
        benchmark::DoNotOptimize(out.color.r().data().data());
    }
    state.SetItemsProcessed(state.iterations() * width * height);
}
BENCHMARK(BM_RasterizeGameFrame)->Arg(320)->Arg(640)
    ->Unit(benchmark::kMillisecond);

void
BM_Dct8x8RoundTrip(benchmark::State &state)
{
    Rng rng(1);
    Block8x8 block{};
    for (auto &v : block)
        v = f32(rng.uniform(-128.0, 128.0));
    for (auto _ : state) {
        Block8x8 out = inverseDct8x8(forwardDct8x8(block));
        benchmark::DoNotOptimize(out[0]);
    }
}
BENCHMARK(BM_Dct8x8RoundTrip);

void
BM_EncodeFrame(benchmark::State &state)
{
    GameWorld world(GameId::G5_GrandTheftAutoV, 1);
    int width = int(state.range(0));
    int height = width * 9 / 16;
    ColorImage frame =
        renderScene(world.sceneAt(0.5), {width, height}).color;
    CodecConfig config;
    config.gop_size = 2;
    for (auto _ : state) {
        GopEncoder encoder(config, frame.size());
        EncodedFrame out = encoder.encode(frame);
        benchmark::DoNotOptimize(out.payload.data());
    }
    state.SetItemsProcessed(state.iterations() * width * height);
}
BENCHMARK(BM_EncodeFrame)->Arg(320)->Unit(benchmark::kMillisecond);

void
BM_MotionEstimation(benchmark::State &state)
{
    GameWorld world(GameId::G10_ForzaHorizon5, 1);
    PlaneU8 ref =
        toGrayscale(renderScene(world.sceneAt(0.5), {320, 180}).color);
    PlaneU8 cur =
        toGrayscale(renderScene(world.sceneAt(0.55), {320, 180}).color);
    for (auto _ : state) {
        MvField mv = estimateMotion(ref, cur, 16, 7);
        benchmark::DoNotOptimize(mv.vectors.data());
    }
}
BENCHMARK(BM_MotionEstimation)->Unit(benchmark::kMillisecond);

void
BM_RoiDetection(benchmark::State &state)
{
    GameWorld world(GameId::G1_MetroExodus, 1);
    DepthMap depth =
        renderScene(world.sceneAt(1.0), {640, 360}).depth;
    RoiDetector detector(ServerProfile::gamingWorkstation());
    for (auto _ : state) {
        RoiDetection d = detector.detect(depth, {150, 150});
        benchmark::DoNotOptimize(d.roi);
    }
}
BENCHMARK(BM_RoiDetection)->Unit(benchmark::kMillisecond);

void
BM_BilinearUpscale2x(benchmark::State &state)
{
    GameWorld world(GameId::G2_FarCry5, 1);
    ColorImage lr = renderScene(world.sceneAt(0.4), {320, 180}).color;
    for (auto _ : state) {
        ColorImage hr =
            resizeImage(lr, {640, 360}, InterpKernel::Bilinear);
        benchmark::DoNotOptimize(hr.r().data().data());
    }
    state.SetItemsProcessed(state.iterations() * 640 * 360);
}
BENCHMARK(BM_BilinearUpscale2x)->Unit(benchmark::kMillisecond);

void
BM_CompactSrNetForward(benchmark::State &state)
{
    CompactSrNet net;
    int edge = int(state.range(0));
    Tensor input(1, edge, edge);
    for (auto _ : state) {
        Tensor out = net.forward(input);
        benchmark::DoNotOptimize(out.data().data());
    }
}
BENCHMARK(BM_CompactSrNetForward)->Arg(75)->Arg(150)
    ->Unit(benchmark::kMillisecond);

void
BM_Conv2dForward(benchmark::State &state)
{
    Rng rng(2);
    Conv2d conv(14, 14, 3);
    conv.initHe(rng);
    Tensor input(14, 64, 64);
    for (auto _ : state) {
        Tensor out = conv.forward(input);
        benchmark::DoNotOptimize(out.data().data());
    }
}
BENCHMARK(BM_Conv2dForward)->Unit(benchmark::kMillisecond);

void
BM_PsnrFullFrame(benchmark::State &state)
{
    GameWorld world(GameId::G6_GodOfWar, 1);
    ColorImage a = renderScene(world.sceneAt(0.2), {640, 360}).color;
    ColorImage b = boxDownsample(
        resizeImage(a, {1280, 720}, InterpKernel::Bilinear), 2);
    for (auto _ : state) {
        f64 v = psnr(a, b);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_PsnrFullFrame)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Thread-scaling sweep of the parallelized kernels.
// ---------------------------------------------------------------------

// Kernel outputs are fingerprinted (common/fingerprint.hh) so the
// sweep can assert bit-exactness across thread counts.

/** One sweep kernel: runs once, returns an output fingerprint. */
struct SweepKernel
{
    const char *name;
    std::function<u64()> run;
};

PlaneU8
randomPlaneU8(int w, int h, u64 seed)
{
    Rng rng(seed);
    PlaneU8 p(w, h);
    for (auto &v : p.data())
        v = u8(rng.uniformInt(0, 255));
    return p;
}

PlaneF32
randomPlaneF32(int w, int h, u64 seed, f64 lo, f64 hi)
{
    Rng rng(seed);
    PlaneF32 p(w, h);
    for (auto &v : p.data())
        v = f32(rng.uniform(lo, hi));
    return p;
}

std::vector<SweepKernel>
makeSweepKernels()
{
    std::vector<SweepKernel> kernels;

    kernels.push_back({"conv2d_forward", [] {
        Rng rng(2);
        Conv2d conv(14, 14, 3);
        conv.initHe(rng);
        Tensor input(14, 96, 96);
        for (size_t i = 0; i < input.data().size(); ++i)
            input.data()[i] = f32((i * 2654435761u % 1000) / 1000.0);
        Tensor out = conv.forward(input);
        return fnv1aVec(out.data());
    }});

    kernels.push_back({"conv2d_backward", [] {
        Rng rng(3);
        Conv2d conv(14, 14, 3);
        conv.initHe(rng);
        Tensor input(14, 96, 96);
        Tensor go(14, 96, 96);
        for (size_t i = 0; i < input.data().size(); ++i) {
            input.data()[i] = f32((i * 2654435761u % 1000) / 1000.0);
            go.data()[i] = f32((i % 17) - 8) / 8.0f;
        }
        Tensor gin = conv.backward(input, go);
        u64 h = fnv1aVec(gin.data());
        for (const ParamRef &p : conv.params())
            h = fnv1aVec(*p.grads, h);
        return h;
    }});

    kernels.push_back({"motion_search", [] {
        PlaneU8 ref = randomPlaneU8(320, 180, 11);
        // Correlated current frame: reference shifted by (3, 2) so
        // the three-step search does real work.
        PlaneU8 cur(320, 180);
        for (int y = 0; y < 180; ++y)
            for (int x = 0; x < 320; ++x)
                cur.at(x, y) = ref.atClamped(x + 3, y + 2);
        MvField mv = estimateMotion(ref, cur, 16, 7);
        return fnv1a(mv.vectors.data(),
                     mv.vectors.size() * sizeof(MotionVector));
    }});

    kernels.push_back({"plane_dct_encode", [] {
        PlaneF32 plane = randomPlaneF32(320, 180, 13, -64.0, 64.0);
        ByteWriter writer;
        PlaneF32 recon = encodePlane(plane, 8, writer);
        u64 h = fnv1aVec(writer.bytes());
        return fnv1aVec(recon.data(), h);
    }});

    kernels.push_back({"ssim", [] {
        PlaneU8 a = randomPlaneU8(320, 180, 17);
        PlaneU8 b = randomPlaneU8(320, 180, 19);
        f64 v = ssim(a, b);
        return fnv1a(&v, sizeof(v));
    }});

    kernels.push_back({"psnr", [] {
        PlaneU8 a = randomPlaneU8(640, 360, 23);
        PlaneU8 b = randomPlaneU8(640, 360, 29);
        f64 v = psnr(a, b);
        return fnv1a(&v, sizeof(v));
    }});

    kernels.push_back({"depth_preprocess", [] {
        // Foreground blob at 0.2 over a 0.9 background: exercises the
        // histogram, valley threshold, weighting and layering passes.
        PlaneF32 depth(640, 360, 0.9f);
        for (int y = 120; y < 240; ++y)
            for (int x = 220; x < 420; ++x)
                depth.at(x, y) = 0.2f;
        DepthPreprocessResult r =
            preprocessDepthMap(DepthMap(depth), {});
        u64 h = fnv1aVec(r.processed.data());
        return fnv1aVec(r.layer_scores, h);
    }});

    kernels.push_back({"roi_search", [] {
        PlaneF32 map = randomPlaneF32(640, 360, 31, 0.0, 1.0);
        RoiSearchConfig config;
        config.window_width = 150;
        config.window_height = 150;
        config.mode = RoiSearchMode::Exhaustive;
        RoiSearchResult r = searchRoi(map, config);
        u64 h = fnv1a(&r.roi, sizeof(r.roi));
        return fnv1a(&r.score, sizeof(r.score), h);
    }});

    return kernels;
}

/** Median-of-reps wall time of @p fn in milliseconds. */
template <typename Fn>
f64
timeMs(Fn &&fn, int reps)
{
    std::vector<f64> times;
    times.reserve(size_t(reps));
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        times.push_back(
            std::chrono::duration<f64, std::milli>(t1 - t0).count());
    }
    return stats::summarize(times).p50;
}

/**
 * Sweep every parallel kernel over thread counts {1, 2, 4, N},
 * print the scaling table, assert byte-identical outputs across
 * counts, and write BENCH_parallel.json.
 */
int
runParallelSweep(const char *json_path)
{
    const int host_threads =
        std::max(1u, std::thread::hardware_concurrency());
    // Chunk-level wall-clock timing is observability-only (never fed
    // back into the simulation); the sweep turns it on so the report
    // can carry pool utilization next to the scaling numbers.
    resetParallelPoolStats();
    setParallelTaskTiming(true);
    std::vector<int> counts = {1, 2, 4, host_threads};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());

    std::vector<SweepKernel> kernels = makeSweepKernels();

    std::printf("Parallel kernel scaling sweep (host threads: %d)\n",
                host_threads);
    std::printf("%-18s", "kernel");
    for (int t : counts)
        std::printf("  t=%-2d ms ", t);
    std::printf("  speedup@4  bit-exact\n");

    struct Row
    {
        std::string name;
        std::vector<f64> times_ms;
        f64 speedup_at_4 = 0.0;
        bool identical = true;
    };
    std::vector<Row> rows;
    int mismatches = 0;

    for (const SweepKernel &k : kernels) {
        Row row;
        row.name = k.name;
        u64 reference_hash = 0;
        for (size_t ti = 0; ti < counts.size(); ++ti) {
            setParallelThreadCount(counts[ti]);
            u64 hash = k.run(); // warm-up + fingerprint
            if (ti == 0)
                reference_hash = hash;
            else if (hash != reference_hash)
                row.identical = false;
            row.times_ms.push_back(timeMs(k.run, 3));
        }
        f64 t1 = row.times_ms[0];
        for (size_t ti = 0; ti < counts.size(); ++ti) {
            if (counts[ti] == 4 ||
                (counts[ti] == host_threads && host_threads < 4)) {
                row.speedup_at_4 = t1 / row.times_ms[ti];
            }
        }
        std::printf("%-18s", row.name.c_str());
        for (f64 ms : row.times_ms)
            std::printf("  %7.2f ", ms);
        std::printf("  %8.2fx  %s\n", row.speedup_at_4,
                    row.identical ? "yes" : "NO");
        if (!row.identical)
            ++mismatches;
        rows.push_back(std::move(row));
    }
    setParallelThreadCount(host_threads);

    setParallelTaskTiming(false);

    if (json_path != nullptr) {
        obs::Report report(json_path, "parallel_kernels", false);
        obs::JsonWriter &w = report.json();
        w.field("host_threads", host_threads);
        w.key("thread_counts");
        w.beginArray();
        for (int c : counts)
            w.value(c);
        w.endArray();
        w.key("kernels");
        w.beginArray();
        for (const Row &row : rows) {
            w.beginObject();
            w.field("name", row.name);
            w.key("times_ms");
            w.beginArray();
            for (f64 ms : row.times_ms)
                w.value(ms, 4);
            w.endArray();
            w.field("speedup_at_4", row.speedup_at_4, 4);
            w.field("bit_exact", row.identical);
            w.endObject();
        }
        w.endArray();
        // Cumulative pool activity over the whole sweep, polled from
        // the workers' atomics into the global registry.
        obs::Telemetry &tel = obs::Telemetry::global();
        tel.updateParallelPoolMetrics();
        w.key("pool");
        tel.registry().writeJson(w);
        report.close();
    }

    if (mismatches > 0) {
        std::fprintf(stderr,
                     "ERROR: %d kernel(s) produced thread-count-"
                     "dependent output\n",
                     mismatches);
    }
    return mismatches;
}

} // namespace
} // namespace gssr

int
main(int argc, char **argv)
{
    bool sweep = true;
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-sweep") == 0)
            sweep = false;
        else
            passthrough.push_back(argv[i]);
    }
    int sweep_errors = 0;
    if (sweep)
        sweep_errors = gssr::runParallelSweep("BENCH_parallel.json");

    int pargc = int(passthrough.size());
    benchmark::Initialize(&pargc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pargc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return sweep_errors > 0 ? 1 : 0;
}
