/**
 * @file
 * Host-side microbenchmarks of the library's computational kernels.
 *
 * Two parts:
 *  1. A thread-scaling sweep of the parallelized hot kernels (conv2d,
 *     motion search, plane transform coding, SSIM/PSNR, RoI depth
 *     preprocessing and search) over GSSR_THREADS ∈ {1, 2, 4, N}.
 *     Prints a scaling table, asserts the outputs are byte-identical
 *     across thread counts, and writes machine-readable
 *     BENCH_parallel.json. Disable with --no-sweep.
 *  2. The original google-benchmark microbenches (rasterization,
 *     transform coding, motion estimation, RoI detection,
 *     interpolation and CNN inference). These measure *this host's*
 *     throughput (the simulated device timings in the figure benches
 *     come from the device models instead).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "codec/codec.hh"
#include "codec/dct.hh"
#include "codec/motion.hh"
#include "codec/plane_coder.hh"
#include "common/fingerprint.hh"
#include "common/parallel.hh"
#include "common/simd.hh"
#include "common/stats.hh"
#include "kernels/kernels.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "frame/depth_map.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "metrics/ssim.hh"
#include "nn/layers.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "roi/depth_processing.hh"
#include "roi/roi_detector.hh"
#include "roi/roi_search.hh"
#include "sr/interpolate.hh"
#include "sr/srcnn.hh"

namespace gssr
{
namespace
{

void
BM_RasterizeGameFrame(benchmark::State &state)
{
    GameWorld world(GameId::G3_Witcher3, 1);
    Scene scene = world.sceneAt(1.0);
    int width = int(state.range(0));
    int height = width * 9 / 16;
    for (auto _ : state) {
        RenderOutput out = renderScene(scene, {width, height});
        benchmark::DoNotOptimize(out.color.r().data().data());
    }
    state.SetItemsProcessed(state.iterations() * width * height);
}
BENCHMARK(BM_RasterizeGameFrame)->Arg(320)->Arg(640)
    ->Unit(benchmark::kMillisecond);

void
BM_Dct8x8RoundTrip(benchmark::State &state)
{
    Rng rng(1);
    Block8x8 block{};
    for (auto &v : block)
        v = f32(rng.uniform(-128.0, 128.0));
    for (auto _ : state) {
        Block8x8 out = inverseDct8x8(forwardDct8x8(block));
        benchmark::DoNotOptimize(out[0]);
    }
}
BENCHMARK(BM_Dct8x8RoundTrip);

void
BM_EncodeFrame(benchmark::State &state)
{
    GameWorld world(GameId::G5_GrandTheftAutoV, 1);
    int width = int(state.range(0));
    int height = width * 9 / 16;
    ColorImage frame =
        renderScene(world.sceneAt(0.5), {width, height}).color;
    CodecConfig config;
    config.gop_size = 2;
    for (auto _ : state) {
        GopEncoder encoder(config, frame.size());
        EncodedFrame out = encoder.encode(frame);
        benchmark::DoNotOptimize(out.payload.data());
    }
    state.SetItemsProcessed(state.iterations() * width * height);
}
BENCHMARK(BM_EncodeFrame)->Arg(320)->Unit(benchmark::kMillisecond);

void
BM_MotionEstimation(benchmark::State &state)
{
    GameWorld world(GameId::G10_ForzaHorizon5, 1);
    PlaneU8 ref =
        toGrayscale(renderScene(world.sceneAt(0.5), {320, 180}).color);
    PlaneU8 cur =
        toGrayscale(renderScene(world.sceneAt(0.55), {320, 180}).color);
    for (auto _ : state) {
        MvField mv = estimateMotion(ref, cur, 16, 7);
        benchmark::DoNotOptimize(mv.vectors.data());
    }
}
BENCHMARK(BM_MotionEstimation)->Unit(benchmark::kMillisecond);

void
BM_RoiDetection(benchmark::State &state)
{
    GameWorld world(GameId::G1_MetroExodus, 1);
    DepthMap depth =
        renderScene(world.sceneAt(1.0), {640, 360}).depth;
    RoiDetector detector(ServerProfile::gamingWorkstation());
    for (auto _ : state) {
        RoiDetection d = detector.detect(depth, {150, 150});
        benchmark::DoNotOptimize(d.roi);
    }
}
BENCHMARK(BM_RoiDetection)->Unit(benchmark::kMillisecond);

void
BM_BilinearUpscale2x(benchmark::State &state)
{
    GameWorld world(GameId::G2_FarCry5, 1);
    ColorImage lr = renderScene(world.sceneAt(0.4), {320, 180}).color;
    for (auto _ : state) {
        ColorImage hr =
            resizeImage(lr, {640, 360}, InterpKernel::Bilinear);
        benchmark::DoNotOptimize(hr.r().data().data());
    }
    state.SetItemsProcessed(state.iterations() * 640 * 360);
}
BENCHMARK(BM_BilinearUpscale2x)->Unit(benchmark::kMillisecond);

void
BM_CompactSrNetForward(benchmark::State &state)
{
    CompactSrNet net;
    int edge = int(state.range(0));
    Tensor input(1, edge, edge);
    for (auto _ : state) {
        Tensor out = net.forward(input);
        benchmark::DoNotOptimize(out.data().data());
    }
}
BENCHMARK(BM_CompactSrNetForward)->Arg(75)->Arg(150)
    ->Unit(benchmark::kMillisecond);

void
BM_Conv2dForward(benchmark::State &state)
{
    Rng rng(2);
    Conv2d conv(14, 14, 3);
    conv.initHe(rng);
    Tensor input(14, 64, 64);
    for (auto _ : state) {
        Tensor out = conv.forward(input);
        benchmark::DoNotOptimize(out.data().data());
    }
}
BENCHMARK(BM_Conv2dForward)->Unit(benchmark::kMillisecond);

void
BM_PsnrFullFrame(benchmark::State &state)
{
    GameWorld world(GameId::G6_GodOfWar, 1);
    ColorImage a = renderScene(world.sceneAt(0.2), {640, 360}).color;
    ColorImage b = boxDownsample(
        resizeImage(a, {1280, 720}, InterpKernel::Bilinear), 2);
    for (auto _ : state) {
        f64 v = psnr(a, b);
        benchmark::DoNotOptimize(v);
    }
}
BENCHMARK(BM_PsnrFullFrame)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Thread-scaling sweep of the parallelized kernels.
// ---------------------------------------------------------------------

// Kernel outputs are fingerprinted (common/fingerprint.hh) so the
// sweep can assert bit-exactness across thread counts.

/** One sweep kernel: runs once, returns an output fingerprint. */
struct SweepKernel
{
    const char *name;
    std::function<u64()> run;
};

PlaneU8
randomPlaneU8(int w, int h, u64 seed)
{
    Rng rng(seed);
    PlaneU8 p(w, h);
    for (auto &v : p.data())
        v = u8(rng.uniformInt(0, 255));
    return p;
}

PlaneF32
randomPlaneF32(int w, int h, u64 seed, f64 lo, f64 hi)
{
    Rng rng(seed);
    PlaneF32 p(w, h);
    for (auto &v : p.data())
        v = f32(rng.uniform(lo, hi));
    return p;
}

std::vector<SweepKernel>
makeSweepKernels()
{
    std::vector<SweepKernel> kernels;

    kernels.push_back({"conv2d_forward", [] {
        Rng rng(2);
        Conv2d conv(14, 14, 3);
        conv.initHe(rng);
        Tensor input(14, 96, 96);
        for (size_t i = 0; i < input.data().size(); ++i)
            input.data()[i] = f32((i * 2654435761u % 1000) / 1000.0);
        Tensor out = conv.forward(input);
        return fnv1aVec(out.data());
    }});

    kernels.push_back({"conv2d_backward", [] {
        Rng rng(3);
        Conv2d conv(14, 14, 3);
        conv.initHe(rng);
        Tensor input(14, 96, 96);
        Tensor go(14, 96, 96);
        for (size_t i = 0; i < input.data().size(); ++i) {
            input.data()[i] = f32((i * 2654435761u % 1000) / 1000.0);
            go.data()[i] = f32((i % 17) - 8) / 8.0f;
        }
        Tensor gin = conv.backward(input, go);
        u64 h = fnv1aVec(gin.data());
        for (const ParamRef &p : conv.params())
            h = fnv1aVec(*p.grads, h);
        return h;
    }});

    kernels.push_back({"motion_search", [] {
        PlaneU8 ref = randomPlaneU8(320, 180, 11);
        // Correlated current frame: reference shifted by (3, 2) so
        // the three-step search does real work.
        PlaneU8 cur(320, 180);
        for (int y = 0; y < 180; ++y)
            for (int x = 0; x < 320; ++x)
                cur.at(x, y) = ref.atClamped(x + 3, y + 2);
        MvField mv = estimateMotion(ref, cur, 16, 7);
        return fnv1a(mv.vectors.data(),
                     mv.vectors.size() * sizeof(MotionVector));
    }});

    kernels.push_back({"plane_dct_encode", [] {
        PlaneF32 plane = randomPlaneF32(320, 180, 13, -64.0, 64.0);
        ByteWriter writer;
        PlaneF32 recon = encodePlane(plane, 8, writer);
        u64 h = fnv1aVec(writer.bytes());
        return fnv1aVec(recon.data(), h);
    }});

    kernels.push_back({"ssim", [] {
        PlaneU8 a = randomPlaneU8(320, 180, 17);
        PlaneU8 b = randomPlaneU8(320, 180, 19);
        f64 v = ssim(a, b);
        return fnv1a(&v, sizeof(v));
    }});

    kernels.push_back({"psnr", [] {
        PlaneU8 a = randomPlaneU8(640, 360, 23);
        PlaneU8 b = randomPlaneU8(640, 360, 29);
        f64 v = psnr(a, b);
        return fnv1a(&v, sizeof(v));
    }});

    kernels.push_back({"depth_preprocess", [] {
        // Foreground blob at 0.2 over a 0.9 background: exercises the
        // histogram, valley threshold, weighting and layering passes.
        PlaneF32 depth(640, 360, 0.9f);
        for (int y = 120; y < 240; ++y)
            for (int x = 220; x < 420; ++x)
                depth.at(x, y) = 0.2f;
        DepthPreprocessResult r =
            preprocessDepthMap(DepthMap(depth), {});
        u64 h = fnv1aVec(r.processed.data());
        return fnv1aVec(r.layer_scores, h);
    }});

    kernels.push_back({"roi_search", [] {
        PlaneF32 map = randomPlaneF32(640, 360, 31, 0.0, 1.0);
        RoiSearchConfig config;
        config.window_width = 150;
        config.window_height = 150;
        config.mode = RoiSearchMode::Exhaustive;
        RoiSearchResult r = searchRoi(map, config);
        u64 h = fnv1a(&r.roi, sizeof(r.roi));
        return fnv1a(&r.score, sizeof(r.score), h);
    }});

    return kernels;
}

/** Median-of-reps wall time of @p fn in milliseconds. */
template <typename Fn>
f64
timeMs(Fn &&fn, int reps)
{
    std::vector<f64> times;
    times.reserve(size_t(reps));
    for (int r = 0; r < reps; ++r) {
        auto t0 = std::chrono::steady_clock::now();
        fn();
        auto t1 = std::chrono::steady_clock::now();
        times.push_back(
            std::chrono::duration<f64, std::milli>(t1 - t0).count());
    }
    return stats::summarize(times).p50;
}

/**
 * Sweep every parallel kernel over thread counts {1, 2, 4, N},
 * print the scaling table, assert byte-identical outputs across
 * counts, and write BENCH_parallel.json.
 */
int
runParallelSweep(const char *json_path)
{
    const int host_threads =
        std::max(1u, std::thread::hardware_concurrency());
    // Chunk-level wall-clock timing is observability-only (never fed
    // back into the simulation); the sweep turns it on so the report
    // can carry pool utilization next to the scaling numbers.
    resetParallelPoolStats();
    setParallelTaskTiming(true);
    std::vector<int> counts = {1, 2, 4, host_threads};
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()),
                 counts.end());

    std::vector<SweepKernel> kernels = makeSweepKernels();

    std::printf("Parallel kernel scaling sweep (host threads: %d)\n",
                host_threads);
    std::printf("%-18s", "kernel");
    for (int t : counts)
        std::printf("  t=%-2d ms ", t);
    std::printf("  speedup@4  bit-exact\n");

    struct Row
    {
        std::string name;
        std::vector<f64> times_ms;
        f64 speedup_at_4 = 0.0;
        bool identical = true;
    };
    std::vector<Row> rows;
    int mismatches = 0;

    for (const SweepKernel &k : kernels) {
        Row row;
        row.name = k.name;
        u64 reference_hash = 0;
        for (size_t ti = 0; ti < counts.size(); ++ti) {
            setParallelThreadCount(counts[ti]);
            u64 hash = k.run(); // warm-up + fingerprint
            if (ti == 0)
                reference_hash = hash;
            else if (hash != reference_hash)
                row.identical = false;
            row.times_ms.push_back(timeMs(k.run, 3));
        }
        f64 t1 = row.times_ms[0];
        for (size_t ti = 0; ti < counts.size(); ++ti) {
            if (counts[ti] == 4 ||
                (counts[ti] == host_threads && host_threads < 4)) {
                row.speedup_at_4 = t1 / row.times_ms[ti];
            }
        }
        std::printf("%-18s", row.name.c_str());
        for (f64 ms : row.times_ms)
            std::printf("  %7.2f ", ms);
        std::printf("  %8.2fx  %s\n", row.speedup_at_4,
                    row.identical ? "yes" : "NO");
        if (!row.identical)
            ++mismatches;
        rows.push_back(std::move(row));
    }
    setParallelThreadCount(host_threads);

    setParallelTaskTiming(false);

    if (json_path != nullptr) {
        obs::Report report(json_path, "parallel_kernels", false);
        obs::JsonWriter &w = report.json();
        w.field("host_threads", host_threads);
        w.key("thread_counts");
        w.beginArray();
        for (int c : counts)
            w.value(c);
        w.endArray();
        w.key("kernels");
        w.beginArray();
        for (const Row &row : rows) {
            w.beginObject();
            w.field("name", row.name);
            w.key("times_ms");
            w.beginArray();
            for (f64 ms : row.times_ms)
                w.value(ms, 4);
            w.endArray();
            w.field("speedup_at_4", row.speedup_at_4, 4);
            w.field("bit_exact", row.identical);
            w.endObject();
        }
        w.endArray();
        // Cumulative pool activity over the whole sweep, polled from
        // the workers' atomics into the global registry.
        obs::Telemetry &tel = obs::Telemetry::global();
        tel.updateParallelPoolMetrics();
        w.key("pool");
        tel.registry().writeJson(w);
        report.close();
    }

    if (mismatches > 0) {
        std::fprintf(stderr,
                     "ERROR: %d kernel(s) produced thread-count-"
                     "dependent output\n",
                     mismatches);
    }
    return mismatches;
}

// ---------------------------------------------------------------------
// SIMD micro-kernel sweep: scalar vs AVX2, single-threaded.
// ---------------------------------------------------------------------

/**
 * One SIMD-dispatched kernel workload. run(fingerprint) executes the
 * workload once through the active dispatch table; with fingerprint
 * true it also hashes the output so the sweep can assert the ISA
 * paths are bit-exact (timed runs pass false — hashing a multi-MB
 * buffer would otherwise dominate the fast kernels). flops/bytes
 * are per run() call and feed the GFLOP/s / GB/s columns.
 */
struct SimdKernelBench
{
    std::string name;
    f64 flops;
    f64 bytes;
    std::function<u64(bool)> run;
};

std::vector<SimdKernelBench>
makeSimdKernelBenches()
{
    std::vector<SimdKernelBench> out;
    constexpr int kBlocks = 8192;   // 8x8 block batch size
    constexpr i64 kVecN = 1 << 16;  // flat-vector kernel length

    {
        // conv2d_forward through Conv2d (dominated by kern::axpy).
        auto conv = std::make_shared<Conv2d>(14, 14, 3);
        Rng rng(2);
        conv->initHe(rng);
        auto input = std::make_shared<Tensor>(14, 96, 96);
        for (size_t i = 0; i < input->data().size(); ++i)
            input->data()[i] = f32((i * 2654435761u % 1000) / 1000.0);
        f64 macs = f64(conv->macs(96, 96));
        out.push_back({"conv2d_forward", 2.0 * macs,
                       f64(2 * input->data().size() * sizeof(f32)),
                       [conv, input] (bool fp) {
                           Tensor o = conv->forward(*input);
                           return fp ? fnv1aVec(o.data()) : 0;
                       }});
    }
    {
        // conv2d_backward: grad-input pass uses kern::axpy; the
        // weight-gradient pass stays scalar by design (DESIGN.md §12),
        // so the expected speedup is structurally modest.
        auto conv = std::make_shared<Conv2d>(14, 14, 3);
        Rng rng(3);
        conv->initHe(rng);
        auto input = std::make_shared<Tensor>(14, 96, 96);
        auto go = std::make_shared<Tensor>(14, 96, 96);
        for (size_t i = 0; i < input->data().size(); ++i) {
            input->data()[i] = f32((i * 2654435761u % 1000) / 1000.0);
            go->data()[i] = f32((i % 17) - 8) / 8.0f;
        }
        f64 macs = f64(conv->macs(96, 96));
        out.push_back({"conv2d_backward", 4.0 * macs,
                       f64(3 * input->data().size() * sizeof(f32)),
                       [conv, input, go] (bool fp) {
                           // Fingerprint only grad_input: parameter
                           // gradients accumulate across calls.
                           Tensor gin = conv->backward(*input, *go);
                           return fp ? fnv1aVec(gin.data()) : 0;
                       }});
    }
    {
        // Batched 8x8 forward DCT straight through the kernel table.
        auto in = std::make_shared<AlignedVec<f32>>(
            size_t(kBlocks) * 64);
        auto dst = std::make_shared<AlignedVec<f32>>(
            size_t(kBlocks) * 64);
        Rng rng(5);
        for (auto &v : *in)
            v = f32(rng.uniform(-128.0, 128.0));
        out.push_back({"dct_forward_8x8", f64(kBlocks) * 2048.0,
                       f64(2 * kBlocks * 64 * sizeof(f32)),
                       [in, dst] (bool fp) {
                           for (int b = 0; b < kBlocks; ++b)
                               kern::dctForward8x8(
                                   in->data() + size_t(b) * 64,
                                   dst->data() + size_t(b) * 64);
                           return fp ? fnv1aVec(*dst) : 0;
                       }});
        auto dst2 = std::make_shared<AlignedVec<f32>>(
            size_t(kBlocks) * 64);
        out.push_back({"dct_inverse_8x8", f64(kBlocks) * 2048.0,
                       f64(2 * kBlocks * 64 * sizeof(f32)),
                       [in, dst2] (bool fp) {
                           for (int b = 0; b < kBlocks; ++b)
                               kern::dctInverse8x8(
                                   in->data() + size_t(b) * 64,
                                   dst2->data() + size_t(b) * 64);
                           return fp ? fnv1aVec(*dst2) : 0;
                       }});
    }
    {
        // Quantize / dequantize with a cached qp=8 step table.
        auto coef = std::make_shared<AlignedVec<f32>>(
            size_t(kBlocks) * 64);
        auto levels = std::make_shared<AlignedVec<i32>>(
            size_t(kBlocks) * 64);
        auto rec = std::make_shared<AlignedVec<f32>>(
            size_t(kBlocks) * 64);
        Rng rng(7);
        for (auto &v : *coef)
            v = f32(rng.uniform(-512.0, 512.0));
        out.push_back({"quantize_8x8", f64(kBlocks) * 64.0 * 2.0,
                       f64(kBlocks) * 64.0 * 12.0,
                       [coef, levels] (bool fp) {
                           const QuantTable &t = quantTableForQp(8);
                           for (int b = 0; b < kBlocks; ++b)
                               kern::quantize8x8(
                                   coef->data() + size_t(b) * 64,
                                   t.step.data(),
                                   levels->data() + size_t(b) * 64);
                           return fp ? fnv1aVec(*levels) : 0;
                       }});
        out.push_back({"dequantize_8x8", f64(kBlocks) * 64.0,
                       f64(kBlocks) * 64.0 * 12.0,
                       [levels, rec, coef] (bool fp) {
                           const QuantTable &t = quantTableForQp(8);
                           for (int b = 0; b < kBlocks; ++b)
                               kern::dequantize8x8(
                                   levels->data() + size_t(b) * 64,
                                   t.step.data(),
                                   rec->data() + size_t(b) * 64);
                           return fp ? fnv1aVec(*rec) : 0;
                       }});
    }
    {
        // 16x16 SAD over a grid of positions and displacements — the
        // motion-search inner loop shape.
        auto ref = std::make_shared<PlaneU8>(randomPlaneU8(320, 180, 11));
        auto cur = std::make_shared<PlaneU8>(randomPlaneU8(320, 180, 37));
        i64 calls = 0;
        for (int y = 0; y + 16 <= 176; y += 16)
            for (int x = 0; x + 16 <= 304; x += 16)
                calls += 25;
        out.push_back({"sad_16x16", f64(calls) * 256.0 * 3.0,
                       f64(calls) * 256.0 * 2.0,
                       [ref, cur] (bool fp) {
                           const int w = ref->width();
                           i64 sum = 0;
                           for (int y = 0; y + 16 <= 176; y += 16) {
                               for (int x = 0; x + 16 <= 304; x += 16) {
                                   for (int dy = -2; dy <= 2; ++dy) {
                                       for (int dx = -2; dx <= 2;
                                            ++dx) {
                                           const u8 *c =
                                               cur->data().data() +
                                               size_t(y) * w + x;
                                           const u8 *r =
                                               ref->data().data() +
                                               size_t(y + 2 + dy) * w +
                                               x + 2 + dx;
                                           sum += kern::sadRect(
                                               c, w, r, w, 16, 16,
                                               INT64_MAX);
                                       }
                                   }
                               }
                           }
                           return fp ? fnv1aValue(sum) : u64(sum != 0);
                       }});
    }
    {
        // axpy: the conv inner loop in isolation.
        auto dst = std::make_shared<AlignedVec<f32>>(size_t(kVecN));
        auto src = std::make_shared<AlignedVec<f32>>(size_t(kVecN));
        Rng rng(13);
        for (auto &v : *src)
            v = f32(rng.uniform(-1.0, 1.0));
        constexpr int kPasses = 64;
        out.push_back({"axpy_f32", 2.0 * f64(kVecN) * kPasses,
                       12.0 * f64(kVecN) * kPasses,
                       [dst, src] (bool fp) {
                           std::fill(dst->begin(), dst->end(), 0.0f);
                           for (int p = 0; p < kPasses; ++p)
                               kern::axpy(dst->data(), src->data(),
                                          0.25f + 0.25f * f32(p % 7),
                                          kVecN);
                           return fp ? fnv1aVec(*dst) : 0;
                       }});
    }
    {
        // SSIM window passes on 1920-wide f64 rows.
        constexpr int kW = 1920, kH = 128, kRadius = 5;
        auto taps = std::make_shared<std::array<f64, 11>>();
        f64 sum = 0.0;
        for (int i = -kRadius; i <= kRadius; ++i) {
            f64 wgt = std::exp(-f64(i * i) / (2.0 * 1.5 * 1.5));
            (*taps)[size_t(i + kRadius)] = wgt;
            sum += wgt;
        }
        for (auto &t : *taps)
            t /= sum;
        auto in = std::make_shared<PlaneF64>(kW, kH);
        Rng rng(17);
        for (auto &v : in->data())
            v = rng.uniform(0.0, 255.0);
        auto mid = std::make_shared<PlaneF64>(kW, kH);
        out.push_back({"ssim_gauss_row",
                       f64(kW) * kH * 22.0,
                       f64(kW) * kH * 16.0,
                       [in, mid, taps] (bool fp) {
                           for (int y = 0; y < kH; ++y)
                               kern::gaussRow(in->row(y), mid->row(y),
                                              kW, taps->data(),
                                              kRadius);
                           return fp ? fnv1aVec(mid->data()) : 0;
                       }});
        auto outp = std::make_shared<PlaneF64>(kW, kH);
        out.push_back({"ssim_sum_rows",
                       f64(kW) * kH * 22.0,
                       f64(kW) * kH * 96.0,
                       [in, outp, taps] (bool fp) {
                           const f64 *rows[11];
                           for (int y = 0; y < kH; ++y) {
                               for (int i = -kRadius; i <= kRadius;
                                    ++i) {
                                   int sy = y + i;
                                   sy = sy < 0
                                            ? 0
                                            : (sy >= kH ? kH - 1 : sy);
                                   rows[i + kRadius] = in->row(sy);
                               }
                               kern::weightedSumRows(
                                   rows, taps->data(), 11,
                                   outp->row(y), kW);
                           }
                           return fp ? fnv1aVec(outp->data()) : 0;
                       }});
    }
    {
        // Elementwise SSIM preprocessing kernels.
        auto a = std::make_shared<AlignedVec<f64>>(size_t(kVecN));
        auto b = std::make_shared<AlignedVec<f64>>(size_t(kVecN));
        Rng rng(19);
        for (i64 i = 0; i < kVecN; ++i) {
            (*a)[size_t(i)] = rng.uniform(0.0, 255.0);
            (*b)[size_t(i)] = rng.uniform(0.0, 255.0);
        }
        auto a2 = std::make_shared<AlignedVec<f64>>(size_t(kVecN));
        auto b2 = std::make_shared<AlignedVec<f64>>(size_t(kVecN));
        auto ab = std::make_shared<AlignedVec<f64>>(size_t(kVecN));
        out.push_back({"ssim_products", 3.0 * f64(kVecN),
                       40.0 * f64(kVecN), [a, b, a2, b2, ab] (bool fp) {
                           kern::ssimProducts(a->data(), b->data(),
                                              a2->data(), b2->data(),
                                              ab->data(), kVecN);
                           if (!fp)
                               return u64(0);
                           u64 h = fnv1aVec(*a2);
                           h = fnv1aVec(*b2, h);
                           return fnv1aVec(*ab, h);
                       }});
        auto u8in = std::make_shared<AlignedVec<u8>>(size_t(kVecN));
        for (i64 i = 0; i < kVecN; ++i)
            (*u8in)[size_t(i)] = u8(i * 131 % 256);
        auto f64out = std::make_shared<AlignedVec<f64>>(size_t(kVecN));
        out.push_back({"u8_to_f64", f64(kVecN), 9.0 * f64(kVecN),
                       [u8in, f64out] (bool fp) {
                           kern::u8ToF64(u8in->data(), f64out->data(),
                                         kVecN);
                           return fp ? fnv1aVec(*f64out) : 0;
                       }});
    }
    {
        // 2x box downsample of a 1920x512 plane.
        auto in =
            std::make_shared<PlaneU8>(randomPlaneU8(1920, 512, 23));
        auto dst = std::make_shared<PlaneU8>(960, 256);
        out.push_back({"box_down2_u8", f64(960) * 256.0 * 5.0,
                       f64(1920) * 512.0 + 960.0 * 256.0,
                       [in, dst](bool fp) {
                           for (int y = 0; y < 256; ++y)
                               kern::boxDown2U8(in->row(2 * y),
                                                in->row(2 * y + 1),
                                                dst->row(y), 960);
                           return fp ? fnv1aVec(dst->data()) : 0;
                       }});
    }
    {
        // End-to-end SSIM: exercises u8_to_f64, ssim_products and
        // both window passes behind the public metric.
        auto a = std::make_shared<PlaneU8>(randomPlaneU8(640, 360, 17));
        auto b = std::make_shared<PlaneU8>(randomPlaneU8(640, 360, 19));
        out.push_back({"ssim_full", 640.0 * 360.0 * 250.0,
                       640.0 * 360.0 * 2.0, [a, b] (bool fp) {
                           f64 v = ssim(*a, *b);
                           return fp ? fnv1aValue(v) : 0;
                       }});
    }
    return out;
}

/**
 * Time every SIMD-dispatched kernel on each available ISA path
 * (single-threaded, forced via forceSimdLevel), print a table with
 * GFLOP/s and GB/s columns, assert the paths are bit-exact, and write
 * BENCH_kernels.json. @p filter keeps only kernels whose name
 * contains the substring. Returns the number of bit-exact mismatches.
 */
int
runSimdSweep(const char *json_path, const std::string &filter)
{
    const int host_threads =
        std::max(1u, std::thread::hardware_concurrency());
    std::vector<SimdLevel> levels = {SimdLevel::Scalar};
    if (detectedSimdLevel() >= SimdLevel::Avx2 &&
        kern::avx2Kernels() != nullptr) {
        levels.push_back(SimdLevel::Avx2);
    }

    std::vector<SimdKernelBench> kernels = makeSimdKernelBenches();
    if (!filter.empty()) {
        kernels.erase(
            std::remove_if(kernels.begin(), kernels.end(),
                           [&](const SimdKernelBench &k) {
                               return k.name.find(filter) ==
                                      std::string::npos;
                           }),
            kernels.end());
    }

    // Single-threaded so the speedup column isolates the ISA effect.
    setParallelThreadCount(1);

    std::printf("SIMD kernel sweep (detected: %s, 1 thread)\n",
                simdLevelName(detectedSimdLevel()));
    std::printf("%-18s", "kernel");
    for (SimdLevel level : levels)
        std::printf("  %6.6s ms  GFLOP/s     GB/s", simdLevelName(level));
    std::printf("   speedup  bit-exact\n");

    struct Cell
    {
        f64 ms = 0.0;
        f64 gflops = 0.0;
        f64 gbs = 0.0;
    };
    struct Row
    {
        std::string name;
        f64 flops;
        f64 bytes;
        std::vector<Cell> cells;
        f64 speedup = 1.0;
        bool identical = true;
    };
    std::vector<Row> rows;
    int mismatches = 0;

    for (const SimdKernelBench &k : kernels) {
        Row row;
        row.name = k.name;
        row.flops = k.flops;
        row.bytes = k.bytes;
        u64 reference_hash = 0;
        for (size_t li = 0; li < levels.size(); ++li) {
            forceSimdLevel(levels[li]);
            u64 hash = k.run(true); // warm-up + fingerprint
            if (li == 0)
                reference_hash = hash;
            else if (hash != reference_hash)
                row.identical = false;
            Cell cell;
            cell.ms = timeMs([&k] { k.run(false); }, 5);
            if (cell.ms > 0.0) {
                cell.gflops = k.flops / (cell.ms * 1e6);
                cell.gbs = k.bytes / (cell.ms * 1e6);
            }
            row.cells.push_back(cell);
        }
        clearForcedSimdLevel();
        if (row.cells.size() > 1 && row.cells.back().ms > 0.0)
            row.speedup = row.cells[0].ms / row.cells.back().ms;
        std::printf("%-18s", row.name.c_str());
        for (const Cell &c : row.cells)
            std::printf("  %9.3f  %7.2f  %7.2f", c.ms, c.gflops,
                        c.gbs);
        std::printf("  %7.2fx  %s\n", row.speedup,
                    row.identical ? "yes" : "NO");
        if (!row.identical)
            ++mismatches;
        rows.push_back(std::move(row));
    }
    setParallelThreadCount(host_threads);

    if (json_path != nullptr) {
        obs::Report report(json_path, "simd_kernels", false);
        obs::JsonWriter &w = report.json();
        w.field("detected_simd", simdLevelName(detectedSimdLevel()));
        w.field("single_threaded", true);
        w.key("levels");
        w.beginArray();
        for (SimdLevel level : levels)
            w.value(simdLevelName(level));
        w.endArray();
        w.key("kernels");
        w.beginArray();
        for (const Row &row : rows) {
            w.beginObject();
            w.field("name", row.name);
            w.field("flops_per_run", row.flops, 0);
            w.field("bytes_per_run", row.bytes, 0);
            w.key("paths");
            w.beginArray();
            for (size_t li = 0; li < row.cells.size(); ++li) {
                w.beginObject();
                w.field("level", simdLevelName(levels[li]));
                w.field("time_ms", row.cells[li].ms, 4);
                w.field("gflops", row.cells[li].gflops, 4);
                w.field("gbytes_per_s", row.cells[li].gbs, 4);
                w.endObject();
            }
            w.endArray();
            w.field("speedup_vs_scalar", row.speedup, 4);
            w.field("bit_exact", row.identical);
            w.endObject();
        }
        w.endArray();
        report.close();
    }

    if (mismatches > 0) {
        std::fprintf(stderr,
                     "ERROR: %d kernel(s) differ between SIMD "
                     "paths\n",
                     mismatches);
    }
    return mismatches;
}

} // namespace
} // namespace gssr

int
main(int argc, char **argv)
{
    bool sweep = true;
    bool simd_only = false;
    std::string filter;
    std::vector<char *> passthrough;
    passthrough.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--no-sweep") == 0)
            sweep = false;
        else if (std::strcmp(argv[i], "--simd-only") == 0)
            simd_only = true;
        else if (std::strcmp(argv[i], "--filter") == 0 && i + 1 < argc)
            filter = argv[++i];
        else
            passthrough.push_back(argv[i]);
    }

    int simd_errors =
        gssr::runSimdSweep("BENCH_kernels.json", filter);
    if (simd_only)
        return simd_errors > 0 ? 1 : 0;

    int sweep_errors = 0;
    if (sweep)
        sweep_errors = gssr::runParallelSweep("BENCH_parallel.json");

    int pargc = int(passthrough.size());
    benchmark::Initialize(&pargc, passthrough.data());
    if (benchmark::ReportUnrecognizedArguments(pargc,
                                               passthrough.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return simd_errors + sweep_errors > 0 ? 1 : 0;
}
