/**
 * @file
 * FEC resilience bench — sweeps the proactive parity ratio on
 * packet-granularity bursty channels against the NACK-only reactive
 * baseline (overhead 0). Each cell streams the paper operating point
 * as an accounting session and records the wire cost (packets sent /
 * lost), the recovery split (FEC-repaired in zero RTT vs slice-
 * concealed partial decode vs dropped into the NACK round trip), and
 * the conceal rate. A small pixel session per ratio measures the
 * honest PSNR of delivered, partially concealed, and fully stale
 * frames.
 *
 * Writes BENCH_fec.json with the full sweep. `--smoke` runs a
 * reduced configuration for CI.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/report.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

struct ChannelCase
{
    std::string name;
    ChannelConfig channel;
};

struct SweepRow
{
    std::string channel;
    f64 fec_overhead = 0.0;
    int frames = 0;
    ResilienceStats stats;
};

/** Frames touched by loss after parity repair ran. */
i64
lossyFrames(const ResilienceStats &s)
{
    return s.frames_dropped + s.frames_partial;
}

/** Share of loss-hit frames salvaged by slice concealment. */
f64
concealRate(const ResilienceStats &s)
{
    i64 lossy = lossyFrames(s);
    return lossy > 0 ? f64(s.frames_partial) / f64(lossy) : 0.0;
}

/** One sweep cell: an accounting session at (channel, parity ratio). */
SweepRow
runCell(const ChannelCase &cc, f64 overhead, int frames)
{
    SessionConfig config = accountingSessionConfig();
    config.frames = frames;
    config.codec.gop_size = 30;
    config.codec.slices = 4;
    config.channel = cc.channel;
    config.channel.granularity = LossGranularity::Packet;
    config.channel_seed = 1234;
    config.resilience.nack = true;
    config.resilience.fec_overhead = overhead;

    SweepRow row;
    row.channel = cc.name;
    row.fec_overhead = overhead;
    row.frames = frames;
    row.stats = runSession(config).resilience;
    return row;
}

/** Quality cell: a small pixel session at one parity ratio. */
struct QualityRow
{
    f64 fec_overhead = 0.0;
    ResilienceStats stats;
};

QualityRow
runQualityCell(f64 overhead, bool smoke,
               const std::shared_ptr<const CompactSrNet> &net)
{
    SessionConfig config;
    config.game = GameId::G3_Witcher3;
    config.design = DesignKind::GameStreamSR;
    config.measure_quality = true;
    config.lr_size = {192, 96};
    config.frames = smoke ? 16 : 48;
    config.codec.gop_size = smoke ? 16 : 24;
    config.codec.slices = 3;
    config.sr_net = net;
    config.channel = ChannelConfig::wifiBursty();
    config.channel.granularity = LossGranularity::Packet;
    // Small frames: shrink the MTU so each frame still spans a
    // multi-packet train, and lean on the burst chain for multi-loss
    // frames that exercise partial decode.
    config.channel.mtu_bytes = 300;
    config.channel.packet_loss = 0.02;
    config.channel.ge_p_enter_burst = 0.01;
    config.channel.ge_p_exit_burst = 0.4;
    config.channel_seed = 77;
    config.resilience.nack = true;
    config.resilience.fec_overhead = overhead;

    QualityRow row;
    row.fec_overhead = overhead;
    row.stats = runSession(config).resilience;
    return row;
}

void
writeReport(bool smoke, const std::vector<SweepRow> &rows,
            const std::vector<QualityRow> &quality)
{
    obs::Report report("BENCH_fec.json", "fec_resilience", smoke);
    obs::JsonWriter &w = report.json();

    w.key("sweep");
    w.beginArray();
    for (const SweepRow &r : rows) {
        const ResilienceStats &s = r.stats;
        w.beginObject();
        w.field("channel", r.channel);
        w.field("fec_overhead", r.fec_overhead, 2);
        w.field("frames", r.frames);
        w.field("packets_sent", s.packets_sent);
        w.field("packets_lost", s.packets_lost);
        w.field("delivered", s.frames_delivered);
        w.field("fec_recovered", s.frames_fec_recovered);
        w.field("partial", s.frames_partial);
        w.field("dropped", s.frames_dropped);
        w.field("slices_concealed", s.slices_concealed);
        w.field("conceal_rate", concealRate(s), 3);
        w.field("nacks", s.nacks_sent);
        w.field("intra_refreshes", s.intra_refreshes);
        w.field("recovery_latency_ms_mean",
                s.recovery_latency_ms.mean(), 3);
        w.field("recovery_episodes", s.recovery_latency_ms.count());
        w.endObject();
    }
    w.endArray();

    w.key("quality");
    w.beginArray();
    for (const QualityRow &r : quality) {
        const ResilienceStats &s = r.stats;
        w.beginObject();
        w.field("fec_overhead", r.fec_overhead, 2);
        w.field("delivered_psnr_db", s.delivered_psnr_db.mean(), 3);
        w.field("delivered_frames", s.delivered_psnr_db.count());
        w.field("partial_psnr_db", s.partial_psnr_db.mean(), 3);
        w.field("partial_frames", s.partial_psnr_db.count());
        w.field("concealed_psnr_db", s.concealed_psnr_db.mean(), 3);
        w.field("concealed_frames", s.concealed_psnr_db.count());
        w.field("slices_concealed", s.slices_concealed);
        w.endObject();
    }
    w.endArray();

    report.close();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    printHeader("FEC resilience",
                "parity-ratio sweep vs NACK-only on packet-loss "
                "channels, 720p60 accounting" +
                    std::string(smoke ? " (smoke)" : ""));

    const int frames = smoke ? 150 : 400;
    const std::vector<f64> ratios =
        smoke ? std::vector<f64>{0.0, 0.1, 0.3}
              : std::vector<f64>{0.0, 0.05, 0.1, 0.2, 0.3, 0.5};

    // Singles-dominated vs burst-dominated loss: parity repairs the
    // former almost entirely; the latter needs slices + NACK too.
    ChannelCase singles{"wifi-singles", ChannelConfig::wifiBursty()};
    singles.channel.packet_loss = 5e-3;
    ChannelCase bursty{"wifi-bursty", ChannelConfig::wifiBursty()};
    bursty.channel.packet_loss = 5e-3;
    bursty.channel.ge_p_enter_burst = 0.004;
    bursty.channel.ge_p_exit_burst = 0.3;
    const std::vector<ChannelCase> channels = {singles, bursty};

    std::vector<SweepRow> rows;
    TableWriter table({"channel", "parity", "pkts", "lost",
                       "fec-rec", "partial", "dropped", "concealed",
                       "nacks", "recovery (ms)"});
    for (const ChannelCase &cc : channels) {
        for (f64 ratio : ratios) {
            rows.push_back(runCell(cc, ratio, frames));
            const ResilienceStats &s = rows.back().stats;
            table.addRow(
                {cc.name, TableWriter::num(ratio, 2),
                 std::to_string(s.packets_sent),
                 std::to_string(s.packets_lost),
                 std::to_string(s.frames_fec_recovered),
                 std::to_string(s.frames_partial),
                 std::to_string(s.frames_dropped),
                 std::to_string(s.slices_concealed),
                 std::to_string(s.nacks_sent),
                 s.recovery_latency_ms.count()
                     ? TableWriter::num(s.recovery_latency_ms.mean(), 1)
                     : "-"});
        }
    }
    printTable(table);
    std::cout << "\nparity repairs in zero RTT; the NACK baseline "
                 "(parity 0) pays at least one round trip per loss\n";

    // Per-ratio pixel quality: how much PSNR a partially concealed
    // frame keeps vs a fully stale held frame. The smoke run trains a
    // quick throwaway net; the full run uses the shared bench net.
    std::cout << "\nmeasuring PSNR on concealed output per parity "
                 "ratio ...\n";
    std::shared_ptr<const CompactSrNet> net;
    if (smoke) {
        TrainerConfig trainer;
        trainer.iterations = 150;
        net = std::make_shared<const CompactSrNet>(
            trainedSrNet("", trainer));
    } else {
        net = sharedSrNet();
    }

    std::vector<QualityRow> quality;
    TableWriter q_table({"parity", "delivered dB", "partial dB",
                         "stale dB", "partial frames",
                         "slices concealed"});
    for (f64 ratio : ratios) {
        quality.push_back(runQualityCell(ratio, smoke, net));
        const ResilienceStats &s = quality.back().stats;
        q_table.addRow(
            {TableWriter::num(ratio, 2),
             s.delivered_psnr_db.count()
                 ? TableWriter::num(s.delivered_psnr_db.mean(), 2)
                 : "-",
             s.partial_psnr_db.count()
                 ? TableWriter::num(s.partial_psnr_db.mean(), 2)
                 : "-",
             s.concealed_psnr_db.count()
                 ? TableWriter::num(s.concealed_psnr_db.mean(), 2)
                 : "-",
             std::to_string(s.partial_psnr_db.count()),
             std::to_string(s.slices_concealed)});
    }
    printTable(q_table);

    writeReport(smoke, rows, quality);
    return 0;
}
