/**
 * @file
 * Fig. 7 / Sec. IV-B1 — Desired RoI window sizing: the foveal
 * minimum from human visual physiology and the device maximum from
 * the NPU capability probe, for both evaluation devices.
 *
 * Paper anchors: foveal diameter ~1.25 in; ~343 px on the S8's 2K
 * panel -> ~172 px on the 720p LR frame; device maximum ~300 px.
 */

#include "bench_util.hh"
#include "roi/foveal.hh"
#include "sr/upscaler.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Fig. 7", "desired RoI window sizing (Sec. IV-B1)");

    FovealParams foveal;
    std::cout << "foveal visual angle " << foveal.visual_angle_deg
              << " deg at " << foveal.viewing_distance_cm
              << " cm -> foveal diameter "
              << TableWriter::num(fovealDiameterInches(foveal), 2)
              << " in (paper: ~1.25 in)\n\n";

    DnnUpscaler edsr(std::make_shared<const CompactSrNet>(), 2);

    TableWriter table({"device", "ppi", "foveal px (display)",
                       "foveal px (720p LR)", "max real-time RoI px",
                       "paper"});
    for (const DeviceProfile &device :
         {DeviceProfile::galaxyTabS8(), DeviceProfile::pixel7Pro()}) {
        int display_px =
            minRoiSizePixels(foveal, device.display_ppi, 1);
        int lr_px = minRoiSizePixels(foveal, device.display_ppi, 2);
        int max_px = maxRoiSizePixels(device.npu, edsr, 2);
        table.addRow({device.name,
                      TableWriter::num(device.display_ppi, 0),
                      std::to_string(display_px),
                      std::to_string(lr_px), std::to_string(max_px),
                      device.name == "galaxy-tab-s8"
                          ? "343 / 172 / 300"
                          : "- / - / ~300"});
    }
    printTable(table);
    return 0;
}
