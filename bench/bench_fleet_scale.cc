/**
 * @file
 * Multi-tenant scaling bench — sweeps the number of concurrent
 * heterogeneous sessions (N = 1..64, the canonical fleet mix) on one
 * shared edge-rack server under both scheduling policies
 * (round-robin vs. EDF) and reports, per (N, policy): admission
 * outcomes, committed vs. available capacity, frames shed, the MTP
 * latency distribution (p50/p95/p99) across all delivered frames,
 * and the aggregate transmitted bitrate.
 *
 * The whole sweep is deterministic — two runs write byte-identical
 * BENCH_fleet.json. `--smoke` runs a reduced sweep for CI.
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "pipeline/fleet.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

struct SweepRow
{
    int n = 0;
    FleetResult fleet;
};

SweepRow
runFleet(int n, SchedulePolicy policy, int gpu_slots, int ticks)
{
    FleetServer fleet(ServerProfile::edgeRack(gpu_slots), policy);
    for (int i = 0; i < n; ++i)
        fleet.admit(fleetMixSessionConfig(i));

    SweepRow row;
    row.n = n;
    row.fleet = fleet.run(ticks);
    return row;
}

void
writeJson(const char *path, bool smoke, int gpu_slots, int ticks,
          const std::vector<SweepRow> &rows)
{
    std::FILE *f = std::fopen(path, "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path);
        return;
    }
    std::fprintf(f,
                 "{\n  \"smoke\": %s,\n  \"gpu_slots\": %d,\n"
                 "  \"ticks\": %d,\n  \"sweep\": [\n",
                 smoke ? "true" : "false", gpu_slots, ticks);
    for (size_t i = 0; i < rows.size(); ++i) {
        const SweepRow &r = rows[i];
        const FleetResult &fl = r.fleet;
        std::fprintf(
            f,
            "    {\"n\": %d, \"policy\": \"%s\", "
            "\"admitted\": %lld, \"degraded\": %lld, "
            "\"rejected\": %lld, \"committed_ms\": %.4f, "
            "\"budget_ms\": %.4f, \"frames\": %lld, "
            "\"shed\": %lld, \"dropped\": %lld, "
            "\"mtp_p50_ms\": %.4f, \"mtp_p95_ms\": %.4f, "
            "\"mtp_p99_ms\": %.4f, \"mtp_mean_ms\": %.4f, "
            "\"aggregate_mbps\": %.4f, \"max_backlog_ms\": %.4f, "
            "\"fingerprint\": \"%016" PRIx64 "\"}%s\n",
            r.n, schedulePolicyName(fl.policy),
            (long long)fl.admitted, (long long)fl.degraded,
            (long long)fl.rejected, fl.committed_cost_ms,
            fl.budget_ms, (long long)fl.frames_total,
            (long long)fl.frames_shed, (long long)fl.frames_dropped,
            fl.mtp_ms.percentile(50.0), fl.mtp_ms.percentile(95.0),
            fl.mtp_ms.percentile(99.0), fl.mtp_ms.mean(),
            fl.aggregate_bitrate_mbps, fl.max_backlog_ms,
            fl.fingerprint, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
    }

    printHeader("Fleet scaling",
                "N concurrent sessions on one edge rack, RR vs EDF" +
                    std::string(smoke ? " (smoke)" : ""));

    const int gpu_slots = 8;
    const int ticks = smoke ? 90 : 240;
    const std::vector<int> sweep_n =
        smoke ? std::vector<int>{1, 4, 16, 32}
              : std::vector<int>{1, 2, 4, 8, 12, 16, 24, 32, 48, 64};
    const SchedulePolicy policies[] = {SchedulePolicy::RoundRobin,
                                       SchedulePolicy::Edf};

    std::vector<SweepRow> rows;
    TableWriter table({"N", "policy", "adm", "deg", "rej",
                       "commit/budget (ms)", "shed", "p50 (ms)",
                       "p95 (ms)", "p99 (ms)", "agg (Mb/s)"});
    for (int n : sweep_n) {
        for (SchedulePolicy policy : policies) {
            rows.push_back(runFleet(n, policy, gpu_slots, ticks));
            const FleetResult &fl = rows.back().fleet;
            table.addRow(
                {std::to_string(n), schedulePolicyName(policy),
                 std::to_string(fl.admitted),
                 std::to_string(fl.degraded),
                 std::to_string(fl.rejected),
                 TableWriter::num(fl.committed_cost_ms, 1) + "/" +
                     TableWriter::num(fl.budget_ms, 1),
                 std::to_string(fl.frames_shed),
                 TableWriter::num(fl.mtp_ms.percentile(50.0), 2),
                 TableWriter::num(fl.mtp_ms.percentile(95.0), 2),
                 TableWriter::num(fl.mtp_ms.percentile(99.0), 2),
                 TableWriter::num(fl.aggregate_bitrate_mbps, 1)});
        }
    }
    printTable(table);

    writeJson("BENCH_fleet.json", smoke, gpu_slots, ticks, rows);
    return 0;
}
