/**
 * @file
 * Multi-tenant scaling bench — sweeps the number of concurrent
 * heterogeneous sessions (N = 1..64, the canonical fleet mix) on one
 * shared edge-rack server under both scheduling policies
 * (round-robin vs. EDF) and reports, per (N, policy): admission
 * outcomes, committed vs. available capacity, frames shed, the MTP
 * latency distribution (p50/p95/p99) across all delivered frames,
 * and the aggregate transmitted bitrate.
 *
 * Every run drives a FleetServer with telemetry attached, so the
 * report also carries the registry's live fleet-wide view after the
 * last tick (p50/p99 MTP, shed/drop/conceal rate) — the same numbers
 * an operator dashboard would poll — cross-checkable against the
 * FleetResult aggregates. `--trace` additionally dumps the largest
 * EDF run's span stream as TRACE_fleet.json (Chrome trace viewer)
 * and TRACE_fleet.jsonl.
 *
 * The whole sweep is deterministic — two runs write byte-identical
 * BENCH_fleet.json. `--smoke` runs a reduced sweep for CI.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "pipeline/fleet.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

struct SweepRow
{
    int n = 0;
    FleetResult fleet;

    /** Registry gauges after the final tick (the live fleet view). */
    f64 live_p50_mtp_ms = 0.0;
    f64 live_p99_mtp_ms = 0.0;
    f64 live_shed_rate = 0.0;
    f64 live_drop_rate = 0.0;
    f64 live_conceal_rate = 0.0;
};

SweepRow
runFleet(int n, SchedulePolicy policy, int gpu_slots, int ticks,
         bool dump_trace)
{
    obs::Telemetry telemetry(dump_trace);
    FleetServer fleet(ServerProfile::edgeRack(gpu_slots), policy);
    fleet.setTelemetry(&telemetry);
    for (int i = 0; i < n; ++i)
        fleet.admit(fleetMixSessionConfig(i));

    SweepRow row;
    row.n = n;
    row.fleet = fleet.run(ticks);

    obs::MetricsRegistry &reg = telemetry.registry();
    auto gauge = [&](const char *name) {
        auto id = reg.find(name);
        return id ? reg.gaugeValue(*id) : 0.0;
    };
    row.live_p50_mtp_ms = gauge("fleet.p50_mtp_ms");
    row.live_p99_mtp_ms = gauge("fleet.p99_mtp_ms");
    row.live_shed_rate = gauge("fleet.shed_rate");
    row.live_drop_rate = gauge("fleet.drop_rate");
    row.live_conceal_rate = gauge("fleet.conceal_rate");

    if (dump_trace) {
        telemetry.spanBuffer().writeChromeTraceFile(
            "TRACE_fleet.json");
        telemetry.spanBuffer().writeJsonlFile("TRACE_fleet.jsonl");
    }
    return row;
}

void
writeReport(bool smoke, int gpu_slots, int ticks,
            const std::vector<SweepRow> &rows)
{
    obs::Report report("BENCH_fleet.json", "fleet_scale", smoke);
    obs::JsonWriter &w = report.json();
    w.field("gpu_slots", gpu_slots);
    w.field("ticks", ticks);
    w.key("sweep");
    w.beginArray();
    for (const SweepRow &r : rows) {
        const FleetResult &fl = r.fleet;
        w.beginObject();
        w.field("n", r.n);
        w.field("policy", schedulePolicyName(fl.policy));
        w.field("admitted", fl.admitted);
        w.field("degraded", fl.degraded);
        w.field("rejected", fl.rejected);
        w.field("committed_ms", fl.committed_cost_ms, 4);
        w.field("budget_ms", fl.budget_ms, 4);
        w.field("frames", fl.frames_total);
        w.field("shed", fl.frames_shed);
        w.field("dropped", fl.frames_dropped);
        w.field("mtp_p50_ms", fl.mtp_ms.percentile(50.0), 4);
        w.field("mtp_p95_ms", fl.mtp_ms.percentile(95.0), 4);
        w.field("mtp_p99_ms", fl.mtp_ms.percentile(99.0), 4);
        w.field("mtp_mean_ms", fl.mtp_ms.mean(), 4);
        w.field("aggregate_mbps", fl.aggregate_bitrate_mbps, 4);
        w.field("max_backlog_ms", fl.max_backlog_ms, 4);
        w.hexField("fingerprint", fl.fingerprint);
        // The registry gauges the fleet refreshed on its last tick.
        // Percentiles are histogram-resolved (0.5 ms buckets), so
        // they approximate the exact rank-based mtp_p* above.
        w.key("telemetry");
        w.beginObject();
        w.field("p50_mtp_ms", r.live_p50_mtp_ms, 4);
        w.field("p99_mtp_ms", r.live_p99_mtp_ms, 4);
        w.field("shed_rate", r.live_shed_rate, 6);
        w.field("drop_rate", r.live_drop_rate, 6);
        w.field("conceal_rate", r.live_conceal_rate, 6);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    report.close();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool trace = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--trace") == 0)
            trace = true;
    }

    printHeader("Fleet scaling",
                "N concurrent sessions on one edge rack, RR vs EDF" +
                    std::string(smoke ? " (smoke)" : ""));

    const int gpu_slots = 8;
    const int ticks = smoke ? 90 : 240;
    const std::vector<int> sweep_n =
        smoke ? std::vector<int>{1, 4, 16, 32}
              : std::vector<int>{1, 2, 4, 8, 12, 16, 24, 32, 48, 64};
    const SchedulePolicy policies[] = {SchedulePolicy::RoundRobin,
                                       SchedulePolicy::Edf};

    std::vector<SweepRow> rows;
    TableWriter table({"N", "policy", "adm", "deg", "rej",
                       "commit/budget (ms)", "shed", "p50 (ms)",
                       "p95 (ms)", "p99 (ms)", "agg (Mb/s)"});
    for (int n : sweep_n) {
        for (SchedulePolicy policy : policies) {
            // Span capture only for the largest EDF run: one full
            // trace is plenty, and span buffers grow with N x ticks.
            const bool dump = trace && n == sweep_n.back() &&
                              policy == SchedulePolicy::Edf;
            rows.push_back(
                runFleet(n, policy, gpu_slots, ticks, dump));
            const FleetResult &fl = rows.back().fleet;
            table.addRow(
                {std::to_string(n), schedulePolicyName(policy),
                 std::to_string(fl.admitted),
                 std::to_string(fl.degraded),
                 std::to_string(fl.rejected),
                 TableWriter::num(fl.committed_cost_ms, 1) + "/" +
                     TableWriter::num(fl.budget_ms, 1),
                 std::to_string(fl.frames_shed),
                 TableWriter::num(fl.mtp_ms.percentile(50.0), 2),
                 TableWriter::num(fl.mtp_ms.percentile(95.0), 2),
                 TableWriter::num(fl.mtp_ms.percentile(99.0), 2),
                 TableWriter::num(fl.aggregate_bitrate_mbps, 1)});
        }
    }
    printTable(table);

    writeReport(smoke, gpu_slots, ticks, rows);
    return 0;
}
