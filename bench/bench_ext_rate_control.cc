/**
 * @file
 * Extension bench — encoder rate control: the controller adapts qp
 * per GOP to hold the stream at a target bitrate, which is what
 * keeps the 720p stream inside the channel capacity whatever the
 * scene complexity. Prints the per-GOP convergence trace for two
 * targets on heavy content (GTA-style city).
 */

#include "bench_util.hh"
#include "codec/rate_control.hh"
#include "frame/downsample.hh"
#include "render/rasterizer.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Extension",
                "encoder rate control convergence (G5 city content, "
                "480x270, GOP 10)");

    for (f64 target : {8.0, 3.0}) {
        std::cout << "\ntarget " << TableWriter::num(target, 1)
                  << " Mbps:\n";
        GameWorld world(GameId::G5_GrandTheftAutoV, 4);
        const Size size{480, 270};
        CodecConfig codec;
        codec.gop_size = 10;
        codec.qp = 4; // start far too fine
        GopEncoder encoder(codec, size);
        RateControlConfig rc_config;
        rc_config.target_mbps = target;
        RateController rc(rc_config, codec.qp);

        TableWriter table({"GOP", "qp", "observed Mbps",
                           "GOP bytes (KB)"});
        int gops = 6;
        for (int g = 0; g < gops; ++g) {
            size_t gop_bytes = 0;
            int qp_used = 0;
            for (int i = 0; i < codec.gop_size; ++i) {
                qp_used =
                    rc.qpForNextFrame(encoder.nextFrameType());
                encoder.setQp(qp_used);
                f64 t = (g * codec.gop_size + i) / 60.0;
                ColorImage hr =
                    renderScene(world.sceneAt(t),
                                {size.width * 2, size.height * 2})
                        .color;
                EncodedFrame f =
                    encoder.encode(boxDownsample(hr, 2));
                rc.observe(f);
                gop_bytes += f.sizeBytes();
            }
            table.addRow({std::to_string(g),
                          std::to_string(qp_used),
                          TableWriter::num(rc.observedMbps(), 2),
                          std::to_string(gop_bytes / 1024)});
        }
        printTable(table);
    }
    std::cout << "\ntakeaway: qp converges within 2-3 GOPs and the "
                 "observed bitrate settles inside the dead zone of "
                 "the target.\n";
    return 0;
}
