/**
 * @file
 * Fig. 14 — Quality vs. the SOTA across all ten games:
 *  (a) objective: mean PSNR gain (paper: ~2 dB average),
 *  (b) perceptual: LPIPS improvement, lower = better (paper: ~0.2
 *      average difference; >=0.15 is visibly discernible).
 *
 * Runs at 480x270 -> 960x540 so all ten games complete in a few
 * minutes; the per-game ordering and the gain magnitudes are the
 * reproduced quantities.
 */

#include "bench_util.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Fig. 14",
                "quality vs. SOTA across the Table I games "
                "(480x270 -> 960x540, GOP 30)");

    TableWriter table({"game", "SOTA PSNR", "ours PSNR",
                       "PSNR gain (dB)", "SOTA LPIPS", "ours LPIPS",
                       "LPIPS improvement"});
    SampleStats psnr_gain, lpips_gain;

    for (const GameInfo &game : tableOneGames()) {
        SessionConfig config = paperSessionConfig();
        config.game = game.id;
        config.lr_size = {480, 270};
        config.frames = 30;
        config.codec.gop_size = 30;
        config.sr_net = sharedSrNet();
        config.measure_quality = true;
        config.quality_stride = 3;
        config.measure_perceptual = true;
        config.perceptual_stride = 4;

        std::cout << "running " << game.short_name << " ("
                  << game.title << ") ...\n";
        config.design = DesignKind::GameStreamSR;
        SessionResult ours = runSession(config);
        config.design = DesignKind::Nemo;
        SessionResult nemo = runSession(config);

        f64 gain = ours.meanPsnrDb() - nemo.meanPsnrDb();
        f64 lpips_improvement = nemo.meanLpips() - ours.meanLpips();
        psnr_gain.add(gain);
        lpips_gain.add(lpips_improvement);
        table.addRow({game.short_name,
                      TableWriter::num(nemo.meanPsnrDb(), 2),
                      TableWriter::num(ours.meanPsnrDb(), 2),
                      TableWriter::num(gain, 2),
                      TableWriter::num(nemo.meanLpips(), 3),
                      TableWriter::num(ours.meanLpips(), 3),
                      TableWriter::num(lpips_improvement, 3)});
    }
    printTable(table);
    std::cout << "\nmean PSNR gain: "
              << TableWriter::num(psnr_gain.mean(), 2)
              << " dB (paper: ~2 dB)\nmean LPIPS improvement: "
              << TableWriter::num(lpips_gain.mean(), 3)
              << " (paper: ~0.2; >=0.15 visibly discernible)\n";
    return 0;
}
