/**
 * @file
 * Ablation — RoI window size sweep: the quality/throughput
 * trade-off behind the paper's 300 px choice. Larger windows raise
 * quality (more of the frame gets DNN SR) but blow the NPU budget;
 * smaller windows are fast but leave quality on the table.
 */

#include "bench_util.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "render/rasterizer.hh"
#include "roi/roi_detector.hh"
#include "sr/interpolate.hh"
#include "sr/upscaler.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Ablation",
                "RoI window size sweep (S8 Tab NPU; quality at "
                "480x270 -> 960x540 with window scaled 480/1280)");

    DeviceProfile s8 = DeviceProfile::galaxyTabS8();
    DnnUpscaler dnn(sharedSrNet(), 2);
    RoiDetector detector(ServerProfile::gamingWorkstation());

    // Quality probe content: one frame per of a few games.
    struct Probe
    {
        ColorImage hr;
        ColorImage lr;
        DepthMap depth;
    };
    std::vector<Probe> probes;
    for (GameId id : {GameId::G1_MetroExodus, GameId::G3_Witcher3,
                      GameId::G10_ForzaHorizon5}) {
        GameWorld world(id, 9);
        RenderOutput hr = renderScene(world.sceneAt(0.9), {960, 540});
        Probe p;
        p.lr = boxDownsample(hr.color, 2);
        p.depth = boxDownsample(hr.depth, 2);
        p.hr = std::move(hr.color);
        probes.push_back(std::move(p));
    }

    TableWriter table({"window (720p px)", "NPU latency (ms)",
                       "output FPS", "PSNR (dB)", "real-time"});
    for (int edge_720p : {100, 200, 300, 400, 500}) {
        i64 macs = dnn.macs({edge_720p, edge_720p}, 2);
        f64 npu_ms =
            s8.npu.latencyMs(macs, i64(edge_720p) * edge_720p);

        // Quality with the window scaled to the probe resolution.
        int edge = edge_720p * 480 / 1280;
        f64 psnr_sum = 0.0;
        for (const Probe &p : probes) {
            RoiDetection d = detector.detect(p.depth, {edge, edge});
            ColorImage out =
                resizeImage(p.lr, p.hr.size(), InterpKernel::Bilinear);
            ColorImage roi_hr = dnn.upscale(p.lr.crop(d.roi), 2);
            out.blit(roi_hr, d.roi.x * 2, d.roi.y * 2);
            psnr_sum += psnr(out, p.hr);
        }
        table.addRow({std::to_string(edge_720p) + "x" +
                          std::to_string(edge_720p),
                      TableWriter::num(npu_ms, 1),
                      TableWriter::num(1000.0 / npu_ms, 1),
                      TableWriter::num(psnr_sum / f64(probes.size()),
                                       2),
                      npu_ms <= 1000.0 / 60.0 ? "yes" : "no"});
    }
    printTable(table);
    std::cout << "\ntakeaway: 300x300 is the largest window that "
                 "meets the 16.66 ms deadline — the paper's choice "
                 "maximizes quality under the real-time bound.\n";
    return 0;
}
