/**
 * @file
 * Related-work baseline — RoI-based *encoding* (Liu et al.
 * TCSVT'15 and the content-aware encoders the paper's Related Work
 * surveys): spend the bitrate budget on the important region at
 * encode time instead of super-resolving it at the client. This
 * bench compares, at (approximately) matched stream size:
 *
 *   A. uniform encode + bilinear upscale (plain streaming),
 *   B. RoI-weighted encode (fine qp inside RoI) + bilinear upscale,
 *   C. uniform encode + RoI DNN super-resolution (GameStreamSR).
 *
 * The reproduced insight: RoI-encoding shifts fidelity into the RoI
 * but cannot recover *resolution* — only SR adds the missing
 * high-frequency content, which is why the paper builds on SR.
 */

#include "bench_util.hh"
#include "codec/bitstream.hh"
#include "codec/plane_coder.hh"
#include "frame/downsample.hh"
#include "metrics/psnr.hh"
#include "render/rasterizer.hh"
#include "roi/roi_detector.hh"
#include "sr/interpolate.hh"
#include "sr/upscaler.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

/** Intra-encode a YUV frame with optional RoI weighting; returns the
 *  reconstruction and the compressed size. */
struct IntraResult
{
    Yuv420Image recon;
    size_t bytes = 0;
};

PlaneF32
unbias(const PlaneU8 &in)
{
    PlaneF32 out(in.width(), in.height());
    for (i64 i = 0; i < in.sampleCount(); ++i)
        out.data()[size_t(i)] = f32(in.data()[size_t(i)]) - 128.0f;
    return out;
}

PlaneU8
rebias(const PlaneF32 &in)
{
    PlaneU8 out(in.width(), in.height());
    for (i64 i = 0; i < in.sampleCount(); ++i)
        out.data()[size_t(i)] =
            toPixel(f64(in.data()[size_t(i)]) + 128.0);
    return out;
}

IntraResult
intraEncode(const ColorImage &frame, int qp, int roi_qp,
            const Rect *roi)
{
    Yuv420Image yuv = rgbToYuv420(frame);
    ByteWriter writer;
    IntraResult out;
    out.recon = Yuv420Image(frame.width(), frame.height());
    auto code = [&](const PlaneU8 &plane, PlaneU8 &recon, int shift) {
        if (roi) {
            Rect r{roi->x >> shift, roi->y >> shift,
                   roi->width >> shift, roi->height >> shift};
            recon = rebias(
                encodePlaneRoi(unbias(plane), qp, roi_qp, r, writer));
        } else {
            recon = rebias(encodePlane(unbias(plane), qp, writer));
        }
    };
    code(yuv.y, out.recon.y, 0);
    code(yuv.u, out.recon.u, 1);
    code(yuv.v, out.recon.v, 1);
    out.bytes = writer.size();
    return out;
}

f64
roiPsnr(const ColorImage &a, const ColorImage &b, const Rect &roi)
{
    return psnr(a.crop(roi), b.crop(roi));
}

} // namespace

int
main()
{
    printHeader("Baseline",
                "RoI-based encoding vs. RoI-based super-resolution "
                "(G3, 480x270 -> 960x540, intra frames)");

    GameWorld world(GameId::G3_Witcher3, 12);
    DnnUpscaler dnn(sharedSrNet(), 2);
    RoiDetector detector(ServerProfile::gamingWorkstation());

    TableWriter table({"scheme", "stream KB", "RoI PSNR (dB)",
                       "frame PSNR (dB)"});
    SampleStats roi_a, roi_b, roi_c, size_a, size_b;

    const int frames = 3;
    for (int i = 0; i < frames; ++i) {
        RenderOutput hr =
            renderScene(world.sceneAt(0.5 + i * 0.6), {960, 540});
        ColorImage lr = boxDownsample(hr.color, 2);
        DepthMap lr_depth = boxDownsample(hr.depth, 2);
        RoiDetection d = detector.detect(lr_depth, {110, 110});
        Rect hr_roi{d.roi.x * 2, d.roi.y * 2, d.roi.width * 2,
                    d.roi.height * 2};

        // A: uniform qp 14 + bilinear.
        IntraResult a = intraEncode(lr, 14, 0, nullptr);
        ColorImage a_up = resizeImage(yuv420ToRgb(a.recon),
                                      {960, 540},
                                      InterpKernel::Bilinear);

        // B: RoI-weighted (qp 4 inside, qp coarser outside chosen so
        // the size roughly matches A) + bilinear.
        IntraResult b = intraEncode(lr, 14, 4, &d.roi);
        for (int qp_out = 15; qp_out <= 40 &&
                              b.bytes > a.bytes * 11 / 10;
             ++qp_out) {
            b = intraEncode(lr, qp_out, 4, &d.roi);
        }
        ColorImage b_up = resizeImage(yuv420ToRgb(b.recon),
                                      {960, 540},
                                      InterpKernel::Bilinear);

        // C: GameStreamSR — A's stream, RoI super-resolved.
        ColorImage c_up = a_up;
        ColorImage lr_decoded = yuv420ToRgb(a.recon);
        c_up.blit(dnn.upscale(lr_decoded.crop(d.roi), 2),
                  hr_roi.x, hr_roi.y);

        roi_a.add(roiPsnr(a_up, hr.color, hr_roi));
        roi_b.add(roiPsnr(b_up, hr.color, hr_roi));
        roi_c.add(roiPsnr(c_up, hr.color, hr_roi));
        size_a.add(f64(a.bytes));
        size_b.add(f64(b.bytes));

        if (i == frames - 1) {
            table.addRow({"A: uniform + bilinear",
                          TableWriter::num(size_a.mean() / 1024, 0),
                          TableWriter::num(roi_a.mean(), 2),
                          TableWriter::num(psnr(a_up, hr.color), 2)});
            table.addRow({"B: RoI-encode + bilinear",
                          TableWriter::num(size_b.mean() / 1024, 0),
                          TableWriter::num(roi_b.mean(), 2),
                          TableWriter::num(psnr(b_up, hr.color), 2)});
            table.addRow({"C: uniform + RoI-SR (this work)",
                          TableWriter::num(size_a.mean() / 1024, 0),
                          TableWriter::num(roi_c.mean(), 2),
                          TableWriter::num(psnr(c_up, hr.color), 2)});
        }
    }
    printTable(table);
    std::cout
        << "\ntakeaways: (1) RoI-weighted encoding does lift in-RoI "
           "fidelity, but it pays with a\ndegraded periphery at "
           "matched bitrate (lower full-frame PSNR) and — the "
           "paper's\nactual objection (Sec. VII) — it requires "
           "encoder/decoder modifications that break\nthe "
           "codec-agnostic hardware-decode path and capped prior "
           "work below 30 FPS.\n(2) RoI-SR (C) improves on plain "
           "streaming (A) at identical bytes with an\nunmodified "
           "codec, and the two techniques are complementary rather "
           "than exclusive.\n";
    return 0;
}
