/**
 * @file
 * Fig. 10b — End-to-end motion-to-photon latency improvement for
 * reference frames over the SOTA, per game, on both devices.
 *
 * Paper anchors: ~3.8x (S8 Tab) and ~4x (Pixel 7 Pro); ours stays
 * under 70 ms for all frames, within the 100-150 ms cloud-gaming
 * budget.
 */

#include "bench_util.hh"

using namespace gssr;
using namespace gssr::bench;

int
main()
{
    printHeader("Fig. 10b",
                "reference-frame MTP latency improvement vs. SOTA "
                "(720p -> 1440p over WiFi)");

    TableWriter table({"game", "device", "SOTA MTP (ms)",
                       "ours MTP (ms)", "improvement",
                       "ours nonref MTP (ms)"});

    SampleStats s8_improvement, pixel_improvement;
    for (const GameInfo &game : tableOneGames()) {
        for (const DeviceProfile &device :
             {DeviceProfile::galaxyTabS8(),
              DeviceProfile::pixel7Pro()}) {
            SessionConfig config = accountingSessionConfig();
            config.game = game.id;
            config.frames = 12; // MTP is stable across a GOP tail
            config.codec.gop_size = 12;
            config.device = device;

            config.design = DesignKind::GameStreamSR;
            SessionResult ours = runSession(config);
            config.design = DesignKind::Nemo;
            SessionResult nemo = runSession(config);

            f64 ours_ref = ours.meanMtpMs(FrameType::Reference);
            f64 nemo_ref = nemo.meanMtpMs(FrameType::Reference);
            f64 improvement = nemo_ref / ours_ref;
            (device.name == "galaxy-tab-s8" ? s8_improvement
                                            : pixel_improvement)
                .add(improvement);
            table.addRow(
                {game.short_name, device.name,
                 TableWriter::num(nemo_ref, 1),
                 TableWriter::num(ours_ref, 1),
                 TableWriter::num(improvement, 2) + "x",
                 TableWriter::num(
                     ours.meanMtpMs(FrameType::NonReference), 1)});
        }
    }
    printTable(table);
    std::cout << "\nmean improvement: S8 Tab "
              << TableWriter::num(s8_improvement.mean(), 2)
              << "x (paper ~3.8x), Pixel 7 Pro "
              << TableWriter::num(pixel_improvement.mean(), 2)
              << "x (paper ~4x)\n";
    return 0;
}
