/**
 * @file
 * Unified QoE control-plane bench — runs the canonical heterogeneous
 * fleet mix through two fault scenarios (a bursty-loss channel
 * episode hitting every tenant, and a thermal-throttle episode on
 * every client device) with the three legacy independent knob loops
 * (AIMD backoff, degradation ladder, admission ladder) against the
 * unified QoeController arbitrating the same advisors' proposals by
 * predicted delta-QoE-per-cost.
 *
 * The fleet objective is the 10th percentile of the per-frame QoE
 * distribution across all tenants — maximize the worst-served
 * experience, not the average. The bench asserts the unified plane
 * strictly improves p10 QoE on both scenarios without regressing
 * p99 motion-to-photon latency.
 *
 * The predictor is calibrated once against measured PSNR on two
 * renderer scenes (calibrateQoePredictor) and the same calibrated
 * model scores both arms, so the comparison isolates the *control*
 * difference. Writes BENCH_qoe.json. `--smoke` runs a reduced
 * configuration for CI.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "obs/report.hh"
#include "obs/telemetry.hh"
#include "pipeline/fleet.hh"
#include "qoe/predictor.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

/** One (scenario x arm) fleet run. */
struct ArmResult
{
    std::string scenario;
    bool unified = false;
    FleetResult fleet;

    /** qoe.fleet_p10 gauge after the final tick (the live view). */
    f64 live_fleet_p10 = 0.0;
};

/** Scripted per-tenant overrides of one fault scenario. */
struct Scenario
{
    std::string name;
    FaultScenario channel;
    bool device_stress = false;
    DeviceFaultScenario device_faults = DeviceFaultScenario::none();
};

/** Two pinned-Bad Gilbert-Elliott burst windows plus residual loss:
 *  every tenant rides through the same two loss episodes. */
FaultScenario
burstyLoss(int ticks)
{
    FaultScenario s;
    s.name = "bursty-loss";
    const i64 len = std::max<i64>(12, ticks / 12);
    FaultEvent burst;
    burst.force_burst = true;
    burst.extra_loss = 0.08;
    burst.start_frame = ticks / 6;
    burst.end_frame = burst.start_frame + len;
    s.events.push_back(burst);
    burst.start_frame = ticks / 2;
    burst.end_frame = burst.start_frame + len;
    s.events.push_back(burst);
    return s;
}

ArmResult
runArm(const Scenario &sc, bool unified, int sessions, int ticks,
       const qoe::QoeCalibration &calibration, u64 seed)
{
    obs::Telemetry telemetry(/*spans=*/false);
    FleetServer fleet(ServerProfile::edgeRack(2), SchedulePolicy::Edf);
    fleet.setTelemetry(&telemetry);

    for (int i = 0; i < sessions; ++i) {
        SessionConfig config = fleetMixSessionConfig(i);
        // All tenants run the GameStreamSR client: the NEMO baseline
        // has no NPU degradation ladder, so its frames would dilute
        // the p10 objective with a floor no control plane can move.
        config.design = DesignKind::GameStreamSR;
        // --seed offsets the stochastic streams; 0 (the default)
        // keeps the pinned configuration bit for bit.
        config.world_seed += seed * 7919;
        config.channel_seed += seed * 1000003;
        config.frames = ticks;
        config.fault_scenario = sc.channel;
        config.device_stress.enabled = sc.device_stress;
        config.device_faults = sc.device_faults;
        // Both arms score QoE with the same calibrated predictor;
        // only the *control* differs.
        config.qoe.predictor.calibration = calibration;
        config.qoe.enabled = unified;
        fleet.admit(config);
    }

    ArmResult arm;
    arm.scenario = sc.name;
    arm.unified = unified;
    arm.fleet = fleet.run(ticks);

    obs::MetricsRegistry &reg = telemetry.registry();
    if (auto id = reg.find("qoe.fleet_p10"))
        arm.live_fleet_p10 = reg.gaugeValue(*id);
    return arm;
}

void
writeReport(bool smoke, int sessions, int ticks, u64 seed,
            const qoe::CalibrationResult &calibration,
            const std::vector<ArmResult> &arms)
{
    obs::Report report("BENCH_qoe.json", "qoe_control", smoke);
    obs::JsonWriter &w = report.json();
    w.field("sessions", sessions);
    w.field("ticks", ticks);
    w.field("seed", i64(seed));

    w.key("calibration");
    w.beginObject();
    w.field("gain", calibration.calibration.gain, 6);
    w.field("offset", calibration.calibration.offset, 6);
    w.field("max_abs_error_db", calibration.max_abs_error_db, 4);
    w.field("samples", i64(calibration.samples.size()));
    w.endObject();

    w.key("scenarios");
    w.beginArray();
    for (size_t i = 0; i + 1 < arms.size(); i += 2) {
        const ArmResult &indep = arms[i];
        const ArmResult &uni = arms[i + 1];
        w.beginObject();
        w.field("scenario", indep.scenario);
        w.key("arms");
        w.beginArray();
        for (const ArmResult *a : {&indep, &uni}) {
            const FleetResult &fl = a->fleet;
            i64 actions = 0;
            for (const FleetSessionStats &s : fl.sessions)
                actions += s.qoe_actions;
            w.beginObject();
            w.field("arm",
                    std::string(a->unified ? "unified"
                                           : "independent"));
            w.field("p10_qoe", fl.qoe.percentile(10.0), 4);
            w.field("p50_qoe", fl.qoe.percentile(50.0), 4);
            w.field("mean_qoe", fl.qoe.mean(), 4);
            w.field("live_fleet_p10", a->live_fleet_p10, 4);
            w.field("p50_mtp_ms", fl.mtp_ms.percentile(50.0), 4);
            w.field("p99_mtp_ms", fl.mtp_ms.percentile(99.0), 4);
            w.field("frames", fl.frames_total);
            w.field("shed", fl.frames_shed);
            w.field("dropped", fl.frames_dropped);
            w.field("qoe_actions", actions);
            w.field("aggregate_mbps", fl.aggregate_bitrate_mbps, 4);
            w.endObject();
        }
        w.endArray();
        w.field("p10_qoe_gain",
                uni.fleet.qoe.percentile(10.0) -
                    indep.fleet.qoe.percentile(10.0),
                4);
        w.field("p99_mtp_delta_ms",
                uni.fleet.mtp_ms.percentile(99.0) -
                    indep.fleet.mtp_ms.percentile(99.0),
                4);
        w.endObject();
    }
    w.endArray();

    report.close();
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    u64 seed = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
            seed = u64(std::strtoull(argv[++i], nullptr, 10));
    }

    printHeader("QoE control plane",
                "unified controller vs. independent knob loops, "
                "fleet p10 QoE objective" +
                    std::string(smoke ? " (smoke)" : ""));

    const int sessions = smoke ? 6 : 8;
    const int ticks = smoke ? 240 : 600;

    // Calibrate the spatial core once against measured PSNR on two
    // renderer scenes; both arms score with the result.
    const qoe::CalibrationResult calibration = calibrateQoePredictor(
        qoe::QoePredictorConfig{}, Size{192, 96},
        {{GameId::G3_Witcher3, 7}, {GameId::G1_MetroExodus, 3}});
    std::cout << "calibration: gain="
              << TableWriter::num(calibration.calibration.gain, 3)
              << " offset="
              << TableWriter::num(calibration.calibration.offset, 2)
              << " max_err="
              << TableWriter::num(calibration.max_abs_error_db, 2)
              << " dB over " << calibration.samples.size()
              << " samples\n\n";

    std::vector<Scenario> scenarios;
    scenarios.push_back(
        {"bursty-loss", burstyLoss(ticks), false,
         DeviceFaultScenario::none()});
    // A hard soak window with recovery room on both sides: the
    // proactive thermal advisor differentiates entering the episode
    // (precision steps before the knee) and the eager unified
    // up-steps differentiate leaving it (the legacy ladder waits 48
    // clean frames while headroom is already back).
    scenarios.push_back({"thermal-throttle", FaultScenario::none(),
                         true,
                         DeviceFaultScenario::thermalSoak(
                             ticks / 6, ticks / 6 + ticks / 2,
                             10.0)});

    std::vector<ArmResult> arms;
    TableWriter table({"scenario", "arm", "p10 QoE", "p50 QoE",
                       "mean QoE", "p99 MTP", "shed", "dropped",
                       "actions", "Mbit/s"});
    for (const Scenario &sc : scenarios) {
        for (bool unified : {false, true}) {
            arms.push_back(runArm(sc, unified, sessions, ticks,
                                  calibration.calibration, seed));
            const ArmResult &a = arms.back();
            const FleetResult &fl = a.fleet;
            i64 actions = 0;
            for (const FleetSessionStats &s : fl.sessions)
                actions += s.qoe_actions;
            table.addRow(
                {a.scenario, a.unified ? "unified" : "independent",
                 TableWriter::num(fl.qoe.percentile(10.0), 2),
                 TableWriter::num(fl.qoe.percentile(50.0), 2),
                 TableWriter::num(fl.qoe.mean(), 2),
                 TableWriter::num(fl.mtp_ms.percentile(99.0), 2),
                 std::to_string(fl.frames_shed),
                 std::to_string(fl.frames_dropped),
                 std::to_string(actions),
                 TableWriter::num(fl.aggregate_bitrate_mbps, 2)});
        }
    }
    printTable(table);

    // The headline contract: on every scenario the unified plane
    // strictly raises the fleet's p10 QoE without hurting tail MTP.
    for (size_t i = 0; i + 1 < arms.size(); i += 2) {
        const FleetResult &indep = arms[i].fleet;
        const FleetResult &uni = arms[i + 1].fleet;
        const f64 p10_gain = uni.qoe.percentile(10.0) -
                             indep.qoe.percentile(10.0);
        const f64 mtp_delta = uni.mtp_ms.percentile(99.0) -
                              indep.mtp_ms.percentile(99.0);
        std::cout << "\n" << arms[i].scenario << ": p10 QoE "
                  << TableWriter::num(indep.qoe.percentile(10.0), 2)
                  << " -> "
                  << TableWriter::num(uni.qoe.percentile(10.0), 2)
                  << " (+" << TableWriter::num(p10_gain, 2)
                  << "), p99 MTP delta "
                  << TableWriter::num(mtp_delta, 3) << " ms\n";
        GSSR_ASSERT(p10_gain > 0.0,
                    "unified control plane must strictly improve "
                    "fleet p10 QoE");
        GSSR_ASSERT(mtp_delta <= 1e-6,
                    "unified control plane must not regress p99 "
                    "MTP");
    }

    writeReport(smoke, sessions, ticks, seed, calibration, arms);
    return 0;
}
