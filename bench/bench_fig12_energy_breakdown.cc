/**
 * @file
 * Fig. 12 — Client processing-energy breakdown for Witcher 3 (G3)
 * on the Pixel 7 Pro: where the Fig. 11 savings come from.
 *
 * Paper anchors: decoding falls from 46 % of the SOTA's processing
 * energy to 6 % of ours (hardware vs. software decode); upscaling is
 * ~85 % of ours and slightly *higher* than the SOTA's in absolute
 * terms; display and network do not vary between designs.
 */

#include "bench_util.hh"

using namespace gssr;
using namespace gssr::bench;

namespace
{

struct Breakdown
{
    f64 decode = 0.0;
    f64 upscale = 0.0;
    f64 display = 0.0;
    f64 network = 0.0;

    f64 total() const { return decode + upscale + display + network; }
};

Breakdown
measure(DesignKind design)
{
    SessionConfig config = accountingSessionConfig();
    config.game = GameId::G3_Witcher3;
    config.device = DeviceProfile::pixel7Pro();
    config.design = design;
    SessionResult result = runSession(config);

    Breakdown b;
    for (const auto &trace : result.traces) {
        b.decode += trace.stageEnergyMj(Stage::Decode);
        b.upscale += trace.stageEnergyMj(Stage::Upscale) +
                     trace.stageEnergyMj(Stage::Merge);
        b.display += trace.stageEnergyMj(Stage::Display);
        b.network += trace.stageEnergyMj(Stage::Network);
    }
    return b;
}

} // namespace

int
main()
{
    printHeader("Fig. 12",
                "client processing-energy breakdown, G3 on "
                "Pixel 7 Pro (GOP of 60)");

    Breakdown nemo = measure(DesignKind::Nemo);
    Breakdown ours = measure(DesignKind::GameStreamSR);

    TableWriter table({"stage", "SOTA (mJ)", "SOTA (%)", "ours (mJ)",
                       "ours (%)", "paper"});
    auto row = [&](const char *name, f64 n, f64 o,
                   const char *note) {
        table.addRow({name, TableWriter::num(n, 0),
                      TableWriter::num(n / nemo.total() * 100.0, 1),
                      TableWriter::num(o, 0),
                      TableWriter::num(o / ours.total() * 100.0, 1),
                      note});
    };
    row("decode", nemo.decode, ours.decode, "46% -> 6%");
    row("upscale", nemo.upscale, ours.upscale,
        "~85% of ours; slightly higher than SOTA");
    row("display", nemo.display, ours.display, "unchanged");
    row("network", nemo.network, ours.network, "unchanged");
    table.addRow({"TOTAL", TableWriter::num(nemo.total(), 0), "100",
                  TableWriter::num(ours.total(), 0), "100", "-"});
    printTable(table);
    return 0;
}
