/**
 * @file
 * Shared helpers for the figure-reproduction bench binaries: the
 * cached trained SR net, the standard paper operating point, and
 * common printing.
 */

#ifndef GSSR_BENCH_BENCH_UTIL_HH
#define GSSR_BENCH_BENCH_UTIL_HH

#include <iostream>
#include <memory>
#include <string>

#include "common/table.hh"
#include "pipeline/session.hh"
#include "sr/trainer.hh"

namespace gssr::bench
{

/** Paper operating point: 720p -> 1440p at 60 FPS, GOP 60. */
inline SessionConfig
paperSessionConfig()
{
    SessionConfig config;
    config.lr_size = {1280, 720};
    config.scale_factor = 2;
    config.frames = 60;
    config.codec.gop_size = 60;
    return config;
}

/**
 * Accounting-only paper session (latency/energy figures): model
 * numbers at 720p, server rasterizing at a reduced proxy size.
 */
inline SessionConfig
accountingSessionConfig()
{
    SessionConfig config = paperSessionConfig();
    config.compute_pixels = false;
    config.server_proxy_size = {256, 144};
    return config;
}

/** The shared trained SR quality net (cached on disk). */
inline std::shared_ptr<const CompactSrNet>
sharedSrNet()
{
    static std::shared_ptr<const CompactSrNet> net =
        std::make_shared<const CompactSrNet>(
            trainedSrNet("bench_sr_weights.bin"));
    return net;
}

/** Print the standard bench header. */
inline void
printHeader(const std::string &figure, const std::string &caption)
{
    std::cout << "\n=== " << figure << " — " << caption << " ===\n\n";
}

/** Print a table and flush. */
inline void
printTable(const TableWriter &table)
{
    table.renderText(std::cout);
    std::cout.flush();
}

} // namespace gssr::bench

#endif // GSSR_BENCH_BENCH_UTIL_HH
