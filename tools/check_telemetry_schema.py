#!/usr/bin/env python3
"""Validate telemetry artifacts emitted by the bench/obs layer.

Stdlib-only checker run by CI after the bench smokes. Three artifact
kinds, inferred from the file name:

  BENCH_*.json   obs::Report documents — must carry the versioned
                 header (schema "gssr.bench.v1") written by
                 src/obs/report.cc.
  TRACE_*.json   Chrome trace documents from SpanExporter — every
                 "B" must be closed by a matching "E" on the same
                 track, phases restricted to B/E/i/C.
  TRACE_*.jsonl  One JSON object per line, the SpanExporter JSONL
                 stream.

Usage: check_telemetry_schema.py FILE [FILE...]
Exits non-zero on the first malformed artifact.
"""

import json
import os
import sys

SCHEMA = "gssr.bench.v1"
SCHEMA_VERSION = 1

# Header fields written by obs::Report and their expected types.
REPORT_HEADER = {
    "schema": str,
    "schema_version": int,
    "bench": str,
    "git_describe": str,
    "build_type": str,
    "threads": int,
    "gssr_threads_env": str,
    "smoke": bool,
}

CHROME_PHASES = {"B", "E", "i", "C"}


class SchemaError(Exception):
    pass


def fail(path, message):
    raise SchemaError(f"{path}: {message}")


def check_report(path, doc):
    if not isinstance(doc, dict):
        fail(path, "report root must be a JSON object")
    for key, want in REPORT_HEADER.items():
        if key not in doc:
            fail(path, f"missing report header field '{key}'")
        got = doc[key]
        # bool is an int subclass in Python; keep them distinct.
        if want is int and isinstance(got, bool):
            fail(path, f"header field '{key}' must be an integer")
        if not isinstance(got, want):
            fail(path, f"header field '{key}' must be {want.__name__}")
    if doc["schema"] != SCHEMA:
        fail(path, f"schema is '{doc['schema']}', expected '{SCHEMA}'")
    if doc["schema_version"] != SCHEMA_VERSION:
        fail(path, f"schema_version is {doc['schema_version']}, "
                   f"expected {SCHEMA_VERSION}")
    body = [k for k in doc if k not in REPORT_HEADER]
    if not body:
        fail(path, "report has a header but no bench payload")
    payload_check = PAYLOAD_CHECKS.get(doc["bench"])
    if payload_check is not None:
        detail = payload_check(path, doc)
        return f"bench '{doc['bench']}', {detail}"
    return f"bench '{doc['bench']}', payload keys {body}"


def check_finite_number(path, where, value):
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        fail(path, f"{where} must be a number")
    if value != value or value in (float("inf"), float("-inf")):
        fail(path, f"{where} must be finite")


# Per-row required keys of the BENCH_quant.json payload arrays.
QUANT_PRECISIONS = {"fp32", "int16", "int8", "hybrid-int8"}
QUANT_QUALITY_KEYS = ("precision", "frames", "mean_psnr_db",
                      "delta_vs_fp32_db")
QUANT_NPU_KEYS = ("model", "roi", "precision", "latency_ms",
                  "power_w", "energy_mj", "latency_speedup_vs_fp32",
                  "energy_reduction_vs_fp32")


def check_quant_payload(path, doc):
    """Deep-validate the quant_precision bench payload: both sweep
    arrays present, one row per precision, finite numbers, positive
    latencies/energies."""
    for array, keys in (("quality", QUANT_QUALITY_KEYS),
                        ("npu", QUANT_NPU_KEYS)):
        rows = doc.get(array)
        if not isinstance(rows, list) or not rows:
            fail(path, f"'{array}' must be a non-empty array")
        seen = set()
        for i, row in enumerate(rows):
            if not isinstance(row, dict):
                fail(path, f"{array}[{i}] must be an object")
            for key in keys:
                if key not in row:
                    fail(path, f"{array}[{i}] missing '{key}'")
            if row["precision"] not in QUANT_PRECISIONS:
                fail(path, f"{array}[{i}] has unknown precision "
                           f"'{row['precision']}'")
            seen.add(row["precision"])
            for key in keys:
                if key in ("precision", "model", "roi"):
                    continue
                check_finite_number(path, f"{array}[{i}].{key}",
                                    row[key])
            if array == "npu":
                if row["latency_ms"] <= 0 or row["energy_mj"] <= 0:
                    fail(path, f"{array}[{i}] latency/energy must be "
                               f"positive")
        if seen != QUANT_PRECISIONS:
            fail(path, f"'{array}' covers precisions {sorted(seen)}, "
                       f"expected {sorted(QUANT_PRECISIONS)}")
    return "quant payload: quality + npu sweeps complete"


# Required keys of each BENCH_qoe.json scenario arm row.
QOE_ARMS = {"independent", "unified"}
QOE_ARM_KEYS = ("arm", "p10_qoe", "p50_qoe", "mean_qoe",
                "live_fleet_p10", "p50_mtp_ms", "p99_mtp_ms",
                "frames", "shed", "dropped", "qoe_actions",
                "aggregate_mbps")


def check_qoe_payload(path, doc):
    """Deep-validate the qoe_control bench payload: a calibration
    block with a positive fitted gain, and per-scenario arm pairs
    (independent vs unified) with finite QoE/MTP statistics."""
    cal = doc.get("calibration")
    if not isinstance(cal, dict):
        fail(path, "'calibration' must be an object")
    for key in ("gain", "offset", "max_abs_error_db", "samples"):
        if key not in cal:
            fail(path, f"calibration missing '{key}'")
        check_finite_number(path, f"calibration.{key}", cal[key])
    if cal["gain"] <= 0:
        fail(path, "calibration gain must be positive")
    if cal["samples"] <= 0:
        fail(path, "calibration must use at least one sample")

    scenarios = doc.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        fail(path, "'scenarios' must be a non-empty array")
    for i, sc in enumerate(scenarios):
        if not isinstance(sc, dict):
            fail(path, f"scenarios[{i}] must be an object")
        for key in ("scenario", "arms", "p10_qoe_gain",
                    "p99_mtp_delta_ms"):
            if key not in sc:
                fail(path, f"scenarios[{i}] missing '{key}'")
        arms = sc["arms"]
        if not isinstance(arms, list):
            fail(path, f"scenarios[{i}].arms must be an array")
        seen = set()
        for j, arm in enumerate(arms):
            where = f"scenarios[{i}].arms[{j}]"
            if not isinstance(arm, dict):
                fail(path, f"{where} must be an object")
            for key in QOE_ARM_KEYS:
                if key not in arm:
                    fail(path, f"{where} missing '{key}'")
                if key != "arm":
                    check_finite_number(path, f"{where}.{key}",
                                        arm[key])
            if not 0 <= arm["p10_qoe"] <= 100:
                fail(path, f"{where}.p10_qoe out of [0, 100]")
            seen.add(arm["arm"])
        if seen != QOE_ARMS:
            fail(path, f"scenarios[{i}] covers arms {sorted(seen)}, "
                       f"expected {sorted(QOE_ARMS)}")
        for key in ("p10_qoe_gain", "p99_mtp_delta_ms"):
            check_finite_number(path, f"scenarios[{i}].{key}",
                                sc[key])
    names = [sc["scenario"] for sc in scenarios]
    return f"qoe payload: scenarios {names}, arm pairs complete"


# Required keys of each BENCH_cluster.json sweep arm row.
CLUSTER_SCENARIOS = {"server-crash", "rolling-maintenance"}
CLUSTER_ARMS = {"migration", "no-migration"}
CLUSTER_ARM_KEYS = ("arm", "admitted", "rejected", "frames",
                    "displaced", "migrations", "cold_readmissions",
                    "sessions_lost", "handoff_attempts",
                    "handoff_retries", "displaced_frames", "p10_qoe",
                    "mean_qoe", "p99_mtp_ms", "fingerprint")
CLUSTER_HANDOFF_KEYS = ("max_attempts", "base_backoff_ms",
                        "backoff_multiplier", "max_backoff_ms",
                        "jitter", "deadline_ms")


def check_fingerprint(path, where, value):
    if not (isinstance(value, str) and len(value) == 16
            and all(c in "0123456789abcdef" for c in value)):
        fail(path, f"{where} must be a 16-digit hex fingerprint")


def check_cluster_payload(path, doc):
    """Deep-validate the cluster_failover bench payload: the handoff
    policy block, the heterogeneous server list, per-sweep-point arm
    rows (migration vs no-migration under server-crash, plus the
    rolling-maintenance run), and the determinism replay block with
    matching fingerprints."""
    handoff = doc.get("handoff")
    if not isinstance(handoff, dict):
        fail(path, "'handoff' must be an object")
    for key in CLUSTER_HANDOFF_KEYS:
        if key not in handoff:
            fail(path, f"handoff missing '{key}'")
        check_finite_number(path, f"handoff.{key}", handoff[key])
    if handoff["deadline_ms"] <= 0 or handoff["max_attempts"] <= 0:
        fail(path, "handoff deadline/attempts must be positive")

    servers = doc.get("servers")
    if not isinstance(servers, list) or not servers:
        fail(path, "'servers' must be a non-empty array")
    for i, server in enumerate(servers):
        if not isinstance(server, dict):
            fail(path, f"servers[{i}] must be an object")
        for key in ("region", "region_rtt_ms", "gpu_slots"):
            if key not in server:
                fail(path, f"servers[{i}] missing '{key}'")
        check_finite_number(path, f"servers[{i}].region_rtt_ms",
                            server["region_rtt_ms"])
        if server["gpu_slots"] < 1:
            fail(path, f"servers[{i}].gpu_slots must be >= 1")

    sweep = doc.get("sweep")
    if not isinstance(sweep, list) or not sweep:
        fail(path, "'sweep' must be a non-empty array")
    scenarios_seen = set()
    for i, point in enumerate(sweep):
        if not isinstance(point, dict):
            fail(path, f"sweep[{i}] must be an object")
        for key in ("scenario", "sessions", "ticks", "arms"):
            if key not in point:
                fail(path, f"sweep[{i}] missing '{key}'")
        if point["scenario"] not in CLUSTER_SCENARIOS:
            fail(path, f"sweep[{i}] has unknown scenario "
                       f"'{point['scenario']}'")
        scenarios_seen.add(point["scenario"])
        arms = point["arms"]
        if not isinstance(arms, list) or not arms:
            fail(path, f"sweep[{i}].arms must be a non-empty array")
        seen = set()
        for j, arm in enumerate(arms):
            where = f"sweep[{i}].arms[{j}]"
            if not isinstance(arm, dict):
                fail(path, f"{where} must be an object")
            for key in CLUSTER_ARM_KEYS:
                if key not in arm:
                    fail(path, f"{where} missing '{key}'")
            check_fingerprint(path, f"{where}.fingerprint",
                              arm["fingerprint"])
            for key in CLUSTER_ARM_KEYS:
                if key in ("arm", "fingerprint"):
                    continue
                check_finite_number(path, f"{where}.{key}", arm[key])
            if arm["arm"] not in CLUSTER_ARMS:
                fail(path, f"{where} has unknown arm '{arm['arm']}'")
            seen.add(arm["arm"])
            if not 0 <= arm["p10_qoe"] <= 100:
                fail(path, f"{where}.p10_qoe out of [0, 100]")
            if arm["arm"] == "migration":
                if arm["sessions_lost"] != 0:
                    fail(path, f"{where}: migration arm lost sessions")
                ttr = arm.get("ttr_max_ms")
                if ttr is not None:
                    check_finite_number(path, f"{where}.ttr_max_ms",
                                        ttr)
                    if ttr > handoff["deadline_ms"] + 17:
                        fail(path, f"{where}.ttr_max_ms exceeds the "
                                   f"handoff deadline")
        if point["scenario"] == "server-crash":
            if seen != CLUSTER_ARMS:
                fail(path, f"sweep[{i}] covers arms {sorted(seen)}, "
                           f"expected {sorted(CLUSTER_ARMS)}")
            if "p10_qoe_gain" not in point:
                fail(path, f"sweep[{i}] missing 'p10_qoe_gain'")
            check_finite_number(path, f"sweep[{i}].p10_qoe_gain",
                                point["p10_qoe_gain"])
            if point["p10_qoe_gain"] <= 0:
                fail(path, f"sweep[{i}]: migration must improve "
                           f"fleet p10 QoE")
    if scenarios_seen != CLUSTER_SCENARIOS:
        fail(path, f"sweep covers scenarios {sorted(scenarios_seen)}, "
                   f"expected {sorted(CLUSTER_SCENARIOS)}")

    det = doc.get("determinism")
    if not isinstance(det, dict):
        fail(path, "'determinism' must be an object")
    for key in ("sessions", "fingerprint_a", "fingerprint_b", "match"):
        if key not in det:
            fail(path, f"determinism missing '{key}'")
    check_fingerprint(path, "determinism.fingerprint_a",
                      det["fingerprint_a"])
    check_fingerprint(path, "determinism.fingerprint_b",
                      det["fingerprint_b"])
    if det["fingerprint_a"] != det["fingerprint_b"]:
        fail(path, "determinism replay fingerprints differ")
    if det["match"] is not True:
        fail(path, "determinism.match must be true")
    points = [(p["scenario"], p["sessions"]) for p in sweep]
    return f"cluster payload: sweep {points}, replay matched"


# Bench names with a dedicated payload validator beyond the header.
PAYLOAD_CHECKS = {
    "quant_precision": check_quant_payload,
    "qoe_control": check_qoe_payload,
    "cluster_failover": check_cluster_payload,
}


def check_chrome_trace(path, doc):
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(path, "chrome trace must be an object with 'traceEvents'")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail(path, "'traceEvents' must be a non-empty array")
    # Per-track stack of open "B" names: every "E" must close the
    # most recent unmatched "B" with the same name on its track.
    open_spans = {}
    for i, e in enumerate(events):
        for key in ("name", "cat", "ph", "ts", "pid", "tid"):
            if key not in e:
                fail(path, f"event {i} missing '{key}'")
        ph = e["ph"]
        if ph not in CHROME_PHASES:
            fail(path, f"event {i} has phase '{ph}', "
                       f"expected one of {sorted(CHROME_PHASES)}")
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            fail(path, f"event {i} has a negative or non-numeric ts")
        track = e["tid"]
        if ph == "B":
            open_spans.setdefault(track, []).append(e["name"])
        elif ph == "E":
            stack = open_spans.get(track, [])
            if not stack:
                fail(path, f"event {i}: 'E' for '{e['name']}' on "
                           f"track {track} with no open 'B'")
            top = stack.pop()
            if top != e["name"]:
                fail(path, f"event {i}: 'E' closes '{e['name']}' but "
                           f"the open span on track {track} is "
                           f"'{top}'")
        elif ph == "i" and e.get("s") not in ("t", "p", "g"):
            fail(path, f"event {i}: instant missing scope 's'")
    for track, stack in open_spans.items():
        if stack:
            fail(path, f"track {track} ends with unclosed spans "
                       f"{stack}")
    tracks = sorted({e["tid"] for e in events})
    return f"{len(events)} events across tracks {tracks}"


def check_jsonl(path, text):
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        fail(path, "empty JSONL stream")
    for i, line in enumerate(lines):
        try:
            e = json.loads(line)
        except json.JSONDecodeError as err:
            fail(path, f"line {i + 1} is not valid JSON: {err}")
        for key in ("phase", "name", "cat", "track", "ts_ms", "value"):
            if key not in e:
                fail(path, f"line {i + 1} missing '{key}'")
        if e["phase"] not in ("begin", "end", "instant", "counter"):
            fail(path, f"line {i + 1} has phase '{e['phase']}'")
    return f"{len(lines)} events"


def check_file(path):
    with open(path, encoding="utf-8") as f:
        text = f.read()
    name = os.path.basename(path)
    if name.endswith(".jsonl"):
        return check_jsonl(path, text)
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as err:
        fail(path, f"not valid JSON: {err}")
    if name.startswith("TRACE_"):
        return check_chrome_trace(path, doc)
    return check_report(path, doc)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    for path in argv[1:]:
        try:
            detail = check_file(path)
        except SchemaError as err:
            print(f"FAIL {err}", file=sys.stderr)
            return 1
        print(f"ok   {path}: {detail}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
