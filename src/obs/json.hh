/**
 * @file
 * Minimal streaming JSON writer used by every telemetry export path
 * (bench reports, Chrome-trace dumps, JSONL streams, metric dumps).
 * Handles comma placement, indentation and string escaping so no
 * emitter hand-rolls fprintf JSON; number formatting is explicit
 * (fixed decimals) so exported files are byte-stable across runs of
 * a deterministic simulation.
 */

#ifndef GSSR_OBS_JSON_HH
#define GSSR_OBS_JSON_HH

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace gssr::obs
{

/** Escape @p s for inclusion in a JSON string literal. */
inline std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(c) & 0xff);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/**
 * Structured JSON emitter over an std::ostream. Usage:
 *
 *   JsonWriter w(out);
 *   w.beginObject();
 *   w.key("frames"); w.value(i64(60));
 *   w.key("sweep");  w.beginArray(); ... w.endArray();
 *   w.endObject();
 *
 * The writer asserts basic well-formedness (keys only inside
 * objects, matched begin/end), which is enough to make hand-written
 * emission mistakes fail loudly in tests instead of producing
 * unparsable artifacts.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out, int indent_width = 2)
        : out_(out), indent_width_(indent_width)
    {
    }

    JsonWriter(const JsonWriter &) = delete;
    JsonWriter &operator=(const JsonWriter &) = delete;

    void
    beginObject()
    {
        beginValue();
        out_ << '{';
        stack_.push_back(Frame{Scope::Object});
    }

    void
    endObject()
    {
        GSSR_ASSERT(!stack_.empty() &&
                        stack_.back().scope == Scope::Object,
                    "endObject outside an object");
        GSSR_ASSERT(!stack_.back().key_pending,
                    "dangling key before endObject");
        const bool had_items = stack_.back().count > 0;
        stack_.pop_back();
        if (had_items)
            newlineIndent();
        out_ << '}';
    }

    void
    beginArray()
    {
        beginValue();
        out_ << '[';
        stack_.push_back(Frame{Scope::Array});
    }

    void
    endArray()
    {
        GSSR_ASSERT(!stack_.empty() &&
                        stack_.back().scope == Scope::Array,
                    "endArray outside an array");
        const bool had_items = stack_.back().count > 0;
        stack_.pop_back();
        if (had_items)
            newlineIndent();
        out_ << ']';
    }

    /** Emit an object key; the next emitted value belongs to it. */
    void
    key(std::string_view name)
    {
        GSSR_ASSERT(!stack_.empty() &&
                        stack_.back().scope == Scope::Object,
                    "key outside an object");
        GSSR_ASSERT(!stack_.back().key_pending, "two keys in a row");
        if (stack_.back().count > 0)
            out_ << ',';
        stack_.back().count += 1;
        newlineIndent();
        out_ << '"' << jsonEscape(name) << "\": ";
        stack_.back().key_pending = true;
    }

    void
    value(std::string_view s)
    {
        beginValue();
        out_ << '"' << jsonEscape(s) << '"';
    }

    void value(const char *s) { value(std::string_view(s)); }
    void value(const std::string &s) { value(std::string_view(s)); }

    void
    value(bool b)
    {
        beginValue();
        out_ << (b ? "true" : "false");
    }

    void
    value(i64 v)
    {
        beginValue();
        out_ << v;
    }

    void value(int v) { value(i64(v)); }
    void value(size_t v) { value(i64(v)); }

    /** Fixed-decimal f64 (byte-stable formatting). */
    void
    value(f64 v, int decimals = 4)
    {
        beginValue();
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
        out_ << buf;
    }

    /** 64-bit fingerprint as a zero-padded hex string. */
    void
    hexValue(u64 v)
    {
        beginValue();
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      (unsigned long long)v);
        out_ << '"' << buf << '"';
    }

    /** key() + value() in one call. */
    template <typename T>
    void
    field(std::string_view name, const T &v)
    {
        key(name);
        value(v);
    }

    void
    field(std::string_view name, f64 v, int decimals)
    {
        key(name);
        value(v, decimals);
    }

    void
    hexField(std::string_view name, u64 v)
    {
        key(name);
        hexValue(v);
    }

    /** True once every begin has been matched by its end. */
    bool complete() const { return stack_.empty() && root_emitted_; }

  private:
    enum class Scope
    {
        Object,
        Array,
    };

    struct Frame
    {
        Scope scope;
        int count = 0;
        bool key_pending = false;
    };

    void
    beginValue()
    {
        if (stack_.empty()) {
            GSSR_ASSERT(!root_emitted_,
                        "multiple root JSON values");
            root_emitted_ = true;
            return;
        }
        Frame &top = stack_.back();
        if (top.scope == Scope::Object) {
            GSSR_ASSERT(top.key_pending, "object value without a key");
            top.key_pending = false;
        } else {
            if (top.count > 0)
                out_ << ',';
            top.count += 1;
            newlineIndent();
        }
    }

    void
    newlineIndent()
    {
        out_ << '\n';
        for (size_t i = 0; i < stack_.size() * size_t(indent_width_);
             ++i)
            out_ << ' ';
    }

    std::ostream &out_;
    int indent_width_;
    std::vector<Frame> stack_;
    bool root_emitted_ = false;
};

} // namespace gssr::obs

#endif // GSSR_OBS_JSON_HH
