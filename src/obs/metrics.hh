/**
 * @file
 * Process-wide metrics registry: named counters, gauges and
 * fixed-bucket histograms. Registration (get-or-create by name) is
 * the only allocating operation; the hot-path mutators — add(),
 * set(), observe() — index preallocated storage and never touch the
 * heap, so instrumented simulation loops pay a few arithmetic ops
 * per event.
 *
 * Histograms use a fixed bucket layout chosen at registration.
 * Percentiles are computed from the cumulative bucket counts with
 * linear interpolation inside the resolving bucket and clamped to
 * the exact observed [min, max], so the reported p50/p95/p99 are
 * exact to within one bucket width (and exactly min/max at the
 * distribution edges).
 *
 * The registry is deliberately not thread-safe: every instrumented
 * path in this repo (session engines, the fleet tick loop, benches)
 * runs on one thread, and cross-thread sources (the parallel pool)
 * keep their own atomics that are *polled* into the registry
 * (Telemetry::updateParallelPoolMetrics) rather than written from
 * workers.
 */

#ifndef GSSR_OBS_METRICS_HH
#define GSSR_OBS_METRICS_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace gssr::obs
{

class JsonWriter;

/** What a registered metric measures. */
enum class MetricKind
{
    Counter,   ///< monotonically increasing i64
    Gauge,     ///< last-written f64
    Histogram, ///< fixed-bucket f64 distribution
};

/** Metric kind name for exports. */
const char *metricKindName(MetricKind kind);

/** Stable handle to one registered metric (index into the registry). */
using MetricId = u32;

/** Fixed bucket layout of a registry histogram. */
struct HistogramLayout
{
    f64 lo = 0.0;
    f64 hi = 1.0;
    int buckets = 1;

    /** @p buckets equal-width buckets spanning [lo, hi). */
    static HistogramLayout linear(f64 lo, f64 hi, int buckets);

    /** Width of one bucket (the percentile resolution bound). */
    f64 bucketWidth() const { return (hi - lo) / f64(buckets); }

    /** Bucket index for @p value, clamped to [0, buckets-1]. */
    int bucketIndex(f64 value) const;

    /** Lower edge of bucket @p index. */
    f64 bucketLo(int index) const { return lo + bucketWidth() * index; }

    /** Upper edge of bucket @p index. */
    f64
    bucketHi(int index) const
    {
        return lo + bucketWidth() * (index + 1);
    }
};

/**
 * The registry. Metrics are identified by name; registering the same
 * name twice returns the same id (the kind must match). Ids are
 * dense and stable for the registry's lifetime.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Get-or-create a counter. */
    MetricId counter(std::string_view name);

    /** Get-or-create a gauge. */
    MetricId gauge(std::string_view name);

    /** Get-or-create a histogram (layout fixed by the first call). */
    MetricId histogram(std::string_view name,
                       const HistogramLayout &layout);

    /** Increment a counter. Hot path: no allocation. */
    void
    add(MetricId id, i64 delta = 1)
    {
        metrics_[id].count += delta;
    }

    /** Set a gauge. Hot path: no allocation. */
    void
    set(MetricId id, f64 value)
    {
        metrics_[id].value = value;
    }

    /** Record one histogram sample. Hot path: no allocation. */
    void
    observe(MetricId id, f64 value)
    {
        Metric &m = metrics_[id];
        m.bucket_counts[size_t(m.layout.bucketIndex(value))] += 1;
        m.count += 1;
        m.value += value; // running sum
        m.sum_sq += value * value;
        m.min = m.count == 1 ? value : std::min(m.min, value);
        m.max = m.count == 1 ? value : std::max(m.max, value);
    }

    /** Current counter value (also the sample count of a histogram). */
    i64 counterValue(MetricId id) const { return metrics_[id].count; }

    /** Current gauge value. */
    f64 gaugeValue(MetricId id) const { return metrics_[id].value; }

    /**
     * Histogram percentile in [0, 100]: linear interpolation inside
     * the resolving bucket, clamped to the observed [min, max].
     * Returns 0 for an empty histogram.
     */
    f64 histogramPercentile(MetricId id, f64 p) const;

    /** Full summary of a histogram (percentiles bucket-resolved). */
    stats::Summary histogramSummary(MetricId id) const;

    /** Look up a metric by name (no creation). */
    std::optional<MetricId> find(std::string_view name) const;

    /** Number of registered metrics (ids are [0, size())). */
    size_t size() const { return metrics_.size(); }

    /** Name of metric @p id. */
    const std::string &name(MetricId id) const
    {
        return metrics_[id].name;
    }

    /** Kind of metric @p id. */
    MetricKind kind(MetricId id) const { return metrics_[id].kind; }

    /**
     * Zero every value (counters, gauges, histogram buckets) while
     * keeping all registrations and handles valid.
     */
    void reset();

    /**
     * Dump every metric as one JSON object value keyed by name:
     * counters as integers, gauges as numbers, histograms as summary
     * objects. The writer must be positioned for a value.
     */
    void writeJson(JsonWriter &w) const;

  private:
    struct Metric
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        i64 count = 0;  ///< counter value / histogram sample count
        f64 value = 0.0; ///< gauge value / histogram running sum
        f64 sum_sq = 0.0;
        f64 min = 0.0;
        f64 max = 0.0;
        HistogramLayout layout;
        std::vector<u64> bucket_counts;
    };

    MetricId getOrCreate(std::string_view name, MetricKind kind);

    std::vector<Metric> metrics_;
};

} // namespace gssr::obs

#endif // GSSR_OBS_METRICS_HH
