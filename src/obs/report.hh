/**
 * @file
 * Schema-versioned bench report builder. Every BENCH_*.json this
 * repo writes opens with the same header block — schema version,
 * bench name, git describe, build type, thread configuration, smoke
 * flag — so downstream tooling can validate and aggregate reports
 * from any bench without per-bench parsing (the copy-pasted fprintf
 * emitters this replaces each invented their own shape).
 *
 * Usage:
 *
 *   obs::Report report("BENCH_fleet.json", "fleet_scale", smoke);
 *   JsonWriter &w = report.json();   // inside the root object
 *   w.key("sweep"); w.beginArray(); ... w.endArray();
 *   report.close();                  // closes root, flushes file
 */

#ifndef GSSR_OBS_REPORT_HH
#define GSSR_OBS_REPORT_HH

#include <fstream>
#include <memory>
#include <string>

#include "common/stats.hh"
#include "obs/json.hh"

namespace gssr::obs
{

/** Version of the shared report header schema. */
inline constexpr int kReportSchemaVersion = 1;

/** `git describe` of the build, or "unknown" outside a checkout. */
const char *buildGitDescribe();

/** CMake build type the binary was compiled as. */
const char *buildType();

class Report
{
  public:
    /**
     * Open @p path and write the standard header fields into the
     * root object. On I/O failure the report is inert (ok() false,
     * json() writes into a null stream) so benches degrade to their
     * stdout tables instead of crashing.
     */
    Report(const std::string &path, std::string_view bench,
           bool smoke);

    Report(const Report &) = delete;
    Report &operator=(const Report &) = delete;

    /** Closes the report if close() was not called. */
    ~Report();

    /** True when the output file opened successfully. */
    bool ok() const { return ok_; }

    /** The writer, positioned inside the root object. */
    JsonWriter &json() { return *writer_; }

    /** Emit a stats::Summary as an object field named @p key. */
    void summaryField(std::string_view key, const stats::Summary &s,
                      int decimals = 4);

    /** Close the root object and the file; prints "wrote <path>". */
    void close();

  private:
    std::string path_;
    std::ofstream file_;
    std::unique_ptr<JsonWriter> writer_;
    bool ok_ = false;
    bool closed_ = false;
};

} // namespace gssr::obs

#endif // GSSR_OBS_REPORT_HH
