#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/json.hh"

namespace gssr::obs
{

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
      case MetricKind::Counter:
        return "counter";
      case MetricKind::Gauge:
        return "gauge";
      case MetricKind::Histogram:
        return "histogram";
    }
    return "?";
}

HistogramLayout
HistogramLayout::linear(f64 lo, f64 hi, int buckets)
{
    GSSR_ASSERT(buckets >= 1, "histogram needs >= 1 bucket");
    GSSR_ASSERT(hi > lo, "histogram range must be non-empty");
    HistogramLayout layout;
    layout.lo = lo;
    layout.hi = hi;
    layout.buckets = buckets;
    return layout;
}

int
HistogramLayout::bucketIndex(f64 value) const
{
    if (!(value > lo)) // also catches NaN -> underflow bucket
        return 0;
    if (value >= hi)
        return buckets - 1;
    int index = int((value - lo) / bucketWidth());
    return std::clamp(index, 0, buckets - 1);
}

MetricId
MetricsRegistry::getOrCreate(std::string_view name, MetricKind kind)
{
    GSSR_ASSERT(!name.empty(), "metric name must be non-empty");
    for (MetricId id = 0; id < metrics_.size(); ++id) {
        if (metrics_[id].name == name) {
            GSSR_ASSERT(metrics_[id].kind == kind,
                        "metric re-registered with a different kind");
            return id;
        }
    }
    Metric m;
    m.name = std::string(name);
    m.kind = kind;
    metrics_.push_back(std::move(m));
    return MetricId(metrics_.size() - 1);
}

MetricId
MetricsRegistry::counter(std::string_view name)
{
    return getOrCreate(name, MetricKind::Counter);
}

MetricId
MetricsRegistry::gauge(std::string_view name)
{
    return getOrCreate(name, MetricKind::Gauge);
}

MetricId
MetricsRegistry::histogram(std::string_view name,
                           const HistogramLayout &layout)
{
    MetricId id = getOrCreate(name, MetricKind::Histogram);
    Metric &m = metrics_[id];
    if (m.bucket_counts.empty()) {
        m.layout = layout;
        m.bucket_counts.assign(size_t(layout.buckets), 0);
    }
    return id;
}

std::optional<MetricId>
MetricsRegistry::find(std::string_view name) const
{
    for (MetricId id = 0; id < metrics_.size(); ++id)
        if (metrics_[id].name == name)
            return id;
    return std::nullopt;
}

f64
MetricsRegistry::histogramPercentile(MetricId id, f64 p) const
{
    GSSR_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
    const Metric &m = metrics_[id];
    GSSR_ASSERT(m.kind == MetricKind::Histogram,
                "percentile of a non-histogram metric");
    if (m.count == 0)
        return 0.0;

    // Rank of the requested percentile among the count samples;
    // resolved to the bucket whose cumulative count covers it.
    const f64 target = p / 100.0 * f64(m.count);
    u64 cumulative = 0;
    for (int b = 0; b < m.layout.buckets; ++b) {
        const u64 c = m.bucket_counts[size_t(b)];
        if (c == 0)
            continue;
        if (f64(cumulative) + f64(c) >= target) {
            // Interpolate inside the bucket, bounded by the exact
            // observed extremes so edge percentiles are exact. The
            // edge buckets also hold samples clamped in from outside
            // [lo, hi), so their effective range extends to the
            // observed min/max.
            const f64 frac =
                std::clamp((target - f64(cumulative)) / f64(c), 0.0,
                           1.0);
            const f64 bucket_lo =
                b == 0 ? std::min(m.layout.bucketLo(b), m.min)
                       : m.layout.bucketLo(b);
            const f64 bucket_hi =
                b == m.layout.buckets - 1
                    ? std::max(m.layout.bucketHi(b), m.max)
                    : m.layout.bucketHi(b);
            const f64 lo = std::max(bucket_lo, m.min);
            const f64 hi = std::min(bucket_hi, m.max);
            return lo + frac * (hi - lo);
        }
        cumulative += c;
    }
    return m.max;
}

stats::Summary
MetricsRegistry::histogramSummary(MetricId id) const
{
    const Metric &m = metrics_[id];
    GSSR_ASSERT(m.kind == MetricKind::Histogram,
                "summary of a non-histogram metric");
    stats::Summary s;
    s.count = m.count;
    if (m.count == 0)
        return s;
    s.mean = m.value / f64(m.count);
    const f64 variance =
        std::max(0.0, m.sum_sq / f64(m.count) - s.mean * s.mean);
    s.stddev = std::sqrt(variance);
    s.min = m.min;
    s.max = m.max;
    s.p50 = histogramPercentile(id, 50.0);
    s.p95 = histogramPercentile(id, 95.0);
    s.p99 = histogramPercentile(id, 99.0);
    return s;
}

void
MetricsRegistry::reset()
{
    for (Metric &m : metrics_) {
        m.count = 0;
        m.value = 0.0;
        m.sum_sq = 0.0;
        m.min = 0.0;
        m.max = 0.0;
        std::fill(m.bucket_counts.begin(), m.bucket_counts.end(), 0);
    }
}

void
MetricsRegistry::writeJson(JsonWriter &w) const
{
    w.beginObject();
    for (MetricId id = 0; id < metrics_.size(); ++id) {
        const Metric &m = metrics_[id];
        w.key(m.name);
        switch (m.kind) {
          case MetricKind::Counter:
            w.value(m.count);
            break;
          case MetricKind::Gauge:
            w.value(m.value, 6);
            break;
          case MetricKind::Histogram: {
            const stats::Summary s = histogramSummary(id);
            w.beginObject();
            w.field("count", s.count);
            w.field("mean", s.mean, 6);
            w.field("stddev", s.stddev, 6);
            w.field("min", s.min, 6);
            w.field("max", s.max, 6);
            w.field("p50", s.p50, 6);
            w.field("p95", s.p95, 6);
            w.field("p99", s.p99, 6);
            w.endObject();
            break;
          }
        }
    }
    w.endObject();
}

} // namespace gssr::obs
