#include "obs/telemetry.hh"

#include "common/parallel.hh"

namespace gssr::obs
{

void
Telemetry::updateParallelPoolMetrics()
{
    const ParallelPoolStats stats = parallelPoolStats();
    registry_.set(registry_.gauge("parallel.jobs"), f64(stats.jobs));
    registry_.set(registry_.gauge("parallel.chunks"),
                  f64(stats.chunks));
    registry_.set(registry_.gauge("parallel.busy_ms"), stats.busy_ms);
    registry_.set(registry_.gauge("parallel.max_chunk_ms"),
                  stats.max_chunk_ms);
    registry_.set(registry_.gauge("parallel.threads"),
                  f64(parallelThreadCount()));
}

Telemetry &
Telemetry::global()
{
    static Telemetry instance;
    return instance;
}

} // namespace gssr::obs
