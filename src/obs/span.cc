#include "obs/span.hh"

#include <fstream>

#include "obs/json.hh"

namespace gssr::obs
{

const char *
spanPhaseName(SpanPhase phase)
{
    switch (phase) {
      case SpanPhase::Begin:
        return "begin";
      case SpanPhase::End:
        return "end";
      case SpanPhase::Instant:
        return "instant";
      case SpanPhase::Counter:
        return "counter";
    }
    return "?";
}

namespace
{

/** Chrome trace "ph" letter for one phase. */
const char *
chromePhase(SpanPhase phase)
{
    switch (phase) {
      case SpanPhase::Begin:
        return "B";
      case SpanPhase::End:
        return "E";
      case SpanPhase::Instant:
        return "i";
      case SpanPhase::Counter:
        return "C";
    }
    return "?";
}

} // namespace

u32
SpanExporter::intern(std::string_view s)
{
    for (u32 i = 0; i < strings_.size(); ++i)
        if (strings_[i] == s)
            return i;
    strings_.emplace_back(s);
    return u32(strings_.size() - 1);
}

void
SpanExporter::begin(std::string_view name, std::string_view category,
                    i32 track, f64 ts_ms, f64 value)
{
    events_.push_back({SpanPhase::Begin, intern(name),
                       intern(category), track, ts_ms, value});
}

void
SpanExporter::end(std::string_view name, std::string_view category,
                  i32 track, f64 ts_ms)
{
    events_.push_back({SpanPhase::End, intern(name), intern(category),
                       track, ts_ms, 0.0});
}

void
SpanExporter::instant(std::string_view name,
                      std::string_view category, i32 track, f64 ts_ms,
                      f64 value)
{
    events_.push_back({SpanPhase::Instant, intern(name),
                       intern(category), track, ts_ms, value});
}

void
SpanExporter::counter(std::string_view name, i32 track, f64 ts_ms,
                      f64 value)
{
    events_.push_back({SpanPhase::Counter, intern(name),
                       intern("counter"), track, ts_ms, value});
}

void
SpanExporter::writeChromeTrace(std::ostream &out) const
{
    JsonWriter w(out);
    w.beginObject();
    w.field("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.beginArray();
    for (const SpanEvent &e : events_) {
        w.beginObject();
        w.field("name", strings_[e.name]);
        w.field("cat", strings_[e.category]);
        w.field("ph", chromePhase(e.phase));
        // Chrome trace timestamps are microseconds.
        w.field("ts", e.ts_ms * 1000.0, 3);
        w.field("pid", 0);
        w.field("tid", i64(e.track));
        if (e.phase == SpanPhase::Instant)
            w.field("s", "t"); // thread-scoped instant
        if (e.phase == SpanPhase::Counter) {
            w.key("args");
            w.beginObject();
            w.field("value", e.value, 6);
            w.endObject();
        } else if (e.value != 0.0) {
            w.key("args");
            w.beginObject();
            w.field("value", e.value, 6);
            w.endObject();
        }
        w.endObject();
    }
    w.endArray();
    w.endObject();
    out << '\n';
}

void
SpanExporter::writeJsonl(std::ostream &out) const
{
    // JSONL needs one line per event; the structured writer inserts
    // newlines, so lines are emitted directly via the escaper.
    for (const SpanEvent &e : events_) {
        out << "{\"phase\": \"" << spanPhaseName(e.phase)
            << "\", \"name\": \"" << jsonEscape(strings_[e.name])
            << "\", \"cat\": \"" << jsonEscape(strings_[e.category])
            << "\", \"track\": " << e.track << ", \"ts_ms\": ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.4f", e.ts_ms);
        out << buf << ", \"value\": ";
        std::snprintf(buf, sizeof(buf), "%.6f", e.value);
        out << buf << "}\n";
    }
}

bool
SpanExporter::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(out);
    return bool(out);
}

bool
SpanExporter::writeJsonlFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeJsonl(out);
    return bool(out);
}

} // namespace gssr::obs
