#include "obs/report.hh"

#include <cstdio>
#include <cstdlib>

#include "common/parallel.hh"

#ifndef GSSR_GIT_DESCRIBE
#define GSSR_GIT_DESCRIBE "unknown"
#endif
#ifndef GSSR_BUILD_TYPE
#define GSSR_BUILD_TYPE "unknown"
#endif

namespace gssr::obs
{

const char *
buildGitDescribe()
{
    return GSSR_GIT_DESCRIBE;
}

const char *
buildType()
{
    return GSSR_BUILD_TYPE;
}

Report::Report(const std::string &path, std::string_view bench,
               bool smoke)
    : path_(path), file_(path)
{
    ok_ = bool(file_);
    if (!ok_) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        // Keep a writer over the (failed) stream so callers can emit
        // unconditionally; nothing reaches disk.
    }
    writer_ = std::make_unique<JsonWriter>(file_);
    JsonWriter &w = *writer_;
    w.beginObject();
    w.field("schema", "gssr.bench.v1");
    w.field("schema_version", kReportSchemaVersion);
    w.field("bench", bench);
    w.field("git_describe", buildGitDescribe());
    w.field("build_type", buildType());
    w.field("threads", parallelThreadCount());
    const char *env = std::getenv("GSSR_THREADS");
    w.field("gssr_threads_env", env ? env : "");
    w.field("smoke", smoke);
}

Report::~Report()
{
    if (!closed_)
        close();
}

void
Report::summaryField(std::string_view key, const stats::Summary &s,
                     int decimals)
{
    JsonWriter &w = *writer_;
    w.key(key);
    w.beginObject();
    w.field("count", s.count);
    w.field("mean", s.mean, decimals);
    w.field("stddev", s.stddev, decimals);
    w.field("min", s.min, decimals);
    w.field("max", s.max, decimals);
    w.field("p50", s.p50, decimals);
    w.field("p95", s.p95, decimals);
    w.field("p99", s.p99, decimals);
    w.endObject();
}

void
Report::close()
{
    if (closed_)
        return;
    closed_ = true;
    writer_->endObject();
    file_ << '\n';
    file_.close();
    if (ok_)
        std::printf("wrote %s\n", path_.c_str());
}

} // namespace gssr::obs
