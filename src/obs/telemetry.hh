/**
 * @file
 * The unified telemetry handle instrumented layers share: one
 * MetricsRegistry (always on — counters/gauges/histograms are cheap)
 * plus an optional SpanExporter (off by default — span buffers grow
 * with the run). A Telemetry pointer threads through SessionConfig
 * into every subsystem a frame touches (server, channel, AIMD rate
 * control, client, concealment), and FleetServer shares one handle
 * across all tenants so per-session observations roll up into
 * fleet-wide instruments for free.
 *
 * Observability is strictly read-only with respect to the
 * simulation: instrumented code writes *into* telemetry and never
 * reads decisions back out, so an instrumented run is bit-identical
 * to an uninstrumented one (pinned by test_golden_trace).
 */

#ifndef GSSR_OBS_TELEMETRY_HH
#define GSSR_OBS_TELEMETRY_HH

#include "obs/metrics.hh"
#include "obs/span.hh"

namespace gssr::obs
{

class Telemetry
{
  public:
    Telemetry() = default;

    /** @p spans enables the span exporter from construction. */
    explicit Telemetry(bool spans) : spans_enabled_(spans) {}

    Telemetry(const Telemetry &) = delete;
    Telemetry &operator=(const Telemetry &) = delete;

    /** The metrics registry (always available). */
    MetricsRegistry &registry() { return registry_; }
    const MetricsRegistry &registry() const { return registry_; }

    /**
     * The span exporter, or nullptr while span recording is
     * disabled. Instrumented code guards on this, so disabling spans
     * costs one branch per would-be event.
     */
    SpanExporter *spans()
    {
        return spans_enabled_ ? &exporter_ : nullptr;
    }

    /** Enable/disable span recording (buffered events are kept). */
    void enableSpans(bool on) { spans_enabled_ = on; }

    /** The exporter itself, e.g. to serialize after a disabled run. */
    SpanExporter &spanBuffer() { return exporter_; }
    const SpanExporter &spanBuffer() const { return exporter_; }

    /**
     * Poll the parallel layer's cumulative counters into registry
     * gauges (parallel.jobs / parallel.chunks / parallel.busy_ms /
     * parallel.max_chunk_ms). Call from the owning thread whenever a
     * fresh view is wanted (e.g. per fleet tick or at bench end).
     */
    void updateParallelPoolMetrics();

    /**
     * The process-wide default instance, for code without an
     * explicit telemetry plumbed through. Tests and benches that
     * need isolation construct their own.
     */
    static Telemetry &global();

  private:
    MetricsRegistry registry_;
    SpanExporter exporter_;
    bool spans_enabled_ = false;
};

} // namespace gssr::obs

#endif // GSSR_OBS_TELEMETRY_HH
