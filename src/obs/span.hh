/**
 * @file
 * Span exporter: records begin/end/instant/counter events on the
 * deterministic simulation clock and serializes them to the two
 * formats the tooling around this repo consumes —
 *
 *  - Chrome trace-viewer JSON ({"traceEvents": [...]}), loadable in
 *    chrome://tracing or Perfetto, with one track (tid) per session
 *    so a fleet run renders as N parallel swimlanes of pipeline
 *    stages, queue waits, sheds and recovery events;
 *  - a JSONL stream (one event object per line), the
 *    machine-readable feed for downstream aggregation.
 *
 * Event names and categories are interned; recording an event with
 * already-interned strings appends one POD to a vector and performs
 * no other allocation. Timestamps are session/fleet simulation time
 * (ms), so exports are bit-deterministic.
 */

#ifndef GSSR_OBS_SPAN_HH
#define GSSR_OBS_SPAN_HH

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hh"

namespace gssr::obs
{

/** Event phase (mirrors the Chrome trace "ph" field). */
enum class SpanPhase : u8
{
    Begin,   ///< "B" — span start
    End,     ///< "E" — span end (must pair with a Begin on the track)
    Instant, ///< "i" — point event
    Counter, ///< "C" — sampled numeric series
};

/** Phase name used by the JSONL stream. */
const char *spanPhaseName(SpanPhase phase);

/** One recorded event (strings are interned ids). */
struct SpanEvent
{
    SpanPhase phase = SpanPhase::Instant;
    u32 name = 0;
    u32 category = 0;
    i32 track = 0;  ///< Chrome tid; one track per session
    f64 ts_ms = 0.0;
    f64 value = 0.0; ///< counter sample / optional event payload
};

/** Collects span events and serializes them. */
class SpanExporter
{
  public:
    SpanExporter() = default;
    SpanExporter(const SpanExporter &) = delete;
    SpanExporter &operator=(const SpanExporter &) = delete;

    /** Open a span on @p track at simulation time @p ts_ms. */
    void begin(std::string_view name, std::string_view category,
               i32 track, f64 ts_ms, f64 value = 0.0);

    /** Close the innermost span named @p name on @p track. */
    void end(std::string_view name, std::string_view category,
             i32 track, f64 ts_ms);

    /** Record a point event. */
    void instant(std::string_view name, std::string_view category,
                 i32 track, f64 ts_ms, f64 value = 0.0);

    /** Record one sample of a numeric series. */
    void counter(std::string_view name, i32 track, f64 ts_ms,
                 f64 value);

    /** All recorded events, in record order. */
    const std::vector<SpanEvent> &events() const { return events_; }

    /** Resolve an interned string id. */
    const std::string &string(u32 id) const { return strings_[id]; }

    /** Drop all recorded events (interned strings are kept). */
    void clear() { events_.clear(); }

    /** Serialize as Chrome trace-viewer JSON. */
    void writeChromeTrace(std::ostream &out) const;

    /** Serialize as JSONL (one event object per line). */
    void writeJsonl(std::ostream &out) const;

    /** writeChromeTrace to @p path; false on I/O failure. */
    bool writeChromeTraceFile(const std::string &path) const;

    /** writeJsonl to @p path; false on I/O failure. */
    bool writeJsonlFile(const std::string &path) const;

  private:
    u32 intern(std::string_view s);

    std::vector<std::string> strings_;
    std::vector<SpanEvent> events_;
};

} // namespace gssr::obs

#endif // GSSR_OBS_SPAN_HH
