/**
 * @file
 * Post-training quantization for the from-scratch CNN library
 * (NAWQ-SR direction, PAPERS.md): symmetric absmax quantization with
 * per-channel weight scales and per-tensor activation scales, a
 * calibration observer that collects per-channel absmax ranges over
 * representative activations, and an int32-accumulator quantized
 * convolution built on the SIMD kernel dispatch layer.
 *
 * Scale math (DESIGN.md §14): for a range absmax and a target width
 * with qmax = 127 (int8) or 32767 (int16),
 *
 *     scale = absmax / qmax
 *     q     = clamp(lround(x / scale), -qmax, +qmax)
 *     x'    = q * scale
 *
 * so |x - x'| <= scale/2 for in-range values and out-of-range values
 * saturate. A degenerate range (absmax == 0, or so small the scale
 * would round to zero) falls back to scale = 1.0: everything in the
 * channel quantizes to 0 exactly and no path can divide by zero or
 * produce a non-finite value.
 *
 * The quantized conv keeps weights at int8 (per-output-channel
 * scales) for every precision; the layer precision chooses the
 * *activation* width (int8 or int16), mirroring NAWQ-SR's hybrid
 * activation scheme. int8-weight x int16-activation products bound
 * the int32 accumulator for any realistic layer (the constructor
 * asserts the bound), which is what lets one integer kernel serve
 * both widths.
 */

#ifndef GSSR_NN_QUANT_HH
#define GSSR_NN_QUANT_HH

#include <string>
#include <vector>

#include "nn/layers.hh"
#include "nn/tensor.hh"

namespace gssr
{

/** Integer width of a quantized tensor. */
enum class QuantBits
{
    Int8,
    Int16,
};

/** Largest representable magnitude of a width (symmetric range). */
inline i32
quantMax(QuantBits bits)
{
    return bits == QuantBits::Int8 ? 127 : 32767;
}

/** Report name of a width ("int8" / "int16"). */
const char *quantBitsName(QuantBits bits);

/**
 * Symmetric absmax scale for one channel. Always finite and strictly
 * positive: degenerate ranges (absmax == 0, or small enough that
 * absmax/qmax underflows to zero) yield 1.0.
 */
f32 quantScaleFor(f32 absmax, QuantBits bits);

/**
 * Calibration observer: per-channel absolute-maximum ranges collected
 * over any number of representative tensors (the "calibration set").
 * All observed values must be finite — calibration is offline, so the
 * observer asserts instead of propagating garbage ranges.
 */
class ChannelRanges
{
  public:
    ChannelRanges() = default;

    /** Ranges for tensors of @p channels channels, all starting at 0. */
    explicit ChannelRanges(int channels);

    /** Fold one tensor's per-channel absmax into the ranges. */
    void observe(const Tensor &tensor);

    int channels() const { return int(absmax_.size()); }

    /** Largest |x| seen in channel @p c. */
    f32 channelAbsMax(int c) const;

    /** Largest |x| seen in any channel. */
    f32 tensorAbsMax() const;

    /** Per-channel symmetric scales for @p bits. */
    std::vector<f32> channelScales(QuantBits bits) const;

    /**
     * Single per-tensor scale for @p bits (the per-channel ranges
     * folded by max). Activation quantization uses this: an integer
     * conv accumulates across input channels, so its input must share
     * one scale (DESIGN.md §14).
     */
    f32 tensorScale(QuantBits bits) const;

  private:
    std::vector<f32> absmax_;
};

/**
 * A quantized CHW tensor. Values are stored widened to i16 regardless
 * of the logical width — the integer madd kernel consumes i16 lanes —
 * with int8 tensors guaranteed to hold only values in [-127, 127].
 * This models the *arithmetic* of a narrow datapath; the DRAM-traffic
 * benefit of narrow storage is modeled by the NPU device model, not
 * by this container.
 */
struct QuantizedTensor
{
    QuantBits bits = QuantBits::Int8;
    int channels = 0;
    int height = 0;
    int width = 0;
    AlignedVec<i16> data;

    /** One scale per channel, or a single per-tensor scale. */
    std::vector<f32> scales;

    i16 *channelData(int c)
    {
        return &data[size_t(i64(c) * height * width)];
    }
    const i16 *channelData(int c) const
    {
        return &data[size_t(i64(c) * height * width)];
    }

    /** Scale of channel @p c (the shared scale when per-tensor). */
    f32
    scaleFor(int c) const
    {
        return scales.size() == 1 ? scales[0] : scales[size_t(c)];
    }
};

/**
 * Quantize @p tensor with the given @p scales (either one per channel
 * or a single per-tensor entry): q = clamp(lround(x/scale), ±qmax).
 */
QuantizedTensor quantizeTensor(const Tensor &tensor,
                               const std::vector<f32> &scales,
                               QuantBits bits);

/** Reconstruct a float tensor: x' = q * scale. */
Tensor dequantizeTensor(const QuantizedTensor &q);

/**
 * Post-training-quantized 2-D convolution ("same" padding, stride 1)
 * built from a trained float Conv2d: int8 weights with symmetric
 * per-output-channel scales, activations quantized at the layer
 * boundary with a calibrated per-tensor scale, int32 accumulation
 * through the kern::maddI16I32 dispatch kernel, and a float epilogue
 * that dequantizes (acc * in_scale * w_scale[co]) and adds the float
 * bias. Integer arithmetic is exact, so scalar and AVX2 paths produce
 * bit-identical outputs by construction.
 */
class QuantizedConv2d
{
  public:
    /**
     * @param reference the trained float layer to quantize.
     * @param act_bits activation width of this layer (int8 or int16).
     * @param act_scale calibrated per-tensor input activation scale.
     */
    QuantizedConv2d(const Conv2d &reference, QuantBits act_bits,
                    f32 act_scale);

    /** Forward pass: quantize input, integer conv, dequantize. */
    Tensor forward(const Tensor &input) const;

    QuantBits activationBits() const { return act_bits_; }
    f32 activationScale() const { return act_scale_; }
    const std::vector<f32> &weightScales() const { return wscale_; }

    int inChannels() const { return in_channels_; }
    int outChannels() const { return out_channels_; }

  private:
    void forwardRows(const QuantizedTensor &input, Tensor &out, int co,
                     int row0, int row1) const;

    size_t
    weightIndex(int co, int ci, int ky, int kx) const
    {
        return size_t(((i64(co) * in_channels_ + ci) * kernel_ + ky) *
                          kernel_ +
                      kx);
    }

    int in_channels_;
    int out_channels_;
    int kernel_;
    int pad_;
    QuantBits act_bits_;
    f32 act_scale_;
    AlignedVec<i16> weight_q_; ///< int8 values widened for the kernel
    std::vector<f32> wscale_;  ///< per-output-channel weight scales
    std::vector<f32> bias_;
};

/**
 * Per-layer precision schedule for a quantized network. Each entry is
 * Fp32 (run the float reference layer), Int16 or Int8; HybridInt8 is
 * a *network-level* mode (it expands to a mixed per-layer schedule)
 * and is rejected as a per-layer value.
 */
struct PrecisionPlan
{
    std::string name = "fp32";
    std::vector<Precision> layers;

    /** Every layer at @p p. */
    static PrecisionPlan uniform(int layer_count, Precision p);

    /** True when at least one layer runs quantized. */
    bool anyQuantized() const;
};

} // namespace gssr

#endif // GSSR_NN_QUANT_HH
