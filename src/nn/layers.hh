/**
 * @file
 * CNN layers with explicit forward/backward passes: 2-D convolution,
 * ReLU and PixelShuffle — the building blocks of EDSR-style
 * super-resolution networks. Backward passes are hand-derived (no
 * autograd); each layer accumulates parameter gradients for the
 * optimizer.
 */

#ifndef GSSR_NN_LAYERS_HH
#define GSSR_NN_LAYERS_HH

#include <vector>

#include "common/rng.hh"
#include "nn/tensor.hh"

namespace gssr
{

/** View of one trainable parameter array and its gradient. */
struct ParamRef
{
    AlignedVec<f32> *values = nullptr;
    AlignedVec<f32> *grads = nullptr;
};

/**
 * 2-D convolution with square kernel and "same" zero padding
 * (stride 1). Weight layout: [out_ch][in_ch][k][k].
 */
class Conv2d
{
  public:
    /**
     * @param kernel_size odd kernel size (1, 3, 5, ...).
     */
    Conv2d(int in_channels, int out_channels, int kernel_size);

    /** He-normal weight initialization; zero biases. */
    void initHe(Rng &rng);

    /** Forward pass. Input must have in_channels channels. */
    Tensor forward(const Tensor &input) const;

    /**
     * Backward pass: accumulates weight/bias gradients and returns
     * the gradient w.r.t. the input.
     * @param input the tensor given to the matching forward call.
     * @param grad_output gradient w.r.t. the forward output.
     */
    Tensor backward(const Tensor &input, const Tensor &grad_output);

    /** Trainable parameters (weights and biases). */
    std::vector<ParamRef> params();

    /** Multiply-accumulate count for an input of @p h x @p w. */
    i64
    macs(int h, int w) const
    {
        return i64(out_channels_) * in_channels_ * kernel_ * kernel_ *
               h * w;
    }

    int inChannels() const { return in_channels_; }
    int outChannels() const { return out_channels_; }
    int kernelSize() const { return kernel_; }

    AlignedVec<f32> &weights() { return weight_; }
    AlignedVec<f32> &biases() { return bias_; }
    const AlignedVec<f32> &weights() const { return weight_; }
    const AlignedVec<f32> &biases() const { return bias_; }

  private:
    /**
     * Compute output rows [row0, row1) of channel @p co — the unit of
     * work one parallelFor chunk owns in forward().
     */
    void forwardRows(const Tensor &input, Tensor &out, int co, int row0,
                     int row1) const;

    size_t
    weightIndex(int co, int ci, int ky, int kx) const
    {
        return size_t(((i64(co) * in_channels_ + ci) * kernel_ + ky) *
                          kernel_ +
                      kx);
    }

    int in_channels_;
    int out_channels_;
    int kernel_;
    int pad_;
    AlignedVec<f32> weight_;
    AlignedVec<f32> bias_;
    AlignedVec<f32> weight_grad_;
    AlignedVec<f32> bias_grad_;
};

/** Elementwise max(0, x). */
class Relu
{
  public:
    /** Forward pass. */
    static Tensor forward(const Tensor &input);

    /** Backward: zero where the forward input was negative. */
    static Tensor backward(const Tensor &input,
                           const Tensor &grad_output);
};

/**
 * PixelShuffle (depth-to-space): rearranges (c*r^2, h, w) into
 * (c, h*r, w*r). The standard sub-pixel upsampling layer of ESPCN /
 * EDSR.
 */
class PixelShuffle
{
  public:
    explicit PixelShuffle(int upscale_factor);

    Tensor forward(const Tensor &input) const;

    /** Backward pass (exact inverse rearrangement). */
    Tensor backward(const Tensor &grad_output) const;

    int factor() const { return factor_; }

  private:
    int factor_;
};

/** Mean-squared-error loss; returns loss and fills grad (d loss/d pred). */
f64 mseLoss(const Tensor &prediction, const Tensor &target,
            Tensor &grad_out);

} // namespace gssr

#endif // GSSR_NN_LAYERS_HH
