#include "nn/layers.hh"

#include <cmath>

#include "common/parallel.hh"
#include "kernels/kernels.hh"

namespace gssr
{

namespace
{

/** Row band per parallel conv chunk (fixed: keeps chunk layout — and
 * therefore accumulation order — independent of the thread count). */
constexpr i64 kConvRowGrain = 8;

/** Input channels per conv tile: bounds the set of input rows live in
 * cache while a row band of output accumulates. Pure loop blocking —
 * per output element the taps still apply in ascending (ci, ky, kx)
 * order, so the tile size never changes results. */
constexpr int kConvCiTile = 8;

} // namespace

Conv2d::Conv2d(int in_channels, int out_channels, int kernel_size)
    : in_channels_(in_channels), out_channels_(out_channels),
      kernel_(kernel_size), pad_(kernel_size / 2)
{
    GSSR_ASSERT(in_channels >= 1 && out_channels >= 1,
                "conv needs positive channel counts");
    GSSR_ASSERT(kernel_size >= 1 && kernel_size % 2 == 1,
                "conv kernel must be odd");
    size_t n = size_t(i64(out_channels_) * in_channels_ * kernel_ *
                      kernel_);
    weight_.assign(n, 0.0f);
    bias_.assign(size_t(out_channels_), 0.0f);
    weight_grad_.assign(n, 0.0f);
    bias_grad_.assign(size_t(out_channels_), 0.0f);
}

void
Conv2d::initHe(Rng &rng)
{
    f64 fan_in = f64(in_channels_) * kernel_ * kernel_;
    f64 stddev = std::sqrt(2.0 / fan_in);
    for (auto &w : weight_)
        w = f32(rng.normal(0.0, stddev));
    for (auto &b : bias_)
        b = 0.0f;
}

Tensor
Conv2d::forward(const Tensor &input) const
{
    GSSR_ASSERT(input.channels() == in_channels_,
                "conv input channel mismatch");
    const int h = input.height();
    const int w = input.width();
    Tensor out(out_channels_, h, w);

    // Each work item is one output row; a chunk is a row band of one
    // output channel. Every chunk writes a disjoint output range, so
    // results are bit-exact for any thread count.
    parallelFor(0, i64(out_channels_) * h, kConvRowGrain,
                [&](i64 band_begin, i64 band_end) {
        while (band_begin < band_end) {
            int co = int(band_begin / h);
            int row0 = int(band_begin % h);
            int row1 = int(std::min(i64(h), row0 + (band_end -
                                                    band_begin)));
            forwardRows(input, out, co, row0, row1);
            band_begin += row1 - row0;
        }
    });
    return out;
}

void
Conv2d::forwardRows(const Tensor &input, Tensor &out, int co, int row0,
                    int row1) const
{
    const int h = input.height();
    const int w = input.width();
    f32 *out_c = out.channelData(co);
    // Bias fill.
    f32 b = bias_[size_t(co)];
    for (i64 i = i64(row0) * w; i < i64(row1) * w; ++i)
        out_c[size_t(i)] = b;

    // Channel-tiled, output-row-major accumulation: for each tile of
    // input channels, sweep the band's output rows once so the tile's
    // input rows stay cache-hot across all kernel taps, and hand each
    // contiguous row segment to the SIMD axpy kernel. Per output
    // element the taps still accumulate in ascending (ci, ky, kx)
    // order — identical to the fused serial loop — so results are
    // bit-exact for any tile size, thread count or ISA path.
    for (int ci0 = 0; ci0 < in_channels_; ci0 += kConvCiTile) {
        int ci1 = std::min(in_channels_, ci0 + kConvCiTile);
        for (int y = row0; y < row1; ++y) {
            f32 *dst_row = out_c + size_t(y) * w;
            for (int ci = ci0; ci < ci1; ++ci) {
                const f32 *in_c = input.channelData(ci);
                for (int ky = 0; ky < kernel_; ++ky) {
                    int sy = y + ky - pad_;
                    if (sy < 0 || sy >= h)
                        continue;
                    const f32 *src_row = in_c + size_t(sy) * w;
                    for (int kx = 0; kx < kernel_; ++kx) {
                        f32 wv = weight_[weightIndex(co, ci, ky, kx)];
                        if (wv == 0.0f)
                            continue;
                        int dx = kx - pad_;
                        int x0 = std::max(0, -dx);
                        int x1 = std::min(w, w - dx);
                        if (x1 <= x0)
                            continue;
                        kern::axpy(dst_row + x0, src_row + x0 + dx,
                                   wv, x1 - x0);
                    }
                }
            }
        }
    }
}

Tensor
Conv2d::backward(const Tensor &input, const Tensor &grad_output)
{
    GSSR_ASSERT(input.channels() == in_channels_,
                "conv backward input mismatch");
    GSSR_ASSERT(grad_output.channels() == out_channels_ &&
                    grad_output.height() == input.height() &&
                    grad_output.width() == input.width(),
                "conv backward grad shape mismatch");
    const int h = input.height();
    const int w = input.width();
    Tensor grad_input(in_channels_, h, w);

    // Two passes so each chunk owns a disjoint gradient range: pass A
    // writes weight/bias gradients (disjoint per output channel),
    // pass B writes grad_input (disjoint per input channel). Per
    // element the accumulation order matches the fused serial loop —
    // (co, ky, kx) in index order — so results are bit-exact at any
    // thread count.
    //
    // Pass A stays scalar by design: its f64 plane-wide reductions
    // have a single sequential accumulation order, and vector lanes
    // would have to split that sum — changing the rounding and the
    // checked-in golden fingerprints. See DESIGN.md §12.
    parallelFor(0, out_channels_, 1, [&](i64 co_begin, i64 co_end) {
        for (int co = int(co_begin); co < int(co_end); ++co) {
            const f32 *go = grad_output.channelData(co);
            // Bias gradient.
            f64 bg = 0.0;
            for (i64 i = 0; i < i64(h) * w; ++i)
                bg += go[size_t(i)];
            bias_grad_[size_t(co)] += f32(bg);

            for (int ci = 0; ci < in_channels_; ++ci) {
                const f32 *in_c = input.channelData(ci);
                for (int ky = 0; ky < kernel_; ++ky) {
                    for (int kx = 0; kx < kernel_; ++kx) {
                        int dy = ky - pad_;
                        int dx = kx - pad_;
                        int y0 = std::max(0, -dy);
                        int y1 = std::min(h, h - dy);
                        int x0 = std::max(0, -dx);
                        int x1 = std::min(w, w - dx);
                        f64 wg = 0.0;
                        for (int y = y0; y < y1; ++y) {
                            const f32 *src = in_c + size_t(y + dy) * w +
                                             size_t(x0 + dx);
                            const f32 *g =
                                go + size_t(y) * w + size_t(x0);
                            for (int x = x0; x < x1; ++x) {
                                wg += f64(*g) * f64(*src);
                                ++src;
                                ++g;
                            }
                        }
                        weight_grad_[weightIndex(co, ci, ky, kx)] +=
                            f32(wg);
                    }
                }
            }
        }
    });

    // Target-row-major accumulation through the SIMD axpy kernel: for
    // each grad_input row, apply every (co, ky, kx) tap while the row
    // is hot. Per target element the order stays ascending
    // (co, ky, kx) — the same as the fused serial loop — so results
    // are bit-exact on every ISA path.
    parallelFor(0, in_channels_, 1, [&](i64 ci_begin, i64 ci_end) {
        for (int ci = int(ci_begin); ci < int(ci_end); ++ci) {
            f32 *gin = grad_input.channelData(ci);
            for (int ty = 0; ty < h; ++ty) {
                f32 *gin_row = gin + size_t(ty) * w;
                for (int co = 0; co < out_channels_; ++co) {
                    const f32 *go = grad_output.channelData(co);
                    for (int ky = 0; ky < kernel_; ++ky) {
                        int dy = ky - pad_;
                        int sy = ty - dy;
                        if (sy < 0 || sy >= h)
                            continue;
                        const f32 *go_row = go + size_t(sy) * w;
                        for (int kx = 0; kx < kernel_; ++kx) {
                            int dx = kx - pad_;
                            int x0 = std::max(0, -dx);
                            int x1 = std::min(w, w - dx);
                            if (x1 <= x0)
                                continue;
                            f32 wv =
                                weight_[weightIndex(co, ci, ky, kx)];
                            kern::axpy(gin_row + x0 + dx, go_row + x0,
                                       wv, x1 - x0);
                        }
                    }
                }
            }
        }
    });
    return grad_input;
}

std::vector<ParamRef>
Conv2d::params()
{
    return {{&weight_, &weight_grad_}, {&bias_, &bias_grad_}};
}

Tensor
Relu::forward(const Tensor &input)
{
    Tensor out = input;
    for (auto &v : out.data())
        v = v > 0.0f ? v : 0.0f;
    return out;
}

Tensor
Relu::backward(const Tensor &input, const Tensor &grad_output)
{
    GSSR_ASSERT(input.sameShape(grad_output),
                "relu backward shape mismatch");
    Tensor out = grad_output;
    for (size_t i = 0; i < out.data().size(); ++i) {
        if (input.data()[i] <= 0.0f)
            out.data()[i] = 0.0f;
    }
    return out;
}

PixelShuffle::PixelShuffle(int upscale_factor) : factor_(upscale_factor)
{
    GSSR_ASSERT(factor_ >= 1, "pixel shuffle factor must be >= 1");
}

Tensor
PixelShuffle::forward(const Tensor &input) const
{
    const int r = factor_;
    GSSR_ASSERT(input.channels() % (r * r) == 0,
                "pixel shuffle channel count not divisible by r^2");
    const int out_c = input.channels() / (r * r);
    Tensor out(out_c, input.height() * r, input.width() * r);
    for (int c = 0; c < out_c; ++c) {
        for (int y = 0; y < input.height(); ++y) {
            for (int x = 0; x < input.width(); ++x) {
                for (int ry = 0; ry < r; ++ry) {
                    for (int rx = 0; rx < r; ++rx) {
                        int in_c = c * r * r + ry * r + rx;
                        out.at(c, y * r + ry, x * r + rx) =
                            input.at(in_c, y, x);
                    }
                }
            }
        }
    }
    return out;
}

Tensor
PixelShuffle::backward(const Tensor &grad_output) const
{
    const int r = factor_;
    GSSR_ASSERT(grad_output.height() % r == 0 &&
                    grad_output.width() % r == 0,
                "pixel shuffle backward shape not divisible by r");
    const int in_c = grad_output.channels() * r * r;
    const int in_h = grad_output.height() / r;
    const int in_w = grad_output.width() / r;
    Tensor grad_input(in_c, in_h, in_w);
    for (int c = 0; c < grad_output.channels(); ++c) {
        for (int y = 0; y < in_h; ++y) {
            for (int x = 0; x < in_w; ++x) {
                for (int ry = 0; ry < r; ++ry) {
                    for (int rx = 0; rx < r; ++rx) {
                        grad_input.at(c * r * r + ry * r + rx, y, x) =
                            grad_output.at(c, y * r + ry, x * r + rx);
                    }
                }
            }
        }
    }
    return grad_input;
}

f64
mseLoss(const Tensor &prediction, const Tensor &target, Tensor &grad_out)
{
    GSSR_ASSERT(prediction.sameShape(target), "mse shape mismatch");
    grad_out = Tensor(prediction.channels(), prediction.height(),
                      prediction.width());
    f64 loss = 0.0;
    f64 n = f64(prediction.elementCount());
    for (size_t i = 0; i < prediction.data().size(); ++i) {
        f64 diff = f64(prediction.data()[i]) - f64(target.data()[i]);
        loss += diff * diff;
        grad_out.data()[i] = f32(2.0 * diff / n);
    }
    return loss / n;
}

} // namespace gssr
