#include "nn/optimizer.hh"

#include <cmath>
#include <fstream>

namespace gssr
{

Adam::Adam(std::vector<ParamRef> params)
    : Adam(std::move(params), Config{})
{
}

Adam::Adam(std::vector<ParamRef> params, const Config &config)
    : params_(std::move(params)), config_(config)
{
    for (const auto &p : params_) {
        GSSR_ASSERT(p.values && p.grads, "null parameter reference");
        GSSR_ASSERT(p.values->size() == p.grads->size(),
                    "parameter/gradient size mismatch");
        m_.emplace_back(p.values->size(), 0.0f);
        v_.emplace_back(p.values->size(), 0.0f);
    }
}

void
Adam::step()
{
    step_count_ += 1;
    f64 bc1 = 1.0 - std::pow(config_.beta1, f64(step_count_));
    f64 bc2 = 1.0 - std::pow(config_.beta2, f64(step_count_));
    for (size_t pi = 0; pi < params_.size(); ++pi) {
        auto &values = *params_[pi].values;
        auto &grads = *params_[pi].grads;
        auto &m = m_[pi];
        auto &v = v_[pi];
        for (size_t i = 0; i < values.size(); ++i) {
            f64 g = grads[i];
            m[i] = f32(config_.beta1 * m[i] + (1.0 - config_.beta1) * g);
            v[i] = f32(config_.beta2 * v[i] +
                       (1.0 - config_.beta2) * g * g);
            f64 m_hat = m[i] / bc1;
            f64 v_hat = v[i] / bc2;
            values[i] -= f32(config_.learning_rate * m_hat /
                             (std::sqrt(v_hat) + config_.epsilon));
            grads[i] = 0.0f;
        }
    }
}

void
Adam::zeroGrad()
{
    for (auto &p : params_)
        std::fill(p.grads->begin(), p.grads->end(), 0.0f);
}

namespace
{
constexpr u32 kWeightsMagic = 0x47535357; // "GSSW"
} // namespace

void
saveParams(const std::string &path, const std::vector<ParamRef> &params)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open ", path, " for writing");
    u32 magic = kWeightsMagic;
    u32 count = u32(params.size());
    os.write(reinterpret_cast<const char *>(&magic), sizeof(magic));
    os.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const auto &p : params) {
        u64 n = p.values->size();
        os.write(reinterpret_cast<const char *>(&n), sizeof(n));
        os.write(reinterpret_cast<const char *>(p.values->data()),
                 std::streamsize(n * sizeof(f32)));
    }
    if (!os)
        fatal("failed writing weights to ", path);
}

bool
loadParams(const std::string &path, const std::vector<ParamRef> &params)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        return false;
    u32 magic = 0, count = 0;
    is.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    is.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!is || magic != kWeightsMagic)
        fatal(path, " is not a GameStreamSR weights file");
    if (count != params.size())
        fatal(path, ": parameter array count mismatch");
    for (const auto &p : params) {
        u64 n = 0;
        is.read(reinterpret_cast<char *>(&n), sizeof(n));
        if (!is || n != p.values->size())
            fatal(path, ": parameter array length mismatch");
        is.read(reinterpret_cast<char *>(p.values->data()),
                std::streamsize(n * sizeof(f32)));
        if (!is)
            fatal(path, ": truncated weights file");
    }
    return true;
}

} // namespace gssr
