#include "nn/quant.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/parallel.hh"
#include "kernels/kernels.hh"

namespace gssr
{

namespace
{

/** Row band per parallel quantized-conv chunk (matches the float
 * conv's fixed grain; integer accumulation is exact, so this only
 * pins the chunk layout, not the results). */
constexpr i64 kQConvRowGrain = 8;

/** Input channels per tile (cache blocking, order-preserving). */
constexpr int kQConvCiTile = 8;

/** clamp(lround(x / scale), ±qmax) with float-domain saturation so
 * extreme ratios can never overflow the integer conversion. */
i16
quantizeValue(f32 x, f32 inv_scale, i32 qmax)
{
    f32 r = x * inv_scale;
    if (r >= f32(qmax))
        return i16(qmax);
    if (r <= f32(-qmax))
        return i16(-qmax);
    return i16(std::lround(r));
}

} // namespace

const char *
quantBitsName(QuantBits bits)
{
    return bits == QuantBits::Int8 ? "int8" : "int16";
}

f32
quantScaleFor(f32 absmax, QuantBits bits)
{
    GSSR_ASSERT(std::isfinite(absmax) && absmax >= 0.0f,
                "quant range must be finite and non-negative");
    f32 scale = absmax / f32(quantMax(bits));
    // Degenerate ranges: an all-zero channel (absmax == 0) or one so
    // small the division underflows. scale = 1.0 quantizes the whole
    // channel to 0 exactly and keeps every later division finite.
    if (!(scale > 0.0f) || !std::isfinite(scale))
        return 1.0f;
    return scale;
}

ChannelRanges::ChannelRanges(int channels)
    : absmax_(size_t(channels), 0.0f)
{
    GSSR_ASSERT(channels >= 0, "negative channel count");
}

void
ChannelRanges::observe(const Tensor &tensor)
{
    if (absmax_.empty())
        absmax_.assign(size_t(tensor.channels()), 0.0f);
    GSSR_ASSERT(tensor.channels() == channels(),
                "calibration channel-count mismatch");
    const i64 plane = i64(tensor.height()) * tensor.width();
    for (int c = 0; c < tensor.channels(); ++c) {
        const f32 *src = tensor.channelData(c);
        f32 m = absmax_[size_t(c)];
        for (i64 i = 0; i < plane; ++i) {
            f32 v = src[size_t(i)];
            GSSR_ASSERT(std::isfinite(v),
                        "non-finite calibration activation");
            f32 a = v < 0.0f ? -v : v;
            m = a > m ? a : m;
        }
        absmax_[size_t(c)] = m;
    }
}

f32
ChannelRanges::channelAbsMax(int c) const
{
    GSSR_ASSERT(c >= 0 && c < channels(), "range channel out of bounds");
    return absmax_[size_t(c)];
}

f32
ChannelRanges::tensorAbsMax() const
{
    f32 m = 0.0f;
    for (f32 a : absmax_)
        m = a > m ? a : m;
    return m;
}

std::vector<f32>
ChannelRanges::channelScales(QuantBits bits) const
{
    std::vector<f32> scales(absmax_.size());
    for (size_t c = 0; c < absmax_.size(); ++c)
        scales[c] = quantScaleFor(absmax_[c], bits);
    return scales;
}

f32
ChannelRanges::tensorScale(QuantBits bits) const
{
    return quantScaleFor(tensorAbsMax(), bits);
}

QuantizedTensor
quantizeTensor(const Tensor &tensor, const std::vector<f32> &scales,
               QuantBits bits)
{
    GSSR_ASSERT(scales.size() == 1 ||
                    scales.size() == size_t(tensor.channels()),
                "need one scale per channel or a per-tensor scale");
    QuantizedTensor q;
    q.bits = bits;
    q.channels = tensor.channels();
    q.height = tensor.height();
    q.width = tensor.width();
    q.data.assign(size_t(tensor.elementCount()), 0);
    q.scales = scales;

    const i32 qmax = quantMax(bits);
    const i64 plane = i64(q.height) * q.width;
    for (int c = 0; c < q.channels; ++c) {
        f32 scale = q.scaleFor(c);
        GSSR_ASSERT(scale > 0.0f && std::isfinite(scale),
                    "quant scale must be finite and positive");
        f32 inv = 1.0f / scale;
        const f32 *src = tensor.channelData(c);
        i16 *dst = q.channelData(c);
        for (i64 i = 0; i < plane; ++i)
            dst[size_t(i)] = quantizeValue(src[size_t(i)], inv, qmax);
    }
    return q;
}

Tensor
dequantizeTensor(const QuantizedTensor &q)
{
    Tensor out(q.channels, q.height, q.width);
    const i64 plane = i64(q.height) * q.width;
    for (int c = 0; c < q.channels; ++c) {
        f32 scale = q.scaleFor(c);
        const i16 *src = q.channelData(c);
        f32 *dst = out.channelData(c);
        for (i64 i = 0; i < plane; ++i)
            dst[size_t(i)] = f32(src[size_t(i)]) * scale;
    }
    return out;
}

QuantizedConv2d::QuantizedConv2d(const Conv2d &reference,
                                 QuantBits act_bits, f32 act_scale)
    : in_channels_(reference.inChannels()),
      out_channels_(reference.outChannels()),
      kernel_(reference.kernelSize()), pad_(reference.kernelSize() / 2),
      act_bits_(act_bits), act_scale_(act_scale)
{
    GSSR_ASSERT(act_scale_ > 0.0f && std::isfinite(act_scale_),
                "activation scale must be finite and positive");
    // int32-accumulator overflow bound: taps * |w|max * |act|max must
    // stay below 2^31. With int8 weights this admits any int16-
    // activation layer up to ~516 input taps — far beyond every layer
    // in this codebase (CompactSrNet peaks at 14*3*3 = 126).
    const i64 taps = i64(in_channels_) * kernel_ * kernel_;
    GSSR_ASSERT(taps * 127 * quantMax(act_bits_) <
                    i64(std::numeric_limits<i32>::max()),
                "quantized conv would overflow its i32 accumulator");

    // Per-output-channel symmetric int8 weight quantization.
    const AlignedVec<f32> &w = reference.weights();
    const AlignedVec<f32> &b = reference.biases();
    weight_q_.assign(w.size(), 0);
    wscale_.resize(size_t(out_channels_));
    bias_.assign(b.begin(), b.end());
    const i64 per_co = i64(in_channels_) * kernel_ * kernel_;
    for (int co = 0; co < out_channels_; ++co) {
        const f32 *src = &w[size_t(i64(co) * per_co)];
        f32 absmax = 0.0f;
        for (i64 i = 0; i < per_co; ++i) {
            f32 a = src[size_t(i)] < 0.0f ? -src[size_t(i)]
                                          : src[size_t(i)];
            absmax = a > absmax ? a : absmax;
        }
        f32 scale = quantScaleFor(absmax, QuantBits::Int8);
        wscale_[size_t(co)] = scale;
        f32 inv = 1.0f / scale;
        i16 *dst = &weight_q_[size_t(i64(co) * per_co)];
        for (i64 i = 0; i < per_co; ++i)
            dst[size_t(i)] = quantizeValue(src[size_t(i)], inv, 127);
    }
}

Tensor
QuantizedConv2d::forward(const Tensor &input) const
{
    GSSR_ASSERT(input.channels() == in_channels_,
                "quantized conv input channel mismatch");
    const int h = input.height();
    const int w = input.width();

    // Layer boundary: quantize the float input with the calibrated
    // per-tensor activation scale.
    QuantizedTensor q =
        quantizeTensor(input, {act_scale_}, act_bits_);

    Tensor out(out_channels_, h, w);
    parallelFor(0, i64(out_channels_) * h, kQConvRowGrain,
                [&](i64 band_begin, i64 band_end) {
        while (band_begin < band_end) {
            int co = int(band_begin / h);
            int row0 = int(band_begin % h);
            int row1 = int(std::min(i64(h), row0 + (band_end -
                                                    band_begin)));
            forwardRows(q, out, co, row0, row1);
            band_begin += row1 - row0;
        }
    });
    return out;
}

void
QuantizedConv2d::forwardRows(const QuantizedTensor &input, Tensor &out,
                             int co, int row0, int row1) const
{
    const int h = input.height;
    const int w = input.width;
    const int rows = row1 - row0;

    // int32 accumulators for the band; the epilogue dequantizes.
    AlignedVec<i32> acc(size_t(i64(rows) * w), 0);

    for (int ci0 = 0; ci0 < in_channels_; ci0 += kQConvCiTile) {
        int ci1 = std::min(in_channels_, ci0 + kQConvCiTile);
        for (int y = row0; y < row1; ++y) {
            i32 *acc_row = &acc[size_t(i64(y - row0) * w)];
            for (int ci = ci0; ci < ci1; ++ci) {
                const i16 *in_c = input.channelData(ci);
                for (int ky = 0; ky < kernel_; ++ky) {
                    int sy = y + ky - pad_;
                    if (sy < 0 || sy >= h)
                        continue;
                    const i16 *src_row = in_c + size_t(sy) * w;
                    for (int kx = 0; kx < kernel_; ++kx) {
                        i32 wv =
                            weight_q_[weightIndex(co, ci, ky, kx)];
                        if (wv == 0)
                            continue;
                        int dx = kx - pad_;
                        int x0 = std::max(0, -dx);
                        int x1 = std::min(w, w - dx);
                        if (x1 <= x0)
                            continue;
                        kern::maddI16I32(acc_row + x0,
                                         src_row + x0 + dx, wv,
                                         x1 - x0);
                    }
                }
            }
        }
    }

    // Dequantize epilogue: out = acc * (act_scale * w_scale) + bias.
    f32 *out_c = out.channelData(co);
    const f32 scale = act_scale_ * wscale_[size_t(co)];
    const f32 b = bias_[size_t(co)];
    for (i64 i = 0; i < i64(rows) * w; ++i)
        out_c[size_t(i64(row0) * w + i)] =
            f32(acc[size_t(i)]) * scale + b;
}

PrecisionPlan
PrecisionPlan::uniform(int layer_count, Precision p)
{
    GSSR_ASSERT(p != Precision::HybridInt8,
                "HybridInt8 is a network-level mode, not a per-layer "
                "precision");
    PrecisionPlan plan;
    plan.name = precisionName(p);
    plan.layers.assign(size_t(layer_count), p);
    return plan;
}

bool
PrecisionPlan::anyQuantized() const
{
    for (Precision p : layers)
        if (p != Precision::Fp32)
            return true;
    return false;
}

} // namespace gssr
