/**
 * @file
 * Tensor: a dense CHW float tensor — the data type flowing through
 * the from-scratch CNN inference/training library used by the SR
 * models.
 */

#ifndef GSSR_NN_TENSOR_HH
#define GSSR_NN_TENSOR_HH

#include <vector>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/types.hh"
#include "frame/plane.hh"

namespace gssr
{

/**
 * Dense CHW (channels, height, width) float tensor. Storage is
 * 32-byte-aligned (AlignedVec) for the SIMD kernel layer.
 */
class Tensor
{
  public:
    Tensor() = default;

    /** Zero-initialized tensor of shape (c, h, w). */
    Tensor(int channels, int height, int width)
        : c_(channels), h_(height), w_(width),
          data_(size_t(i64(channels) * height * width), 0.0f)
    {
        GSSR_ASSERT(channels >= 0 && height >= 0 && width >= 0,
                    "negative tensor shape");
    }

    int channels() const { return c_; }
    int height() const { return h_; }
    int width() const { return w_; }
    i64 elementCount() const { return i64(c_) * h_ * w_; }
    bool empty() const { return data_.empty(); }

    /** Element access. */
    f32 &
    at(int c, int y, int x)
    {
        checkBounds(c, y, x);
        return data_[offset(c, y, x)];
    }

    f32
    at(int c, int y, int x) const
    {
        checkBounds(c, y, x);
        return data_[offset(c, y, x)];
    }

    /** Pointer to the start of channel @p c. */
    f32 *channelData(int c) { return &data_[offset(c, 0, 0)]; }
    const f32 *channelData(int c) const { return &data_[offset(c, 0, 0)]; }

    AlignedVec<f32> &data() { return data_; }
    const AlignedVec<f32> &data() const { return data_; }

    /** Set every element to @p v. */
    void fill(f32 v) { std::fill(data_.begin(), data_.end(), v); }

    /** True when shapes match. */
    bool
    sameShape(const Tensor &o) const
    {
        return c_ == o.c_ && h_ == o.h_ && w_ == o.w_;
    }

    /** Elementwise in-place addition. */
    void
    add(const Tensor &o)
    {
        GSSR_ASSERT(sameShape(o), "tensor add shape mismatch");
        for (size_t i = 0; i < data_.size(); ++i)
            data_[i] += o.data_[i];
    }

    /** Build a 1-channel tensor from a plane scaled into [0, 1]. */
    static Tensor
    fromPlane(const PlaneU8 &plane)
    {
        Tensor t(1, plane.height(), plane.width());
        for (i64 i = 0; i < plane.sampleCount(); ++i)
            t.data_[size_t(i)] = f32(plane.data()[size_t(i)]) / 255.0f;
        return t;
    }

    /** Convert channel @p c back to a u8 plane ([0,1] -> [0,255]). */
    PlaneU8
    toPlane(int c = 0) const
    {
        PlaneU8 plane(w_, h_);
        const f32 *src = channelData(c);
        for (i64 i = 0; i < plane.sampleCount(); ++i) {
            f32 v = src[size_t(i)];
            v = v < 0.0f ? 0.0f : (v > 1.0f ? 1.0f : v);
            plane.data()[size_t(i)] = u8(v * 255.0f + 0.5f);
        }
        return plane;
    }

  private:
    size_t
    offset(int c, int y, int x) const
    {
        return size_t((i64(c) * h_ + y) * w_ + x);
    }

    void
    checkBounds(int c, int y, int x) const
    {
        GSSR_ASSERT(c >= 0 && c < c_ && y >= 0 && y < h_ && x >= 0 &&
                        x < w_,
                    "tensor access out of bounds");
    }

    int c_ = 0;
    int h_ = 0;
    int w_ = 0;
    AlignedVec<f32> data_;
};

} // namespace gssr

#endif // GSSR_NN_TENSOR_HH
