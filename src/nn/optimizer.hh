/**
 * @file
 * Adam optimizer over a registered set of parameter arrays, plus
 * weight (de)serialization so trained SR models can be cached on
 * disk between runs.
 */

#ifndef GSSR_NN_OPTIMIZER_HH
#define GSSR_NN_OPTIMIZER_HH

#include <string>
#include <vector>

#include "nn/layers.hh"

namespace gssr
{

/** Adam (Kingma & Ba) with bias correction. */
class Adam
{
  public:
    struct Config
    {
        f64 learning_rate = 1e-3;
        f64 beta1 = 0.9;
        f64 beta2 = 0.999;
        f64 epsilon = 1e-8;
    };

    /** @param params every trainable array of the model. */
    explicit Adam(std::vector<ParamRef> params);

    Adam(std::vector<ParamRef> params, const Config &config);

    /** Apply one update from the accumulated gradients, then clear them. */
    void step();

    /** Clear accumulated gradients without updating. */
    void zeroGrad();

    /** Change the learning rate (for schedules). */
    void setLearningRate(f64 lr) { config_.learning_rate = lr; }

    /** Number of steps taken. */
    i64 stepCount() const { return step_count_; }

  private:
    std::vector<ParamRef> params_;
    Config config_;
    std::vector<std::vector<f32>> m_;
    std::vector<std::vector<f32>> v_;
    i64 step_count_ = 0;
};

/**
 * Serialize parameter arrays to a binary file (magic + per-array
 * length + raw little-endian f32 data).
 */
void saveParams(const std::string &path,
                const std::vector<ParamRef> &params);

/**
 * Load parameter arrays saved by saveParams. Array count and lengths
 * must match exactly.
 * @return false if the file does not exist; throws on mismatch.
 */
bool loadParams(const std::string &path,
                const std::vector<ParamRef> &params);

} // namespace gssr

#endif // GSSR_NN_OPTIMIZER_HH
