/**
 * @file
 * Kernel dispatch: resolves the active table from activeSimdLevel()
 * and caches it until the SIMD config generation changes (i.e. a
 * test/bench forces or clears a level). Two relaxed atomic loads per
 * kernel call — noise next to the row-granularity work the kernels
 * do.
 */

#include "kernels/kernels.hh"

#include <atomic>

namespace gssr::kern
{

namespace
{

const KernelTable *
tableForLevel(SimdLevel level)
{
    if (level >= SimdLevel::Avx2) {
        if (const KernelTable *t = avx2Kernels())
            return t;
    }
    return &scalarKernels();
}

std::atomic<const KernelTable *> g_table{nullptr};
std::atomic<u64> g_seen_generation{0};

} // namespace

const KernelTable &
kernelTable()
{
    u64 gen = simdConfigGeneration();
    if (g_seen_generation.load(std::memory_order_relaxed) != gen ||
        g_table.load(std::memory_order_relaxed) == nullptr) {
        g_table.store(tableForLevel(activeSimdLevel()),
                      std::memory_order_relaxed);
        g_seen_generation.store(gen, std::memory_order_relaxed);
    }
    return *g_table.load(std::memory_order_relaxed);
}

} // namespace gssr::kern
