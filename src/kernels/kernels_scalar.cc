/**
 * @file
 * Portable scalar kernel implementations — the reference semantics
 * every other ISA path must reproduce bit-for-bit. Each loop states
 * its accumulation order explicitly; the AVX2 file mirrors that order
 * lane-by-lane.
 */

#include "kernels/kernels.hh"

#include <cmath>

namespace gssr::kern
{

const Dct8Tables &
dct8Tables()
{
    static const Dct8Tables tables = [] {
        Dct8Tables t;
        for (int k = 0; k < 8; ++k) {
            f64 scale = k == 0 ? std::sqrt(1.0 / 8.0)
                               : std::sqrt(2.0 / 8.0);
            for (int n = 0; n < 8; ++n) {
                t.basis[k][n] = f32(
                    scale *
                    std::cos(M_PI * (2.0 * n + 1.0) * k / 16.0));
            }
        }
        for (int k = 0; k < 8; ++k)
            for (int n = 0; n < 8; ++n)
                t.basis_t[n][k] = t.basis[k][n];
        return t;
    }();
    return tables;
}

namespace
{

void
axpyScalar(f32 *dst, const f32 *src, f32 w, i64 n)
{
    for (i64 i = 0; i < n; ++i)
        dst[i] += w * src[i];
}

void
dctForwardScalar(const f32 *in, f32 *out)
{
    const auto &t = dct8Tables();
    // Rows then columns (separable); per output element the terms
    // accumulate in ascending n.
    f32 tmp[64];
    for (int y = 0; y < 8; ++y) {
        for (int k = 0; k < 8; ++k) {
            f32 acc = 0.0f;
            for (int n = 0; n < 8; ++n)
                acc += in[y * 8 + n] * t.basis[k][n];
            tmp[y * 8 + k] = acc;
        }
    }
    for (int x = 0; x < 8; ++x) {
        for (int k = 0; k < 8; ++k) {
            f32 acc = 0.0f;
            for (int n = 0; n < 8; ++n)
                acc += tmp[n * 8 + x] * t.basis[k][n];
            out[k * 8 + x] = acc;
        }
    }
}

void
dctInverseScalar(const f32 *in, f32 *out)
{
    const auto &t = dct8Tables();
    f32 tmp[64];
    for (int x = 0; x < 8; ++x) {
        for (int n = 0; n < 8; ++n) {
            f32 acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += in[k * 8 + x] * t.basis[k][n];
            tmp[n * 8 + x] = acc;
        }
    }
    for (int y = 0; y < 8; ++y) {
        for (int n = 0; n < 8; ++n) {
            f32 acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += tmp[y * 8 + k] * t.basis[k][n];
            out[y * 8 + n] = acc;
        }
    }
}

void
quantizeScalar(const f32 *coef, const f32 *steps, i32 *out)
{
    for (int i = 0; i < 64; ++i)
        out[i] = i32(std::lround(coef[i] / steps[i]));
}

void
dequantizeScalar(const i32 *levels, const f32 *steps, f32 *out)
{
    for (int i = 0; i < 64; ++i)
        out[i] = f32(levels[i]) * steps[i];
}

i64
sadRectScalar(const u8 *a, i64 a_pitch, const u8 *b, i64 b_pitch,
              int w, int h, i64 early_exit)
{
    i64 sad = 0;
    for (int y = 0; y < h; ++y) {
        const u8 *ra = a + y * a_pitch;
        const u8 *rb = b + y * b_pitch;
        for (int x = 0; x < w; ++x) {
            i32 d = i32(ra[x]) - i32(rb[x]);
            sad += d < 0 ? -d : d;
        }
        if (sad >= early_exit)
            return sad;
    }
    return sad;
}

void
gaussRowScalar(const f64 *in, f64 *out, int width, const f64 *taps,
               int radius)
{
    for (int x = 0; x < width; ++x) {
        f64 acc = 0.0;
        for (int i = -radius; i <= radius; ++i) {
            int sx = x + i;
            sx = sx < 0 ? 0 : (sx >= width ? width - 1 : sx);
            acc += taps[i + radius] * in[sx];
        }
        out[x] = acc;
    }
}

void
weightedSumRowsScalar(const f64 *const *rows, const f64 *taps,
                      int ntaps, f64 *out, int width)
{
    for (int x = 0; x < width; ++x) {
        f64 acc = 0.0;
        for (int i = 0; i < ntaps; ++i)
            acc += taps[i] * rows[i][x];
        out[x] = acc;
    }
}

void
u8ToF64Scalar(const u8 *in, f64 *out, i64 n)
{
    for (i64 i = 0; i < n; ++i)
        out[i] = f64(in[i]);
}

void
ssimProductsScalar(const f64 *a, const f64 *b, f64 *a2, f64 *b2,
                   f64 *ab, i64 n)
{
    for (i64 i = 0; i < n; ++i) {
        f64 va = a[i];
        f64 vb = b[i];
        a2[i] = va * va;
        b2[i] = vb * vb;
        ab[i] = va * vb;
    }
}

void
maddI16I32Scalar(i32 *acc, const i16 *src, i32 w, i64 n)
{
    for (i64 i = 0; i < n; ++i)
        acc[i] += w * i32(src[i]);
}

void
boxDown2U8Scalar(const u8 *r0, const u8 *r1, u8 *out, int out_width)
{
    for (int x = 0; x < out_width; ++x) {
        u32 acc = u32(r0[2 * x]) + u32(r0[2 * x + 1]) +
                  u32(r1[2 * x]) + u32(r1[2 * x + 1]);
        out[x] = u8((acc + 2) / 4);
    }
}

} // namespace

const KernelTable &
scalarKernels()
{
    static const KernelTable table = {
        axpyScalar,
        dctForwardScalar,
        dctInverseScalar,
        quantizeScalar,
        dequantizeScalar,
        sadRectScalar,
        gaussRowScalar,
        weightedSumRowsScalar,
        u8ToF64Scalar,
        ssimProductsScalar,
        boxDown2U8Scalar,
        maddI16I32Scalar,
        SimdLevel::Scalar,
        "scalar",
    };
    return table;
}

} // namespace gssr::kern
