/**
 * @file
 * AVX2 kernel implementations. This translation unit is compiled with
 * -mavx2 -mfma -ffp-contract=off (see src/kernels/CMakeLists.txt);
 * everywhere else stays at the baseline ISA and the dispatcher picks
 * this table only when the host CPU reports AVX2+FMA.
 *
 * Bit-exactness contract (DESIGN.md §12): vector lanes map to
 * independent output elements, every per-element reduction walks its
 * terms in the same order as the scalar reference, and float
 * multiply+add pairs stay separate instructions (-ffp-contract=off
 * keeps the compiler from fusing them into FMAs, which would change
 * rounding). FMA hardware is still required at dispatch time so a
 * future kernel that *wants* single-rounding accumulation (e.g. the
 * int8 path) can rely on it.
 */

#include "kernels/kernels.hh"

#if defined(__AVX2__) && defined(__x86_64__)

#include <immintrin.h>

namespace gssr::kern
{

namespace
{

void
axpyAvx2(f32 *dst, const f32 *src, f32 w, i64 n)
{
    const __m256 vw = _mm256_set1_ps(w);
    i64 i = 0;
    for (; i + 16 <= n; i += 16) {
        __m256 d0 = _mm256_loadu_ps(dst + i);
        __m256 d1 = _mm256_loadu_ps(dst + i + 8);
        __m256 s0 = _mm256_loadu_ps(src + i);
        __m256 s1 = _mm256_loadu_ps(src + i + 8);
        d0 = _mm256_add_ps(d0, _mm256_mul_ps(vw, s0));
        d1 = _mm256_add_ps(d1, _mm256_mul_ps(vw, s1));
        _mm256_storeu_ps(dst + i, d0);
        _mm256_storeu_ps(dst + i + 8, d1);
    }
    for (; i + 8 <= n; i += 8) {
        __m256 d = _mm256_loadu_ps(dst + i);
        __m256 s = _mm256_loadu_ps(src + i);
        _mm256_storeu_ps(dst + i,
                         _mm256_add_ps(d, _mm256_mul_ps(vw, s)));
    }
    for (; i < n; ++i)
        dst[i] += w * src[i];
}

void
dctForwardAvx2(const f32 *in, f32 *out)
{
    const auto &t = dct8Tables();
    // Row pass: lane = output frequency k; terms accumulate in
    // ascending n, matching the scalar reference element-for-element.
    alignas(kSimdAlignment) f32 tmp[64];
    for (int y = 0; y < 8; ++y) {
        __m256 acc = _mm256_setzero_ps();
        for (int n = 0; n < 8; ++n) {
            __m256 s = _mm256_set1_ps(in[y * 8 + n]);
            __m256 bt = _mm256_load_ps(t.basis_t[n]);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(s, bt));
        }
        _mm256_store_ps(tmp + y * 8, acc);
    }
    // Column pass: lane = column x; terms accumulate in ascending n.
    for (int k = 0; k < 8; ++k) {
        __m256 acc = _mm256_setzero_ps();
        for (int n = 0; n < 8; ++n) {
            __m256 row = _mm256_load_ps(tmp + n * 8);
            __m256 b = _mm256_set1_ps(t.basis[k][n]);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(row, b));
        }
        _mm256_storeu_ps(out + k * 8, acc);
    }
}

void
dctInverseAvx2(const f32 *in, f32 *out)
{
    const auto &t = dct8Tables();
    // Column pass: lane = column x; terms accumulate in ascending k.
    alignas(kSimdAlignment) f32 tmp[64];
    for (int n = 0; n < 8; ++n) {
        __m256 acc = _mm256_setzero_ps();
        for (int k = 0; k < 8; ++k) {
            __m256 row = _mm256_loadu_ps(in + k * 8);
            __m256 b = _mm256_set1_ps(t.basis[k][n]);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(row, b));
        }
        _mm256_store_ps(tmp + n * 8, acc);
    }
    // Row pass: lane = sample n; terms accumulate in ascending k.
    for (int y = 0; y < 8; ++y) {
        __m256 acc = _mm256_setzero_ps();
        for (int k = 0; k < 8; ++k) {
            __m256 s = _mm256_set1_ps(tmp[y * 8 + k]);
            __m256 b = _mm256_load_ps(t.basis[k]);
            acc = _mm256_add_ps(acc, _mm256_mul_ps(s, b));
        }
        _mm256_storeu_ps(out + y * 8, acc);
    }
}

void
quantizeAvx2(const f32 *coef, const f32 *steps, i32 *out)
{
    // Exact std::lround (round half away from zero) semantics:
    // round-to-nearest-even, then fix the exact-tie lanes where the
    // even choice went toward zero. q - r is exact for |q| < 2^23, so
    // tie detection is precise.
    const __m256 half = _mm256_set1_ps(0.5f);
    const __m256 neg_half = _mm256_set1_ps(-0.5f);
    const __m256 one = _mm256_set1_ps(1.0f);
    const __m256 zero = _mm256_setzero_ps();
    for (int i = 0; i < 64; i += 8) {
        __m256 q = _mm256_div_ps(_mm256_loadu_ps(coef + i),
                                 _mm256_loadu_ps(steps + i));
        __m256 r = _mm256_round_ps(
            q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        __m256 diff = _mm256_sub_ps(q, r);
        __m256 up = _mm256_and_ps(
            _mm256_cmp_ps(diff, half, _CMP_EQ_OQ),
            _mm256_cmp_ps(q, zero, _CMP_GT_OQ));
        __m256 down = _mm256_and_ps(
            _mm256_cmp_ps(diff, neg_half, _CMP_EQ_OQ),
            _mm256_cmp_ps(q, zero, _CMP_LT_OQ));
        r = _mm256_add_ps(r, _mm256_and_ps(up, one));
        r = _mm256_sub_ps(r, _mm256_and_ps(down, one));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + i),
                            _mm256_cvtps_epi32(r));
    }
}

void
dequantizeAvx2(const i32 *levels, const f32 *steps, f32 *out)
{
    for (int i = 0; i < 64; i += 8) {
        __m256 l = _mm256_cvtepi32_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(levels + i)));
        _mm256_storeu_ps(
            out + i, _mm256_mul_ps(l, _mm256_loadu_ps(steps + i)));
    }
}

/** Sum the four u64 lanes of an accumulator of _mm256_sad_epu8s. */
inline i64
hsum64(__m256i v)
{
    __m128i lo = _mm256_castsi256_si128(v);
    __m128i hi = _mm256_extracti128_si256(v, 1);
    __m128i s = _mm_add_epi64(lo, hi);
    return _mm_cvtsi128_si64(s) + _mm_extract_epi64(s, 1);
}

i64
sadRectAvx2(const u8 *a, i64 a_pitch, const u8 *b, i64 b_pitch, int w,
            int h, i64 early_exit)
{
    i64 sad = 0;
    for (int y = 0; y < h; ++y) {
        const u8 *ra = a + y * a_pitch;
        const u8 *rb = b + y * b_pitch;
        i64 row = 0;
        int x = 0;
        if (w >= 32) {
            __m256i acc = _mm256_setzero_si256();
            for (; x + 32 <= w; x += 32) {
                __m256i va = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(ra + x));
                __m256i vb = _mm256_loadu_si256(
                    reinterpret_cast<const __m256i *>(rb + x));
                acc = _mm256_add_epi64(acc, _mm256_sad_epu8(va, vb));
            }
            row += hsum64(acc);
        }
        for (; x + 16 <= w; x += 16) {
            __m128i va = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(ra + x));
            __m128i vb = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(rb + x));
            __m128i d = _mm_sad_epu8(va, vb);
            row += _mm_cvtsi128_si64(d) + _mm_extract_epi64(d, 1);
        }
        for (; x + 8 <= w; x += 8) {
            __m128i va = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(ra + x));
            __m128i vb = _mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(rb + x));
            row += _mm_cvtsi128_si64(_mm_sad_epu8(va, vb));
        }
        for (; x < w; ++x) {
            i32 d = i32(ra[x]) - i32(rb[x]);
            row += d < 0 ? -d : d;
        }
        // Integer sums are order-independent, so the row total (and
        // therefore the early-exit point) matches scalar exactly.
        sad += row;
        if (sad >= early_exit)
            return sad;
    }
    return sad;
}

void
gaussRowAvx2(const f64 *in, f64 *out, int width, const f64 *taps,
             int radius)
{
    const int ntaps = 2 * radius + 1;
    // Clamped edges use the scalar reference loop verbatim.
    auto edge = [&](int x0, int x1) {
        for (int x = x0; x < x1; ++x) {
            f64 acc = 0.0;
            for (int i = -radius; i <= radius; ++i) {
                int sx = x + i;
                sx = sx < 0 ? 0 : (sx >= width ? width - 1 : sx);
                acc += taps[i + radius] * in[sx];
            }
            out[x] = acc;
        }
    };
    int safe_begin = radius < width ? radius : width;
    int safe_end = width - radius;
    if (safe_end < safe_begin)
        safe_end = safe_begin;
    edge(0, safe_begin);
    int x = safe_begin;
    for (; x + 4 <= safe_end; x += 4) {
        // Lane = output sample; taps accumulate in ascending i.
        __m256d acc = _mm256_setzero_pd();
        const f64 *base = in + x - radius;
        for (int i = 0; i < ntaps; ++i) {
            __m256d s = _mm256_loadu_pd(base + i);
            __m256d t = _mm256_set1_pd(taps[i]);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(t, s));
        }
        _mm256_storeu_pd(out + x, acc);
    }
    for (; x < safe_end; ++x) {
        f64 acc = 0.0;
        const f64 *base = in + x - radius;
        for (int i = 0; i < ntaps; ++i)
            acc += taps[i] * base[i];
        out[x] = acc;
    }
    edge(safe_end, width);
}

void
weightedSumRowsAvx2(const f64 *const *rows, const f64 *taps, int ntaps,
                    f64 *out, int width)
{
    int x = 0;
    for (; x + 4 <= width; x += 4) {
        __m256d acc = _mm256_setzero_pd();
        for (int i = 0; i < ntaps; ++i) {
            __m256d s = _mm256_loadu_pd(rows[i] + x);
            __m256d t = _mm256_set1_pd(taps[i]);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(t, s));
        }
        _mm256_storeu_pd(out + x, acc);
    }
    for (; x < width; ++x) {
        f64 acc = 0.0;
        for (int i = 0; i < ntaps; ++i)
            acc += taps[i] * rows[i][x];
        out[x] = acc;
    }
}

void
u8ToF64Avx2(const u8 *in, f64 *out, i64 n)
{
    i64 i = 0;
    for (; i + 8 <= n; i += 8) {
        __m128i bytes = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(in + i));
        __m256i ints = _mm256_cvtepu8_epi32(bytes);
        __m128i lo = _mm256_castsi256_si128(ints);
        __m128i hi = _mm256_extracti128_si256(ints, 1);
        _mm256_storeu_pd(out + i, _mm256_cvtepi32_pd(lo));
        _mm256_storeu_pd(out + i + 4, _mm256_cvtepi32_pd(hi));
    }
    for (; i < n; ++i)
        out[i] = f64(in[i]);
}

void
ssimProductsAvx2(const f64 *a, const f64 *b, f64 *a2, f64 *b2, f64 *ab,
                 i64 n)
{
    i64 i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256d va = _mm256_loadu_pd(a + i);
        __m256d vb = _mm256_loadu_pd(b + i);
        _mm256_storeu_pd(a2 + i, _mm256_mul_pd(va, va));
        _mm256_storeu_pd(b2 + i, _mm256_mul_pd(vb, vb));
        _mm256_storeu_pd(ab + i, _mm256_mul_pd(va, vb));
    }
    for (; i < n; ++i) {
        f64 va = a[i];
        f64 vb = b[i];
        a2[i] = va * va;
        b2[i] = vb * vb;
        ab[i] = va * vb;
    }
}

void
boxDown2U8Avx2(const u8 *r0, const u8 *r1, u8 *out, int out_width)
{
    const __m128i ones = _mm_set1_epi8(1);
    const __m128i two = _mm_set1_epi16(2);
    int x = 0;
    for (; x + 8 <= out_width; x += 8) {
        __m128i v0 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r0 + 2 * x));
        __m128i v1 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(r1 + 2 * x));
        // Horizontal u8 pair sums (max 510, fits i16), then +2 >> 2.
        __m128i p0 = _mm_maddubs_epi16(v0, ones);
        __m128i p1 = _mm_maddubs_epi16(v1, ones);
        __m128i s = _mm_add_epi16(_mm_add_epi16(p0, p1), two);
        s = _mm_srli_epi16(s, 2);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(out + x),
                         _mm_packus_epi16(s, s));
    }
    for (; x < out_width; ++x) {
        u32 acc = u32(r0[2 * x]) + u32(r0[2 * x + 1]) +
                  u32(r1[2 * x]) + u32(r1[2 * x + 1]);
        out[x] = u8((acc + 2) / 4);
    }
}

void
maddI16I32Avx2(i32 *acc, const i16 *src, i32 w, i64 n)
{
    // Integer lanes: sign-extend 8 i16 activations to i32, multiply
    // by the broadcast weight and add — exact i32 arithmetic, so the
    // result matches the scalar reference bit for bit by definition.
    const __m256i vw = _mm256_set1_epi32(w);
    i64 i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i s = _mm256_cvtepi16_epi32(_mm_loadu_si128(
            reinterpret_cast<const __m128i *>(src + i)));
        __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(acc + i));
        a = _mm256_add_epi32(a, _mm256_mullo_epi32(s, vw));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(acc + i), a);
    }
    for (; i < n; ++i)
        acc[i] += w * i32(src[i]);
}

} // namespace

const KernelTable *
avx2Kernels()
{
    static const KernelTable table = {
        axpyAvx2,
        dctForwardAvx2,
        dctInverseAvx2,
        quantizeAvx2,
        dequantizeAvx2,
        sadRectAvx2,
        gaussRowAvx2,
        weightedSumRowsAvx2,
        u8ToF64Avx2,
        ssimProductsAvx2,
        boxDown2U8Avx2,
        maddI16I32Avx2,
        SimdLevel::Avx2,
        "avx2",
    };
    return &table;
}

} // namespace gssr::kern

#else // !(__AVX2__ && __x86_64__)

namespace gssr::kern
{

const KernelTable *
avx2Kernels()
{
    return nullptr;
}

} // namespace gssr::kern

#endif
