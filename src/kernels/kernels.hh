/**
 * @file
 * Runtime-dispatched SIMD micro-kernels for the CPU hot paths: conv2d
 * row accumulation (axpy), the 8x8 DCT/IDCT and quantizer, motion-
 * search SAD, the SSIM Gaussian window passes, and 2x box
 * downsampling.
 *
 * Every kernel has a portable scalar implementation and (on x86-64)
 * an AVX2 implementation selected at runtime via activeSimdLevel().
 * The two paths are BIT-EXACT with each other by construction: each
 * output element accumulates its terms in the same order on both
 * paths, vector lanes always map to independent output elements, and
 * the AVX2 code uses separate multiply+add (never FMA contraction)
 * inside value-affecting float reductions. See DESIGN.md §12 for the
 * full determinism policy.
 *
 * Pointers need not be aligned (kernels use unaligned loads), but
 * buffers that come from AlignedVec storage get aligned fast paths
 * for free. Kernels never read or write outside [ptr, ptr + n).
 */

#ifndef GSSR_KERNELS_KERNELS_HH
#define GSSR_KERNELS_KERNELS_HH

#include "common/simd.hh"
#include "common/types.hh"

namespace gssr::kern
{

/**
 * Dispatch table: one function pointer per kernel. Scalar table is
 * always available; the AVX2 table exists only when the binary was
 * built with the AVX2 translation unit (x86-64).
 */
struct KernelTable
{
    /** dst[i] += w * src[i] for i in [0, n). */
    void (*axpy_f32)(f32 *dst, const f32 *src, f32 w, i64 n);

    /** Forward orthonormal 8x8 DCT-II, rows then columns. */
    void (*dct_forward_8x8)(const f32 *in, f32 *out);

    /** Inverse orthonormal 8x8 DCT (type III). */
    void (*dct_inverse_8x8)(const f32 *in, f32 *out);

    /**
     * out[i] = i32(lround(coef[i] / steps[i])) for i in [0, 64).
     * Exact lround (round-half-away-from-zero) semantics for
     * |coef/step| < 2^23, far above any coefficient this codec
     * produces.
     */
    void (*quantize_8x8)(const f32 *coef, const f32 *steps, i32 *out);

    /** out[i] = f32(levels[i]) * steps[i] for i in [0, 64). */
    void (*dequantize_8x8)(const i32 *levels, const f32 *steps,
                           f32 *out);

    /**
     * Sum of |a - b| over a w x h rect with row pitches. Checks
     * @p early_exit after every row and returns the partial sum once
     * it is reached (callers only compare the result against
     * early_exit, so partial sums are safe).
     */
    i64 (*sad_rect_u8)(const u8 *a, i64 a_pitch, const u8 *b,
                       i64 b_pitch, int w, int h, i64 early_exit);

    /**
     * Horizontal Gaussian tap pass with edge clamping:
     * out[x] = sum_i taps[i] * in[clamp(x + i - radius)].
     * taps has 2*radius+1 entries.
     */
    void (*gauss_row_f64)(const f64 *in, f64 *out, int width,
                          const f64 *taps, int radius);

    /**
     * Vertical tap pass over pre-clamped row pointers:
     * out[x] = sum_i taps[i] * rows[i][x].
     */
    void (*weighted_sum_rows_f64)(const f64 *const *rows,
                                  const f64 *taps, int ntaps, f64 *out,
                                  int width);

    /** out[i] = f64(in[i]). */
    void (*u8_to_f64)(const u8 *in, f64 *out, i64 n);

    /** a2 = a*a, b2 = b*b, ab = a*b, elementwise over n samples. */
    void (*ssim_products_f64)(const f64 *a, const f64 *b, f64 *a2,
                              f64 *b2, f64 *ab, i64 n);

    /**
     * One output row of 2x box downsampling:
     * out[x] = (r0[2x] + r0[2x+1] + r1[2x] + r1[2x+1] + 2) / 4.
     */
    void (*box_down2_u8)(const u8 *r0, const u8 *r1, u8 *out,
                         int out_width);

    /**
     * acc[i] += w * src[i] for i in [0, n) — the int32-accumulator
     * multiply-add of the quantized conv path (nn/quant.hh). @p w is
     * a sign-extended int8 weight and @p src holds int8 or int16
     * activations widened to i16; products fit i32 exactly (|w| <=
     * 127, |src| <= 32767), so scalar and SIMD paths are trivially
     * bit-exact. Callers bound the accumulation depth so the i32
     * accumulators cannot overflow (see QuantizedConv2d).
     */
    void (*madd_i16_i32)(i32 *acc, const i16 *src, i32 w, i64 n);

    /** Level this table implements (for reports/tests). */
    SimdLevel level;
    const char *name;
};

/** The portable reference table (always available). */
const KernelTable &scalarKernels();

/** The AVX2 table, or nullptr when not compiled in / unsupported. */
const KernelTable *avx2Kernels();

/**
 * The active table per activeSimdLevel(). Cached; refreshes itself
 * when forceSimdLevel()/clearForcedSimdLevel() bump the generation.
 */
const KernelTable &kernelTable();

/**
 * Precomputed orthonormal 8-point DCT-II basis shared by the scalar
 * and AVX2 DCT kernels (and by the codec's table construction):
 * basis[k][n] = s(k) * cos(pi * (2n+1) * k / 16), and the transpose
 * basis_t[n][k] = basis[k][n] for broadcast-friendly row passes.
 */
struct Dct8Tables
{
    alignas(kSimdAlignment) f32 basis[8][8];
    alignas(kSimdAlignment) f32 basis_t[8][8];
};

const Dct8Tables &dct8Tables();

// Convenience wrappers through the active table.

inline void
axpy(f32 *dst, const f32 *src, f32 w, i64 n)
{
    kernelTable().axpy_f32(dst, src, w, n);
}

inline void
dctForward8x8(const f32 *in, f32 *out)
{
    kernelTable().dct_forward_8x8(in, out);
}

inline void
dctInverse8x8(const f32 *in, f32 *out)
{
    kernelTable().dct_inverse_8x8(in, out);
}

inline void
quantize8x8(const f32 *coef, const f32 *steps, i32 *out)
{
    kernelTable().quantize_8x8(coef, steps, out);
}

inline void
dequantize8x8(const i32 *levels, const f32 *steps, f32 *out)
{
    kernelTable().dequantize_8x8(levels, steps, out);
}

inline i64
sadRect(const u8 *a, i64 a_pitch, const u8 *b, i64 b_pitch, int w,
        int h, i64 early_exit)
{
    return kernelTable().sad_rect_u8(a, a_pitch, b, b_pitch, w, h,
                                     early_exit);
}

inline void
gaussRow(const f64 *in, f64 *out, int width, const f64 *taps,
         int radius)
{
    kernelTable().gauss_row_f64(in, out, width, taps, radius);
}

inline void
weightedSumRows(const f64 *const *rows, const f64 *taps, int ntaps,
                f64 *out, int width)
{
    kernelTable().weighted_sum_rows_f64(rows, taps, ntaps, out, width);
}

inline void
u8ToF64(const u8 *in, f64 *out, i64 n)
{
    kernelTable().u8_to_f64(in, out, n);
}

inline void
ssimProducts(const f64 *a, const f64 *b, f64 *a2, f64 *b2, f64 *ab,
             i64 n)
{
    kernelTable().ssim_products_f64(a, b, a2, b2, ab, n);
}

inline void
boxDown2U8(const u8 *r0, const u8 *r1, u8 *out, int out_width)
{
    kernelTable().box_down2_u8(r0, r1, out, out_width);
}

inline void
maddI16I32(i32 *acc, const i16 *src, i32 w, i64 n)
{
    kernelTable().madd_i16_i32(acc, src, w, n);
}

} // namespace gssr::kern

#endif // GSSR_KERNELS_KERNELS_HH
