#include "pipeline/client.hh"

#include <algorithm>
#include <cmath>

#include "common/mathutil.hh"
#include "pipeline/degrade.hh"
#include "sr/interpolate.hh"

namespace gssr
{

namespace
{

/** Centre fallback window used when a design expects RoI metadata
 *  but none arrived. */
Rect
centreWindow(Size frame, int edge)
{
    edge = clamp(edge, 1, std::min(frame.width, frame.height));
    return {(frame.width - edge) / 2, (frame.height - edge) / 2, edge,
            edge};
}

/** Scale an LR-frame rect into HR coordinates. */
Rect
scaleRect(const Rect &r, int factor)
{
    return {r.x * factor, r.y * factor, r.width * factor,
            r.height * factor};
}

/** Shrink a rect around its centre to @p scale of each edge (the
 *  tier-1 degraded RoI), floored at 16 px. Stays inside the input. */
Rect
shrinkRect(const Rect &r, f64 scale)
{
    int w = std::max(16, int(std::lround(f64(r.width) * scale)));
    int h = std::max(16, int(std::lround(f64(r.height) * scale)));
    w = std::min(w, r.width);
    h = std::min(h, r.height);
    return {r.x + (r.width - w) / 2, r.y + (r.height - h) / 2, w, h};
}

/**
 * The client-construction half of the ClientConfig contract: a
 * pixel-computing client needs a trained quality net (sr_net docs),
 * checked *before* the DnnUpscaler member is built so a
 * misconfigured session fails with this message instead of the
 * upscaler's internal "needs a net" panic. Accounting-only clients
 * reuse a provided net or fabricate an untrained one — the quality
 * path never runs, only the EDSR cost model is consulted.
 */
std::shared_ptr<const CompactSrNet>
qualityNetFor(const ClientConfig &config)
{
    GSSR_ASSERT(!config.compute_pixels || config.sr_net != nullptr,
                "ClientConfig: compute_pixels requires a trained "
                "sr_net (set sr_net or disable compute_pixels)");
    if (config.sr_net)
        return config.sr_net;
    return std::make_shared<const CompactSrNet>();
}

/** Scale a decoded MV field to HR resolution (NEMO-style reuse). */
MvField
scaleMvField(const MvField &mv, int factor)
{
    MvField out = mv;
    out.block_size = mv.block_size * factor;
    for (auto &v : out.vectors) {
        v.dx = i16(v.dx * factor);
        v.dy = i16(v.dy * factor);
    }
    return out;
}

/** Bilinear-upscale a signed residual image to @p hr luma size. */
ResidualImage
upscaleResidual(const ResidualImage &residual, Size hr,
                InterpKernel kernel)
{
    ResidualImage out;
    out.y = resizePlane(residual.y, hr, kernel);
    out.u = resizePlane(residual.u, {hr.width / 2, hr.height / 2},
                        kernel);
    out.v = resizePlane(residual.v, {hr.width / 2, hr.height / 2},
                        kernel);
    return out;
}

/** prediction + residual, clamped, for all three planes. */
Yuv420Image
applyResidual(const Yuv420Image &prediction,
              const ResidualImage &residual)
{
    Yuv420Image out(prediction.width(), prediction.height());
    auto apply = [](const PlaneU8 &pred, const PlaneF32 &res,
                    PlaneU8 &dst) {
        for (i64 i = 0; i < pred.sampleCount(); ++i) {
            dst.data()[size_t(i)] =
                toPixel(f64(pred.data()[size_t(i)]) +
                        f64(res.data()[size_t(i)]));
        }
    };
    apply(prediction.y, residual.y, out.y);
    apply(prediction.u, residual.u, out.u);
    apply(prediction.v, residual.v, out.v);
    return out;
}

/**
 * CPU (NEON) op count of NEMO's non-reference reconstruction:
 * bilinear upscaling of the residuals and motion vectors (2-tap
 * separable filter, 8 ops per luma pixel; the quarter-size chroma
 * planes vectorize into the same passes) plus the per-pixel motion
 * compensation fetch/add from the cached HR frame. Calibrated so
 * software-decode + reconstruction lands at ~1.6x our RoI stage
 * (Fig. 10a non-reference speedup).
 */
i64
nemoReconOps(Size hr)
{
    i64 luma = hr.area();
    i64 residual_upscale = luma * 8;
    i64 motion_comp_and_add = luma;
    return residual_upscale + motion_comp_and_add;
}

} // namespace

StreamingClient::StreamingClient(const ClientConfig &config)
    : config_(config),
      dnn_(qualityNetFor(config), config.scale_factor)
{
}

void
StreamingClient::addDisplayStage(FrameTrace &trace) const
{
    const DisplayModel &display = config_.device.display;
    StageScope(trace, Stage::Display, Resource::ClientDisplay)
        .latencyMs(display.latencyMs())
        .energyMj(display.energyMjPerFrame(1000.0 / 60.0));
}

GssrClient::GssrClient(const ClientConfig &config)
    : StreamingClient(config)
{
}

HardwareDecoder &
GssrClient::decoder()
{
    if (!decoder_)
        decoder_.emplace(config_.codec, config_.lr_size);
    return *decoder_;
}

ClientFrameResult
GssrClient::processFrame(const EncodedFrame &frame,
                         const std::optional<Rect> &roi,
                         const FrameConditions &cond)
{
    const DeviceProfile &dev = config_.device;
    ClientFrameResult result;
    FrameTrace &trace = result.trace;
    trace.frame_index = frame.index;
    trace.type = frame.type;
    trace.encoded_bytes = frame.sizeBytes();

    const int tier =
        clamp(cond.tier, 0, DegradationLadder::kTierCount - 1);
    const Precision prec = cond.sr_precision;

    // Hardware decode (codec-agnostic, pixels only). Runs at every
    // tier — the decoder must stay reference-consistent even while
    // the ladder holds frames — inflated by the thermal/DVFS scale
    // and any scripted memory-pressure stall.
    f64 decode_ms = dev.hw_decoder.latencyMs(config_.lr_size.area()) *
                        cond.decoder_scale +
                    cond.decode_stall_ms;
    StageScope(trace, Stage::Decode, Resource::ClientHwDecoder)
        .latencyMs(decode_ms)
        .energyMj(dev.hw_decoder.energyMj(decode_ms));

    ColorImage lr;
    if (config_.compute_pixels)
        lr = decoder().decode(frame);

    if (tier >= DegradationLadder::kTierHold) {
        // Frame hold: decode only. The session engine substitutes
        // the held output and charges the hold blit and display
        // stages itself.
        return result;
    }

    Rect r = roi ? *roi : centreWindow(config_.lr_size, 300);
    if (cond.roi_shrink < 1.0)
        r = shrinkRect(r, cond.roi_shrink);
    Rect hr_roi = scaleRect(r, config_.scale_factor);

    i64 gpu_ops = resizeOpCount(hrSize(), InterpKernel::Bilinear);
    f64 gpu_ms = dev.gpu.latencyMs(gpu_ops) * cond.gpu_scale;

    // An NPU invocation failure falls back to the GPU bilinear
    // output for this frame: the watchdog timeout is charged, the
    // RoI is not super-resolved and there is nothing to merge.
    const bool use_npu =
        tier < DegradationLadder::kTierGpuOnly && !cond.npu_faulted;

    if (tier >= DegradationLadder::kTierGpuOnly) {
        // GPU bilinear only: the NPU stays idle and cools.
        StageScope(trace, Stage::Upscale, Resource::ClientGpu)
            .latencyMs(gpu_ms)
            .energyMj(dev.gpu.energyMj(gpu_ms));
    } else {
        // Parallel upscaling (Fig. 9): the RoI goes to the NPU for
        // DNN SR while the GPU bilinear-upscales the rest; the stage
        // latency is the max of the two, the energy is the sum. The
        // invocation is charged at the frame's SR precision; at Fp32
        // the cost reduces to the unquantized model bit for bit.
        NpuModel::InvocationCost npu_cost = dnn_.npuCost(
            dev.npu, {r.width, r.height}, config_.scale_factor, prec);
        f64 npu_ms = cond.npu_faulted
                         ? cond.npu_timeout_ms
                         : npu_cost.latency_ms * cond.npu_scale;
        StageScope(trace, Stage::Upscale, Resource::ClientNpu)
            .latencyMs(std::max(npu_ms, gpu_ms))
            .energyMj(npu_ms * npu_cost.power_w)
            .energyMj(dev.gpu.energyMj(gpu_ms));
    }

    if (use_npu) {
        // Merge the upscaled RoI into the HR framebuffer (GPU blit).
        f64 merge_ms =
            dev.gpu.latencyMs(hr_roi.area()) * cond.gpu_scale;
        StageScope(trace, Stage::Merge, Resource::ClientGpu)
            .latencyMs(merge_ms)
            .energyMj(dev.gpu.energyMj(merge_ms));
    }

    if (config_.compute_pixels) {
        ColorImage hr =
            resizeImage(lr, hrSize(), InterpKernel::Bilinear);
        if (use_npu) {
            ColorImage roi_hr = dnn_.upscaleWithPrecision(
                lr.crop(r), config_.scale_factor, prec);
            hr.blit(roi_hr, hr_roi.x, hr_roi.y);
        }
        result.upscaled = std::move(hr);
    }

    addDisplayStage(trace);
    return result;
}

NemoClient::NemoClient(const ClientConfig &config)
    : StreamingClient(config)
{
}

SoftwareDecoder &
NemoClient::decoder()
{
    if (!decoder_)
        decoder_.emplace(config_.codec, config_.lr_size);
    return *decoder_;
}

ClientFrameResult
NemoClient::processFrame(const EncodedFrame &frame,
                         const std::optional<Rect> & /* roi unused */,
                         const FrameConditions &cond)
{
    const DeviceProfile &dev = config_.device;
    ClientFrameResult result;
    FrameTrace &trace = result.trace;
    trace.frame_index = frame.index;
    trace.type = frame.type;
    trace.encoded_bytes = frame.sizeBytes();

    // Software decode on the CPU: NEMO needs the decoder-internal
    // motion vectors and residuals, which rules out the hardware
    // decoder (Sec. V-A). The CPU throttle scale applies, as do
    // memory-pressure stalls.
    f64 decode_ms = dev.sw_decoder.latencyMs(config_.lr_size.area()) *
                        cond.cpu_scale +
                    cond.decode_stall_ms;
    StageScope(trace, Stage::Decode, Resource::ClientCpu)
        .latencyMs(decode_ms)
        .energyMj(dev.sw_decoder.energyMj(decode_ms));

    DecoderInternals internals;
    Yuv420Image lr_yuv;
    if (config_.compute_pixels)
        lr_yuv = decoder().decode(frame, internals);

    if (frame.type == FrameType::Reference) {
        // Full-frame DNN SR on the NPU. NEMO has no fallback path
        // for a failed invocation (its non-reference frames *need*
        // the upscaled anchor), so a fault costs the watchdog
        // timeout plus the retried invocation.
        i64 macs = dnn_.macs(config_.lr_size, config_.scale_factor);
        f64 npu_ms =
            dev.npu.latencyMs(macs, config_.lr_size.area()) *
                cond.npu_scale +
            (cond.npu_faulted ? cond.npu_timeout_ms : 0.0);
        StageScope(trace, Stage::Upscale, Resource::ClientNpu)
            .latencyMs(npu_ms)
            .energyMj(dev.npu.energyMj(npu_ms));

        if (config_.compute_pixels) {
            ColorImage hr = dnn_.upscale(yuv420ToRgb(lr_yuv),
                                         config_.scale_factor);
            hr_previous_ = rgbToYuv420(hr);
            result.upscaled = std::move(hr);
        }
    } else {
        // CPU bilinear upscaling of MVs + residuals, then HR
        // reconstruction from the cached upscaled frame.
        f64 cpu_ms = dev.cpu.latencyMs(nemoReconOps(hrSize())) *
                     cond.cpu_scale;
        StageScope(trace, Stage::Upscale, Resource::ClientCpu)
            .latencyMs(cpu_ms)
            .energyMj(dev.cpu.energyMj(cpu_ms));

        if (config_.compute_pixels) {
            GSSR_ASSERT(!hr_previous_.empty(),
                        "non-reference frame before a reference");
            MvField hr_mv =
                scaleMvField(internals.mv, config_.scale_factor);
            Yuv420Image prediction =
                motionCompensate(hr_previous_, hr_mv);
            ResidualImage hr_res = upscaleResidual(
                internals.residual, hrSize(), InterpKernel::Bilinear);
            // Residuals are quantized at LR scale; upscaling does not
            // change their magnitude.
            Yuv420Image hr = applyResidual(prediction, hr_res);
            hr_previous_ = hr;
            result.upscaled = yuv420ToRgb(hr);
        }
    }

    addDisplayStage(trace);
    return result;
}

SrDecoderClient::SrDecoderClient(const ClientConfig &config)
    : StreamingClient(config)
{
}

FrameDecoder &
SrDecoderClient::decoder()
{
    if (!decoder_)
        decoder_.emplace(config_.codec, config_.lr_size);
    return *decoder_;
}

ClientFrameResult
SrDecoderClient::processFrame(const EncodedFrame &frame,
                              const std::optional<Rect> &roi,
                              const FrameConditions &cond)
{
    const DeviceProfile &dev = config_.device;
    ClientFrameResult result;
    FrameTrace &trace = result.trace;
    trace.frame_index = frame.index;
    trace.type = frame.type;
    trace.encoded_bytes = frame.sizeBytes();

    Rect r = roi ? *roi : centreWindow(config_.lr_size, 300);
    Rect hr_roi = scaleRect(r, config_.scale_factor);

    if (frame.type == FrameType::Reference) {
        // Reference frames take this work's path (Fig. 15 step-1):
        // hardware decode, RoI SR on the NPU + GPU bilinear, merge —
        // and the upscaled frame is cached in the decoder buffer
        // (step-2).
        f64 decode_ms =
            dev.hw_decoder.latencyMs(config_.lr_size.area()) *
                cond.decoder_scale +
            cond.decode_stall_ms;
        StageScope(trace, Stage::Decode, Resource::ClientHwDecoder)
            .latencyMs(decode_ms)
            .energyMj(dev.hw_decoder.energyMj(decode_ms));

        // A failed NPU invocation is retried (the cached-reference
        // scheme needs the upscaled anchor): timeout + invocation.
        // Charged at the frame's SR precision, like the GssrClient.
        NpuModel::InvocationCost npu_cost =
            dnn_.npuCost(dev.npu, {r.width, r.height},
                         config_.scale_factor, cond.sr_precision);
        f64 npu_ms = npu_cost.latency_ms * cond.npu_scale +
                     (cond.npu_faulted ? cond.npu_timeout_ms : 0.0);
        i64 gpu_ops = resizeOpCount(hrSize(), InterpKernel::Bilinear);
        f64 gpu_ms = dev.gpu.latencyMs(gpu_ops) * cond.gpu_scale;
        StageScope(trace, Stage::Upscale, Resource::ClientNpu)
            .latencyMs(std::max(npu_ms, gpu_ms))
            .energyMj(npu_ms * npu_cost.power_w)
            .energyMj(dev.gpu.energyMj(gpu_ms));
        f64 merge_ms =
            dev.gpu.latencyMs(hr_roi.area()) * cond.gpu_scale;
        StageScope(trace, Stage::Merge, Resource::ClientGpu)
            .latencyMs(merge_ms)
            .energyMj(dev.gpu.energyMj(merge_ms));

        if (config_.compute_pixels) {
            DecoderInternals internals;
            Yuv420Image lr_yuv = decoder().decode(frame, &internals);
            ColorImage lr = yuv420ToRgb(lr_yuv);
            ColorImage hr =
                resizeImage(lr, hrSize(), InterpKernel::Bilinear);
            ColorImage roi_hr = dnn_.upscaleWithPrecision(
                lr.crop(r), config_.scale_factor, cond.sr_precision);
            hr.blit(roi_hr, hr_roi.x, hr_roi.y);
            hr_cached_ = rgbToYuv420(hr);
            hr_roi_ = hr_roi;
            result.upscaled = std::move(hr);
        }
    } else {
        // Non-reference frames bypass the upscale engine (Fig. 15
        // step-6): the SR-integrated decoder reconstructs the HR
        // frame from the cached reference using RoI-guided
        // interpolation of the MVs and residuals (bicubic inside the
        // RoI, bilinear outside), entirely in extended decoder
        // hardware.
        f64 decode_ms = dev.hw_decoder.latencyMs(
                            config_.lr_size.area() +
                            hrSize().area()) *
                            cond.decoder_scale +
                        cond.decode_stall_ms;
        StageScope(trace, Stage::Decode, Resource::ClientHwDecoder)
            .latencyMs(decode_ms)
            .energyMj(dev.hw_decoder.energyMj(decode_ms));

        if (config_.compute_pixels) {
            GSSR_ASSERT(!hr_cached_.empty(),
                        "non-reference frame before a reference");
            DecoderInternals internals;
            decoder().decode(frame, &internals);
            MvField hr_mv =
                scaleMvField(internals.mv, config_.scale_factor);
            Yuv420Image prediction =
                motionCompensate(hr_cached_, hr_mv);
            ResidualImage hr_res = upscaleResidual(
                internals.residual, hrSize(), InterpKernel::Bilinear);
            // RoI-guided hint: redo the RoI's luma residual with the
            // quality-preserving bicubic kernel (Sec. VI).
            PlaneF32 roi_res = resizePlane(
                internals.residual.y.crop(r),
                {hr_roi.width, hr_roi.height}, InterpKernel::Bicubic);
            hr_res.y.blit(roi_res, hr_roi.x, hr_roi.y);
            Yuv420Image hr = applyResidual(prediction, hr_res);
            hr_cached_ = hr;
            hr_roi_ = hr_roi;
            result.upscaled = yuv420ToRgb(hr);
        }
    }

    addDisplayStage(trace);
    return result;
}

} // namespace gssr
