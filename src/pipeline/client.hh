/**
 * @file
 * Client-side upscaling pipelines (paper Fig. 6 Phase-2). Three
 * designs share the StreamingClient interface:
 *
 *  - GssrClient       — this work: hardware decode, then parallel
 *                       NPU RoI SR + GPU bilinear for the rest,
 *                       merged into the HR framebuffer (Fig. 9).
 *  - NemoClient       — the SOTA baseline (NEMO): software decode
 *                       (it needs codec internals), full-frame DNN
 *                       SR on reference frames, CPU bilinear
 *                       MV/residual reconstruction for the rest.
 *  - SrDecoderClient  — the paper's Sec. VI future-work prototype:
 *                       an RoI-guided SR-integrated decoder that
 *                       caches the upscaled reference frame and
 *                       reconstructs non-reference frames in the
 *                       (extended) decoder hardware, bypassing the
 *                       NPU.
 *
 * All pixel computation is real; all latency/energy numbers come
 * from the device models. `compute_pixels = false` turns a client
 * into a pure accounting model for latency/energy-only benches.
 */

#ifndef GSSR_PIPELINE_CLIENT_HH
#define GSSR_PIPELINE_CLIENT_HH

#include <memory>
#include <optional>
#include <string>

#include "codec/codec.hh"
#include "device/profiles.hh"
#include "device/stress.hh"
#include "pipeline/trace.hh"
#include "sr/upscaler.hh"

namespace gssr
{

/** Configuration shared by all client designs. */
struct ClientConfig
{
    DeviceProfile device = DeviceProfile::galaxyTabS8();

    /** Received (low) resolution; HR = lr * scale. */
    Size lr_size{1280, 720};
    int scale_factor = 2;

    /** Must match the server codec configuration. */
    CodecConfig codec;

    /**
     * When false, skip the actual pixel work (decode/SR/merge) and
     * only produce stage accounting — used by the latency/energy
     * benches, which do not read pixels.
     */
    bool compute_pixels = true;

    /** Trained quality net (required when compute_pixels). */
    std::shared_ptr<const CompactSrNet> sr_net;

    /**
     * SR inference precision (NAWQ-SR direction, DESIGN.md §14):
     * Fp32 (default — bit-identical to the unquantized pipeline),
     * Int16/Int8 (uniform quantized schedules) or HybridInt8
     * (sensitivity-ranked mix). Honored by the NPU-driven designs
     * (GssrClient, SrDecoderClient); the NEMO baseline has no
     * quantized deployment and always runs Fp32. The degradation
     * ladder can override per frame via FrameConditions.
     */
    Precision sr_precision = Precision::Fp32;
};

/** Output of processing one frame at the client. */
struct ClientFrameResult
{
    /** Upscaled HR frame (empty in accounting-only mode). */
    ColorImage upscaled;

    /** Client stage records for this frame. */
    FrameTrace trace;
};

/** Abstract client design. */
class StreamingClient
{
  public:
    explicit StreamingClient(const ClientConfig &config);
    virtual ~StreamingClient() = default;

    /** Design name for tables ("gamestreamsr", "nemo", ...). */
    virtual std::string name() const = 0;

    /**
     * Process one received frame at the nominal operating point.
     * @param roi RoI metadata from the server (when present).
     */
    ClientFrameResult
    processFrame(const EncodedFrame &frame,
                 const std::optional<Rect> &roi)
    {
        FrameConditions cond;
        cond.sr_precision = config_.sr_precision;
        return processFrame(frame, roi, cond);
    }

    /**
     * Process one received frame under dynamic device conditions
     * (thermal throttle scales, transient faults, degradation-ladder
     * tier — see device/stress.hh). Default conditions reproduce the
     * nominal path bit for bit. Tier semantics are defined for the
     * GssrClient hybrid pipeline; the baseline designs honor the
     * throttle scales and faults and ignore the tier.
     */
    virtual ClientFrameResult
    processFrame(const EncodedFrame &frame,
                 const std::optional<Rect> &roi,
                 const FrameConditions &cond) = 0;

    /** High-resolution output size. */
    Size
    hrSize() const
    {
        return {config_.lr_size.width * config_.scale_factor,
                config_.lr_size.height * config_.scale_factor};
    }

    const ClientConfig &config() const { return config_; }

  protected:
    /** Append the display stage (shared by every design). */
    void addDisplayStage(FrameTrace &trace) const;

    ClientConfig config_;
    DnnUpscaler dnn_;
};

/** This work: RoI-assisted hybrid NPU/GPU upscaling. */
class GssrClient : public StreamingClient
{
  public:
    explicit GssrClient(const ClientConfig &config);

    std::string name() const override { return "gamestreamsr"; }

    using StreamingClient::processFrame;
    ClientFrameResult processFrame(const EncodedFrame &frame,
                                   const std::optional<Rect> &roi,
                                   const FrameConditions &cond)
        override;

  private:
    /** The decoder's reference buffers are sized for the full LR
     *  frame, so it is built on first pixel use — accounting-only
     *  clients (compute_pixels = false) never touch pixels, and a
     *  fleet of thousands of them must not hold decoder state. */
    HardwareDecoder &decoder();

    std::optional<HardwareDecoder> decoder_;
};

/** NEMO baseline (Yeo et al., MobiCom 2020) ported to game streams. */
class NemoClient : public StreamingClient
{
  public:
    explicit NemoClient(const ClientConfig &config);

    std::string name() const override { return "nemo"; }

    using StreamingClient::processFrame;
    ClientFrameResult processFrame(const EncodedFrame &frame,
                                   const std::optional<Rect> &roi,
                                   const FrameConditions &cond)
        override;

  private:
    /** Built on first pixel use (see GssrClient::decoder). */
    SoftwareDecoder &decoder();

    std::optional<SoftwareDecoder> decoder_;
    Yuv420Image hr_previous_; ///< reconstructed HR anchor state
};

/** Sec. VI prototype: RoI-guided SR-integrated decoder. */
class SrDecoderClient : public StreamingClient
{
  public:
    explicit SrDecoderClient(const ClientConfig &config);

    std::string name() const override { return "sr-decoder"; }

    using StreamingClient::processFrame;
    ClientFrameResult processFrame(const EncodedFrame &frame,
                                   const std::optional<Rect> &roi,
                                   const FrameConditions &cond)
        override;

  private:
    /** Built on first pixel use (see GssrClient::decoder); models
     *  the SR-integrated HW decoder. */
    FrameDecoder &decoder();

    std::optional<FrameDecoder> decoder_;
    Yuv420Image hr_cached_; ///< decoder-buffer cached upscaled ref
    Rect hr_roi_;           ///< RoI (HR coordinates) of the cached ref
};

} // namespace gssr

#endif // GSSR_PIPELINE_CLIENT_HH
