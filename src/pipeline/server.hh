/**
 * @file
 * The cloud-gaming server pipeline (paper Fig. 6 Phase-1): on each
 * user input, advance the game, render the low-resolution frame with
 * its depth buffer, run depth-guided RoI detection, encode, and hand
 * the (encoded frame, RoI coordinates) pair to the network.
 */

#ifndef GSSR_PIPELINE_SERVER_HH
#define GSSR_PIPELINE_SERVER_HH

#include <optional>

#include "codec/codec.hh"
#include "codec/rate_control.hh"
#include "device/profiles.hh"
#include "pipeline/trace.hh"
#include "qoe/actions.hh"
#include "render/games.hh"
#include "render/rasterizer.hh"
#include "roi/roi_detector.hh"

namespace gssr
{

/** Server-side configuration. */
struct ServerConfig
{
    /** Streamed (low) resolution. */
    Size lr_size{1280, 720};

    /** Client SR scale factor (target = lr * scale). */
    int scale_factor = 2;

    /** Codec configuration (GOP size, qp). */
    CodecConfig codec;

    /**
     * Depth-guided RoI detection on (GameStreamSR) or off (the NEMO
     * baseline server streams without RoI metadata).
     */
    bool enable_roi = true;

    /** Target frame rate driving the input/tick cadence. */
    f64 fps = 60.0;

    /**
     * Encoder rate-control target (Mbit/s); 0 disables rate control
     * and the codec qp stays fixed.
     */
    f64 target_bitrate_mbps = 0.0;

    /**
     * Supersampling factor of the server render: the LR frame is
     * rasterized at supersample x resolution and box-downsampled
     * (i.e. SSAA — game engines stream anti-aliased frames; see
     * frame/downsample.hh). When supersample == scale_factor the
     * pre-downsample render doubles as the native high-resolution
     * ground truth for quality measurement.
     */
    int supersample = 2;

    /**
     * Keep the pre-downsample (high-resolution) render in the frame
     * output for quality measurement. Requires
     * supersample == scale_factor.
     */
    bool keep_hr_render = false;

    /**
     * Accounting-only fast path: when non-zero, the server actually
     * rasterizes and encodes at this reduced resolution (same aspect
     * ratio) while *charging* all model latencies for lr_size and
     * scaling the RoI coordinates and compressed byte counts up to
     * lr_size. Only valid when the client runs with
     * compute_pixels = false (the proxy pixels are never displayed).
     */
    Size proxy_size{0, 0};
};

/**
 * Stream byte count a proxy-mode payload stands in for. Compressed
 * size grows *sublinearly* with pixel count (larger frames have more
 * inter-pixel redundancy per block), so a linear area scaling
 * overestimates the stream bitrate badly — e.g. a 256x144 proxy
 * scaled by its 25x area ratio reports ~120 Mbit/s for a stream this
 * codec encodes at ~60 Mbit/s at native 720p. The exponent is
 * calibrated against native encodes of this repo's game content: the
 * implied exponent is 0.77-0.79 across proxy sizes from 256x144 to
 * 512x288, so bytes scale as (area ratio)^0.78.
 */
size_t proxyStreamBytes(size_t payload_bytes, f64 area_ratio);

/** One produced frame, ready for transmission. */
struct ServerFrameOutput
{
    EncodedFrame encoded;

    /** RoI on the LR frame (unset when RoI detection is off). */
    std::optional<Rect> roi;

    /** False when the RoI came from the centre fallback. */
    bool depth_guided = false;

    /** The rendered LR frame (color + depth), pre-encode. */
    Frame rendered;

    /**
     * Native high-resolution render (the quality ground truth);
     * only kept when ServerConfig::keep_hr_render is set.
     */
    ColorImage hr_render;

    /** Simulation time of this frame (seconds). */
    f64 time_s = 0.0;

    /** Server + RoI stage records (client appends its own). */
    FrameTrace trace;
};

/** Streaming server bound to one game world. */
class GameStreamServer
{
  public:
    /**
     * @param world game world to stream (borrowed).
     * @param roi_window the RoI window size the client negotiated at
     *        session start (Fig. 6 step-1); ignored when RoI is off.
     */
    GameStreamServer(const GameWorld &world, const ServerConfig &config,
                     const ServerProfile &profile, Size roi_window);

    /** Produce the next frame of the stream. */
    ServerFrameOutput nextFrame();

    /**
     * Respond to a client NACK: the next encoded frame is forced to
     * an intra (Reference) frame, re-seeding the client's decoder
     * state. Idempotent until that frame is produced.
     */
    void requestIntraRefresh();

    /** True when an intra refresh is queued for the next frame. */
    bool intraRefreshPending() const { return intra_refresh_pending_; }

    /** Intra refreshes served so far. */
    i64 intraRefreshCount() const { return intra_refreshes_; }

    /**
     * Apply the control plane's knob state to the server-side knobs.
     * Today that is the encoder rate target (resolution and frame
     * rate are admission-time knobs, fixed once the stream starts);
     * ignored for fixed-qp servers (knobs.target_mbps == 0). This is
     * the one entry point the session's knob writer calls.
     */
    void applyKnobs(const qoe::KnobState &knobs);

    /**
     * Retarget the encoder's rate controller. Requires a
     * rate-controlled server (target_bitrate_mbps > 0).
     * @deprecated Thin legacy shim — knob writes go through
     * applyKnobs(); only the legacy independent-loop path and old
     * tests call this directly.
     */
    void setTargetBitrate(f64 mbps);

    /** True when the encoder chases a bitrate target. */
    bool rateControlled() const { return rate_controller_.has_value(); }

    /** Frames produced so far. */
    i64 frameCount() const { return frame_index_; }

    /**
     * Resume an interrupted stream at @p frame_index (live session
     * migration onto this server): scene time, trace frame numbering
     * and the encoder's stream position continue where the source
     * server stopped, and the encoder's GOP restarts at an intra.
     */
    void seekToFrame(i64 frame_index);

    const ServerConfig &config() const { return config_; }
    const RoiDetector &roiDetector() const { return roi_detector_; }

  private:
    const GameWorld &world_;
    ServerConfig config_;
    ServerProfile profile_;
    Size roi_window_;
    RoiDetector roi_detector_;
    GopEncoder encoder_;
    std::optional<RateController> rate_controller_;
    i64 frame_index_ = 0;
    bool intra_refresh_pending_ = false;
    i64 intra_refreshes_ = 0;
};

} // namespace gssr

#endif // GSSR_PIPELINE_SERVER_HH
