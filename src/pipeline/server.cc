#include "pipeline/server.hh"

#include <cmath>

#include "common/mathutil.hh"
#include "frame/downsample.hh"

namespace gssr
{

size_t
proxyStreamBytes(size_t payload_bytes, f64 area_ratio)
{
    GSSR_ASSERT(area_ratio >= 1.0, "proxy must not exceed the stream");
    return size_t(f64(payload_bytes) * std::pow(area_ratio, 0.78));
}

GameStreamServer::GameStreamServer(const GameWorld &world,
                                   const ServerConfig &config,
                                   const ServerProfile &profile,
                                   Size roi_window)
    : world_(world), config_(config), profile_(profile),
      roi_window_(roi_window), roi_detector_(profile),
      encoder_(config.codec, config.proxy_size.area() > 0
                                 ? config.proxy_size
                                 : config.lr_size)
{
    GSSR_ASSERT(config_.fps > 0.0, "server fps must be positive");
    GSSR_ASSERT(config_.scale_factor >= 2, "scale factor must be >= 2");
    if (config_.proxy_size.area() > 0) {
        GSSR_ASSERT(config_.proxy_size.width <= config_.lr_size.width &&
                        config_.proxy_size.height <=
                            config_.lr_size.height,
                    "proxy size must not exceed the stream size");
    }
    if (config_.target_bitrate_mbps > 0.0) {
        RateControlConfig rc;
        rc.target_mbps = config_.target_bitrate_mbps;
        rc.fps = config_.fps;
        rate_controller_.emplace(rc, config_.codec.qp);
    }
}

void
GameStreamServer::requestIntraRefresh()
{
    if (encoder_.nextFrameType() == FrameType::Reference)
        return; // the next frame is already an intra
    encoder_.forceIntraRefresh();
    intra_refresh_pending_ = true;
    intra_refreshes_ += 1;
}

void
GameStreamServer::seekToFrame(i64 frame_index)
{
    GSSR_ASSERT(frame_index >= 0, "frame index must be >= 0");
    frame_index_ = frame_index;
    encoder_.seekTo(frame_index);
}

void
GameStreamServer::applyKnobs(const qoe::KnobState &knobs)
{
    if (rate_controller_.has_value() && knobs.target_mbps > 0.0)
        rate_controller_->setTargetMbps(knobs.target_mbps);
}

void
GameStreamServer::setTargetBitrate(f64 mbps)
{
    GSSR_ASSERT(rate_controller_.has_value(),
                "setTargetBitrate needs a rate-controlled server");
    rate_controller_->setTargetMbps(mbps);
}

ServerFrameOutput
GameStreamServer::nextFrame()
{
    ServerFrameOutput out;
    out.time_s = f64(frame_index_) / config_.fps;
    out.trace.frame_index = frame_index_;

    // Step 1-2 (Fig. 1a): input capture + game logic tick.
    StageScope(out.trace, Stage::InputCapture, Resource::ServerCpu)
        .latencyMs(profile_.input_capture_ms);
    StageScope(out.trace, Stage::GameLogic, Resource::ServerCpu)
        .latencyMs(profile_.game_logic_ms);

    // Render the LR frame with supersampling anti-aliasing; the
    // depth buffer falls out of the rasterizer's z-buffer for free
    // (Sec. III-B). In proxy mode we rasterize at the reduced size
    // but keep charging lr_size model latencies.
    const bool proxy = config_.proxy_size.area() > 0;
    const Size render_size =
        proxy ? config_.proxy_size : config_.lr_size;
    const int ss = std::max(1, config_.supersample);
    Scene scene = world_.sceneAt(out.time_s);
    RenderOutput rendered = renderScene(
        scene, {render_size.width * ss, render_size.height * ss});
    out.rendered.color = boxDownsample(rendered.color, ss);
    out.rendered.depth = boxDownsample(rendered.depth, ss);
    if (config_.keep_hr_render) {
        GSSR_ASSERT(!proxy && ss == config_.scale_factor,
                    "keep_hr_render requires supersample == scale "
                    "and no proxy");
        out.hr_render = std::move(rendered.color);
    }
    out.rendered.index = frame_index_;
    out.rendered.input_time_ms = out.time_s * 1e3;
    StageScope(out.trace, Stage::Render, Resource::ServerGpu)
        .latencyMs(profile_.renderLatencyMs(config_.lr_size.area()));

    // Depth-guided RoI detection on the server GPU (Fig. 6 step-3).
    if (config_.enable_roi) {
        f64 scale_x = f64(config_.lr_size.width) / render_size.width;
        f64 scale_y = f64(config_.lr_size.height) / render_size.height;
        Size window = roi_window_;
        if (proxy) {
            window = {std::max(1, int(window.width / scale_x)),
                      std::max(1, int(window.height / scale_y))};
        }
        RoiDetection detection =
            roi_detector_.detect(out.rendered.depth, window);
        Rect roi = detection.roi;
        if (proxy) {
            roi = {int(roi.x * scale_x), int(roi.y * scale_y),
                   roi_window_.width, roi_window_.height};
            roi.x = clamp(roi.x, 0,
                          config_.lr_size.width - roi.width);
            roi.y = clamp(roi.y, 0,
                          config_.lr_size.height - roi.height);
        }
        out.roi = roi;
        out.depth_guided = detection.depth_guided;
        StageScope(out.trace, Stage::RoiDetect, Resource::ServerGpu)
            .latencyMs(detection.server_gpu_ms);
    }

    // Encode (server hardware encoder). In proxy mode the byte count
    // is scaled up to what an lr_size encode of the same content
    // produces (see proxyStreamBytes).
    if (rate_controller_) {
        encoder_.setQp(rate_controller_->qpForNextFrame(
            encoder_.nextFrameType()));
    }
    out.encoded = encoder_.encode(out.rendered.color);
    out.rendered.type = out.encoded.type;
    out.trace.type = out.encoded.type;
    size_t stream_bytes = out.encoded.sizeBytes();
    if (proxy) {
        stream_bytes = proxyStreamBytes(
            stream_bytes, f64(config_.lr_size.area()) /
                              f64(render_size.area()));
    }
    out.trace.encoded_bytes = stream_bytes;
    if (rate_controller_)
        rate_controller_->observeBytes(stream_bytes);
    StageScope(out.trace, Stage::Encode, Resource::ServerGpu)
        .latencyMs(profile_.encodeLatencyMs(config_.lr_size.area()));

    if (intra_refresh_pending_ &&
        out.encoded.type == FrameType::Reference) {
        out.trace.addEvent(RecoveryEvent::IntraRefresh);
        intra_refresh_pending_ = false;
    }

    frame_index_ += 1;
    return out;
}

} // namespace gssr
