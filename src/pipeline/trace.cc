#include "pipeline/trace.hh"

namespace gssr
{

const char *
stageName(Stage stage)
{
    switch (stage) {
      case Stage::InputCapture:
        return "input";
      case Stage::GameLogic:
        return "game-logic";
      case Stage::Render:
        return "render";
      case Stage::RoiDetect:
        return "roi-detect";
      case Stage::Encode:
        return "encode";
      case Stage::ServerQueue:
        return "server-queue";
      case Stage::Network:
        return "network";
      case Stage::Decode:
        return "decode";
      case Stage::Upscale:
        return "upscale";
      case Stage::Merge:
        return "merge";
      case Stage::Conceal:
        return "conceal";
      case Stage::Display:
        return "display";
    }
    return "?";
}

const char *
recoveryEventName(RecoveryEvent event)
{
    switch (event) {
      case RecoveryEvent::FrameDropped:
        return "frame-dropped";
      case RecoveryEvent::DeltaDiscarded:
        return "delta-discarded";
      case RecoveryEvent::Concealed:
        return "concealed";
      case RecoveryEvent::NackSent:
        return "nack-sent";
      case RecoveryEvent::IntraRefresh:
        return "intra-refresh";
      case RecoveryEvent::BitrateBackoff:
        return "bitrate-backoff";
      case RecoveryEvent::ServerShed:
        return "server-shed";
      case RecoveryEvent::DeadlineMiss:
        return "deadline-miss";
      case RecoveryEvent::LadderStepDown:
        return "ladder-step-down";
      case RecoveryEvent::LadderStepUp:
        return "ladder-step-up";
      case RecoveryEvent::NpuFault:
        return "npu-fault";
      case RecoveryEvent::FrameHeld:
        return "frame-held";
      case RecoveryEvent::FecRecovered:
        return "fec-recovered";
      case RecoveryEvent::SliceConcealed:
        return "slice-concealed";
    }
    return "?";
}

const char *
resourceName(Resource resource)
{
    switch (resource) {
      case Resource::ServerCpu:
        return "server-cpu";
      case Resource::ServerGpu:
        return "server-gpu";
      case Resource::NetworkLink:
        return "network";
      case Resource::ClientCpu:
        return "client-cpu";
      case Resource::ClientGpu:
        return "client-gpu";
      case Resource::ClientNpu:
        return "client-npu";
      case Resource::ClientHwDecoder:
        return "client-hw-decoder";
      case Resource::ClientDisplay:
        return "client-display";
    }
    return "?";
}

} // namespace gssr
