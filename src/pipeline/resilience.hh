/**
 * @file
 * Loss-resilience layer of the streaming pipeline: the client-side
 * decoder-reference tracker, the NACK feedback path back to the
 * server, and the concealment engine that substitutes lost or
 * undecodable frames with the last good high-resolution output.
 *
 * The protocol (DESIGN.md "Loss recovery & fault injection"):
 *
 *   1. A frame lost in the network — or a delta frame that arrived
 *      but references lost decoder state — invalidates the client's
 *      reference chain; every delta frame is *discarded* (never
 *      decoded against stale references) until an intra frame
 *      re-seeds the chain.
 *   2. The client emits a NACK on the feedback path. It arrives at
 *      the server RTT/2 + jitter later; the server responds by
 *      forcing an intra refresh on its next encoded frame.
 *   3. While the chain is stale the client *conceals*: it holds (or
 *      motion-extrapolates) the last good HR frame, and session
 *      quality is measured against ground truth on that concealed
 *      output — transient PSNR dips are real, not masked.
 */

#ifndef GSSR_PIPELINE_RESILIENCE_HH
#define GSSR_PIPELINE_RESILIENCE_HH

#include <vector>

#include "codec/rate_control.hh"
#include "device/profiles.hh"
#include "frame/frame.hh"
#include "net/channel.hh"
#include "pipeline/trace.hh"

namespace gssr
{

/** How the client fills in a lost/undecodable frame. */
enum class ConcealmentMode
{
    /** Repeat the last good HR frame (frame hold). */
    Hold,

    /**
     * Shift the last good HR frame by the global motion estimated
     * between the last two good frames (coarse full-frame search),
     * extrapolating camera motion across the stale window.
     */
    MotionExtrapolate,
};

/** Concealment mode name for tables. */
const char *concealmentModeName(ConcealmentMode mode);

/** Session-level resilience policy. */
struct ResilienceConfig
{
    /** Concealment mode for lost/undecodable frames. */
    ConcealmentMode concealment = ConcealmentMode::Hold;

    /** NACK -> forced-intra-refresh recovery protocol. */
    bool nack = true;

    /**
     * The client re-sends its NACK when the chain is still stale
     * this long after the previous one (covers NACKs raced by
     * in-flight deltas and lost feedback).
     */
    f64 nack_timeout_ms = 50.0;

    /**
     * AIMD bitrate backoff on congestion signals. Only effective
     * when the session runs with a rate-controlled encoder
     * (target_bitrate_mbps > 0).
     */
    bool aimd = false;
    AimdConfig aimd_config;

    /**
     * Proactive per-frame FEC: parity shards as a fraction of data
     * shards on the packetized wire (net/packetizer.hh). Only
     * effective on packet-granularity channels; 0 disables parity
     * and leaves recovery to the reactive NACK -> intra-refresh path
     * (>= 1 RTT) plus slice concealment.
     */
    f64 fec_overhead = 0.0;
};

/**
 * Client-side decoder-reference state machine. Delta frames in this
 * codec predict from the immediately preceding reconstructed frame,
 * so *any* lost frame stalls the chain until the next intra.
 */
class ReferenceTracker
{
  public:
    enum class Action
    {
        Decode,  ///< safe to feed to the decoder
        Discard, ///< references lost state; do not decode
    };

    /** A frame arrived intact; decide whether it is decodable. */
    Action
    onFrameArrived(FrameType type)
    {
        if (type == FrameType::Reference) {
            chain_valid_ = true;
            return Action::Decode;
        }
        return chain_valid_ ? Action::Decode : Action::Discard;
    }

    /** The frame never arrived: the reference chain is now stale. */
    void onFrameLost() { chain_valid_ = false; }

    /** True while delta frames can be decoded. */
    bool chainValid() const { return chain_valid_; }

  private:
    bool chain_valid_ = true;
};

/** One NACK in flight on the feedback path. */
struct NackPacket
{
    /** Stream index of the frame whose loss triggered the NACK. */
    i64 lost_frame = 0;

    /** Client send time (session clock, ms). */
    f64 sent_ms = 0.0;

    /** Server arrival time: sent + RTT/2 + jitter (ms). */
    f64 arrive_ms = 0.0;
};

/**
 * Client -> server feedback path. Delay samples come from the
 * channel's dedicated feedback generator (NetworkChannel::
 * feedbackDelayMs), so using the feedback path does not perturb the
 * data-path replay.
 */
class FeedbackPath
{
  public:
    /** Queue a NACK sent at @p now_ms with @p delay_ms path delay. */
    void sendNack(i64 lost_frame, f64 now_ms, f64 delay_ms);

    /** Pop every NACK that has reached the server by @p now_ms. */
    std::vector<NackPacket> drainArrived(f64 now_ms);

    /** NACKs sent over the session. */
    i64 sentCount() const { return sent_; }

    /** NACKs still in flight. */
    size_t inFlight() const { return in_flight_.size(); }

  private:
    std::vector<NackPacket> in_flight_;
    i64 sent_ = 0;
};

/**
 * Concealment engine: remembers the last two good HR outputs and
 * synthesizes a stand-in for a lost frame. Purely client-side —
 * works identically for every client design, since it only touches
 * the displayed output.
 */
class Concealer
{
  public:
    explicit Concealer(ConcealmentMode mode) : mode_(mode) {}

    /** Record a successfully decoded + upscaled output frame. */
    void onGoodFrame(const ColorImage &hr);

    /**
     * Produce the concealed output for one lost/undecodable frame
     * of size @p hr_size. Repeated calls keep extrapolating (the
     * concealed frame becomes the new extrapolation base). Returns
     * a black frame when no good frame was ever received.
     */
    ColorImage conceal(Size hr_size);

    /** True once at least one good frame was recorded. */
    bool hasReference() const { return !last_.empty(); }

    ConcealmentMode mode() const { return mode_; }

  private:
    ConcealmentMode mode_;
    ColorImage last_; ///< most recent good (or extrapolated) frame
    ColorImage prev_; ///< the good frame before it
};

/**
 * Append the concealment stage accounting to @p trace: a GPU
 * framebuffer re-blit (hold), plus the coarse global-motion search
 * on the GPU for motion extrapolation.
 */
void addConcealStage(FrameTrace &trace, const DeviceProfile &device,
                     Size hr_size, ConcealmentMode mode);

/**
 * Coarse global-motion estimate between two equally sized frames:
 * full-frame SAD search on 1/8-scale luma, returned in full-scale
 * pixels. Exposed for tests.
 */
void estimateGlobalShift(const ColorImage &from, const ColorImage &to,
                         int &dx, int &dy);

} // namespace gssr

#endif // GSSR_PIPELINE_RESILIENCE_HH
