#include "pipeline/degrade.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace gssr
{

DegradationLadder::DegradationLadder(const LadderConfig &config)
    : config_(config)
{
    GSSR_ASSERT(config_.budget_ms > 0.0,
                "frame budget must be positive");
    GSSR_ASSERT(config_.down_after_misses >= 1 &&
                    config_.up_after_clean >= 1,
                "hysteresis counts must be at least 1");
    GSSR_ASSERT(config_.roi_shrink > 0.0 && config_.roi_shrink <= 1.0,
                "RoI shrink must be in (0, 1]");
    GSSR_ASSERT(config_.bitrate_step > 0.0 &&
                    config_.bitrate_step <= 1.0,
                "bitrate step must be in (0, 1]");
    GSSR_ASSERT(config_.up_margin > 0.0 && config_.up_margin <= 1.0,
                "up margin must be in (0, 1]");
}

f64
DegradationLadder::bitrateScale() const
{
    // Exact 1.0 at tier 0 so a tier-0 session retargets the encoder
    // with bit-identical values.
    f64 scale = 1.0;
    for (int i = 0; i < tier_; ++i)
        scale *= config_.bitrate_step;
    return scale;
}

f64
DegradationLadder::roiShrink() const
{
    return tier_ == kTierRoiShrink ? config_.roi_shrink : 1.0;
}

Precision
degradedPrecision(Precision base, int tier)
{
    if (tier <= 0)
        return base;
    if (tier == DegradationLadder::kTierPrecision) {
        return base == Precision::Fp32 || base == Precision::Int16
                   ? Precision::HybridInt8
                   : Precision::Int8;
    }
    return Precision::Int8;
}

LadderAdvice
DegradationLadder::adviseFrame(f64 busy_ms, f64 headroom_c)
{
    LadderAdvice advice;
    if (!config_.enabled)
        return advice;

    if (isMiss(busy_ms)) {
        clean_run_ = 0;
        miss_run_ += 1;
        if (miss_run_ >= config_.down_after_misses &&
            tier_ < kTierCount - 1) {
            miss_run_ = 0;
            advice.transition = LadderTransition::StepDown;
            // Urgency scales with how far past the budget the frame
            // ran; an exhausted thermal budget is maximally urgent.
            advice.urgency =
                clamp((busy_ms - config_.budget_ms) / config_.budget_ms,
                      0.25, 1.0);
            if (headroom_c <= 0.0)
                advice.urgency = 1.0;
        }
        return advice;
    }

    miss_run_ = 0;
    clean_run_ += 1;
    if (tier_ > 0 && clean_run_ >= config_.up_after_clean &&
        busy_ms < config_.budget_ms * config_.up_margin &&
        headroom_c >= config_.min_headroom_c) {
        clean_run_ = 0;
        advice.transition = LadderTransition::StepUp;
        advice.urgency = 0.2;
    }
    return advice;
}

void
DegradationLadder::setTier(int tier)
{
    tier_ = clamp(tier, 0, kTierCount - 1);
    miss_run_ = 0;
    clean_run_ = 0;
}

LadderTransition
DegradationLadder::onFrame(f64 busy_ms, f64 headroom_c)
{
    const LadderAdvice advice = adviseFrame(busy_ms, headroom_c);
    // adviseFrame has already reset the relevant hysteresis run, so
    // applying the move directly reproduces the pre-split behavior
    // bit for bit.
    if (advice.transition == LadderTransition::StepDown)
        tier_ += 1;
    else if (advice.transition == LadderTransition::StepUp)
        tier_ -= 1;
    return advice.transition;
}

} // namespace gssr
