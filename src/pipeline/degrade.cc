#include "pipeline/degrade.hh"

#include <cmath>

#include "common/logging.hh"

namespace gssr
{

DegradationLadder::DegradationLadder(const LadderConfig &config)
    : config_(config)
{
    GSSR_ASSERT(config_.budget_ms > 0.0,
                "frame budget must be positive");
    GSSR_ASSERT(config_.down_after_misses >= 1 &&
                    config_.up_after_clean >= 1,
                "hysteresis counts must be at least 1");
    GSSR_ASSERT(config_.roi_shrink > 0.0 && config_.roi_shrink <= 1.0,
                "RoI shrink must be in (0, 1]");
    GSSR_ASSERT(config_.bitrate_step > 0.0 &&
                    config_.bitrate_step <= 1.0,
                "bitrate step must be in (0, 1]");
    GSSR_ASSERT(config_.up_margin > 0.0 && config_.up_margin <= 1.0,
                "up margin must be in (0, 1]");
}

f64
DegradationLadder::bitrateScale() const
{
    // Exact 1.0 at tier 0 so a tier-0 session retargets the encoder
    // with bit-identical values.
    f64 scale = 1.0;
    for (int i = 0; i < tier_; ++i)
        scale *= config_.bitrate_step;
    return scale;
}

f64
DegradationLadder::roiShrink() const
{
    return tier_ == kTierRoiShrink ? config_.roi_shrink : 1.0;
}

Precision
degradedPrecision(Precision base, int tier)
{
    if (tier <= 0)
        return base;
    if (tier == DegradationLadder::kTierPrecision) {
        return base == Precision::Fp32 || base == Precision::Int16
                   ? Precision::HybridInt8
                   : Precision::Int8;
    }
    return Precision::Int8;
}

LadderTransition
DegradationLadder::onFrame(f64 busy_ms, f64 headroom_c)
{
    if (!config_.enabled)
        return LadderTransition::None;

    if (isMiss(busy_ms)) {
        clean_run_ = 0;
        miss_run_ += 1;
        if (miss_run_ >= config_.down_after_misses &&
            tier_ < kTierCount - 1) {
            tier_ += 1;
            miss_run_ = 0;
            return LadderTransition::StepDown;
        }
        return LadderTransition::None;
    }

    miss_run_ = 0;
    clean_run_ += 1;
    if (tier_ > 0 && clean_run_ >= config_.up_after_clean &&
        busy_ms < config_.budget_ms * config_.up_margin &&
        headroom_c >= config_.min_headroom_c) {
        tier_ -= 1;
        clean_run_ = 0;
        return LadderTransition::StepUp;
    }
    return LadderTransition::None;
}

} // namespace gssr
