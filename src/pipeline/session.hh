/**
 * @file
 * End-to-end streaming session driver: wires a game world, the
 * server pipeline, the network channel and one client design
 * together, runs a configurable number of frames, and collects the
 * per-frame traces and quality measurements the benchmark harness
 * aggregates into the paper's figures.
 */

#ifndef GSSR_PIPELINE_SESSION_HH
#define GSSR_PIPELINE_SESSION_HH

#include <memory>
#include <vector>

#include "metrics/perceptual.hh"
#include "net/channel.hh"
#include "net/fault.hh"
#include "pipeline/client.hh"
#include "pipeline/resilience.hh"
#include "pipeline/server.hh"

namespace gssr
{

/** Client design selection. */
enum class DesignKind
{
    GameStreamSR, ///< this work
    Nemo,         ///< SOTA baseline
    SrDecoder,    ///< Sec. VI future-work prototype
};

/** Design name for tables. */
const char *designName(DesignKind design);

/** Full session configuration. */
struct SessionConfig
{
    GameId game = GameId::G3_Witcher3;
    u64 world_seed = 1;

    /** Number of frames to stream. */
    int frames = 60;

    DesignKind design = DesignKind::GameStreamSR;
    DeviceProfile device = DeviceProfile::galaxyTabS8();
    ServerProfile server_profile = ServerProfile::gamingWorkstation();
    ChannelConfig channel = ChannelConfig::wifi();
    u64 channel_seed = 99;

    /** Scripted channel faults, replayed against the frame index. */
    FaultScenario fault_scenario;

    /** Loss-recovery policy (concealment, NACK, AIMD). */
    ResilienceConfig resilience;

    /** Streamed resolution and scale. */
    Size lr_size{1280, 720};
    int scale_factor = 2;
    CodecConfig codec;

    /** Encoder rate-control target (Mbit/s); 0 = fixed qp. */
    f64 target_bitrate_mbps = 0.0;

    /** Skip pixel work (latency/energy-only benches). */
    bool compute_pixels = true;

    /**
     * Accounting-only server fast path: rasterize/encode at this
     * reduced resolution while charging lr_size model numbers (see
     * ServerConfig::proxy_size). Requires compute_pixels == false.
     */
    Size server_proxy_size{0, 0};

    /** Trained SR net (required when compute_pixels). */
    std::shared_ptr<const CompactSrNet> sr_net;

    /** Measure PSNR every quality_stride-th frame. */
    bool measure_quality = false;
    int quality_stride = 1;

    /** Additionally measure the perceptual (LPIPS-proxy) metric
     *  every perceptual_stride-th measured frame. */
    bool measure_perceptual = false;
    int perceptual_stride = 10;
};

/** Quality of one sampled frame vs. the native HR render. */
struct FrameQuality
{
    i64 frame_index = 0;
    FrameType type = FrameType::Reference;
    f64 psnr_db = 0.0;
    f64 lpips = -1.0; ///< negative when not measured

    /** True when the measured output was a concealed frame. */
    bool concealed = false;
};

/** Session-level loss-recovery statistics. */
struct ResilienceStats
{
    /** Frames that arrived at the client. */
    i64 frames_delivered = 0;

    /** Frames lost in the network. */
    i64 frames_dropped = 0;

    /** Delivered delta frames discarded for stale references. */
    i64 frames_discarded = 0;

    /** Frames whose displayed output was concealed. */
    i64 frames_concealed = 0;

    i64 nacks_sent = 0;

    /** Server intra refreshes forced by NACKs. */
    i64 intra_refreshes = 0;

    /** AIMD multiplicative backoffs applied. */
    i64 aimd_backoffs = 0;

    /** Longest run of consecutive concealed frames. */
    i64 longest_stale_run = 0;

    /** Loss -> next decoded frame, per stale episode (ms). */
    SampleStats recovery_latency_ms;

    /** PSNR of measured frames, split by delivery outcome. */
    SampleStats delivered_psnr_db;
    SampleStats concealed_psnr_db;
};

/** Collected session output. */
struct SessionResult
{
    std::vector<FrameTrace> traces;
    std::vector<FrameQuality> quality;
    ResilienceStats resilience;

    /** Mean MTP latency over frames of @p type. */
    f64 meanMtpMs(FrameType type) const;

    /** Mean latency of one stage over frames of @p type. */
    f64 meanStageMs(Stage stage, FrameType type) const;

    /** Mean client pipelined-throughput bound for @p type frames. */
    f64 meanBottleneckMs(FrameType type) const;

    /** Output FPS for @p type frames (1000 / mean bottleneck). */
    f64 outputFps(FrameType type) const;

    /** Mean client-side processing energy per frame (mJ). */
    f64 meanClientEnergyMj() const;

    /**
     * Total client energy over the session, including the constant
     * device base power over the wall-clock session length
     * (frames x 16.66 ms) — the Fig. 11 quantity.
     */
    f64 overallClientEnergyMj(f64 base_power_w) const;

    /** Mean PSNR over measured frames. */
    f64 meanPsnrDb() const;

    /** Mean LPIPS-proxy over frames where it was measured. */
    f64 meanLpips() const;
};

/** Run one full session. */
SessionResult runSession(const SessionConfig &config);

/**
 * The RoI window a device negotiates at session start (Fig. 6
 * step-1): probes the device NPU model with the EDSR cost model.
 */
Size negotiatedRoiWindow(const DeviceProfile &device, int scale_factor,
                         Size lr_size);

} // namespace gssr

#endif // GSSR_PIPELINE_SESSION_HH
