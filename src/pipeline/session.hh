/**
 * @file
 * End-to-end streaming session driver: wires a game world, the
 * server pipeline, the network channel and one client design
 * together, runs a configurable number of frames, and collects the
 * per-frame traces and quality measurements the benchmark harness
 * aggregates into the paper's figures.
 */

#ifndef GSSR_PIPELINE_SESSION_HH
#define GSSR_PIPELINE_SESSION_HH

#include <memory>
#include <vector>

#include "metrics/perceptual.hh"
#include "net/channel.hh"
#include "net/fault.hh"
#include "obs/telemetry.hh"
#include "pipeline/client.hh"
#include "pipeline/degrade.hh"
#include "pipeline/resilience.hh"
#include "pipeline/server.hh"
#include "qoe/controller.hh"

namespace gssr
{

/** Client design selection. */
enum class DesignKind
{
    GameStreamSR, ///< this work
    Nemo,         ///< SOTA baseline
    SrDecoder,    ///< Sec. VI future-work prototype
};

/** Design name for tables. */
const char *designName(DesignKind design);

/** Full session configuration. */
struct SessionConfig
{
    GameId game = GameId::G3_Witcher3;
    u64 world_seed = 1;

    /** Number of frames to stream. */
    int frames = 60;

    DesignKind design = DesignKind::GameStreamSR;
    DeviceProfile device = DeviceProfile::galaxyTabS8();
    ServerProfile server_profile = ServerProfile::gamingWorkstation();
    ChannelConfig channel = ChannelConfig::wifi();
    u64 channel_seed = 99;

    /** Scripted channel faults, replayed against the frame index. */
    FaultScenario fault_scenario;

    /** Loss-recovery policy (concealment, NACK, AIMD). */
    ResilienceConfig resilience;

    /**
     * Scripted client-side faults (thermal soaks, NPU dropouts,
     * memory pressure — device/stress.hh). A non-empty scenario
     * instantiates the device stress model even when device_stress
     * is disabled.
     */
    DeviceFaultScenario device_faults;

    /** Thermal/DVFS stress model; disabled (fixed operating point)
     *  by default. */
    DeviceStressConfig device_stress;

    /** Seed of the device fault-draw stream. */
    u64 device_seed = 7;

    /**
     * Frame-deadline watchdog + degradation ladder
     * (pipeline/degrade.hh). Enabled by default but a strict no-op
     * at tier 0, so fault-free sessions stay bit-identical (pinned
     * by test_golden_trace). Tier semantics are defined for the
     * GameStreamSR hybrid client; other designs ignore the ladder.
     */
    LadderConfig ladder;

    /**
     * Unified QoE control plane (qoe/controller.hh). Disabled by
     * default: the legacy independent loops (AIMD, degradation
     * ladder) write their knobs exactly as before, bit-identical to
     * the checked-in goldens. Enabled, the loops become advisors and
     * the QoeController is the single writer of the session knobs.
     */
    qoe::QoeControlConfig qoe;

    /** Streamed resolution and scale. */
    Size lr_size{1280, 720};
    int scale_factor = 2;
    CodecConfig codec;

    /** Encoder rate-control target (Mbit/s); 0 = fixed qp. */
    f64 target_bitrate_mbps = 0.0;

    /** Skip pixel work (latency/energy-only benches). */
    bool compute_pixels = true;

    /**
     * Accounting-only server fast path: rasterize/encode at this
     * reduced resolution while charging lr_size model numbers (see
     * ServerConfig::proxy_size). Requires compute_pixels == false.
     */
    Size server_proxy_size{0, 0};

    /** Trained SR net (required when compute_pixels). */
    std::shared_ptr<const CompactSrNet> sr_net;

    /**
     * SR inference precision (ClientConfig::sr_precision): Fp32
     * (default, bit-identical to the unquantized pipeline — pinned
     * by test_golden_trace), Int16, Int8 or HybridInt8. The
     * degradation ladder degrades this per frame at tiers >= 1
     * (degradedPrecision()): precision is traded *before*
     * resolution.
     */
    Precision sr_precision = Precision::Fp32;

    /** Measure PSNR every quality_stride-th frame. */
    bool measure_quality = false;
    int quality_stride = 1;

    /** Additionally measure the perceptual (LPIPS-proxy) metric
     *  every perceptual_stride-th measured frame. */
    bool measure_perceptual = false;
    int perceptual_stride = 10;

    /**
     * Optional telemetry sink (not owned; null = no instrumentation).
     * The engine registers its instruments at construction and every
     * subsystem the frame touches (channel drop causes, AIMD rate
     * control, stage spans) reports through the same handle.
     * Strictly write-only for the simulation: attaching telemetry
     * never changes a session's trace (pinned by test_golden_trace).
     */
    obs::Telemetry *telemetry = nullptr;

    /** Span track (Chrome tid) for this session; the FleetServer
     *  assigns the tenant id so fleet traces render one swimlane per
     *  session. */
    int telemetry_track = 0;
};

/** Quality of one sampled frame vs. the native HR render. */
struct FrameQuality
{
    i64 frame_index = 0;
    FrameType type = FrameType::Reference;
    f64 psnr_db = 0.0;
    f64 lpips = -1.0; ///< negative when not measured

    /** True when the measured output was a concealed frame. */
    bool concealed = false;
};

/** Session-level loss-recovery statistics. */
struct ResilienceStats
{
    /** Frames that arrived at the client. */
    i64 frames_delivered = 0;

    /** Frames lost in the network. */
    i64 frames_dropped = 0;

    /** Frames shed by the oversubscribed fleet server (never sent). */
    i64 frames_shed = 0;

    /** Delivered delta frames discarded for stale references. */
    i64 frames_discarded = 0;

    /** Frames whose displayed output was concealed. */
    i64 frames_concealed = 0;

    i64 nacks_sent = 0;

    /** Server intra refreshes forced by NACKs. */
    i64 intra_refreshes = 0;

    /** Wire packets offered / lost (packet-granularity channels). */
    i64 packets_sent = 0;
    i64 packets_lost = 0;

    /** Frames whose packet losses FEC parity repaired (zero RTT). */
    i64 frames_fec_recovered = 0;

    /** Frames decoded with at least one slice band concealed. */
    i64 frames_partial = 0;

    /** Individual slice bands concealed across the session. */
    i64 slices_concealed = 0;

    /** AIMD multiplicative backoffs applied. */
    i64 aimd_backoffs = 0;

    /** Longest run of consecutive concealed frames. */
    i64 longest_stale_run = 0;

    /** Loss -> next decoded frame, per stale episode (ms). */
    SampleStats recovery_latency_ms;

    /** PSNR of measured frames, split by delivery outcome. */
    SampleStats delivered_psnr_db;
    SampleStats concealed_psnr_db;

    /** PSNR of frames displayed with concealed slice bands. */
    SampleStats partial_psnr_db;
};

/** Session-level degradation/stress statistics (not fingerprinted —
 *  derived views over the trace, like ResilienceStats). */
struct DegradationStats
{
    /** Frames whose client processing blew the frame budget. */
    i64 deadline_misses = 0;

    /** Ladder transitions applied over the session. */
    i64 ladder_step_downs = 0;
    i64 ladder_step_ups = 0;

    /** Scripted NPU invocation failures that hit processed frames. */
    i64 npu_faults = 0;

    /** Memory-pressure decode stalls that hit processed frames. */
    i64 decode_stalls = 0;

    /** Frames the ladder held at the hold tier (decode-only). */
    i64 frames_held = 0;

    /** Processed-frame residency per ladder tier. */
    i64 tier_frames[DegradationLadder::kTierCount] = {0, 0, 0, 0, 0};

    /** Peak SoC temperature over the session (°C; ambient when the
     *  session ran without a stress model). */
    f64 peak_temperature_c = 0.0;

    /** Ladder tier at session end. */
    int final_tier = 0;
};

/** Collected session output. */
struct SessionResult
{
    std::vector<FrameTrace> traces;
    std::vector<FrameQuality> quality;
    ResilienceStats resilience;
    DegradationStats degradation;

    /**
     * Per-frame QoE scores (qoe/predictor.hh), one per finished
     * frame. Scored for every session — controller enabled or not —
     * so control-plane arms can be compared on identical footing.
     * Derived view over the trace: NOT fingerprinted.
     */
    std::vector<f64> qoe_frames;

    /** Control actions the unified controller applied (0 when the
     *  control plane is disabled). Not fingerprinted. */
    i64 qoe_actions = 0;

    /** Mean per-frame QoE score over the session. */
    f64 meanQoe() const;

    /** p-th percentile of the per-frame QoE scores. */
    f64 qoePercentile(f64 p) const;

    /** Mean MTP latency over frames of @p type. */
    f64 meanMtpMs(FrameType type) const;

    /** Mean latency of one stage over frames of @p type. */
    f64 meanStageMs(Stage stage, FrameType type) const;

    /** Mean client pipelined-throughput bound for @p type frames. */
    f64 meanBottleneckMs(FrameType type) const;

    /** Output FPS for @p type frames (1000 / mean bottleneck). */
    f64 outputFps(FrameType type) const;

    /** Mean client-side processing energy per frame (mJ). */
    f64 meanClientEnergyMj() const;

    /**
     * Total client energy over the session, including the constant
     * device base power over the wall-clock session length
     * (frames x 16.66 ms) — the Fig. 11 quantity.
     */
    f64 overallClientEnergyMj(f64 base_power_w) const;

    /** Mean PSNR over measured frames. */
    f64 meanPsnrDb() const;

    /** Mean LPIPS-proxy over frames where it was measured. */
    f64 meanLpips() const;
};

/**
 * Everything a session must carry across a live migration between
 * fleet servers (cluster/cluster.hh): the collected result so far,
 * the frame/stream position, and the control-loop state (AIMD
 * target, ladder tier, QoE knobs) so the destination resumes the
 * session's operating point instead of resetting it. Produced by
 * SessionEngine::exportHandoff on the drained source; consumed by
 * the SessionEngine handoff constructor on the destination.
 *
 * When @p cold is set (deadline-expired handoff re-admitted cold)
 * only the result and stream position survive — the destination
 * rebuilds the control loops from the session config, exactly like
 * a fresh admission.
 */
struct SessionHandoffState
{
    /** Frames completed on previous servers. */
    i64 frames_run = 0;

    /** Server stream position (scene time + frame numbering). */
    i64 server_frame_index = 0;

    /** Intra refreshes already served by previous servers. */
    i64 intra_refreshes = 0;

    /** Paced-bitrate EWMA of the stream's frame bytes. */
    f64 mean_frame_bytes = 0.0;

    /** QoE predictor's conceal-rate EWMA. */
    f64 qoe_conceal_ewma = 0.0;

    /** Legacy-mode gated ladder bitrate scale. */
    f64 applied_ladder_scale = 1.0;

    /** NACK pacing + stale-episode bookkeeping. */
    f64 last_nack_ms = -1e18;
    f64 stale_since_ms = -1.0;
    i64 stale_run = 0;

    /** Quality-measurement stride position. */
    int measured = 0;

    /** Degradation-ladder tier at handoff. */
    int ladder_tier = 0;

    /** AIMD rate-control target (0 = AIMD was off / fixed qp). */
    f64 aimd_target_mbps = 0.0;

    /** Unified-controller knob state (valid when has_knobs). */
    bool has_knobs = false;
    qoe::KnobState knobs;

    /** Deadline-expired handoff: control state does not survive. */
    bool cold = false;

    /** Session time of the migration (arms the QoE cut refractory
     *  so the controller does not punish the handoff twice). */
    f64 migrated_at_ms = 0.0;

    /** The session's collected result so far. */
    SessionResult result;
};

/**
 * Shared-server contention injected into one frame by the fleet
 * scheduler (pipeline/scheduler.hh). Default-constructed contention
 * is the uncontended single-tenant case.
 */
struct ServerContention
{
    /** Wait for a server GPU/encoder slot (ServerQueue stage, ms). */
    f64 queue_ms = 0.0;

    /** The oversubscribed server shed this frame (never transmitted). */
    bool shed = false;
};

/**
 * Incremental session driver: the per-frame state machine that
 * runSession() used to inline, split into a begin/finish pair so a
 * multi-tenant FleetServer can interleave many sessions frame by
 * frame and inject shared-server queueing between the server stages
 * and the network.
 *
 * Frame protocol, per tick:
 *   1. beginFrame(now_ms)  — drains arrived NACKs, retargets the
 *      AIMD-driven rate controller, and produces the server frame
 *      (render/RoI/encode); returns the pending frame with its
 *      server-GPU cost for the scheduler.
 *   2. finishFrame(pending, contention) — applies the scheduler's
 *      queueing delay / shed decision, transmits over the channel,
 *      and runs the client, resilience and quality paths.
 *
 * Driving stepFrame(i * frame period) for i = 0..frames-1 reproduces
 * runSession() exactly.
 */
class SessionEngine
{
  public:
    explicit SessionEngine(const SessionConfig &config);

    /**
     * Resume a migrated session on a new server: constructs the
     * fresh engine for @p config, then restores the stream position
     * and (unless the handoff is cold) the control-loop state from
     * @p handoff, and forces an intra refresh so the first frame the
     * destination produces re-seeds the client's reference chain —
     * the PR 3 recovery path, reused as the migration splice.
     */
    SessionEngine(const SessionConfig &config,
                  SessionHandoffState &&handoff);

    SessionEngine(const SessionEngine &) = delete;
    SessionEngine &operator=(const SessionEngine &) = delete;

    /**
     * Export the state a live migration carries to the destination
     * server (ends this engine's session: the result moves out).
     */
    SessionHandoffState exportHandoff();

    /** One produced-but-untransmitted frame. */
    struct PendingFrame
    {
        ServerFrameOutput produced;
        f64 now_ms = 0.0;

        /** Server GPU service time (render + RoI + encode, ms). */
        f64 server_gpu_ms = 0.0;
    };

    /** Phase 1: produce the server frame for session time @p now_ms. */
    PendingFrame beginFrame(f64 now_ms);

    /** Phase 2: transmit + client + resilience accounting. */
    void finishFrame(PendingFrame pending,
                     const ServerContention &contention = {});

    /** Uncontended single-tenant step (phase 1 + phase 2). */
    void
    stepFrame(f64 now_ms)
    {
        finishFrame(beginFrame(now_ms));
    }

    /** Frames completed so far. */
    i64 framesRun() const { return frames_run_; }

    const SessionConfig &config() const { return config_; }

    /** Result collected so far (valid after every finishFrame). */
    const SessionResult &result() const { return result_; }

    /** Move the collected result out (ends the session). */
    SessionResult takeResult() { return std::move(result_); }

  private:
    /** Registry handles cached at construction (hot path: no name
     *  lookups while frames run). Valid only when telemetry is set. */
    struct TelemetryIds
    {
        obs::MetricId frames_total = 0;
        obs::MetricId frames_delivered = 0;
        obs::MetricId frames_dropped = 0;
        obs::MetricId frames_shed = 0;
        obs::MetricId frames_discarded = 0;
        obs::MetricId frames_concealed = 0;
        obs::MetricId nacks_sent = 0;
        obs::MetricId intra_refreshes = 0;
        obs::MetricId aimd_backoffs = 0;
        obs::MetricId fec_recovered = 0;
        obs::MetricId slice_concealed = 0;
        obs::MetricId pkt_sent = 0;
        obs::MetricId pkt_lost = 0;
        obs::MetricId stream_bytes = 0;
        obs::MetricId mtp_ms = 0;
        obs::MetricId queue_ms = 0;
        obs::MetricId deadline_misses = 0;
        obs::MetricId ladder_step_downs = 0;
        obs::MetricId ladder_step_ups = 0;
        obs::MetricId npu_faults = 0;
        obs::MetricId frames_held = 0;
        obs::MetricId tier_gauge = 0;
        obs::MetricId temperature_gauge = 0;
        obs::MetricId headroom_gauge = 0;
        obs::MetricId qoe_score = 0;
        obs::MetricId qoe_frame_score = 0;
    };

    /** Counters/histograms + stage spans for one finished frame. */
    void exportFrameTelemetry(const FrameTrace &trace, f64 now_ms);

    SessionConfig config_;
    GameWorld world_;
    GameStreamServer server_;
    std::unique_ptr<StreamingClient> client_;
    NetworkChannel channel_;
    ReferenceTracker tracker_;
    FeedbackPath feedback_;
    Concealer concealer_;
    std::optional<AimdController> aimd_;
    std::optional<DeviceStressModel> stress_;
    DegradationLadder ladder_;
    bool ladder_active_ = false;
    std::optional<qoe::QoeController> qoe_;
    qoe::QoePredictor qoe_predictor_;
    f64 qoe_conceal_ewma_ = 0.0;
    f64 applied_ladder_scale_ = 1.0;
    PerceptualMetric perceptual_;
    Size hr_size_;
    SessionResult result_;
    f64 mean_frame_bytes_ = 0.0;
    int measured_ = 0;
    f64 last_nack_ms_ = -1e18;
    f64 stale_since_ms_ = -1.0;
    i64 stale_run_ = 0;
    i64 frames_run_ = 0;

    /** Intra refreshes served by previous servers (live migration):
     *  added to this server's count in the session accounting. */
    i64 intra_refresh_base_ = 0;
    TelemetryIds tm_;

    /** QoE feature vector of one finished frame. */
    qoe::QoeFeatures frameFeatures(const EncodedFrame &encoded,
                                   const FrameTrace &trace,
                                   Precision precision) const;

    /** Advisor proposals + controller decide (unified mode only). */
    void runControlPlane(FrameTrace &trace, f64 now_ms, bool decodable,
                         f64 busy_ms, f64 headroom_c);

    static ServerConfig serverConfigFor(const SessionConfig &config);
    static LadderConfig ladderConfigFor(const SessionConfig &config);
    static Size roiWindowFor(const SessionConfig &config);
};

/** Run one full session. */
SessionResult runSession(const SessionConfig &config);

/**
 * Stable 64-bit FNV-1a fingerprint of a session result: hashes every
 * frame's stage records (stage, resource, raw latency/energy bits),
 * delivery flags, recovery events, stream bytes, and the measured
 * quality samples. Two runs are bit-identical iff their fingerprints
 * match — the quantity the golden-trace regression suite and the
 * cross-thread-count determinism tests pin.
 */
u64 sessionFingerprint(const SessionResult &result);

/**
 * The RoI window a device negotiates at session start (Fig. 6
 * step-1): probes the device NPU model with the EDSR cost model.
 */
Size negotiatedRoiWindow(const DeviceProfile &device, int scale_factor,
                         Size lr_size);

} // namespace gssr

#endif // GSSR_PIPELINE_SESSION_HH
