#include "pipeline/fleet.hh"

#include <algorithm>

#include "common/fingerprint.hh"
#include "obs/telemetry.hh"
#include "roi/depth_processing.hh"

namespace gssr
{

namespace
{

/** Degradation floor for the resolution ladder (stream width, px). */
constexpr int kMinDegradedWidth = 480;

/** One x3/4 resolution-ladder step, snapped to multiples of 4. */
Size
degradeResolution(Size size)
{
    return Size{(size.width * 3 / 4) & ~3, (size.height * 3 / 4) & ~3};
}

} // namespace

const char *
admissionOutcomeName(AdmissionOutcome outcome)
{
    switch (outcome) {
      case AdmissionOutcome::Admitted:
        return "admitted";
      case AdmissionOutcome::Degraded:
        return "degraded";
      case AdmissionOutcome::Rejected:
        return "rejected";
    }
    return "?";
}

FleetServer::FleetServer(const ServerProfile &profile,
                         SchedulePolicy policy)
    : FleetServer(profile, policy, ServerCapacity::fromProfile(profile))
{
}

FleetServer::FleetServer(const ServerProfile &profile,
                         SchedulePolicy policy,
                         const ServerCapacity &capacity)
    : profile_(profile), capacity_(capacity),
      scheduler_(policy, capacity)
{
    GSSR_ASSERT(profile_.gpu_slots >= 1,
                "fleet server needs at least one GPU slot");
    GSSR_ASSERT(capacity_.gpu_slots >= 1,
                "fleet capacity needs at least one GPU slot");
}

f64
FleetServer::estimateSessionCostMs(const ServerProfile &profile,
                                   const SessionConfig &config)
{
    const i64 area = config.lr_size.area();
    f64 cost = profile.renderLatencyMs(area) +
               profile.encodeLatencyMs(area);
    if (config.design != DesignKind::Nemo) {
        // Depth preprocessing + RoI search op counts (roi/), charged
        // at the server GPU's compute-shader throughput.
        const i64 roi_ops = preprocessOpCount(config.lr_size) +
                            i64(area) * 2; // prefix sums dominate
        cost += f64(roi_ops) / profile.gpu_ops_per_ms;
    }
    return cost;
}

void
FleetServer::setTelemetry(obs::Telemetry *telemetry)
{
    telemetry_ = telemetry;
    if (!telemetry_)
        return;
    obs::MetricsRegistry &reg = telemetry_->registry();
    tm_.admitted = reg.counter("fleet.admit.admitted");
    tm_.degraded = reg.counter("fleet.admit.degraded");
    tm_.rejected = reg.counter("fleet.admit.rejected");
    tm_.tick = reg.gauge("fleet.tick");
    tm_.sessions = reg.gauge("fleet.sessions");
    tm_.p50_mtp_ms = reg.gauge("fleet.p50_mtp_ms");
    tm_.p99_mtp_ms = reg.gauge("fleet.p99_mtp_ms");
    tm_.shed_rate = reg.gauge("fleet.shed_rate");
    tm_.drop_rate = reg.gauge("fleet.drop_rate");
    tm_.conceal_rate = reg.gauge("fleet.conceal_rate");
    // Shared with every tenant's SessionEngine: get-or-create here
    // and in the engines resolves to the same instruments, which is
    // exactly how per-session observations become fleet-wide ones.
    tm_.frames_total = reg.counter("fleet.frames_total");
    tm_.frames_shed = reg.counter("fleet.frames_shed");
    tm_.frames_dropped = reg.counter("fleet.frames_dropped");
    tm_.frames_concealed = reg.counter("fleet.frames_concealed");
    tm_.mtp_ms = reg.histogram(
        "fleet.mtp_ms", obs::HistogramLayout::linear(0, 250, 500));
    // Shared with the tenants' QoE scoring (session/controller side
    // registers the same name): the fleet reads its percentile back
    // out as the live p10-QoE objective gauge.
    tm_.qoe_frame_score = reg.histogram(
        "qoe.frame_score",
        obs::HistogramLayout::linear(0.0, 100.0, 100));
    tm_.qoe_fleet_p10 = reg.gauge("qoe.fleet_p10");
}

AdmissionDecision
FleetServer::admit(SessionConfig config)
{
    config.server_profile = profile_;
    config.telemetry = telemetry_;
    config.telemetry_track = next_id_;

    AdmissionDecision decision;
    decision.outcome = AdmissionOutcome::Admitted;
    int fps_divisor = 1;
    const f64 budget = capacity_.budgetMsPerTick();

    // Degradation ladder: shrink the stream x3/4 at a time down to
    // the 480-wide floor, then halve the frame rate, then give up.
    // Each ladder step drops a span instant on the candidate's track
    // so a fleet trace shows *why* a tenant streams below request.
    obs::SpanExporter *spans =
        telemetry_ ? telemetry_->spans() : nullptr;
    f64 cost = estimateSessionCostMs(profile_, config);
    qoe::ControlAction step;
    step.advisor = "admission";
    while (committed_ms_ + cost / f64(fps_divisor) > budget) {
        const Size smaller = degradeResolution(config.lr_size);
        if (smaller.width >= kMinDegradedWidth) {
            config.lr_size = smaller;
            decision.outcome = AdmissionOutcome::Degraded;
            step.kind = qoe::ActionKind::ResolutionStep;
            step.direction = -1;
            decision.actions.push_back(step);
            if (spans)
                spans->instant("admission.degrade_resolution",
                               "admission", next_id_, 0.0,
                               f64(smaller.width));
        } else if (fps_divisor == 1) {
            fps_divisor = 2;
            decision.outcome = AdmissionOutcome::Degraded;
            step.kind = qoe::ActionKind::FrameRateStep;
            step.direction = -1;
            decision.actions.push_back(step);
            if (spans)
                spans->instant("admission.degrade_fps", "admission",
                               next_id_, 0.0, 30.0);
        } else {
            decision.outcome = AdmissionOutcome::Rejected;
            step.kind = qoe::ActionKind::Shed;
            step.direction = 0;
            decision.actions.push_back(step);
            decision.config = std::move(config);
            rejected_ += 1;
            if (telemetry_)
                telemetry_->registry().add(tm_.rejected);
            if (spans)
                spans->instant("admission.rejected", "admission",
                               next_id_, 0.0);
            return decision;
        }
        cost = estimateSessionCostMs(profile_, config);
    }
    step.kind = qoe::ActionKind::Admit;
    step.direction = 0;
    decision.actions.push_back(step);

    if (telemetry_) {
        telemetry_->registry().add(
            decision.outcome == AdmissionOutcome::Degraded
                ? tm_.degraded
                : tm_.admitted);
    }

    decision.config = config;
    decision.fps_divisor = fps_divisor;
    decision.estimated_cost_ms = cost / f64(fps_divisor);
    committed_ms_ += decision.estimated_cost_ms;

    Tenant tenant;
    tenant.id = next_id_;
    tenant.outcome = decision.outcome;
    tenant.fps_divisor = fps_divisor;
    tenant.estimated_cost_ms = decision.estimated_cost_ms;
    tenant.engine = std::make_unique<SessionEngine>(config);
    tenants_.push_back(std::move(tenant));
    next_id_ += 1;
    return decision;
}

std::vector<FleetServer::Tenant>
FleetServer::drainTenants()
{
    std::vector<Tenant> drained = std::move(tenants_);
    tenants_.clear();
    committed_ms_ = 0.0;
    return drained;
}

bool
FleetServer::admitHandoff(int id, AdmissionOutcome outcome,
                          int fps_divisor, SessionConfig config,
                          SessionHandoffState &&handoff)
{
    GSSR_ASSERT(fps_divisor >= 1, "fps divisor must be >= 1");
    const f64 cost =
        estimateSessionCostMs(profile_, config) / f64(fps_divisor);
    if (committed_ms_ + cost > capacity_.budgetMsPerTick())
        return false;

    config.server_profile = profile_;
    config.telemetry = telemetry_;
    config.telemetry_track = id;
    committed_ms_ += cost;

    Tenant tenant;
    tenant.id = id;
    tenant.outcome = outcome;
    tenant.fps_divisor = fps_divisor;
    tenant.estimated_cost_ms = cost;
    tenant.engine =
        std::make_unique<SessionEngine>(config, std::move(handoff));
    tenants_.push_back(std::move(tenant));
    next_id_ = std::max(next_id_, id + 1);
    return true;
}

void
FleetServer::runTick(i64 t)
{
    const f64 now_ms = f64(t) * capacity_.frame_period_ms;
    jobs_.clear();
    pending_.clear();
    submitters_.clear();

    // Half-rate tenants submit on alternating phases (id parity)
    // so degraded sessions do not all pile onto the same tick.
    for (size_t i = 0; i < tenants_.size(); ++i) {
        Tenant &tenant = tenants_[i];
        if (t % tenant.fps_divisor != tenant.id % tenant.fps_divisor)
            continue;
        pending_.push_back(tenant.engine->beginFrame(now_ms));
        jobs_.push_back({tenant.id, pending_.back().server_gpu_ms});
        submitters_.push_back(i);
    }

    std::vector<ServerContention> contention =
        scheduler_.scheduleTick(now_ms, jobs_);
    for (size_t j = 0; j < submitters_.size(); ++j) {
        tenants_[submitters_[j]].engine->finishFrame(
            std::move(pending_[j]), contention[j]);
    }

    if (telemetry_)
        updateTickTelemetry(t, now_ms);
}

FleetSessionStats
summarizeFleetSession(int id, AdmissionOutcome outcome,
                      int fps_divisor, Size lr_size,
                      f64 estimated_cost_ms,
                      const SessionResult &session, f64 run_s,
                      SampleStats &mtp_out, SampleStats &qoe_out)
{
    FleetSessionStats s;
    s.session = id;
    s.outcome = outcome;
    s.fps_divisor = fps_divisor;
    s.lr_size = lr_size;
    s.estimated_cost_ms = estimated_cost_ms;
    s.fingerprint = sessionFingerprint(session);
    s.frames = i64(session.traces.size());
    s.frames_shed = session.resilience.frames_shed;
    s.frames_dropped = session.resilience.frames_dropped;
    s.frames_concealed = session.resilience.frames_concealed;
    s.aimd_backoffs = session.resilience.aimd_backoffs;
    s.deadline_misses = session.degradation.deadline_misses;
    s.frames_held = session.degradation.frames_held;
    s.final_tier = session.degradation.final_tier;
    s.peak_temperature_c = session.degradation.peak_temperature_c;
    s.mean_qoe = session.meanQoe();
    s.p10_qoe = session.qoePercentile(10.0);
    s.qoe_actions = session.qoe_actions;
    for (f64 score : session.qoe_frames)
        qoe_out.add(score);

    f64 queue_total = 0.0;
    f64 mtp_total = 0.0;
    i64 delivered = 0;
    size_t transmitted_bytes = 0;
    for (const FrameTrace &trace : session.traces) {
        queue_total += trace.stageLatencyMs(Stage::ServerQueue);
        if (!trace.hasEvent(RecoveryEvent::ServerShed))
            transmitted_bytes += trace.encoded_bytes;
        if (!trace.dropped && !trace.concealed) {
            const f64 mtp = trace.mtpLatencyMs();
            mtp_total += mtp;
            mtp_out.add(mtp);
            delivered += 1;
        }
    }
    s.mean_queue_ms = s.frames ? queue_total / f64(s.frames) : 0.0;
    s.mean_mtp_ms = delivered ? mtp_total / f64(delivered) : 0.0;
    s.bitrate_mbps = f64(transmitted_bytes) * 8.0 / 1e6 / run_s;
    return s;
}

FleetResult
FleetServer::run(int ticks)
{
    GSSR_ASSERT(ticks >= 1, "fleet run needs at least one tick");
    for (int t = 0; t < ticks; ++t)
        runTick(t);
    return collectResult(ticks);
}

FleetResult
FleetServer::collectResult(i64 ticks)
{
    FleetResult result;
    result.policy = scheduler_.policy();
    result.gpu_slots = capacity_.gpu_slots;
    result.ticks = ticks;
    result.rejected = rejected_;
    result.committed_cost_ms = committed_ms_;
    result.budget_ms = capacity_.budgetMsPerTick();
    result.frames_shed = scheduler_.framesShed();
    result.max_backlog_ms = scheduler_.maxBacklogMs();

    const f64 run_s =
        f64(ticks) * capacity_.frame_period_ms / 1000.0;
    u64 fleet_hash = kFnvOffsetBasis;
    for (Tenant &tenant : tenants_) {
        if (tenant.outcome == AdmissionOutcome::Degraded)
            result.degraded += 1;
        else
            result.admitted += 1;

        FleetSessionStats s = summarizeFleetSession(
            tenant.id, tenant.outcome, tenant.fps_divisor,
            tenant.engine->config().lr_size, tenant.estimated_cost_ms,
            tenant.engine->result(), run_s, result.mtp_ms,
            result.qoe);

        result.frames_total += s.frames;
        result.frames_dropped += s.frames_dropped;
        result.aggregate_bitrate_mbps += s.bitrate_mbps;
        fleet_hash = fnv1aValue(tenant.id, fleet_hash);
        fleet_hash = fnv1aValue(s.fingerprint, fleet_hash);
        result.sessions.push_back(s);
    }
    result.fingerprint = fleet_hash;
    return result;
}

void
FleetServer::updateTickTelemetry(i64 tick, f64 now_ms)
{
    obs::MetricsRegistry &reg = telemetry_->registry();
    const i64 total = reg.counterValue(tm_.frames_total);
    const f64 denom = total > 0 ? f64(total) : 1.0;
    const f64 p50 = reg.histogramPercentile(tm_.mtp_ms, 50.0);
    const f64 p99 = reg.histogramPercentile(tm_.mtp_ms, 99.0);
    const f64 shed = f64(reg.counterValue(tm_.frames_shed)) / denom;
    const f64 drop =
        f64(reg.counterValue(tm_.frames_dropped)) / denom;
    const f64 conceal =
        f64(reg.counterValue(tm_.frames_concealed)) / denom;

    reg.set(tm_.tick, f64(tick));
    reg.set(tm_.sessions, f64(tenants_.size()));
    reg.set(tm_.p50_mtp_ms, p50);
    reg.set(tm_.p99_mtp_ms, p99);
    reg.set(tm_.shed_rate, shed);
    reg.set(tm_.drop_rate, drop);
    reg.set(tm_.conceal_rate, conceal);
    // The fleet objective, live: p10 of every tenant's per-frame QoE
    // scores (bucket-resolved from the shared histogram).
    const f64 p10_qoe =
        reg.histogramPercentile(tm_.qoe_frame_score, 10.0);
    reg.set(tm_.qoe_fleet_p10, p10_qoe);
    telemetry_->updateParallelPoolMetrics();

    // Fleet-wide counter series on the reserved track -1: the
    // operator view (live p99 MTP and loss rates over the run) next
    // to the per-session swimlanes.
    if (obs::SpanExporter *spans = telemetry_->spans()) {
        spans->counter("fleet.p99_mtp_ms", -1, now_ms, p99);
        spans->counter("fleet.shed_rate", -1, now_ms, shed);
        spans->counter("fleet.conceal_rate", -1, now_ms, conceal);
    }
}

SessionConfig
fleetMixSessionConfig(int i)
{
    static const GameId kGames[] = {
        GameId::G3_Witcher3,
        GameId::G1_MetroExodus,
        GameId::G6_GodOfWar,
        GameId::G9_FarmingSimulator,
    };
    static const Size kSizes[] = {
        {1280, 720},
        {960, 540},
        {640, 360},
    };

    SessionConfig config;
    config.game = kGames[i % 4];
    config.world_seed = 1 + u64(i);
    config.design =
        (i % 3 == 2) ? DesignKind::Nemo : DesignKind::GameStreamSR;
    config.device = (i % 2) ? DeviceProfile::pixel7Pro()
                            : DeviceProfile::galaxyTabS8();
    config.channel = (i % 4 == 3) ? ChannelConfig::fiveGEmbb()
                                  : ChannelConfig::wifi();
    config.channel_seed = 1000 + u64(i);
    config.lr_size = kSizes[i % 3];
    config.scale_factor = 2;
    config.target_bitrate_mbps = 10.0 - f64(i % 3) * 2.0;
    config.compute_pixels = false;
    config.server_proxy_size = {256, 144};
    config.resilience.nack = true;
    config.resilience.aimd = true;
    return config;
}

} // namespace gssr
