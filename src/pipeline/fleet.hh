/**
 * @file
 * Multi-tenant streaming server: admits N concurrent heterogeneous
 * sessions (mixed games, devices, client designs and channels) onto
 * one shared ServerProfile and runs them in 60 Hz lockstep, pushing
 * every session's per-frame GPU job through the FrameScheduler so
 * shared-capacity contention shows up as ServerQueue latency, shed
 * frames, and AIMD bitrate backoff inside each session's own trace.
 *
 * Admission control keeps the committed per-tick service time under
 * the capacity budget, degrading a session that does not fit —
 * first stream resolution (x3/4 steps down to a 480-wide floor),
 * then frame rate (30 FPS) — before rejecting it outright.
 */

#ifndef GSSR_PIPELINE_FLEET_HH
#define GSSR_PIPELINE_FLEET_HH

#include <memory>
#include <vector>

#include "common/stats.hh"
#include "pipeline/scheduler.hh"
#include "qoe/actions.hh"

namespace gssr
{

namespace obs
{
class Telemetry;
}

/** What admission control did with a session. */
enum class AdmissionOutcome
{
    Admitted, ///< fits as requested
    Degraded, ///< fits after resolution / frame-rate reduction
    Rejected, ///< does not fit even fully degraded
};

/** Outcome name for tables / JSON. */
const char *admissionOutcomeName(AdmissionOutcome outcome);

/** Result of FleetServer::admit. */
struct AdmissionDecision
{
    AdmissionOutcome outcome = AdmissionOutcome::Rejected;

    /** Final session config (degradations applied); the profile is
     *  overwritten with the fleet's shared ServerProfile. */
    SessionConfig config;

    /** 1 = full 60 FPS; 2 = degraded to every other tick (30 FPS). */
    int fps_divisor = 1;

    /** Estimated per-tick service-time commitment (ms). */
    f64 estimated_cost_ms = 0.0;

    /**
     * The admission ladder's moves in the unified ControlAction
     * vocabulary (qoe/actions.hh): one ResolutionStep/FrameRateStep
     * per degradation applied, terminated by Admit or Shed. The
     * legacy lr_size/fps_divisor fields above are derived views.
     */
    std::vector<qoe::ControlAction> actions;
};

/** Per-session summary in a FleetResult. */
struct FleetSessionStats
{
    int session = 0;
    AdmissionOutcome outcome = AdmissionOutcome::Admitted;
    int fps_divisor = 1;
    Size lr_size{0, 0};
    f64 estimated_cost_ms = 0.0;

    /** Session-result fingerprint (sessionFingerprint). */
    u64 fingerprint = 0;

    i64 frames = 0;
    i64 frames_shed = 0;
    i64 frames_dropped = 0;
    i64 frames_concealed = 0;
    i64 aimd_backoffs = 0;

    /** Client degradation-ladder view (session.hh DegradationStats):
     *  a throttled tenant's deadline pressure is fleet-visible so the
     *  operator can tell client-side from server-side overload. */
    i64 deadline_misses = 0;
    i64 frames_held = 0;
    int final_tier = 0;
    f64 peak_temperature_c = 0.0;

    /** Mean MTP over delivered frames (includes ServerQueue). */
    f64 mean_mtp_ms = 0.0;

    /** Mean shared-server queueing delay over all frames (ms). */
    f64 mean_queue_ms = 0.0;

    /** Transmitted stream bitrate over the run (Mbit/s). */
    f64 bitrate_mbps = 0.0;

    /** Mean / p10 per-frame QoE score (session.hh qoe_frames). */
    f64 mean_qoe = 0.0;
    f64 p10_qoe = 0.0;

    /** Unified-controller actions applied (0 when disabled). */
    i64 qoe_actions = 0;
};

/** Aggregate outcome of one fleet run. */
struct FleetResult
{
    SchedulePolicy policy = SchedulePolicy::Edf;
    int gpu_slots = 1;
    i64 ticks = 0;

    i64 admitted = 0;
    i64 degraded = 0;
    i64 rejected = 0;

    /** Committed admission budget vs. available (ms per tick). */
    f64 committed_cost_ms = 0.0;
    f64 budget_ms = 0.0;

    i64 frames_total = 0;
    i64 frames_shed = 0;
    i64 frames_dropped = 0;

    /** MTP of every delivered frame across all sessions (ms). */
    SampleStats mtp_ms;

    /**
     * Per-frame QoE scores across every tenant — the fleet
     * objective is the 10th percentile of this distribution
     * (qoe.percentile(10.0)): maximize the experience of the
     * worst-served tenants, not the average.
     */
    SampleStats qoe;

    /** Sum of per-session transmitted bitrates (Mbit/s). */
    f64 aggregate_bitrate_mbps = 0.0;

    /** Deepest end-of-tick slot backlog seen (ms). */
    f64 max_backlog_ms = 0.0;

    /** Order-sensitive FNV chain over all session fingerprints. */
    u64 fingerprint = 0;

    std::vector<FleetSessionStats> sessions;
};

/**
 * The multi-tenant server. Usage: admit() each candidate session,
 * then run(ticks) once to drive all admitted sessions in lockstep
 * and collect the aggregate result. Everything is deterministic:
 * same admissions + same tick count => bit-identical FleetResult.
 */
class FleetServer
{
  public:
    /** One admitted session and its admission-time metadata. Public
     *  so the cluster controller (cluster/cluster.hh) can drain a
     *  failing server's tenants and re-home them. */
    struct Tenant
    {
        int id = 0;
        AdmissionOutcome outcome = AdmissionOutcome::Admitted;
        int fps_divisor = 1;
        f64 estimated_cost_ms = 0.0;
        std::unique_ptr<SessionEngine> engine;
    };

    FleetServer(const ServerProfile &profile, SchedulePolicy policy);
    FleetServer(const ServerProfile &profile, SchedulePolicy policy,
                const ServerCapacity &capacity);

    /**
     * Attach a telemetry sink (not owned; null detaches). Call
     * before admit(): every subsequently admitted tenant inherits
     * the handle (span track = tenant id), so per-session metrics
     * roll up into shared fleet.* instruments, admission-ladder
     * steps are recorded as instants/counters, and run() refreshes
     * live fleet-wide gauges — p50/p99 MTP, shed / drop / conceal
     * rate — every tick. Write-only for the simulation: fleet
     * results are bit-identical with or without it.
     */
    void setTelemetry(obs::Telemetry *telemetry);

    /**
     * Admission-control a session. @p config's server_profile is
     * replaced with the fleet's shared profile. Admitted (or
     * degraded) sessions are instantiated immediately; a rejected
     * session leaves the fleet untouched.
     */
    AdmissionDecision admit(SessionConfig config);

    /** Live (admitted + degraded) session count. */
    i64 sessionCount() const { return i64(tenants_.size()); }

    /** Service time committed by admission so far (ms per tick). */
    f64 committedCostMs() const { return committed_ms_; }

    const ServerCapacity &capacity() const { return capacity_; }

    /** Drive all admitted sessions for @p ticks 60 Hz ticks. */
    FleetResult run(int ticks);

    /**
     * Drive all admitted sessions for one 60 Hz tick @p t (the loop
     * body of run(), exposed so a cluster controller can interleave
     * many servers and inject fault transitions between ticks).
     * Driving runTick for t = 0..ticks-1 and then collectResult is
     * bit-identical to run(ticks).
     */
    void runTick(i64 t);

    /** Aggregate the per-session results (the tail of run()). */
    FleetResult collectResult(i64 ticks);

    /**
     * Live migration, source side: release every tenant (with its
     * session engine, still running) and the committed admission
     * budget. The fleet is empty afterwards; the caller owns the
     * extracted tenants and re-homes or retires them.
     */
    std::vector<Tenant> drainTenants();

    /**
     * Live migration, destination side: re-admit a migrated session
     * under its existing (possibly already degraded) configuration —
     * no further degradation is applied; if the remaining budget
     * cannot take the session as-is the handoff is refused (false,
     * @p handoff untouched) and the caller retries elsewhere. On
     * success the session resumes from @p handoff with a forced
     * intra refresh, keeping its cluster-wide id (submission phase
     * and telemetry track follow it).
     */
    bool admitHandoff(int id, AdmissionOutcome outcome,
                      int fps_divisor, SessionConfig config,
                      SessionHandoffState &&handoff);

    /**
     * Override the next tenant id. A cluster controller allocates
     * session ids globally so a session keeps one identity across
     * servers; the default per-server sequence (0, 1, 2, ...) is
     * what a standalone fleet uses.
     */
    void setNextTenantId(int id) { next_id_ = id; }

    /** The admitted tenants, in admission/handoff order. */
    const std::vector<Tenant> &tenants() const { return tenants_; }

    /** Frames shed by the scheduler so far. */
    i64 framesShed() const { return scheduler_.framesShed(); }

    /** Deepest end-of-tick backlog seen so far (ms). */
    f64 maxBacklogMs() const { return scheduler_.maxBacklogMs(); }

    /** Sessions this server's admission control rejected. */
    i64 rejectedCount() const { return rejected_; }

    /**
     * Admission estimate of one frame's server service time: the
     * capacity model's render + RoI + encode charge for the
     * session's stream resolution (ms). The scheduler itself uses
     * the actual traced cost, so this only needs to be close.
     */
    static f64 estimateSessionCostMs(const ServerProfile &profile,
                                     const SessionConfig &config);

  private:
    /** Fleet-level registry handles (valid when telemetry_ is set). */
    struct TelemetryIds
    {
        u32 admitted = 0;
        u32 degraded = 0;
        u32 rejected = 0;
        u32 tick = 0;
        u32 sessions = 0;
        u32 p50_mtp_ms = 0;
        u32 p99_mtp_ms = 0;
        u32 shed_rate = 0;
        u32 drop_rate = 0;
        u32 conceal_rate = 0;
        u32 frames_total = 0;
        u32 frames_shed = 0;
        u32 frames_dropped = 0;
        u32 frames_concealed = 0;
        u32 mtp_ms = 0;
        u32 qoe_frame_score = 0;
        u32 qoe_fleet_p10 = 0;
    };

    /** Refresh the live fleet-wide gauges at the end of one tick. */
    void updateTickTelemetry(i64 tick, f64 now_ms);

    ServerProfile profile_;
    ServerCapacity capacity_;
    FrameScheduler scheduler_;
    std::vector<Tenant> tenants_;
    f64 committed_ms_ = 0.0;
    int next_id_ = 0;
    i64 rejected_ = 0;
    obs::Telemetry *telemetry_ = nullptr;
    TelemetryIds tm_;

    /** Per-tick scratch (reused across ticks, cleared each call). */
    std::vector<SchedulerJob> jobs_;
    std::vector<SessionEngine::PendingFrame> pending_;
    std::vector<size_t> submitters_;
};

/**
 * Per-session fleet accounting shared by FleetServer::collectResult
 * and the cluster controller's merged result: summarizes one session
 * and folds its QoE and delivered-frame MTP samples into the
 * fleet-level accumulators (in the same order run() always used, so
 * a one-server cluster reproduces a standalone fleet bit for bit).
 */
FleetSessionStats summarizeFleetSession(
    int id, AdmissionOutcome outcome, int fps_divisor, Size lr_size,
    f64 estimated_cost_ms, const SessionResult &session, f64 run_s,
    SampleStats &mtp_out, SampleStats &qoe_out);

/**
 * The canonical heterogeneous tenant mix used by the fleet bench and
 * tests: session @p i rotates through games, client devices, designs
 * (every third session is the NEMO baseline), channels, stream
 * resolutions (720p/540p/360p) and bitrate targets, all accounting-
 * only (proxy rasterization) with NACK + AIMD resilience enabled.
 */
SessionConfig fleetMixSessionConfig(int i);

} // namespace gssr

#endif // GSSR_PIPELINE_FLEET_HH
