/**
 * @file
 * Shared-server frame scheduler for the multi-tenant fleet
 * (Sec. VI deployment discussion): N concurrent sessions time-share
 * the server's render/RoI/encode executors. Each 60 Hz tick every
 * active session submits one GPU job (its actual traced server-GPU
 * service time); the scheduler list-schedules the jobs onto the
 * profile's gpu_slots, carrying slot backlog across ticks, and
 * reports the per-frame queueing delay (the ServerQueue trace stage)
 * or a shed decision when the backlog exceeds the shed threshold.
 *
 * Two deterministic policies:
 *  - RoundRobin: rotating priority start (tick % n) — fair in the
 *    long run, but a session draws the end-of-queue slot 1/n of the
 *    time, so tail latency degrades with heterogeneous job costs.
 *  - Edf: earliest deadline first on *start* deadlines. A frame
 *    granted a uniform delivery slack must start service by
 *    tick start + slack - service time, so costlier jobs carry
 *    earlier deadlines and schedule first (Jackson's earliest-due-
 *    date rule, which minimizes maximum lateness). That keeps the
 *    slot wait off the sessions whose base MTP is already largest,
 *    tightening the p99 MTP tail under load.
 */

#ifndef GSSR_PIPELINE_SCHEDULER_HH
#define GSSR_PIPELINE_SCHEDULER_HH

#include <vector>

#include "device/profiles.hh"
#include "pipeline/session.hh"

namespace gssr
{

/** Scheduling policy for the shared server. */
enum class SchedulePolicy
{
    RoundRobin, ///< rotating priority start per tick
    Edf,        ///< earliest (deadline = tick + slack - cost) first
};

/** Policy name for tables / JSON. */
const char *schedulePolicyName(SchedulePolicy policy);

/**
 * Shared-server capacity model: how much render/RoI/encode service
 * time the fleet can commit per 60 Hz tick, and when a queued frame
 * is stale enough to shed instead of transmitting late.
 */
struct ServerCapacity
{
    /** Parallel render/encode executors (ServerProfile::gpu_slots). */
    int gpu_slots = 1;

    /** Scheduling tick length — the 60 FPS frame period (ms). */
    f64 frame_period_ms = 1000.0 / 60.0;

    /**
     * Uniform delivery slack granted to every frame (ms); a job's
     * EDF start deadline is tick start + slack - service time, so
     * under a uniform slack the costliest jobs schedule first.
     */
    f64 deadline_slack_ms = 8.0;

    /**
     * A frame whose slot wait exceeds this is shed server-side:
     * transmitting it would only displace fresher frames, so the
     * server drops it and lets the client conceal (ms).
     */
    f64 shed_queue_ms = 80.0;

    /**
     * Fraction of the raw slot-time budget admission control is
     * willing to commit — headroom for service-time jitter around
     * the admission estimate.
     */
    f64 admission_utilization = 0.9;

    /** Service-time budget admission control hands out per tick. */
    f64
    budgetMsPerTick() const
    {
        return f64(gpu_slots) * frame_period_ms *
               admission_utilization;
    }

    /** Capacity of @p profile at the default thresholds. */
    static ServerCapacity fromProfile(const ServerProfile &profile);
};

/** One session's GPU job for the current tick. */
struct SchedulerJob
{
    /** Submitting session (tie-break key; stable across ticks). */
    int session = 0;

    /** Actual server service time this frame (render+RoI+encode, ms). */
    f64 cost_ms = 0.0;
};

/**
 * Deterministic list scheduler over the shared GPU slots. Slot
 * backlog persists across ticks, so sustained oversubscription
 * builds queueing delay instead of resetting every frame — the
 * mechanism behind the rising p99 MTP in bench_fleet_scale.
 */
class FrameScheduler
{
  public:
    FrameScheduler(SchedulePolicy policy, const ServerCapacity &capacity);

    /**
     * Schedule one tick starting at @p now_ms. Returns one
     * ServerContention per input job, in input order: the slot wait
     * (queue_ms) for scheduled jobs, or shed = true for frames whose
     * wait would exceed the shed threshold.
     */
    std::vector<ServerContention>
    scheduleTick(f64 now_ms, const std::vector<SchedulerJob> &jobs);

    const ServerCapacity &capacity() const { return capacity_; }
    SchedulePolicy policy() const { return policy_; }

    /** Ticks scheduled so far. */
    i64 ticks() const { return tick_; }

    /** Frames shed across all ticks. */
    i64 framesShed() const { return shed_; }

    /** Largest end-of-tick slot backlog seen (ms past tick end). */
    f64 maxBacklogMs() const { return max_backlog_ms_; }

  private:
    SchedulePolicy policy_;
    ServerCapacity capacity_;

    /** Absolute time (ms) each slot finishes its queued work. */
    std::vector<f64> slot_free_ms_;

    i64 tick_ = 0;
    i64 shed_ = 0;
    f64 max_backlog_ms_ = 0.0;
};

} // namespace gssr

#endif // GSSR_PIPELINE_SCHEDULER_HH
