#include "pipeline/scheduler.hh"

#include <algorithm>
#include <numeric>

namespace gssr
{

const char *
schedulePolicyName(SchedulePolicy policy)
{
    switch (policy) {
      case SchedulePolicy::RoundRobin:
        return "round-robin";
      case SchedulePolicy::Edf:
        return "edf";
    }
    return "?";
}

ServerCapacity
ServerCapacity::fromProfile(const ServerProfile &profile)
{
    ServerCapacity capacity;
    capacity.gpu_slots = profile.gpu_slots;
    return capacity;
}

FrameScheduler::FrameScheduler(SchedulePolicy policy,
                               const ServerCapacity &capacity)
    : policy_(policy), capacity_(capacity)
{
    GSSR_ASSERT(capacity_.gpu_slots >= 1,
                "scheduler needs at least one GPU slot");
    slot_free_ms_.assign(size_t(capacity_.gpu_slots), 0.0);
}

std::vector<ServerContention>
FrameScheduler::scheduleTick(f64 now_ms,
                             const std::vector<SchedulerJob> &jobs)
{
    std::vector<ServerContention> out(jobs.size());

    std::vector<size_t> order(jobs.size());
    std::iota(order.begin(), order.end(), size_t(0));
    if (!jobs.empty()) {
        if (policy_ == SchedulePolicy::RoundRobin) {
            // Rotating priority start: the session that goes first
            // advances by one every tick.
            std::rotate(order.begin(),
                        order.begin() + size_t(tick_ % i64(jobs.size())),
                        order.end());
        } else {
            // Earliest *start* deadline first: a job must start by
            // (now + slack - cost) to complete within its delivery
            // slack, so the costliest jobs have the earliest
            // deadlines and go first (Jackson's rule — minimizes the
            // maximum lateness, i.e. the MTP tail). Session id
            // breaks ties deterministically.
            std::stable_sort(
                order.begin(), order.end(),
                [&](size_t a, size_t b) {
                    const f64 da = capacity_.deadline_slack_ms -
                                   jobs[a].cost_ms;
                    const f64 db = capacity_.deadline_slack_ms -
                                   jobs[b].cost_ms;
                    if (da != db)
                        return da < db;
                    return jobs[a].session < jobs[b].session;
                });
        }
    }

    // List-schedule in priority order: each job takes the slot that
    // frees up first. A job whose wait would exceed the shed
    // threshold is dropped without consuming slot time.
    for (size_t idx : order) {
        size_t best = 0;
        for (size_t s = 1; s < slot_free_ms_.size(); ++s) {
            if (slot_free_ms_[s] < slot_free_ms_[best])
                best = s;
        }
        const f64 start = std::max(now_ms, slot_free_ms_[best]);
        const f64 queue_ms = start - now_ms;
        if (queue_ms > capacity_.shed_queue_ms) {
            out[idx].shed = true;
            shed_ += 1;
            continue;
        }
        out[idx].queue_ms = queue_ms;
        slot_free_ms_[best] = start + jobs[idx].cost_ms;
    }

    const f64 tick_end = now_ms + capacity_.frame_period_ms;
    for (f64 free_ms : slot_free_ms_) {
        max_backlog_ms_ =
            std::max(max_backlog_ms_, free_ms - tick_end);
    }
    tick_ += 1;
    return out;
}

} // namespace gssr
