/**
 * @file
 * Per-frame latency/energy accounting. Every pipeline stage a frame
 * passes through appends a StageRecord{stage, device, latency,
 * energy}; the benchmark harness aggregates these traces into the
 * paper's figures (FPS, MTP breakdown, energy breakdown).
 */

#ifndef GSSR_PIPELINE_TRACE_HH
#define GSSR_PIPELINE_TRACE_HH

#include <string>
#include <vector>

#include "frame/frame.hh"

namespace gssr
{

/** Game-streaming pipeline stages (Fig. 1a + Fig. 6). */
enum class Stage
{
    InputCapture,
    GameLogic,
    Render,
    RoiDetect,
    Encode,
    ServerQueue, ///< shared-server contention wait (fleet scheduler)
    Network,
    Decode,
    Upscale,
    Merge,
    Conceal, ///< loss concealment (hold / motion extrapolation)
    Display,
};

/** Compute resource a stage ran on. */
enum class Resource
{
    ServerCpu,
    ServerGpu,
    NetworkLink,
    ClientCpu,
    ClientGpu,
    ClientNpu,
    ClientHwDecoder,
    ClientDisplay,
};

/** Stage name for tables. */
const char *stageName(Stage stage);

/** Resource name for tables. */
const char *resourceName(Resource resource);

/**
 * Loss-recovery events attached to a frame's trace — the
 * observability hooks of the resilience subsystem (fault injection,
 * NACK/intra-refresh recovery, concealment, AIMD backoff).
 */
enum class RecoveryEvent
{
    FrameDropped,   ///< lost in the network
    DeltaDiscarded, ///< arrived, but references lost decoder state
    Concealed,      ///< output substituted by the concealer
    NackSent,       ///< client requested an intra refresh
    IntraRefresh,   ///< server answered a NACK with a forced intra
    BitrateBackoff, ///< AIMD multiplicative decrease applied
    ServerShed,     ///< frame shed by the oversubscribed fleet server
    DeadlineMiss,   ///< client processing blew the frame budget
    LadderStepDown, ///< degradation ladder dropped one tier
    LadderStepUp,   ///< degradation ladder recovered one tier
    NpuFault,       ///< NPU invocation failed (watchdog timeout)
    FrameHeld,      ///< hold-tier: output substituted, not lost
    FecRecovered,   ///< packet loss repaired by FEC parity (zero RTT)
    SliceConcealed, ///< one lost slice band concealed (per band)
};

/** Recovery event name for tables. */
const char *recoveryEventName(RecoveryEvent event);

/** One executed stage. */
struct StageRecord
{
    Stage stage;
    Resource resource;
    f64 latency_ms = 0.0;
    f64 energy_mj = 0.0;
};

/** Complete trace of one frame through the pipeline. */
struct FrameTrace
{
    i64 frame_index = 0;
    FrameType type = FrameType::Reference;
    bool dropped = false;         ///< lost in the network
    bool discarded = false;       ///< delivered but undecodable
    bool concealed = false;       ///< displayed a concealed frame
    size_t encoded_bytes = 0;
    std::vector<StageRecord> records;
    std::vector<RecoveryEvent> events;

    /** Append a fully built stage record (the primitive StageScope
     *  and the client-trace splice use). */
    void pushRecord(const StageRecord &record)
    {
        records.push_back(record);
    }

    /** Append a recovery event. */
    void addEvent(RecoveryEvent event) { events.push_back(event); }

    /** True when @p event was recorded on this frame. */
    bool
    hasEvent(RecoveryEvent event) const
    {
        for (RecoveryEvent e : events)
            if (e == event)
                return true;
        return false;
    }

    /** Motion-to-photon latency: sum of all stage latencies. */
    f64
    mtpLatencyMs() const
    {
        f64 total = 0.0;
        for (const auto &r : records)
            total += r.latency_ms;
        return total;
    }

    /** Total latency of one stage (0 when absent). */
    f64
    stageLatencyMs(Stage stage) const
    {
        f64 total = 0.0;
        for (const auto &r : records)
            if (r.stage == stage)
                total += r.latency_ms;
        return total;
    }

    /** Total energy of one stage (0 when absent). */
    f64
    stageEnergyMj(Stage stage) const
    {
        f64 total = 0.0;
        for (const auto &r : records)
            if (r.stage == stage)
                total += r.energy_mj;
        return total;
    }

    /** Energy drawn on the client device (all client resources). */
    f64
    clientEnergyMj() const
    {
        f64 total = 0.0;
        for (const auto &r : records) {
            switch (r.resource) {
              case Resource::ClientCpu:
              case Resource::ClientGpu:
              case Resource::ClientNpu:
              case Resource::ClientHwDecoder:
              case Resource::ClientDisplay:
                total += r.energy_mj;
                break;
              default:
                break;
            }
        }
        return total;
    }

    /**
     * The client-side work that limits pipelined throughput. Stages
     * on *different* resources (HW decoder, NPU, GPU) overlap across
     * consecutive frames, but stages serialized on the *same*
     * resource (NEMO's CPU decode + CPU upscale) add up. Output FPS
     * is 1000 / this.
     */
    f64
    clientBottleneckMs() const
    {
        f64 per_resource[8] = {};
        for (const auto &r : records) {
            if (r.stage == Stage::Decode || r.stage == Stage::Upscale ||
                r.stage == Stage::Merge) {
                per_resource[size_t(r.resource)] += r.latency_ms;
            }
        }
        f64 bottleneck = 0.0;
        for (f64 v : per_resource)
            bottleneck = std::max(bottleneck, v);
        return bottleneck;
    }
};

/**
 * Scoped stage accounting: declares *which* (stage, resource) a code
 * region charges up front and appends the StageRecord when the scope
 * closes, so a stage cannot be half-recorded or recorded twice and
 * call sites stop hand-assembling records. Latency/energy accumulate
 * across multiple calls within the scope (e.g. the parallel
 * NPU-plus-GPU upscale charges both devices into one record).
 *
 *   {
 *       StageScope scope(trace, Stage::Render, Resource::ServerGpu);
 *       scope.latencyMs(profile.renderLatencyMs(area));
 *   } // record appended here, in execution order
 *
 * A temporary works for single-expression sites:
 *
 *   StageScope(trace, Stage::Encode, Resource::ServerGpu)
 *       .latencyMs(encode_ms);
 */
class StageScope
{
  public:
    StageScope(FrameTrace &trace, Stage stage, Resource resource)
        : trace_(trace)
    {
        record_.stage = stage;
        record_.resource = resource;
    }

    StageScope(const StageScope &) = delete;
    StageScope &operator=(const StageScope &) = delete;

    ~StageScope() { trace_.pushRecord(record_); }

    /** Accumulate stage latency (ms). */
    StageScope &
    latencyMs(f64 ms)
    {
        record_.latency_ms += ms;
        return *this;
    }

    /** Accumulate stage energy (mJ). */
    StageScope &
    energyMj(f64 mj)
    {
        record_.energy_mj += mj;
        return *this;
    }

  private:
    FrameTrace &trace_;
    StageRecord record_;
};

} // namespace gssr

#endif // GSSR_PIPELINE_TRACE_HH
