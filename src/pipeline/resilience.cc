#include "pipeline/resilience.hh"

#include <algorithm>
#include <cstdlib>

#include "common/mathutil.hh"
#include "frame/downsample.hh"

namespace gssr
{

namespace
{

/** Downsampling factor of the global-motion search plane. */
constexpr int kShiftScale = 8;

/** Search radius on the downsampled plane (=> +-32 px full scale). */
constexpr int kShiftRange = 4;

/** Copy @p src shifted by (dx, dy), replicating edge pixels. */
ColorImage
shiftImage(const ColorImage &src, int dx, int dy)
{
    const int w = src.width();
    const int h = src.height();
    ColorImage out(w, h);
    for (int c = 0; c < 3; ++c) {
        const PlaneU8 &in = src.channel(c);
        PlaneU8 &dst = out.channel(c);
        for (int y = 0; y < h; ++y) {
            int sy = clamp(y - dy, 0, h - 1);
            for (int x = 0; x < w; ++x) {
                int sx = clamp(x - dx, 0, w - 1);
                dst.at(x, y) = in.at(sx, sy);
            }
        }
    }
    return out;
}

/** SAD between two planes with @p b offset by (dx, dy). */
i64
shiftedSad(const PlaneU8 &a, const PlaneU8 &b, int dx, int dy)
{
    i64 sad = 0;
    const int w = a.width();
    const int h = a.height();
    for (int y = 0; y < h; ++y) {
        int sy = clamp(y - dy, 0, h - 1);
        for (int x = 0; x < w; ++x) {
            int sx = clamp(x - dx, 0, w - 1);
            sad += std::abs(int(a.at(x, y)) - int(b.at(sx, sy)));
        }
    }
    return sad;
}

} // namespace

const char *
concealmentModeName(ConcealmentMode mode)
{
    return mode == ConcealmentMode::Hold ? "hold"
                                         : "motion-extrapolate";
}

void
FeedbackPath::sendNack(i64 lost_frame, f64 now_ms, f64 delay_ms)
{
    GSSR_ASSERT(delay_ms >= 0.0, "feedback delay must be >= 0");
    NackPacket nack;
    nack.lost_frame = lost_frame;
    nack.sent_ms = now_ms;
    nack.arrive_ms = now_ms + delay_ms;
    in_flight_.push_back(nack);
    sent_ += 1;
}

std::vector<NackPacket>
FeedbackPath::drainArrived(f64 now_ms)
{
    std::vector<NackPacket> arrived;
    auto it = std::partition(
        in_flight_.begin(), in_flight_.end(),
        [&](const NackPacket &n) { return n.arrive_ms > now_ms; });
    arrived.assign(it, in_flight_.end());
    in_flight_.erase(it, in_flight_.end());
    std::sort(arrived.begin(), arrived.end(),
              [](const NackPacket &a, const NackPacket &b) {
                  return a.arrive_ms < b.arrive_ms;
              });
    return arrived;
}

void
estimateGlobalShift(const ColorImage &from, const ColorImage &to,
                    int &dx, int &dy)
{
    GSSR_ASSERT(from.size() == to.size(),
                "global shift needs equally sized frames");
    PlaneU8 a = boxDownsample(toGrayscale(to), kShiftScale);
    PlaneU8 b = boxDownsample(toGrayscale(from), kShiftScale);
    i64 best = -1;
    int best_dx = 0, best_dy = 0;
    for (int sy = -kShiftRange; sy <= kShiftRange; ++sy) {
        for (int sx = -kShiftRange; sx <= kShiftRange; ++sx) {
            i64 sad = shiftedSad(a, b, sx, sy);
            if (best < 0 || sad < best) {
                best = sad;
                best_dx = sx;
                best_dy = sy;
            }
        }
    }
    dx = best_dx * kShiftScale;
    dy = best_dy * kShiftScale;
}

void
Concealer::onGoodFrame(const ColorImage &hr)
{
    prev_ = std::move(last_);
    last_ = hr;
}

ColorImage
Concealer::conceal(Size hr_size)
{
    if (last_.empty()) {
        // Loss before the first good frame: nothing to hold, the
        // display shows black.
        return ColorImage(hr_size);
    }
    if (mode_ == ConcealmentMode::Hold || prev_.empty() ||
        prev_.size() != last_.size()) {
        return last_;
    }
    int dx = 0, dy = 0;
    estimateGlobalShift(prev_, last_, dx, dy);
    ColorImage extrapolated = shiftImage(last_, dx, dy);
    // The extrapolated frame becomes the new base, so consecutive
    // concealed frames keep tracking the estimated camera motion.
    prev_ = std::move(last_);
    last_ = extrapolated;
    return last_;
}

void
addConcealStage(FrameTrace &trace, const DeviceProfile &device,
                Size hr_size, ConcealmentMode mode)
{
    // Frame hold is a GPU re-blit of the HR framebuffer; motion
    // extrapolation adds the coarse SAD search on the 1/8-scale luma
    // plus the shifted copy.
    i64 ops = i64(hr_size.area());
    if (mode == ConcealmentMode::MotionExtrapolate) {
        i64 search_plane =
            i64(hr_size.area()) / (kShiftScale * kShiftScale);
        i64 candidates = (2 * kShiftRange + 1) * (2 * kShiftRange + 1);
        ops += search_plane * candidates + i64(hr_size.area());
    }
    f64 gpu_ms = device.gpu.latencyMs(ops);
    StageScope(trace, Stage::Conceal, Resource::ClientGpu)
        .latencyMs(gpu_ms)
        .energyMj(device.gpu.energyMj(gpu_ms));
}

} // namespace gssr
