/**
 * @file
 * Frame-deadline watchdog + adaptive degradation ladder for the
 * GameStreamSR client. The watchdog compares each frame's client
 * processing cost (the pipelined decode/upscale/merge bottleneck)
 * against the frame budget; sustained misses step the client down a
 * quality ladder, and sustained headroom — both in time *and* in
 * temperature — steps it back up, one tier at a time:
 *
 *   tier 0  hybrid NPU-RoI SR + GPU bilinear     (the paper design)
 *   tier 1  reduced SR precision (NAWQ hybrid)   (2-4x less NPU time)
 *   tier 2  shrunken RoI SR (roi_shrink x edge)  (less NPU work/heat)
 *   tier 3  GPU bilinear only                    (NPU idle, cools)
 *   tier 4  frame hold                           (decode only)
 *
 * Tier 1 trades *precision before resolution* (the NAWQ-SR axis):
 * the SR output stays full-RoI, full-resolution, but the NPU runs
 * the quantized hybrid-int8 schedule — the cheapest degradation the
 * user can perceive. Tier 2 keeps the cheap precision and starts
 * shrinking the RoI; see degradedPrecision().
 *
 * Hysteresis is asymmetric by design: stepping down takes
 * down_after_misses consecutive misses (fast — a hot device must
 * shed load now), stepping up takes up_after_clean consecutive
 * clean frames *and* the last frame under up_margin of the budget
 * *and* min_headroom_c of thermal headroom (slow — re-engaging the
 * NPU on a device at its throttle knee would oscillate).
 *
 * A throttled client also requests less bitrate from the server:
 * bitrateScale() shrinks the encoder target by bitrate_step per
 * tier, closing the server<->client control loop (a device that
 * cannot upscale full quality should not be streamed full quality).
 *
 * The ladder is a strict no-op at tier 0: it only observes the trace
 * and emits identical conditions, so a fault-free session with the
 * ladder enabled is bit-identical to one without it (pinned by
 * test_golden_trace).
 */

#ifndef GSSR_PIPELINE_DEGRADE_HH
#define GSSR_PIPELINE_DEGRADE_HH

#include "common/types.hh"

namespace gssr
{

/** Degradation-ladder policy. */
struct LadderConfig
{
    /** Master switch; disabled = the client never leaves tier 0. */
    bool enabled = true;

    /** Per-frame client processing budget (ms). */
    f64 budget_ms = 1000.0 / 60.0;

    /** Consecutive deadline misses before stepping down a tier. */
    int down_after_misses = 2;

    /** Consecutive clean frames before stepping up a tier. */
    int up_after_clean = 48;

    /** Step up only when the last frame cost < budget * up_margin. */
    f64 up_margin = 0.75;

    /** Step up only with at least this much thermal headroom (°C).
     *  Ignored when the session has no stress model. */
    f64 min_headroom_c = 2.0;

    /** Tier-2 RoI edge scale in (0, 1]. */
    f64 roi_shrink = 0.6;

    /** Encoder-bitrate scale per tier (bitrate_step ^ tier). */
    f64 bitrate_step = 0.75;
};

/** What the ladder did with one observed frame. */
enum class LadderTransition
{
    None,
    StepDown,
    StepUp,
};

/**
 * A recommended tier move (the advisor view of the ladder). In the
 * unified control plane the ladder no longer moves its own tier: it
 * emits advice and the QoeController decides whether the tier step is
 * the cheapest way to buy back QoE this tick.
 */
struct LadderAdvice
{
    LadderTransition transition = LadderTransition::None;

    /** How overloaded the client is, in [0, 1] (StepDown only). */
    f64 urgency = 0.0;
};

/** Deadline watchdog + tier state machine. */
class DegradationLadder
{
  public:
    static constexpr int kTierPrecision = 1;
    static constexpr int kTierRoiShrink = 2;
    static constexpr int kTierGpuOnly = 3;
    static constexpr int kTierHold = 4;
    static constexpr int kTierCount = 5;

    explicit DegradationLadder(const LadderConfig &config);

    /** Tier the *next* frame should run at. */
    int tier() const { return tier_; }

    /** Encoder-bitrate scale for the current tier (1.0 at tier 0). */
    f64 bitrateScale() const;

    /** Tier-2 RoI shrink factor (1.0 at every other tier). */
    f64 roiShrink() const;

    /** True when @p busy_ms blows the configured frame budget. */
    bool isMiss(f64 busy_ms) const
    {
        return busy_ms > config_.budget_ms;
    }

    /**
     * Observe one completed frame's client processing cost and the
     * device's thermal headroom (+inf when unstressed); returns the
     * transition applied to the tier for subsequent frames.
     * Equivalent to adviseFrame() + applying the recommendation (the
     * legacy independent-loop behavior, bit-identical to before the
     * advisor split).
     */
    LadderTransition onFrame(f64 busy_ms, f64 headroom_c);

    /**
     * Advisor variant of onFrame: updates the hysteresis counters and
     * recommends a transition but leaves the tier untouched — the
     * unified control plane applies (or rejects) the move itself.
     */
    LadderAdvice adviseFrame(f64 busy_ms, f64 headroom_c);

    /** Move to @p tier (clamped) and restart the hysteresis runs —
     *  how the control plane reflects an applied tier action back
     *  into the advisor's state machine. */
    void setTier(int tier);

    const LadderConfig &config() const { return config_; }

  private:
    LadderConfig config_;
    int tier_ = 0;
    int miss_run_ = 0;
    int clean_run_ = 0;
};

/**
 * SR inference precision the client should run at @p tier, given the
 * session's configured base precision. Tier 0 is the base unchanged
 * (the ladder stays a strict no-op); tier 1 steps one notch down the
 * precision axis (Fp32/Int16 -> HybridInt8, HybridInt8 -> Int8);
 * tiers 2+ run Int8 everywhere — by tier 3 the NPU is idle anyway,
 * so the value only matters if the ladder steps back up through it.
 */
Precision degradedPrecision(Precision base, int tier);

} // namespace gssr

#endif // GSSR_PIPELINE_DEGRADE_HH
