#include "pipeline/session.hh"

#include <algorithm>
#include <cmath>

#include "codec/codec.hh"
#include "common/fingerprint.hh"
#include "common/mathutil.hh"
#include "metrics/psnr.hh"
#include "net/packetizer.hh"
#include "roi/foveal.hh"

namespace gssr
{

const char *
designName(DesignKind design)
{
    switch (design) {
      case DesignKind::GameStreamSR:
        return "gamestreamsr";
      case DesignKind::Nemo:
        return "nemo";
      case DesignKind::SrDecoder:
        return "sr-decoder";
    }
    return "?";
}

namespace
{

/** Session frame cadence (the paper's 60 FPS operating point). */
constexpr f64 kFramePeriodMs = 1000.0 / 60.0;

std::unique_ptr<StreamingClient>
makeClient(DesignKind design, const ClientConfig &config)
{
    switch (design) {
      case DesignKind::GameStreamSR:
        return std::make_unique<GssrClient>(config);
      case DesignKind::Nemo:
        return std::make_unique<NemoClient>(config);
      case DesignKind::SrDecoder:
        return std::make_unique<SrDecoderClient>(config);
    }
    panic("unknown design");
}

/**
 * Check each slice byte range (and the frame header) against the
 * merged valid payload ranges a partial wire delivery produced:
 * fills @p present and returns the intact slice count, or 0 when the
 * header or slice table bytes themselves were lost (an undecodable
 * frame regardless of surviving slice data).
 */
int
coveredSlices(const SliceLayout &layout,
              const std::vector<std::pair<size_t, size_t>> &valid,
              std::vector<bool> &present)
{
    auto covered = [&valid](size_t begin, size_t end) {
        for (const auto &[a, b] : valid)
            if (a <= begin && end <= b)
                return true;
        return false;
    };
    if (!covered(0, layout.header_bytes))
        return 0;
    present.assign(layout.ranges.size(), false);
    int intact = 0;
    for (size_t s = 0; s < layout.ranges.size(); ++s) {
        if (covered(layout.ranges[s].first, layout.ranges[s].second)) {
            present[s] = true;
            intact += 1;
        }
    }
    return intact;
}

/**
 * Stand-in slice layout for accounting-only sessions, whose traces
 * carry a modeled stream size rather than real payload bytes: bands
 * from the configured slice count with byte lengths proportional to
 * their rows, behind the sliced header/table bytes the real encoder
 * would emit (codec/codec.cc: 7-byte header + 8 bytes per table
 * entry).
 */
SliceLayout
syntheticSliceLayout(size_t stream_bytes, int height,
                     const CodecConfig &codec)
{
    SliceLayout layout;
    if (codec.slices <= 1)
        return layout;
    auto bands = sliceBands(height, codec.slices, codec.mv_block_size);
    const size_t header = 7 + 8 * bands.size();
    if (stream_bytes < header + bands.size())
        return layout; // too small to carve: treat as monolithic
    layout.ok = true;
    layout.sliced = true;
    layout.header_bytes = header;
    const u64 data = stream_bytes - header;
    u64 rows_total = 0;
    for (auto [r0, r1] : bands)
        rows_total += u64(r1 - r0);
    u64 rows_done = 0;
    size_t off = header;
    for (auto [r0, r1] : bands) {
        rows_done += u64(r1 - r0);
        size_t end = header + size_t(data * rows_done / rows_total);
        layout.ranges.emplace_back(off, end);
        off = end;
    }
    return layout;
}

} // namespace

Size
negotiatedRoiWindow(const DeviceProfile &device, int scale_factor,
                    Size lr_size)
{
    // Probe with the deployed SR model (EDSR cost model); the
    // quality net inside the upscaler is irrelevant for sizing, and
    // sizing only reads the pure cost model (macs()), so one shared
    // probe per scale serves every session — constructing a fresh
    // EDSR cost model here would re-run its weight init per engine,
    // which dominates setup time for large fleets.
    GSSR_ASSERT(scale_factor >= 2 && scale_factor <= 4,
                "unsupported SR scale factor");
    static const std::shared_ptr<const CompactSrNet> quality_net =
        std::make_shared<const CompactSrNet>();
    static const DnnUpscaler probes[3] = {DnnUpscaler(quality_net, 2),
                                          DnnUpscaler(quality_net, 3),
                                          DnnUpscaler(quality_net, 4)};
    return chooseRoiWindow(FovealParams{}, device.display_ppi,
                           device.npu, probes[scale_factor - 2],
                           scale_factor, lr_size);
}

f64
SessionResult::meanMtpMs(FrameType type) const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        if (t.type == type && !t.dropped && !t.concealed) {
            total += t.mtpLatencyMs();
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::meanStageMs(Stage stage, FrameType type) const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        if (t.type == type && !t.dropped && !t.concealed) {
            total += t.stageLatencyMs(stage);
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::meanBottleneckMs(FrameType type) const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        if (t.type == type && !t.dropped && !t.concealed) {
            total += t.clientBottleneckMs();
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::outputFps(FrameType type) const
{
    f64 bottleneck = meanBottleneckMs(type);
    return bottleneck > 0.0 ? 1000.0 / bottleneck : 0.0;
}

f64
SessionResult::meanClientEnergyMj() const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        total += t.clientEnergyMj();
        n += 1;
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::overallClientEnergyMj(f64 base_power_w) const
{
    f64 processing = 0.0;
    for (const auto &t : traces)
        processing += t.clientEnergyMj();
    f64 session_ms = f64(traces.size()) * 1000.0 / 60.0;
    return processing + base_power_w * session_ms;
}

f64
SessionResult::meanPsnrDb() const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &q : quality) {
        total += q.psnr_db;
        n += 1;
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::meanQoe() const
{
    if (qoe_frames.empty())
        return 0.0;
    f64 total = 0.0;
    for (f64 s : qoe_frames)
        total += s;
    return total / f64(qoe_frames.size());
}

f64
SessionResult::qoePercentile(f64 p) const
{
    SampleStats stats;
    for (f64 s : qoe_frames)
        stats.add(s);
    return stats.percentile(p);
}

f64
SessionResult::meanLpips() const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &q : quality) {
        if (q.lpips >= 0.0) {
            total += q.lpips;
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

ServerConfig
SessionEngine::serverConfigFor(const SessionConfig &config)
{
    ServerConfig server_config;
    server_config.lr_size = config.lr_size;
    server_config.scale_factor = config.scale_factor;
    server_config.codec = config.codec;
    server_config.enable_roi =
        config.design != DesignKind::Nemo; // NEMO has no RoI phase
    server_config.target_bitrate_mbps = config.target_bitrate_mbps;
    if (config.server_proxy_size.area() > 0) {
        GSSR_ASSERT(!config.compute_pixels,
                    "server proxy mode is accounting-only");
        server_config.proxy_size = config.server_proxy_size;
    }
    if (!config.compute_pixels) {
        // Accounting runs never look at pixels; skip the
        // supersampled render.
        server_config.supersample = 1;
    } else if (config.measure_quality &&
               config.scale_factor == server_config.supersample) {
        // The pre-downsample render doubles as the ground truth.
        server_config.keep_hr_render = true;
    }
    return server_config;
}

LadderConfig
SessionEngine::ladderConfigFor(const SessionConfig &config)
{
    LadderConfig ladder = config.ladder;
    // Unified mode recovers eagerly: the controller's own hysteresis
    // and delta-QoE scoring guard against oscillation, so the
    // advisor can recommend up-steps much sooner than the legacy
    // free-running ladder dared to.
    if (config.qoe.enabled)
        ladder.up_after_clean = config.qoe.ladder_up_after_clean;
    return ladder;
}

Size
SessionEngine::roiWindowFor(const SessionConfig &config)
{
    // Negotiate the RoI window at the paper's reference resolution
    // (720p), then scale it with the configured stream width so a
    // reduced-resolution session keeps the same RoI area *fraction*
    // (~9.8 % of the frame for a 300 px window on 720p).
    Size reference_window = negotiatedRoiWindow(
        config.device, config.scale_factor, {1280, 720});
    int edge = int(std::lround(f64(reference_window.width) *
                               config.lr_size.width / 1280.0));
    edge = clamp(edge, 16,
                 std::min(config.lr_size.width,
                          config.lr_size.height));
    return Size{edge, edge};
}

SessionEngine::SessionEngine(const SessionConfig &config)
    : config_(config), world_(config.game, config.world_seed),
      server_(world_, serverConfigFor(config), config.server_profile,
              roiWindowFor(config)),
      channel_(config.channel, config.channel_seed,
               config.fault_scenario),
      concealer_(config.resilience.concealment),
      ladder_(ladderConfigFor(config)),
      qoe_predictor_(config.qoe.predictor),
      hr_size_{config.lr_size.width * config.scale_factor,
               config.lr_size.height * config.scale_factor}
{
    // Device stress: only instantiated when asked for (or when a
    // fault scenario implies it) — an unstressed session must not
    // even construct the model, so the fixed-operating-point paths
    // stay byte-for-byte untouched.
    if (config_.device_stress.enabled || !config_.device_faults.empty())
        stress_.emplace(config_.device_stress, config_.device_faults,
                        config_.device_seed);

    // The ladder's tier semantics (RoI shrink, NPU bypass, frame
    // hold) are defined for the hybrid GameStreamSR client; the
    // baseline designs run it disabled.
    ladder_active_ = config_.ladder.enabled &&
                     config_.design == DesignKind::GameStreamSR;

    ClientConfig client_config;
    client_config.device = config_.device;
    client_config.lr_size = config_.lr_size;
    client_config.scale_factor = config_.scale_factor;
    client_config.codec = config_.codec;
    client_config.compute_pixels = config_.compute_pixels;
    client_config.sr_net = config_.sr_net;
    client_config.sr_precision = config_.sr_precision;
    client_ = makeClient(config_.design, client_config);

    const ResilienceConfig &res = config_.resilience;
    if (res.aimd && config_.target_bitrate_mbps > 0.0) {
        aimd_.emplace(res.aimd_config, config_.target_bitrate_mbps);
    }

    // Unified QoE control plane: seed the knob state from the
    // session config — from here on the controller is the only
    // writer of these knobs; AIMD and the ladder merely advise.
    if (config_.qoe.enabled) {
        qoe::KnobState knobs;
        knobs.lr_size = config_.lr_size;
        knobs.target_mbps = config_.target_bitrate_mbps;
        knobs.sr_precision = config_.sr_precision;
        qoe_.emplace(config_.qoe, knobs);
    }

    if (config_.telemetry) {
        // Register once, cache the dense ids: the per-frame export
        // path below only does indexed adds/observes. Sessions run
        // under one FleetServer share the handle, so these "fleet.*"
        // instruments aggregate across all tenants automatically.
        obs::MetricsRegistry &reg = config_.telemetry->registry();
        tm_.frames_total = reg.counter("fleet.frames_total");
        tm_.frames_delivered = reg.counter("fleet.frames_delivered");
        tm_.frames_dropped = reg.counter("fleet.frames_dropped");
        tm_.frames_shed = reg.counter("fleet.frames_shed");
        tm_.frames_discarded = reg.counter("fleet.frames_discarded");
        tm_.frames_concealed = reg.counter("fleet.frames_concealed");
        tm_.nacks_sent = reg.counter("fleet.nacks_sent");
        tm_.intra_refreshes = reg.counter("fleet.intra_refreshes");
        tm_.aimd_backoffs = reg.counter("fleet.aimd_backoffs");
        tm_.fec_recovered = reg.counter("net.fec.recovered");
        tm_.slice_concealed = reg.counter("codec.slice.concealed");
        tm_.pkt_sent = reg.counter("net.pkt.sent");
        tm_.pkt_lost = reg.counter("net.pkt.lost");
        tm_.stream_bytes = reg.counter("fleet.stream_bytes");
        tm_.mtp_ms = reg.histogram(
            "fleet.mtp_ms", obs::HistogramLayout::linear(0, 250, 500));
        tm_.queue_ms = reg.histogram(
            "fleet.queue_ms", obs::HistogramLayout::linear(0, 100, 200));
        tm_.deadline_misses = reg.counter("client.deadline_misses");
        tm_.ladder_step_downs =
            reg.counter("client.ladder_step_downs");
        tm_.ladder_step_ups = reg.counter("client.ladder_step_ups");
        tm_.npu_faults = reg.counter("client.npu_faults");
        tm_.frames_held = reg.counter("client.frames_held");
        tm_.tier_gauge = reg.gauge("client.tier");
        tm_.temperature_gauge = reg.gauge("client.temperature_c");
        tm_.headroom_gauge = reg.gauge("client.thermal_headroom_c");
        tm_.qoe_score = reg.gauge("qoe.score");
        tm_.qoe_frame_score = reg.histogram(
            "qoe.frame_score",
            obs::HistogramLayout::linear(0.0, 100.0, 100));
        channel_.setTelemetry(config_.telemetry,
                              config_.telemetry_track);
        if (aimd_)
            aimd_->setTelemetry(config_.telemetry,
                                config_.telemetry_track);
        if (qoe_)
            qoe_->setTelemetry(config_.telemetry,
                               config_.telemetry_track);
    }
}

SessionEngine::SessionEngine(const SessionConfig &config,
                             SessionHandoffState &&handoff)
    : SessionEngine(config)
{
    // Stream position always survives — a migrated session keeps its
    // scene time, frame numbering and collected result even when the
    // control state is dropped (cold re-admission).
    frames_run_ = handoff.frames_run;
    measured_ = handoff.measured;
    result_ = std::move(handoff.result);
    intra_refresh_base_ = handoff.intra_refreshes;
    server_.seekToFrame(handoff.server_frame_index);

    if (!handoff.cold) {
        mean_frame_bytes_ = handoff.mean_frame_bytes;
        qoe_conceal_ewma_ = handoff.qoe_conceal_ewma;
        applied_ladder_scale_ = handoff.applied_ladder_scale;
        last_nack_ms_ = handoff.last_nack_ms;
        stale_since_ms_ = handoff.stale_since_ms;
        stale_run_ = handoff.stale_run;
        if (ladder_active_)
            ladder_.setTier(handoff.ladder_tier);
        if (aimd_ && handoff.aimd_target_mbps > 0.0)
            aimd_.emplace(config_.resilience.aimd_config,
                          handoff.aimd_target_mbps);
        if (qoe_ && handoff.has_knobs)
            qoe_->restoreKnobs(handoff.knobs, handoff.migrated_at_ms);
    }

    // The migration splice is the PR 3 recovery path: the client's
    // reference chain broke when the source server vanished, and the
    // destination's first frame must be an intra to re-seed it.
    tracker_.onFrameLost();
    server_.requestIntraRefresh();
}

SessionHandoffState
SessionEngine::exportHandoff()
{
    SessionHandoffState handoff;
    handoff.frames_run = frames_run_;
    handoff.server_frame_index = server_.frameCount();
    handoff.intra_refreshes =
        intra_refresh_base_ + server_.intraRefreshCount();
    handoff.mean_frame_bytes = mean_frame_bytes_;
    handoff.qoe_conceal_ewma = qoe_conceal_ewma_;
    handoff.applied_ladder_scale = applied_ladder_scale_;
    handoff.last_nack_ms = last_nack_ms_;
    handoff.stale_since_ms = stale_since_ms_;
    handoff.stale_run = stale_run_;
    handoff.measured = measured_;
    handoff.ladder_tier = ladder_.tier();
    if (aimd_)
        handoff.aimd_target_mbps = aimd_->targetMbps();
    if (qoe_) {
        handoff.has_knobs = true;
        handoff.knobs = qoe_->knobs();
    }
    handoff.result = std::move(result_);
    return handoff;
}

SessionEngine::PendingFrame
SessionEngine::beginFrame(f64 now_ms)
{
    // Feedback-path NACKs that reached the server by now force an
    // intra refresh into the next encoded frame.
    if (config_.resilience.nack &&
        !feedback_.drainArrived(now_ms).empty())
        server_.requestIntraRefresh();

    // Encoder retargeting. Unified mode: the controller's knob state
    // is the single source of truth — nothing else writes the target.
    //
    // Legacy mode: the AIMD loop retargets the encoder's rate
    // controller; a degraded client additionally requests
    // bitrate_step^tier of the target — the server should not stream
    // full quality at a device that cannot upscale it. At tier 0 the
    // scale is exactly 1.0, so the fixed-target no-op path below is
    // bit-identical to a ladder-free session. Ladder scale
    // *decreases* are gated behind the AIMD refractory window (and
    // arm it when they do apply), so one overload episode produces
    // one bitrate cut, not a ladder-cut x AIMD-backoff double
    // penalty.
    if (server_.rateControlled()) {
        if (qoe_) {
            server_.applyKnobs(qoe_->knobs());
        } else {
            f64 target = aimd_ ? aimd_->targetMbps()
                               : config_.target_bitrate_mbps;
            f64 want_scale =
                ladder_active_ ? ladder_.bitrateScale() : 1.0;
            f64 scale = qoe::gatedLadderScale(
                applied_ladder_scale_, want_scale,
                aimd_ && aimd_->inRefractory(now_ms));
            if (scale < applied_ladder_scale_ && aimd_)
                aimd_->noteExternalCut(now_ms);
            applied_ladder_scale_ = scale;
            f64 scaled = target * scale;
            if (aimd_ || scaled != target)
                server_.setTargetBitrate(scaled);
        }
    }

    PendingFrame pending;
    pending.now_ms = now_ms;
    pending.produced = server_.nextFrame();
    for (const auto &r : pending.produced.trace.records) {
        if (r.resource == Resource::ServerGpu)
            pending.server_gpu_ms += r.latency_ms;
    }
    return pending;
}

void
SessionEngine::finishFrame(PendingFrame pending,
                           const ServerContention &contention)
{
    const ResilienceConfig &res = config_.resilience;
    ResilienceStats &stats = result_.resilience;
    ServerFrameOutput &produced = pending.produced;
    const f64 now_ms = pending.now_ms;
    FrameTrace trace = produced.trace;

    // Shared-server queueing (fleet mode): the wait for a GPU/encoder
    // slot delays everything downstream of the server stages.
    if (contention.queue_ms > 0.0) {
        StageScope(trace, Stage::ServerQueue, Resource::ServerGpu)
            .latencyMs(contention.queue_ms);
    }

    // Network transmission: the offered load is the running stream
    // bitrate. The very first (intra) frame is amortized over its
    // GOP — a paced encoder emits at the average rate, not at the
    // instantaneous key-frame rate. The byte count is
    // trace.encoded_bytes — the *stream* size, which the server
    // scales up in proxy mode so network behavior matches the
    // full-resolution session it stands in for. A frame shed by the
    // oversubscribed fleet server never reaches the channel at all.
    bool dropped;
    if (contention.shed) {
        trace.dropped = true;
        trace.addEvent(RecoveryEvent::ServerShed);
        stats.frames_shed += 1;
        dropped = true;
    } else {
        const size_t stream_bytes = trace.encoded_bytes;
        if (mean_frame_bytes_ == 0.0) {
            mean_frame_bytes_ =
                f64(stream_bytes) / f64(config_.codec.gop_size);
        } else {
            mean_frame_bytes_ =
                0.9 * mean_frame_bytes_ + 0.1 * f64(stream_bytes);
        }
        f64 offered = streamBitrateMbps(mean_frame_bytes_, 60.0);
        if (config_.channel.granularity == LossGranularity::Packet) {
            // Packetized wire: the frame rides an MTU-sized packet
            // train with proactive FEC parity, the channel evaluates
            // its loss chain per packet, and the wire geometry turns
            // the delivery bitmap into one of four outcomes — full
            // delivery, zero-RTT FEC recovery, slice-level partial
            // decode, or whole-frame loss.
            WireConfig wire;
            wire.mtu_bytes = config_.channel.mtu_bytes;
            wire.fec_overhead = res.fec_overhead;
            const WireGeometry geom =
                wireGeometryFor(stream_bytes, wire);
            PacketTransmitResult ptx = channel_.transmitPackets(
                geom.wire_bytes, geom.total_packets, offered);
            stats.packets_sent += ptx.packets;
            stats.packets_lost += ptx.packets_lost;
            if (config_.telemetry) {
                obs::MetricsRegistry &reg =
                    config_.telemetry->registry();
                reg.add(tm_.pkt_sent, i64(ptx.packets));
                reg.add(tm_.pkt_lost, i64(ptx.packets_lost));
            }
            StageScope(trace, Stage::Network, Resource::NetworkLink)
                .latencyMs(ptx.latency_ms)
                .energyMj(config_.device.radio.energyMj(
                    i64(geom.wire_bytes)));

            WireDeliveryEval eval =
                evaluateWireDelivery(geom, ptx.delivered);
            if (eval.outcome == WireOutcome::Partial) {
                // A partially usable payload only helps when the
                // bitstream is sliced and the frame header plus at
                // least one slice survived; anything less degrades
                // to a whole-frame loss.
                SliceLayout layout =
                    config_.compute_pixels &&
                            produced.encoded.payload.size() ==
                                stream_bytes
                        ? frameSliceLayout(produced.encoded.payload)
                        : syntheticSliceLayout(stream_bytes,
                                               config_.lr_size.height,
                                               config_.codec);
                std::vector<bool> slice_ok;
                int intact =
                    layout.ok && layout.sliced
                        ? coveredSlices(layout, eval.valid_ranges,
                                        slice_ok)
                        : 0;
                if (intact > 0) {
                    produced.encoded.slice_present = slice_ok;
                    const int lost = int(slice_ok.size()) - intact;
                    for (int s = 0; s < lost; ++s)
                        trace.addEvent(RecoveryEvent::SliceConcealed);
                    stats.slices_concealed += lost;
                    stats.frames_partial += 1;
                } else {
                    eval.outcome = WireOutcome::Lost;
                }
            }
            if (eval.outcome == WireOutcome::FecRecovered) {
                trace.addEvent(RecoveryEvent::FecRecovered);
                stats.frames_fec_recovered += 1;
            }
            trace.dropped = eval.outcome == WireOutcome::Lost;
            dropped = trace.dropped;
            if (dropped) {
                trace.addEvent(RecoveryEvent::FrameDropped);
                stats.frames_dropped += 1;
            }
            // Parity must not mask congestion from the rate
            // controller: back off whenever the channel signalled
            // congestion or burst fading, recovered frame or not.
            if (aimd_ && ptx.congestionSignal() &&
                aimd_->onCongestion(now_ms)) {
                trace.addEvent(RecoveryEvent::BitrateBackoff);
                stats.aimd_backoffs += 1;
            }
        } else {
            TransmitResult tx =
                channel_.transmitFrame(stream_bytes, offered);
            trace.dropped = tx.dropped;
            StageScope(trace, Stage::Network, Resource::NetworkLink)
                .latencyMs(tx.latency_ms)
                .energyMj(
                    config_.device.radio.energyMj(i64(stream_bytes)));
            dropped = tx.dropped;

            // Delivery outcome -> decoder-reference bookkeeping. A
            // lost frame (or a delta that arrived after one) stalls
            // the client's reference chain; stale deltas are
            // discarded, not decoded against wrong references.
            if (tx.dropped) {
                trace.addEvent(RecoveryEvent::FrameDropped);
                stats.frames_dropped += 1;
                if (aimd_ && (tx.cause == DropCause::Congestion ||
                              tx.cause == DropCause::Burst)) {
                    if (aimd_->onCongestion(now_ms)) {
                        trace.addEvent(RecoveryEvent::BitrateBackoff);
                        stats.aimd_backoffs += 1;
                    }
                }
            }
        }
    }

    bool decodable = false;
    if (dropped) {
        tracker_.onFrameLost();
        // Server overload is a congestion signal like a network drop:
        // the AIMD loop backs the encoder target off so a saturated
        // fleet sheds bitrate, not just frames.
        if (contention.shed && aimd_ && aimd_->onCongestion(now_ms)) {
            trace.addEvent(RecoveryEvent::BitrateBackoff);
            stats.aimd_backoffs += 1;
        }
    } else {
        stats.frames_delivered += 1;
        if (aimd_)
            aimd_->onDelivered(now_ms);
        ReferenceTracker::Action action =
            tracker_.onFrameArrived(produced.encoded.type);
        if (action == ReferenceTracker::Action::Discard) {
            trace.discarded = true;
            trace.addEvent(RecoveryEvent::DeltaDiscarded);
            stats.frames_discarded += 1;
        } else {
            decodable = true;
        }
    }

    // NACK emission. A delivered stale delta is detected on arrival;
    // a dropped (or shed) frame is noticed as a sequence gap one
    // frame period later.
    if (res.nack && !tracker_.chainValid()) {
        f64 detected_ms =
            dropped ? now_ms + kFramePeriodMs
                    : now_ms + trace.stageLatencyMs(Stage::Network);
        if (detected_ms - last_nack_ms_ >= res.nack_timeout_ms) {
            feedback_.sendNack(produced.encoded.index, detected_ms,
                               channel_.feedbackDelayMs());
            last_nack_ms_ = detected_ms;
            trace.addEvent(RecoveryEvent::NackSent);
            stats.nacks_sent += 1;
        }
    }

    // Dynamic device conditions for this frame: thermal/DVFS throttle
    // scales and scripted fault draws from the stress model, plus the
    // degradation-ladder tier. The stress RNG advances once per frame
    // — delivered or not — so the fault stream is a pure function of
    // (seed, frame index), mirroring the network FaultScenario.
    FrameConditions cond;
    if (stress_)
        cond = stress_->beginFrame(frames_run_);
    cond.sr_precision = config_.sr_precision;
    if (ladder_active_) {
        cond.tier = ladder_.tier();
        cond.roi_shrink = ladder_.roiShrink();
        cond.sr_precision =
            degradedPrecision(config_.sr_precision, cond.tier);
    }
    const bool monitored = stress_.has_value() || ladder_active_;
    DegradationStats &deg = result_.degradation;

    // Client processing: only decodable frames reach the decoder;
    // lost/stale frames are concealed from the last good HR output.
    ColorImage output;
    const bool held =
        decodable && cond.tier >= DegradationLadder::kTierHold;
    if (decodable) {
        ClientFrameResult processed = client_->processFrame(
            produced.encoded, produced.roi, cond);
        for (const auto &record : processed.trace.records)
            trace.pushRecord(record);
        if (monitored) {
            deg.tier_frames[clamp(
                cond.tier, 0, DegradationLadder::kTierCount - 1)] += 1;
            if (cond.npu_faulted) {
                trace.addEvent(RecoveryEvent::NpuFault);
                deg.npu_faults += 1;
            }
            if (cond.decode_stall_ms > 0.0)
                deg.decode_stalls += 1;
        }
        if (held) {
            // Hold-tier frame hold: the decoder ran (the reference
            // chain stays valid) but the display repeats the last
            // good HR output. Charged like a concealment blit;
            // counted as frames_held, not frames_concealed — this is
            // the ladder's choice, not a network loss, so the stale
            // episode/NACK bookkeeping below must not see it.
            trace.concealed = true;
            trace.addEvent(RecoveryEvent::FrameHeld);
            deg.frames_held += 1;
            addConcealStage(trace, config_.device, hr_size_,
                            res.concealment);
            const DisplayModel &display = config_.device.display;
            StageScope(trace, Stage::Display, Resource::ClientDisplay)
                .latencyMs(display.latencyMs())
                .energyMj(display.energyMjPerFrame(kFramePeriodMs));
            if (config_.compute_pixels)
                output = concealer_.conceal(hr_size_);
        } else if (config_.compute_pixels) {
            concealer_.onGoodFrame(processed.upscaled);
            output = std::move(processed.upscaled);
        }
        if (stale_since_ms_ >= 0.0) {
            stats.recovery_latency_ms.add(now_ms - stale_since_ms_);
            stale_since_ms_ = -1.0;
            last_nack_ms_ = -1e18;
        }
        stale_run_ = 0;
    } else {
        trace.concealed = true;
        trace.addEvent(RecoveryEvent::Concealed);
        stats.frames_concealed += 1;
        addConcealStage(trace, config_.device, hr_size_,
                        res.concealment);
        const DisplayModel &display = config_.device.display;
        StageScope(trace, Stage::Display, Resource::ClientDisplay)
            .latencyMs(display.latencyMs())
            .energyMj(display.energyMjPerFrame(kFramePeriodMs));
        if (config_.compute_pixels)
            output = concealer_.conceal(hr_size_);
        if (stale_since_ms_ < 0.0)
            stale_since_ms_ = now_ms;
        stale_run_ += 1;
        stats.longest_stale_run =
            std::max(stats.longest_stale_run, stale_run_);
    }

    // Frame-deadline watchdog + ladder update. Only frames the
    // client actually processed are observed — a network loss says
    // nothing about client load. The trace events below are recorded
    // only in monitored sessions, so unmonitored traces (and the
    // fault-free goldens, which never miss the budget) are
    // bit-identical to the pre-ladder pipeline. In unified mode the
    // ladder only *advises*: its recommendation is proposed to the
    // controller inside runControlPlane instead of applied here.
    const f64 busy_ms = trace.clientBottleneckMs();
    const f64 headroom_c = stress_ ? stress_->headroomC() : 1e18;
    if (decodable && monitored) {
        if (ladder_.isMiss(busy_ms)) {
            trace.addEvent(RecoveryEvent::DeadlineMiss);
            deg.deadline_misses += 1;
        }
        if (ladder_active_ && !qoe_) {
            switch (ladder_.onFrame(busy_ms, headroom_c)) {
              case LadderTransition::StepDown:
                trace.addEvent(RecoveryEvent::LadderStepDown);
                deg.ladder_step_downs += 1;
                break;
              case LadderTransition::StepUp:
                trace.addEvent(RecoveryEvent::LadderStepUp);
                deg.ladder_step_ups += 1;
                break;
              case LadderTransition::None:
                break;
            }
        }
    }

    // Per-frame QoE score: computed for every session (controller on
    // or off, write-only, cheap) so control-plane arms are compared
    // on identical footing. Unified mode then gathers the advisors'
    // proposals and lets the controller apply at most one action.
    {
        qoe_conceal_ewma_ =
            0.9 * qoe_conceal_ewma_ +
            0.1 * ((trace.concealed || trace.dropped) ? 1.0 : 0.0);
        const qoe::QoeFeatures f =
            frameFeatures(produced.encoded, trace, cond.sr_precision);
        if (qoe_) {
            qoe_->observeFrame(f);
            result_.qoe_frames.push_back(qoe_->lastScore());
            runControlPlane(trace, now_ms, decodable, busy_ms,
                            headroom_c);
            result_.qoe_actions = qoe_->actionsApplied();
        } else {
            const f64 score = qoe_predictor_.score(f);
            result_.qoe_frames.push_back(score);
            if (config_.telemetry) {
                obs::MetricsRegistry &reg =
                    config_.telemetry->registry();
                reg.set(tm_.qoe_score, score);
                reg.observe(tm_.qoe_frame_score, score);
            }
        }
    }

    // Integrate this frame's dissipated heat into the thermal node:
    // stage energies plus the constant device base power (scripted
    // background loads are added inside the model from the active
    // fault windows).
    if (stress_) {
        stress_->endFrame(
            trace.clientEnergyMj() +
                config_.device.base_power_w * kFramePeriodMs,
            kFramePeriodMs);
        deg.peak_temperature_c = std::max(deg.peak_temperature_c,
                                          stress_->temperatureC());
    }
    deg.final_tier = ladder_.tier();

    // Quality vs. the native HR render of the same scene, measured
    // on what the client actually displays — concealed frames
    // included, so transient dips are real.
    if (config_.measure_quality && config_.compute_pixels &&
        frames_run_ % config_.quality_stride == 0) {
        ColorImage ground_truth =
            produced.hr_render.empty()
                ? renderScene(world_.sceneAt(produced.time_s),
                              hr_size_)
                      .color
                : std::move(produced.hr_render);
        FrameQuality q;
        q.frame_index = produced.encoded.index;
        q.type = produced.encoded.type;
        q.concealed = trace.concealed;
        q.psnr_db = psnr(output, ground_truth);
        if (config_.measure_perceptual &&
            measured_ % config_.perceptual_stride == 0) {
            q.lpips = perceptual_.distance(output, ground_truth);
        }
        if (q.concealed)
            stats.concealed_psnr_db.add(q.psnr_db);
        else if (trace.hasEvent(RecoveryEvent::SliceConcealed))
            stats.partial_psnr_db.add(q.psnr_db);
        else
            stats.delivered_psnr_db.add(q.psnr_db);
        result_.quality.push_back(q);
        measured_ += 1;
    }

    if (config_.telemetry)
        exportFrameTelemetry(trace, now_ms);

    result_.traces.push_back(std::move(trace));
    stats.intra_refreshes =
        intra_refresh_base_ + server_.intraRefreshCount();
    frames_run_ += 1;
}

qoe::QoeFeatures
SessionEngine::frameFeatures(const EncodedFrame &encoded,
                             const FrameTrace &trace,
                             Precision precision) const
{
    qoe::QoeFeatures f;
    f.qp = f64(encoded.qp);
    f.mv_mean_px = encoded.mv_mean_px;
    f.residual_rms = encoded.residual_rms;
    f.conceal_rate = qoe_conceal_ewma_;
    // Achieved display rate: bounded by the client's pipelined
    // bottleneck; a frame cheaper than the 60 FPS period displays at
    // the full cadence.
    const f64 busy = std::max(trace.clientBottleneckMs(),
                              kFramePeriodMs);
    f.frame_rate = clamp(1000.0 / busy, 1.0, 60.0);
    f.resolution_scale =
        clamp(f64(config_.lr_size.width) / 1280.0, 1.0 / 16.0, 1.0);
    f.sr_precision = precision;
    return f;
}

void
SessionEngine::runControlPlane(FrameTrace &trace, f64 now_ms,
                               bool decodable, f64 busy_ms,
                               f64 headroom_c)
{
    qoe::QoeController &ctl = *qoe_;

    // AIMD advisor: the congestion state machine still runs
    // (onCongestion / onDelivered), but its target is advice — when
    // it diverges from the knob state, propose a step toward it.
    if (aimd_ && server_.rateControlled()) {
        const f64 knob = ctl.knobs().target_mbps;
        const f64 want = aimd_->targetMbps();
        if (knob > 0.0 && want < knob * 0.95) {
            qoe::ControlAction a;
            a.kind = qoe::ActionKind::BitrateStep;
            a.direction = -1;
            a.magnitude = std::max(want / knob,
                                   ctl.config().bitrate_step);
            a.urgency = 0.7;
            a.advisor = "aimd";
            ctl.propose(a);
        } else if (knob > 0.0 && want > knob * 1.05) {
            qoe::ControlAction a;
            a.kind = qoe::ActionKind::BitrateStep;
            a.direction = 1;
            a.magnitude = std::max(knob / want,
                                   ctl.config().bitrate_step);
            a.urgency = 0.1;
            a.advisor = "aimd";
            ctl.propose(a);
        }
    }

    // Ladder advisor: deadline/thermal hysteresis recommends a tier
    // move; the controller decides whether that beats a bitrate turn.
    if (ladder_active_ && decodable) {
        const LadderAdvice advice =
            ladder_.adviseFrame(busy_ms, headroom_c);
        if (advice.transition != LadderTransition::None) {
            qoe::ControlAction a;
            a.kind = qoe::ActionKind::PrecisionStep;
            a.direction =
                advice.transition == LadderTransition::StepDown ? -1
                                                                : 1;
            a.magnitude = 1.0;
            a.urgency = advice.urgency;
            a.advisor = "ladder";
            ctl.propose(a);
        }

        // Thermal advisor, the unified plane's foresight: while the
        // headroom to the throttle knee is shrinking, propose a
        // proactive tier step so the controller can shed NPU work
        // *before* the knee converts into the deadline-miss cascade
        // the reactive ladder advisor above waits for. Capped to the
        // precision tiers: the deep tiers (RoI shrink and below) cost
        // real quality and are gated behind the reactive ladder's
        // sustained-miss evidence, because under a long soak the
        // headroom gate blocks up-steps and a session pushed deep
        // stays deep.
        const f64 margin = ctl.config().thermal_margin_c;
        if (stress_ && margin > 0.0 && headroom_c < margin &&
            ctl.knobs().tier < DegradationLadder::kTierRoiShrink) {
            qoe::ControlAction a;
            a.kind = qoe::ActionKind::PrecisionStep;
            a.direction = -1;
            a.magnitude = 1.0;
            a.urgency =
                clamp((margin - headroom_c) / margin, 0.0, 1.0);
            a.advisor = "thermal";
            ctl.propose(a);
        }
    }

    const qoe::ControlAction applied = ctl.decide(now_ms);
    if (applied.kind == qoe::ActionKind::PrecisionStep) {
        // Reflect the applied tier into the advisor's state machine
        // and the degradation accounting the fleet reports.
        ladder_.setTier(ctl.knobs().tier);
        DegradationStats &deg = result_.degradation;
        if (applied.direction < 0) {
            trace.addEvent(RecoveryEvent::LadderStepDown);
            deg.ladder_step_downs += 1;
        } else {
            trace.addEvent(RecoveryEvent::LadderStepUp);
            deg.ladder_step_ups += 1;
        }
    }
}

void
SessionEngine::exportFrameTelemetry(const FrameTrace &trace,
                                    f64 now_ms)
{
    obs::Telemetry &tel = *config_.telemetry;
    obs::MetricsRegistry &reg = tel.registry();

    reg.add(tm_.frames_total);
    reg.add(tm_.stream_bytes, i64(trace.encoded_bytes));
    if (trace.dropped) {
        reg.add(trace.hasEvent(RecoveryEvent::ServerShed)
                    ? tm_.frames_shed
                    : tm_.frames_dropped);
    } else {
        reg.add(tm_.frames_delivered);
    }
    if (trace.discarded)
        reg.add(tm_.frames_discarded);
    if (trace.concealed)
        reg.add(tm_.frames_concealed);
    for (RecoveryEvent e : trace.events) {
        if (e == RecoveryEvent::NackSent)
            reg.add(tm_.nacks_sent);
        else if (e == RecoveryEvent::IntraRefresh)
            reg.add(tm_.intra_refreshes);
        else if (e == RecoveryEvent::BitrateBackoff)
            reg.add(tm_.aimd_backoffs);
        else if (e == RecoveryEvent::DeadlineMiss)
            reg.add(tm_.deadline_misses);
        else if (e == RecoveryEvent::LadderStepDown)
            reg.add(tm_.ladder_step_downs);
        else if (e == RecoveryEvent::LadderStepUp)
            reg.add(tm_.ladder_step_ups);
        else if (e == RecoveryEvent::NpuFault)
            reg.add(tm_.npu_faults);
        else if (e == RecoveryEvent::FrameHeld)
            reg.add(tm_.frames_held);
        else if (e == RecoveryEvent::FecRecovered)
            reg.add(tm_.fec_recovered);
        else if (e == RecoveryEvent::SliceConcealed)
            reg.add(tm_.slice_concealed);
    }
    if (ladder_active_)
        reg.set(tm_.tier_gauge, f64(ladder_.tier()));
    if (stress_) {
        reg.set(tm_.temperature_gauge, stress_->temperatureC());
        reg.set(tm_.headroom_gauge, stress_->headroomC());
    }
    f64 queue_ms = trace.stageLatencyMs(Stage::ServerQueue);
    if (queue_ms > 0.0)
        reg.observe(tm_.queue_ms, queue_ms);
    // MTP only makes sense for frames the user actually saw fresh.
    if (!trace.dropped && !trace.concealed)
        reg.observe(tm_.mtp_ms, trace.mtpLatencyMs());

    obs::SpanExporter *spans = tel.spans();
    if (!spans)
        return;
    // One B/E pair per stage record, laid end to end from the frame's
    // input time: the MTP serialization order, which is also how
    // mtpLatencyMs() reads the trace. Energy rides on the begin
    // event's value so the JSONL stream carries the full record.
    const i32 track = config_.telemetry_track;
    f64 ts = now_ms;
    for (const StageRecord &r : trace.records) {
        spans->begin(stageName(r.stage), resourceName(r.resource),
                     track, ts, r.energy_mj);
        ts += r.latency_ms;
        spans->end(stageName(r.stage), resourceName(r.resource),
                   track, ts);
    }
    for (RecoveryEvent e : trace.events)
        spans->instant(recoveryEventName(e), "recovery", track, ts);
}

SessionResult
runSession(const SessionConfig &config)
{
    GSSR_ASSERT(config.frames >= 1, "session needs at least one frame");
    SessionEngine engine(config);
    for (int i = 0; i < config.frames; ++i)
        engine.stepFrame(f64(i) * kFramePeriodMs);
    return engine.takeResult();
}

u64
sessionFingerprint(const SessionResult &result)
{
    u64 h = kFnvOffsetBasis;
    auto mix = [&h](const auto &value) { h = fnv1aValue(value, h); };

    mix(i64(result.traces.size()));
    for (const FrameTrace &t : result.traces) {
        mix(t.frame_index);
        mix(i32(t.type));
        mix(u8(t.dropped));
        mix(u8(t.discarded));
        mix(u8(t.concealed));
        mix(u64(t.encoded_bytes));
        mix(i64(t.records.size()));
        for (const StageRecord &r : t.records) {
            mix(i32(r.stage));
            mix(i32(r.resource));
            mix(r.latency_ms);
            mix(r.energy_mj);
        }
        for (RecoveryEvent e : t.events)
            mix(i32(e));
    }
    mix(i64(result.quality.size()));
    for (const FrameQuality &q : result.quality) {
        mix(q.frame_index);
        mix(i32(q.type));
        mix(u8(q.concealed));
        mix(q.psnr_db);
        mix(q.lpips);
    }
    return h;
}

} // namespace gssr
