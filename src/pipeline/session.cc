#include "pipeline/session.hh"

#include <algorithm>
#include <cmath>

#include "common/mathutil.hh"
#include "metrics/psnr.hh"
#include "roi/foveal.hh"

namespace gssr
{

const char *
designName(DesignKind design)
{
    switch (design) {
      case DesignKind::GameStreamSR:
        return "gamestreamsr";
      case DesignKind::Nemo:
        return "nemo";
      case DesignKind::SrDecoder:
        return "sr-decoder";
    }
    return "?";
}

namespace
{

std::unique_ptr<StreamingClient>
makeClient(DesignKind design, const ClientConfig &config)
{
    switch (design) {
      case DesignKind::GameStreamSR:
        return std::make_unique<GssrClient>(config);
      case DesignKind::Nemo:
        return std::make_unique<NemoClient>(config);
      case DesignKind::SrDecoder:
        return std::make_unique<SrDecoderClient>(config);
    }
    panic("unknown design");
}

} // namespace

Size
negotiatedRoiWindow(const DeviceProfile &device, int scale_factor,
                    Size lr_size)
{
    // Probe with the deployed SR model (EDSR cost model); the
    // quality net inside the upscaler is irrelevant for sizing.
    DnnUpscaler probe(std::make_shared<const CompactSrNet>(),
                      scale_factor);
    return chooseRoiWindow(FovealParams{}, device.display_ppi,
                           device.npu, probe, scale_factor, lr_size);
}

f64
SessionResult::meanMtpMs(FrameType type) const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        if (t.type == type && !t.dropped && !t.concealed) {
            total += t.mtpLatencyMs();
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::meanStageMs(Stage stage, FrameType type) const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        if (t.type == type && !t.dropped && !t.concealed) {
            total += t.stageLatencyMs(stage);
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::meanBottleneckMs(FrameType type) const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        if (t.type == type && !t.dropped && !t.concealed) {
            total += t.clientBottleneckMs();
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::outputFps(FrameType type) const
{
    f64 bottleneck = meanBottleneckMs(type);
    return bottleneck > 0.0 ? 1000.0 / bottleneck : 0.0;
}

f64
SessionResult::meanClientEnergyMj() const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        total += t.clientEnergyMj();
        n += 1;
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::overallClientEnergyMj(f64 base_power_w) const
{
    f64 processing = 0.0;
    for (const auto &t : traces)
        processing += t.clientEnergyMj();
    f64 session_ms = f64(traces.size()) * 1000.0 / 60.0;
    return processing + base_power_w * session_ms;
}

f64
SessionResult::meanPsnrDb() const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &q : quality) {
        total += q.psnr_db;
        n += 1;
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::meanLpips() const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &q : quality) {
        if (q.lpips >= 0.0) {
            total += q.lpips;
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

SessionResult
runSession(const SessionConfig &config)
{
    GSSR_ASSERT(config.frames >= 1, "session needs at least one frame");

    GameWorld world(config.game, config.world_seed);

    ServerConfig server_config;
    server_config.lr_size = config.lr_size;
    server_config.scale_factor = config.scale_factor;
    server_config.codec = config.codec;
    server_config.enable_roi =
        config.design != DesignKind::Nemo; // NEMO has no RoI phase
    server_config.target_bitrate_mbps = config.target_bitrate_mbps;
    if (config.server_proxy_size.area() > 0) {
        GSSR_ASSERT(!config.compute_pixels,
                    "server proxy mode is accounting-only");
        server_config.proxy_size = config.server_proxy_size;
    }
    if (!config.compute_pixels) {
        // Accounting runs never look at pixels; skip the
        // supersampled render.
        server_config.supersample = 1;
    } else if (config.measure_quality &&
               config.scale_factor == server_config.supersample) {
        // The pre-downsample render doubles as the ground truth.
        server_config.keep_hr_render = true;
    }

    // Negotiate the RoI window at the paper's reference resolution
    // (720p), then scale it with the configured stream width so a
    // reduced-resolution session keeps the same RoI area *fraction*
    // (~9.8 % of the frame for a 300 px window on 720p).
    Size reference_window = negotiatedRoiWindow(
        config.device, config.scale_factor, {1280, 720});
    int edge = int(std::lround(f64(reference_window.width) *
                               config.lr_size.width / 1280.0));
    edge = clamp(edge, 16,
                 std::min(config.lr_size.width,
                          config.lr_size.height));
    Size roi_window{edge, edge};

    GameStreamServer server(world, server_config,
                            config.server_profile, roi_window);

    ClientConfig client_config;
    client_config.device = config.device;
    client_config.lr_size = config.lr_size;
    client_config.scale_factor = config.scale_factor;
    client_config.codec = config.codec;
    client_config.compute_pixels = config.compute_pixels;
    client_config.sr_net = config.sr_net;
    auto client = makeClient(config.design, client_config);

    NetworkChannel channel(config.channel, config.channel_seed,
                           config.fault_scenario);

    // Loss-recovery machinery: the client's decoder-reference
    // tracker, the NACK feedback path, the concealment engine, and
    // the AIMD bitrate-backoff loop.
    const ResilienceConfig &res = config.resilience;
    ReferenceTracker tracker;
    FeedbackPath feedback;
    Concealer concealer(res.concealment);
    std::optional<AimdController> aimd;
    if (res.aimd && config.target_bitrate_mbps > 0.0) {
        aimd.emplace(res.aimd_config, config.target_bitrate_mbps);
    }

    PerceptualMetric perceptual;

    Size hr_size{config.lr_size.width * config.scale_factor,
                 config.lr_size.height * config.scale_factor};

    SessionResult result;
    ResilienceStats &stats = result.resilience;
    f64 mean_frame_bytes = 0.0;
    int measured = 0;

    const f64 frame_period_ms = 1000.0 / 60.0;
    f64 last_nack_ms = -1e18;
    f64 stale_since_ms = -1.0;
    i64 stale_run = 0;

    for (int i = 0; i < config.frames; ++i) {
        const f64 now_ms = f64(i) * frame_period_ms;

        // Feedback-path NACKs that reached the server by now force
        // an intra refresh into the next encoded frame.
        if (res.nack && !feedback.drainArrived(now_ms).empty())
            server.requestIntraRefresh();

        // The AIMD loop retargets the encoder's rate controller.
        if (aimd && server.rateControlled())
            server.setTargetBitrate(aimd->targetMbps());

        ServerFrameOutput produced = server.nextFrame();
        FrameTrace trace = produced.trace;

        // Network transmission: the offered load is the running
        // stream bitrate. The very first (intra) frame is amortized
        // over its GOP — a paced encoder emits at the average rate,
        // not at the instantaneous key-frame rate. The byte count is
        // trace.encoded_bytes — the *stream* size, which the server
        // scales up in proxy mode so network behavior matches the
        // full-resolution session it stands in for.
        const size_t stream_bytes = trace.encoded_bytes;
        if (mean_frame_bytes == 0.0) {
            mean_frame_bytes =
                f64(stream_bytes) / f64(config.codec.gop_size);
        } else {
            mean_frame_bytes =
                0.9 * mean_frame_bytes + 0.1 * f64(stream_bytes);
        }
        f64 offered = streamBitrateMbps(mean_frame_bytes, 60.0);
        TransmitResult tx =
            channel.transmitFrame(stream_bytes, offered);
        trace.dropped = tx.dropped;
        trace.add(Stage::Network, Resource::NetworkLink, tx.latency_ms,
                  config.device.radio.energyMj(i64(stream_bytes)));

        // Delivery outcome -> decoder-reference bookkeeping. A lost
        // frame (or a delta that arrived after one) stalls the
        // client's reference chain; stale deltas are discarded, not
        // decoded against wrong references.
        bool decodable = false;
        if (tx.dropped) {
            trace.addEvent(RecoveryEvent::FrameDropped);
            tracker.onFrameLost();
            stats.frames_dropped += 1;
            if (aimd && (tx.cause == DropCause::Congestion ||
                         tx.cause == DropCause::Burst)) {
                if (aimd->onCongestion(now_ms)) {
                    trace.addEvent(RecoveryEvent::BitrateBackoff);
                    stats.aimd_backoffs += 1;
                }
            }
        } else {
            stats.frames_delivered += 1;
            if (aimd)
                aimd->onDelivered(now_ms);
            ReferenceTracker::Action action =
                tracker.onFrameArrived(produced.encoded.type);
            if (action == ReferenceTracker::Action::Discard) {
                trace.discarded = true;
                trace.addEvent(RecoveryEvent::DeltaDiscarded);
                stats.frames_discarded += 1;
            } else {
                decodable = true;
            }
        }

        // NACK emission. A delivered stale delta is detected on
        // arrival; a dropped frame is noticed as a sequence gap one
        // frame period later.
        if (res.nack && !tracker.chainValid()) {
            f64 detected_ms = tx.dropped ? now_ms + frame_period_ms
                                         : now_ms + tx.latency_ms;
            if (detected_ms - last_nack_ms >= res.nack_timeout_ms) {
                feedback.sendNack(produced.encoded.index, detected_ms,
                                  channel.feedbackDelayMs());
                last_nack_ms = detected_ms;
                trace.addEvent(RecoveryEvent::NackSent);
                stats.nacks_sent += 1;
            }
        }

        // Client processing: only decodable frames reach the
        // decoder; lost/stale frames are concealed from the last
        // good HR output.
        ColorImage output;
        if (decodable) {
            ClientFrameResult processed =
                client->processFrame(produced.encoded, produced.roi);
            for (const auto &record : processed.trace.records)
                trace.records.push_back(record);
            if (config.compute_pixels) {
                concealer.onGoodFrame(processed.upscaled);
                output = std::move(processed.upscaled);
            }
            if (stale_since_ms >= 0.0) {
                stats.recovery_latency_ms.add(now_ms - stale_since_ms);
                stale_since_ms = -1.0;
                last_nack_ms = -1e18;
            }
            stale_run = 0;
        } else {
            trace.concealed = true;
            trace.addEvent(RecoveryEvent::Concealed);
            stats.frames_concealed += 1;
            addConcealStage(trace, config.device, hr_size,
                            res.concealment);
            const DisplayModel &display = config.device.display;
            trace.add(Stage::Display, Resource::ClientDisplay,
                      display.latencyMs(),
                      display.energyMjPerFrame(frame_period_ms));
            if (config.compute_pixels)
                output = concealer.conceal(hr_size);
            if (stale_since_ms < 0.0)
                stale_since_ms = now_ms;
            stale_run += 1;
            stats.longest_stale_run =
                std::max(stats.longest_stale_run, stale_run);
        }

        // Quality vs. the native HR render of the same scene,
        // measured on what the client actually displays — concealed
        // frames included, so transient dips are real.
        if (config.measure_quality && config.compute_pixels &&
            i % config.quality_stride == 0) {
            ColorImage ground_truth =
                produced.hr_render.empty()
                    ? renderScene(world.sceneAt(produced.time_s),
                                  hr_size)
                          .color
                    : std::move(produced.hr_render);
            FrameQuality q;
            q.frame_index = produced.encoded.index;
            q.type = produced.encoded.type;
            q.concealed = !decodable;
            q.psnr_db = psnr(output, ground_truth);
            if (config.measure_perceptual &&
                measured % config.perceptual_stride == 0) {
                q.lpips = perceptual.distance(output, ground_truth);
            }
            (q.concealed ? stats.concealed_psnr_db
                         : stats.delivered_psnr_db)
                .add(q.psnr_db);
            result.quality.push_back(q);
            measured += 1;
        }

        result.traces.push_back(std::move(trace));
    }
    stats.intra_refreshes = server.intraRefreshCount();
    return result;
}

} // namespace gssr
