#include "pipeline/session.hh"

#include <cmath>

#include "common/mathutil.hh"
#include "metrics/psnr.hh"
#include "roi/foveal.hh"

namespace gssr
{

const char *
designName(DesignKind design)
{
    switch (design) {
      case DesignKind::GameStreamSR:
        return "gamestreamsr";
      case DesignKind::Nemo:
        return "nemo";
      case DesignKind::SrDecoder:
        return "sr-decoder";
    }
    return "?";
}

namespace
{

std::unique_ptr<StreamingClient>
makeClient(DesignKind design, const ClientConfig &config)
{
    switch (design) {
      case DesignKind::GameStreamSR:
        return std::make_unique<GssrClient>(config);
      case DesignKind::Nemo:
        return std::make_unique<NemoClient>(config);
      case DesignKind::SrDecoder:
        return std::make_unique<SrDecoderClient>(config);
    }
    panic("unknown design");
}

} // namespace

Size
negotiatedRoiWindow(const DeviceProfile &device, int scale_factor,
                    Size lr_size)
{
    // Probe with the deployed SR model (EDSR cost model); the
    // quality net inside the upscaler is irrelevant for sizing.
    DnnUpscaler probe(std::make_shared<const CompactSrNet>(),
                      scale_factor);
    return chooseRoiWindow(FovealParams{}, device.display_ppi,
                           device.npu, probe, scale_factor, lr_size);
}

f64
SessionResult::meanMtpMs(FrameType type) const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        if (t.type == type && !t.dropped) {
            total += t.mtpLatencyMs();
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::meanStageMs(Stage stage, FrameType type) const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        if (t.type == type && !t.dropped) {
            total += t.stageLatencyMs(stage);
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::meanBottleneckMs(FrameType type) const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        if (t.type == type && !t.dropped) {
            total += t.clientBottleneckMs();
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::outputFps(FrameType type) const
{
    f64 bottleneck = meanBottleneckMs(type);
    return bottleneck > 0.0 ? 1000.0 / bottleneck : 0.0;
}

f64
SessionResult::meanClientEnergyMj() const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &t : traces) {
        total += t.clientEnergyMj();
        n += 1;
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::overallClientEnergyMj(f64 base_power_w) const
{
    f64 processing = 0.0;
    for (const auto &t : traces)
        processing += t.clientEnergyMj();
    f64 session_ms = f64(traces.size()) * 1000.0 / 60.0;
    return processing + base_power_w * session_ms;
}

f64
SessionResult::meanPsnrDb() const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &q : quality) {
        total += q.psnr_db;
        n += 1;
    }
    return n ? total / f64(n) : 0.0;
}

f64
SessionResult::meanLpips() const
{
    f64 total = 0.0;
    i64 n = 0;
    for (const auto &q : quality) {
        if (q.lpips >= 0.0) {
            total += q.lpips;
            n += 1;
        }
    }
    return n ? total / f64(n) : 0.0;
}

SessionResult
runSession(const SessionConfig &config)
{
    GSSR_ASSERT(config.frames >= 1, "session needs at least one frame");

    GameWorld world(config.game, config.world_seed);

    ServerConfig server_config;
    server_config.lr_size = config.lr_size;
    server_config.scale_factor = config.scale_factor;
    server_config.codec = config.codec;
    server_config.enable_roi =
        config.design != DesignKind::Nemo; // NEMO has no RoI phase
    server_config.target_bitrate_mbps = config.target_bitrate_mbps;
    if (config.server_proxy_size.area() > 0) {
        GSSR_ASSERT(!config.compute_pixels,
                    "server proxy mode is accounting-only");
        server_config.proxy_size = config.server_proxy_size;
    }
    if (!config.compute_pixels) {
        // Accounting runs never look at pixels; skip the
        // supersampled render.
        server_config.supersample = 1;
    } else if (config.measure_quality &&
               config.scale_factor == server_config.supersample) {
        // The pre-downsample render doubles as the ground truth.
        server_config.keep_hr_render = true;
    }

    // Negotiate the RoI window at the paper's reference resolution
    // (720p), then scale it with the configured stream width so a
    // reduced-resolution session keeps the same RoI area *fraction*
    // (~9.8 % of the frame for a 300 px window on 720p).
    Size reference_window = negotiatedRoiWindow(
        config.device, config.scale_factor, {1280, 720});
    int edge = int(std::lround(f64(reference_window.width) *
                               config.lr_size.width / 1280.0));
    edge = clamp(edge, 16,
                 std::min(config.lr_size.width,
                          config.lr_size.height));
    Size roi_window{edge, edge};

    GameStreamServer server(world, server_config,
                            config.server_profile, roi_window);

    ClientConfig client_config;
    client_config.device = config.device;
    client_config.lr_size = config.lr_size;
    client_config.scale_factor = config.scale_factor;
    client_config.codec = config.codec;
    client_config.compute_pixels = config.compute_pixels;
    client_config.sr_net = config.sr_net;
    auto client = makeClient(config.design, client_config);

    NetworkChannel channel(config.channel, config.channel_seed);

    PerceptualMetric perceptual;

    Size hr_size{config.lr_size.width * config.scale_factor,
                 config.lr_size.height * config.scale_factor};

    SessionResult result;
    f64 mean_frame_bytes = 0.0;
    int measured = 0;

    for (int i = 0; i < config.frames; ++i) {
        ServerFrameOutput produced = server.nextFrame();
        FrameTrace trace = produced.trace;

        // Network transmission: the offered load is the running
        // stream bitrate. The very first (intra) frame is amortized
        // over its GOP — a paced encoder emits at the average rate,
        // not at the instantaneous key-frame rate.
        if (mean_frame_bytes == 0.0) {
            mean_frame_bytes = f64(produced.encoded.sizeBytes()) /
                               f64(config.codec.gop_size);
        } else {
            mean_frame_bytes =
                0.9 * mean_frame_bytes +
                0.1 * f64(produced.encoded.sizeBytes());
        }
        f64 offered = streamBitrateMbps(mean_frame_bytes, 60.0);
        TransmitResult tx =
            channel.transmitFrame(produced.encoded.sizeBytes(),
                                  offered);
        trace.dropped = tx.dropped;
        trace.add(Stage::Network, Resource::NetworkLink, tx.latency_ms,
                  config.device.radio.energyMj(
                      i64(produced.encoded.sizeBytes())));

        // Client processing. Dropped frames are still fed to the
        // client so the codec reference chain stays intact (a real
        // deployment retransmits or conceals; we keep the comparison
        // between designs content-identical).
        ClientFrameResult processed =
            client->processFrame(produced.encoded, produced.roi);
        for (const auto &record : processed.trace.records)
            trace.records.push_back(record);

        // Quality vs. the native HR render of the same scene.
        if (config.measure_quality && config.compute_pixels &&
            i % config.quality_stride == 0) {
            ColorImage ground_truth =
                produced.hr_render.empty()
                    ? renderScene(world.sceneAt(produced.time_s),
                                  hr_size)
                          .color
                    : std::move(produced.hr_render);
            FrameQuality q;
            q.frame_index = produced.encoded.index;
            q.type = produced.encoded.type;
            q.psnr_db = psnr(processed.upscaled, ground_truth);
            if (config.measure_perceptual &&
                measured % config.perceptual_stride == 0) {
                q.lpips =
                    perceptual.distance(processed.upscaled,
                                        ground_truth);
            }
            result.quality.push_back(q);
            measured += 1;
        }

        result.traces.push_back(std::move(trace));
    }
    return result;
}

} // namespace gssr
