#include "net/fec.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace gssr
{

namespace
{

/** GF(256) reduction polynomial x^8+x^4+x^3+x^2+1. */
constexpr u32 kGfPoly = 0x11d;

/** exp/log tables over the generator element 2. */
struct GfTables
{
    u8 exp[512]; ///< doubled so exp[log a + log b] needs no mod 255
    u8 log[256];

    GfTables()
    {
        u32 x = 1;
        for (int i = 0; i < 255; ++i) {
            exp[i] = u8(x);
            log[x] = u8(i);
            x <<= 1;
            if (x & 0x100)
                x ^= kGfPoly;
        }
        for (int i = 255; i < 512; ++i)
            exp[i] = exp[i - 255];
        log[0] = 0; // never consulted: callers guard zero operands
    }
};

const GfTables &
gf()
{
    static const GfTables tables;
    return tables;
}

/** dst[i] ^= c * src[i] — the row operation all of RS reduces to. */
void
gfMulAdd(u8 *dst, const u8 *src, u8 c, size_t len)
{
    if (c == 0)
        return;
    const GfTables &t = gf();
    const int log_c = t.log[c];
    for (size_t i = 0; i < len; ++i) {
        if (src[i])
            dst[i] ^= t.exp[log_c + t.log[src[i]]];
    }
}

/**
 * Invert a dense n x n matrix over GF(256) in place (Gauss–Jordan
 * with partial pivoting by non-zero search). Returns false when the
 * matrix is singular.
 */
bool
gfInvertMatrix(std::vector<u8> &a, int n)
{
    std::vector<u8> inv(size_t(n) * size_t(n), 0);
    for (int i = 0; i < n; ++i)
        inv[size_t(i) * size_t(n) + size_t(i)] = 1;
    auto row = [n](std::vector<u8> &mtx, int r) {
        return mtx.data() + size_t(r) * size_t(n);
    };
    for (int col = 0; col < n; ++col) {
        int pivot = -1;
        for (int r = col; r < n; ++r) {
            if (row(a, r)[col]) {
                pivot = r;
                break;
            }
        }
        if (pivot < 0)
            return false;
        if (pivot != col) {
            std::swap_ranges(row(a, pivot), row(a, pivot) + n,
                             row(a, col));
            std::swap_ranges(row(inv, pivot), row(inv, pivot) + n,
                             row(inv, col));
        }
        const u8 scale = gfInv(row(a, col)[col]);
        for (int c = 0; c < n; ++c) {
            row(a, col)[c] = gfMul(row(a, col)[c], scale);
            row(inv, col)[c] = gfMul(row(inv, col)[c], scale);
        }
        for (int r = 0; r < n; ++r) {
            if (r == col)
                continue;
            const u8 f = row(a, r)[col];
            if (!f)
                continue;
            for (int c = 0; c < n; ++c) {
                row(a, r)[c] ^= gfMul(f, row(a, col)[c]);
                row(inv, r)[c] ^= gfMul(f, row(inv, col)[c]);
            }
        }
    }
    a = std::move(inv);
    return true;
}

} // namespace

u8
gfMul(u8 a, u8 b)
{
    if (a == 0 || b == 0)
        return 0;
    const GfTables &t = gf();
    return t.exp[t.log[a] + t.log[b]];
}

u8
gfInv(u8 a)
{
    GSSR_ASSERT(a != 0, "GF(256) inverse of zero");
    const GfTables &t = gf();
    return t.exp[255 - t.log[a]];
}

u8
gfDiv(u8 a, u8 b)
{
    GSSR_ASSERT(b != 0, "GF(256) division by zero");
    if (a == 0)
        return 0;
    const GfTables &t = gf();
    return t.exp[t.log[a] + 255 - t.log[b]];
}

FecCodec::FecCodec(int data_shards, int parity_shards)
    : k_(data_shards), m_(parity_shards)
{
    GSSR_ASSERT(k_ >= 1, "FEC needs at least one data shard");
    GSSR_ASSERT(m_ >= 0, "negative parity shard count");
    GSSR_ASSERT(k_ + m_ <= 255,
                "k + m must be <= 255 (distinct GF(256) nodes)");

    // Vandermonde matrix V[r][c] = r^c over k+m distinct nodes: every
    // k x k submatrix is invertible. Multiplying by the inverse of
    // the top k x k block makes the code systematic (top k rows
    // become the identity) while preserving that property.
    const int n = k_ + m_;
    std::vector<u8> vand(size_t(n) * size_t(k_));
    for (int r = 0; r < n; ++r) {
        u8 v = 1;
        for (int c = 0; c < k_; ++c) {
            vand[size_t(r) * size_t(k_) + size_t(c)] = v;
            v = gfMul(v, u8(r));
        }
    }
    std::vector<u8> top(vand.begin(), vand.begin() + size_t(k_) * k_);
    bool ok = gfInvertMatrix(top, k_);
    GSSR_ASSERT(ok, "Vandermonde top block must be invertible");
    matrix_.assign(size_t(n) * size_t(k_), 0);
    for (int r = 0; r < n; ++r) {
        for (int c = 0; c < k_; ++c) {
            u8 acc = 0;
            for (int i = 0; i < k_; ++i) {
                acc ^= gfMul(vand[size_t(r) * size_t(k_) + size_t(i)],
                             top[size_t(i) * size_t(k_) + size_t(c)]);
            }
            matrix_[size_t(r) * size_t(k_) + size_t(c)] = acc;
        }
    }
}

void
FecCodec::encode(const std::vector<std::vector<u8>> &data,
                 std::vector<std::vector<u8>> &parity) const
{
    GSSR_ASSERT(int(data.size()) == k_, "wrong data shard count");
    const size_t len = data.empty() ? 0 : data[0].size();
    for (const auto &shard : data)
        GSSR_ASSERT(shard.size() == len, "data shards must be equal-sized");
    parity.assign(size_t(m_), std::vector<u8>(len, 0));
    for (int p = 0; p < m_; ++p) {
        const u8 *coef = matrix_.data() + size_t(k_ + p) * size_t(k_);
        for (int d = 0; d < k_; ++d)
            gfMulAdd(parity[size_t(p)].data(), data[size_t(d)].data(),
                     coef[d], len);
    }
}

bool
FecCodec::reconstruct(std::vector<std::vector<u8>> &shards,
                      const std::vector<bool> &present) const
{
    const int n = k_ + m_;
    GSSR_ASSERT(int(shards.size()) == n && int(present.size()) == n,
                "shard/presence vector size mismatch");

    bool all_data_present = true;
    for (int i = 0; i < k_; ++i)
        all_data_present = all_data_present && present[size_t(i)];
    if (all_data_present)
        return true;

    // Pick the first k present rows of the encoding matrix; with any
    // k rows independent, which k we pick only affects arithmetic,
    // not feasibility.
    std::vector<int> rows;
    rows.reserve(size_t(k_));
    size_t len = 0;
    for (int i = 0; i < n && int(rows.size()) < k_; ++i) {
        if (!present[size_t(i)])
            continue;
        rows.push_back(i);
        len = shards[size_t(i)].size();
    }
    if (int(rows.size()) < k_)
        return false; // more than m erasures: beyond the budget
    for (int r : rows)
        GSSR_ASSERT(shards[size_t(r)].size() == len,
                    "present shards must be equal-sized");

    std::vector<u8> sub(size_t(k_) * size_t(k_));
    for (int i = 0; i < k_; ++i) {
        const u8 *src = matrix_.data() + size_t(rows[size_t(i)]) * k_;
        std::copy(src, src + k_, sub.data() + size_t(i) * size_t(k_));
    }
    if (!gfInvertMatrix(sub, k_))
        return false; // unreachable for Vandermonde, kept defensive

    // data[d] = sum_i inv[d][i] * received[rows[i]].
    for (int d = 0; d < k_; ++d) {
        if (present[size_t(d)])
            continue;
        std::vector<u8> out(len, 0);
        const u8 *coef = sub.data() + size_t(d) * size_t(k_);
        for (int i = 0; i < k_; ++i)
            gfMulAdd(out.data(), shards[size_t(rows[size_t(i)])].data(),
                     coef[i], len);
        shards[size_t(d)] = std::move(out);
    }
    return true;
}

std::vector<bool>
erasurePattern(int shards, int losses, u64 seed)
{
    GSSR_ASSERT(shards >= 0 && losses >= 0 && losses <= shards,
                "erasure pattern losses out of range");
    std::vector<bool> present(size_t(shards), true);
    Rng rng(seed);
    // Partial Fisher–Yates over the shard indices: the first `losses`
    // draws select distinct victims.
    std::vector<int> idx(static_cast<size_t>(shards));
    for (int i = 0; i < shards; ++i)
        idx[size_t(i)] = i;
    for (int i = 0; i < losses; ++i) {
        int j = rng.uniformInt(i, shards - 1);
        std::swap(idx[size_t(i)], idx[size_t(j)]);
        present[size_t(idx[size_t(i)])] = false;
    }
    return present;
}

} // namespace gssr
