#include "net/channel.hh"

#include <cmath>

#include "common/mathutil.hh"

namespace gssr
{

/*
 * Capacity calibration note: these capacities are expressed relative
 * to *this repository's* codec, which is ~3x less efficient than the
 * H.265/VP9 encoders of the paper's testbed (block codec, simple
 * entropy coding). What the experiments depend on is the ratio of
 * stream bitrate to channel capacity: a 720p60 stream (~40-70
 * Mbit/s here depending on the game) must fit comfortably, while a
 * 2K stream (~3x the bytes, ~215 Mbit/s) must drop heavily on WiFi
 * (~90 %) and substantially on 5G mmWave (~44 %) — the paper's
 * Sec. II-A motivation. See DESIGN.md §1.
 */

ChannelConfig
ChannelConfig::wifi()
{
    ChannelConfig c;
    c.name = "wifi";
    c.bandwidth_mbps = 105.0;
    c.bandwidth_jitter = 0.25;
    c.rtt_ms = 12.0;
    c.jitter_ms = 3.0;
    c.packet_loss = 4e-5;
    c.congestion_knee = 0.80;
    return c;
}

ChannelConfig
ChannelConfig::fiveGEmbb()
{
    ChannelConfig c;
    c.name = "5g-embb";
    c.bandwidth_mbps = 170.0;
    c.bandwidth_jitter = 0.45; // mmWave is bursty
    c.rtt_ms = 28.0;
    c.jitter_ms = 6.0;
    c.packet_loss = 2e-5;
    c.congestion_knee = 0.85;
    return c;
}

ChannelConfig
ChannelConfig::fiveGUrllc()
{
    ChannelConfig c;
    c.name = "5g-urllc";
    c.bandwidth_mbps = 4.0; // low-bandwidth, latency-optimized slice
    c.bandwidth_jitter = 0.10;
    c.rtt_ms = 4.0;
    c.jitter_ms = 0.5;
    c.packet_loss = 1e-5;
    c.congestion_knee = 0.90;
    return c;
}

NetworkChannel::NetworkChannel(const ChannelConfig &config, u64 seed)
    : config_(config), rng_(seed)
{
    GSSR_ASSERT(config_.bandwidth_mbps > 0.0, "bandwidth must be > 0");
    GSSR_ASSERT(config_.mtu_bytes > 0, "mtu must be > 0");
}

TransmitResult
NetworkChannel::transmitFrame(size_t frame_bytes, f64 offered_load_mbps)
{
    TransmitResult result;
    result.packets =
        int(ceilDiv(i64(frame_bytes), i64(config_.mtu_bytes)));
    frames_total_ += 1;

    // Sample this frame's effective capacity.
    f64 capacity = config_.bandwidth_mbps *
                   std::max(0.05, rng_.normal(1.0,
                                              config_.bandwidth_jitter));

    // Congestion drop: ramps from 0 at the knee to 1 at 2x capacity.
    f64 knee = capacity * config_.congestion_knee;
    if (offered_load_mbps > knee) {
        f64 overload = (offered_load_mbps - knee) / (capacity * 2.0 - knee);
        if (rng_.bernoulli(clamp(overload, 0.0, 1.0))) {
            result.dropped = true;
            frames_dropped_ += 1;
            return result;
        }
    }

    // Random per-packet loss; any lost packet drops the frame.
    f64 frame_loss =
        1.0 - std::pow(1.0 - config_.packet_loss, f64(result.packets));
    if (rng_.bernoulli(frame_loss)) {
        result.dropped = true;
        frames_dropped_ += 1;
        return result;
    }

    f64 serialization_ms =
        f64(frame_bytes) * 8.0 / (capacity * 1e6) * 1e3;
    f64 propagation_ms =
        config_.rtt_ms * 0.5 +
        std::abs(rng_.normal(0.0, config_.jitter_ms));
    result.latency_ms = serialization_ms + propagation_ms;
    latency_stats_.add(result.latency_ms);
    return result;
}

} // namespace gssr
