#include "net/channel.hh"

#include <cmath>
#include <string>

#include "common/mathutil.hh"
#include "net/packetizer.hh"
#include "obs/telemetry.hh"

namespace gssr
{

/*
 * Capacity calibration note: these capacities are expressed relative
 * to *this repository's* codec, which is ~3x less efficient than the
 * H.265/VP9 encoders of the paper's testbed (block codec, simple
 * entropy coding). What the experiments depend on is the ratio of
 * stream bitrate to channel capacity: a 720p60 stream (~40-70
 * Mbit/s here depending on the game) must fit comfortably, while a
 * 2K stream (~3x the bytes, ~215 Mbit/s) must drop heavily on WiFi
 * (~90 %) and substantially on 5G mmWave (~44 %) — the paper's
 * Sec. II-A motivation. See DESIGN.md §1.
 */

ChannelConfig
ChannelConfig::wifi()
{
    ChannelConfig c;
    c.name = "wifi";
    c.bandwidth_mbps = 105.0;
    c.bandwidth_jitter = 0.25;
    c.rtt_ms = 12.0;
    c.jitter_ms = 3.0;
    c.packet_loss = 4e-5;
    c.congestion_knee = 0.80;
    return c;
}

ChannelConfig
ChannelConfig::wifiBursty()
{
    // WiFi through a fading link: ~2-frame loss bursts every ~2 s at
    // 60 FPS (long-run burst loss ~1.5 %), on top of the base model.
    ChannelConfig c = wifi();
    c.name = "wifi-bursty";
    c.ge_p_enter_burst = 0.008;
    c.ge_p_exit_burst = 0.5;
    c.ge_loss_good = 0.0;
    c.ge_loss_bad = 1.0;
    return c;
}

ChannelConfig
ChannelConfig::fiveGEmbb()
{
    ChannelConfig c;
    c.name = "5g-embb";
    c.bandwidth_mbps = 170.0;
    c.bandwidth_jitter = 0.45; // mmWave is bursty
    c.rtt_ms = 28.0;
    c.jitter_ms = 6.0;
    c.packet_loss = 2e-5;
    c.congestion_knee = 0.85;
    return c;
}

ChannelConfig
ChannelConfig::fiveGUrllc()
{
    ChannelConfig c;
    c.name = "5g-urllc";
    c.bandwidth_mbps = 4.0; // low-bandwidth, latency-optimized slice
    c.bandwidth_jitter = 0.10;
    c.rtt_ms = 4.0;
    c.jitter_ms = 0.5;
    c.packet_loss = 1e-5;
    c.congestion_knee = 0.90;
    return c;
}

const char *
dropCauseName(DropCause cause)
{
    switch (cause) {
      case DropCause::None:
        return "none";
      case DropCause::Congestion:
        return "congestion";
      case DropCause::Burst:
        return "burst";
      case DropCause::Random:
        return "random";
      case DropCause::Scenario:
        return "scenario";
    }
    return "?";
}

NetworkChannel::NetworkChannel(const ChannelConfig &config, u64 seed)
    : config_(config), seed_(seed), rng_(seed),
      feedback_rng_(seed ^ 0x9e3779b97f4a7c15ULL)
{
    GSSR_ASSERT(config_.bandwidth_mbps > 0.0, "bandwidth must be > 0");
    GSSR_ASSERT(config_.mtu_bytes > kPacketHeaderBytes,
                "mtu must exceed the wire packet header");
    GSSR_ASSERT(config_.packet_loss >= 0.0 && config_.packet_loss <= 1.0,
                "packet_loss must be a probability in [0, 1]");
    GSSR_ASSERT(config_.bandwidth_jitter >= 0.0 &&
                    config_.bandwidth_jitter <= 1.0,
                "bandwidth_jitter must be in [0, 1]");
    GSSR_ASSERT(config_.congestion_knee > 0.0 &&
                    config_.congestion_knee <= 1.0,
                "congestion_knee must be in (0, 1]");
    GSSR_ASSERT(config_.jitter_ms >= 0.0, "jitter_ms must be >= 0");
    GSSR_ASSERT(config_.rtt_ms >= 0.0, "rtt_ms must be >= 0");
    GSSR_ASSERT(config_.ge_p_enter_burst >= 0.0 &&
                    config_.ge_p_enter_burst <= 1.0 &&
                    config_.ge_p_exit_burst >= 0.0 &&
                    config_.ge_p_exit_burst <= 1.0 &&
                    config_.ge_loss_good >= 0.0 &&
                    config_.ge_loss_good <= 1.0 &&
                    config_.ge_loss_bad >= 0.0 &&
                    config_.ge_loss_bad <= 1.0,
                "Gilbert–Elliott parameters must be probabilities");
}

NetworkChannel::NetworkChannel(const ChannelConfig &config, u64 seed,
                               FaultScenario scenario)
    : NetworkChannel(config, seed)
{
    scenario_ = std::move(scenario);
}

void
NetworkChannel::setScenario(FaultScenario scenario)
{
    scenario_ = std::move(scenario);
}

void
NetworkChannel::setTelemetry(obs::Telemetry *telemetry, i32 track)
{
    telemetry_ = telemetry;
    telemetry_track_ = track;
    if (!telemetry_)
        return;
    obs::MetricsRegistry &reg = telemetry_->registry();
    tm_frames_total_ = reg.counter("net.frames_total");
    tm_pkt_total_ = reg.counter("net.pkt.total");
    tm_pkt_lost_ = reg.counter("net.pkt.lost");
    for (size_t c = 1; c < tm_drops_by_cause_.size(); ++c) {
        tm_drops_by_cause_[c] = reg.counter(
            std::string("net.drops.") + dropCauseName(DropCause(c)));
    }
}

void
NetworkChannel::reset()
{
    rng_ = Rng(seed_);
    feedback_rng_ = Rng(seed_ ^ 0x9e3779b97f4a7c15ULL);
    latency_stats_ = SampleStats();
    frames_total_ = 0;
    frames_dropped_ = 0;
    packets_total_ = 0;
    packets_lost_ = 0;
    drops_by_cause_ = {};
    ge_bad_ = false;
}

TransmitResult
NetworkChannel::transmitFrame(size_t frame_bytes, f64 offered_load_mbps)
{
    TransmitResult result;
    result.packets = wirePacketCount(frame_bytes, config_.mtu_bytes);
    // The loss model keeps using the legacy header-blind estimate the
    // seeded replays were recorded with: switching it to the real
    // packetizer count would shift every bernoulli threshold and break
    // the checked-in golden fingerprints for a model-only constant.
    const int loss_model_packets =
        int(ceilDiv(i64(frame_bytes), i64(config_.mtu_bytes)));
    const FaultEvent effect = scenario_.effectAt(frames_total_);
    frames_total_ += 1;
    if (telemetry_)
        telemetry_->registry().add(tm_frames_total_);

    auto drop = [&](DropCause cause) {
        result.dropped = true;
        result.cause = cause;
        frames_dropped_ += 1;
        drops_by_cause_[size_t(cause)] += 1;
        if (telemetry_)
            telemetry_->registry().add(tm_drops_by_cause_[size_t(cause)]);
        return result;
    };

    // Advance the Gilbert–Elliott chain (one transition draw per
    // frame whenever the model is enabled, so replay is stable).
    const bool ge_enabled = config_.ge_p_enter_burst > 0.0;
    if (ge_enabled) {
        f64 p_flip = ge_bad_ ? config_.ge_p_exit_burst
                             : config_.ge_p_enter_burst;
        if (rng_.bernoulli(p_flip))
            ge_bad_ = !ge_bad_;
    }
    const bool in_burst = ge_bad_ || effect.force_burst;

    // Sample this frame's effective capacity.
    f64 capacity = config_.bandwidth_mbps * effect.bandwidth_scale *
                   std::max(0.05, rng_.normal(1.0,
                                              config_.bandwidth_jitter));

    // Congestion drop: ramps from 0 at the knee to 1 at 2x capacity.
    f64 knee = capacity * config_.congestion_knee;
    if (offered_load_mbps > knee) {
        f64 overload = (offered_load_mbps - knee) / (capacity * 2.0 - knee);
        if (rng_.bernoulli(clamp(overload, 0.0, 1.0)))
            return drop(DropCause::Congestion);
    }

    // Burst loss: the Bad state of the Gilbert–Elliott chain (or a
    // scenario-pinned burst window).
    if (in_burst && rng_.bernoulli(config_.ge_loss_bad))
        return drop(DropCause::Burst);

    // Random per-packet loss; any lost packet drops the frame.
    f64 loss_good = ge_enabled ? config_.ge_loss_good : 0.0;
    f64 frame_loss =
        1.0 -
        std::pow(1.0 - config_.packet_loss, f64(loss_model_packets));
    frame_loss = 1.0 - (1.0 - frame_loss) * (1.0 - loss_good);
    if (rng_.bernoulli(frame_loss))
        return drop(DropCause::Random);

    // Scripted extra loss from the active fault window.
    if (effect.extra_loss > 0.0 && rng_.bernoulli(effect.extra_loss))
        return drop(DropCause::Scenario);

    f64 serialization_ms =
        f64(frame_bytes) * 8.0 / (capacity * 1e6) * 1e3;
    f64 propagation_ms =
        config_.rtt_ms * 0.5 + effect.extra_rtt_ms +
        std::abs(rng_.normal(0.0, config_.jitter_ms));
    result.latency_ms = serialization_ms + propagation_ms;
    latency_stats_.add(result.latency_ms);
    return result;
}

PacketTransmitResult
NetworkChannel::transmitPackets(size_t wire_bytes, int packet_count,
                                f64 offered_load_mbps)
{
    GSSR_ASSERT(packet_count >= 1, "packet train needs >= 1 packet");
    PacketTransmitResult result;
    result.packets = packet_count;
    result.delivered.assign(size_t(packet_count), true);

    const FaultEvent effect = scenario_.effectAt(frames_total_);
    frames_total_ += 1;
    packets_total_ += packet_count;
    if (telemetry_) {
        telemetry_->registry().add(tm_frames_total_);
        telemetry_->registry().add(tm_pkt_total_, packet_count);
    }

    // One capacity sample per frame: the packets of one train share
    // the link's fading state, like transmitFrame's draw.
    f64 capacity = config_.bandwidth_mbps * effect.bandwidth_scale *
                   std::max(0.05, rng_.normal(1.0,
                                              config_.bandwidth_jitter));
    f64 knee = capacity * config_.congestion_knee;
    f64 p_congestion = 0.0;
    if (offered_load_mbps > knee) {
        p_congestion = clamp((offered_load_mbps - knee) /
                                 (capacity * 2.0 - knee),
                             0.0, 1.0);
    }

    const bool ge_enabled = config_.ge_p_enter_burst > 0.0;
    auto lose = [&](int i, DropCause cause) {
        result.delivered[size_t(i)] = false;
        result.packets_lost += 1;
        result.lost_by_cause[size_t(cause)] += 1;
    };

    for (int i = 0; i < packet_count; ++i) {
        // The Gilbert–Elliott chain advances per packet: a fade that
        // lasted a whole frame at frame granularity now clips a span
        // of consecutive packets — the loss shape FEC parity covers.
        if (ge_enabled) {
            f64 p_flip = ge_bad_ ? config_.ge_p_exit_burst
                                 : config_.ge_p_enter_burst;
            if (rng_.bernoulli(p_flip))
                ge_bad_ = !ge_bad_;
        }
        const bool in_burst = ge_bad_ || effect.force_burst;
        if (p_congestion > 0.0 && rng_.bernoulli(p_congestion)) {
            lose(i, DropCause::Congestion);
            continue;
        }
        if (in_burst && rng_.bernoulli(config_.ge_loss_bad)) {
            lose(i, DropCause::Burst);
            continue;
        }
        f64 p_random = config_.packet_loss +
                       (ge_enabled ? config_.ge_loss_good : 0.0);
        if (p_random > 0.0 && rng_.bernoulli(std::min(p_random, 1.0))) {
            lose(i, DropCause::Random);
            continue;
        }
        if (effect.extra_loss > 0.0 &&
            rng_.bernoulli(effect.extra_loss))
            lose(i, DropCause::Scenario);
    }

    packets_lost_ += result.packets_lost;
    if (telemetry_ && result.packets_lost > 0)
        telemetry_->registry().add(tm_pkt_lost_, result.packets_lost);

    f64 serialization_ms =
        f64(wire_bytes) * 8.0 / (capacity * 1e6) * 1e3;
    f64 propagation_ms =
        config_.rtt_ms * 0.5 + effect.extra_rtt_ms +
        std::abs(rng_.normal(0.0, config_.jitter_ms));
    result.latency_ms = serialization_ms + propagation_ms;
    latency_stats_.add(result.latency_ms);
    return result;
}

f64
NetworkChannel::feedbackDelayMs()
{
    const FaultEvent effect = scenario_.effectAt(frames_total_);
    return config_.rtt_ms * 0.5 + effect.extra_rtt_ms +
           std::abs(feedback_rng_.normal(0.0, config_.jitter_ms));
}

} // namespace gssr
