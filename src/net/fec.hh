/**
 * @file
 * GF(256) Reed–Solomon erasure coding for the packetized wire format.
 *
 * A frame's data shards are protected by M parity shards computed
 * from a systematic Vandermonde encoding matrix: the top K rows are
 * the identity (data shards pass through untouched) and any K of the
 * K+M total rows are linearly independent, so the receiver can
 * reconstruct *all* K data shards from any K received shards — i.e.
 * the code tolerates any erasure pattern of at most M shards. This is
 * the classic erasure-only RS construction real game-streaming stacks
 * (e.g. Sunshine/Moonlight) apply per frame: recovery costs zero
 * extra RTT, unlike the reactive NACK -> intra-refresh path.
 *
 * Arithmetic is over GF(2^8) with the AES-adjacent reduction
 * polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d), the field every RS
 * storage/network codec uses.
 */

#ifndef GSSR_NET_FEC_HH
#define GSSR_NET_FEC_HH

#include <vector>

#include "common/types.hh"

namespace gssr
{

/** Multiply two GF(256) elements. */
u8 gfMul(u8 a, u8 b);

/** Divide @p a by @p b in GF(256); b must be non-zero. */
u8 gfDiv(u8 a, u8 b);

/** Multiplicative inverse in GF(256); a must be non-zero. */
u8 gfInv(u8 a);

/**
 * Systematic Reed–Solomon erasure codec over GF(256) for one block of
 * @p data_shards equally sized data shards plus @p parity_shards
 * parity shards. data_shards >= 1, parity_shards >= 0, and
 * data_shards + parity_shards <= 255 (distinct Vandermonde nodes).
 */
class FecCodec
{
  public:
    FecCodec(int data_shards, int parity_shards);

    int dataShards() const { return k_; }
    int parityShards() const { return m_; }
    int totalShards() const { return k_ + m_; }

    /**
     * Compute the parity shards for one block. @p data holds k
     * equally sized shards; @p parity receives m shards of the same
     * length (resized by this call).
     */
    void encode(const std::vector<std::vector<u8>> &data,
                std::vector<std::vector<u8>> &parity) const;

    /**
     * Reconstruct the missing *data* shards of one block in place.
     * @p shards holds k+m entries (data first, then parity);
     * entry i is consulted only when present[i] is true, and every
     * present shard must have the same length. Missing data shards
     * are rebuilt bit-exactly when at least k shards of the block are
     * present; otherwise the call returns false and @p shards is
     * unchanged (the loud failure mode — more than M erasures is
     * beyond the code's correction budget).
     */
    bool reconstruct(std::vector<std::vector<u8>> &shards,
                     const std::vector<bool> &present) const;

  private:
    int k_;
    int m_;
    /** (k+m) x k encoding matrix, row-major; rows 0..k-1 = identity. */
    std::vector<u8> matrix_;
};

/**
 * Deterministic, seedable erasure pattern: marks exactly @p losses of
 * @p shards entries false (lost), the rest true. The same seed always
 * yields the same pattern — the reconstruction property tests and the
 * FEC bench replay shard loss through this single path.
 */
std::vector<bool> erasurePattern(int shards, int losses, u64 seed);

} // namespace gssr

#endif // GSSR_NET_FEC_HH
