/**
 * @file
 * Packetized wire format for the streaming bitstream.
 *
 * The entropy-coded frame payload is split into MTU-sized packets:
 * each packet carries a fixed 21-byte header followed by one shard of
 * payload. Data shards are grouped into FEC blocks of at most
 * kMaxDataShardsPerBlock shards; each block gets M parity shards from
 * the GF(256) Reed–Solomon codec (net/fec.hh) sized by the
 * configured overhead ratio, so a block survives any loss of up to M
 * of its packets with zero extra RTT.
 *
 * Wire packet header (little-endian, kPacketHeaderBytes total):
 *
 *   off sz field         meaning
 *   --- -- ------------- -------------------------------------------
 *    0   2 magic         0x4753 ("GS")
 *    2   1 version       kPacketVersion
 *    3   1 flags         bit 0: parity shard
 *    4   4 frame_id      stream index of the carried frame
 *    8   2 slice_id      slice containing the first payload byte
 *                        (0xffff for parity / unsliced streams)
 *   10   1 block         FEC block index within the frame
 *   11   2 shard_index   shard position within the block (data
 *                        shards first, then parity)
 *   13   1 data_shards   the block's K
 *   14   1 parity_shards the block's M
 *   15   2 payload_len   payload bytes carried by this packet
 *   17   4 frame_bytes   total frame payload size
 *
 * Both endpoints share the WireConfig, so the receiver re-derives
 * the exact shard geometry from frame_bytes alone and can validate
 * every header field against it — malformed packets are dropped, not
 * trusted.
 */

#ifndef GSSR_NET_PACKETIZER_HH
#define GSSR_NET_PACKETIZER_HH

#include <utility>
#include <vector>

#include "common/types.hh"

namespace gssr
{

/** Wire packet header size (see file comment for the layout). */
constexpr int kPacketHeaderBytes = 21;

/** Wire packet magic ("GS", little-endian). */
constexpr u16 kPacketMagic = 0x4753;

/** Wire format version. */
constexpr u8 kPacketVersion = 1;

/** flags bit: this packet carries a parity shard. */
constexpr u8 kPacketFlagParity = 0x01;

/** slice_id value when the payload is not slice-addressable. */
constexpr u16 kSliceIdNone = 0xffff;

/**
 * Data shards per FEC block cap. Bounding K bounds both the O(K^2)
 * reconstruction work and the parity granularity: a large frame
 * splits into several independently recoverable blocks.
 */
constexpr int kMaxDataShardsPerBlock = 64;

/** Wire-format parameters shared by sender and receiver. */
struct WireConfig
{
    /** Path MTU: header + shard payload per packet. */
    int mtu_bytes = 1400;

    /**
     * FEC overhead as a parity/data shard ratio. 0 disables parity;
     * any positive value yields at least one parity shard per block
     * (M_b = max(1, round(K_b * fec_overhead))).
     */
    f64 fec_overhead = 0.0;
};

/** Parsed wire packet header. */
struct PacketHeader
{
    u32 frame_id = 0;
    u16 slice_id = kSliceIdNone;
    u8 block = 0;
    u16 shard_index = 0;
    u8 data_shards = 0;
    u8 parity_shards = 0;
    u16 payload_len = 0;
    u32 frame_bytes = 0;
    bool parity = false;
};

/**
 * Shard geometry of one frame on the wire — a pure function of
 * (frame_bytes, WireConfig), computed identically on both ends.
 * Packets are ordered block by block, data shards before parity.
 */
struct WireGeometry
{
    size_t frame_bytes = 0;

    /** Payload bytes per full shard (mtu - header). */
    int shard_len = 0;

    /** Total packets (data + parity across all blocks). */
    int total_packets = 0;

    /** Total bytes on the wire (headers + data + parity). */
    size_t wire_bytes = 0;

    struct Block
    {
        int first_data_shard = 0; ///< global data-shard index
        int data_shards = 0;      ///< K of this block
        int parity_shards = 0;    ///< M of this block
        size_t byte_offset = 0;   ///< payload offset of the block
    };
    std::vector<Block> blocks;

    /** Total data shards across blocks. */
    int
    dataShardTotal() const
    {
        int n = 0;
        for (const Block &b : blocks)
            n += b.data_shards;
        return n;
    }

    /** Payload byte range [begin, end) of global data shard @p i. */
    std::pair<size_t, size_t> dataShardRange(int i) const;
};

/** Compute the wire geometry of one frame. frame_bytes must be > 0. */
WireGeometry wireGeometryFor(size_t frame_bytes,
                             const WireConfig &config);

/**
 * Packet count for a frame of @p frame_bytes without FEC — the
 * number a transport would actually emit (header-aware), reported by
 * TransmitResult::packets.
 */
int wirePacketCount(size_t frame_bytes, int mtu_bytes);

/** Delivery outcome of one frame's packet set. */
enum class WireOutcome
{
    Delivered,    ///< every data shard arrived
    FecRecovered, ///< data shards lost, all rebuilt from parity
    Partial,      ///< some data byte ranges are missing
    Lost,         ///< nothing usable arrived
};

/** Outcome name for tables. */
const char *wireOutcomeName(WireOutcome outcome);

/**
 * Pure-arithmetic evaluation of a delivery bitmap against a frame's
 * geometry: which outcome results, and which payload byte ranges are
 * usable. This is the accounting-mode path — sessions that never
 * materialize payload bytes share the exact decision procedure the
 * byte-level reassembler applies.
 *
 * @param delivered one flag per packet, in wire order.
 */
struct WireDeliveryEval
{
    WireOutcome outcome = WireOutcome::Delivered;
    int data_shards_lost = 0;
    int parity_shards_lost = 0;
    int shards_recovered = 0; ///< data shards rebuilt from parity

    /** Usable payload ranges, merged and sorted (Partial outcome). */
    std::vector<std::pair<size_t, size_t>> valid_ranges;
};

WireDeliveryEval evaluateWireDelivery(
    const WireGeometry &geometry, const std::vector<bool> &delivered);

/**
 * Split one frame payload into wire packets (header + shard each).
 * The final data shard of a block is zero-padded to shard_len inside
 * the FEC arithmetic but transmitted at its true length.
 *
 * @param slice_ranges optional slice table ([begin, end) payload
 *        ranges); when given, each data packet's header carries the
 *        slice containing its first payload byte.
 */
std::vector<std::vector<u8>> packetizeFrame(
    u32 frame_id, const std::vector<u8> &payload,
    const WireConfig &config,
    const std::vector<std::pair<size_t, size_t>> *slice_ranges =
        nullptr);

/** Parse one wire packet header. Returns false when malformed. */
bool parsePacketHeader(const std::vector<u8> &packet,
                       PacketHeader &header);

/** Result of reassembling one frame from received packets. */
struct ReassembledFrame
{
    WireOutcome outcome = WireOutcome::Lost;

    /** frame_bytes of payload; bytes outside valid_ranges are zero. */
    std::vector<u8> payload;

    /** Usable payload ranges, merged and sorted. */
    std::vector<std::pair<size_t, size_t>> valid_ranges;

    int data_shards_lost = 0;
    int shards_recovered = 0;

    /** Malformed/inconsistent packets rejected during parsing. */
    int packets_rejected = 0;
};

/**
 * Rebuild a frame payload from whatever packets arrived, running FEC
 * reconstruction per block. Tolerates malformed, truncated,
 * duplicated and reordered packets: anything whose header fails
 * validation against the geometry derived from frame_bytes is
 * counted in packets_rejected and otherwise ignored — never trusted
 * for memory layout.
 */
ReassembledFrame reassembleFrame(
    const std::vector<std::vector<u8>> &packets,
    const WireConfig &config);

} // namespace gssr

#endif // GSSR_NET_PACKETIZER_HH
