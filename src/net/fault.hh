/**
 * @file
 * Scripted fault scenarios for the network channel. A FaultScenario
 * is a deterministic schedule of FaultEvents — windows of frames in
 * which the channel misbehaves in a prescribed way (capacity
 * collapse, RTT spike, forced loss burst). Together with a fixed
 * channel seed this makes an entire faulty session bit-for-bit
 * reproducible, which is what the resilience benches and the
 * recovery-protocol tests replay.
 */

#ifndef GSSR_NET_FAULT_HH
#define GSSR_NET_FAULT_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace gssr
{

/**
 * One scheduled fault window, active for transmitted frames
 * [start_frame, end_frame).
 */
struct FaultEvent
{
    i64 start_frame = 0;
    i64 end_frame = 0; ///< exclusive

    /** Multiplier on the sampled channel capacity (1 = unchanged). */
    f64 bandwidth_scale = 1.0;

    /** Added one-way propagation delay (ms). */
    f64 extra_rtt_ms = 0.0;

    /** Additional independent frame-loss probability in [0, 1]. */
    f64 extra_loss = 0.0;

    /** Pin the Gilbert–Elliott chain in its Bad (burst) state. */
    bool force_burst = false;
};

/**
 * A named, ordered schedule of fault events. Events may overlap;
 * overlapping windows compose (scales multiply, delays add, loss
 * probabilities combine as independent events).
 */
struct FaultScenario
{
    std::string name = "none";
    std::vector<FaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Combined effect of all events covering @p frame. */
    FaultEvent effectAt(i64 frame) const;

    /** The clean channel (no scripted faults). */
    static FaultScenario none();

    /**
     * Forced loss burst: every frame in [start, start + frames) is
     * transmitted through a pinned-Bad Gilbert–Elliott channel.
     */
    static FaultScenario lossBurst(i64 start, i64 frames);

    /** Capacity collapses to @p scale of nominal for the window. */
    static FaultScenario bandwidthCollapse(i64 start, i64 frames,
                                           f64 scale = 0.25);

    /** One-way delay grows by @p extra_ms for the window. */
    static FaultScenario rttSpike(i64 start, i64 frames,
                                  f64 extra_ms = 80.0);

    /**
     * The kitchen sink: a loss burst, then a bandwidth collapse,
     * then an RTT spike, spaced @p period frames apart.
     */
    static FaultScenario mixed(i64 start, i64 period);
};

} // namespace gssr

#endif // GSSR_NET_FAULT_HH
