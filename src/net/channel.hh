/**
 * @file
 * Stochastic network channel simulation: the reproduction's stand-in
 * for the live WiFi / 5G links of the paper (Sec. II-A and the
 * network stage of the MTP breakdown, Fig. 10c).
 *
 * The model captures the behaviours the experiments depend on:
 *  - serialization latency proportional to compressed frame size,
 *  - base propagation delay (RTT/2) with jitter,
 *  - random per-packet loss (a lost packet drops the frame — game
 *    streams cannot wait for retransmission),
 *  - congestion drops that ramp up once the offered load approaches
 *    the channel's effective capacity (this is what produces the
 *    44 % / 90 % frame-drop numbers for 2K streams in the paper's
 *    motivation, and the 5G bandwidth/latency trade-off of the eMBB
 *    vs URLLC channels),
 *  - Gilbert–Elliott two-state burst loss (wireless fading produces
 *    correlated loss runs, not i.i.d. drops — the regime the
 *    loss-resilience subsystem recovers from),
 *  - scripted fault scenarios (net/fault.hh) replayed deterministically
 *    against the frame counter.
 */

#ifndef GSSR_NET_CHANNEL_HH
#define GSSR_NET_CHANNEL_HH

#include <array>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "net/fault.hh"

namespace gssr
{

namespace obs
{
class Telemetry;
}

/**
 * Loss evaluation granularity. Frame replays the legacy whole-frame
 * model (one loss decision per frame — the mode every checked-in
 * golden trace was recorded under, kept bit-identical). Packet
 * evaluates the Gilbert–Elliott chain, congestion and random loss
 * per *packet* via transmitPackets(), producing a delivery bitmap the
 * FEC/slice recovery machinery consumes.
 */
enum class LossGranularity
{
    Frame,
    Packet,
};

/** Static description of one wireless channel. */
struct ChannelConfig
{
    std::string name = "wifi";

    /** Mean effective application-level throughput (Mbit/s). */
    f64 bandwidth_mbps = 18.0;

    /** Relative standard deviation of per-frame bandwidth samples. */
    f64 bandwidth_jitter = 0.30;

    /** Base round-trip time (ms). */
    f64 rtt_ms = 12.0;

    /** Standard deviation of one-way delay jitter (ms). */
    f64 jitter_ms = 2.0;

    /** Independent per-packet loss probability. */
    f64 packet_loss = 2e-4;

    /**
     * Fraction of the sampled capacity at which congestion drops
     * start; above it, drop probability ramps linearly to 1 at
     * 2x capacity.
     */
    f64 congestion_knee = 0.85;

    /** Path MTU (bytes per packet, including the wire header). */
    int mtu_bytes = 1400;

    /** Whether losses hit whole frames or individual packets. */
    LossGranularity granularity = LossGranularity::Frame;

    /**
     * Gilbert–Elliott burst-loss model, evaluated at frame
     * granularity: before each transmission the chain moves
     * Good -> Bad with probability ge_p_enter_burst and Bad -> Good
     * with ge_p_exit_burst; while Bad, a frame is lost with
     * probability ge_loss_bad (plus ge_loss_good while Good). The
     * long-run loss rate is
     *   pi_bad * ge_loss_bad + (1 - pi_bad) * ge_loss_good,
     * with pi_bad = p_enter / (p_enter + p_exit), and the mean burst
     * sojourn is 1 / p_exit frames. Disabled by default
     * (ge_p_enter_burst == 0).
     */
    f64 ge_p_enter_burst = 0.0;
    f64 ge_p_exit_burst = 0.0;
    f64 ge_loss_good = 0.0;
    f64 ge_loss_bad = 1.0;

    /** Typical home/venue WiFi (high loss variance). */
    static ChannelConfig wifi();

    /** WiFi with a fading-induced Gilbert–Elliott burst process. */
    static ChannelConfig wifiBursty();

    /** 5G mmWave eMBB: high bandwidth, higher latency. */
    static ChannelConfig fiveGEmbb();

    /** 5G URLLC: very low latency, very low bandwidth. */
    static ChannelConfig fiveGUrllc();
};

/** Why a frame was dropped. */
enum class DropCause
{
    None,       ///< delivered
    Congestion, ///< offered load exceeded the sampled capacity knee
    Burst,      ///< Gilbert–Elliott Bad-state loss
    Random,     ///< i.i.d. per-packet loss
    Scenario,   ///< scripted FaultEvent extra loss
};

/** Drop cause name for tables. */
const char *dropCauseName(DropCause cause);

/** Outcome of transmitting one frame. */
struct TransmitResult
{
    /** One-way transfer latency (serialization + propagation), ms. */
    f64 latency_ms = 0.0;

    /** True when the frame was lost (loss or congestion). */
    bool dropped = false;

    /** What dropped the frame (None when delivered). */
    DropCause cause = DropCause::None;

    /**
     * Number of wire packets the frame splits into — the real
     * packetizer count (header-aware: ceil(bytes / (mtu - header)),
     * see net/packetizer.hh), not the raw ceil(bytes / mtu) estimate
     * this field used to carry.
     */
    int packets = 0;
};

/** Outcome of transmitting one frame's packets (Packet granularity). */
struct PacketTransmitResult
{
    /** One-way transfer latency of the delivered packets (ms). */
    f64 latency_ms = 0.0;

    /** Packets offered to the channel. */
    int packets = 0;

    /** Packets lost (any cause). */
    int packets_lost = 0;

    /** Per-packet delivery flags, in wire order. */
    std::vector<bool> delivered;

    /** Lost-packet count per DropCause. */
    std::array<i32, 5> lost_by_cause{};

    /** True when any packet was lost to congestion or burst fading —
     *  the AIMD backoff signal, raised even when FEC recovers the
     *  frame (parity must not mask congestion from the controller). */
    bool
    congestionSignal() const
    {
        return lost_by_cause[size_t(DropCause::Congestion)] > 0 ||
               lost_by_cause[size_t(DropCause::Burst)] > 0;
    }
};

/**
 * One simulated wireless link. Deterministic for a given seed.
 */
class NetworkChannel
{
  public:
    NetworkChannel(const ChannelConfig &config, u64 seed);

    NetworkChannel(const ChannelConfig &config, u64 seed,
                   FaultScenario scenario);

    /**
     * Install a scripted fault schedule, applied against the
     * channel's transmitted-frame counter.
     */
    void setScenario(FaultScenario scenario);

    /**
     * Rewind the channel to its freshly constructed state: reseeds
     * the generator, clears the statistics and the Gilbert–Elliott
     * state, and restarts the scenario frame counter. A reset channel
     * replays the exact same drop/latency sequence, so benches can
     * reuse one channel across runs without carrying stats over.
     */
    void reset();

    /**
     * Attach a telemetry sink (not owned; null detaches). Every
     * transmitted frame then bumps net.frames_total and a per-cause
     * net.drops.<cause> counter on loss — the registry-side mirror of
     * dropCount(), shared fleet-wide when sessions share a handle.
     * Write-only: attaching never changes the replayed drop sequence.
     */
    void setTelemetry(obs::Telemetry *telemetry, i32 track);

    /**
     * Transmit one compressed frame.
     * @param frame_bytes compressed frame size.
     * @param offered_load_mbps total stream bitrate currently offered
     *        to the channel (drives congestion drops).
     */
    TransmitResult transmitFrame(size_t frame_bytes,
                                 f64 offered_load_mbps);

    /**
     * Transmit one frame's packet train, evaluating the loss chain
     * per packet (Packet granularity; the packetizer supplies the
     * count and interprets the returned bitmap). The effective
     * capacity is sampled once per frame — packets of one frame share
     * the fading state — while the congestion, Gilbert–Elliott, random
     * and scenario draws run per packet, so a burst clips a span of
     * packets instead of whole frames: exactly the loss shape
     * per-frame FEC parity is sized against.
     *
     * @param wire_bytes total bytes on the wire (payload + headers +
     *        parity) — drives serialization latency.
     * @param packet_count packets in the train.
     * @param offered_load_mbps stream bitrate offered to the channel.
     */
    PacketTransmitResult transmitPackets(size_t wire_bytes,
                                         int packet_count,
                                         f64 offered_load_mbps);

    /**
     * Sample a client -> server feedback-path delay (RTT/2 + jitter,
     * plus any scripted RTT spike active at the current frame).
     * Drawn from an independent generator so the data-path replay is
     * unaffected by whether feedback is in use.
     */
    f64 feedbackDelayMs();

    /** Delivered (non-dropped) frame latency statistics. */
    const SampleStats &latencyStats() const { return latency_stats_; }

    /** Fraction of transmitted frames dropped so far. */
    f64
    dropRate() const
    {
        return frames_total_ ? f64(frames_dropped_) / f64(frames_total_)
                             : 0.0;
    }

    /** Frames offered to the channel so far. */
    i64 framesTotal() const { return frames_total_; }

    /** Frames dropped so far. */
    i64 framesDropped() const { return frames_dropped_; }

    /** Frames dropped for one specific cause. */
    i64
    dropCount(DropCause cause) const
    {
        return drops_by_cause_[size_t(cause)];
    }

    /** Packets offered so far (Packet granularity only). */
    i64 packetsTotal() const { return packets_total_; }

    /** Packets lost so far (Packet granularity only). */
    i64 packetsLost() const { return packets_lost_; }

    /** Fraction of transmitted packets lost so far. */
    f64
    packetLossRate() const
    {
        return packets_total_
                   ? f64(packets_lost_) / f64(packets_total_)
                   : 0.0;
    }

    /** True while the Gilbert–Elliott chain is in its Bad state. */
    bool inBurst() const { return ge_bad_; }

    const ChannelConfig &config() const { return config_; }
    const FaultScenario &scenario() const { return scenario_; }

  private:
    ChannelConfig config_;
    u64 seed_;
    Rng rng_;
    Rng feedback_rng_;
    FaultScenario scenario_;
    SampleStats latency_stats_;
    i64 frames_total_ = 0;
    i64 frames_dropped_ = 0;
    i64 packets_total_ = 0;
    i64 packets_lost_ = 0;
    std::array<i64, 5> drops_by_cause_{};
    bool ge_bad_ = false;

    obs::Telemetry *telemetry_ = nullptr;
    i32 telemetry_track_ = 0;
    u32 tm_frames_total_ = 0;
    u32 tm_pkt_total_ = 0;
    u32 tm_pkt_lost_ = 0;
    std::array<u32, 5> tm_drops_by_cause_{}; ///< [DropCause] ids
};

/**
 * Bitrate (Mbit/s) of a stream of @p bytes_per_frame at @p fps —
 * helper for computing offered load from codec output.
 */
inline f64
streamBitrateMbps(f64 bytes_per_frame, f64 fps)
{
    return bytes_per_frame * 8.0 * fps / 1e6;
}

} // namespace gssr

#endif // GSSR_NET_CHANNEL_HH
