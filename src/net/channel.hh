/**
 * @file
 * Stochastic network channel simulation: the reproduction's stand-in
 * for the live WiFi / 5G links of the paper (Sec. II-A and the
 * network stage of the MTP breakdown, Fig. 10c).
 *
 * The model captures the behaviours the experiments depend on:
 *  - serialization latency proportional to compressed frame size,
 *  - base propagation delay (RTT/2) with jitter,
 *  - random per-packet loss (a lost packet drops the frame — game
 *    streams cannot wait for retransmission),
 *  - congestion drops that ramp up once the offered load approaches
 *    the channel's effective capacity (this is what produces the
 *    44 % / 90 % frame-drop numbers for 2K streams in the paper's
 *    motivation, and the 5G bandwidth/latency trade-off of the eMBB
 *    vs URLLC channels).
 */

#ifndef GSSR_NET_CHANNEL_HH
#define GSSR_NET_CHANNEL_HH

#include <string>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace gssr
{

/** Static description of one wireless channel. */
struct ChannelConfig
{
    std::string name = "wifi";

    /** Mean effective application-level throughput (Mbit/s). */
    f64 bandwidth_mbps = 18.0;

    /** Relative standard deviation of per-frame bandwidth samples. */
    f64 bandwidth_jitter = 0.30;

    /** Base round-trip time (ms). */
    f64 rtt_ms = 12.0;

    /** Standard deviation of one-way delay jitter (ms). */
    f64 jitter_ms = 2.0;

    /** Independent per-packet loss probability. */
    f64 packet_loss = 2e-4;

    /**
     * Fraction of the sampled capacity at which congestion drops
     * start; above it, drop probability ramps linearly to 1 at
     * 2x capacity.
     */
    f64 congestion_knee = 0.85;

    /** Path MTU (bytes per packet). */
    int mtu_bytes = 1400;

    /** Typical home/venue WiFi (high loss variance). */
    static ChannelConfig wifi();

    /** 5G mmWave eMBB: high bandwidth, higher latency. */
    static ChannelConfig fiveGEmbb();

    /** 5G URLLC: very low latency, very low bandwidth. */
    static ChannelConfig fiveGUrllc();
};

/** Outcome of transmitting one frame. */
struct TransmitResult
{
    /** One-way transfer latency (serialization + propagation), ms. */
    f64 latency_ms = 0.0;

    /** True when the frame was lost (loss or congestion). */
    bool dropped = false;

    /** Number of packets the frame was split into. */
    int packets = 0;
};

/**
 * One simulated wireless link. Deterministic for a given seed.
 */
class NetworkChannel
{
  public:
    NetworkChannel(const ChannelConfig &config, u64 seed);

    /**
     * Transmit one compressed frame.
     * @param frame_bytes compressed frame size.
     * @param offered_load_mbps total stream bitrate currently offered
     *        to the channel (drives congestion drops).
     */
    TransmitResult transmitFrame(size_t frame_bytes,
                                 f64 offered_load_mbps);

    /** Delivered (non-dropped) frame latency statistics. */
    const SampleStats &latencyStats() const { return latency_stats_; }

    /** Fraction of transmitted frames dropped so far. */
    f64
    dropRate() const
    {
        return frames_total_ ? f64(frames_dropped_) / f64(frames_total_)
                             : 0.0;
    }

    /** Frames offered to the channel so far. */
    i64 framesTotal() const { return frames_total_; }

    const ChannelConfig &config() const { return config_; }

  private:
    ChannelConfig config_;
    Rng rng_;
    SampleStats latency_stats_;
    i64 frames_total_ = 0;
    i64 frames_dropped_ = 0;
};

/**
 * Bitrate (Mbit/s) of a stream of @p bytes_per_frame at @p fps —
 * helper for computing offered load from codec output.
 */
inline f64
streamBitrateMbps(f64 bytes_per_frame, f64 fps)
{
    return bytes_per_frame * 8.0 * fps / 1e6;
}

} // namespace gssr

#endif // GSSR_NET_CHANNEL_HH
