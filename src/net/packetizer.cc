#include "net/packetizer.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"
#include "net/fec.hh"

namespace gssr
{

namespace
{

/** Append a merged [begin, end) range (ranges arrive sorted). */
void
appendRange(std::vector<std::pair<size_t, size_t>> &ranges,
            size_t begin, size_t end)
{
    if (begin >= end)
        return;
    if (!ranges.empty() && ranges.back().second == begin)
        ranges.back().second = end;
    else
        ranges.emplace_back(begin, end);
}

/** Largest frame the wire format can address with u8 block ids. */
size_t
maxWireFrameBytes(int shard_len)
{
    return size_t(255) * size_t(kMaxDataShardsPerBlock) *
           size_t(shard_len);
}

u16
readU16(const u8 *p)
{
    return u16(u16(p[0]) | (u16(p[1]) << 8));
}

u32
readU32(const u8 *p)
{
    return u32(p[0]) | (u32(p[1]) << 8) | (u32(p[2]) << 16) |
           (u32(p[3]) << 24);
}

void
writeU16(std::vector<u8> &out, u16 v)
{
    out.push_back(u8(v & 0xff));
    out.push_back(u8(v >> 8));
}

void
writeU32(std::vector<u8> &out, u32 v)
{
    out.push_back(u8(v & 0xff));
    out.push_back(u8((v >> 8) & 0xff));
    out.push_back(u8((v >> 16) & 0xff));
    out.push_back(u8(v >> 24));
}

} // namespace

std::pair<size_t, size_t>
WireGeometry::dataShardRange(int i) const
{
    size_t begin = size_t(i) * size_t(shard_len);
    size_t end = std::min(frame_bytes, begin + size_t(shard_len));
    return {begin, end};
}

WireGeometry
wireGeometryFor(size_t frame_bytes, const WireConfig &config)
{
    GSSR_ASSERT(config.mtu_bytes > kPacketHeaderBytes,
                "mtu must exceed the packet header");
    GSSR_ASSERT(config.fec_overhead >= 0.0,
                "fec_overhead must be >= 0");
    GSSR_ASSERT(frame_bytes > 0, "cannot packetize an empty frame");

    WireGeometry g;
    g.frame_bytes = frame_bytes;
    g.shard_len = config.mtu_bytes - kPacketHeaderBytes;
    GSSR_ASSERT(frame_bytes <= maxWireFrameBytes(g.shard_len),
                "frame too large for the wire format");

    const int data_total =
        int(ceilDiv(i64(frame_bytes), i64(g.shard_len)));
    const int n_blocks =
        int(ceilDiv(i64(data_total), i64(kMaxDataShardsPerBlock)));
    const int base = data_total / n_blocks;
    const int extra = data_total % n_blocks;

    int first = 0;
    for (int b = 0; b < n_blocks; ++b) {
        WireGeometry::Block block;
        block.first_data_shard = first;
        block.data_shards = base + (b < extra ? 1 : 0);
        if (config.fec_overhead > 0.0) {
            block.parity_shards = std::max(
                1, int(std::lround(f64(block.data_shards) *
                                   config.fec_overhead)));
            block.parity_shards =
                std::min(block.parity_shards, 255 - block.data_shards);
        }
        block.byte_offset = size_t(first) * size_t(g.shard_len);
        first += block.data_shards;
        g.total_packets += block.data_shards + block.parity_shards;
        g.wire_bytes += size_t(block.parity_shards) *
                        size_t(g.shard_len);
        g.blocks.push_back(block);
    }
    g.wire_bytes += frame_bytes +
                    size_t(g.total_packets) *
                        size_t(kPacketHeaderBytes);
    return g;
}

int
wirePacketCount(size_t frame_bytes, int mtu_bytes)
{
    GSSR_ASSERT(mtu_bytes > kPacketHeaderBytes,
                "mtu must exceed the packet header");
    if (frame_bytes == 0)
        return 0;
    return int(ceilDiv(i64(frame_bytes),
                       i64(mtu_bytes - kPacketHeaderBytes)));
}

const char *
wireOutcomeName(WireOutcome outcome)
{
    switch (outcome) {
      case WireOutcome::Delivered:
        return "delivered";
      case WireOutcome::FecRecovered:
        return "fec-recovered";
      case WireOutcome::Partial:
        return "partial";
      case WireOutcome::Lost:
        return "lost";
    }
    return "?";
}

WireDeliveryEval
evaluateWireDelivery(const WireGeometry &geometry,
                     const std::vector<bool> &delivered)
{
    GSSR_ASSERT(int(delivered.size()) == geometry.total_packets,
                "delivery bitmap size mismatch");
    WireDeliveryEval eval;
    bool any_unrecovered = false;
    int packet = 0;
    for (const WireGeometry::Block &block : geometry.blocks) {
        int data_lost = 0;
        int parity_lost = 0;
        for (int j = 0; j < block.data_shards; ++j) {
            if (!delivered[size_t(packet + j)])
                data_lost += 1;
        }
        for (int p = 0; p < block.parity_shards; ++p) {
            if (!delivered[size_t(packet + block.data_shards + p)])
                parity_lost += 1;
        }
        eval.data_shards_lost += data_lost;
        eval.parity_shards_lost += parity_lost;

        const size_t block_end =
            std::min(geometry.frame_bytes,
                     block.byte_offset + size_t(block.data_shards) *
                                             size_t(geometry.shard_len));
        if (data_lost == 0 ||
            data_lost + parity_lost <= block.parity_shards) {
            // Intact, or every erased shard sits inside the parity
            // budget: the whole block's byte range is usable.
            if (data_lost > 0)
                eval.shards_recovered += data_lost;
            appendRange(eval.valid_ranges, block.byte_offset,
                        block_end);
        } else {
            // Beyond the budget: only the data shards that actually
            // arrived are usable (an MDS code recovers all-or-none).
            any_unrecovered = true;
            for (int j = 0; j < block.data_shards; ++j) {
                if (!delivered[size_t(packet + j)])
                    continue;
                auto [begin, end] = geometry.dataShardRange(
                    block.first_data_shard + j);
                appendRange(eval.valid_ranges, begin, end);
            }
        }
        packet += block.data_shards + block.parity_shards;
    }

    if (any_unrecovered) {
        eval.outcome = eval.valid_ranges.empty() ? WireOutcome::Lost
                                                 : WireOutcome::Partial;
    } else {
        eval.outcome = eval.data_shards_lost > 0
                           ? WireOutcome::FecRecovered
                           : WireOutcome::Delivered;
    }
    return eval;
}

std::vector<std::vector<u8>>
packetizeFrame(u32 frame_id, const std::vector<u8> &payload,
               const WireConfig &config,
               const std::vector<std::pair<size_t, size_t>> *slice_ranges)
{
    const WireGeometry g = wireGeometryFor(payload.size(), config);

    auto slice_of = [&](size_t byte) -> u16 {
        if (!slice_ranges)
            return kSliceIdNone;
        for (size_t s = 0; s < slice_ranges->size(); ++s) {
            const auto &[begin, end] = (*slice_ranges)[s];
            if (byte >= begin && byte < end)
                return u16(s);
        }
        return kSliceIdNone;
    };

    auto push_header = [&](std::vector<u8> &out, const WireGeometry::Block &block,
                           u8 block_id, int shard_index, u16 slice_id,
                           u16 payload_len, bool parity) {
        out.reserve(size_t(kPacketHeaderBytes) + payload_len);
        writeU16(out, kPacketMagic);
        out.push_back(kPacketVersion);
        out.push_back(parity ? kPacketFlagParity : 0);
        writeU32(out, frame_id);
        writeU16(out, slice_id);
        out.push_back(block_id);
        writeU16(out, u16(shard_index));
        out.push_back(u8(block.data_shards));
        out.push_back(u8(block.parity_shards));
        writeU16(out, payload_len);
        writeU32(out, u32(g.frame_bytes));
    };

    std::vector<std::vector<u8>> packets;
    packets.reserve(size_t(g.total_packets));
    for (size_t b = 0; b < g.blocks.size(); ++b) {
        const WireGeometry::Block &block = g.blocks[b];

        // Data shards, zero-padded to shard_len for the FEC math but
        // transmitted at their true length.
        std::vector<std::vector<u8>> data(size_t(block.data_shards));
        for (int j = 0; j < block.data_shards; ++j) {
            auto [begin, end] =
                g.dataShardRange(block.first_data_shard + j);
            auto &shard = data[size_t(j)];
            shard.assign(size_t(g.shard_len), 0);
            std::copy(payload.begin() + i64(begin),
                      payload.begin() + i64(end), shard.begin());

            std::vector<u8> pkt;
            push_header(pkt, block, u8(b), j, slice_of(begin),
                        u16(end - begin), false);
            pkt.insert(pkt.end(), payload.begin() + i64(begin),
                       payload.begin() + i64(end));
            packets.push_back(std::move(pkt));
        }

        if (block.parity_shards > 0) {
            FecCodec codec(block.data_shards, block.parity_shards);
            std::vector<std::vector<u8>> parity;
            codec.encode(data, parity);
            for (int p = 0; p < block.parity_shards; ++p) {
                std::vector<u8> pkt;
                push_header(pkt, block, u8(b), block.data_shards + p,
                            kSliceIdNone, u16(g.shard_len), true);
                pkt.insert(pkt.end(), parity[size_t(p)].begin(),
                           parity[size_t(p)].end());
                packets.push_back(std::move(pkt));
            }
        }
    }
    return packets;
}

bool
parsePacketHeader(const std::vector<u8> &packet, PacketHeader &header)
{
    if (packet.size() < size_t(kPacketHeaderBytes))
        return false;
    const u8 *p = packet.data();
    if (readU16(p + 0) != kPacketMagic || p[2] != kPacketVersion)
        return false;
    const u8 flags = p[3];
    if (flags & ~kPacketFlagParity)
        return false;
    header.parity = (flags & kPacketFlagParity) != 0;
    header.frame_id = readU32(p + 4);
    header.slice_id = readU16(p + 8);
    header.block = p[10];
    header.shard_index = readU16(p + 11);
    header.data_shards = p[13];
    header.parity_shards = p[14];
    header.payload_len = readU16(p + 15);
    header.frame_bytes = readU32(p + 17);
    // The payload must be exactly what the header claims — a
    // truncated or padded packet is rejected, not partially trusted.
    if (packet.size() !=
        size_t(kPacketHeaderBytes) + size_t(header.payload_len))
        return false;
    if (header.data_shards == 0 || header.frame_bytes == 0)
        return false;
    return true;
}

namespace
{

/** Validate a parsed header against the frame's derived geometry. */
bool
headerMatchesGeometry(const PacketHeader &h, const WireGeometry &g)
{
    if (size_t(h.block) >= g.blocks.size())
        return false;
    const WireGeometry::Block &block = g.blocks[h.block];
    if (int(h.data_shards) != block.data_shards ||
        int(h.parity_shards) != block.parity_shards)
        return false;
    const int total = block.data_shards + block.parity_shards;
    if (int(h.shard_index) >= total)
        return false;
    const bool is_parity = int(h.shard_index) >= block.data_shards;
    if (is_parity != h.parity)
        return false;
    size_t expected_len;
    if (is_parity) {
        expected_len = size_t(g.shard_len);
    } else {
        auto [begin, end] = g.dataShardRange(block.first_data_shard +
                                             int(h.shard_index));
        expected_len = end - begin;
    }
    return size_t(h.payload_len) == expected_len;
}

} // namespace

ReassembledFrame
reassembleFrame(const std::vector<std::vector<u8>> &packets,
                const WireConfig &config)
{
    ReassembledFrame out;

    // Adopt the geometry from the first packet whose header parses
    // *and* self-validates against the geometry it implies; every
    // later packet must agree. A corrupt frame_bytes in one header
    // therefore cannot poison the whole frame.
    WireGeometry geometry;
    bool have_geometry = false;
    u32 frame_id = 0;
    const size_t max_bytes =
        maxWireFrameBytes(config.mtu_bytes - kPacketHeaderBytes);

    struct Received
    {
        PacketHeader header;
        const std::vector<u8> *packet = nullptr;
    };
    std::vector<Received> accepted;
    accepted.reserve(packets.size());

    for (const std::vector<u8> &pkt : packets) {
        PacketHeader h;
        if (!parsePacketHeader(pkt, h) ||
            size_t(h.frame_bytes) > max_bytes) {
            out.packets_rejected += 1;
            continue;
        }
        if (!have_geometry) {
            WireGeometry g =
                wireGeometryFor(size_t(h.frame_bytes), config);
            if (!headerMatchesGeometry(h, g)) {
                out.packets_rejected += 1;
                continue;
            }
            geometry = std::move(g);
            have_geometry = true;
            frame_id = h.frame_id;
        } else if (h.frame_id != frame_id ||
                   size_t(h.frame_bytes) != geometry.frame_bytes ||
                   !headerMatchesGeometry(h, geometry)) {
            out.packets_rejected += 1;
            continue;
        }
        accepted.push_back({h, &pkt});
    }
    if (!have_geometry)
        return out; // nothing usable arrived: Lost

    out.payload.assign(geometry.frame_bytes, 0);

    bool any_data_lost = false;
    bool any_unrecovered = false;
    for (size_t b = 0; b < geometry.blocks.size(); ++b) {
        const WireGeometry::Block &block = geometry.blocks[b];
        const int total = block.data_shards + block.parity_shards;
        std::vector<std::vector<u8>> shards(static_cast<size_t>(total));
        std::vector<bool> present(size_t(total), false);
        for (const Received &r : accepted) {
            if (size_t(r.header.block) != b ||
                present[r.header.shard_index])
                continue; // other block, or duplicate
            std::vector<u8> shard(size_t(geometry.shard_len), 0);
            std::copy(r.packet->begin() + kPacketHeaderBytes,
                      r.packet->end(), shard.begin());
            shards[r.header.shard_index] = std::move(shard);
            present[r.header.shard_index] = true;
        }

        int data_lost = 0;
        for (int j = 0; j < block.data_shards; ++j)
            data_lost += present[size_t(j)] ? 0 : 1;
        out.data_shards_lost += data_lost;
        any_data_lost = any_data_lost || data_lost > 0;

        bool usable_whole = data_lost == 0;
        if (!usable_whole && block.parity_shards > 0) {
            FecCodec codec(block.data_shards, block.parity_shards);
            if (codec.reconstruct(shards, present)) {
                usable_whole = true;
                out.shards_recovered += data_lost;
            }
        }

        if (usable_whole) {
            const size_t block_end = std::min(
                geometry.frame_bytes,
                block.byte_offset + size_t(block.data_shards) *
                                        size_t(geometry.shard_len));
            for (int j = 0; j < block.data_shards; ++j) {
                auto [begin, end] = geometry.dataShardRange(
                    block.first_data_shard + j);
                std::copy(shards[size_t(j)].begin(),
                          shards[size_t(j)].begin() + i64(end - begin),
                          out.payload.begin() + i64(begin));
            }
            appendRange(out.valid_ranges, block.byte_offset,
                        block_end);
        } else {
            any_unrecovered = true;
            for (int j = 0; j < block.data_shards; ++j) {
                if (!present[size_t(j)])
                    continue;
                auto [begin, end] = geometry.dataShardRange(
                    block.first_data_shard + j);
                std::copy(shards[size_t(j)].begin(),
                          shards[size_t(j)].begin() + i64(end - begin),
                          out.payload.begin() + i64(begin));
                appendRange(out.valid_ranges, begin, end);
            }
        }
    }

    if (any_unrecovered) {
        out.outcome = out.valid_ranges.empty() ? WireOutcome::Lost
                                               : WireOutcome::Partial;
    } else {
        out.outcome = any_data_lost ? WireOutcome::FecRecovered
                                    : WireOutcome::Delivered;
    }
    return out;
}

} // namespace gssr
