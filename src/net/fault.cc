#include "net/fault.hh"

namespace gssr
{

FaultEvent
FaultScenario::effectAt(i64 frame) const
{
    FaultEvent combined;
    combined.start_frame = frame;
    combined.end_frame = frame + 1;
    for (const FaultEvent &e : events) {
        if (frame < e.start_frame || frame >= e.end_frame)
            continue;
        combined.bandwidth_scale *= e.bandwidth_scale;
        combined.extra_rtt_ms += e.extra_rtt_ms;
        // Independent loss processes compose as 1 - prod(1 - p).
        combined.extra_loss =
            1.0 - (1.0 - combined.extra_loss) * (1.0 - e.extra_loss);
        combined.force_burst = combined.force_burst || e.force_burst;
    }
    return combined;
}

FaultScenario
FaultScenario::none()
{
    return FaultScenario{};
}

FaultScenario
FaultScenario::lossBurst(i64 start, i64 frames)
{
    FaultScenario s;
    s.name = "loss-burst";
    FaultEvent e;
    e.start_frame = start;
    e.end_frame = start + frames;
    e.force_burst = true;
    s.events.push_back(e);
    return s;
}

FaultScenario
FaultScenario::bandwidthCollapse(i64 start, i64 frames, f64 scale)
{
    FaultScenario s;
    s.name = "bandwidth-collapse";
    FaultEvent e;
    e.start_frame = start;
    e.end_frame = start + frames;
    e.bandwidth_scale = scale;
    s.events.push_back(e);
    return s;
}

FaultScenario
FaultScenario::rttSpike(i64 start, i64 frames, f64 extra_ms)
{
    FaultScenario s;
    s.name = "rtt-spike";
    FaultEvent e;
    e.start_frame = start;
    e.end_frame = start + frames;
    e.extra_rtt_ms = extra_ms;
    s.events.push_back(e);
    return s;
}

FaultScenario
FaultScenario::mixed(i64 start, i64 period)
{
    FaultScenario burst = lossBurst(start, period / 2);
    FaultScenario bw =
        bandwidthCollapse(start + period, period / 2, 0.25);
    FaultScenario rtt = rttSpike(start + 2 * period, period / 2, 80.0);
    FaultScenario s;
    s.name = "mixed";
    s.events.push_back(burst.events[0]);
    s.events.push_back(bw.events[0]);
    s.events.push_back(rtt.events[0]);
    return s;
}

} // namespace gssr
