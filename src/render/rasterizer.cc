#include "render/rasterizer.hh"

#include <array>
#include <cmath>

#include "common/logging.hh"

namespace gssr
{

namespace
{

/** Vertex after transformation: clip position plus world position. */
struct ShadedVertex
{
    // Clip-space position (x, y, z, w).
    f64 cx, cy, cz, cw;
    // World-space position (for procedural detail).
    Vec3 world;
};

/** Integer lattice hash -> [0, 1). */
f64
hash3(i64 x, i64 y, i64 z)
{
    u64 h = u64(x) * 0x9e3779b97f4a7c15ULL ^
            u64(y) * 0xc2b2ae3d27d4eb4fULL ^
            u64(z) * 0x165667b19e3779f9ULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return f64(h >> 11) * 0x1.0p-53;
}

/** Smooth trilinear value noise on the unit lattice. */
f64
valueNoise(const Vec3 &p)
{
    f64 fx = std::floor(p.x), fy = std::floor(p.y), fz = std::floor(p.z);
    i64 ix = i64(fx), iy = i64(fy), iz = i64(fz);
    f64 tx = p.x - fx, ty = p.y - fy, tz = p.z - fz;
    auto smooth = [](f64 t) { return t * t * (3.0 - 2.0 * t); };
    tx = smooth(tx);
    ty = smooth(ty);
    tz = smooth(tz);
    f64 acc = 0.0;
    for (int dz = 0; dz <= 1; ++dz) {
        for (int dy = 0; dy <= 1; ++dy) {
            for (int dx = 0; dx <= 1; ++dx) {
                f64 w = (dx ? tx : 1.0 - tx) * (dy ? ty : 1.0 - ty) *
                        (dz ? tz : 1.0 - tz);
                acc += w * hash3(ix + dx, iy + dy, iz + dz);
            }
        }
    }
    return acc;
}

/**
 * Procedural surface detail in [-1, 1] for a world position. This is
 * the high-frequency content that distinguishes a high-resolution
 * render from an upscaled low-resolution one — i.e. what the SR model
 * must recover.
 */
f64
surfaceDetail(Material material, const Vec3 &p)
{
    switch (material) {
      case Material::Flat:
        return 0.0;
      case Material::Checker: {
        i64 cx = i64(std::floor(p.x * 1.2));
        i64 cz = i64(std::floor(p.z * 1.2));
        f64 checker = ((cx + cz) & 1) ? 0.5 : -0.5;
        return checker + 0.6 * (valueNoise(p * 7.0) - 0.5);
      }
      case Material::Noise:
        return 0.9 * (valueNoise(p * 5.0) - 0.5) +
               0.5 * (valueNoise(p * 17.0) - 0.5);
      case Material::Brick: {
        f64 row = std::floor(p.y * 3.0);
        f64 offset = (i64(row) & 1) ? 0.5 : 0.0;
        f64 bx = (p.x + p.z) * 1.5 + offset;
        f64 mortar_x = std::abs(bx - std::floor(bx) - 0.5) > 0.44;
        f64 mortar_y =
            std::abs(p.y * 3.0 - row - 0.5) > 0.40;
        f64 mortar = (mortar_x || mortar_y) ? -0.7 : 0.15;
        return mortar + 0.4 * (valueNoise(p * 11.0) - 0.5);
      }
      case Material::Foliage:
        return 1.2 * (valueNoise(p * 23.0) - 0.5) +
               0.6 * (valueNoise(p * 47.0) - 0.5);
    }
    return 0.0;
}

/** Clip a polygon against the near plane z + w > eps (clip space). */
int
clipNear(std::array<ShadedVertex, 4> &poly, int count)
{
    constexpr f64 eps = 1e-6;
    std::array<ShadedVertex, 4> out;
    int out_count = 0;
    auto dist = [&](const ShadedVertex &v) { return v.cz + v.cw; };
    for (int i = 0; i < count; ++i) {
        const ShadedVertex &a = poly[size_t(i)];
        const ShadedVertex &b = poly[size_t((i + 1) % count)];
        f64 da = dist(a), db = dist(b);
        bool ina = da > eps, inb = db > eps;
        if (ina)
            out[size_t(out_count++)] = a;
        if (ina != inb) {
            f64 t = da / (da - db);
            ShadedVertex v;
            v.cx = a.cx + (b.cx - a.cx) * t;
            v.cy = a.cy + (b.cy - a.cy) * t;
            v.cz = a.cz + (b.cz - a.cz) * t;
            v.cw = a.cw + (b.cw - a.cw) * t;
            v.world = a.world + (b.world - a.world) * t;
            out[size_t(out_count++)] = v;
        }
        if (out_count == 4)
            break;
    }
    for (int i = 0; i < out_count; ++i)
        poly[size_t(i)] = out[size_t(i)];
    return out_count;
}

/** Screen-space vertex ready for rasterization. */
struct ScreenVertex
{
    f64 sx, sy;     // pixel coordinates
    f64 inv_w;      // 1 / clip w (linear in screen space)
    Vec3 world_ow;  // world position / w
};

} // namespace

RenderOutput
renderScene(const Scene &scene, Size resolution,
            const RasterizerConfig &config)
{
    GSSR_ASSERT(resolution.width > 0 && resolution.height > 0,
                "render target must be non-empty");
    const int width = resolution.width;
    const int height = resolution.height;

    RenderOutput out;
    out.color = ColorImage(width, height);
    out.depth = DepthMap(width, height);

    // Background: vertical sky gradient; depth stays at the far plane.
    for (int y = 0; y < height; ++y) {
        f64 t = f64(y) / f64(height - 1 > 0 ? height - 1 : 1);
        u8 r = toPixel(lerp(scene.sky_top.r, scene.sky_horizon.r, t));
        u8 g = toPixel(lerp(scene.sky_top.g, scene.sky_horizon.g, t));
        u8 b = toPixel(lerp(scene.sky_top.b, scene.sky_horizon.b, t));
        for (int x = 0; x < width; ++x)
            out.color.setPixel(x, y, r, g, b);
    }

    // Depth test operates on 1/w (w == view distance along -Z); the
    // stored buffer is normalized linear view depth.
    PlaneF64 inv_w_buffer(width, height, 0.0);

    const f64 aspect = f64(width) / f64(height);
    const Mat4 view_proj = scene.camera.viewProjection(aspect);
    const Vec3 sun = scene.sun_direction.normalized();
    const f64 near = scene.camera.near_plane;
    const f64 far = scene.camera.far_plane;
    const f64 depth_range = far - near;

    for (const auto &instance : scene.instances) {
        GSSR_ASSERT(instance.mesh != nullptr, "instance without mesh");
        const Mesh &mesh = *instance.mesh;
        const Mat4 mvp = view_proj * instance.transform;

        // Pre-transform all vertices of the instance once.
        std::vector<ShadedVertex> transformed(mesh.vertices.size());
        std::vector<Vec3> world_positions(mesh.vertices.size());
        for (size_t i = 0; i < mesh.vertices.size(); ++i) {
            f64 w_world = 1.0;
            world_positions[i] = instance.transform.transformPoint(
                mesh.vertices[i], w_world);
            f64 w_clip = 1.0;
            Vec3 clip =
                mvp.transformPoint(mesh.vertices[i], w_clip);
            transformed[i] = {clip.x, clip.y, clip.z, w_clip,
                              world_positions[i]};
        }

        for (const Triangle &tri : mesh.triangles) {
            std::array<ShadedVertex, 4> poly = {
                transformed[size_t(tri.v0)],
                transformed[size_t(tri.v1)],
                transformed[size_t(tri.v2)],
                ShadedVertex{},
            };
            int count = clipNear(poly, 3);
            if (count < 3)
                continue;

            // World-space face normal for flat shading.
            const Vec3 &wa = world_positions[size_t(tri.v0)];
            const Vec3 &wb = world_positions[size_t(tri.v1)];
            const Vec3 &wc = world_positions[size_t(tri.v2)];
            Vec3 normal = (wb - wa).cross(wc - wa).normalized();
            f64 n_dot_l = normal.dot(sun);
            // Two-sided shading (no backface culling; see below).
            f64 diffuse = std::abs(n_dot_l);
            f64 light = config.ambient +
                        (1.0 - config.ambient) * diffuse;

            // Fan-triangulate the clipped polygon.
            for (int fan = 1; fan + 1 < count; ++fan) {
                std::array<ScreenVertex, 3> v;
                const ShadedVertex *src[3] = {&poly[0],
                                              &poly[size_t(fan)],
                                              &poly[size_t(fan + 1)]};
                for (int k = 0; k < 3; ++k) {
                    const ShadedVertex &sv = *src[k];
                    f64 inv_w = 1.0 / sv.cw;
                    v[size_t(k)] = {
                        (sv.cx * inv_w * 0.5 + 0.5) * width,
                        (0.5 - sv.cy * inv_w * 0.5) * height,
                        inv_w,
                        sv.world * inv_w,
                    };
                }

                // Signed doubled area; meshes are not guaranteed a
                // consistent winding, so render both orientations
                // (two-sided) by flipping when negative.
                f64 area = (v[1].sx - v[0].sx) * (v[2].sy - v[0].sy) -
                           (v[2].sx - v[0].sx) * (v[1].sy - v[0].sy);
                if (std::abs(area) < 1e-12)
                    continue;
                if (area < 0.0) {
                    std::swap(v[1], v[2]);
                    area = -area;
                }
                f64 inv_area = 1.0 / area;

                int min_x = int(std::floor(
                    std::min({v[0].sx, v[1].sx, v[2].sx})));
                int max_x = int(std::ceil(
                    std::max({v[0].sx, v[1].sx, v[2].sx})));
                int min_y = int(std::floor(
                    std::min({v[0].sy, v[1].sy, v[2].sy})));
                int max_y = int(std::ceil(
                    std::max({v[0].sy, v[1].sy, v[2].sy})));
                min_x = clamp(min_x, 0, width - 1);
                max_x = clamp(max_x, 0, width - 1);
                min_y = clamp(min_y, 0, height - 1);
                max_y = clamp(max_y, 0, height - 1);

                for (int py = min_y; py <= max_y; ++py) {
                    f64 cy = py + 0.5;
                    for (int px = min_x; px <= max_x; ++px) {
                        f64 cx = px + 0.5;
                        f64 w0 = (v[1].sx - cx) * (v[2].sy - cy) -
                                 (v[2].sx - cx) * (v[1].sy - cy);
                        f64 w1 = (v[2].sx - cx) * (v[0].sy - cy) -
                                 (v[0].sx - cx) * (v[2].sy - cy);
                        f64 w2 = (v[0].sx - cx) * (v[1].sy - cy) -
                                 (v[1].sx - cx) * (v[0].sy - cy);
                        if (w0 < 0.0 || w1 < 0.0 || w2 < 0.0)
                            continue;
                        w0 *= inv_area;
                        w1 *= inv_area;
                        w2 *= inv_area;

                        f64 inv_w = w0 * v[0].inv_w + w1 * v[1].inv_w +
                                    w2 * v[2].inv_w;
                        if (inv_w <= inv_w_buffer.at(px, py))
                            continue; // farther than current pixel
                        inv_w_buffer.at(px, py) = inv_w;

                        f64 view_dist = 1.0 / inv_w;
                        f64 depth =
                            clamp((view_dist - near) / depth_range,
                                  0.0, 1.0);
                        out.depth.at(px, py) = f32(depth);

                        // Perspective-correct world position.
                        Vec3 world =
                            (v[0].world_ow * w0 + v[1].world_ow * w1 +
                             v[2].world_ow * w2) *
                            view_dist;

                        // Level-of-detail: surface detail amplitude
                        // decays with distance, emulating mipmapping
                        // (Sec. III-B).
                        f64 lod = 1.0 /
                                  (1.0 + view_dist / config.detail_range);
                        f64 detail =
                            surfaceDetail(tri.material, world) * lod;

                        f64 shade = light * (1.0 + 0.55 * detail);

                        f64 r = tri.color.r * shade;
                        f64 g = tri.color.g * shade;
                        f64 b = tri.color.b * shade;

                        if (scene.fog_density > 0.0) {
                            f64 fog = 1.0 - std::exp(-view_dist *
                                                     scene.fog_density);
                            r = lerp(r, scene.sky_horizon.r, fog);
                            g = lerp(g, scene.sky_horizon.g, fog);
                            b = lerp(b, scene.sky_horizon.b, fog);
                        }
                        out.color.setPixel(px, py, toPixel(r),
                                           toPixel(g), toPixel(b));
                    }
                }
            }
        }
    }
    return out;
}

} // namespace gssr
