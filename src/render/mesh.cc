#include "render/mesh.hh"

#include <cmath>

#include "common/logging.hh"

namespace gssr
{

namespace
{

/** Add a quad as two triangles. */
void
addQuad(Mesh &mesh, int a, int b, int c, int d, Color color,
        Material material)
{
    mesh.triangles.push_back({a, b, c, color, material});
    mesh.triangles.push_back({a, c, d, color, material});
}

} // namespace

Mesh
makeBox(const Vec3 &size, Color color, Material material)
{
    Mesh mesh;
    f64 hx = size.x * 0.5, hy = size.y * 0.5, hz = size.z * 0.5;
    mesh.vertices = {
        {-hx, -hy, -hz}, {hx, -hy, -hz}, {hx, hy, -hz}, {-hx, hy, -hz},
        {-hx, -hy, hz},  {hx, -hy, hz},  {hx, hy, hz},  {-hx, hy, hz},
    };
    addQuad(mesh, 0, 1, 2, 3, color, material); // -z
    addQuad(mesh, 5, 4, 7, 6, color, material); // +z
    addQuad(mesh, 4, 0, 3, 7, color, material); // -x
    addQuad(mesh, 1, 5, 6, 2, color, material); // +x
    addQuad(mesh, 3, 2, 6, 7, color, material); // +y (top)
    addQuad(mesh, 4, 5, 1, 0, color, material); // -y (bottom)
    return mesh;
}

Mesh
makeGroundPlane(f64 extent_x, f64 extent_z, Color color,
                Material material, int subdivisions)
{
    GSSR_ASSERT(subdivisions >= 1, "ground plane needs >= 1 subdivision");
    Mesh mesh;
    int n = subdivisions;
    for (int iz = 0; iz <= n; ++iz) {
        for (int ix = 0; ix <= n; ++ix) {
            f64 x = (f64(ix) / n - 0.5) * extent_x;
            f64 z = (f64(iz) / n - 0.5) * extent_z;
            mesh.vertices.push_back({x, 0.0, z});
        }
    }
    auto idx = [n](int ix, int iz) { return iz * (n + 1) + ix; };
    for (int iz = 0; iz < n; ++iz) {
        for (int ix = 0; ix < n; ++ix) {
            addQuad(mesh, idx(ix, iz), idx(ix + 1, iz),
                    idx(ix + 1, iz + 1), idx(ix, iz + 1), color,
                    material);
        }
    }
    return mesh;
}

Mesh
makeSphere(f64 radius, int rings, int sectors, Color color,
           Material material)
{
    GSSR_ASSERT(rings >= 3 && sectors >= 3, "sphere too coarse");
    Mesh mesh;
    for (int r = 0; r <= rings; ++r) {
        f64 phi = M_PI * f64(r) / rings;
        for (int s = 0; s <= sectors; ++s) {
            f64 theta = 2.0 * M_PI * f64(s) / sectors;
            mesh.vertices.push_back({
                radius * std::sin(phi) * std::cos(theta),
                radius * std::cos(phi),
                radius * std::sin(phi) * std::sin(theta),
            });
        }
    }
    auto idx = [sectors](int r, int s) { return r * (sectors + 1) + s; };
    for (int r = 0; r < rings; ++r) {
        for (int s = 0; s < sectors; ++s) {
            addQuad(mesh, idx(r, s), idx(r, s + 1), idx(r + 1, s + 1),
                    idx(r + 1, s), color, material);
        }
    }
    return mesh;
}

Mesh
makeTree(f64 height, Color trunk, Color canopy)
{
    Mesh mesh;
    f64 trunk_h = height * 0.4;
    Mesh trunk_mesh =
        makeBox({height * 0.08, trunk_h, height * 0.08}, trunk,
                Material::Noise);
    for (auto &v : trunk_mesh.vertices)
        v.y += trunk_h * 0.5;
    mesh.append(trunk_mesh);

    Mesh canopy_mesh =
        makeSphere(height * 0.3, 6, 8, canopy, Material::Foliage);
    for (auto &v : canopy_mesh.vertices)
        v.y += trunk_h + height * 0.25;
    mesh.append(canopy_mesh);
    return mesh;
}

Mesh
makeHumanoid(f64 height, Color body, Color head)
{
    Mesh mesh;
    f64 torso_h = height * 0.35;
    f64 leg_h = height * 0.45;
    f64 head_r = height * 0.10;

    Mesh torso = makeBox({height * 0.25, torso_h, height * 0.12}, body,
                         Material::Noise);
    for (auto &v : torso.vertices)
        v.y += leg_h + torso_h * 0.5;
    mesh.append(torso);

    Mesh head_mesh = makeSphere(head_r, 5, 6, head, Material::Noise);
    for (auto &v : head_mesh.vertices)
        v.y += leg_h + torso_h + head_r * 1.1;
    mesh.append(head_mesh);

    for (int side = -1; side <= 1; side += 2) {
        Mesh leg = makeBox({height * 0.09, leg_h, height * 0.09}, body,
                           Material::Noise);
        for (auto &v : leg.vertices) {
            v.x += side * height * 0.07;
            v.y += leg_h * 0.5;
        }
        mesh.append(leg);

        Mesh arm = makeBox({height * 0.07, torso_h * 0.9, height * 0.07},
                           body, Material::Noise);
        for (auto &v : arm.vertices) {
            v.x += side * height * 0.17;
            v.y += leg_h + torso_h * 0.5;
        }
        mesh.append(arm);
    }
    return mesh;
}

} // namespace gssr
