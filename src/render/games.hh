/**
 * @file
 * The ten game workloads of the paper's Table I, reproduced as
 * procedural 3-D worlds with genre-matched scene statistics and
 * camera behaviour, plus the degenerate perspectives discussed in
 * Sec. VI (top-down strategy, side-scroller) for which depth-guided
 * RoI detection is expected to fail.
 */

#ifndef GSSR_RENDER_GAMES_HH
#define GSSR_RENDER_GAMES_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "render/scene.hh"

namespace gssr
{

/** Workload identifiers matching the paper's Table I. */
enum class GameId
{
    G1_MetroExodus,       ///< first-person shooter
    G2_FarCry5,           ///< third-person shooter
    G3_Witcher3,          ///< role playing
    G4_RedDeadRedemption2,///< action
    G5_GrandTheftAutoV,   ///< adventure
    G6_GodOfWar,          ///< action-adventure
    G7_TombRaider,        ///< survival
    G8_PlagueTale,        ///< stealth
    G9_FarmingSimulator,  ///< simulation
    G10_ForzaHorizon5,    ///< racing
    // Degenerate perspectives (Sec. VI), not part of Table I:
    TopDownStrategy,
    SideScroller,
};

/** Camera perspective class of a game world. */
enum class ViewPerspective
{
    FirstPerson,
    ThirdPerson,
    TopDown,
    SideScroll,
};

/** Static description of one workload (Table I row). */
struct GameInfo
{
    GameId id;
    const char *short_name; ///< "G1" ... "G10"
    const char *title;      ///< commercial title the workload models
    const char *genre;      ///< genre string from Table I
    ViewPerspective perspective;
};

/** All ten Table I workloads, in order. */
const std::array<GameInfo, 10> &tableOneGames();

/** Lookup info for any GameId (including degenerate perspectives). */
const GameInfo &gameInfo(GameId id);

/**
 * Procedurally generated game world. Construction builds the static
 * geometry deterministically from (game, seed); sceneAt() yields the
 * scene for any simulation time, with genre-specific camera motion
 * and dynamic objects (avatar, vehicle, NPCs).
 */
class GameWorld
{
  public:
    /** Build the world for @p id using @p seed for layout. */
    explicit GameWorld(GameId id, u64 seed = 1);

    /** Scene state at simulation time @p time_s seconds. */
    Scene sceneAt(f64 time_s) const;

    /** Table-I style info for this world. */
    const GameInfo &info() const { return info_; }

  private:
    /** Per-genre tuning derived from the game id. */
    struct Config
    {
        f64 camera_speed = 4.0;     ///< forward units per second
        f64 camera_height = 1.7;
        f64 yaw_amplitude = 0.15;   ///< look-around swing (radians)
        f64 yaw_frequency = 0.35;   ///< look-around rate (Hz)
        f64 bob_amplitude = 0.04;   ///< head-bob (first person)
        int building_count = 0;
        int tree_count = 0;
        int prop_count = 12;
        bool corridor = false;      ///< walls flanking the path
        bool has_avatar = false;    ///< third-person character
        bool has_vehicle = false;   ///< car/tractor ahead of camera
        f64 fog_density = 0.004;
        Color ground_color{96, 120, 72};
        Material ground_material = Material::Noise;
    };

    void buildStaticWorld(Rng &rng);

    GameInfo info_;
    Config config_;
    u64 seed_;
    std::vector<Instance> static_instances_;
    std::shared_ptr<const Mesh> avatar_mesh_;
    std::shared_ptr<const Mesh> vehicle_mesh_;
    std::shared_ptr<const Mesh> weapon_mesh_;
};

} // namespace gssr

#endif // GSSR_RENDER_GAMES_HH
