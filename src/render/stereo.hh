/**
 * @file
 * Stereo rendering for the Cloud VR extension the paper sketches in
 * Sec. VI ("owing to underlying 3D rendering process similarity with
 * VR games, our design can also extend to Cloud VR gaming"): the
 * same scene rendered from two eye cameras separated by the
 * interpupillary distance, each with its own depth buffer, so the
 * depth-guided RoI detection runs per eye — no eye-tracking sensor
 * required, which is the paper's inclusiveness argument for headsets
 * without gaze hardware.
 */

#ifndef GSSR_RENDER_STEREO_HH
#define GSSR_RENDER_STEREO_HH

#include "render/rasterizer.hh"

namespace gssr
{

/** Stereo rig parameters. */
struct StereoConfig
{
    /** Interpupillary distance in world units (~6.4 cm). */
    f64 ipd = 0.064;

    /**
     * Horizontal convergence offset applied symmetrically to the
     * eye cameras' yaw (toe-in), radians. 0 = parallel eyes.
     */
    f64 convergence = 0.0;
};

/** Both eye renders of one frame. */
struct StereoRenderOutput
{
    RenderOutput left;
    RenderOutput right;
};

/** Eye selector. */
enum class Eye
{
    Left,
    Right,
};

/**
 * Derive the eye camera from the head (centre) camera: offset along
 * the camera's right axis by half the IPD, with optional toe-in.
 */
Camera eyeCamera(const Camera &head, Eye eye,
                 const StereoConfig &config);

/**
 * Render both eyes of @p scene at @p per_eye resolution. The scene's
 * camera is the head pose.
 */
StereoRenderOutput renderStereo(const Scene &scene, Size per_eye,
                                const StereoConfig &config = {});

} // namespace gssr

#endif // GSSR_RENDER_STEREO_HH
