/**
 * @file
 * Software z-buffer triangle rasterizer — the reproduction's stand-in
 * for the server GPU's rendering pipeline (paper Fig. 4). For each
 * frame it produces exactly what the GameStreamSR server consumes:
 * the color framebuffer and the depth buffer.
 *
 * Pipeline stages implemented (mirroring Fig. 4):
 *   (a) vertex processing — world/view/projection transforms,
 *   (b) primitive assembly + near-plane clipping,
 *   (c) rasterization — perspective-correct edge-function scanning
 *       with a z-buffer,
 *   (d) pixel shading — directional diffuse light, procedural surface
 *       detail whose amplitude falls off with distance (the
 *       mipmapping/level-of-detail effect of Sec. III-B), and
 *       exponential distance fog.
 */

#ifndef GSSR_RENDER_RASTERIZER_HH
#define GSSR_RENDER_RASTERIZER_HH

#include "frame/depth_map.hh"
#include "frame/image.hh"
#include "render/scene.hh"

namespace gssr
{

/** Color framebuffer + depth buffer produced by one render. */
struct RenderOutput
{
    ColorImage color;
    DepthMap depth;
};

/** Rasterizer tuning knobs. */
struct RasterizerConfig
{
    /**
     * Scale on the distance at which procedural detail fades out
     * (emulates mip level-of-detail selection). Larger keeps detail
     * visible further away.
     */
    f64 detail_range = 30.0;

    /** Ambient light floor in [0, 1]. */
    f64 ambient = 0.35;
};

/**
 * Render @p scene into a @p resolution color image and depth map.
 * Depth values are view-space distance normalized by the camera's
 * near/far planes into [0, 1] (0 = near plane).
 */
RenderOutput renderScene(const Scene &scene, Size resolution,
                         const RasterizerConfig &config = {});

} // namespace gssr

#endif // GSSR_RENDER_RASTERIZER_HH
