#include "render/games.hh"

#include <cmath>

#include "common/logging.hh"

namespace gssr
{

namespace
{

const std::array<GameInfo, 12> kAllGames = {{
    {GameId::G1_MetroExodus, "G1", "Metro Exodus",
     "First Person Shooter", ViewPerspective::FirstPerson},
    {GameId::G2_FarCry5, "G2", "Far Cry 5", "Third Person Shooter",
     ViewPerspective::ThirdPerson},
    {GameId::G3_Witcher3, "G3", "Witcher 3", "Role playing",
     ViewPerspective::ThirdPerson},
    {GameId::G4_RedDeadRedemption2, "G4", "Red Dead Redemption 2",
     "Action", ViewPerspective::ThirdPerson},
    {GameId::G5_GrandTheftAutoV, "G5", "Grand Theft Auto V",
     "Adventure", ViewPerspective::ThirdPerson},
    {GameId::G6_GodOfWar, "G6", "God of War", "Action-adventure",
     ViewPerspective::ThirdPerson},
    {GameId::G7_TombRaider, "G7", "Shadow of the Tomb Raider",
     "Survival", ViewPerspective::ThirdPerson},
    {GameId::G8_PlagueTale, "G8", "A Plague Tale: Requiem", "Stealth",
     ViewPerspective::ThirdPerson},
    {GameId::G9_FarmingSimulator, "G9", "Farming Simulator 22",
     "Simulation", ViewPerspective::ThirdPerson},
    {GameId::G10_ForzaHorizon5, "G10", "Forza Horizon 5", "Racing",
     ViewPerspective::ThirdPerson},
    {GameId::TopDownStrategy, "TD", "Top-Down Strategy (degenerate)",
     "Strategy", ViewPerspective::TopDown},
    {GameId::SideScroller, "SS", "Side-Scroller (degenerate)",
     "Platformer", ViewPerspective::SideScroll},
}};

/** World-space length of the camera path (units). */
constexpr f64 kWorldLength = 400.0;

} // namespace

const std::array<GameInfo, 10> &
tableOneGames()
{
    static const std::array<GameInfo, 10> games = [] {
        std::array<GameInfo, 10> out{};
        for (int i = 0; i < 10; ++i)
            out[size_t(i)] = kAllGames[size_t(i)];
        return out;
    }();
    return games;
}

const GameInfo &
gameInfo(GameId id)
{
    for (const auto &info : kAllGames)
        if (info.id == id)
            return info;
    panic("unknown GameId");
}

GameWorld::GameWorld(GameId id, u64 seed)
    : info_(gameInfo(id)), seed_(seed)
{
    // Genre-specific tuning. Values chosen so the depth statistics
    // (near/far separation, motion magnitude, clutter) differ across
    // workloads the way the genres differ.
    Config &c = config_;
    switch (id) {
      case GameId::G1_MetroExodus: // FPS in a ruined corridor
        c.camera_speed = 3.5;
        c.corridor = true;
        c.prop_count = 26;
        c.building_count = 8;
        c.fog_density = 0.012;
        c.ground_color = {84, 80, 74};
        break;
      case GameId::G2_FarCry5: // open terrain, trees
        c.camera_speed = 4.5;
        c.has_avatar = true;
        c.tree_count = 46;
        c.prop_count = 14;
        c.ground_color = {88, 126, 66};
        break;
      case GameId::G3_Witcher3: // village + countryside
        c.camera_speed = 3.0;
        c.has_avatar = true;
        c.tree_count = 28;
        c.building_count = 18;
        c.prop_count = 18;
        c.ground_color = {104, 122, 70};
        break;
      case GameId::G4_RedDeadRedemption2: // plains, sparse props
        c.camera_speed = 5.5;
        c.has_avatar = true;
        c.tree_count = 18;
        c.prop_count = 10;
        c.fog_density = 0.003;
        c.ground_color = {140, 118, 78};
        break;
      case GameId::G5_GrandTheftAutoV: // dense city grid
        c.camera_speed = 6.0;
        c.has_avatar = true;
        c.has_vehicle = true;
        c.building_count = 56;
        c.prop_count = 20;
        c.ground_color = {92, 92, 96};
        c.ground_material = Material::Checker;
        break;
      case GameId::G6_GodOfWar: // rocky, mid-density
        c.camera_speed = 2.8;
        c.has_avatar = true;
        c.tree_count = 16;
        c.prop_count = 30;
        c.fog_density = 0.006;
        c.ground_color = {110, 112, 118};
        break;
      case GameId::G7_TombRaider: // tight cave corridor
        c.camera_speed = 2.2;
        c.has_avatar = true;
        c.corridor = true;
        c.prop_count = 22;
        c.fog_density = 0.016;
        c.ground_color = {96, 90, 80};
        break;
      case GameId::G8_PlagueTale: // slow stealth alley
        c.camera_speed = 1.6;
        c.has_avatar = true;
        c.corridor = true;
        c.building_count = 20;
        c.prop_count = 16;
        c.fog_density = 0.010;
        c.ground_color = {88, 86, 82};
        break;
      case GameId::G9_FarmingSimulator: // flat fields, slow vehicle
        c.camera_speed = 2.0;
        c.has_vehicle = true;
        c.tree_count = 10;
        c.prop_count = 6;
        c.fog_density = 0.002;
        c.ground_color = {122, 132, 60};
        c.ground_material = Material::Checker;
        break;
      case GameId::G10_ForzaHorizon5: // fast road
        c.camera_speed = 22.0;
        c.has_vehicle = true;
        c.tree_count = 30;
        c.building_count = 10;
        c.prop_count = 8;
        c.yaw_amplitude = 0.06;
        c.ground_color = {70, 70, 74};
        c.ground_material = Material::Checker;
        break;
      case GameId::TopDownStrategy:
        c.camera_speed = 1.2;
        c.camera_height = 60.0;
        c.yaw_amplitude = 0.0;
        c.building_count = 40;
        c.prop_count = 20;
        c.fog_density = 0.0;
        break;
      case GameId::SideScroller:
        c.camera_speed = 3.0;
        c.camera_height = 4.0;
        c.yaw_amplitude = 0.0;
        c.prop_count = 40;
        c.fog_density = 0.0;
        break;
    }

    Rng rng(seed_ * 0x9e3779b97f4a7c15ULL + u64(id) + 1);
    buildStaticWorld(rng);
}

void
GameWorld::buildStaticWorld(Rng &rng)
{
    const Config &c = config_;

    // Ground.
    auto ground = std::make_shared<Mesh>(makeGroundPlane(
        140.0, kWorldLength + 200.0, Color{c.ground_color.r,
        c.ground_color.g, c.ground_color.b}, c.ground_material, 10));
    static_instances_.push_back(
        {ground, Mat4::translate({0.0, 0.0, -kWorldLength * 0.5})});

    // Lateral offset biased towards the path so near geometry exists
    // in most frames.
    auto lateral = [&rng]() {
        f64 u = rng.uniform();
        f64 magnitude = 3.0 + 30.0 * u * u;
        return rng.bernoulli(0.5) ? magnitude : -magnitude;
    };
    auto along_path = [&rng]() {
        return -rng.uniform(0.0, kWorldLength);
    };

    if (info_.perspective == ViewPerspective::SideScroll) {
        // Flat playfield: a background wall and platforms, all at one
        // of two constant camera distances (degenerate depth).
        auto wall = std::make_shared<Mesh>(makeBox(
            {kWorldLength + 100.0, 40.0, 1.0}, Color{70, 90, 130},
            Material::Brick));
        static_instances_.push_back(
            {wall, Mat4::translate({kWorldLength * 0.5, 16.0, -24.0})});
        auto platform = std::make_shared<Mesh>(makeBox(
            {6.0, 1.2, 2.5}, Color{150, 110, 60}, Material::Checker));
        for (int i = 0; i < c.prop_count; ++i) {
            f64 x = rng.uniform(0.0, kWorldLength);
            f64 y = rng.uniform(1.0, 8.0);
            static_instances_.push_back(
                {platform, Mat4::translate({x, y, -12.0})});
        }
        return;
    }

    // Buildings.
    for (int i = 0; i < c.building_count; ++i) {
        f64 w = rng.uniform(4.0, 10.0);
        f64 h = rng.uniform(5.0, 22.0);
        f64 d = rng.uniform(4.0, 10.0);
        u8 shade = u8(rng.uniformInt(120, 190));
        auto mesh = std::make_shared<Mesh>(makeBox(
            {w, h, d}, Color{shade, u8(shade - 15), u8(shade - 25)},
            Material::Brick));
        f64 x = lateral();
        if (std::abs(x) < 6.0)
            x += x >= 0.0 ? 6.0 : -6.0; // keep the street clear
        static_instances_.push_back(
            {mesh,
             Mat4::translate({x, h * 0.5, along_path()}) *
                 Mat4::rotateY(rng.uniform(0.0, M_PI))});
    }

    // Trees.
    for (int i = 0; i < c.tree_count; ++i) {
        f64 h = rng.uniform(3.0, 7.0);
        auto mesh = std::make_shared<Mesh>(makeTree(
            h, Color{96, 70, 44},
            Color{u8(rng.uniformInt(40, 80)),
                  u8(rng.uniformInt(100, 150)),
                  u8(rng.uniformInt(40, 70))}));
        static_instances_.push_back(
            {mesh, Mat4::translate({lateral(), 0.0, along_path()})});
    }

    // Props: crates and boulders near the path.
    for (int i = 0; i < c.prop_count; ++i) {
        std::shared_ptr<const Mesh> mesh;
        if (rng.bernoulli(0.5)) {
            f64 s = rng.uniform(0.5, 1.8);
            u8 shade = u8(rng.uniformInt(110, 180));
            mesh = std::make_shared<Mesh>(makeBox(
                {s, s, s}, Color{shade, u8(shade - 20), u8(shade - 40)},
                Material::Noise));
        } else {
            f64 r = rng.uniform(0.4, 1.3);
            u8 shade = u8(rng.uniformInt(100, 160));
            mesh = std::make_shared<Mesh>(makeSphere(
                r, 6, 8, Color{shade, shade, u8(shade + 10)},
                Material::Noise));
        }
        f64 u = rng.uniform();
        f64 x = (2.0 + 12.0 * u * u) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
        static_instances_.push_back(
            {mesh, Mat4::translate({x, 0.8, along_path()})});
    }

    // Corridor walls flanking the path (metro tunnel, cave, alley).
    if (c.corridor) {
        auto wall = std::make_shared<Mesh>(makeBox(
            {1.5, 9.0, 24.0}, Color{120, 112, 100}, Material::Brick));
        for (f64 z = 8.0; z > -kWorldLength; z -= 26.0) {
            static_instances_.push_back(
                {wall, Mat4::translate({-6.5, 4.5, z})});
            static_instances_.push_back(
                {wall, Mat4::translate({6.5, 4.5, z - 13.0})});
        }
    }

    // Dynamic meshes shared across frames.
    if (c.has_avatar || info_.perspective == ViewPerspective::TopDown) {
        avatar_mesh_ = std::make_shared<Mesh>(
            makeHumanoid(1.8, Color{150, 60, 50}, Color{224, 188, 150}));
    }
    if (c.has_vehicle) {
        Mesh vehicle = makeBox({2.0, 0.9, 4.2}, Color{170, 40, 40},
                               Material::Noise);
        Mesh cabin = makeBox({1.6, 0.7, 2.0}, Color{60, 60, 70},
                             Material::Flat);
        for (auto &v : cabin.vertices) {
            v.y += 0.8;
            v.z -= 0.3;
        }
        vehicle.append(cabin);
        vehicle_mesh_ = std::make_shared<Mesh>(std::move(vehicle));
    }
    if (info_.perspective == ViewPerspective::FirstPerson) {
        weapon_mesh_ = std::make_shared<Mesh>(makeBox(
            {0.10, 0.12, 0.9}, Color{48, 48, 54}, Material::Noise));
    }
}

Scene
GameWorld::sceneAt(f64 time_s) const
{
    const Config &c = config_;
    Scene scene;
    scene.instances = static_instances_;
    scene.fog_density = c.fog_density;

    f64 travelled = c.camera_speed * time_s;
    // Keep the camera inside the generated world.
    f64 cam_z = -std::fmod(travelled, kWorldLength * 0.8);

    Camera &cam = scene.camera;
    cam.position = {0.0, c.camera_height, cam_z};
    cam.yaw = c.yaw_amplitude *
              std::sin(2.0 * M_PI * c.yaw_frequency * time_s);
    cam.pitch = 0.0;

    switch (info_.perspective) {
      case ViewPerspective::FirstPerson:
        cam.position.y +=
            c.bob_amplitude * std::sin(2.0 * M_PI * 1.8 * time_s);
        if (weapon_mesh_) {
            scene.add(weapon_mesh_,
                      Mat4::translate(cam.position) *
                          Mat4::rotateY(cam.yaw) *
                          Mat4::translate({0.28, -0.25, -0.9}));
        }
        break;
      case ViewPerspective::ThirdPerson: {
        cam.pitch = -0.10;
        if (avatar_mesh_) {
            // Avatar ~4.5 units ahead on the path, lightly swaying.
            f64 sway = 0.4 * std::sin(2.0 * M_PI * 0.5 * time_s);
            scene.add(avatar_mesh_,
                      Mat4::translate({sway, 0.0, cam_z - 4.5}) *
                          Mat4::rotateY(M_PI));
        }
        if (vehicle_mesh_) {
            scene.add(vehicle_mesh_,
                      Mat4::translate({0.0, 0.5, cam_z - 7.0}));
        }
        break;
      }
      case ViewPerspective::TopDown:
        cam.pitch = -M_PI * 0.5 + 0.001;
        cam.yaw = 0.0;
        if (avatar_mesh_) {
            // Units marching on the ground far below.
            for (int i = 0; i < 5; ++i) {
                f64 x = -6.0 + 3.0 * i;
                scene.add(avatar_mesh_,
                          Mat4::translate({x, 0.0,
                                           cam_z - 2.0 * i}));
            }
        }
        break;
      case ViewPerspective::SideScroll:
        cam.position = {travelled, c.camera_height, 0.0};
        cam.yaw = 0.0;
        break;
    }
    return scene;
}

} // namespace gssr
