/**
 * @file
 * Perspective camera for the software renderer (paper Fig. 4 step-a:
 * vertex processing). Produces a combined view-projection matrix; the
 * rasterizer performs clipping, perspective division and the viewport
 * transform.
 */

#ifndef GSSR_RENDER_CAMERA_HH
#define GSSR_RENDER_CAMERA_HH

#include <cmath>

#include "common/mathutil.hh"

namespace gssr
{

/**
 * Right-handed perspective camera. The camera looks along -Z in view
 * space; yaw rotates about +Y, pitch about +X.
 */
class Camera
{
  public:
    /** Camera position in world space. */
    Vec3 position{0.0, 1.7, 0.0};

    /** Heading in radians (0 looks along -Z, positive turns left). */
    f64 yaw = 0.0;

    /** Elevation in radians (positive looks up). */
    f64 pitch = 0.0;

    /** Vertical field of view in radians. */
    f64 fov_y = 60.0 * M_PI / 180.0;

    /** Near clip plane distance (> 0). */
    f64 near_plane = 0.1;

    /** Far clip plane distance (> near). */
    f64 far_plane = 200.0;

    /** Unit forward direction in world space. */
    Vec3
    forward() const
    {
        return Vec3{-std::sin(yaw) * std::cos(pitch), std::sin(pitch),
                    -std::cos(yaw) * std::cos(pitch)}
            .normalized();
    }

    /** World-to-view matrix. */
    Mat4
    viewMatrix() const
    {
        // Inverse of translate(position) * rotY(yaw) * rotX(pitch):
        // rotX(-pitch) * rotY(-yaw) * translate(-position).
        return Mat4::rotateX(-pitch) * Mat4::rotateY(-yaw) *
               Mat4::translate(position * -1.0);
    }

    /** View-to-clip perspective projection for @p aspect = w/h. */
    Mat4
    projectionMatrix(f64 aspect) const
    {
        Mat4 p; // zero
        f64 f = 1.0 / std::tan(fov_y * 0.5);
        f64 n = near_plane, fa = far_plane;
        p.m[0] = f / aspect;
        p.m[5] = f;
        p.m[10] = (fa + n) / (n - fa);
        p.m[11] = -1.0;
        p.m[14] = 2.0 * fa * n / (n - fa);
        return p;
    }

    /** Combined world-to-clip matrix. */
    Mat4
    viewProjection(f64 aspect) const
    {
        return projectionMatrix(aspect) * viewMatrix();
    }
};

} // namespace gssr

#endif // GSSR_RENDER_CAMERA_HH
