/**
 * @file
 * Scene description consumed by the rasterizer: mesh instances with
 * world transforms, the camera, and global lighting/atmosphere
 * parameters.
 */

#ifndef GSSR_RENDER_SCENE_HH
#define GSSR_RENDER_SCENE_HH

#include <memory>
#include <vector>

#include "render/camera.hh"
#include "render/mesh.hh"

namespace gssr
{

/** One placed mesh. */
struct Instance
{
    std::shared_ptr<const Mesh> mesh;
    Mat4 transform = Mat4::identity();
};

/** Complete renderable scene state for one frame. */
struct Scene
{
    std::vector<Instance> instances;
    Camera camera;

    /** Direction *towards* the sun (normalized at use). */
    Vec3 sun_direction{0.4, 0.8, 0.3};

    /** Sky gradient colors (zenith and horizon). */
    Color sky_top{90, 140, 210};
    Color sky_horizon{190, 210, 235};

    /**
     * Exponential distance-fog density; 0 disables fog. Fog blends
     * geometry towards the horizon color, giving the color image the
     * same near/far cue the depth buffer encodes.
     */
    f64 fog_density = 0.004;

    /** Convenience: place a mesh with a world transform. */
    void
    add(std::shared_ptr<const Mesh> mesh, const Mat4 &transform)
    {
        instances.push_back({std::move(mesh), transform});
    }

    /** Total triangle count across all instances. */
    i64
    triangleCount() const
    {
        i64 n = 0;
        for (const auto &inst : instances)
            n += i64(inst.mesh->triangles.size());
        return n;
    }
};

} // namespace gssr

#endif // GSSR_RENDER_SCENE_HH
