#include "render/stereo.hh"

#include <cmath>

namespace gssr
{

Camera
eyeCamera(const Camera &head, Eye eye, const StereoConfig &config)
{
    Camera cam = head;
    f64 sign = eye == Eye::Left ? -1.0 : 1.0;
    // Right axis of the camera: rotate world +X by the yaw.
    Vec3 right{std::cos(head.yaw), 0.0, -std::sin(head.yaw)};
    cam.position = head.position + right * (sign * config.ipd * 0.5);
    cam.yaw = head.yaw - sign * config.convergence;
    return cam;
}

StereoRenderOutput
renderStereo(const Scene &scene, Size per_eye,
             const StereoConfig &config)
{
    StereoRenderOutput out;
    Scene eye_scene = scene;
    eye_scene.camera = eyeCamera(scene.camera, Eye::Left, config);
    out.left = renderScene(eye_scene, per_eye);
    eye_scene.camera = eyeCamera(scene.camera, Eye::Right, config);
    out.right = renderScene(eye_scene, per_eye);
    return out;
}

} // namespace gssr
