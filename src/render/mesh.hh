/**
 * @file
 * Triangle meshes and procedural generators for the synthetic game
 * renderer. Meshes are plain triangle soups with per-triangle base
 * colors and a material id that selects the procedural surface detail
 * applied during shading.
 */

#ifndef GSSR_RENDER_MESH_HH
#define GSSR_RENDER_MESH_HH

#include <vector>

#include "common/mathutil.hh"
#include "common/types.hh"

namespace gssr
{

/** Procedural surface detail classes applied in the pixel shader. */
enum class Material : u8
{
    Flat,      ///< no detail (sky, distant fill geometry)
    Checker,   ///< checkerboard (floors, roads)
    Noise,     ///< value-noise texture (rock, terrain, cloth)
    Brick,     ///< brick-like grid (buildings, walls)
    Foliage,   ///< high-frequency speckle (trees, grass)
};

/** One RGB surface color. */
struct Color
{
    u8 r = 0;
    u8 g = 0;
    u8 b = 0;
};

/** One triangle: three vertex indices plus surface attributes. */
struct Triangle
{
    int v0 = 0;
    int v1 = 0;
    int v2 = 0;
    Color color;
    Material material = Material::Flat;
};

/** Indexed triangle mesh in object space. */
struct Mesh
{
    std::vector<Vec3> vertices;
    std::vector<Triangle> triangles;

    /** Append another mesh (indices re-based). */
    void
    append(const Mesh &other)
    {
        int base = int(vertices.size());
        vertices.insert(vertices.end(), other.vertices.begin(),
                        other.vertices.end());
        for (Triangle t : other.triangles) {
            t.v0 += base;
            t.v1 += base;
            t.v2 += base;
            triangles.push_back(t);
        }
    }
};

/**
 * Axis-aligned box centred at the origin.
 * @param size extents along x/y/z.
 */
Mesh makeBox(const Vec3 &size, Color color, Material material);

/**
 * Horizontal rectangle in the XZ plane at y = 0, centred at origin.
 * Subdivided into a grid so large grounds do not produce huge clipped
 * triangles.
 */
Mesh makeGroundPlane(f64 extent_x, f64 extent_z, Color color,
                     Material material, int subdivisions = 8);

/**
 * UV sphere centred at origin.
 * @param radius sphere radius.
 * @param rings latitude bands (>= 3).
 * @param sectors longitude bands (>= 3).
 */
Mesh makeSphere(f64 radius, int rings, int sectors, Color color,
                Material material);

/**
 * Stylized tree: a Noise trunk box with a Foliage sphere canopy.
 * Origin at the trunk base.
 */
Mesh makeTree(f64 height, Color trunk, Color canopy);

/**
 * Stylized humanoid: torso, head and limbs from boxes. Origin at the
 * feet. Used for player avatars and NPCs in the game scenes.
 */
Mesh makeHumanoid(f64 height, Color body, Color head);

} // namespace gssr

#endif // GSSR_RENDER_MESH_HH
