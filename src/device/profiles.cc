#include "device/profiles.hh"

namespace gssr
{

/*
 * Calibration anchors (all from the paper):
 *
 *  - EDSR-16/64 x2 is ~1.3726e6 MACs per input pixel (head 1728 +
 *    body 32x36864 + body-tail 36864 + upsample 147456 + tail 6912).
 *  - Galaxy Tab S8 NPU: 300x300 RoI in 16.2 ms (Sec. IV-C) and
 *    1280x720 full frame in ~217 ms (4.6 FPS reference-frame rate,
 *    Fig. 10a). Solving overhead + c*A*(1 + A/knee) through both
 *    points gives knee ~2.0e6 px and ~8.5e9 MACs/ms.
 *  - Pixel 7 Pro NPU: 300x300 in 16.4 ms (Fig. 10c) and 720p in
 *    ~233 ms (Fig. 10c) -> knee ~1.75e6 px, ~8.3e9 MACs/ms.
 *  - Mobile GPU: full-frame 1440p bilinear in 1.4 ms (Sec. IV-C);
 *    resizeOpCount(1440p, bilinear) = 44.2e6 ops -> ~3.54e7 ops/ms.
 *  - NEMO non-reference path: software decode plus CPU bilinear
 *    upscaling of MVs+residuals must come to ~1.6x our 16.2 ms
 *    stage (Fig. 10a non-reference speedup) -> SW decode ~13 ms per
 *    720p frame and CPU at ~2.9e6 ops/ms.
 *  - Energy split (Fig. 12, Witcher 3 on Pixel 7 Pro): decode 46 %
 *    of SOTA processing energy vs 6 % of ours; upscale ~85 % of
 *    ours. Overall savings (Fig. 11): ~26 % (S8), ~33 % (Pixel),
 *    driven additionally by the base device power below.
 *  - Front-camera eye tracking: +2.8 W (Sec. III-A).
 */

DeviceProfile
DeviceProfile::galaxyTabS8()
{
    DeviceProfile d;
    d.name = "galaxy-tab-s8";
    d.display_ppi = 274.0;
    d.display_resolution = {2560, 1600};
    d.base_power_w = 2.6; // 11" 120 Hz panel dominates
    d.camera_eye_tracking_w = 2.8;

    d.npu.overhead_ms = 1.0;
    d.npu.macs_per_ms = 8.50e9;
    d.npu.area_knee_px = 2.0e6;
    d.npu.active_power_w = 2.35;

    d.gpu.overhead_ms = 0.15;
    d.gpu.ops_per_ms = 3.54e7;
    d.gpu.active_power_w = 1.5;

    d.cpu.ops_per_ms = 2.9e6;
    d.cpu.active_power_w = 2.6;

    d.hw_decoder.base_ms = 0.4;
    d.hw_decoder.ms_per_mpixel = 1.6;
    d.hw_decoder.active_power_w = 1.1;

    d.sw_decoder.base_ms = 1.0;
    d.sw_decoder.ms_per_mpixel = 13.0;
    d.sw_decoder.active_power_w = 3.0;

    d.display.processing_power_w = 0.20;
    d.radio.active_power_w = 0.9;
    return d;
}

DeviceProfile
DeviceProfile::pixel7Pro()
{
    DeviceProfile d;
    d.name = "pixel-7-pro";
    d.display_ppi = 512.0;
    d.display_resolution = {3120, 1440};
    d.base_power_w = 1.35; // 6.7" phone panel
    d.camera_eye_tracking_w = 2.8;

    d.npu.overhead_ms = 0.8;
    d.npu.macs_per_ms = 8.33e9;
    d.npu.area_knee_px = 1.75e6;
    d.npu.active_power_w = 2.2;

    d.gpu.overhead_ms = 0.15;
    d.gpu.ops_per_ms = 3.45e7;
    d.gpu.active_power_w = 1.4;

    d.cpu.ops_per_ms = 2.85e6;
    d.cpu.active_power_w = 2.5;

    d.hw_decoder.base_ms = 0.4;
    d.hw_decoder.ms_per_mpixel = 1.5;
    d.hw_decoder.active_power_w = 1.1;

    d.sw_decoder.base_ms = 1.0;
    d.sw_decoder.ms_per_mpixel = 13.5;
    d.sw_decoder.active_power_w = 2.8;

    d.display.processing_power_w = 0.15;
    d.radio.active_power_w = 0.85;
    return d;
}

ServerProfile
ServerProfile::gamingWorkstation()
{
    return ServerProfile{};
}

ServerProfile
ServerProfile::edgeRack(int gpu_slots)
{
    GSSR_ASSERT(gpu_slots >= 1, "edge rack needs at least one slot");
    ServerProfile p;
    p.name = "edge-rack-x" + std::to_string(gpu_slots);
    p.gpu_slots = gpu_slots;
    return p;
}

} // namespace gssr
