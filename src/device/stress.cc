#include "device/stress.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace gssr
{

DeviceFaultEvent
DeviceFaultScenario::effectAt(i64 frame) const
{
    DeviceFaultEvent combined;
    combined.start_frame = frame;
    combined.end_frame = frame + 1;
    for (const DeviceFaultEvent &e : events) {
        if (frame < e.start_frame || frame >= e.end_frame)
            continue;
        combined.extra_power_w += e.extra_power_w;
        combined.ambient_delta_c += e.ambient_delta_c;
        // Independent failure processes compose as 1 - prod(1 - p).
        combined.npu_fail_prob =
            1.0 - (1.0 - combined.npu_fail_prob) *
                      (1.0 - e.npu_fail_prob);
        combined.decode_stall_prob =
            1.0 - (1.0 - combined.decode_stall_prob) *
                      (1.0 - e.decode_stall_prob);
        combined.decode_stall_ms += e.decode_stall_ms;
    }
    return combined;
}

DeviceFaultScenario
DeviceFaultScenario::none()
{
    return DeviceFaultScenario{};
}

DeviceFaultScenario
DeviceFaultScenario::thermalSoak(i64 start, i64 frames, f64 watts)
{
    GSSR_ASSERT(watts >= 0.0, "negative soak power");
    DeviceFaultScenario s;
    s.name = "thermal-soak";
    DeviceFaultEvent e;
    e.start_frame = start;
    e.end_frame = start + frames;
    e.extra_power_w = watts;
    s.events.push_back(e);
    return s;
}

DeviceFaultScenario
DeviceFaultScenario::npuDropout(i64 start, i64 frames, f64 prob)
{
    GSSR_ASSERT(prob >= 0.0 && prob <= 1.0,
                "NPU failure probability outside [0, 1]");
    DeviceFaultScenario s;
    s.name = "npu-dropout";
    DeviceFaultEvent e;
    e.start_frame = start;
    e.end_frame = start + frames;
    e.npu_fail_prob = prob;
    s.events.push_back(e);
    return s;
}

DeviceFaultScenario
DeviceFaultScenario::memoryPressure(i64 start, i64 frames, f64 prob,
                                    f64 stall_ms)
{
    GSSR_ASSERT(prob >= 0.0 && prob <= 1.0,
                "stall probability outside [0, 1]");
    GSSR_ASSERT(stall_ms >= 0.0, "negative stall duration");
    DeviceFaultScenario s;
    s.name = "memory-pressure";
    DeviceFaultEvent e;
    e.start_frame = start;
    e.end_frame = start + frames;
    e.decode_stall_prob = prob;
    e.decode_stall_ms = stall_ms;
    s.events.push_back(e);
    return s;
}

DeviceFaultScenario
DeviceFaultScenario::hotAmbient(i64 start, i64 frames, f64 delta_c)
{
    DeviceFaultScenario s;
    s.name = "hot-ambient";
    DeviceFaultEvent e;
    e.start_frame = start;
    e.end_frame = start + frames;
    e.ambient_delta_c = delta_c;
    s.events.push_back(e);
    return s;
}

DeviceFaultScenario
DeviceFaultScenario::mixed(i64 start, i64 period)
{
    DeviceFaultScenario soak = thermalSoak(start, period, 2.5);
    DeviceFaultScenario npu =
        npuDropout(start + period, period / 2, 0.25);
    DeviceFaultScenario mem =
        memoryPressure(start + 2 * period, period / 2, 0.3, 6.0);
    DeviceFaultScenario s;
    s.name = "mixed";
    s.events.push_back(soak.events[0]);
    s.events.push_back(npu.events[0]);
    s.events.push_back(mem.events[0]);
    return s;
}

f64
ThrottleCurve::factorAt(f64 temp_c) const
{
    if (temp_c <= knee_c)
        return 1.0;
    return std::min(max_factor, 1.0 + per_deg * (temp_c - knee_c));
}

ThermalModel::ThermalModel(const ThermalParams &params)
    : params_(params), temp_c_(params.ambient_c)
{
    GSSR_ASSERT(params_.resistance_c_per_w > 0.0,
                "thermal resistance must be positive");
    GSSR_ASSERT(params_.time_constant_s > 0.0,
                "thermal time constant must be positive");
}

void
ThermalModel::advance(f64 dt_ms, f64 dissipated_mj, f64 extra_w,
                      f64 ambient_delta_c)
{
    GSSR_ASSERT(dt_ms > 0.0, "thermal step needs positive dt");
    GSSR_ASSERT(dissipated_mj >= 0.0 && extra_w >= 0.0,
                "negative heat input");
    // Mean dissipated power over the step (mJ / ms == W).
    const f64 power_w = dissipated_mj / dt_ms + extra_w;
    const f64 ambient = params_.ambient_c + ambient_delta_c;
    const f64 t_inf = ambient + power_w * params_.resistance_c_per_w;
    const f64 decay =
        std::exp(-dt_ms / (params_.time_constant_s * 1000.0));
    temp_c_ = t_inf + (temp_c_ - t_inf) * decay;
}

void
DvfsModel::update(f64 temp_c)
{
    // Step down immediately at each entry threshold; step back up
    // only once the temperature has fallen hysteresis_c below it, so
    // the governor does not chatter around a threshold.
    if (temp_c >= params_.level2_c)
        level_ = 2;
    else if (temp_c >= params_.level1_c)
        level_ = std::max(level_, 1);
    if (level_ == 2 && temp_c < params_.level2_c - params_.hysteresis_c)
        level_ = 1;
    if (level_ == 1 && temp_c < params_.level1_c - params_.hysteresis_c)
        level_ = 0;
}

f64
DvfsModel::scale() const
{
    switch (level_) {
      case 1:
        return params_.level1_scale;
      case 2:
        return params_.level2_scale;
      default:
        return 1.0;
    }
}

DeviceStressModel::DeviceStressModel(const DeviceStressConfig &config,
                                     const DeviceFaultScenario &scenario,
                                     u64 seed)
    : config_(config), scenario_(scenario),
      thermal_(config.thermal), dvfs_(config.dvfs), rng_(seed)
{
    GSSR_ASSERT(config_.npu_timeout_ms >= 0.0,
                "negative NPU watchdog timeout");
}

FrameConditions
DeviceStressModel::beginFrame(i64 frame)
{
    current_ = scenario_.effectAt(frame);
    dvfs_.update(thermal_.temperatureC());

    // Always two draws per frame, in a fixed order, so the fault
    // stream is a pure function of (seed, frame) and does not shift
    // when scenario windows open or close.
    const f64 u_npu = rng_.uniform();
    const f64 u_decode = rng_.uniform();

    FrameConditions cond;
    const f64 dvfs = dvfs_.scale();
    cond.npu_scale = thermal_.npuFactor() * dvfs;
    cond.gpu_scale = thermal_.gpuFactor() * dvfs;
    cond.cpu_scale = thermal_.cpuFactor() * dvfs;
    cond.decoder_scale = thermal_.decoderFactor();
    if (u_npu < current_.npu_fail_prob) {
        cond.npu_faulted = true;
        cond.npu_timeout_ms = config_.npu_timeout_ms;
    }
    if (u_decode < current_.decode_stall_prob)
        cond.decode_stall_ms = current_.decode_stall_ms;
    return cond;
}

void
DeviceStressModel::endFrame(f64 dissipated_mj, f64 dt_ms)
{
    thermal_.advance(dt_ms, dissipated_mj, current_.extra_power_w,
                     current_.ambient_delta_c);
}

} // namespace gssr
