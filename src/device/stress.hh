/**
 * @file
 * Client-side device stress model: the thermal/DVFS state machine
 * and scripted transient-fault schedule that turn the fixed
 * operating-point component models of device/models.hh into a
 * *dynamic* device. Mirrors the network-side FaultScenario design
 * (net/fault.hh): a DeviceFaultScenario is a deterministic schedule
 * of DeviceFaultEvents, and together with a fixed seed an entire
 * stressed session replays bit-for-bit.
 *
 * The physics (DESIGN.md §11):
 *
 *  - Thermal: a one-node RC model. Dissipated client energy (stage
 *    energies + base device power + any scripted background load)
 *    heats the SoC; it cools exponentially toward ambient with time
 *    constant tau = R*C. The exact constant-power step
 *        T' = T_inf + (T - T_inf) * exp(-dt/tau),
 *        T_inf = ambient + P * R
 *    is used per frame, so the integration is unconditionally stable
 *    and independent of how the frame period is subdivided.
 *  - Throttling: past a per-component thermal knee, latencies
 *    inflate linearly with excess temperature (clock capping), up to
 *    a cap. Below the knee the factor is *exactly* 1.0, so an
 *    unstressed device is bit-identical to the fixed models.
 *  - DVFS: the governor steps the whole compute complex down at
 *    discrete temperature levels (with hysteresis on the way back
 *    up), multiplying on top of the per-component curves.
 *  - Transient faults: seeded per-frame draws for NPU invocation
 *    failures (charged the watchdog timeout, output falls back to
 *    GPU bilinear) and memory-pressure decode stalls.
 */

#ifndef GSSR_DEVICE_STRESS_HH
#define GSSR_DEVICE_STRESS_HH

#include <string>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"

namespace gssr
{

/**
 * Per-frame dynamic operating conditions a stressed device imposes
 * on the client pipeline. Default-constructed conditions are the
 * nominal fixed operating point: every scale is exactly 1.0 and no
 * fault is active, so applying them is bit-identical to not having a
 * stress model at all.
 */
struct FrameConditions
{
    /** Latency multipliers (>= 1) on the component models. */
    f64 npu_scale = 1.0;
    f64 gpu_scale = 1.0;
    f64 cpu_scale = 1.0;
    f64 decoder_scale = 1.0;

    /** Memory-pressure stall added to the decode stage (ms). */
    f64 decode_stall_ms = 0.0;

    /** The NPU invocation fails this frame: the watchdog timeout is
     *  charged and the RoI falls back to the GPU bilinear output. */
    bool npu_faulted = false;

    /** Latency charged for the failed invocation (ms). */
    f64 npu_timeout_ms = 0.0;

    /**
     * Degradation-ladder tier the client should run this frame at
     * (pipeline/degrade.hh): 0 full hybrid NPU-RoI + GPU, 1 reduced
     * SR precision, 2 shrunken RoI, 3 GPU-bilinear only, 4 frame
     * hold (decode only; the session engine substitutes the held
     * output).
     */
    int tier = 0;

    /** Tier-2 RoI edge scale in (0, 1]; 1.0 = full RoI. */
    f64 roi_shrink = 1.0;

    /**
     * SR inference precision for this frame (the configured session
     * knob, possibly degraded by the ladder at tiers >= 1 — see
     * degradedPrecision()). Fp32 reproduces the unquantized pipeline
     * bit for bit.
     */
    Precision sr_precision = Precision::Fp32;
};

/**
 * One scheduled client-side fault window, active for frames
 * [start_frame, end_frame). All effects default to "none".
 */
struct DeviceFaultEvent
{
    i64 start_frame = 0;
    i64 end_frame = 0; ///< exclusive

    /** Background thermal load (W): a competing app, a download, a
     *  game update unpacking — heat with no pipeline work. */
    f64 extra_power_w = 0.0;

    /** Ambient shift (°C): device in a pocket / in the sun. */
    f64 ambient_delta_c = 0.0;

    /** Per-frame NPU invocation failure probability in [0, 1]. */
    f64 npu_fail_prob = 0.0;

    /** Per-frame memory-pressure decode-stall probability. */
    f64 decode_stall_prob = 0.0;

    /** Stall added to the decode stage when it fires (ms). */
    f64 decode_stall_ms = 0.0;
};

/**
 * A named, ordered schedule of device fault events — the client-side
 * sibling of net/fault.hh's FaultScenario. Overlapping windows
 * compose: powers and ambient shifts add, failure probabilities
 * combine as independent events, stall durations add.
 */
struct DeviceFaultScenario
{
    std::string name = "none";
    std::vector<DeviceFaultEvent> events;

    bool empty() const { return events.empty(); }

    /** Combined effect of all events covering @p frame. */
    DeviceFaultEvent effectAt(i64 frame) const;

    /** The unstressed device (no scripted faults). */
    static DeviceFaultScenario none();

    /** Sustained background load of @p watts for the window. */
    static DeviceFaultScenario thermalSoak(i64 start, i64 frames,
                                           f64 watts = 2.5);

    /** NPU invocations fail with probability @p prob. */
    static DeviceFaultScenario npuDropout(i64 start, i64 frames,
                                          f64 prob = 0.2);

    /** Decode stalls of @p stall_ms with probability @p prob. */
    static DeviceFaultScenario memoryPressure(i64 start, i64 frames,
                                              f64 prob = 0.3,
                                              f64 stall_ms = 6.0);

    /** Ambient rises by @p delta_c (pocket / sunlight). */
    static DeviceFaultScenario hotAmbient(i64 start, i64 frames,
                                          f64 delta_c = 12.0);

    /**
     * The kitchen sink: a thermal soak, then NPU dropout, then
     * memory pressure, spaced @p period frames apart.
     */
    static DeviceFaultScenario mixed(i64 start, i64 period);
};

/** One component's thermal throttle curve: factor = 1 below the
 *  knee, then 1 + per_deg * (T - knee), capped at max_factor. */
struct ThrottleCurve
{
    f64 knee_c = 45.0;
    f64 per_deg = 0.05;   ///< latency inflation per °C past the knee
    f64 max_factor = 2.5; ///< clock-floor cap

    f64 factorAt(f64 temp_c) const;
};

/** One-node RC thermal model parameters. */
struct ThermalParams
{
    f64 ambient_c = 30.0;

    /** Steady-state rise per dissipated watt (°C/W). */
    f64 resistance_c_per_w = 12.0;

    /** Heating/cooling time constant tau = R*C (seconds). */
    f64 time_constant_s = 8.0;

    /** Per-component throttle curves. The NPU throttles first and
     *  hardest (NAWQ-SR's observation); the fixed-function decoder
     *  is the most robust block. */
    ThrottleCurve npu{45.0, 0.06, 2.5};
    ThrottleCurve gpu{48.0, 0.04, 2.0};
    ThrottleCurve cpu{50.0, 0.05, 2.0};
    ThrottleCurve decoder{55.0, 0.02, 1.5};
};

/** Discrete DVFS governor step-down levels (with hysteresis). */
struct DvfsParams
{
    f64 level1_c = 55.0;      ///< enter level 1 at this temperature
    f64 level2_c = 65.0;      ///< enter level 2
    f64 hysteresis_c = 3.0;   ///< exit a level this far below entry
    f64 level1_scale = 1.15;  ///< compute latency multiplier, level 1
    f64 level2_scale = 1.35;  ///< level 2
};

/** Full stress-model configuration. */
struct DeviceStressConfig
{
    /**
     * Enables thermal/DVFS integration. A session also instantiates
     * the stress model whenever its DeviceFaultScenario is
     * non-empty; with enabled == false and no faults the session
     * runs the fixed operating-point models untouched.
     */
    bool enabled = false;

    ThermalParams thermal;
    DvfsParams dvfs;

    /** Watchdog latency charged for a failed NPU invocation (ms). */
    f64 npu_timeout_ms = 25.0;
};

/**
 * RC thermal node + throttle curves. Exposed separately from the
 * full stress model so the property tests can drive it directly.
 */
class ThermalModel
{
  public:
    explicit ThermalModel(const ThermalParams &params);

    /**
     * Advance one frame: @p dissipated_mj of pipeline energy spread
     * over @p dt_ms, plus @p extra_w of scripted background power,
     * against an ambient shifted by @p ambient_delta_c.
     */
    void advance(f64 dt_ms, f64 dissipated_mj, f64 extra_w = 0.0,
                 f64 ambient_delta_c = 0.0);

    f64 temperatureC() const { return temp_c_; }

    /** Distance below the earliest (NPU) throttle knee (°C); negative
     *  once throttling has begun. */
    f64 headroomC() const { return params_.npu.knee_c - temp_c_; }

    f64 npuFactor() const { return params_.npu.factorAt(temp_c_); }
    f64 gpuFactor() const { return params_.gpu.factorAt(temp_c_); }
    f64 cpuFactor() const { return params_.cpu.factorAt(temp_c_); }
    f64 decoderFactor() const
    {
        return params_.decoder.factorAt(temp_c_);
    }

    const ThermalParams &params() const { return params_; }

  private:
    ThermalParams params_;
    f64 temp_c_;
};

/** DVFS governor level state (hysteretic step-down/step-up). */
class DvfsModel
{
  public:
    explicit DvfsModel(const DvfsParams &params) : params_(params) {}

    /** Update the level from the current temperature. */
    void update(f64 temp_c);

    /** Current governor level (0, 1 or 2). */
    int level() const { return level_; }

    /** Latency multiplier of the current level (1.0 at level 0). */
    f64 scale() const;

  private:
    DvfsParams params_;
    int level_ = 0;
};

/**
 * The full per-session device stress model: thermal node + DVFS
 * governor + seeded scripted faults. Protocol, per frame:
 *
 *   1. beginFrame(frame)  — samples this frame's FrameConditions
 *      (throttle factors from the current temperature, fault draws
 *      from the seeded RNG). Exactly two uniforms are drawn per
 *      frame regardless of the scenario, so the fault schedule is
 *      independent of which windows are active.
 *   2. endFrame(dissipated_mj, dt_ms) — feeds the frame's dissipated
 *      client energy (plus any scripted background power) into the
 *      thermal node.
 *
 * Deterministic: same config + scenario + seed => the same condition
 * stream, bit for bit.
 */
class DeviceStressModel
{
  public:
    DeviceStressModel(const DeviceStressConfig &config,
                      const DeviceFaultScenario &scenario, u64 seed);

    /** Sample this frame's operating conditions (tier left at 0;
     *  the degradation ladder fills it in). */
    FrameConditions beginFrame(i64 frame);

    /** Integrate the frame's heat into the thermal node. */
    void endFrame(f64 dissipated_mj, f64 dt_ms);

    f64 temperatureC() const { return thermal_.temperatureC(); }
    f64 headroomC() const { return thermal_.headroomC(); }
    int dvfsLevel() const { return dvfs_.level(); }

    const DeviceStressConfig &config() const { return config_; }

  private:
    DeviceStressConfig config_;
    DeviceFaultScenario scenario_;
    ThermalModel thermal_;
    DvfsModel dvfs_;
    Rng rng_;
    DeviceFaultEvent current_; ///< composed event of the last beginFrame
};

} // namespace gssr

#endif // GSSR_DEVICE_STRESS_HH
