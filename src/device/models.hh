/**
 * @file
 * Analytical latency/energy models for the mobile SoC components and
 * the streaming server. These are the reproduction's stand-in for
 * real silicon (Snapdragon 8 Gen 1 NPU, Tensor G2 TPU, hardware
 * decoders, ...): all image/DNN/codec *computation* in this library
 * executes for real on the host, while all reported *latencies and
 * energies* come from these models, calibrated at the operating
 * points the paper publishes (see device/profiles.cc for the anchor
 * table). This keeps every figure reproducible on any machine.
 */

#ifndef GSSR_DEVICE_MODELS_HH
#define GSSR_DEVICE_MODELS_HH

#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace gssr
{

/**
 * Neural processing unit (NPU / edge-TPU) model.
 *
 * latency = overhead + macs * (1 + area/area_knee) / macs_per_ms
 *
 * The (1 + area/area_knee) term models the memory-bandwidth
 * degradation for large feature maps: big inputs spill activations
 * to DRAM, so effective throughput drops with input area. This is
 * what makes full-frame 720p EDSR disproportionally slower than
 * RoI-sized inputs (paper Fig. 3b).
 *
 * Quantized precision (NAWQ-SR direction, DESIGN.md §14) changes two
 * terms: the MAC array runs int8 ≈ 3.2x / int16 ≈ 1.8x faster than
 * fp32, and narrower activations shrink DRAM traffic, which pushes
 * the memory-bound knee out by 32/bits (a feature map that spilled
 * at fp32 fits at int8 until 4x the area). Fp32 paths are untouched
 * by construction: every precision-aware method reduces to the
 * original expressions at Precision::Fp32.
 */
struct NpuModel
{
    f64 overhead_ms = 1.0;      ///< invocation/dispatch cost
    f64 macs_per_ms = 8.5e9;    ///< peak effective MAC throughput
    f64 area_knee_px = 2.0e6;   ///< memory-bound degradation knee
    f64 active_power_w = 2.3;   ///< power while running

    /** Throughput multiplier of the quantized MAC array. */
    f64 int8_speedup = 3.2;
    f64 int16_speedup = 1.8;

    /** Active-power scale while running quantized (narrow datapath
     *  toggles fewer bits; DRAM burns proportionally less). */
    f64 int8_power_scale = 0.85;
    f64 int16_power_scale = 0.92;

    /** Latency of a DNN invocation of @p macs on an @p area_px input. */
    f64
    latencyMs(i64 macs, i64 area_px) const
    {
        GSSR_ASSERT(macs >= 0 && area_px >= 0, "negative NPU work");
        f64 degrade = 1.0 + f64(area_px) / area_knee_px;
        return overhead_ms + f64(macs) * degrade / macs_per_ms;
    }

    /** Energy in millijoules for a run of @p latency_ms. */
    f64 energyMj(f64 latency_ms) const
    {
        return latency_ms * active_power_w;
    }

    /** MAC-array throughput scale of a uniform precision. */
    f64
    throughputScale(Precision p) const
    {
        switch (p) {
          case Precision::Fp32: return 1.0;
          case Precision::Int16: return int16_speedup;
          case Precision::Int8: return int8_speedup;
          case Precision::HybridInt8: break;
        }
        GSSR_ASSERT(false, "hybrid precision has no single throughput "
                           "scale; use hybridCost()");
        return 1.0;
    }

    /** Activation bytes per element of a uniform precision. */
    static f64
    activationBytes(Precision p)
    {
        switch (p) {
          case Precision::Fp32: return 4.0;
          case Precision::Int16: return 2.0;
          case Precision::Int8: return 1.0;
          case Precision::HybridInt8: break;
        }
        GSSR_ASSERT(false, "hybrid precision has no single activation "
                           "width; use hybridCost()");
        return 4.0;
    }

    /** Memory-bound knee of a precision: narrower activations spill
     *  to DRAM at proportionally larger input areas. */
    f64
    kneePx(Precision p) const
    {
        return area_knee_px * (4.0 / activationBytes(p));
    }

    /** Active power while running at a uniform precision. */
    f64
    powerW(Precision p) const
    {
        switch (p) {
          case Precision::Fp32: return active_power_w;
          case Precision::Int16:
            return active_power_w * int16_power_scale;
          case Precision::Int8:
            return active_power_w * int8_power_scale;
          case Precision::HybridInt8: break;
        }
        GSSR_ASSERT(false,
                    "hybrid precision has no single power; use "
                    "hybridCost()");
        return active_power_w;
    }

    /**
     * Latency at a uniform precision. Exactly latencyMs(macs, area)
     * at Fp32 (scale factors of 1.0 preserve every bit).
     */
    f64
    latencyMs(i64 macs, i64 area_px, Precision p) const
    {
        GSSR_ASSERT(macs >= 0 && area_px >= 0, "negative NPU work");
        if (p == Precision::Fp32)
            return latencyMs(macs, area_px);
        f64 degrade = 1.0 + f64(area_px) / kneePx(p);
        return overhead_ms +
               f64(macs) * degrade / (macs_per_ms * throughputScale(p));
    }

    /** Latency and effective power of one NPU invocation. */
    struct InvocationCost
    {
        f64 latency_ms = 0.0;
        f64 power_w = 0.0;
    };

    /** Cost of a uniform-precision invocation. */
    InvocationCost
    invocationCost(i64 macs, i64 area_px, Precision p) const
    {
        return {latencyMs(macs, area_px, p), powerW(p)};
    }

    /**
     * Cost of one hybrid invocation: @p wide_macs run at int16 and
     * @p narrow_macs at int8, sharing a single dispatch overhead.
     * The effective power is the time-weighted blend of the segment
     * powers (the overhead slice billed at full fp32 power).
     */
    InvocationCost
    hybridCost(i64 wide_macs, i64 narrow_macs, i64 area_px) const
    {
        GSSR_ASSERT(wide_macs >= 0 && narrow_macs >= 0 && area_px >= 0,
                    "negative NPU work");
        auto segment_ms = [&](i64 macs, Precision p) {
            f64 degrade = 1.0 + f64(area_px) / kneePx(p);
            return f64(macs) * degrade /
                   (macs_per_ms * throughputScale(p));
        };
        f64 wide_ms = segment_ms(wide_macs, Precision::Int16);
        f64 narrow_ms = segment_ms(narrow_macs, Precision::Int8);
        f64 latency = overhead_ms + wide_ms + narrow_ms;
        f64 energy_mw_ms = overhead_ms * active_power_w +
                           wide_ms * powerW(Precision::Int16) +
                           narrow_ms * powerW(Precision::Int8);
        return {latency, latency > 0.0 ? energy_mw_ms / latency
                                       : active_power_w};
    }
};

/** Mobile GPU model (interpolation, blits, merges). */
struct GpuModel
{
    f64 overhead_ms = 0.15;   ///< kernel launch cost
    f64 ops_per_ms = 3.5e7;   ///< arithmetic op throughput
    f64 active_power_w = 1.5;

    f64
    latencyMs(i64 ops) const
    {
        GSSR_ASSERT(ops >= 0, "negative GPU work");
        return overhead_ms + f64(ops) / ops_per_ms;
    }

    f64 energyMj(f64 latency_ms) const
    {
        return latency_ms * active_power_w;
    }
};

/** Mobile CPU model (software decode, NEMO's interpolation path). */
struct CpuModel
{
    f64 overhead_ms = 0.05;
    f64 ops_per_ms = 2.9e6;   ///< scalar/NEON arithmetic throughput
    f64 active_power_w = 2.6;

    f64
    latencyMs(i64 ops) const
    {
        GSSR_ASSERT(ops >= 0, "negative CPU work");
        return overhead_ms + f64(ops) / ops_per_ms;
    }

    f64 energyMj(f64 latency_ms) const
    {
        return latency_ms * active_power_w;
    }
};

/** Fixed-function hardware video decoder. */
struct HwDecoderModel
{
    f64 base_ms = 0.4;
    f64 ms_per_mpixel = 1.6;
    f64 active_power_w = 1.1; ///< includes DRAM traffic share

    /** Latency for decoding a frame of @p pixels. */
    f64
    latencyMs(i64 pixels) const
    {
        GSSR_ASSERT(pixels >= 0, "negative decode work");
        return base_ms + f64(pixels) / 1e6 * ms_per_mpixel;
    }

    f64 energyMj(f64 latency_ms) const
    {
        return latency_ms * active_power_w;
    }
};

/**
 * Software video decoder on the CPU (libvpx-style). NEMO requires
 * this binding because it needs decoder-internal MVs/residuals.
 */
struct SwDecoderModel
{
    f64 base_ms = 1.0;
    f64 ms_per_mpixel = 13.0;
    f64 active_power_w = 2.8;

    f64
    latencyMs(i64 pixels) const
    {
        GSSR_ASSERT(pixels >= 0, "negative decode work");
        return base_ms + f64(pixels) / 1e6 * ms_per_mpixel;
    }

    f64 energyMj(f64 latency_ms) const
    {
        return latency_ms * active_power_w;
    }
};

/** Display pipeline (composition + scanout; not the panel backlight). */
struct DisplayModel
{
    f64 processing_power_w = 0.15;
    f64 queue_ms = 10.0;      ///< BufferQueue/compositor latency
    f64 vsync_wait_ms = 8.3;  ///< mean wait for the next 60 Hz slot
    f64 scanout_ms = 8.0;     ///< until the frame is fully emitted

    /** Display-stage contribution to motion-to-photon latency. */
    f64
    latencyMs() const
    {
        GSSR_ASSERT(queue_ms >= 0.0 && vsync_wait_ms >= 0.0 &&
                        scanout_ms >= 0.0,
                    "negative display pipeline latency");
        return queue_ms + vsync_wait_ms + scanout_ms;
    }

    /** Display-processing energy for one frame period. */
    f64
    energyMjPerFrame(f64 frame_period_ms) const
    {
        GSSR_ASSERT(frame_period_ms >= 0.0, "negative frame period");
        return processing_power_w * frame_period_ms;
    }
};

/** Wireless radio (receive path). */
struct RadioModel
{
    f64 active_power_w = 0.9;
    f64 energy_mj_per_mb = 90.0;

    /** Energy to receive @p bytes. */
    f64
    energyMj(i64 bytes) const
    {
        GSSR_ASSERT(bytes >= 0, "negative receive size");
        return f64(bytes) / 1e6 * energy_mj_per_mb;
    }
};

} // namespace gssr

#endif // GSSR_DEVICE_MODELS_HH
