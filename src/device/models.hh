/**
 * @file
 * Analytical latency/energy models for the mobile SoC components and
 * the streaming server. These are the reproduction's stand-in for
 * real silicon (Snapdragon 8 Gen 1 NPU, Tensor G2 TPU, hardware
 * decoders, ...): all image/DNN/codec *computation* in this library
 * executes for real on the host, while all reported *latencies and
 * energies* come from these models, calibrated at the operating
 * points the paper publishes (see device/profiles.cc for the anchor
 * table). This keeps every figure reproducible on any machine.
 */

#ifndef GSSR_DEVICE_MODELS_HH
#define GSSR_DEVICE_MODELS_HH

#include <string>

#include "common/logging.hh"
#include "common/types.hh"

namespace gssr
{

/**
 * Neural processing unit (NPU / edge-TPU) model.
 *
 * latency = overhead + macs * (1 + area/area_knee) / macs_per_ms
 *
 * The (1 + area/area_knee) term models the memory-bandwidth
 * degradation for large feature maps: big inputs spill activations
 * to DRAM, so effective throughput drops with input area. This is
 * what makes full-frame 720p EDSR disproportionally slower than
 * RoI-sized inputs (paper Fig. 3b).
 */
struct NpuModel
{
    f64 overhead_ms = 1.0;      ///< invocation/dispatch cost
    f64 macs_per_ms = 8.5e9;    ///< peak effective MAC throughput
    f64 area_knee_px = 2.0e6;   ///< memory-bound degradation knee
    f64 active_power_w = 2.3;   ///< power while running

    /** Latency of a DNN invocation of @p macs on an @p area_px input. */
    f64
    latencyMs(i64 macs, i64 area_px) const
    {
        GSSR_ASSERT(macs >= 0 && area_px >= 0, "negative NPU work");
        f64 degrade = 1.0 + f64(area_px) / area_knee_px;
        return overhead_ms + f64(macs) * degrade / macs_per_ms;
    }

    /** Energy in millijoules for a run of @p latency_ms. */
    f64 energyMj(f64 latency_ms) const
    {
        return latency_ms * active_power_w;
    }
};

/** Mobile GPU model (interpolation, blits, merges). */
struct GpuModel
{
    f64 overhead_ms = 0.15;   ///< kernel launch cost
    f64 ops_per_ms = 3.5e7;   ///< arithmetic op throughput
    f64 active_power_w = 1.5;

    f64
    latencyMs(i64 ops) const
    {
        GSSR_ASSERT(ops >= 0, "negative GPU work");
        return overhead_ms + f64(ops) / ops_per_ms;
    }

    f64 energyMj(f64 latency_ms) const
    {
        return latency_ms * active_power_w;
    }
};

/** Mobile CPU model (software decode, NEMO's interpolation path). */
struct CpuModel
{
    f64 overhead_ms = 0.05;
    f64 ops_per_ms = 2.9e6;   ///< scalar/NEON arithmetic throughput
    f64 active_power_w = 2.6;

    f64
    latencyMs(i64 ops) const
    {
        GSSR_ASSERT(ops >= 0, "negative CPU work");
        return overhead_ms + f64(ops) / ops_per_ms;
    }

    f64 energyMj(f64 latency_ms) const
    {
        return latency_ms * active_power_w;
    }
};

/** Fixed-function hardware video decoder. */
struct HwDecoderModel
{
    f64 base_ms = 0.4;
    f64 ms_per_mpixel = 1.6;
    f64 active_power_w = 1.1; ///< includes DRAM traffic share

    /** Latency for decoding a frame of @p pixels. */
    f64
    latencyMs(i64 pixels) const
    {
        GSSR_ASSERT(pixels >= 0, "negative decode work");
        return base_ms + f64(pixels) / 1e6 * ms_per_mpixel;
    }

    f64 energyMj(f64 latency_ms) const
    {
        return latency_ms * active_power_w;
    }
};

/**
 * Software video decoder on the CPU (libvpx-style). NEMO requires
 * this binding because it needs decoder-internal MVs/residuals.
 */
struct SwDecoderModel
{
    f64 base_ms = 1.0;
    f64 ms_per_mpixel = 13.0;
    f64 active_power_w = 2.8;

    f64
    latencyMs(i64 pixels) const
    {
        GSSR_ASSERT(pixels >= 0, "negative decode work");
        return base_ms + f64(pixels) / 1e6 * ms_per_mpixel;
    }

    f64 energyMj(f64 latency_ms) const
    {
        return latency_ms * active_power_w;
    }
};

/** Display pipeline (composition + scanout; not the panel backlight). */
struct DisplayModel
{
    f64 processing_power_w = 0.15;
    f64 queue_ms = 10.0;      ///< BufferQueue/compositor latency
    f64 vsync_wait_ms = 8.3;  ///< mean wait for the next 60 Hz slot
    f64 scanout_ms = 8.0;     ///< until the frame is fully emitted

    /** Display-stage contribution to motion-to-photon latency. */
    f64
    latencyMs() const
    {
        GSSR_ASSERT(queue_ms >= 0.0 && vsync_wait_ms >= 0.0 &&
                        scanout_ms >= 0.0,
                    "negative display pipeline latency");
        return queue_ms + vsync_wait_ms + scanout_ms;
    }

    /** Display-processing energy for one frame period. */
    f64
    energyMjPerFrame(f64 frame_period_ms) const
    {
        GSSR_ASSERT(frame_period_ms >= 0.0, "negative frame period");
        return processing_power_w * frame_period_ms;
    }
};

/** Wireless radio (receive path). */
struct RadioModel
{
    f64 active_power_w = 0.9;
    f64 energy_mj_per_mb = 90.0;

    /** Energy to receive @p bytes. */
    f64
    energyMj(i64 bytes) const
    {
        GSSR_ASSERT(bytes >= 0, "negative receive size");
        return f64(bytes) / 1e6 * energy_mj_per_mb;
    }
};

} // namespace gssr

#endif // GSSR_DEVICE_MODELS_HH
