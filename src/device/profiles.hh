/**
 * @file
 * Complete device profiles: the two commodity mobile clients of the
 * paper's evaluation (Samsung Galaxy Tab S8, Google Pixel 7 Pro) and
 * the gaming-workstation streaming server. Each profile bundles the
 * component models of device/models.hh plus display geometry (needed
 * by the foveal RoI sizing of Sec. IV-B1).
 */

#ifndef GSSR_DEVICE_PROFILES_HH
#define GSSR_DEVICE_PROFILES_HH

#include "device/models.hh"

namespace gssr
{

/** One mobile client device. */
struct DeviceProfile
{
    std::string name;

    /** Panel pixel density (pixels per inch). */
    f64 display_ppi = 274.0;

    /** Native panel resolution. */
    Size display_resolution{2560, 1600};

    /**
     * Constant device power while the streaming app runs (panel
     * backlight, SoC fabric, OS) — identical across designs, charged
     * per wall-clock frame period. Included in overall energy
     * (Fig. 11) but not in the processing-stage breakdown (Fig. 12),
     * matching how the paper reports the two.
     */
    f64 base_power_w = 2.6;

    /**
     * Extra power of front-camera software eye tracking — the
     * direct-approach alternative the paper rejects (Sec. III-A,
     * measured +2.8 W on a Pixel 7 Pro).
     */
    f64 camera_eye_tracking_w = 2.8;

    NpuModel npu;
    GpuModel gpu;
    CpuModel cpu;
    HwDecoderModel hw_decoder;
    SwDecoderModel sw_decoder;
    DisplayModel display;
    RadioModel radio;

    /** Samsung Galaxy Tab S8 (Snapdragon 8 Gen 1 + Hexagon NPU). */
    static DeviceProfile galaxyTabS8();

    /** Google Pixel 7 Pro (Tensor G2 + edge TPU). */
    static DeviceProfile pixel7Pro();
};

/** The cloud-gaming server (Ryzen 9 5900X + GTX 3080 Ti class). */
struct ServerProfile
{
    std::string name = "gaming-workstation";

    /** Input event capture/processing latency (ms). */
    f64 input_capture_ms = 1.5;

    /** Game logic simulation per tick (ms). */
    f64 game_logic_ms = 4.0;

    /** Frame render time at 720p (ms). */
    f64 render_720p_ms = 6.0;

    /** Frame render time at 1440p (ms). */
    f64 render_1440p_ms = 9.2;

    /** Hardware (NVENC-class) encode time per megapixel (ms). */
    f64 encode_ms_per_mpixel = 2.6;

    /**
     * Server-GPU compute-shader throughput available for depth-map
     * processing / RoI search (ops per ms). The RoI detector's cost
     * model divides its op count by this.
     */
    f64 gpu_ops_per_ms = 2.2e9;

    /**
     * GPU utilization fractions the paper reports for rendering +
     * encoding at the two resolutions (79 % at 1440p vs 52 % at
     * 720p on a GTX 3080 Ti) — exposed for the motivation bench.
     */
    f64 gpu_utilization_1440p = 0.79;
    f64 gpu_utilization_720p = 0.52;

    /**
     * Parallel render/encode executors the fleet scheduler can
     * multiplex concurrent sessions onto — 1 for the single-GPU
     * workstation; the edge-rack profile raises it. Each slot runs
     * one session's render + RoI + encode job at the per-slot costs
     * above.
     */
    int gpu_slots = 1;

    /** Encode latency for a frame of @p pixels. */
    f64 encodeLatencyMs(i64 pixels) const
    {
        return f64(pixels) / 1e6 * encode_ms_per_mpixel;
    }

    /**
     * Render latency for a frame of @p pixels, interpolated linearly
     * through the 720p/1440p calibration points. The intercept is
     * the resolution-independent per-frame cost (geometry, shadow
     * and post passes); the slope is the fill/shading cost per
     * pixel. Exact at the 720p anchor, so 720p sessions charge
     * precisely render_720p_ms.
     */
    f64 renderLatencyMs(i64 pixels) const
    {
        const f64 px_720p = 1280.0 * 720.0;
        const f64 px_1440p = 2560.0 * 1440.0;
        const f64 slope =
            (render_1440p_ms - render_720p_ms) / (px_1440p - px_720p);
        return render_720p_ms + (f64(pixels) - px_720p) * slope;
    }

    static ServerProfile gamingWorkstation();

    /**
     * Multi-GPU edge-rack streaming server: per-slot stage costs of
     * the gaming workstation, with gpu_slots parallel executors —
     * the shared resource the fleet scheduler carves up across
     * concurrent sessions.
     */
    static ServerProfile edgeRack(int gpu_slots = 8);
};

} // namespace gssr

#endif // GSSR_DEVICE_PROFILES_HH
