#include "cluster/fault.hh"

namespace gssr
{

const char *
clusterFaultKindName(ClusterFaultKind kind)
{
    switch (kind) {
      case ClusterFaultKind::ServerCrash:
        return "server-crash";
      case ClusterFaultKind::MaintenanceDrain:
        return "maintenance-drain";
      case ClusterFaultKind::ControlPartition:
        return "control-partition";
    }
    return "?";
}

namespace
{

bool
windowActive(const ClusterFaultEvent &event, i64 tick)
{
    return tick >= event.start_tick && tick < event.end_tick;
}

} // namespace

bool
ClusterFaultScenario::serverDown(int server, i64 tick) const
{
    for (const ClusterFaultEvent &e : events) {
        if (e.kind == ClusterFaultKind::ServerCrash &&
            e.server == server && windowActive(e, tick))
            return true;
    }
    return false;
}

bool
ClusterFaultScenario::serverDraining(int server, i64 tick) const
{
    for (const ClusterFaultEvent &e : events) {
        if (e.kind == ClusterFaultKind::MaintenanceDrain &&
            e.server == server && windowActive(e, tick))
            return true;
    }
    return false;
}

bool
ClusterFaultScenario::partitioned(i64 tick) const
{
    for (const ClusterFaultEvent &e : events) {
        if (e.kind == ClusterFaultKind::ControlPartition &&
            windowActive(e, tick))
            return true;
    }
    return false;
}

ClusterFaultScenario
ClusterFaultScenario::none()
{
    return ClusterFaultScenario{};
}

ClusterFaultScenario
ClusterFaultScenario::serverCrash(int server, i64 at_tick,
                                  i64 down_ticks)
{
    ClusterFaultScenario scenario;
    scenario.name = "server-crash";
    scenario.events.push_back({ClusterFaultKind::ServerCrash, server,
                               at_tick, at_tick + down_ticks});
    return scenario;
}

ClusterFaultScenario
ClusterFaultScenario::rollingMaintenance(int servers, i64 start_tick,
                                         i64 drain_ticks)
{
    ClusterFaultScenario scenario;
    scenario.name = "rolling-maintenance";
    i64 at = start_tick;
    for (int s = 0; s < servers; ++s) {
        scenario.events.push_back({ClusterFaultKind::MaintenanceDrain,
                                   s, at, at + drain_ticks});
        at += drain_ticks;
    }
    return scenario;
}

ClusterFaultScenario
ClusterFaultScenario::controlPartition(i64 start_tick, i64 ticks)
{
    ClusterFaultScenario scenario;
    scenario.name = "control-partition";
    scenario.events.push_back({ClusterFaultKind::ControlPartition, 0,
                               start_tick, start_tick + ticks});
    return scenario;
}

} // namespace gssr
