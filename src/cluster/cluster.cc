#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>
#include <utility>

#include "common/fingerprint.hh"
#include "common/logging.hh"
#include "obs/telemetry.hh"

namespace gssr
{

const char *
placementPolicyName(PlacementPolicy policy)
{
    switch (policy) {
      case PlacementPolicy::ConsistentHash:
        return "consistent-hash";
      case PlacementPolicy::LeastLoaded:
        return "least-loaded";
    }
    return "?";
}

ClusterController::ClusterController(const ClusterConfig &config)
    : config_(config), rng_(config.seed)
{
    GSSR_ASSERT(!config_.servers.empty(),
                "cluster needs at least one server");
    GSSR_ASSERT(config_.hash_replicas >= 1,
                "hash ring needs at least one replica per server");
    validateHandoffConfig(config_.handoff);
    for (const ClusterServerConfig &server : config_.servers) {
        GSSR_ASSERT(server.profile.gpu_slots >= 1,
                    "cluster server needs at least one GPU slot");
        GSSR_ASSERT(std::isfinite(server.region_rtt_ms) &&
                        server.region_rtt_ms >= 0.0,
                    "region RTT must be finite and >= 0");
        fleet_.push_back(std::make_unique<FleetServer>(
            server.profile, config_.schedule));
    }
    displaced_out_.assign(fleet_.size(), false);

    // Hash ring: hash_replicas virtual nodes per server, points a
    // pure function of (server, replica) so placement is stable
    // across seeds and runs.
    ring_.reserve(fleet_.size() * size_t(config_.hash_replicas));
    for (int s = 0; s < int(fleet_.size()); ++s) {
        for (int r = 0; r < config_.hash_replicas; ++r)
            ring_.emplace_back(fnv1aValue(i64(r), fnv1aValue(i64(s))),
                               s);
    }
    std::sort(ring_.begin(), ring_.end());
}

void
ClusterController::setTelemetry(obs::Telemetry *telemetry)
{
    telemetry_ = telemetry;
    for (auto &server : fleet_)
        server->setTelemetry(telemetry);
    if (!telemetry_)
        return;
    obs::MetricsRegistry &reg = telemetry_->registry();
    tm_.migrations = reg.counter("cluster.migrations");
    tm_.handoff_attempts = reg.counter("cluster.handoff_attempts");
    tm_.handoff_retries = reg.counter("cluster.handoff_retries");
    tm_.cold_readmissions = reg.counter("cluster.cold_readmissions");
    tm_.sessions_lost = reg.counter("cluster.sessions_lost");
    tm_.time_to_recover_ms = reg.histogram(
        "cluster.time_to_recover_ms",
        obs::HistogramLayout::linear(0.0,
                                     2.0 * config_.handoff.deadline_ms,
                                     128));
    tm_.servers_up = reg.gauge("cluster.servers_up");
    tm_.pending_handoffs = reg.gauge("cluster.pending_handoffs");
    tm_.occupancy.clear();
    for (size_t s = 0; s < fleet_.size(); ++s) {
        tm_.occupancy.push_back(reg.gauge(
            "cluster.server" + std::to_string(s) + ".occupancy"));
    }
}

AdmissionDecision
ClusterController::admit(SessionConfig config)
{
    const std::vector<bool> all(fleet_.size(), true);
    const std::vector<int> order =
        placementOrder(next_session_id_, all);
    for (int s : order) {
        SessionConfig cfg = config;
        cfg.channel.rtt_ms += config_.servers[s].region_rtt_ms;
        fleet_[s]->setNextTenantId(next_session_id_);
        AdmissionDecision decision = fleet_[s]->admit(std::move(cfg));
        if (decision.outcome != AdmissionOutcome::Rejected) {
            next_session_id_ += 1;
            return decision;
        }
    }
    rejected_ += 1;
    AdmissionDecision decision;
    decision.outcome = AdmissionOutcome::Rejected;
    decision.config = std::move(config);
    return decision;
}

i64
ClusterController::sessionCount() const
{
    i64 count = 0;
    for (const auto &server : fleet_)
        count += server->sessionCount();
    return count;
}

std::vector<bool>
ClusterController::eligibleServers(
    i64 tick, const ClusterFaultScenario &scenario) const
{
    std::vector<bool> eligible(fleet_.size(), true);
    for (int s = 0; s < int(fleet_.size()); ++s) {
        if (scenario.serverDown(s, tick) ||
            scenario.serverDraining(s, tick))
            eligible[s] = false;
    }
    return eligible;
}

std::vector<int>
ClusterController::placementOrder(
    int session_id, const std::vector<bool> &eligible) const
{
    std::vector<int> order;
    order.reserve(fleet_.size());
    if (config_.placement == PlacementPolicy::ConsistentHash) {
        // Walk the ring clockwise from the session's key; the first
        // pass over each server's nearest virtual node fixes the
        // fallback order.
        const u64 key = fnv1aValue(i64(session_id));
        const auto it = std::lower_bound(
            ring_.begin(), ring_.end(),
            std::make_pair(key, std::numeric_limits<int>::min()));
        const size_t start =
            it == ring_.end() ? 0 : size_t(it - ring_.begin());
        std::vector<bool> seen(fleet_.size(), false);
        for (size_t k = 0; k < ring_.size(); ++k) {
            const int s = ring_[(start + k) % ring_.size()].second;
            if (!seen[s]) {
                seen[s] = true;
                order.push_back(s);
            }
        }
    } else {
        order.resize(fleet_.size());
        std::iota(order.begin(), order.end(), 0);
        std::stable_sort(order.begin(), order.end(),
                         [this](int a, int b) {
            const f64 la = fleet_[a]->committedCostMs() /
                           fleet_[a]->capacity().budgetMsPerTick();
            const f64 lb = fleet_[b]->committedCostMs() /
                           fleet_[b]->capacity().budgetMsPerTick();
            if (la != lb)
                return la < lb;
            return a < b;
        });
    }
    std::vector<int> filtered;
    filtered.reserve(order.size());
    for (int s : order) {
        if (eligible[s])
            filtered.push_back(s);
    }
    return filtered;
}

void
ClusterController::displaceServer(int s, i64 t, f64 now_ms)
{
    std::vector<FleetServer::Tenant> drained =
        fleet_[s]->drainTenants();
    for (FleetServer::Tenant &tenant : drained) {
        sessions_displaced_ += 1;
        PendingHandoff ph;
        ph.session = tenant.id;
        ph.outcome = tenant.outcome;
        ph.fps_divisor = tenant.fps_divisor;
        ph.from_server = s;
        ph.estimated_cost_ms = tenant.estimated_cost_ms;
        ph.config = tenant.engine->config();
        ph.state = tenant.engine->exportHandoff();
        ph.displaced_tick = t;
        ph.displaced_ms = now_ms;
        ph.next_attempt_ms = now_ms;
        if (config_.migration) {
            pending_.push_back(std::move(ph));
        } else {
            // Failure baseline: the session dies with its server.
            HandoffResult hr;
            hr.outcome = HandoffOutcome::Lost;
            hr.session = ph.session;
            hr.from_server = ph.from_server;
            hr.displaced_tick = ph.displaced_tick;
            recordHandoff(hr);
            LostSession lost;
            lost.session = ph.session;
            lost.outcome = ph.outcome;
            lost.fps_divisor = ph.fps_divisor;
            lost.lr_size = ph.config.lr_size;
            lost.estimated_cost_ms = ph.estimated_cost_ms;
            lost.displaced_tick = ph.displaced_tick;
            lost.result = std::move(ph.state.result);
            lost_.push_back(std::move(lost));
        }
    }
}

i64
ClusterController::missedSubmissions(const PendingHandoff &ph,
                                     i64 t) const
{
    i64 missed = 0;
    for (i64 tick = ph.displaced_tick; tick < t; ++tick) {
        if (tick % ph.fps_divisor == ph.session % ph.fps_divisor)
            missed += 1;
    }
    return missed;
}

bool
ClusterController::tryPlace(PendingHandoff &ph, i64 t, f64 now_ms,
                            const ClusterFaultScenario &scenario)
{
    const std::vector<int> order =
        placementOrder(ph.session, eligibleServers(t, scenario));
    if (order.empty())
        return false;

    // Submission ticks missed while displaced score zero QoE; rolled
    // back below if no server takes the session this tick.
    const i64 missed = missedSubmissions(ph, t);
    const size_t base_frames = ph.state.result.qoe_frames.size();
    for (i64 k = 0; k < missed; ++k)
        ph.state.result.qoe_frames.push_back(0.0);
    ph.state.migrated_at_ms = now_ms;

    for (int s : order) {
        SessionConfig cfg = ph.config;
        cfg.channel.rtt_ms +=
            config_.servers[s].region_rtt_ms -
            config_.servers[ph.from_server].region_rtt_ms;
        if (!fleet_[s]->admitHandoff(ph.session, ph.outcome,
                                     ph.fps_divisor, std::move(cfg),
                                     std::move(ph.state)))
            continue;
        displaced_frames_ += missed;
        HandoffResult hr;
        hr.outcome = ph.cold ? HandoffOutcome::ColdReadmitted
                             : HandoffOutcome::Migrated;
        hr.session = ph.session;
        hr.from_server = ph.from_server;
        hr.to_server = s;
        hr.attempts = ph.attempts;
        hr.displaced_tick = ph.displaced_tick;
        hr.completed_tick = t;
        hr.time_to_recover_ms = now_ms - ph.displaced_ms;
        recordHandoff(hr);
        return true;
    }
    ph.state.result.qoe_frames.resize(base_frames);
    return false;
}

void
ClusterController::processHandoffs(i64 t, f64 now_ms,
                                   const ClusterFaultScenario &scenario)
{
    if (pending_.empty())
        return;
    const bool partitioned = scenario.partitioned(t);
    std::vector<PendingHandoff> still;
    still.reserve(pending_.size());
    for (PendingHandoff &ph : pending_) {
        if (now_ms < ph.next_attempt_ms) {
            still.push_back(std::move(ph));
            continue;
        }
        // Past the deadline (or out of warm attempts) the session
        // falls back to cold re-admission: the control-loop state is
        // dropped, only the collected result follows it.
        if (!ph.cold &&
            (now_ms - ph.displaced_ms > config_.handoff.deadline_ms ||
             ph.attempts >= config_.handoff.max_attempts)) {
            ph.cold = true;
            ph.state.cold = true;
        }
        ph.attempts += 1;
        handoff_attempts_ += 1;
        const bool retry = ph.attempts > 1;
        if (retry)
            handoff_retries_ += 1;
        if (telemetry_) {
            obs::MetricsRegistry &reg = telemetry_->registry();
            reg.add(tm_.handoff_attempts);
            if (retry)
                reg.add(tm_.handoff_retries);
        }
        // A partitioned control plane cannot commit placements: the
        // attempt is burned and the session backs off.
        if (!partitioned && tryPlace(ph, t, now_ms, scenario))
            continue;
        ph.next_attempt_ms =
            now_ms +
            handoffBackoffMs(config_.handoff, ph.attempts - 1, rng_);
        still.push_back(std::move(ph));
    }
    pending_ = std::move(still);
}

void
ClusterController::recordHandoff(const HandoffResult &result)
{
    handoffs_.push_back(result);
    switch (result.outcome) {
      case HandoffOutcome::Migrated:
        migrations_ += 1;
        break;
      case HandoffOutcome::ColdReadmitted:
        cold_readmissions_ += 1;
        break;
      case HandoffOutcome::Lost:
        sessions_lost_ += 1;
        break;
    }
    if (result.outcome != HandoffOutcome::Lost)
        time_to_recover_ms_.add(result.time_to_recover_ms);
    if (!telemetry_)
        return;
    obs::MetricsRegistry &reg = telemetry_->registry();
    switch (result.outcome) {
      case HandoffOutcome::Migrated:
        reg.add(tm_.migrations);
        break;
      case HandoffOutcome::ColdReadmitted:
        reg.add(tm_.cold_readmissions);
        break;
      case HandoffOutcome::Lost:
        reg.add(tm_.sessions_lost);
        break;
    }
    if (result.outcome != HandoffOutcome::Lost)
        reg.observe(tm_.time_to_recover_ms,
                    result.time_to_recover_ms);
}

void
ClusterController::updateTickTelemetry(
    i64 t, const ClusterFaultScenario &scenario)
{
    obs::MetricsRegistry &reg = telemetry_->registry();
    int up = 0;
    for (int s = 0; s < int(fleet_.size()); ++s) {
        if (!scenario.serverDown(s, t))
            up += 1;
    }
    reg.set(tm_.servers_up, f64(up));
    reg.set(tm_.pending_handoffs, f64(pending_.size()));
    for (size_t s = 0; s < fleet_.size(); ++s) {
        reg.set(tm_.occupancy[s],
                fleet_[s]->committedCostMs() /
                    fleet_[s]->capacity().budgetMsPerTick());
    }
}

ClusterResult
ClusterController::run(int ticks, const ClusterFaultScenario &scenario)
{
    GSSR_ASSERT(ticks >= 1, "cluster run needs at least one tick");
    const f64 period = fleet_[0]->capacity().frame_period_ms;

    for (i64 t = 0; t < ticks; ++t) {
        const f64 now_ms = f64(t) * period;
        for (int s = 0; s < int(fleet_.size()); ++s) {
            const bool out = scenario.serverDown(s, t) ||
                             scenario.serverDraining(s, t);
            if (out && !displaced_out_[s]) {
                displaced_out_[s] = true;
                displaceServer(s, t, now_ms);
            } else if (!out && displaced_out_[s]) {
                displaced_out_[s] = false;
            }
        }
        processHandoffs(t, now_ms, scenario);
        for (int s = 0; s < int(fleet_.size()); ++s) {
            if (!scenario.serverDown(s, t))
                fleet_[s]->runTick(t);
        }
        if (telemetry_)
            updateTickTelemetry(t, scenario);
    }

    // Displacements still pending when the run ends are lost.
    for (PendingHandoff &ph : pending_) {
        HandoffResult hr;
        hr.outcome = HandoffOutcome::Lost;
        hr.session = ph.session;
        hr.from_server = ph.from_server;
        hr.attempts = ph.attempts;
        hr.displaced_tick = ph.displaced_tick;
        recordHandoff(hr);
        LostSession lost;
        lost.session = ph.session;
        lost.outcome = ph.outcome;
        lost.fps_divisor = ph.fps_divisor;
        lost.lr_size = ph.config.lr_size;
        lost.estimated_cost_ms = ph.estimated_cost_ms;
        lost.displaced_tick = ph.displaced_tick;
        lost.result = std::move(ph.state.result);
        lost_.push_back(std::move(lost));
    }
    pending_.clear();

    // A lost session's missed submission ticks through the end of
    // the run score zero QoE in the fleet distribution.
    for (LostSession &lost : lost_) {
        i64 missed = 0;
        for (i64 tick = lost.displaced_tick; tick < ticks; ++tick) {
            if (tick % lost.fps_divisor ==
                lost.session % lost.fps_divisor)
                missed += 1;
        }
        for (i64 k = 0; k < missed; ++k)
            lost.result.qoe_frames.push_back(0.0);
        displaced_frames_ += missed;
    }

    ClusterResult result;
    result.ticks = ticks;
    result.servers = int(fleet_.size());
    result.placement = config_.placement;
    result.sessions_displaced = sessions_displaced_;
    result.migrations = migrations_;
    result.cold_readmissions = cold_readmissions_;
    result.sessions_lost = sessions_lost_;
    result.handoff_attempts = handoff_attempts_;
    result.handoff_retries = handoff_retries_;
    result.displaced_frames = displaced_frames_;
    result.time_to_recover_ms = time_to_recover_ms_;
    result.handoffs = handoffs_;

    FleetResult &fleet = result.fleet;
    fleet.policy = config_.schedule;
    fleet.gpu_slots = 0;
    fleet.ticks = ticks;
    fleet.rejected = rejected_;
    for (const auto &server : fleet_) {
        const f64 budget = server->capacity().budgetMsPerTick();
        fleet.gpu_slots += server->capacity().gpu_slots;
        fleet.committed_cost_ms += server->committedCostMs();
        fleet.budget_ms += budget;
        fleet.frames_shed += server->framesShed();
        fleet.max_backlog_ms =
            std::max(fleet.max_backlog_ms, server->maxBacklogMs());
        result.server_occupancy.push_back(server->committedCostMs() /
                                          budget);
    }

    // Merge per-session stats in cluster-id order — live tenants
    // wherever they ended up, plus lost sessions — reproducing the
    // standalone FleetServer collection (and its fingerprint chain)
    // bit for bit when M = 1 and no faults fired.
    struct Entry
    {
        int id;
        const FleetServer::Tenant *tenant;
        const LostSession *lost;
    };
    std::vector<Entry> entries;
    for (const auto &server : fleet_) {
        for (const FleetServer::Tenant &tenant : server->tenants())
            entries.push_back({tenant.id, &tenant, nullptr});
    }
    for (const LostSession &lost : lost_)
        entries.push_back({lost.session, nullptr, &lost});
    std::sort(entries.begin(), entries.end(),
              [](const Entry &a, const Entry &b) {
        return a.id < b.id;
    });

    const f64 run_s = f64(ticks) * period / 1000.0;
    u64 fleet_hash = kFnvOffsetBasis;
    for (const Entry &e : entries) {
        const AdmissionOutcome outcome =
            e.tenant ? e.tenant->outcome : e.lost->outcome;
        if (outcome == AdmissionOutcome::Degraded)
            fleet.degraded += 1;
        else
            fleet.admitted += 1;

        FleetSessionStats s =
            e.tenant
                ? summarizeFleetSession(
                      e.id, e.tenant->outcome, e.tenant->fps_divisor,
                      e.tenant->engine->config().lr_size,
                      e.tenant->estimated_cost_ms,
                      e.tenant->engine->result(), run_s,
                      fleet.mtp_ms, fleet.qoe)
                : summarizeFleetSession(
                      e.id, e.lost->outcome, e.lost->fps_divisor,
                      e.lost->lr_size, e.lost->estimated_cost_ms,
                      e.lost->result, run_s, fleet.mtp_ms, fleet.qoe);

        fleet.frames_total += s.frames;
        fleet.frames_dropped += s.frames_dropped;
        fleet.aggregate_bitrate_mbps += s.bitrate_mbps;
        fleet_hash = fnv1aValue(e.id, fleet_hash);
        fleet_hash = fnv1aValue(s.fingerprint, fleet_hash);
        fleet.sessions.push_back(s);
    }
    fleet.fingerprint = fleet_hash;
    return result;
}

} // namespace gssr
