/**
 * @file
 * Scripted fault scenarios for the server cluster — the net/fault.hh
 * FaultScenario pattern generalized from one channel's frames to a
 * fleet of servers' ticks. A ClusterFaultScenario is a deterministic
 * schedule of ClusterFaultEvents: windows of ticks in which a server
 * is crashed, drained for rolling maintenance, or the control plane
 * is partitioned (handoffs cannot commit). Together with the cluster
 * seed this makes an entire faulty cluster run bit-for-bit
 * reproducible, which is what the failover bench and the migration
 * tests replay.
 */

#ifndef GSSR_CLUSTER_FAULT_HH
#define GSSR_CLUSTER_FAULT_HH

#include <string>
#include <vector>

#include "common/types.hh"

namespace gssr
{

/** What a scheduled cluster fault does. */
enum class ClusterFaultKind
{
    /** The server vanishes: it neither ticks nor accepts sessions
     *  while the window is open; its tenants are displaced at the
     *  window start. */
    ServerCrash,

    /** Rolling maintenance: the server keeps running but must be
     *  emptied — tenants are migrated away at the window start and
     *  no new sessions are placed on it until the window closes. */
    MaintenanceDrain,

    /** Control-plane partition (cluster-wide, server field unused):
     *  handoff and cold re-admission decisions cannot commit while
     *  the window is open; displaced sessions keep retrying. */
    ControlPartition,
};

/** Fault-kind name for tables / JSON. */
const char *clusterFaultKindName(ClusterFaultKind kind);

/** One scheduled fault window, active for ticks
 *  [start_tick, end_tick). */
struct ClusterFaultEvent
{
    ClusterFaultKind kind = ClusterFaultKind::ServerCrash;

    /** Target server index (ignored for ControlPartition). */
    int server = 0;

    i64 start_tick = 0;
    i64 end_tick = 0; ///< exclusive
};

/**
 * A named, ordered schedule of cluster fault events. Windows may
 * overlap; each query below ORs the windows of its kind.
 */
struct ClusterFaultScenario
{
    std::string name = "none";
    std::vector<ClusterFaultEvent> events;

    bool empty() const { return events.empty(); }

    /** True when @p server is crashed at @p tick. */
    bool serverDown(int server, i64 tick) const;

    /** True when @p server is draining for maintenance at @p tick. */
    bool serverDraining(int server, i64 tick) const;

    /** True when the control plane is partitioned at @p tick. */
    bool partitioned(i64 tick) const;

    /** The healthy cluster (no scripted faults). */
    static ClusterFaultScenario none();

    /** One server crashes at @p at_tick and stays down for
     *  @p down_ticks (the single-server-failure scenario the
     *  failover bench asserts on). */
    static ClusterFaultScenario serverCrash(int server, i64 at_tick,
                                            i64 down_ticks);

    /**
     * Rolling maintenance over servers [0, servers): each server in
     * turn is drained for @p drain_ticks, windows laid end to end
     * from @p start_tick — the whole fleet is cycled with only one
     * server out at a time.
     */
    static ClusterFaultScenario rollingMaintenance(int servers,
                                                   i64 start_tick,
                                                   i64 drain_ticks);

    /** The control plane partitions for ticks [start, start + ticks). */
    static ClusterFaultScenario controlPartition(i64 start_tick,
                                                 i64 ticks);
};

} // namespace gssr

#endif // GSSR_CLUSTER_FAULT_HH
