/**
 * @file
 * The live-migration handoff protocol: when a session is displaced
 * from a failing or draining server, the cluster controller tries to
 * re-home it with a bounded retry loop — exponential backoff with
 * seeded jitter between attempts, a hard wall-clock deadline (and an
 * attempt cap) after which the session is re-admitted *cold*
 * (control-loop state dropped, collected result kept), and a typed
 * HandoffResult recording how each displacement ended. The backoff
 * curve is a pure function of (config, attempt, rng draw) so the
 * property tests can pin monotonicity, the cap and the jitter bounds
 * directly.
 */

#ifndef GSSR_CLUSTER_HANDOFF_HH
#define GSSR_CLUSTER_HANDOFF_HH

#include "common/rng.hh"
#include "common/types.hh"

namespace gssr
{

/** Retry/timeout policy of the migration handoff loop. */
struct HandoffConfig
{
    /** Warm attempts before falling back to cold re-admission. */
    int max_attempts = 6;

    /** Nominal backoff after the first failed attempt (ms). */
    f64 base_backoff_ms = 8.0;

    /** Nominal backoff growth per failed attempt. */
    f64 backoff_multiplier = 2.0;

    /** Nominal backoff ceiling (ms). */
    f64 max_backoff_ms = 250.0;

    /** Symmetric jitter fraction in [0, 1): each backoff is drawn
     *  uniformly from nominal * [1 - jitter, 1 + jitter] using the
     *  cluster's seeded RNG, so retries de-synchronize without
     *  breaking reproducibility. */
    f64 jitter = 0.2;

    /** Hard deadline from displacement to warm-handoff completion
     *  (ms); past it the session is re-admitted cold. */
    f64 deadline_ms = 1000.0;
};

/** How one displacement ended. */
enum class HandoffOutcome
{
    /** Warm handoff: session resumed with its control state. */
    Migrated,

    /** Deadline or attempt cap hit: session re-admitted cold. */
    ColdReadmitted,

    /** No server could take the session before the run ended. */
    Lost,
};

/** Outcome name for tables / JSON. */
const char *handoffOutcomeName(HandoffOutcome outcome);

/** Typed record of one displacement → re-homing episode. */
struct HandoffResult
{
    HandoffOutcome outcome = HandoffOutcome::Lost;

    /** Cluster-wide session id. */
    int session = 0;

    int from_server = 0;
    int to_server = -1; ///< -1 when the session was lost

    /** Placement attempts made (>= 1 unless lost before any). */
    int attempts = 0;

    i64 displaced_tick = 0;
    i64 completed_tick = -1; ///< -1 when the session was lost

    /** Displacement → first tick back on a server (ms). */
    f64 time_to_recover_ms = 0.0;
};

/**
 * Nominal (jitter-free) backoff after failed attempt @p attempt
 * (0-based): base * multiplier^attempt, clamped to max_backoff_ms.
 */
f64 handoffNominalBackoffMs(const HandoffConfig &config, int attempt);

/**
 * Jittered backoff after failed attempt @p attempt: the nominal
 * curve scaled by a uniform draw from [1 - jitter, 1 + jitter] on
 * @p rng. Consumes exactly one draw.
 */
f64 handoffBackoffMs(const HandoffConfig &config, int attempt,
                     Rng &rng);

/** Validate a handoff policy (GSSR_ASSERT on bad input). */
void validateHandoffConfig(const HandoffConfig &config);

} // namespace gssr

#endif // GSSR_CLUSTER_HANDOFF_HH
