#include "cluster/handoff.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace gssr
{

const char *
handoffOutcomeName(HandoffOutcome outcome)
{
    switch (outcome) {
      case HandoffOutcome::Migrated:
        return "migrated";
      case HandoffOutcome::ColdReadmitted:
        return "cold-readmitted";
      case HandoffOutcome::Lost:
        return "lost";
    }
    return "?";
}

void
validateHandoffConfig(const HandoffConfig &config)
{
    GSSR_ASSERT(config.max_attempts >= 1,
                "handoff needs at least one attempt");
    GSSR_ASSERT(config.base_backoff_ms > 0.0,
                "handoff base backoff must be positive");
    GSSR_ASSERT(config.backoff_multiplier >= 1.0,
                "handoff backoff multiplier must be >= 1");
    GSSR_ASSERT(config.max_backoff_ms >= config.base_backoff_ms,
                "handoff backoff ceiling below the base");
    GSSR_ASSERT(config.jitter >= 0.0 && config.jitter < 1.0,
                "handoff jitter must be in [0, 1)");
    GSSR_ASSERT(config.deadline_ms > 0.0,
                "handoff deadline must be positive");
}

f64
handoffNominalBackoffMs(const HandoffConfig &config, int attempt)
{
    GSSR_ASSERT(attempt >= 0, "backoff attempt must be >= 0");
    const f64 nominal =
        config.base_backoff_ms *
        std::pow(config.backoff_multiplier, f64(attempt));
    return std::min(nominal, config.max_backoff_ms);
}

f64
handoffBackoffMs(const HandoffConfig &config, int attempt, Rng &rng)
{
    const f64 nominal = handoffNominalBackoffMs(config, attempt);
    const f64 scale =
        1.0 + config.jitter * (2.0 * rng.uniform() - 1.0);
    return nominal * scale;
}

} // namespace gssr
