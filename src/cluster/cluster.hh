/**
 * @file
 * The multi-server cluster control plane: places sessions across M
 * heterogeneous FleetServers (consistent-hash or least-loaded
 * placement, per-server inter-region RTT), drives all servers in 60 Hz
 * lockstep, and keeps sessions alive through scripted server faults
 * (cluster/fault.hh) by live-migrating them — drain the source,
 * hand the exported session state off under the bounded
 * retry/timeout/backoff loop (cluster/handoff.hh), and resume on the
 * destination with a forced intra refresh so the client's reference
 * chain re-seeds without a cold restart.
 *
 * Everything is deterministic: same config + same admissions + same
 * fault scenario => bit-identical ClusterResult; with one server and
 * no faults the run is bit-identical to a standalone FleetServer
 * (pinned by test_cluster's golden guard).
 */

#ifndef GSSR_CLUSTER_CLUSTER_HH
#define GSSR_CLUSTER_CLUSTER_HH

#include <memory>
#include <vector>

#include "cluster/fault.hh"
#include "cluster/handoff.hh"
#include "common/rng.hh"
#include "pipeline/fleet.hh"

namespace gssr
{

namespace obs
{
class Telemetry;
}

/** How the cluster picks a server for a session. */
enum class PlacementPolicy
{
    /** Hash-ring placement: stable under fleet growth, sessions only
     *  move when their arc's server goes away. */
    ConsistentHash,

    /** Greedy least-relative-load placement (committed admission
     *  budget over capacity). */
    LeastLoaded,
};

/** Policy name for tables / JSON. */
const char *placementPolicyName(PlacementPolicy policy);

/** One server of the cluster fleet. */
struct ClusterServerConfig
{
    ServerProfile profile = ServerProfile::edgeRack(8);

    /** One-way inter-region RTT penalty added to the channel RTT of
     *  every session homed on this server (ms). 0 = same region as
     *  the client population. */
    f64 region_rtt_ms = 0.0;

    /** Region label for tables / telemetry. */
    std::string region = "local";
};

/** Cluster-wide configuration. */
struct ClusterConfig
{
    std::vector<ClusterServerConfig> servers;
    SchedulePolicy schedule = SchedulePolicy::Edf;
    PlacementPolicy placement = PlacementPolicy::LeastLoaded;

    /** Migration retry/timeout/backoff policy. */
    HandoffConfig handoff;

    /**
     * Live migration on/off. Off is the failure baseline the
     * failover bench compares against: a displaced session is simply
     * lost, and its missed frames score zero QoE for the rest of the
     * run.
     */
    bool migration = true;

    /** Seed of the handoff-jitter RNG stream. */
    u64 seed = 1;

    /** Virtual nodes per server on the consistent-hash ring. */
    int hash_replicas = 32;
};

/** Aggregate outcome of one cluster run. */
struct ClusterResult
{
    i64 ticks = 0;
    int servers = 0;
    PlacementPolicy placement = PlacementPolicy::LeastLoaded;

    /**
     * Merged fleet view across all servers, sessions in cluster-id
     * order (lost sessions included, their missed submission ticks
     * scored as zero-QoE frames). With one server and no faults this
     * is bit-identical to FleetServer::run's result.
     */
    FleetResult fleet;

    /** Sessions displaced by server faults. */
    i64 sessions_displaced = 0;

    /** Displacements resolved by warm migration. */
    i64 migrations = 0;

    /** Displacements resolved by deadline-expired cold re-admission. */
    i64 cold_readmissions = 0;

    /** Displacements never re-homed (plus no-migration losses). */
    i64 sessions_lost = 0;

    /** Warm/cold placement attempts, and attempts after the first
     *  per displacement (the retry count). */
    i64 handoff_attempts = 0;
    i64 handoff_retries = 0;

    /** Submission ticks sessions missed while displaced (each scores
     *  a zero-QoE frame in the fleet distribution). */
    i64 displaced_frames = 0;

    /** Displacement → back-on-a-server latency per re-homed session
     *  (ms). */
    SampleStats time_to_recover_ms;

    /** One typed record per displacement episode. */
    std::vector<HandoffResult> handoffs;

    /** End-of-run committed budget fraction per server. */
    std::vector<f64> server_occupancy;
};

/**
 * The cluster controller. Usage mirrors FleetServer: setTelemetry
 * (optional, before admissions), admit() each candidate session,
 * then run(ticks, scenario) once.
 */
class ClusterController
{
  public:
    explicit ClusterController(const ClusterConfig &config);

    /**
     * Attach a telemetry sink (not owned; null detaches). Call
     * before admit(): registers the cluster.* instruments
     * (migrations, handoff attempts/retries, cold re-admissions,
     * lost sessions, time-to-recover histogram, per-server occupancy
     * gauges) and forwards the handle to every server fleet.
     */
    void setTelemetry(obs::Telemetry *telemetry);

    /**
     * Place and admission-control a session: walks the placement
     * policy's candidate order and admits on the first server whose
     * ladder accepts (possibly degraded). The server's region RTT is
     * folded into the session's channel config. Returns the winning
     * server's decision (Rejected when every server refused).
     */
    AdmissionDecision admit(SessionConfig config);

    /** Live (admitted + degraded) session count across the fleet. */
    i64 sessionCount() const;

    int serverCount() const { return int(fleet_.size()); }

    const FleetServer &server(int i) const { return *fleet_[i]; }

    /** Drive the whole cluster for @p ticks 60 Hz ticks under
     *  @p scenario. One-shot, like FleetServer::run. */
    ClusterResult run(int ticks, const ClusterFaultScenario &scenario =
                                     ClusterFaultScenario::none());

    const ClusterConfig &config() const { return config_; }

  private:
    /** One displaced session waiting to be re-homed. */
    struct PendingHandoff
    {
        int session = 0;
        AdmissionOutcome outcome = AdmissionOutcome::Admitted;
        int fps_divisor = 1;
        int from_server = 0;
        f64 estimated_cost_ms = 0.0;
        SessionConfig config;
        SessionHandoffState state;
        i64 displaced_tick = 0;
        f64 displaced_ms = 0.0;
        f64 next_attempt_ms = 0.0;
        int attempts = 0;
        bool cold = false;
    };

    /** A session that died (no-migration baseline or failed
     *  handoff); its collected result still joins the fleet view. */
    struct LostSession
    {
        int session = 0;
        AdmissionOutcome outcome = AdmissionOutcome::Admitted;
        int fps_divisor = 1;
        Size lr_size{0, 0};
        f64 estimated_cost_ms = 0.0;
        i64 displaced_tick = 0;
        SessionResult result;
    };

    /** Cluster-level registry handles (valid when telemetry_ set). */
    struct TelemetryIds
    {
        u32 migrations = 0;
        u32 handoff_attempts = 0;
        u32 handoff_retries = 0;
        u32 cold_readmissions = 0;
        u32 sessions_lost = 0;
        u32 time_to_recover_ms = 0;
        u32 servers_up = 0;
        u32 pending_handoffs = 0;
        std::vector<u32> occupancy;
    };

    /** Candidate servers for @p session_id in placement-policy
     *  order, restricted to @p eligible. */
    std::vector<int> placementOrder(int session_id,
                                    const std::vector<bool> &eligible)
        const;

    /** Servers accepting placements at @p tick under @p scenario. */
    std::vector<bool> eligibleServers(
        i64 tick, const ClusterFaultScenario &scenario) const;

    /** Displace every tenant of server @p s at tick @p t. */
    void displaceServer(int s, i64 t, f64 now_ms);

    /** Drive the retry/timeout/backoff loop for one tick. */
    void processHandoffs(i64 t, f64 now_ms,
                         const ClusterFaultScenario &scenario);

    /** Submission ticks session would have made in
     *  [displaced_tick, t). */
    i64 missedSubmissions(const PendingHandoff &ph, i64 t) const;

    /** Try every eligible candidate; true when re-homed. */
    bool tryPlace(PendingHandoff &ph, i64 t, f64 now_ms,
                  const ClusterFaultScenario &scenario);

    /** Record a completed displacement episode. */
    void recordHandoff(const HandoffResult &result);

    void updateTickTelemetry(i64 t, const ClusterFaultScenario &scenario);

    ClusterConfig config_;
    std::vector<std::unique_ptr<FleetServer>> fleet_;
    Rng rng_;
    int next_session_id_ = 0;
    i64 rejected_ = 0;
    i64 sessions_displaced_ = 0;
    i64 migrations_ = 0;
    i64 cold_readmissions_ = 0;
    i64 sessions_lost_ = 0;
    i64 handoff_attempts_ = 0;
    i64 handoff_retries_ = 0;
    i64 displaced_frames_ = 0;
    SampleStats time_to_recover_ms_;
    std::vector<HandoffResult> handoffs_;
    std::vector<PendingHandoff> pending_;
    std::vector<LostSession> lost_;
    std::vector<bool> displaced_out_;

    /** Consistent-hash ring: (point, server), sorted by point. */
    std::vector<std::pair<u64, int>> ring_;

    obs::Telemetry *telemetry_ = nullptr;
    TelemetryIds tm_;
};

} // namespace gssr

#endif // GSSR_CLUSTER_CLUSTER_HH
