#include "codec/dct.hh"

#include <cmath>

#include "common/logging.hh"

namespace gssr
{

namespace
{

/**
 * Precomputed orthonormal DCT-II basis (basis[k][n]) and the
 * per-coefficient quantization frequency weights (quant_weight[v*8+u],
 * a flat 1..~2.9 ramp along the zigzag diagonal so low frequencies
 * get finer steps).
 */
struct DctTables
{
    f32 basis[8][8];
    f32 quant_weight[64];

    DctTables()
    {
        for (int k = 0; k < 8; ++k) {
            f64 scale = k == 0 ? std::sqrt(1.0 / 8.0)
                               : std::sqrt(2.0 / 8.0);
            for (int n = 0; n < 8; ++n) {
                basis[k][n] = f32(
                    scale *
                    std::cos(M_PI * (2.0 * n + 1.0) * k / 16.0));
            }
        }
        for (int v = 0; v < 8; ++v)
            for (int u = 0; u < 8; ++u)
                quant_weight[v * 8 + u] = 1.0f + 0.14f * f32(u + v);
    }
};

const DctTables &
tables()
{
    static const DctTables t;
    return t;
}

} // namespace

Block8x8
forwardDct8x8(const Block8x8 &spatial)
{
    const auto &t = tables();
    // Rows then columns (separable).
    Block8x8 tmp{};
    for (int y = 0; y < 8; ++y) {
        for (int k = 0; k < 8; ++k) {
            f32 acc = 0.0f;
            for (int n = 0; n < 8; ++n)
                acc += spatial[size_t(y * 8 + n)] * t.basis[k][n];
            tmp[size_t(y * 8 + k)] = acc;
        }
    }
    Block8x8 out{};
    for (int x = 0; x < 8; ++x) {
        for (int k = 0; k < 8; ++k) {
            f32 acc = 0.0f;
            for (int n = 0; n < 8; ++n)
                acc += tmp[size_t(n * 8 + x)] * t.basis[k][n];
            out[size_t(k * 8 + x)] = acc;
        }
    }
    return out;
}

Block8x8
inverseDct8x8(const Block8x8 &coefficients)
{
    const auto &t = tables();
    Block8x8 tmp{};
    for (int x = 0; x < 8; ++x) {
        for (int n = 0; n < 8; ++n) {
            f32 acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += coefficients[size_t(k * 8 + x)] * t.basis[k][n];
            tmp[size_t(n * 8 + x)] = acc;
        }
    }
    Block8x8 out{};
    for (int y = 0; y < 8; ++y) {
        for (int n = 0; n < 8; ++n) {
            f32 acc = 0.0f;
            for (int k = 0; k < 8; ++k)
                acc += tmp[size_t(y * 8 + k)] * t.basis[k][n];
            out[size_t(y * 8 + n)] = acc;
        }
    }
    return out;
}

QuantBlock
quantize(const Block8x8 &coefficients, int qp)
{
    GSSR_ASSERT(qp >= 1, "qp must be positive");
    const auto &t = tables();
    QuantBlock out{};
    for (int i = 0; i < 64; ++i) {
        f32 step = f32(qp) * t.quant_weight[i];
        out[size_t(i)] = i32(std::lround(coefficients[size_t(i)] / step));
    }
    return out;
}

Block8x8
dequantize(const QuantBlock &levels, int qp)
{
    GSSR_ASSERT(qp >= 1, "qp must be positive");
    const auto &t = tables();
    Block8x8 out{};
    for (int i = 0; i < 64; ++i) {
        f32 step = f32(qp) * t.quant_weight[i];
        out[size_t(i)] = f32(levels[size_t(i)]) * step;
    }
    return out;
}

const std::array<int, 64> &
zigzagOrder()
{
    static const std::array<int, 64> order = [] {
        std::array<int, 64> o{};
        int idx = 0;
        for (int s = 0; s < 15; ++s) {
            if (s % 2 == 0) {
                // Walk up-right.
                for (int y = std::min(s, 7); y >= 0 && s - y <= 7; --y)
                    o[size_t(idx++)] = y * 8 + (s - y);
            } else {
                // Walk down-left.
                for (int x = std::min(s, 7); x >= 0 && s - x <= 7; --x)
                    o[size_t(idx++)] = (s - x) * 8 + x;
            }
        }
        return o;
    }();
    return order;
}

} // namespace gssr
