#include "codec/dct.hh"

#include <cmath>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/logging.hh"
#include "kernels/kernels.hh"

namespace gssr
{

namespace
{

/**
 * Per-coefficient quantization frequency weights (weight[v*8+u], a
 * flat 1..~2.9 ramp along the zigzag diagonal so low frequencies get
 * finer steps). The DCT basis itself lives with the SIMD kernels
 * (kern::dct8Tables) so both ISA paths share one table.
 */
const f32 *
quantWeights()
{
    static const std::array<f32, 64> weights = [] {
        std::array<f32, 64> w{};
        for (int v = 0; v < 8; ++v)
            for (int u = 0; u < 8; ++u)
                w[size_t(v * 8 + u)] = 1.0f + 0.14f * f32(u + v);
        return w;
    }();
    return weights.data();
}

void
fillQuantTable(QuantTable &table, int qp)
{
    const f32 *weights = quantWeights();
    for (int i = 0; i < 64; ++i)
        table.step[size_t(i)] = f32(qp) * weights[i];
    table.qp = qp;
}

/** Largest qp served from the lock-free fixed cache. */
constexpr int kQuantCacheMax = 256;

} // namespace

const QuantTable &
quantTableForQp(int qp)
{
    GSSR_ASSERT(qp >= 1, "qp must be positive");
    if (qp <= kQuantCacheMax) {
        // Fixed-size cache: each slot is built exactly once, then
        // every subsequent lookup is a single pass through the fast
        // path of call_once. The parallel block coder hits this from
        // worker threads.
        static QuantTable cache[kQuantCacheMax + 1];
        static std::once_flag built[kQuantCacheMax + 1];
        std::call_once(built[qp],
                       [qp] { fillQuantTable(cache[qp], qp); });
        return cache[qp];
    }
    // Out-of-range qps (never produced by the rate controller, whose
    // ceiling is 48) fall back to a mutex-guarded map.
    static std::mutex mutex;
    static std::unordered_map<int, std::unique_ptr<QuantTable>> extra;
    std::lock_guard<std::mutex> lock(mutex);
    std::unique_ptr<QuantTable> &slot = extra[qp];
    if (!slot) {
        slot = std::make_unique<QuantTable>();
        fillQuantTable(*slot, qp);
    }
    return *slot;
}

void
forwardDct8x8(const Block8x8 &spatial, Block8x8 &out)
{
    kern::dctForward8x8(spatial.data(), out.data());
}

void
inverseDct8x8(const Block8x8 &coefficients, Block8x8 &out)
{
    kern::dctInverse8x8(coefficients.data(), out.data());
}

void
quantize(const Block8x8 &coefficients, const QuantTable &table,
         QuantBlock &out)
{
    kern::quantize8x8(coefficients.data(), table.step.data(),
                      out.data());
}

void
dequantize(const QuantBlock &levels, const QuantTable &table,
           Block8x8 &out)
{
    kern::dequantize8x8(levels.data(), table.step.data(), out.data());
}

Block8x8
forwardDct8x8(const Block8x8 &spatial)
{
    Block8x8 out;
    forwardDct8x8(spatial, out);
    return out;
}

Block8x8
inverseDct8x8(const Block8x8 &coefficients)
{
    Block8x8 out;
    inverseDct8x8(coefficients, out);
    return out;
}

QuantBlock
quantize(const Block8x8 &coefficients, int qp)
{
    QuantBlock out;
    quantize(coefficients, quantTableForQp(qp), out);
    return out;
}

Block8x8
dequantize(const QuantBlock &levels, int qp)
{
    Block8x8 out;
    dequantize(levels, quantTableForQp(qp), out);
    return out;
}

const std::array<int, 64> &
zigzagOrder()
{
    static const std::array<int, 64> order = [] {
        std::array<int, 64> o{};
        int idx = 0;
        for (int s = 0; s < 15; ++s) {
            if (s % 2 == 0) {
                // Walk up-right.
                for (int y = std::min(s, 7); y >= 0 && s - y <= 7; --y)
                    o[size_t(idx++)] = y * 8 + (s - y);
            } else {
                // Walk down-left.
                for (int x = std::min(s, 7); x >= 0 && s - x <= 7; --x)
                    o[size_t(idx++)] = (s - x) * 8 + x;
            }
        }
        return o;
    }();
    return order;
}

} // namespace gssr
