#include "codec/rate_control.hh"

#include <cmath>

#include "common/mathutil.hh"

namespace gssr
{

RateController::RateController(const RateControlConfig &config,
                               int initial_qp)
    : config_(config), qp_(initial_qp)
{
    GSSR_ASSERT(config_.target_mbps > 0.0, "target bitrate must be > 0");
    GSSR_ASSERT(config_.min_qp >= 1 &&
                    config_.min_qp <= config_.max_qp,
                "invalid qp bounds");
    qp_ = clamp(qp_, config_.min_qp, config_.max_qp);
}

void
RateController::observeBytes(size_t frame_bytes)
{
    f64 bytes = f64(frame_bytes);
    if (!has_observation_) {
        // The first observation is usually an intra frame; amortize
        // it as one frame of a typical GOP mix (intra ~2x inter).
        smoothed_bytes_ = bytes * 0.6;
        has_observation_ = true;
        return;
    }
    smoothed_bytes_ = config_.smoothing * smoothed_bytes_ +
                      (1.0 - config_.smoothing) * bytes;
}

f64
RateController::observedMbps() const
{
    return smoothed_bytes_ * 8.0 * config_.fps / 1e6;
}

int
RateController::qpForNextFrame(FrameType type)
{
    if (type != FrameType::Reference || !has_observation_)
        return qp_;

    f64 observed = observedMbps();
    f64 high = config_.target_mbps * (1.0 + config_.dead_zone);
    f64 low = config_.target_mbps * (1.0 - config_.dead_zone);
    if (observed > high) {
        // Bitrate scales roughly as 1/qp; step proportionally to the
        // overshoot, at least one step.
        f64 ratio = observed / config_.target_mbps;
        int step = std::max(1, int(std::lround(f64(qp_) *
                                               (ratio - 1.0) * 0.5)));
        qp_ = clamp(qp_ + step, config_.min_qp, config_.max_qp);
    } else if (observed < low) {
        f64 ratio = config_.target_mbps / std::max(observed, 1e-6);
        int step = std::max(1, int(std::lround(f64(qp_) *
                                               (ratio - 1.0) * 0.25)));
        qp_ = clamp(qp_ - step, config_.min_qp, config_.max_qp);
    }
    return qp_;
}

} // namespace gssr
