#include "codec/rate_control.hh"

#include <cmath>

#include "common/mathutil.hh"
#include "obs/telemetry.hh"

namespace gssr
{

RateController::RateController(const RateControlConfig &config,
                               int initial_qp)
    : config_(config), qp_(initial_qp)
{
    GSSR_ASSERT(config_.target_mbps > 0.0, "target bitrate must be > 0");
    GSSR_ASSERT(config_.min_qp >= 1 &&
                    config_.min_qp <= config_.max_qp,
                "invalid qp bounds");
    qp_ = clamp(qp_, config_.min_qp, config_.max_qp);
}

void
RateController::observeBytes(size_t frame_bytes)
{
    f64 bytes = f64(frame_bytes);
    if (!has_observation_) {
        // The first observation is usually an intra frame; amortize
        // it as one frame of a typical GOP mix (intra ~2x inter).
        smoothed_bytes_ = bytes * 0.6;
        has_observation_ = true;
        return;
    }
    smoothed_bytes_ = config_.smoothing * smoothed_bytes_ +
                      (1.0 - config_.smoothing) * bytes;
}

f64
RateController::observedMbps() const
{
    return smoothed_bytes_ * 8.0 * config_.fps / 1e6;
}

int
RateController::qpForNextFrame(FrameType type)
{
    if (type != FrameType::Reference || !has_observation_)
        return qp_;

    f64 observed = observedMbps();
    f64 high = config_.target_mbps * (1.0 + config_.dead_zone);
    f64 low = config_.target_mbps * (1.0 - config_.dead_zone);
    if (observed > high) {
        // Bitrate scales roughly as 1/qp; step proportionally to the
        // overshoot, at least one step.
        f64 ratio = observed / config_.target_mbps;
        int step = std::max(1, int(std::lround(f64(qp_) *
                                               (ratio - 1.0) * 0.5)));
        qp_ = clamp(qp_ + step, config_.min_qp, config_.max_qp);
    } else if (observed < low) {
        f64 ratio = config_.target_mbps / std::max(observed, 1e-6);
        int step = std::max(1, int(std::lround(f64(qp_) *
                                               (ratio - 1.0) * 0.25)));
        qp_ = clamp(qp_ - step, config_.min_qp, config_.max_qp);
    }
    return qp_;
}

AimdController::AimdController(const AimdConfig &config,
                               f64 initial_mbps)
    : config_(config), target_mbps_(initial_mbps)
{
    GSSR_ASSERT(config_.min_mbps > 0.0 &&
                    config_.min_mbps <= config_.max_mbps,
                "invalid AIMD bitrate bounds");
    GSSR_ASSERT(config_.decrease_factor > 0.0 &&
                    config_.decrease_factor < 1.0,
                "AIMD decrease factor must be in (0, 1)");
    GSSR_ASSERT(config_.increase_mbps_per_s >= 0.0,
                "AIMD increase slope must be >= 0");
    target_mbps_ =
        clamp(target_mbps_, config_.min_mbps, config_.max_mbps);
}

void
AimdController::setTelemetry(obs::Telemetry *telemetry, i32 track)
{
    telemetry_ = telemetry;
    telemetry_track_ = track;
    if (!telemetry_)
        return;
    obs::MetricsRegistry &reg = telemetry_->registry();
    tm_backoffs_ = reg.counter("aimd.backoffs");
    tm_target_mbps_ = reg.gauge("aimd.target_mbps");
    reg.set(tm_target_mbps_, target_mbps_);
}

bool
AimdController::onCongestion(f64 now_ms)
{
    if (now_ms - last_backoff_ms_ < config_.backoff_hold_ms)
        return false;
    target_mbps_ = clamp(target_mbps_ * config_.decrease_factor,
                         config_.min_mbps, config_.max_mbps);
    last_backoff_ms_ = now_ms;
    backoffs_ += 1;
    if (telemetry_) {
        obs::MetricsRegistry &reg = telemetry_->registry();
        reg.add(tm_backoffs_);
        reg.set(tm_target_mbps_, target_mbps_);
        if (obs::SpanExporter *spans = telemetry_->spans()) {
            spans->instant("aimd.backoff", "aimd", telemetry_track_,
                           now_ms, target_mbps_);
            spans->counter("aimd.target_mbps", telemetry_track_,
                           now_ms, target_mbps_);
        }
    }
    return true;
}

void
AimdController::onDelivered(f64 now_ms)
{
    if (last_delivered_ms_ < 0.0) {
        last_delivered_ms_ = now_ms;
        return;
    }
    f64 dt_s = std::max(0.0, (now_ms - last_delivered_ms_) / 1e3);
    last_delivered_ms_ = now_ms;
    // Hold the target down while a backoff is fresh so one loss
    // episode is not immediately re-probed.
    if (now_ms - last_backoff_ms_ < config_.backoff_hold_ms)
        return;
    target_mbps_ =
        clamp(target_mbps_ + config_.increase_mbps_per_s * dt_s,
              config_.min_mbps, config_.max_mbps);
    if (telemetry_)
        telemetry_->registry().set(tm_target_mbps_, target_mbps_);
}

} // namespace gssr
