/**
 * @file
 * Byte-oriented bitstream primitives for the codec: LEB128 varints,
 * zigzag signed mapping, and reader/writer cursors over byte buffers.
 */

#ifndef GSSR_CODEC_BITSTREAM_HH
#define GSSR_CODEC_BITSTREAM_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace gssr
{

/** Map a signed integer to an unsigned one (zigzag). */
constexpr u64
zigzagEncode(i64 v)
{
    return (u64(v) << 1) ^ u64(v >> 63);
}

/** Inverse of zigzagEncode. */
constexpr i64
zigzagDecode(u64 v)
{
    return i64(v >> 1) ^ -i64(v & 1);
}

/** Append-only byte buffer with varint helpers. */
class ByteWriter
{
  public:
    /** Append one raw byte. */
    void putByte(u8 b) { bytes_.push_back(b); }

    /** Append an unsigned LEB128 varint. */
    void
    putVarint(u64 v)
    {
        while (v >= 0x80) {
            bytes_.push_back(u8(v) | 0x80);
            v >>= 7;
        }
        bytes_.push_back(u8(v));
    }

    /** Append a signed varint (zigzag + LEB128). */
    void putSignedVarint(i64 v) { putVarint(zigzagEncode(v)); }

    /** Append a little-endian u16. */
    void
    putU16(u16 v)
    {
        putByte(u8(v & 0xff));
        putByte(u8(v >> 8));
    }

    /** Append a little-endian u32. */
    void
    putU32(u32 v)
    {
        putByte(u8(v & 0xff));
        putByte(u8((v >> 8) & 0xff));
        putByte(u8((v >> 16) & 0xff));
        putByte(u8(v >> 24));
    }

    /** Number of bytes written so far. */
    size_t size() const { return bytes_.size(); }

    /**
     * Take the accumulated bytes. The writer is reset to an empty
     * buffer and stays fully usable: a caller may keep appending to
     * build the next chunk (the slice encoder emits one buffer per
     * slice through a single writer this way).
     */
    std::vector<u8>
    take()
    {
        std::vector<u8> out = std::move(bytes_);
        bytes_.clear(); // moved-from state is valid but unspecified
        return out;
    }

    /** Read-only view of the accumulated bytes. */
    const std::vector<u8> &bytes() const { return bytes_; }

  private:
    std::vector<u8> bytes_;
};

/** Sequential reader over an encoded byte buffer. */
class ByteReader
{
  public:
    /** Read from @p bytes; the buffer must outlive the reader. */
    explicit ByteReader(const std::vector<u8> &bytes)
        : bytes_(bytes), pos_(0), end_(bytes.size())
    {}

    /**
     * Read the sub-range [offset, offset + length) of @p bytes — an
     * independently decodable slice of a larger payload. position()
     * stays absolute (an offset into the underlying buffer).
     */
    ByteReader(const std::vector<u8> &bytes, size_t offset,
               size_t length)
        : bytes_(bytes), pos_(offset), end_(offset + length)
    {
        if (offset > bytes.size() || length > bytes.size() - offset)
            fatal("bitstream sub-range out of bounds");
    }

    /** Read one raw byte. */
    u8
    getByte()
    {
        if (pos_ >= end_)
            fatal("bitstream truncated");
        return bytes_[pos_++];
    }

    /** Read an unsigned LEB128 varint. */
    u64
    getVarint()
    {
        u64 v = 0;
        int shift = 0;
        while (true) {
            u8 b = getByte();
            v |= u64(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
            if (shift > 63)
                fatal("varint overlong");
        }
    }

    /** Read a signed varint. */
    i64 getSignedVarint() { return zigzagDecode(getVarint()); }

    /** Read a little-endian u16. */
    u16
    getU16()
    {
        u16 lo = getByte();
        u16 hi = getByte();
        return u16(lo | (hi << 8));
    }

    /** Read a little-endian u32. */
    u32
    getU32()
    {
        u32 b0 = getByte();
        u32 b1 = getByte();
        u32 b2 = getByte();
        u32 b3 = getByte();
        return b0 | (b1 << 8) | (b2 << 16) | (b3 << 24);
    }

    /** True when every byte (of the readable range) is consumed. */
    bool atEnd() const { return pos_ >= end_; }

    /** Current read offset (absolute in the underlying buffer). */
    size_t position() const { return pos_; }

  private:
    const std::vector<u8> &bytes_;
    size_t pos_ = 0;
    size_t end_ = 0;
};

} // namespace gssr

#endif // GSSR_CODEC_BITSTREAM_HH
