/**
 * @file
 * Byte-oriented bitstream primitives for the codec: LEB128 varints,
 * zigzag signed mapping, and reader/writer cursors over byte buffers.
 */

#ifndef GSSR_CODEC_BITSTREAM_HH
#define GSSR_CODEC_BITSTREAM_HH

#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace gssr
{

/** Map a signed integer to an unsigned one (zigzag). */
constexpr u64
zigzagEncode(i64 v)
{
    return (u64(v) << 1) ^ u64(v >> 63);
}

/** Inverse of zigzagEncode. */
constexpr i64
zigzagDecode(u64 v)
{
    return i64(v >> 1) ^ -i64(v & 1);
}

/** Append-only byte buffer with varint helpers. */
class ByteWriter
{
  public:
    /** Append one raw byte. */
    void putByte(u8 b) { bytes_.push_back(b); }

    /** Append an unsigned LEB128 varint. */
    void
    putVarint(u64 v)
    {
        while (v >= 0x80) {
            bytes_.push_back(u8(v) | 0x80);
            v >>= 7;
        }
        bytes_.push_back(u8(v));
    }

    /** Append a signed varint (zigzag + LEB128). */
    void putSignedVarint(i64 v) { putVarint(zigzagEncode(v)); }

    /** Append a little-endian u16. */
    void
    putU16(u16 v)
    {
        putByte(u8(v & 0xff));
        putByte(u8(v >> 8));
    }

    /** Number of bytes written so far. */
    size_t size() const { return bytes_.size(); }

    /** Take the accumulated bytes (writer is left empty). */
    std::vector<u8> take() { return std::move(bytes_); }

    /** Read-only view of the accumulated bytes. */
    const std::vector<u8> &bytes() const { return bytes_; }

  private:
    std::vector<u8> bytes_;
};

/** Sequential reader over an encoded byte buffer. */
class ByteReader
{
  public:
    /** Read from @p bytes; the buffer must outlive the reader. */
    explicit ByteReader(const std::vector<u8> &bytes)
        : bytes_(bytes)
    {}

    /** Read one raw byte. */
    u8
    getByte()
    {
        if (pos_ >= bytes_.size())
            fatal("bitstream truncated");
        return bytes_[pos_++];
    }

    /** Read an unsigned LEB128 varint. */
    u64
    getVarint()
    {
        u64 v = 0;
        int shift = 0;
        while (true) {
            u8 b = getByte();
            v |= u64(b & 0x7f) << shift;
            if (!(b & 0x80))
                return v;
            shift += 7;
            if (shift > 63)
                fatal("varint overlong");
        }
    }

    /** Read a signed varint. */
    i64 getSignedVarint() { return zigzagDecode(getVarint()); }

    /** Read a little-endian u16. */
    u16
    getU16()
    {
        u16 lo = getByte();
        u16 hi = getByte();
        return u16(lo | (hi << 8));
    }

    /** True when every byte has been consumed. */
    bool atEnd() const { return pos_ >= bytes_.size(); }

    /** Current read offset. */
    size_t position() const { return pos_; }

  private:
    const std::vector<u8> &bytes_;
    size_t pos_ = 0;
};

} // namespace gssr

#endif // GSSR_CODEC_BITSTREAM_HH
