/**
 * @file
 * Bitrate controller for the GOP encoder. Streaming servers pace
 * their encoders to a target bitrate so the stream fits the channel;
 * this controller adapts the quantization parameter (qp) from the
 * observed compressed sizes using a multiplicative-increase /
 * multiplicative-decrease rule with per-GOP granularity (qp changes
 * only at reference frames, so a GOP is coded consistently).
 */

#ifndef GSSR_CODEC_RATE_CONTROL_HH
#define GSSR_CODEC_RATE_CONTROL_HH

#include "codec/codec.hh"

namespace gssr
{

namespace obs
{
class Telemetry;
}

/** Rate controller configuration. */
struct RateControlConfig
{
    /** Target stream bitrate (Mbit/s). */
    f64 target_mbps = 40.0;

    /** Stream frame rate used to convert bytes to bitrate. */
    f64 fps = 60.0;

    /** qp bounds. */
    int min_qp = 4;
    int max_qp = 48;

    /** EWMA smoothing of the observed per-frame bytes. */
    f64 smoothing = 0.9;

    /**
     * Dead zone around the target (fraction); inside it qp is left
     * alone to avoid oscillation.
     */
    f64 dead_zone = 0.10;
};

/**
 * Adaptive qp controller. Call observe() after each encoded frame
 * and qpForNextFrame() before encoding the next one.
 */
class RateController
{
  public:
    RateController(const RateControlConfig &config, int initial_qp);

    /** Record the compressed size of an encoded frame. */
    void observe(const EncodedFrame &frame)
    {
        observeBytes(frame.sizeBytes());
    }

    /** Record a compressed frame size directly. */
    void observeBytes(size_t bytes);

    /**
     * qp to use for the frame of the given type. Adjustments are
     * only applied at reference frames (GOP boundaries).
     */
    int qpForNextFrame(FrameType type);

    /** Smoothed observed bitrate (Mbit/s). */
    f64 observedMbps() const;

    /** Current qp. */
    int qp() const { return qp_; }

    /**
     * Retarget the controller (used by the AIMD congestion loop to
     * move the whole encoder operating point).
     */
    void
    setTargetMbps(f64 target_mbps)
    {
        GSSR_ASSERT(target_mbps > 0.0, "target bitrate must be > 0");
        config_.target_mbps = target_mbps;
    }

    const RateControlConfig &config() const { return config_; }

  private:
    RateControlConfig config_;
    int qp_;
    f64 smoothed_bytes_ = 0.0;
    bool has_observation_ = false;
};

/** AIMD bitrate-backoff configuration. */
struct AimdConfig
{
    /** Target bitrate bounds (Mbit/s). */
    f64 min_mbps = 2.0;
    f64 max_mbps = 120.0;

    /** Additive recovery slope (Mbit/s per second of delivery). */
    f64 increase_mbps_per_s = 4.0;

    /** Multiplicative backoff factor applied on congestion. */
    f64 decrease_factor = 0.7;

    /**
     * Refractory period between backoffs (ms): one loss episode —
     * which typically drops several frames of the same overload —
     * triggers a single multiplicative decrease.
     */
    f64 backoff_hold_ms = 250.0;
};

/**
 * Additive-increase / multiplicative-decrease controller over the
 * stream's target bitrate (the classic congestion-control rule,
 * applied at frame granularity). Feed it congestion signals (drops,
 * NACKs) and delivery acknowledgements; it yields the target the
 * encoder's RateController should chase, bounding the steady-state
 * drop rate on a congested channel.
 */
class AimdController
{
  public:
    AimdController(const AimdConfig &config, f64 initial_mbps);

    /**
     * Congestion signal at session time @p now_ms.
     * @return true when a multiplicative backoff was applied (false
     *         inside the refractory window).
     */
    bool onCongestion(f64 now_ms);

    /** A frame was delivered at @p now_ms: additive increase. */
    void onDelivered(f64 now_ms);

    /** Current target bitrate (Mbit/s). */
    f64 targetMbps() const { return target_mbps_; }

    /** Number of multiplicative backoffs applied. */
    i64 backoffCount() const { return backoffs_; }

    /** True while a backoff (or noted external cut) is fresh — the
     *  window within which further cuts are suppressed. */
    bool
    inRefractory(f64 now_ms) const
    {
        return now_ms - last_backoff_ms_ < config_.backoff_hold_ms;
    }

    /**
     * Note a bitrate cut applied by another knob writer (e.g. the
     * degradation ladder stepping its bitrate scale down). Arms the
     * refractory window without counting a backoff, so one overload
     * episode yields one cut no matter which loop fired first.
     */
    void noteExternalCut(f64 now_ms) { last_backoff_ms_ = now_ms; }

    /**
     * Attach a telemetry sink (not owned; null detaches). State
     * transitions then report through it: aimd.backoffs counts
     * multiplicative decreases, the aimd.target_mbps gauge tracks the
     * current target, and — when spans are enabled — each backoff
     * drops an instant plus an aimd.target_mbps counter sample on
     * @p track. Write-only: never changes controller decisions.
     */
    void setTelemetry(obs::Telemetry *telemetry, i32 track);

    const AimdConfig &config() const { return config_; }

  private:
    AimdConfig config_;
    f64 target_mbps_;
    f64 last_backoff_ms_ = -1e18;
    f64 last_delivered_ms_ = -1.0;
    i64 backoffs_ = 0;

    obs::Telemetry *telemetry_ = nullptr;
    i32 telemetry_track_ = 0;
    u32 tm_backoffs_ = 0;
    u32 tm_target_mbps_ = 0;
};

} // namespace gssr

#endif // GSSR_CODEC_RATE_CONTROL_HH
