/**
 * @file
 * Bitrate controller for the GOP encoder. Streaming servers pace
 * their encoders to a target bitrate so the stream fits the channel;
 * this controller adapts the quantization parameter (qp) from the
 * observed compressed sizes using a multiplicative-increase /
 * multiplicative-decrease rule with per-GOP granularity (qp changes
 * only at reference frames, so a GOP is coded consistently).
 */

#ifndef GSSR_CODEC_RATE_CONTROL_HH
#define GSSR_CODEC_RATE_CONTROL_HH

#include "codec/codec.hh"

namespace gssr
{

/** Rate controller configuration. */
struct RateControlConfig
{
    /** Target stream bitrate (Mbit/s). */
    f64 target_mbps = 40.0;

    /** Stream frame rate used to convert bytes to bitrate. */
    f64 fps = 60.0;

    /** qp bounds. */
    int min_qp = 4;
    int max_qp = 48;

    /** EWMA smoothing of the observed per-frame bytes. */
    f64 smoothing = 0.9;

    /**
     * Dead zone around the target (fraction); inside it qp is left
     * alone to avoid oscillation.
     */
    f64 dead_zone = 0.10;
};

/**
 * Adaptive qp controller. Call observe() after each encoded frame
 * and qpForNextFrame() before encoding the next one.
 */
class RateController
{
  public:
    RateController(const RateControlConfig &config, int initial_qp);

    /** Record the compressed size of an encoded frame. */
    void observe(const EncodedFrame &frame)
    {
        observeBytes(frame.sizeBytes());
    }

    /** Record a compressed frame size directly. */
    void observeBytes(size_t bytes);

    /**
     * qp to use for the frame of the given type. Adjustments are
     * only applied at reference frames (GOP boundaries).
     */
    int qpForNextFrame(FrameType type);

    /** Smoothed observed bitrate (Mbit/s). */
    f64 observedMbps() const;

    /** Current qp. */
    int qp() const { return qp_; }

    const RateControlConfig &config() const { return config_; }

  private:
    RateControlConfig config_;
    int qp_;
    f64 smoothed_bytes_ = 0.0;
    bool has_observation_ = false;
};

} // namespace gssr

#endif // GSSR_CODEC_RATE_CONTROL_HH
