#include "codec/plane_coder.hh"

#include "codec/dct.hh"
#include "common/mathutil.hh"

namespace gssr
{

namespace
{

/** Value used as the run field of the end-of-block marker. */
constexpr u64 kEobMarker = 64;

/** Extract the 8x8 block at (bx*8, by*8), edge-replicating. */
Block8x8
extractBlock(const PlaneF32 &plane, int bx, int by)
{
    Block8x8 block{};
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            block[size_t(y * 8 + x)] =
                plane.atClamped(bx * 8 + x, by * 8 + y);
        }
    }
    return block;
}

/** Write the in-bounds part of an 8x8 block back into the plane. */
void
depositBlock(PlaneF32 &plane, const Block8x8 &block, int bx, int by)
{
    for (int y = 0; y < 8; ++y) {
        int py = by * 8 + y;
        if (py >= plane.height())
            break;
        for (int x = 0; x < 8; ++x) {
            int px = bx * 8 + x;
            if (px >= plane.width())
                break;
            plane.at(px, py) = block[size_t(y * 8 + x)];
        }
    }
}

/** Entropy-code one quantized block (zigzag run-length). */
void
writeBlock(const QuantBlock &levels, ByteWriter &writer)
{
    const auto &order = zigzagOrder();
    int run = 0;
    for (int i = 0; i < 64; ++i) {
        i32 level = levels[size_t(order[size_t(i)])];
        if (level == 0) {
            ++run;
            continue;
        }
        writer.putVarint(u64(run));
        writer.putSignedVarint(level);
        run = 0;
    }
    writer.putVarint(kEobMarker);
}

/** Inverse of writeBlock. */
QuantBlock
readBlock(ByteReader &reader)
{
    const auto &order = zigzagOrder();
    QuantBlock levels{};
    int i = 0;
    while (true) {
        u64 run = reader.getVarint();
        if (run == kEobMarker)
            break;
        i += int(run);
        if (i >= 64)
            fatal("corrupt block: coefficient index out of range");
        levels[size_t(order[size_t(i)])] = i32(reader.getSignedVarint());
        ++i;
        if (i == 64) {
            // Full block: the EOB marker still follows.
            u64 eob = reader.getVarint();
            if (eob != kEobMarker)
                fatal("corrupt block: missing end-of-block");
            break;
        }
    }
    return levels;
}

} // namespace

namespace
{

/** True when block (bx, by)'s centre lies inside @p roi. */
bool
blockInRoi(int bx, int by, const Rect &roi)
{
    return roi.contains(bx * 8 + 4, by * 8 + 4);
}

/** Shared block-loop for uniform and RoI-weighted coding. */
template <typename QpOf>
PlaneF32
encodeBlocks(const PlaneF32 &plane, ByteWriter &writer, QpOf qp_of)
{
    int blocks_x = int(ceilDiv(plane.width(), 8));
    int blocks_y = int(ceilDiv(plane.height(), 8));
    PlaneF32 recon(plane.width(), plane.height());
    for (int by = 0; by < blocks_y; ++by) {
        for (int bx = 0; bx < blocks_x; ++bx) {
            int qp = qp_of(bx, by);
            Block8x8 spatial = extractBlock(plane, bx, by);
            QuantBlock levels = quantize(forwardDct8x8(spatial), qp);
            writeBlock(levels, writer);
            Block8x8 rec = inverseDct8x8(dequantize(levels, qp));
            depositBlock(recon, rec, bx, by);
        }
    }
    return recon;
}

template <typename QpOf>
PlaneF32
decodeBlocks(Size size, ByteReader &reader, QpOf qp_of)
{
    int blocks_x = int(ceilDiv(size.width, 8));
    int blocks_y = int(ceilDiv(size.height, 8));
    PlaneF32 out(size.width, size.height);
    for (int by = 0; by < blocks_y; ++by) {
        for (int bx = 0; bx < blocks_x; ++bx) {
            QuantBlock levels = readBlock(reader);
            Block8x8 rec =
                inverseDct8x8(dequantize(levels, qp_of(bx, by)));
            depositBlock(out, rec, bx, by);
        }
    }
    return out;
}

} // namespace

PlaneF32
encodePlane(const PlaneF32 &plane, int qp, ByteWriter &writer)
{
    return encodeBlocks(plane, writer, [qp](int, int) { return qp; });
}

PlaneF32
decodePlane(Size size, int qp, ByteReader &reader)
{
    return decodeBlocks(size, reader, [qp](int, int) { return qp; });
}

PlaneF32
encodePlaneRoi(const PlaneF32 &plane, int qp, int roi_qp,
               const Rect &roi, ByteWriter &writer)
{
    return encodeBlocks(plane, writer, [&](int bx, int by) {
        return blockInRoi(bx, by, roi) ? roi_qp : qp;
    });
}

PlaneF32
decodePlaneRoi(Size size, int qp, int roi_qp, const Rect &roi,
               ByteReader &reader)
{
    return decodeBlocks(size, reader, [&](int bx, int by) {
        return blockInRoi(bx, by, roi) ? roi_qp : qp;
    });
}

} // namespace gssr
