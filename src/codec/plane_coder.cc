#include "codec/plane_coder.hh"

#include <algorithm>
#include <vector>

#include "codec/dct.hh"
#include "common/mathutil.hh"
#include "common/parallel.hh"

namespace gssr
{

namespace
{

/** Value used as the run field of the end-of-block marker. */
constexpr u64 kEobMarker = 64;

/** Extract the 8x8 block at (bx*8, by*8), edge-replicating. */
void
extractBlock(const PlaneF32 &plane, int bx, int by, Block8x8 &block)
{
    const int w = plane.width();
    const int h = plane.height();
    const int px0 = bx * 8;
    const int py0 = by * 8;
    if (px0 + 8 <= w && py0 + 8 <= h) {
        // Interior fast path: straight row copies off the raw plane.
        const f32 *base = plane.data().data() + size_t(py0) * w + px0;
        for (int y = 0; y < 8; ++y) {
            const f32 *row = base + size_t(y) * w;
            for (int x = 0; x < 8; ++x)
                block[size_t(y * 8 + x)] = row[x];
        }
        return;
    }
    for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
            block[size_t(y * 8 + x)] =
                plane.atClamped(px0 + x, py0 + y);
        }
    }
}

/** Write the in-bounds part of an 8x8 block back into the plane. */
void
depositBlock(PlaneF32 &plane, const Block8x8 &block, int bx, int by)
{
    const int w = plane.width();
    const int h = plane.height();
    const int px0 = bx * 8;
    const int py0 = by * 8;
    const int ny = std::min(8, h - py0);
    const int nx = std::min(8, w - px0);
    f32 *base = plane.data().data() + size_t(py0) * w + px0;
    for (int y = 0; y < ny; ++y) {
        f32 *row = base + size_t(y) * w;
        for (int x = 0; x < nx; ++x)
            row[x] = block[size_t(y * 8 + x)];
    }
}

/** Entropy-code one quantized block (zigzag run-length). */
void
writeBlock(const QuantBlock &levels, ByteWriter &writer)
{
    const auto &order = zigzagOrder();
    int run = 0;
    for (int i = 0; i < 64; ++i) {
        i32 level = levels[size_t(order[size_t(i)])];
        if (level == 0) {
            ++run;
            continue;
        }
        writer.putVarint(u64(run));
        writer.putSignedVarint(level);
        run = 0;
    }
    writer.putVarint(kEobMarker);
}

/** Inverse of writeBlock. */
QuantBlock
readBlock(ByteReader &reader)
{
    const auto &order = zigzagOrder();
    QuantBlock levels{};
    int i = 0;
    while (true) {
        u64 run = reader.getVarint();
        if (run == kEobMarker)
            break;
        i += int(run);
        if (i >= 64)
            fatal("corrupt block: coefficient index out of range");
        levels[size_t(order[size_t(i)])] = i32(reader.getSignedVarint());
        ++i;
        if (i == 64) {
            // Full block: the EOB marker still follows.
            u64 eob = reader.getVarint();
            if (eob != kEobMarker)
                fatal("corrupt block: missing end-of-block");
            break;
        }
    }
    return levels;
}

} // namespace

namespace
{

/** True when block (bx, by)'s centre lies inside @p roi. */
bool
blockInRoi(int bx, int by, const Rect &roi)
{
    return roi.contains(bx * 8 + 4, by * 8 + 4);
}

/** Blocks per parallel transform chunk. */
constexpr i64 kBlockGrain = 8;

/**
 * Shared block-loop for uniform and RoI-weighted coding. The
 * DCT/quantize/reconstruct transform work parallelizes over blocks
 * (each block owns a disjoint recon region); the entropy coder then
 * serializes the quantized blocks in raster order, so the bitstream is
 * byte-identical at any thread count. Each chunk reuses one set of
 * scratch blocks and looks quantizer tables up from the per-qp cache,
 * so the per-block cost is transform arithmetic only.
 */
template <typename QpOf>
PlaneF32
encodeBlocks(const PlaneF32 &plane, ByteWriter &writer, QpOf qp_of)
{
    const int blocks_x = int(ceilDiv(plane.width(), 8));
    const int blocks_y = int(ceilDiv(plane.height(), 8));
    const i64 n_blocks = i64(blocks_x) * blocks_y;
    PlaneF32 recon(plane.width(), plane.height());
    std::vector<QuantBlock> levels(static_cast<size_t>(n_blocks));
    parallelFor(0, n_blocks, kBlockGrain, [&](i64 begin, i64 end) {
        Block8x8 spatial;
        Block8x8 coef;
        Block8x8 rec;
        for (i64 i = begin; i < end; ++i) {
            int bx = int(i % blocks_x);
            int by = int(i / blocks_x);
            const QuantTable &table = quantTableForQp(qp_of(bx, by));
            extractBlock(plane, bx, by, spatial);
            forwardDct8x8(spatial, coef);
            quantize(coef, table, levels[size_t(i)]);
            dequantize(levels[size_t(i)], table, coef);
            inverseDct8x8(coef, rec);
            depositBlock(recon, rec, bx, by);
        }
    });
    for (i64 i = 0; i < n_blocks; ++i)
        writeBlock(levels[size_t(i)], writer);
    return recon;
}

/**
 * Inverse of encodeBlocks: the varint bitstream parses serially (each
 * block's start depends on the previous block's bytes), then the
 * dequantize/inverse-DCT reconstruction parallelizes over blocks.
 */
template <typename QpOf>
PlaneF32
decodeBlocks(Size size, ByteReader &reader, QpOf qp_of)
{
    const int blocks_x = int(ceilDiv(size.width, 8));
    const int blocks_y = int(ceilDiv(size.height, 8));
    const i64 n_blocks = i64(blocks_x) * blocks_y;
    std::vector<QuantBlock> levels(static_cast<size_t>(n_blocks));
    for (i64 i = 0; i < n_blocks; ++i)
        levels[size_t(i)] = readBlock(reader);
    PlaneF32 out(size.width, size.height);
    parallelFor(0, n_blocks, kBlockGrain, [&](i64 begin, i64 end) {
        Block8x8 coef;
        Block8x8 rec;
        for (i64 i = begin; i < end; ++i) {
            int bx = int(i % blocks_x);
            int by = int(i / blocks_x);
            const QuantTable &table = quantTableForQp(qp_of(bx, by));
            dequantize(levels[size_t(i)], table, coef);
            inverseDct8x8(coef, rec);
            depositBlock(out, rec, bx, by);
        }
    });
    return out;
}

} // namespace

PlaneF32
encodePlane(const PlaneF32 &plane, int qp, ByteWriter &writer)
{
    return encodeBlocks(plane, writer, [qp](int, int) { return qp; });
}

PlaneF32
decodePlane(Size size, int qp, ByteReader &reader)
{
    return decodeBlocks(size, reader, [qp](int, int) { return qp; });
}

PlaneF32
encodePlaneRoi(const PlaneF32 &plane, int qp, int roi_qp,
               const Rect &roi, ByteWriter &writer)
{
    return encodeBlocks(plane, writer, [&](int bx, int by) {
        return blockInRoi(bx, by, roi) ? roi_qp : qp;
    });
}

PlaneF32
decodePlaneRoi(Size size, int qp, int roi_qp, const Rect &roi,
               ByteReader &reader)
{
    return decodeBlocks(size, reader, [&](int bx, int by) {
        return blockInRoi(bx, by, roi) ? roi_qp : qp;
    });
}

} // namespace gssr
