/**
 * @file
 * Block motion estimation and compensation for the inter-coded
 * (non-reference) frames of the GOP codec. Motion vectors are
 * estimated on the luma plane with a three-step search and applied to
 * chroma at half resolution.
 */

#ifndef GSSR_CODEC_MOTION_HH
#define GSSR_CODEC_MOTION_HH

#include <vector>

#include "frame/yuv.hh"

namespace gssr
{

/** One block motion vector (pixels, luma resolution). */
struct MotionVector
{
    i16 dx = 0;
    i16 dy = 0;

    bool operator==(const MotionVector &o) const = default;
};

/** Motion vector field: one vector per mv_block x mv_block luma block. */
struct MvField
{
    int block_size = 16;     ///< luma block size in pixels
    int blocks_x = 0;        ///< blocks per row
    int blocks_y = 0;        ///< blocks per column
    std::vector<MotionVector> vectors; ///< row-major

    /** Vector for block (bx, by). */
    MotionVector &
    at(int bx, int by)
    {
        return vectors[size_t(by * blocks_x + bx)];
    }

    const MotionVector &
    at(int bx, int by) const
    {
        return vectors[size_t(by * blocks_x + bx)];
    }
};

/**
 * Estimate motion of @p current relative to @p reference using a
 * three-step (logarithmic) search minimizing SAD.
 *
 * @param reference previous reconstructed luma plane.
 * @param current luma plane being encoded.
 * @param block_size luma block size (multiple of 2).
 * @param search_range maximum displacement per axis in pixels.
 */
MvField estimateMotion(const PlaneU8 &reference, const PlaneU8 &current,
                       int block_size = 16, int search_range = 7);

/**
 * Build the motion-compensated prediction of a full YUV frame from
 * @p reference and @p mv (chroma uses halved vectors). Out-of-bounds
 * references clamp to the edge.
 */
Yuv420Image motionCompensate(const Yuv420Image &reference,
                             const MvField &mv);

} // namespace gssr

#endif // GSSR_CODEC_MOTION_HH
