/**
 * @file
 * GOP video codec: encoder, decoder, and the two decoder *bindings*
 * the paper's evaluation contrasts —
 *
 *  - HardwareDecoder: the narrow, codec-agnostic interface of a
 *    mobile hardware decoder. It yields decoded pixels only; this is
 *    all GameStreamSR needs (Sec. VI "Codec Agnostic").
 *  - SoftwareDecoder: a CPU decoder that additionally exposes its
 *    internal motion vectors and residuals. NEMO's non-reference
 *    frame reconstruction requires these internals, which is exactly
 *    why NEMO cannot use the energy-efficient hardware decoder
 *    (Sec. V-A "Baseline").
 *
 * The bitstream: reference (key) frames are intra coded (8x8 DCT +
 * quantization); non-reference frames carry a block motion-vector
 * field against the previous reconstructed frame plus transform-coded
 * residuals.
 */

#ifndef GSSR_CODEC_CODEC_HH
#define GSSR_CODEC_CODEC_HH

#include <optional>
#include <utility>
#include <vector>

#include "codec/motion.hh"
#include "frame/frame.hh"
#include "frame/yuv.hh"

namespace gssr
{

class ByteReader;

/** Codec tuning parameters. */
struct CodecConfig
{
    /** Frames per GOP: 1 reference + (gop_size - 1) non-reference. */
    int gop_size = 60;

    /**
     * Quantization parameter; larger = smaller and lossier. The
     * default is the streaming operating point: ~37 dB decoded
     * quality at ~30 Mbit/s for 720p60 game content.
     */
    int qp = 14;

    /** Luma motion block size (pixels). */
    int mv_block_size = 16;

    /** Motion search range (pixels per axis). */
    int search_range = 7;

    /**
     * Row-band slices per frame. 1 = monolithic frame (the legacy
     * bitstream, byte-identical to the pre-slice codec). Larger
     * values partition each frame into independently decodable row
     * bands — per-slice entropy and MV-prediction reset, plus a
     * slice table in the frame header — so a partially received
     * frame decodes its intact bands and conceals only the lost
     * ones. Band boundaries align to lcm(16, mv_block_size) luma
     * rows, so the sliced reconstruction is bit-identical to the
     * monolithic one when every slice arrives; frames too short for
     * the requested count simply carry fewer slices.
     */
    int slices = 1;
};

/** One compressed frame as transmitted over the network. */
struct EncodedFrame
{
    FrameType type = FrameType::Reference;
    Size size;
    i64 index = 0;
    int qp = 0;
    std::vector<u8> payload;

    /**
     * Per-slice delivery flags set by the receiving end of a
     * packetized transport. Empty (the default, and the only state
     * the encoder produces) means every slice is present; otherwise
     * one flag per slice of a sliced payload, and the decoder
     * conceals the bands whose flag is false from its previous
     * reconstruction.
     */
    std::vector<bool> slice_present;

    /**
     * Encoder-side content statistics, produced for free while
     * encoding (QoE-model inputs; not part of the bitstream):
     * mean luma motion-vector magnitude in pixels (0 for intra
     * frames) and RMS of the luma plane the encoder coded — the
     * bias-removed frame for intra, the prediction residual for
     * inter.
     */
    f64 mv_mean_px = 0.0;
    f64 residual_rms = 0.0;

    /** Compressed size in bytes (what the network transports). */
    size_t sizeBytes() const { return payload.size(); }
};

/**
 * Byte layout of one encoded frame's slices, parsed back out of the
 * payload header — the receiver-side map from payload byte ranges to
 * slices (packetizer integration).
 */
struct SliceLayout
{
    /** False when the payload was too malformed to parse. */
    bool ok = false;

    /** True for the sliced bitstream tags. */
    bool sliced = false;

    /**
     * Bytes of frame header + slice table. These must all arrive for
     * the frame to be decodable at all; a monolithic payload reports
     * its fixed header here.
     */
    size_t header_bytes = 0;

    /** Absolute [begin, end) payload range of each slice. A
     *  monolithic payload is one slice spanning everything after the
     *  header. */
    std::vector<std::pair<size_t, size_t>> ranges;
};

/** Parse the slice layout of an encoded payload (never throws on
 *  malformed input — ok is false instead). */
SliceLayout frameSliceLayout(const std::vector<u8> &payload);

/**
 * Row bands [begin_row, end_row) of a frame of @p height luma rows
 * split into at most @p slices independently decodable bands.
 * Boundaries align to lcm(16, mv_block_size) rows so DCT blocks,
 * chroma blocks (4:2:0) and MV blocks never straddle a band; short
 * frames yield fewer bands than requested.
 */
std::vector<std::pair<int, int>> sliceBands(int height, int slices,
                                            int mv_block_size);

/** Signed residual planes exposed by the software decoder. */
struct ResidualImage
{
    PlaneF32 y;
    PlaneF32 u;
    PlaneF32 v;
};

/** Decoder internals that only a software decoder can expose. */
struct DecoderInternals
{
    /** Motion-vector field of the decoded (non-reference) frame. */
    MvField mv;

    /** Decoded residual planes (zero planes for reference frames). */
    ResidualImage residual;
};

/**
 * GOP encoder. Maintains the reconstructed previous frame so inter
 * frames predict from exactly what the decoder will have.
 */
class GopEncoder
{
  public:
    /** @param frame_size size of every frame in the stream. */
    GopEncoder(const CodecConfig &config, Size frame_size);

    /** Type the next encoded frame will get (GOP position). */
    FrameType nextFrameType() const;

    /** Encode the next frame of the stream (RGB convenience). */
    EncodedFrame encode(const ColorImage &frame);

    /** Encode the next frame of the stream. */
    EncodedFrame encodeYuv(const Yuv420Image &frame);

    /** Stream position (number of frames encoded so far). */
    i64 frameCount() const { return next_index_; }

    /**
     * Force the next frame to be intra coded (a Reference frame),
     * realigning the GOP so the following gop_size - 1 frames are
     * deltas. This is the server's response to a client NACK: an
     * intra frame re-seeds the client's reference state without
     * waiting for the natural GOP boundary.
     */
    void forceIntraRefresh() { gop_pos_ = 0; }

    /**
     * Resume an interrupted stream at frame @p index (live session
     * migration): subsequent frames continue the original numbering
     * and GOP phase. The caller decides whether to
     * forceIntraRefresh() on top — the migration path does, so the
     * first frame the destination emits re-seeds the client's
     * reference chain (and is ledgered as a forced refresh).
     */
    void
    seekTo(i64 index)
    {
        GSSR_ASSERT(index >= 0, "stream position must be >= 0");
        next_index_ = index;
        gop_pos_ = index % i64(config_.gop_size);
    }

    /**
     * Change the quantization parameter for subsequent frames (used
     * by the rate controller). The qp travels in each frame header,
     * so no decoder coordination is needed.
     */
    void
    setQp(int qp)
    {
        GSSR_ASSERT(qp >= 1, "qp must be >= 1");
        config_.qp = qp;
    }

    const CodecConfig &config() const { return config_; }

  private:
    /** Sliced-bitstream path (config_.slices > 1). */
    EncodedFrame encodeYuvSliced(const Yuv420Image &frame);

    CodecConfig config_;
    Size size_;
    i64 next_index_ = 0;
    i64 gop_pos_ = 0; ///< position within the current GOP
    Yuv420Image recon_prev_;
};

/**
 * Stateful frame decoder (the shared decode logic behind both
 * bindings). Frames must be fed in stream order.
 */
class FrameDecoder
{
  public:
    FrameDecoder(const CodecConfig &config, Size frame_size);

    /**
     * Decode one frame.
     * @param internals when non-null, receives MV field and residuals
     *        (the software-decoder-only view).
     */
    Yuv420Image decode(const EncodedFrame &frame,
                       DecoderInternals *internals = nullptr);

  private:
    /** Sliced-bitstream path: decodes present bands, conceals the
     *  rest from the previous reconstruction. */
    Yuv420Image decodeSliced(const EncodedFrame &frame, FrameType type,
                             ByteReader &reader,
                             DecoderInternals *internals);

    CodecConfig config_;
    Size size_;
    Yuv420Image recon_prev_;
};

/**
 * Hardware decoder binding: codec-agnostic, pixels only. The device
 * model charges hardware-decode latency/energy for each call.
 */
class HardwareDecoder
{
  public:
    HardwareDecoder(const CodecConfig &config, Size frame_size)
        : decoder_(config, frame_size)
    {}

    /** Decode to RGB; no internals are available by construction. */
    ColorImage
    decode(const EncodedFrame &frame)
    {
        return yuv420ToRgb(decoder_.decode(frame));
    }

  private:
    FrameDecoder decoder_;
};

/**
 * Software decoder binding: runs on the CPU and exposes the decoder
 * internals (motion vectors, residuals) that NEMO's reconstruction
 * consumes.
 */
class SoftwareDecoder
{
  public:
    SoftwareDecoder(const CodecConfig &config, Size frame_size)
        : decoder_(config, frame_size)
    {}

    /** Decode one frame and surface the internals. */
    Yuv420Image
    decode(const EncodedFrame &frame, DecoderInternals &internals)
    {
        return decoder_.decode(frame, &internals);
    }

  private:
    FrameDecoder decoder_;
};

} // namespace gssr

#endif // GSSR_CODEC_CODEC_HH
