/**
 * @file
 * Transform coding of whole planes: 8x8 DCT + quantization +
 * zigzag/run-length entropy coding. Shared by the intra path (pixel
 * planes, bias 128) and the inter path (signed residual planes).
 */

#ifndef GSSR_CODEC_PLANE_CODER_HH
#define GSSR_CODEC_PLANE_CODER_HH

#include "codec/bitstream.hh"
#include "frame/plane.hh"

namespace gssr
{

/**
 * Encode @p plane into @p writer and return the reconstruction the
 * decoder will produce (needed to keep the encoder's reference state
 * drift-free). Planes whose dimensions are not multiples of 8 are
 * edge-padded for coding.
 *
 * @param plane samples (pixels minus bias, or residuals).
 * @param qp quantization parameter (>= 1).
 */
PlaneF32 encodePlane(const PlaneF32 &plane, int qp, ByteWriter &writer);

/** Decode one plane of @p size coded with encodePlane at @p qp. */
PlaneF32 decodePlane(Size size, int qp, ByteReader &reader);

/**
 * RoI-weighted variant (the related-work alternative of RoI-based
 * *encoding*, e.g. Liu et al. TCSVT'15): blocks whose centre falls
 * inside @p roi are quantized with @p roi_qp, the rest with @p qp.
 * The same (qp, roi_qp, roi) must be passed to the decoder.
 */
PlaneF32 encodePlaneRoi(const PlaneF32 &plane, int qp, int roi_qp,
                        const Rect &roi, ByteWriter &writer);

/** Inverse of encodePlaneRoi. */
PlaneF32 decodePlaneRoi(Size size, int qp, int roi_qp, const Rect &roi,
                        ByteReader &reader);

} // namespace gssr

#endif // GSSR_CODEC_PLANE_CODER_HH
