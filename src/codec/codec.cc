#include "codec/codec.hh"

#include <cmath>
#include <numeric>

#include "codec/bitstream.hh"
#include "codec/plane_coder.hh"
#include "common/mathutil.hh"

namespace gssr
{

namespace
{

/** u8 plane -> f32 samples with the intra bias of 128 removed. */
PlaneF32
unbias(const PlaneU8 &in)
{
    PlaneF32 out(in.width(), in.height());
    for (i64 i = 0; i < in.sampleCount(); ++i)
        out.data()[size_t(i)] = f32(in.data()[size_t(i)]) - 128.0f;
    return out;
}

/** f32 samples + 128 bias -> clamped u8 plane. */
PlaneU8
rebias(const PlaneF32 &in)
{
    PlaneU8 out(in.width(), in.height());
    for (i64 i = 0; i < in.sampleCount(); ++i)
        out.data()[size_t(i)] = toPixel(f64(in.data()[size_t(i)]) + 128.0);
    return out;
}

/** current - prediction as f32 residual plane. */
PlaneF32
subtract(const PlaneU8 &current, const PlaneU8 &prediction)
{
    PlaneF32 out(current.width(), current.height());
    for (i64 i = 0; i < current.sampleCount(); ++i) {
        out.data()[size_t(i)] = f32(current.data()[size_t(i)]) -
                                f32(prediction.data()[size_t(i)]);
    }
    return out;
}

/** prediction + residual, clamped to u8. */
PlaneU8
add(const PlaneU8 &prediction, const PlaneF32 &residual)
{
    PlaneU8 out(prediction.width(), prediction.height());
    for (i64 i = 0; i < prediction.sampleCount(); ++i) {
        out.data()[size_t(i)] =
            toPixel(f64(prediction.data()[size_t(i)]) +
                    f64(residual.data()[size_t(i)]));
    }
    return out;
}

/** Mean MV magnitude (px) — the QoE model's temporal-content cue. */
f64
mvMeanMagnitude(const MvField &field)
{
    if (field.vectors.empty())
        return 0.0;
    f64 sum = 0.0;
    for (const MotionVector &v : field.vectors)
        sum += std::hypot(f64(v.dx), f64(v.dy));
    return sum / f64(field.vectors.size());
}

/** RMS of (plane - 128): energy of the intra-coded luma. */
f64
lumaRms(const PlaneU8 &plane)
{
    f64 sum_sq = 0.0;
    for (i64 i = 0; i < plane.sampleCount(); ++i) {
        const f64 s = f64(plane.data()[size_t(i)]) - 128.0;
        sum_sq += s * s;
    }
    return plane.sampleCount() > 0
               ? std::sqrt(sum_sq / f64(plane.sampleCount()))
               : 0.0;
}

/** RMS of (a - b): energy of the inter prediction residual. */
f64
lumaDiffRms(const PlaneU8 &a, const PlaneU8 &b)
{
    f64 sum_sq = 0.0;
    for (i64 i = 0; i < a.sampleCount(); ++i) {
        const f64 s =
            f64(a.data()[size_t(i)]) - f64(b.data()[size_t(i)]);
        sum_sq += s * s;
    }
    return a.sampleCount() > 0
               ? std::sqrt(sum_sq / f64(a.sampleCount()))
               : 0.0;
}

void
writeMvField(const MvField &field, ByteWriter &writer)
{
    writer.putVarint(u64(field.block_size));
    // Delta-code vectors in raster order (neighbouring blocks move
    // similarly, so deltas are small).
    i64 prev_dx = 0, prev_dy = 0;
    for (const MotionVector &v : field.vectors) {
        writer.putSignedVarint(v.dx - prev_dx);
        writer.putSignedVarint(v.dy - prev_dy);
        prev_dx = v.dx;
        prev_dy = v.dy;
    }
}

MvField
readMvField(ByteReader &reader, Size luma_size)
{
    MvField field;
    field.block_size = int(reader.getVarint());
    if (field.block_size < 4)
        fatal("corrupt stream: bad MV block size");
    field.blocks_x = int(ceilDiv(luma_size.width, field.block_size));
    field.blocks_y = int(ceilDiv(luma_size.height, field.block_size));
    field.vectors.resize(size_t(field.blocks_x) *
                         size_t(field.blocks_y));
    i64 prev_dx = 0, prev_dy = 0;
    for (MotionVector &v : field.vectors) {
        prev_dx += reader.getSignedVarint();
        prev_dy += reader.getSignedVarint();
        v.dx = i16(prev_dx);
        v.dy = i16(prev_dy);
    }
    return field;
}

/**
 * Write the MV rows [br0, br1) of @p field with the delta predictor
 * reset at the band start, so each slice's vectors decode without any
 * other slice's bytes.
 */
void
writeMvFieldRows(const MvField &field, int br0, int br1,
                 ByteWriter &writer)
{
    writer.putVarint(u64(field.block_size));
    i64 prev_dx = 0, prev_dy = 0;
    for (int by = br0; by < br1; ++by) {
        for (int bx = 0; bx < field.blocks_x; ++bx) {
            const MotionVector &v = field.at(bx, by);
            writer.putSignedVarint(v.dx - prev_dx);
            writer.putSignedVarint(v.dy - prev_dy);
            prev_dx = v.dx;
            prev_dy = v.dy;
        }
    }
}

/** Inverse of writeMvFieldRows, into a pre-sized full-frame field. */
void
readMvFieldRows(ByteReader &reader, MvField &field, int br0, int br1)
{
    int block_size = int(reader.getVarint());
    if (block_size != field.block_size)
        fatal("corrupt stream: slice MV block size mismatch");
    i64 prev_dx = 0, prev_dy = 0;
    for (int by = br0; by < br1; ++by) {
        for (int bx = 0; bx < field.blocks_x; ++bx) {
            prev_dx += reader.getSignedVarint();
            prev_dy += reader.getSignedVarint();
            field.at(bx, by).dx = i16(prev_dx);
            field.at(bx, by).dy = i16(prev_dy);
        }
    }
}

constexpr u8 kTagReference = 0x49;          // 'I'
constexpr u8 kTagNonReference = 0x50;       // 'P'
constexpr u8 kTagReferenceSliced = 0x69;    // 'i'
constexpr u8 kTagNonReferenceSliced = 0x70; // 'p'

/** Monolithic frame header: tag, w, h, qp. */
constexpr size_t kFrameHeaderBytes = 6;

/** Sliced header adds a slice count; each table entry is
 *  start_row u16 + rows u16 + byte length u32. */
constexpr size_t kSlicedFrameHeaderBytes = 7;
constexpr size_t kSliceTableEntryBytes = 8;

/** Slice band alignment: DCT blocks (8 luma / 8 chroma = 16 luma
 *  rows) and MV blocks must never straddle a band, so the sliced
 *  reconstruction stays bit-identical to the monolithic one. */
int
sliceAlign(int mv_block_size)
{
    return std::lcm(16, std::max(1, mv_block_size));
}

} // namespace

std::vector<std::pair<int, int>>
sliceBands(int height, int slices, int mv_block_size)
{
    GSSR_ASSERT(height >= 1, "sliceBands needs a positive height");
    GSSR_ASSERT(slices >= 1, "slice count must be >= 1");
    const int align = sliceAlign(mv_block_size);
    const i64 target = ceilDiv(i64(height), i64(slices));
    const int rows = int(ceilDiv(target, i64(align)) * align);
    std::vector<std::pair<int, int>> bands;
    for (int r0 = 0; r0 < height; r0 += rows)
        bands.emplace_back(r0, std::min(height, r0 + rows));
    return bands;
}

SliceLayout
frameSliceLayout(const std::vector<u8> &payload)
{
    SliceLayout layout;
    if (payload.size() <= kFrameHeaderBytes)
        return layout;
    const u8 tag = payload[0];
    if (tag == kTagReference || tag == kTagNonReference) {
        layout.ok = true;
        layout.header_bytes = kFrameHeaderBytes;
        layout.ranges.emplace_back(kFrameHeaderBytes, payload.size());
        return layout;
    }
    if (tag != kTagReferenceSliced && tag != kTagNonReferenceSliced)
        return layout;
    if (payload.size() < kSlicedFrameHeaderBytes)
        return layout;
    const size_t slices = payload[6];
    const size_t header =
        kSlicedFrameHeaderBytes + slices * kSliceTableEntryBytes;
    if (slices == 0 || payload.size() < header)
        return layout;
    size_t off = header;
    for (size_t s = 0; s < slices; ++s) {
        const u8 *e = payload.data() + kSlicedFrameHeaderBytes +
                      s * kSliceTableEntryBytes;
        const size_t len = size_t(e[4]) | (size_t(e[5]) << 8) |
                           (size_t(e[6]) << 16) | (size_t(e[7]) << 24);
        if (len == 0 || len > payload.size() - off)
            return layout;
        layout.ranges.emplace_back(off, off + len);
        off += len;
    }
    if (off != payload.size()) {
        layout.ranges.clear();
        return layout;
    }
    layout.ok = true;
    layout.sliced = true;
    layout.header_bytes = header;
    return layout;
}

GopEncoder::GopEncoder(const CodecConfig &config, Size frame_size)
    : config_(config), size_(frame_size)
{
    GSSR_ASSERT(config_.gop_size >= 1, "gop_size must be >= 1");
    GSSR_ASSERT(config_.qp >= 1, "qp must be >= 1");
    GSSR_ASSERT(config_.slices >= 1 && config_.slices <= 255,
                "slices must be in [1, 255]");
    GSSR_ASSERT(frame_size.width % 2 == 0 && frame_size.height % 2 == 0,
                "codec frames need even dimensions");
}

FrameType
GopEncoder::nextFrameType() const
{
    return gop_pos_ == 0 ? FrameType::Reference
                         : FrameType::NonReference;
}

EncodedFrame
GopEncoder::encode(const ColorImage &frame)
{
    return encodeYuv(rgbToYuv420(frame));
}

EncodedFrame
GopEncoder::encodeYuv(const Yuv420Image &frame)
{
    GSSR_ASSERT(frame.size() == size_, "frame size changed mid-stream");
    if (config_.slices > 1)
        return encodeYuvSliced(frame);

    EncodedFrame out;
    out.type = nextFrameType();
    out.size = size_;
    out.index = next_index_;
    out.qp = config_.qp;

    ByteWriter writer;
    writer.putByte(out.type == FrameType::Reference ? kTagReference
                                                    : kTagNonReference);
    writer.putU16(u16(size_.width));
    writer.putU16(u16(size_.height));
    writer.putByte(u8(config_.qp));

    if (out.type == FrameType::Reference) {
        out.residual_rms = lumaRms(frame.y);
        Yuv420Image recon(size_.width, size_.height);
        recon.y = rebias(encodePlane(unbias(frame.y), config_.qp,
                                     writer));
        recon.u = rebias(encodePlane(unbias(frame.u), config_.qp,
                                     writer));
        recon.v = rebias(encodePlane(unbias(frame.v), config_.qp,
                                     writer));
        recon_prev_ = std::move(recon);
    } else {
        MvField mv = estimateMotion(recon_prev_.y, frame.y,
                                    config_.mv_block_size,
                                    config_.search_range);
        writeMvField(mv, writer);
        Yuv420Image prediction = motionCompensate(recon_prev_, mv);
        out.mv_mean_px = mvMeanMagnitude(mv);
        out.residual_rms = lumaDiffRms(frame.y, prediction.y);

        Yuv420Image recon(size_.width, size_.height);
        recon.y = add(prediction.y,
                      encodePlane(subtract(frame.y, prediction.y),
                                  config_.qp, writer));
        recon.u = add(prediction.u,
                      encodePlane(subtract(frame.u, prediction.u),
                                  config_.qp, writer));
        recon.v = add(prediction.v,
                      encodePlane(subtract(frame.v, prediction.v),
                                  config_.qp, writer));
        recon_prev_ = std::move(recon);
    }

    out.payload = writer.take();
    next_index_ += 1;
    gop_pos_ = (gop_pos_ + 1) % config_.gop_size;
    return out;
}

EncodedFrame
GopEncoder::encodeYuvSliced(const Yuv420Image &frame)
{
    EncodedFrame out;
    out.type = nextFrameType();
    out.size = size_;
    out.index = next_index_;
    out.qp = config_.qp;

    const auto bands =
        sliceBands(size_.height, config_.slices, config_.mv_block_size);
    const int bs = config_.mv_block_size;

    ByteWriter writer;
    writer.putByte(out.type == FrameType::Reference
                       ? kTagReferenceSliced
                       : kTagNonReferenceSliced);
    writer.putU16(u16(size_.width));
    writer.putU16(u16(size_.height));
    writer.putByte(u8(config_.qp));
    writer.putByte(u8(bands.size()));

    Yuv420Image recon(size_.width, size_.height);
    std::vector<std::vector<u8>> slice_data;
    slice_data.reserve(bands.size());
    ByteWriter sw;

    if (out.type == FrameType::Reference) {
        out.residual_rms = lumaRms(frame.y);
        for (auto [r0, r1] : bands) {
            const int rows = r1 - r0;
            const Rect ly{0, r0, size_.width, rows};
            const Rect cy{0, r0 / 2, size_.width / 2, rows / 2};
            recon.y.blit(rebias(encodePlane(unbias(frame.y.crop(ly)),
                                            config_.qp, sw)),
                         0, r0);
            recon.u.blit(rebias(encodePlane(unbias(frame.u.crop(cy)),
                                            config_.qp, sw)),
                         0, r0 / 2);
            recon.v.blit(rebias(encodePlane(unbias(frame.v.crop(cy)),
                                            config_.qp, sw)),
                         0, r0 / 2);
            slice_data.push_back(sw.take());
        }
    } else {
        // Motion is estimated and compensated over the full frame
        // (identical to the monolithic path — bands only partition
        // the *entropy* stream), then each band's MV rows and
        // residual blocks are written into their own slice buffer.
        MvField mv = estimateMotion(recon_prev_.y, frame.y, bs,
                                    config_.search_range);
        Yuv420Image prediction = motionCompensate(recon_prev_, mv);
        out.mv_mean_px = mvMeanMagnitude(mv);
        out.residual_rms = lumaDiffRms(frame.y, prediction.y);
        for (auto [r0, r1] : bands) {
            const int rows = r1 - r0;
            const Rect ly{0, r0, size_.width, rows};
            const Rect cy{0, r0 / 2, size_.width / 2, rows / 2};
            writeMvFieldRows(mv, r0 / bs, int(ceilDiv(r1, bs)), sw);
            PlaneU8 py = prediction.y.crop(ly);
            PlaneU8 pu = prediction.u.crop(cy);
            PlaneU8 pv = prediction.v.crop(cy);
            recon.y.blit(add(py, encodePlane(subtract(frame.y.crop(ly),
                                                      py),
                                             config_.qp, sw)),
                         0, r0);
            recon.u.blit(add(pu, encodePlane(subtract(frame.u.crop(cy),
                                                      pu),
                                             config_.qp, sw)),
                         0, r0 / 2);
            recon.v.blit(add(pv, encodePlane(subtract(frame.v.crop(cy),
                                                      pv),
                                             config_.qp, sw)),
                         0, r0 / 2);
            slice_data.push_back(sw.take());
        }
    }

    for (size_t s = 0; s < bands.size(); ++s) {
        writer.putU16(u16(bands[s].first));
        writer.putU16(u16(bands[s].second - bands[s].first));
        writer.putU32(u32(slice_data[s].size()));
    }
    out.payload = writer.take();
    for (const auto &data : slice_data)
        out.payload.insert(out.payload.end(), data.begin(), data.end());

    recon_prev_ = std::move(recon);
    next_index_ += 1;
    gop_pos_ = (gop_pos_ + 1) % config_.gop_size;
    return out;
}

FrameDecoder::FrameDecoder(const CodecConfig &config, Size frame_size)
    : config_(config), size_(frame_size)
{
}

Yuv420Image
FrameDecoder::decode(const EncodedFrame &frame,
                     DecoderInternals *internals)
{
    ByteReader reader(frame.payload);
    u8 tag = reader.getByte();
    if (tag == kTagReferenceSliced || tag == kTagNonReferenceSliced) {
        FrameType type = tag == kTagReferenceSliced
                             ? FrameType::Reference
                             : FrameType::NonReference;
        if (type != frame.type)
            fatal("frame metadata/payload type mismatch");
        return decodeSliced(frame, type, reader, internals);
    }
    if (tag != kTagReference && tag != kTagNonReference)
        fatal("corrupt stream: bad frame tag");
    for (bool flag : frame.slice_present) {
        if (!flag)
            fatal("missing slices on a monolithic payload");
    }
    FrameType type = tag == kTagReference ? FrameType::Reference
                                          : FrameType::NonReference;
    if (type != frame.type)
        fatal("frame metadata/payload type mismatch");
    Size size{int(reader.getU16()), int(reader.getU16())};
    if (size != size_)
        fatal("frame size does not match decoder configuration");
    int qp = reader.getByte();
    if (qp < 1)
        fatal("corrupt stream: bad qp");

    Size chroma{size.width / 2, size.height / 2};
    Yuv420Image recon(size.width, size.height);

    if (type == FrameType::Reference) {
        recon.y = rebias(decodePlane(size, qp, reader));
        recon.u = rebias(decodePlane(chroma, qp, reader));
        recon.v = rebias(decodePlane(chroma, qp, reader));
        if (internals) {
            internals->mv = MvField{};
            internals->residual.y = PlaneF32(size.width, size.height);
            internals->residual.u = PlaneF32(chroma.width,
                                             chroma.height);
            internals->residual.v = PlaneF32(chroma.width,
                                             chroma.height);
        }
    } else {
        if (recon_prev_.empty())
            fatal("non-reference frame before any reference frame");
        MvField mv = readMvField(reader, size);
        Yuv420Image prediction = motionCompensate(recon_prev_, mv);
        PlaneF32 res_y = decodePlane(size, qp, reader);
        PlaneF32 res_u = decodePlane(chroma, qp, reader);
        PlaneF32 res_v = decodePlane(chroma, qp, reader);
        recon.y = add(prediction.y, res_y);
        recon.u = add(prediction.u, res_u);
        recon.v = add(prediction.v, res_v);
        if (internals) {
            internals->mv = std::move(mv);
            internals->residual.y = std::move(res_y);
            internals->residual.u = std::move(res_u);
            internals->residual.v = std::move(res_v);
        }
    }
    recon_prev_ = recon;
    return recon;
}

Yuv420Image
FrameDecoder::decodeSliced(const EncodedFrame &frame, FrameType type,
                           ByteReader &reader,
                           DecoderInternals *internals)
{
    Size size{int(reader.getU16()), int(reader.getU16())};
    if (size != size_)
        fatal("frame size does not match decoder configuration");
    int qp = reader.getByte();
    if (qp < 1)
        fatal("corrupt stream: bad qp");
    const int slices = reader.getByte();
    if (slices < 1)
        fatal("corrupt stream: zero slices");

    // Slice table: bands must tile the frame top to bottom and the
    // slice data must exactly fill the rest of the payload. The
    // session only feeds trusted (reassembled-and-validated) payloads
    // here, so violations are stream corruption, not recoverable loss.
    struct Slice
    {
        int r0 = 0;
        int rows = 0;
        size_t offset = 0;
        size_t len = 0;
    };
    std::vector<Slice> table(static_cast<size_t>(slices));
    size_t off = kSlicedFrameHeaderBytes +
                 size_t(slices) * kSliceTableEntryBytes;
    int expect_row = 0;
    for (Slice &s : table) {
        s.r0 = int(reader.getU16());
        s.rows = int(reader.getU16());
        s.len = reader.getU32();
        s.offset = off;
        if (s.r0 != expect_row || s.rows < 1 || s.len == 0)
            fatal("corrupt stream: bad slice table entry");
        expect_row += s.rows;
        off += s.len;
    }
    if (expect_row != size.height || off != frame.payload.size())
        fatal("corrupt stream: slice table does not cover the frame");

    std::vector<bool> present(size_t(slices), true);
    if (!frame.slice_present.empty()) {
        if (int(frame.slice_present.size()) != slices)
            fatal("slice_present does not match the slice count");
        present.assign(frame.slice_present.begin(),
                       frame.slice_present.end());
    }

    Size chroma{size.width / 2, size.height / 2};
    Yuv420Image recon(size.width, size.height);

    if (type == FrameType::Reference) {
        for (const Slice &s : table) {
            const size_t idx = size_t(&s - table.data());
            const Rect ly{0, s.r0, size.width, s.rows};
            const Rect cy{0, s.r0 / 2, chroma.width, s.rows / 2};
            if (present[idx]) {
                ByteReader sr(frame.payload, s.offset, s.len);
                recon.y.blit(rebias(decodePlane({size.width, s.rows},
                                                qp, sr)),
                             0, s.r0);
                recon.u.blit(rebias(decodePlane({chroma.width,
                                                 s.rows / 2},
                                                qp, sr)),
                             0, s.r0 / 2);
                recon.v.blit(rebias(decodePlane({chroma.width,
                                                 s.rows / 2},
                                                qp, sr)),
                             0, s.r0 / 2);
            } else if (!recon_prev_.empty()) {
                // Temporal-hold concealment of the lost band.
                recon.y.blit(recon_prev_.y.crop(ly), 0, s.r0);
                recon.u.blit(recon_prev_.u.crop(cy), 0, s.r0 / 2);
                recon.v.blit(recon_prev_.v.crop(cy), 0, s.r0 / 2);
            } else {
                // Nothing to hold: mid-gray band.
                recon.y.blit(PlaneU8(size.width, s.rows, 128), 0, s.r0);
                recon.u.blit(PlaneU8(chroma.width, s.rows / 2, 128), 0,
                             s.r0 / 2);
                recon.v.blit(PlaneU8(chroma.width, s.rows / 2, 128), 0,
                             s.r0 / 2);
            }
        }
        if (internals) {
            internals->mv = MvField{};
            internals->residual.y = PlaneF32(size.width, size.height);
            internals->residual.u = PlaneF32(chroma.width,
                                             chroma.height);
            internals->residual.v = PlaneF32(chroma.width,
                                             chroma.height);
        }
    } else {
        if (recon_prev_.empty())
            fatal("non-reference frame before any reference frame");
        const int bs = config_.mv_block_size;
        MvField mv;
        mv.block_size = bs;
        mv.blocks_x = int(ceilDiv(size.width, bs));
        mv.blocks_y = int(ceilDiv(size.height, bs));
        mv.vectors.assign(size_t(mv.blocks_x) * size_t(mv.blocks_y),
                          MotionVector{});

        // Pass 1: MV rows of the present slices; lost bands keep zero
        // vectors, so the single full-frame motion compensation below
        // predicts them as the previous frame's band — temporal-hold
        // concealment falls out of the ordinary inter path.
        std::vector<size_t> res_off(size_t(slices), 0);
        std::vector<size_t> res_len(size_t(slices), 0);
        for (int s = 0; s < slices; ++s) {
            if (!present[size_t(s)])
                continue;
            const Slice &e = table[size_t(s)];
            ByteReader sr(frame.payload, e.offset, e.len);
            readMvFieldRows(sr, mv, e.r0 / bs,
                            int(ceilDiv(e.r0 + e.rows, bs)));
            res_off[size_t(s)] = sr.position();
            res_len[size_t(s)] = e.offset + e.len - sr.position();
        }
        Yuv420Image prediction = motionCompensate(recon_prev_, mv);

        PlaneF32 res_y, res_u, res_v;
        if (internals) {
            res_y = PlaneF32(size.width, size.height);
            res_u = PlaneF32(chroma.width, chroma.height);
            res_v = PlaneF32(chroma.width, chroma.height);
        }
        for (int s = 0; s < slices; ++s) {
            const Slice &e = table[size_t(s)];
            const Rect ly{0, e.r0, size.width, e.rows};
            const Rect cy{0, e.r0 / 2, chroma.width, e.rows / 2};
            if (present[size_t(s)]) {
                ByteReader sr(frame.payload, res_off[size_t(s)],
                              res_len[size_t(s)]);
                PlaneF32 ry = decodePlane({size.width, e.rows}, qp, sr);
                PlaneF32 ru = decodePlane({chroma.width, e.rows / 2},
                                          qp, sr);
                PlaneF32 rv = decodePlane({chroma.width, e.rows / 2},
                                          qp, sr);
                recon.y.blit(add(prediction.y.crop(ly), ry), 0, e.r0);
                recon.u.blit(add(prediction.u.crop(cy), ru), 0,
                             e.r0 / 2);
                recon.v.blit(add(prediction.v.crop(cy), rv), 0,
                             e.r0 / 2);
                if (internals) {
                    res_y.blit(ry, 0, e.r0);
                    res_u.blit(ru, 0, e.r0 / 2);
                    res_v.blit(rv, 0, e.r0 / 2);
                }
            } else {
                recon.y.blit(prediction.y.crop(ly), 0, e.r0);
                recon.u.blit(prediction.u.crop(cy), 0, e.r0 / 2);
                recon.v.blit(prediction.v.crop(cy), 0, e.r0 / 2);
            }
        }
        if (internals) {
            internals->mv = std::move(mv);
            internals->residual.y = std::move(res_y);
            internals->residual.u = std::move(res_u);
            internals->residual.v = std::move(res_v);
        }
    }
    recon_prev_ = recon;
    return recon;
}

} // namespace gssr
