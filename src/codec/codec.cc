#include "codec/codec.hh"

#include "codec/bitstream.hh"
#include "codec/plane_coder.hh"
#include "common/mathutil.hh"

namespace gssr
{

namespace
{

/** u8 plane -> f32 samples with the intra bias of 128 removed. */
PlaneF32
unbias(const PlaneU8 &in)
{
    PlaneF32 out(in.width(), in.height());
    for (i64 i = 0; i < in.sampleCount(); ++i)
        out.data()[size_t(i)] = f32(in.data()[size_t(i)]) - 128.0f;
    return out;
}

/** f32 samples + 128 bias -> clamped u8 plane. */
PlaneU8
rebias(const PlaneF32 &in)
{
    PlaneU8 out(in.width(), in.height());
    for (i64 i = 0; i < in.sampleCount(); ++i)
        out.data()[size_t(i)] = toPixel(f64(in.data()[size_t(i)]) + 128.0);
    return out;
}

/** current - prediction as f32 residual plane. */
PlaneF32
subtract(const PlaneU8 &current, const PlaneU8 &prediction)
{
    PlaneF32 out(current.width(), current.height());
    for (i64 i = 0; i < current.sampleCount(); ++i) {
        out.data()[size_t(i)] = f32(current.data()[size_t(i)]) -
                                f32(prediction.data()[size_t(i)]);
    }
    return out;
}

/** prediction + residual, clamped to u8. */
PlaneU8
add(const PlaneU8 &prediction, const PlaneF32 &residual)
{
    PlaneU8 out(prediction.width(), prediction.height());
    for (i64 i = 0; i < prediction.sampleCount(); ++i) {
        out.data()[size_t(i)] =
            toPixel(f64(prediction.data()[size_t(i)]) +
                    f64(residual.data()[size_t(i)]));
    }
    return out;
}

void
writeMvField(const MvField &field, ByteWriter &writer)
{
    writer.putVarint(u64(field.block_size));
    // Delta-code vectors in raster order (neighbouring blocks move
    // similarly, so deltas are small).
    i64 prev_dx = 0, prev_dy = 0;
    for (const MotionVector &v : field.vectors) {
        writer.putSignedVarint(v.dx - prev_dx);
        writer.putSignedVarint(v.dy - prev_dy);
        prev_dx = v.dx;
        prev_dy = v.dy;
    }
}

MvField
readMvField(ByteReader &reader, Size luma_size)
{
    MvField field;
    field.block_size = int(reader.getVarint());
    if (field.block_size < 4)
        fatal("corrupt stream: bad MV block size");
    field.blocks_x = int(ceilDiv(luma_size.width, field.block_size));
    field.blocks_y = int(ceilDiv(luma_size.height, field.block_size));
    field.vectors.resize(size_t(field.blocks_x) *
                         size_t(field.blocks_y));
    i64 prev_dx = 0, prev_dy = 0;
    for (MotionVector &v : field.vectors) {
        prev_dx += reader.getSignedVarint();
        prev_dy += reader.getSignedVarint();
        v.dx = i16(prev_dx);
        v.dy = i16(prev_dy);
    }
    return field;
}

constexpr u8 kTagReference = 0x49;    // 'I'
constexpr u8 kTagNonReference = 0x50; // 'P'

} // namespace

GopEncoder::GopEncoder(const CodecConfig &config, Size frame_size)
    : config_(config), size_(frame_size)
{
    GSSR_ASSERT(config_.gop_size >= 1, "gop_size must be >= 1");
    GSSR_ASSERT(config_.qp >= 1, "qp must be >= 1");
    GSSR_ASSERT(frame_size.width % 2 == 0 && frame_size.height % 2 == 0,
                "codec frames need even dimensions");
}

FrameType
GopEncoder::nextFrameType() const
{
    return gop_pos_ == 0 ? FrameType::Reference
                         : FrameType::NonReference;
}

EncodedFrame
GopEncoder::encode(const ColorImage &frame)
{
    return encodeYuv(rgbToYuv420(frame));
}

EncodedFrame
GopEncoder::encodeYuv(const Yuv420Image &frame)
{
    GSSR_ASSERT(frame.size() == size_, "frame size changed mid-stream");

    EncodedFrame out;
    out.type = nextFrameType();
    out.size = size_;
    out.index = next_index_;
    out.qp = config_.qp;

    ByteWriter writer;
    writer.putByte(out.type == FrameType::Reference ? kTagReference
                                                    : kTagNonReference);
    writer.putU16(u16(size_.width));
    writer.putU16(u16(size_.height));
    writer.putByte(u8(config_.qp));

    if (out.type == FrameType::Reference) {
        Yuv420Image recon(size_.width, size_.height);
        recon.y = rebias(encodePlane(unbias(frame.y), config_.qp,
                                     writer));
        recon.u = rebias(encodePlane(unbias(frame.u), config_.qp,
                                     writer));
        recon.v = rebias(encodePlane(unbias(frame.v), config_.qp,
                                     writer));
        recon_prev_ = std::move(recon);
    } else {
        MvField mv = estimateMotion(recon_prev_.y, frame.y,
                                    config_.mv_block_size,
                                    config_.search_range);
        writeMvField(mv, writer);
        Yuv420Image prediction = motionCompensate(recon_prev_, mv);

        Yuv420Image recon(size_.width, size_.height);
        recon.y = add(prediction.y,
                      encodePlane(subtract(frame.y, prediction.y),
                                  config_.qp, writer));
        recon.u = add(prediction.u,
                      encodePlane(subtract(frame.u, prediction.u),
                                  config_.qp, writer));
        recon.v = add(prediction.v,
                      encodePlane(subtract(frame.v, prediction.v),
                                  config_.qp, writer));
        recon_prev_ = std::move(recon);
    }

    out.payload = writer.take();
    next_index_ += 1;
    gop_pos_ = (gop_pos_ + 1) % config_.gop_size;
    return out;
}

FrameDecoder::FrameDecoder(const CodecConfig &config, Size frame_size)
    : config_(config), size_(frame_size)
{
}

Yuv420Image
FrameDecoder::decode(const EncodedFrame &frame,
                     DecoderInternals *internals)
{
    ByteReader reader(frame.payload);
    u8 tag = reader.getByte();
    if (tag != kTagReference && tag != kTagNonReference)
        fatal("corrupt stream: bad frame tag");
    FrameType type = tag == kTagReference ? FrameType::Reference
                                          : FrameType::NonReference;
    if (type != frame.type)
        fatal("frame metadata/payload type mismatch");
    Size size{int(reader.getU16()), int(reader.getU16())};
    if (size != size_)
        fatal("frame size does not match decoder configuration");
    int qp = reader.getByte();
    if (qp < 1)
        fatal("corrupt stream: bad qp");

    Size chroma{size.width / 2, size.height / 2};
    Yuv420Image recon(size.width, size.height);

    if (type == FrameType::Reference) {
        recon.y = rebias(decodePlane(size, qp, reader));
        recon.u = rebias(decodePlane(chroma, qp, reader));
        recon.v = rebias(decodePlane(chroma, qp, reader));
        if (internals) {
            internals->mv = MvField{};
            internals->residual.y = PlaneF32(size.width, size.height);
            internals->residual.u = PlaneF32(chroma.width,
                                             chroma.height);
            internals->residual.v = PlaneF32(chroma.width,
                                             chroma.height);
        }
    } else {
        if (recon_prev_.empty())
            fatal("non-reference frame before any reference frame");
        MvField mv = readMvField(reader, size);
        Yuv420Image prediction = motionCompensate(recon_prev_, mv);
        PlaneF32 res_y = decodePlane(size, qp, reader);
        PlaneF32 res_u = decodePlane(chroma, qp, reader);
        PlaneF32 res_v = decodePlane(chroma, qp, reader);
        recon.y = add(prediction.y, res_y);
        recon.u = add(prediction.u, res_u);
        recon.v = add(prediction.v, res_v);
        if (internals) {
            internals->mv = std::move(mv);
            internals->residual.y = std::move(res_y);
            internals->residual.u = std::move(res_u);
            internals->residual.v = std::move(res_v);
        }
    }
    recon_prev_ = recon;
    return recon;
}

} // namespace gssr
