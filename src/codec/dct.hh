/**
 * @file
 * 8x8 block DCT transform and quantization used by the intra and
 * residual coding paths of the GOP codec.
 */

#ifndef GSSR_CODEC_DCT_HH
#define GSSR_CODEC_DCT_HH

#include <array>

#include "common/types.hh"

namespace gssr
{

/** One 8x8 block of spatial samples or transform coefficients. */
using Block8x8 = std::array<f32, 64>;
using QuantBlock = std::array<i32, 64>;

/** Forward 8x8 type-II DCT (orthonormal). */
Block8x8 forwardDct8x8(const Block8x8 &spatial);

/** Inverse 8x8 DCT (type-III, orthonormal). */
Block8x8 inverseDct8x8(const Block8x8 &coefficients);

/**
 * Quantize DCT coefficients. The step for coefficient i is
 * qp * weight(i), where weight grows with frequency (JPEG-flavored).
 */
QuantBlock quantize(const Block8x8 &coefficients, int qp);

/** Reconstruct coefficients from quantized levels. */
Block8x8 dequantize(const QuantBlock &levels, int qp);

/** Zigzag scan order for an 8x8 block (index -> raster position). */
const std::array<int, 64> &zigzagOrder();

} // namespace gssr

#endif // GSSR_CODEC_DCT_HH
