/**
 * @file
 * 8x8 block DCT transform and quantization used by the intra and
 * residual coding paths of the GOP codec.
 *
 * The hot-path API writes into caller-provided out-params so the
 * per-block coder can reuse its buffers (the by-value returning
 * wrappers below remain for tests and one-off callers). The actual
 * arithmetic lives in the runtime-dispatched SIMD kernel layer
 * (src/kernels); scalar and AVX2 paths are bit-exact.
 */

#ifndef GSSR_CODEC_DCT_HH
#define GSSR_CODEC_DCT_HH

#include <array>

#include "common/types.hh"

namespace gssr
{

/** One 8x8 block of spatial samples or transform coefficients. */
using Block8x8 = std::array<f32, 64>;
using QuantBlock = std::array<i32, 64>;

/**
 * Per-coefficient quantizer step sizes for one qp:
 * step[i] = qp * weight(i), where weight grows with frequency
 * (JPEG-flavored). Obtain via quantTableForQp — tables are computed
 * once per qp and cached for the life of the process instead of being
 * rebuilt per 8x8 block.
 */
struct QuantTable
{
    alignas(32) std::array<f32, 64> step;
    int qp = 0;
};

/** Cached per-qp quantizer table (thread-safe; qp >= 1). */
const QuantTable &quantTableForQp(int qp);

/** Forward 8x8 type-II DCT (orthonormal), @p in -> @p out. */
void forwardDct8x8(const Block8x8 &spatial, Block8x8 &out);

/** Inverse 8x8 DCT (type-III, orthonormal), @p in -> @p out. */
void inverseDct8x8(const Block8x8 &coefficients, Block8x8 &out);

/** Quantize DCT coefficients with a cached step table. */
void quantize(const Block8x8 &coefficients, const QuantTable &table,
              QuantBlock &out);

/** Reconstruct coefficients from quantized levels. */
void dequantize(const QuantBlock &levels, const QuantTable &table,
                Block8x8 &out);

// By-value convenience wrappers (cold paths and tests).

Block8x8 forwardDct8x8(const Block8x8 &spatial);
Block8x8 inverseDct8x8(const Block8x8 &coefficients);
QuantBlock quantize(const Block8x8 &coefficients, int qp);
Block8x8 dequantize(const QuantBlock &levels, int qp);

/** Zigzag scan order for an 8x8 block (index -> raster position). */
const std::array<int, 64> &zigzagOrder();

} // namespace gssr

#endif // GSSR_CODEC_DCT_HH
