#include "codec/motion.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/mathutil.hh"
#include "common/parallel.hh"
#include "kernels/kernels.hh"

namespace gssr
{

namespace
{

/**
 * SAD between a block in @p cur at (x, y) and @p ref at (x+dx, y+dy).
 * When the displaced reference block lies fully inside the plane the
 * sum goes through the SIMD SAD kernel; only candidates that spill
 * over an edge (and so need clamped addressing) take the scalar loop.
 * Both paths check the early-exit bound after each block row, so they
 * return identical values.
 */
i64
blockSad(const PlaneU8 &ref, const PlaneU8 &cur, int x, int y,
         int block, int dx, int dy, i64 early_exit)
{
    const int w = ref.width();
    const int h = ref.height();
    const int rx = x + dx;
    const int ry = y + dy;
    if (rx >= 0 && ry >= 0 && rx + block <= w && ry + block <= h) {
        const u8 *cur_ptr = cur.data().data() + size_t(y) * w + x;
        const u8 *ref_ptr = ref.data().data() + size_t(ry) * w + rx;
        return kern::sadRect(cur_ptr, w, ref_ptr, w, block, block,
                             early_exit);
    }
    i64 sad = 0;
    for (int by = 0; by < block; ++by) {
        for (int bx = 0; bx < block; ++bx) {
            int cx = x + bx;
            int cy = y + by;
            i32 c = cur.at(cx, cy);
            i32 r = ref.atClamped(cx + dx, cy + dy);
            sad += std::abs(c - r);
        }
        if (sad >= early_exit)
            return sad;
    }
    return sad;
}

} // namespace

MvField
estimateMotion(const PlaneU8 &reference, const PlaneU8 &current,
               int block_size, int search_range)
{
    GSSR_ASSERT(reference.size() == current.size(),
                "motion estimation needs equal plane sizes");
    GSSR_ASSERT(block_size >= 4 && block_size % 2 == 0,
                "bad motion block size");
    GSSR_ASSERT(search_range >= 1, "bad search range");

    MvField field;
    field.block_size = block_size;
    field.blocks_x = (current.width() + block_size - 1) / block_size;
    field.blocks_y = (current.height() + block_size - 1) / block_size;
    field.vectors.resize(size_t(field.blocks_x) * size_t(field.blocks_y));

    // Each block's search is independent and writes only its own
    // vector, so block rows parallelize with bit-exact results.
    parallelFor(0, field.blocks_y, 1, [&](i64 by_begin, i64 by_end) {
    for (int by = int(by_begin); by < int(by_end); ++by) {
        for (int bx = 0; bx < field.blocks_x; ++bx) {
            int x = bx * block_size;
            int y = by * block_size;
            int bw = std::min(block_size, current.width() - x);
            int bh = std::min(block_size, current.height() - y);
            // For edge partial blocks use the clipped square size.
            int block = std::min(bw, bh);
            if (block < 4) {
                field.at(bx, by) = {0, 0};
                continue;
            }

            int best_dx = 0, best_dy = 0;
            i64 best_sad = blockSad(reference, current, x, y, block, 0,
                                    0, INT64_MAX);

            // Three-step search: halve the step until 1.
            int step = 1;
            while (step * 2 <= search_range)
                step *= 2;
            int cx = 0, cy = 0;
            while (step >= 1) {
                for (int sy = -1; sy <= 1; ++sy) {
                    for (int sx = -1; sx <= 1; ++sx) {
                        if (sx == 0 && sy == 0)
                            continue;
                        int dx = cx + sx * step;
                        int dy = cy + sy * step;
                        if (std::abs(dx) > search_range ||
                            std::abs(dy) > search_range) {
                            continue;
                        }
                        i64 sad = blockSad(reference, current, x, y,
                                           block, dx, dy, best_sad);
                        if (sad < best_sad) {
                            best_sad = sad;
                            best_dx = dx;
                            best_dy = dy;
                        }
                    }
                }
                cx = best_dx;
                cy = best_dy;
                step /= 2;
            }
            field.at(bx, by) = {i16(best_dx), i16(best_dy)};
        }
    }
    });
    return field;
}

namespace
{

/** Apply one plane's motion compensation. @p shift halves MVs for chroma. */
void
compensatePlane(const PlaneU8 &ref, PlaneU8 &out, const MvField &mv,
                int block_size, int shift)
{
    parallelFor(0, out.height(), 16, [&](i64 y_begin, i64 y_end) {
        for (int y = int(y_begin); y < int(y_end); ++y) {
            int by = clamp(y / block_size, 0, mv.blocks_y - 1);
            for (int x = 0; x < out.width(); ++x) {
                int bx = clamp(x / block_size, 0, mv.blocks_x - 1);
                const MotionVector &v = mv.at(bx, by);
                out.at(x, y) = ref.atClamped(x + (v.dx >> shift),
                                             y + (v.dy >> shift));
            }
        }
    });
}

} // namespace

Yuv420Image
motionCompensate(const Yuv420Image &reference, const MvField &mv)
{
    Yuv420Image out(reference.width(), reference.height());
    compensatePlane(reference.y, out.y, mv, mv.block_size, 0);
    compensatePlane(reference.u, out.u, mv, mv.block_size / 2, 1);
    compensatePlane(reference.v, out.v, mv, mv.block_size / 2, 1);
    return out;
}

} // namespace gssr
