#include "common/table.hh"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/logging.hh"

namespace gssr
{

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    GSSR_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        fatal("table row has ", cells.size(), " cells, expected ",
              headers_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
TableWriter::num(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

void
TableWriter::renderText(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << "  " << std::left << std::setw(int(widths[c]))
               << row[c];
        }
        os << "\n";
    };

    emit_row(headers_);
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    os << "  " << std::string(total > 2 ? total - 2 : 0, '-') << "\n";
    for (const auto &row : rows_)
        emit_row(row);
}

void
TableWriter::renderCsv(std::ostream &os) const
{
    auto quote = [](const std::string &cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string out = "\"";
        for (char ch : cell) {
            if (ch == '"')
                out += '"';
            out += ch;
        }
        out += '"';
        return out;
    };
    auto emit_row = [&](const std::vector<std::string> &row) {
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                os << ",";
            os << quote(row[c]);
        }
        os << "\n";
    };
    emit_row(headers_);
    for (const auto &row : rows_)
        emit_row(row);
}

} // namespace gssr
