/**
 * @file
 * Small math helpers shared across modules: clamping, interpolation,
 * 3-D vectors and 4x4 matrices for the renderer, and Gaussian weights
 * for the RoI spatial-weighting stage.
 */

#ifndef GSSR_COMMON_MATHUTIL_HH
#define GSSR_COMMON_MATHUTIL_HH

#include <algorithm>
#include <cmath>

#include "common/types.hh"

namespace gssr
{

/** Clamp @p v into [lo, hi]. */
template <typename T>
constexpr T
clamp(T v, T lo, T hi)
{
    return v < lo ? lo : (v > hi ? hi : v);
}

/** Linear interpolation between a (t=0) and b (t=1). */
constexpr f64
lerp(f64 a, f64 b, f64 t)
{
    return a + (b - a) * t;
}

/** Round-and-clamp a floating value into an 8-bit pixel channel. */
inline u8
toPixel(f64 v)
{
    return u8(clamp(i64(std::lround(v)), i64(0), i64(255)));
}

/** Integer ceiling division for non-negative operands. */
constexpr i64
ceilDiv(i64 a, i64 b)
{
    return (a + b - 1) / b;
}

/** Unnormalized isotropic 2-D Gaussian centred at (cx, cy). */
inline f64
gaussian2d(f64 x, f64 y, f64 cx, f64 cy, f64 sigma)
{
    f64 dx = x - cx;
    f64 dy = y - cy;
    return std::exp(-(dx * dx + dy * dy) / (2.0 * sigma * sigma));
}

/** 3-component vector used by the renderer's geometry stages. */
struct Vec3
{
    f64 x = 0.0;
    f64 y = 0.0;
    f64 z = 0.0;

    Vec3 operator+(const Vec3 &o) const { return {x + o.x, y + o.y, z + o.z}; }
    Vec3 operator-(const Vec3 &o) const { return {x - o.x, y - o.y, z - o.z}; }
    Vec3 operator*(f64 s) const { return {x * s, y * s, z * s}; }

    /** Dot product. */
    f64 dot(const Vec3 &o) const { return x * o.x + y * o.y + z * o.z; }

    /** Cross product. */
    Vec3
    cross(const Vec3 &o) const
    {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }

    /** Euclidean length. */
    f64 length() const { return std::sqrt(dot(*this)); }

    /** Unit-length copy (returns self when degenerate). */
    Vec3
    normalized() const
    {
        f64 len = length();
        return len > 1e-12 ? *this * (1.0 / len) : *this;
    }
};

/**
 * Column-major 4x4 matrix; only the operations the rasterizer needs.
 * Element (row, col) is at m[col * 4 + row].
 */
struct Mat4
{
    f64 m[16] = {};

    /** Identity matrix. */
    static Mat4
    identity()
    {
        Mat4 r;
        r.m[0] = r.m[5] = r.m[10] = r.m[15] = 1.0;
        return r;
    }

    /** Translation matrix. */
    static Mat4
    translate(const Vec3 &t)
    {
        Mat4 r = identity();
        r.m[12] = t.x;
        r.m[13] = t.y;
        r.m[14] = t.z;
        return r;
    }

    /** Uniform or per-axis scale matrix. */
    static Mat4
    scale(const Vec3 &s)
    {
        Mat4 r = identity();
        r.m[0] = s.x;
        r.m[5] = s.y;
        r.m[10] = s.z;
        return r;
    }

    /** Rotation about the Y axis by @p radians. */
    static Mat4
    rotateY(f64 radians)
    {
        Mat4 r = identity();
        f64 c = std::cos(radians), s = std::sin(radians);
        r.m[0] = c;
        r.m[2] = -s;
        r.m[8] = s;
        r.m[10] = c;
        return r;
    }

    /** Rotation about the X axis by @p radians. */
    static Mat4
    rotateX(f64 radians)
    {
        Mat4 r = identity();
        f64 c = std::cos(radians), s = std::sin(radians);
        r.m[5] = c;
        r.m[6] = s;
        r.m[9] = -s;
        r.m[10] = c;
        return r;
    }

    Mat4
    operator*(const Mat4 &o) const
    {
        Mat4 r;
        for (int col = 0; col < 4; ++col) {
            for (int row = 0; row < 4; ++row) {
                f64 acc = 0.0;
                for (int k = 0; k < 4; ++k)
                    acc += m[k * 4 + row] * o.m[col * 4 + k];
                r.m[col * 4 + row] = acc;
            }
        }
        return r;
    }

    /** Transform a point (w component produced separately). */
    Vec3
    transformPoint(const Vec3 &p, f64 &w_out) const
    {
        Vec3 r;
        r.x = m[0] * p.x + m[4] * p.y + m[8] * p.z + m[12];
        r.y = m[1] * p.x + m[5] * p.y + m[9] * p.z + m[13];
        r.z = m[2] * p.x + m[6] * p.y + m[10] * p.z + m[14];
        w_out = m[3] * p.x + m[7] * p.y + m[11] * p.z + m[15];
        return r;
    }
};

} // namespace gssr

#endif // GSSR_COMMON_MATHUTIL_HH
