/**
 * @file
 * Streaming statistics helpers used by the benchmark harness and the
 * pipeline accounting: running mean/variance (Welford), min/max, and
 * percentile extraction over collected samples.
 */

#ifndef GSSR_COMMON_STATS_HH
#define GSSR_COMMON_STATS_HH

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace gssr
{

namespace stats
{

/**
 * The one summary-statistics value type shared by every consumer:
 * SampleStats (exact, sample-retaining), the obs::MetricsRegistry
 * histograms (fixed-bucket), and the bench report emitters. Having a
 * single type keeps every exported JSON summary block identical in
 * shape regardless of which accumulator produced it.
 */
struct Summary
{
    i64 count = 0;
    f64 mean = 0.0;
    f64 stddev = 0.0;
    f64 min = 0.0;
    f64 max = 0.0;
    f64 p50 = 0.0;
    f64 p95 = 0.0;
    f64 p99 = 0.0;
};

} // namespace stats

/**
 * Accumulates scalar samples and exposes summary statistics.
 * Samples are retained so percentiles can be computed exactly.
 */
class SampleStats
{
  public:
    /** Add one sample. */
    void
    add(f64 value)
    {
        samples_.push_back(value);
        count_ += 1;
        f64 delta = value - mean_;
        mean_ += delta / f64(count_);
        m2_ += delta * (value - mean_);
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }

    /** Number of samples seen. */
    i64 count() const { return count_; }

    /** Arithmetic mean (0 when empty). */
    f64 mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance (0 when fewer than two samples). */
    f64
    variance() const
    {
        return count_ > 1 ? m2_ / f64(count_) : 0.0;
    }

    /** Population standard deviation. */
    f64 stddev() const { return std::sqrt(variance()); }

    /** Smallest sample (+inf when empty). */
    f64 min() const { return min_; }

    /** Largest sample (-inf when empty). */
    f64 max() const { return max_; }

    /** Sum of all samples. */
    f64 sum() const { return mean_ * f64(count_); }

    /**
     * Exact percentile via nearest-rank on the sorted samples.
     * @param p percentile in [0, 100].
     */
    f64
    percentile(f64 p) const
    {
        GSSR_ASSERT(!samples_.empty(), "percentile of empty stats");
        GSSR_ASSERT(p >= 0.0 && p <= 100.0, "percentile out of range");
        std::vector<f64> sorted = samples_;
        std::sort(sorted.begin(), sorted.end());
        f64 rank = p / 100.0 * f64(sorted.size() - 1);
        auto lo = size_t(std::floor(rank));
        auto hi = size_t(std::ceil(rank));
        f64 frac = rank - f64(lo);
        return lerpSample(sorted[lo], sorted[hi], frac);
    }

    /** Access the raw samples in insertion order. */
    const std::vector<f64> &samples() const { return samples_; }

    /** Exact summary (percentiles via percentile()). */
    stats::Summary
    summary() const
    {
        stats::Summary s;
        s.count = count_;
        if (count_ == 0)
            return s;
        s.mean = mean();
        s.stddev = stddev();
        s.min = min_;
        s.max = max_;
        s.p50 = percentile(50.0);
        s.p95 = percentile(95.0);
        s.p99 = percentile(99.0);
        return s;
    }

  private:
    static f64
    lerpSample(f64 a, f64 b, f64 t)
    {
        return a + (b - a) * t;
    }

    std::vector<f64> samples_;
    i64 count_ = 0;
    f64 mean_ = 0.0;
    f64 m2_ = 0.0;
    f64 min_ = std::numeric_limits<f64>::infinity();
    f64 max_ = -std::numeric_limits<f64>::infinity();
};

namespace stats
{

/** Exact summary of a raw sample vector (one-shot convenience). */
inline Summary
summarize(const std::vector<f64> &samples)
{
    SampleStats acc;
    for (f64 v : samples)
        acc.add(v);
    return acc.summary();
}

} // namespace stats

} // namespace gssr

#endif // GSSR_COMMON_STATS_HH
