/**
 * @file
 * SIMD capability detection and aligned storage.
 *
 * Two pieces the vector kernel layer (src/kernels) builds on:
 *
 *  1. Runtime CPU-feature detection with a forced-override hook.
 *     activeSimdLevel() is what the kernel dispatcher consults; it is
 *     detectedSimdLevel() capped by the GSSR_FORCE_SCALAR environment
 *     variable (any value other than "0") or a forceSimdLevel() call
 *     (tests and bench_micro_kernels use the latter to compare paths
 *     in one process).
 *
 *  2. AlignedAllocator / AlignedVec: every SIMD-visible buffer
 *     (Tensor storage, Plane storage, conv weights) starts on a
 *     kSimdAlignment boundary and is over-allocated to a whole number
 *     of kSimdAlignment bytes, so a full-width vector load at the
 *     tail of a buffer can never straddle the allocation edge. The
 *     kernels additionally never *read* past size() (fixed scalar
 *     tails), so the padding is belt-and-suspenders, not a
 *     correctness requirement — see DESIGN.md §12.
 */

#ifndef GSSR_COMMON_SIMD_HH
#define GSSR_COMMON_SIMD_HH

#include <cstddef>
#include <new>
#include <vector>

#include "common/types.hh"

namespace gssr
{

/** Byte alignment (and size granularity) of SIMD-visible buffers. */
inline constexpr size_t kSimdAlignment = 32;

/** Instruction-set tiers the kernel layer dispatches between. */
enum class SimdLevel
{
    Scalar = 0,
    Avx2 = 1, // AVX2 + FMA
};

/** Short lowercase name ("scalar", "avx2") for logs and reports. */
const char *simdLevelName(SimdLevel level);

/** Best level this host's CPU supports (detected once, cached). */
SimdLevel detectedSimdLevel();

/**
 * Level the kernel dispatcher uses right now: the detected level,
 * unless capped by GSSR_FORCE_SCALAR or a forceSimdLevel() override.
 */
SimdLevel activeSimdLevel();

/**
 * Override the active level (must not exceed detectedSimdLevel()).
 * Takes precedence over GSSR_FORCE_SCALAR. Only switch between
 * parallel regions: the dispatcher re-reads the level lazily and
 * concurrent kernel calls may briefly use the previous table.
 */
void forceSimdLevel(SimdLevel level);

/** Drop a forceSimdLevel() override. */
void clearForcedSimdLevel();

/**
 * Monotonic counter bumped by forceSimdLevel()/clearForcedSimdLevel().
 * The kernel dispatcher uses it to refresh its cached table without
 * re-deriving the level on every call.
 */
u64 simdConfigGeneration();

/**
 * Minimal allocator returning kSimdAlignment-aligned storage whose
 * size is rounded up to a whole number of kSimdAlignment bytes.
 */
template <typename T>
struct AlignedAllocator
{
    using value_type = T;

    AlignedAllocator() = default;
    template <typename U>
    AlignedAllocator(const AlignedAllocator<U> &) noexcept
    {
    }

    T *
    allocate(size_t n)
    {
        size_t bytes = n * sizeof(T);
        bytes = (bytes + kSimdAlignment - 1) & ~(kSimdAlignment - 1);
        if (bytes == 0)
            bytes = kSimdAlignment;
        return static_cast<T *>(::operator new(
            bytes, std::align_val_t(kSimdAlignment)));
    }

    void
    deallocate(T *p, size_t) noexcept
    {
        ::operator delete(p, std::align_val_t(kSimdAlignment));
    }

    template <typename U>
    bool
    operator==(const AlignedAllocator<U> &) const noexcept
    {
        return true;
    }
    template <typename U>
    bool
    operator!=(const AlignedAllocator<U> &) const noexcept
    {
        return false;
    }
};

/** std::vector with 32-byte-aligned, 32-byte-granular storage. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

/** True when @p p sits on a kSimdAlignment boundary. */
inline bool
isSimdAligned(const void *p)
{
    return (reinterpret_cast<uintptr_t>(p) % kSimdAlignment) == 0;
}

} // namespace gssr

#endif // GSSR_COMMON_SIMD_HH
