#include "common/logging.hh"

#include <cstdio>

namespace gssr
{
namespace detail
{

void
emit(const char *tag, const std::string &message)
{
    std::fprintf(stderr, "[%s] %s\n", tag, message.c_str());
    std::fflush(stderr);
}

} // namespace detail
} // namespace gssr
