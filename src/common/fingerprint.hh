/**
 * @file
 * FNV-1a fingerprinting of raw bytes and trivially copyable values.
 * Used wherever the repo pins bit-exactness: the kernel-sweep bench
 * fingerprints, the golden-trace regression suite, and the
 * cross-thread-count determinism tests. The hash is a pure function
 * of the input bytes, so two runs (or two thread counts) that produce
 * bit-identical data produce the same 64-bit fingerprint.
 */

#ifndef GSSR_COMMON_FINGERPRINT_HH
#define GSSR_COMMON_FINGERPRINT_HH

#include <cstring>
#include <type_traits>
#include <vector>

#include "common/types.hh"

namespace gssr
{

/** FNV-1a offset basis (the canonical 64-bit seed). */
inline constexpr u64 kFnvOffsetBasis = 1469598103934665603ull;

/** FNV-1a over @p bytes raw bytes, chained from @p hash. */
inline u64
fnv1a(const void *data, size_t bytes, u64 hash = kFnvOffsetBasis)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= 1099511628211ull;
    }
    return hash;
}

/** FNV-1a over one trivially copyable value. */
template <typename T>
inline u64
fnv1aValue(const T &value, u64 hash = kFnvOffsetBasis)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "fingerprint needs raw bytes");
    return fnv1a(&value, sizeof(T), hash);
}

/** FNV-1a over the elements of a vector of trivially copyable T
 * (any allocator — AlignedVec storage hashes identically). */
template <typename T, typename Alloc>
inline u64
fnv1aVec(const std::vector<T, Alloc> &v, u64 hash = kFnvOffsetBasis)
{
    static_assert(std::is_trivially_copyable_v<T>,
                  "fingerprint needs raw bytes");
    return v.empty() ? hash
                     : fnv1a(v.data(), v.size() * sizeof(T), hash);
}

} // namespace gssr

#endif // GSSR_COMMON_FINGERPRINT_HH
