/**
 * @file
 * Fundamental scalar type aliases and small geometry value types used
 * across every GameStreamSR module.
 */

#ifndef GSSR_COMMON_TYPES_HH
#define GSSR_COMMON_TYPES_HH

#include <cstdint>
#include <ostream>

namespace gssr
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

/**
 * Arithmetic precision of a DNN inference invocation. Shared by the
 * quantized SR path (src/nn/quant.hh), the NPU latency/energy model
 * (src/device/models.hh) and the client pipeline knobs, so it lives
 * with the fundamental types rather than in any one layer.
 *
 * Fp32        full-precision float inference (the default — strictly
 *             opt-out, pinned bit-identical by test_golden_trace)
 * Int16       int8 weights, int16 activations, int32 accumulators
 * Int8        int8 weights and activations, int32 accumulators
 * HybridInt8  NAWQ-SR style schedule: sensitivity-ranked layers run
 *             Int16, the rest Int8 (src/sr/srcnn_quant.hh)
 */
enum class Precision : u8
{
    Fp32 = 0,
    Int16 = 1,
    Int8 = 2,
    HybridInt8 = 3,
};

/** Table/report name of a precision ("fp32", "int16", ...). */
inline const char *
precisionName(Precision p)
{
    switch (p) {
      case Precision::Fp32: return "fp32";
      case Precision::Int16: return "int16";
      case Precision::Int8: return "int8";
      case Precision::HybridInt8: return "hybrid-int8";
    }
    return "?";
}

/**
 * Integer width/height pair. Used for frame, window and display sizes.
 */
struct Size
{
    int width = 0;
    int height = 0;

    /** Total number of pixels covered by this size. */
    i64 area() const { return i64(width) * i64(height); }

    bool operator==(const Size &o) const = default;
};

/**
 * Integer pixel position (top-left origin, x to the right, y down).
 */
struct Point
{
    int x = 0;
    int y = 0;

    bool operator==(const Point &o) const = default;
};

/**
 * Axis-aligned integer rectangle in pixel space. The rectangle spans
 * [x, x+width) x [y, y+height) with a top-left origin.
 */
struct Rect
{
    int x = 0;
    int y = 0;
    int width = 0;
    int height = 0;

    /** Number of pixels inside the rectangle. */
    i64 area() const { return i64(width) * i64(height); }

    /** True if the rectangle covers no pixels. */
    bool empty() const { return width <= 0 || height <= 0; }

    /** Exclusive right edge. */
    int right() const { return x + width; }

    /** Exclusive bottom edge. */
    int bottom() const { return y + height; }

    /** True if pixel (px, py) lies inside the rectangle. */
    bool
    contains(int px, int py) const
    {
        return px >= x && px < right() && py >= y && py < bottom();
    }

    /** True if @p inner lies fully within this rectangle. */
    bool
    contains(const Rect &inner) const
    {
        return inner.x >= x && inner.y >= y &&
               inner.right() <= right() && inner.bottom() <= bottom();
    }

    /** Intersection of two rectangles (empty if disjoint). */
    Rect
    intersect(const Rect &o) const
    {
        int nx = x > o.x ? x : o.x;
        int ny = y > o.y ? y : o.y;
        int nr = right() < o.right() ? right() : o.right();
        int nb = bottom() < o.bottom() ? bottom() : o.bottom();
        if (nr <= nx || nb <= ny)
            return Rect{};
        return Rect{nx, ny, nr - nx, nb - ny};
    }

    bool operator==(const Rect &o) const = default;
};

inline std::ostream &
operator<<(std::ostream &os, const Size &s)
{
    return os << s.width << "x" << s.height;
}

inline std::ostream &
operator<<(std::ostream &os, const Point &p)
{
    return os << "(" << p.x << "," << p.y << ")";
}

inline std::ostream &
operator<<(std::ostream &os, const Rect &r)
{
    return os << "[" << r.x << "," << r.y << " "
              << r.width << "x" << r.height << "]";
}

} // namespace gssr

#endif // GSSR_COMMON_TYPES_HH
