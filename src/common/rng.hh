/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in GameStreamSR (scene generation, network
 * loss, NN weight init, ...) flows through Rng so that a single seed
 * reproduces an entire experiment bit-for-bit. The generator is
 * xoshiro256**, seeded via SplitMix64, matching the reference
 * implementations by Blackman & Vigna.
 */

#ifndef GSSR_COMMON_RNG_HH
#define GSSR_COMMON_RNG_HH

#include <array>
#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"

namespace gssr
{

/** One step of the SplitMix64 generator; used for seeding. */
inline u64
splitMix64(u64 &state)
{
    u64 z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/**
 * Deterministic xoshiro256** generator with convenience distributions.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(u64 seed = 0x6a09e667f3bcc908ULL)
    {
        u64 sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Next raw 64-bit output. */
    u64
    next()
    {
        u64 result = rotl(state_[1] * 5, 7) * 9;
        u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    f64
    uniform()
    {
        return f64(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    f64
    uniform(f64 lo, f64 hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. Requires lo <= hi. */
    int
    uniformInt(int lo, int hi)
    {
        GSSR_ASSERT(lo <= hi, "uniformInt bounds inverted");
        u64 span = u64(i64(hi) - i64(lo)) + 1;
        return int(i64(lo) + i64(next() % span));
    }

    /** Standard normal via Box-Muller (one value per call). */
    f64
    normal()
    {
        if (have_spare_) {
            have_spare_ = false;
            return spare_;
        }
        f64 u1 = 0.0;
        do {
            u1 = uniform();
        } while (u1 <= 1e-300);
        f64 u2 = uniform();
        f64 mag = std::sqrt(-2.0 * std::log(u1));
        spare_ = mag * std::sin(2.0 * M_PI * u2);
        have_spare_ = true;
        return mag * std::cos(2.0 * M_PI * u2);
    }

    /** Normal with explicit mean and standard deviation. */
    f64
    normal(f64 mean, f64 stddev)
    {
        return mean + stddev * normal();
    }

    /** Bernoulli trial with probability @p p of returning true. */
    bool
    bernoulli(f64 p)
    {
        return uniform() < p;
    }

    /** Derive an independent child generator (for parallel streams). */
    Rng
    fork()
    {
        return Rng(next());
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<u64, 4> state_{};
    bool have_spare_ = false;
    f64 spare_ = 0.0;
};

} // namespace gssr

#endif // GSSR_COMMON_RNG_HH
