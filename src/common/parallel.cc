#include "common/parallel.hh"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

namespace gssr
{

namespace
{

/** Cumulative pool statistics (see ParallelPoolStats). */
std::atomic<i64> stat_jobs{0};
std::atomic<i64> stat_chunks{0};
std::atomic<i64> stat_busy_ns{0};
std::atomic<i64> stat_max_chunk_ns{0};
std::atomic<bool> stat_timing{false};

/** Record one executed chunk (relaxed; polled, never read raced). */
inline void
recordChunk(i64 elapsed_ns)
{
    stat_chunks.fetch_add(1, std::memory_order_relaxed);
    if (elapsed_ns <= 0)
        return;
    stat_busy_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
    i64 prev = stat_max_chunk_ns.load(std::memory_order_relaxed);
    while (elapsed_ns > prev &&
           !stat_max_chunk_ns.compare_exchange_weak(
               prev, elapsed_ns, std::memory_order_relaxed)) {
    }
}

/**
 * Set while the current thread executes chunks of a parallel region
 * (pool workers and the submitting thread alike). Nested parallelFor
 * calls observe it and run inline.
 */
thread_local bool tls_in_parallel_region = false;

/** One parallelFor invocation: a bag of chunks claimed dynamically. */
struct Job
{
    i64 chunk_count = 0;
    const std::function<void(i64)> *chunk_body = nullptr;
    std::atomic<i64> next_chunk{0};
    std::atomic<i64> completed{0};
    bool done = false;           // guarded by ThreadPool::mutex_
    i64 error_chunk = -1;        // guarded by ThreadPool::mutex_
    std::exception_ptr error;    // guarded by ThreadPool::mutex_
};

/**
 * Persistent worker pool executing one Job at a time. The submitting
 * thread participates in chunk execution, so a pool of N threads runs
 * N-1 helper workers.
 */
class ThreadPool
{
  public:
    static ThreadPool &
    instance()
    {
        static ThreadPool pool;
        return pool;
    }

    int threadCount() const { return threads_.load(); }

    void
    resize(int threads)
    {
        GSSR_ASSERT(threads >= 1, "thread count must be >= 1");
        GSSR_ASSERT(!tls_in_parallel_region,
                    "cannot resize the pool from a parallel region");
        std::lock_guard<std::mutex> submit_lock(submit_mutex_);
        if (threads == threads_.load())
            return;
        stopWorkers();
        threads_.store(threads);
        startWorkers();
    }

    /** Execute @p chunk_body(c) for every c in [0, chunk_count). */
    void
    run(i64 chunk_count, const std::function<void(i64)> &chunk_body)
    {
        // One job at a time; concurrent submissions from distinct
        // user threads serialize here.
        std::lock_guard<std::mutex> submit_lock(submit_mutex_);
        auto job = std::make_shared<Job>();
        job->chunk_count = chunk_count;
        job->chunk_body = &chunk_body;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_ = job;
            ++generation_;
        }
        cv_work_.notify_all();

        // The caller works too (flagged so nested calls run inline).
        bool saved = tls_in_parallel_region;
        tls_in_parallel_region = true;
        executeChunks(*job);
        tls_in_parallel_region = saved;

        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_done_.wait(lock, [&] { return job->done; });
            job_ = nullptr;
        }
        if (job->error)
            std::rethrow_exception(job->error);
    }

  private:
    ThreadPool()
    {
        int n = int(std::thread::hardware_concurrency());
        if (n < 1)
            n = 1;
        if (const char *env = std::getenv("GSSR_THREADS")) {
            char *end = nullptr;
            long v = std::strtol(env, &end, 10);
            if (env[0] != '\0' && end != nullptr && *end == '\0' &&
                v >= 1 && v <= 4096) {
                n = int(v);
            } else {
                warn("ignoring invalid GSSR_THREADS value \"", env,
                     "\"; using ", n, " threads");
            }
        }
        threads_.store(n);
        startWorkers();
    }

    ~ThreadPool() { stopWorkers(); }

    void
    startWorkers()
    {
        stop_ = false;
        int helpers = threads_.load() - 1;
        workers_.reserve(size_t(helpers));
        for (int i = 0; i < helpers; ++i)
            workers_.emplace_back([this] { workerLoop(); });
    }

    void
    stopWorkers()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_work_.notify_all();
        for (auto &w : workers_)
            w.join();
        workers_.clear();
    }

    void
    workerLoop()
    {
        tls_in_parallel_region = true;
        u64 seen_generation = 0;
        while (true) {
            std::shared_ptr<Job> job;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_work_.wait(lock, [&] {
                    return stop_ || generation_ != seen_generation;
                });
                if (stop_)
                    return;
                seen_generation = generation_;
                job = job_;
            }
            if (job)
                executeChunks(*job);
        }
    }

    void
    executeChunks(Job &job)
    {
        while (true) {
            i64 c = job.next_chunk.fetch_add(1,
                                             std::memory_order_relaxed);
            if (c >= job.chunk_count)
                return;
            try {
                (*job.chunk_body)(c);
            } catch (...) {
                // Keep the exception of the lowest chunk index so the
                // error surfaced is independent of scheduling.
                std::lock_guard<std::mutex> lock(mutex_);
                if (job.error_chunk < 0 || c < job.error_chunk) {
                    job.error_chunk = c;
                    job.error = std::current_exception();
                }
            }
            i64 finished =
                job.completed.fetch_add(1, std::memory_order_acq_rel) +
                1;
            if (finished == job.chunk_count) {
                std::lock_guard<std::mutex> lock(mutex_);
                job.done = true;
                cv_done_.notify_all();
            }
        }
    }

    std::mutex submit_mutex_;
    std::mutex mutex_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    std::vector<std::thread> workers_;
    std::shared_ptr<Job> job_;   // guarded by mutex_
    u64 generation_ = 0;         // guarded by mutex_
    bool stop_ = false;          // guarded by mutex_
    std::atomic<int> threads_{1};
};

} // namespace

int
parallelThreadCount()
{
    return ThreadPool::instance().threadCount();
}

void
setParallelThreadCount(int threads)
{
    ThreadPool::instance().resize(threads);
}

ParallelPoolStats
parallelPoolStats()
{
    ParallelPoolStats s;
    s.jobs = stat_jobs.load(std::memory_order_relaxed);
    s.chunks = stat_chunks.load(std::memory_order_relaxed);
    s.busy_ms =
        f64(stat_busy_ns.load(std::memory_order_relaxed)) / 1e6;
    s.max_chunk_ms =
        f64(stat_max_chunk_ns.load(std::memory_order_relaxed)) / 1e6;
    return s;
}

void
resetParallelPoolStats()
{
    stat_jobs.store(0, std::memory_order_relaxed);
    stat_chunks.store(0, std::memory_order_relaxed);
    stat_busy_ns.store(0, std::memory_order_relaxed);
    stat_max_chunk_ns.store(0, std::memory_order_relaxed);
}

void
setParallelTaskTiming(bool enabled)
{
    stat_timing.store(enabled, std::memory_order_relaxed);
}

void
parallelFor(i64 begin, i64 end, i64 grain,
            const std::function<void(i64, i64)> &body)
{
    const i64 chunks = parallelChunkCount(begin, end, grain);
    if (chunks == 0)
        return;
    stat_jobs.fetch_add(1, std::memory_order_relaxed);
    auto chunk_body = [&](i64 c) {
        i64 b = begin + c * grain;
        i64 e = std::min(end, b + grain);
        if (stat_timing.load(std::memory_order_relaxed)) {
            auto start = std::chrono::steady_clock::now();
            body(b, e);
            auto elapsed = std::chrono::steady_clock::now() - start;
            recordChunk(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    elapsed)
                    .count());
        } else {
            body(b, e);
            recordChunk(0);
        }
    };
    ThreadPool &pool = ThreadPool::instance();
    if (tls_in_parallel_region || chunks == 1 ||
        pool.threadCount() == 1) {
        for (i64 c = 0; c < chunks; ++c)
            chunk_body(c);
        return;
    }
    pool.run(chunks, chunk_body);
}

} // namespace gssr
