#include "common/simd.hh"

#include <atomic>
#include <cstdlib>

#include "common/logging.hh"

namespace gssr
{

namespace
{

/** Forced level, or -1 when no forceSimdLevel() override is active. */
std::atomic<int> g_forced_level{-1};

/** Bumped on every force/clear so dispatch caches can refresh. */
std::atomic<u64> g_generation{1};

SimdLevel
detectHostLevel()
{
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
    // __builtin_cpu_supports also verifies OS support for the ymm
    // state (OSXSAVE), so this is safe on AVX2 hardware running a
    // non-AVX kernel.
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
        return SimdLevel::Avx2;
#endif
    return SimdLevel::Scalar;
}

bool
envForcesScalar()
{
    const char *v = std::getenv("GSSR_FORCE_SCALAR");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

} // namespace

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::Scalar:
        break;
    }
    return "scalar";
}

SimdLevel
detectedSimdLevel()
{
    static const SimdLevel level = detectHostLevel();
    return level;
}

SimdLevel
activeSimdLevel()
{
    int forced = g_forced_level.load(std::memory_order_relaxed);
    if (forced >= 0)
        return SimdLevel(forced);
    static const bool scalar_env = envForcesScalar();
    if (scalar_env)
        return SimdLevel::Scalar;
    return detectedSimdLevel();
}

void
forceSimdLevel(SimdLevel level)
{
    GSSR_ASSERT(level <= detectedSimdLevel(),
                "cannot force a SIMD level the host does not support");
    g_forced_level.store(int(level), std::memory_order_relaxed);
    g_generation.fetch_add(1, std::memory_order_release);
}

void
clearForcedSimdLevel()
{
    g_forced_level.store(-1, std::memory_order_relaxed);
    g_generation.fetch_add(1, std::memory_order_release);
}

u64
simdConfigGeneration()
{
    return g_generation.load(std::memory_order_acquire);
}

} // namespace gssr
