/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * fatal()  — unrecoverable user/configuration error; throws FatalError.
 * panic()  — internal invariant violation (a bug); throws PanicError.
 * warn()   — suspicious but non-fatal condition, printed to stderr.
 * inform() — normal status message, printed to stderr.
 *
 * Exceptions (rather than abort/exit) keep the library embeddable and
 * make error paths testable.
 */

#ifndef GSSR_COMMON_LOGGING_HH
#define GSSR_COMMON_LOGGING_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace gssr
{

/** Error signalling an invalid configuration or argument (user error). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what)
        : std::runtime_error(what)
    {}
};

/** Error signalling a broken internal invariant (library bug). */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what)
        : std::logic_error(what)
    {}
};

namespace detail
{

/** Fold a pack of streamable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

void emit(const char *tag, const std::string &message);

} // namespace detail

/** Report an unrecoverable configuration/usage error. */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError(detail::concat(std::forward<Args>(args)...));
}

/** Report a violated internal invariant. */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError(detail::concat(std::forward<Args>(args)...));
}

/** Print a warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit("warn", detail::concat(std::forward<Args>(args)...));
}

/** Print a status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit("info", detail::concat(std::forward<Args>(args)...));
}

/** Throw a PanicError unless @p condition holds. */
#define GSSR_ASSERT(condition, message)                                   \
    do {                                                                  \
        if (!(condition))                                                 \
            ::gssr::panic("assertion failed: ", #condition, " — ",        \
                          message);                                       \
    } while (0)

} // namespace gssr

#endif // GSSR_COMMON_LOGGING_HH
