/**
 * @file
 * Deterministic data-parallel execution layer.
 *
 * A lazily-initialized global thread pool (sized by the GSSR_THREADS
 * environment variable, default hardware_concurrency, 1 forces fully
 * serial execution) exposes parallelFor / parallelReduce over index
 * ranges. Chunk boundaries depend only on (begin, end, grain) — never
 * on the thread count — and reductions merge per-chunk partials in
 * chunk-index order, so every result is bit-exact regardless of how
 * many threads execute it. Workers claim chunks dynamically; since
 * each chunk writes a disjoint output range (parallelFor) or its own
 * partial slot (parallelReduce), claim order cannot perturb results.
 *
 * Nested calls from inside a parallel region run inline (serially) on
 * the calling worker, so library code may parallelize freely without
 * worrying about composition or pool deadlock.
 */

#ifndef GSSR_COMMON_PARALLEL_HH
#define GSSR_COMMON_PARALLEL_HH

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace gssr
{

/**
 * Number of threads the pool currently uses (>= 1; 1 means serial).
 * The first call initializes the pool from GSSR_THREADS.
 */
int parallelThreadCount();

/**
 * Resize the global pool to exactly @p threads (>= 1; 1 forces serial
 * execution). Must not be called from inside a parallel region.
 * Intended for benchmarks/tests that sweep thread counts; production
 * code configures the pool once via GSSR_THREADS.
 */
void setParallelThreadCount(int threads);

/**
 * Cumulative execution statistics of the parallel layer. Counters
 * are always maintained (two relaxed atomic increments per chunk);
 * per-chunk wall-clock timing is off by default and enabled with
 * setParallelTaskTiming — timing is observability-only and never
 * feeds back into scheduling, so enabling it cannot perturb results.
 * Consumers (obs::Telemetry) poll this snapshot from one thread
 * rather than having workers write into shared registries.
 */
struct ParallelPoolStats
{
    /** parallelFor invocations (including inline/serial ones). */
    i64 jobs = 0;

    /** Chunks executed across all jobs. */
    i64 chunks = 0;

    /** Summed chunk wall time (ms); 0 unless timing is enabled. */
    f64 busy_ms = 0.0;

    /** Longest single chunk (ms); 0 unless timing is enabled. */
    f64 max_chunk_ms = 0.0;
};

/** Snapshot of the cumulative pool statistics. */
ParallelPoolStats parallelPoolStats();

/** Zero the cumulative pool statistics. */
void resetParallelPoolStats();

/** Enable/disable per-chunk wall-clock timing (default off). */
void setParallelTaskTiming(bool enabled);

/** Number of chunks parallelFor splits [begin, end) into at @p grain. */
inline i64
parallelChunkCount(i64 begin, i64 end, i64 grain)
{
    GSSR_ASSERT(grain >= 1, "parallel grain must be >= 1");
    if (end <= begin)
        return 0;
    return (end - begin + grain - 1) / grain;
}

/**
 * Run @p body(chunk_begin, chunk_end) over [begin, end) split into
 * grain-sized chunks, distributed across the pool. The body must write
 * only to the output range addressed by its chunk (no shared mutable
 * state); under that contract results are bit-exact for any thread
 * count. The first exception (by lowest chunk index) thrown by a body
 * is rethrown on the calling thread after all chunks finish.
 */
void parallelFor(i64 begin, i64 end, i64 grain,
                 const std::function<void(i64, i64)> &body);

/**
 * Deterministic parallel reduction: @p map(chunk_begin, chunk_end)
 * produces one partial value per chunk, and partials are folded with
 * @p combine(acc, partial) serially in chunk-index order. Because the
 * chunk layout is fixed by (begin, end, grain) and the merge order is
 * fixed by index, floating-point reductions give bit-identical results
 * at every thread count (including 1).
 */
template <typename T, typename MapFn, typename CombineFn>
T
parallelReduce(i64 begin, i64 end, i64 grain, T identity, MapFn &&map,
               CombineFn &&combine)
{
    const i64 chunks = parallelChunkCount(begin, end, grain);
    if (chunks == 0)
        return identity;
    std::vector<T> partials(size_t(chunks), identity);
    parallelFor(0, chunks, 1, [&](i64 cb, i64 ce) {
        for (i64 c = cb; c < ce; ++c) {
            i64 b = begin + c * grain;
            i64 e = std::min(end, b + grain);
            partials[size_t(c)] = map(b, e);
        }
    });
    T acc = std::move(identity);
    for (i64 c = 0; c < chunks; ++c)
        acc = combine(std::move(acc), std::move(partials[size_t(c)]));
    return acc;
}

} // namespace gssr

#endif // GSSR_COMMON_PARALLEL_HH
