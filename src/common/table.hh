/**
 * @file
 * Text table and CSV emission for the benchmark harness. Every bench
 * binary prints the rows/series of one paper table or figure through
 * TableWriter so the output format is uniform and diffable.
 */

#ifndef GSSR_COMMON_TABLE_HH
#define GSSR_COMMON_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

namespace gssr
{

/**
 * Collects rows of string cells and renders them either as an aligned
 * ASCII table (for the console) or as CSV (for plotting scripts).
 */
class TableWriter
{
  public:
    /** Construct with column headers. */
    explicit TableWriter(std::vector<std::string> headers);

    /** Append a fully formed row; must match the header arity. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with @p precision digits after the point. */
    static std::string num(double value, int precision = 2);

    /** Render as an aligned ASCII table. */
    void renderText(std::ostream &os) const;

    /** Render as CSV (RFC-4180-ish, minimal quoting). */
    void renderCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gssr

#endif // GSSR_COMMON_TABLE_HH
