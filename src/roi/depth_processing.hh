/**
 * @file
 * Depth-map pre-processing (paper Sec. IV-B2, Fig. 8): the four
 * steps that turn the raw depth buffer into the processed importance
 * map the RoI search scans —
 *
 *   1. Foreground Extraction — histogram the depth values and find
 *      the valley separating the foreground peak(s) from the
 *      background mass; discard background pixels.
 *   2. Spatial Weighting — add a centre-biased Gaussian weight
 *      matrix (players look at the screen centre).
 *   3. Depth Map Layering — split the weighted map into layers by
 *      equal value ranges.
 *   4. Depth Layer Selection — keep the layer with the maximum
 *      total weight; zero everything else.
 */

#ifndef GSSR_ROI_DEPTH_PROCESSING_HH
#define GSSR_ROI_DEPTH_PROCESSING_HH

#include <vector>

#include "frame/depth_map.hh"

namespace gssr
{

/** Pre-processing knobs (defaults follow the paper; flags are for
 *  the ablation benches). */
struct DepthPreprocessConfig
{
    /** Depth histogram resolution. */
    int histogram_bins = 64;

    /** Gaussian sigma as a fraction of min(frame width, height). */
    f64 gaussian_sigma_frac = 0.28;

    /**
     * Magnitude of the centre-bias added to the nearness map. Must
     * be comparable to the nearness range (~1) so that the layering
     * step can separate centred foreground objects from the
     * near-but-peripheral ground/wall pixels at the frame edges
     * (the paper's challenge ②).
     */
    f64 spatial_weight = 1.0;

    /** Number of depth layers for step 3. */
    int depth_layers = 4;

    /** Ablation: disable step 2 (spatial weighting). */
    bool enable_spatial_weighting = true;

    /** Ablation: disable steps 3-4 (layering/selection). */
    bool enable_layering = true;

    /**
     * Minimum fraction of pixels that must land in the foreground
     * for the depth signal to be considered informative (top-down /
     * flat perspectives fail this; Sec. VI).
     */
    f64 min_foreground_fraction = 0.01;
    f64 max_foreground_fraction = 0.95;

    /**
     * Minimum normalized-depth separation between the mean
     * foreground and mean background depth for the split to count as
     * informative (top-down views have near-uniform depth; Sec. VI).
     */
    f64 min_depth_separation = 0.10;
};

/** Output of the pre-processing phase. */
struct DepthPreprocessResult
{
    /** Processed importance map the RoI search scans (zeros outside
     *  the selected layer). */
    PlaneF32 processed;

    /** Depth threshold separating foreground from background. */
    f32 foreground_threshold = 1.0f;

    /** Fraction of pixels classified foreground. */
    f64 foreground_fraction = 0.0;

    /** Index of the selected depth layer. */
    int selected_layer = 0;

    /** Total weight per layer (layer-selection scores). */
    std::vector<f64> layer_scores;

    /**
     * False when the depth distribution carries no usable
     * foreground/background separation (degenerate perspectives) —
     * the caller should fall back to a centre RoI.
     */
    bool depth_informative = true;
};

/** Run the four pre-processing steps on a depth buffer. */
DepthPreprocessResult preprocessDepthMap(const DepthMap &depth,
                                         const DepthPreprocessConfig
                                             &config);

/**
 * Arithmetic op count of pre-processing a @p size map (drives the
 * server-GPU cost model; the real GPU runs this in compute shaders).
 */
i64 preprocessOpCount(Size size);

} // namespace gssr

#endif // GSSR_ROI_DEPTH_PROCESSING_HH
