/**
 * @file
 * The *direct approach* the paper evaluates and rejects (Sec. III-A):
 * camera-based software eye tracking on the client. Implemented here
 * so the trade-off can be reproduced quantitatively —
 *
 *  - a gaze model generates the player's true fixation point
 *    (centre-biased fixations on near objects with saccades, per the
 *    paper's cited gaze studies [40]),
 *  - a camera tracker observes it with estimation noise and latency,
 *    at a continuous +2.8 W camera/ISP power cost (the paper's
 *    Pixel 7 Pro measurement),
 *  - an RoI can be derived from the (lagged, noisy) estimate and
 *    compared against the depth-guided RoI.
 */

#ifndef GSSR_ROI_GAZE_HH
#define GSSR_ROI_GAZE_HH

#include <vector>

#include "common/rng.hh"
#include "frame/depth_map.hh"

namespace gssr
{

/** Player gaze model parameters. */
struct GazeModelConfig
{
    /** Mean fixation duration (seconds). */
    f64 fixation_duration_s = 0.45;

    /** Centre bias of fixation targets (fraction of frame size). */
    f64 centre_sigma_frac = 0.16;

    /**
     * Probability that a new fixation targets the nearest salient
     * object (the depth-map argmax region) rather than a random
     * centre-biased point — gamers track threats/targets.
     */
    f64 object_tracking_probability = 0.65;

    u64 seed = 2024;
};

/** Camera-based tracker parameters (the rejected alternative). */
struct CameraTrackerConfig
{
    /** Gaze estimation noise, fraction of frame width (software
     *  front-camera tracking is coarse). */
    f64 estimate_noise_frac = 0.05;

    /** Estimation latency in frames (camera + CNN inference). */
    int latency_frames = 3;

    /** Continuous extra power draw (paper: +2.8 W on Pixel 7 Pro). */
    f64 camera_power_w = 2.8;
};

/**
 * Generates the player's true gaze point per frame. Deterministic
 * for a given seed.
 */
class GazeModel
{
  public:
    explicit GazeModel(const GazeModelConfig &config, Size frame);

    /**
     * Advance to the next frame and return the true gaze point.
     * @param depth current frame's depth buffer (used for
     *        object-tracking fixations); may be empty.
     */
    Point nextGaze(const DepthMap &depth, f64 dt_s = 1.0 / 60.0);

  private:
    Point pickFixationTarget(const DepthMap &depth);

    GazeModelConfig config_;
    Size frame_;
    Rng rng_;
    Point current_{0, 0};
    Point target_{0, 0};
    f64 time_to_refixate_s_ = 0.0;
};

/**
 * Camera-based gaze tracker: observes the true gaze with noise and
 * latency and derives an RoI window from the estimate.
 */
class CameraGazeTracker
{
  public:
    CameraGazeTracker(const CameraTrackerConfig &config, Size frame,
                      u64 seed);

    /** Feed the true gaze; returns the tracker's (lagged) estimate. */
    Point observe(Point true_gaze);

    /** RoI window of @p window size centred on the last estimate,
     *  clamped inside the frame. */
    Rect roiFromEstimate(Size window) const;

    /** Tracker energy per frame period (mJ). */
    f64
    energyMjPerFrame(f64 frame_period_ms) const
    {
        return config_.camera_power_w * frame_period_ms;
    }

    const CameraTrackerConfig &config() const { return config_; }

  private:
    CameraTrackerConfig config_;
    Size frame_;
    Rng rng_;
    std::vector<Point> pipeline_; ///< latency FIFO
    Point estimate_{0, 0};
};

} // namespace gssr

#endif // GSSR_ROI_GAZE_HH
