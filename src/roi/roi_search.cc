#include "roi/roi_search.hh"

#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/mathutil.hh"
#include "common/parallel.hh"

namespace gssr
{

namespace
{

/**
 * Summed-area table: sat(x, y) = sum of processed[0..x) x [0..y).
 * Built as a parallel prefix sum in two passes: horizontal prefix
 * per row (rows independent), then vertical accumulation per column
 * (columns independent). Each column/row sums in a fixed order, so
 * the table is bit-exact at any thread count.
 */
std::vector<f64>
buildIntegral(const PlaneF32 &map)
{
    const int w = map.width();
    const int h = map.height();
    std::vector<f64> sat(size_t(w + 1) * size_t(h + 1), 0.0);
    auto at = [&](int x, int y) -> f64 & {
        return sat[size_t(y) * size_t(w + 1) + size_t(x)];
    };
    parallelFor(0, h, 16, [&](i64 y_begin, i64 y_end) {
        for (int y = int(y_begin); y < int(y_end); ++y) {
            f64 row = 0.0;
            for (int x = 0; x < w; ++x) {
                row += f64(map.at(x, y));
                at(x + 1, y + 1) = row;
            }
        }
    });
    parallelFor(1, w + 1, 64, [&](i64 x_begin, i64 x_end) {
        for (int y = 1; y < h; ++y) {
            for (int x = int(x_begin); x < int(x_end); ++x)
                at(x, y + 1) += at(x, y);
        }
    });
    return sat;
}

/** O(1) window sum from the summed-area table. */
f64
windowSum(const std::vector<f64> &sat, int stride_w, int x, int y,
          int w, int h)
{
    auto at = [&](int xx, int yy) {
        return sat[size_t(yy) * size_t(stride_w) + size_t(xx)];
    };
    return at(x + w, y + h) - at(x, y + h) - at(x + w, y) + at(x, y);
}

/** Squared distance from the window centre to the frame centre. */
f64
centerDistanceSq(int x, int y, int w, int h, int map_w, int map_h)
{
    f64 cx = x + w * 0.5;
    f64 cy = y + h * 0.5;
    f64 fx = map_w * 0.5;
    f64 fy = map_h * 0.5;
    return (cx - fx) * (cx - fx) + (cy - fy) * (cy - fy);
}

/** Best-so-far tracker with the paper's centre-bias tie-break. */
struct Best
{
    f64 score = -1.0;
    f64 center_dist_sq = 0.0;
    int x = 0;
    int y = 0;

    void
    consider(f64 s, f64 dist_sq, int px, int py)
    {
        constexpr f64 eps = 1e-12;
        if (s > score + eps ||
            (std::abs(s - score) <= eps && dist_sq < center_dist_sq)) {
            score = s;
            center_dist_sq = dist_sq;
            x = px;
            y = py;
        }
    }
};

} // namespace

RoiSearchResult
searchRoi(const PlaneF32 &processed, const RoiSearchConfig &config)
{
    const int map_w = processed.width();
    const int map_h = processed.height();
    const int w = config.window_width;
    const int h = config.window_height;
    GSSR_ASSERT(w >= 1 && h >= 1, "RoI window not configured");
    GSSR_ASSERT(w <= map_w && h <= map_h,
                "RoI window larger than the depth map");

    int coarse_stride = config.coarse_stride > 0
                            ? config.coarse_stride
                            : std::max(w, h) / 2;
    coarse_stride = std::max(coarse_stride, 1);
    int fine_stride = std::max(config.fine_stride, 1);
    int boundary = config.fine_boundary > 0 ? config.fine_boundary
                                            : coarse_stride;

    std::vector<f64> sat = buildIntegral(processed);
    const int sat_w = map_w + 1;

    RoiSearchResult result;
    Best best;

    // Inclusive axis positions: start, start+stride, ... with the
    // last position always evaluated so the scan covers the full
    // range even when the stride does not divide it.
    auto axisPositions = [](int p0, int p1, int stride) {
        std::vector<int> positions;
        for (int p = p0;; p += stride) {
            if (p > p1)
                p = p1;
            positions.push_back(p);
            if (p == p1)
                break;
        }
        return positions;
    };

    // Window rows are scanned by parallel chunks (fixed row-grain
    // layout) whose per-chunk winners merge in index order — the same
    // tie-break sequence as the serial raster scan.
    auto scan = [&](int x0, int y0, int x1, int y1, int stride) {
        x0 = clamp(x0, 0, map_w - w);
        y0 = clamp(y0, 0, map_h - h);
        x1 = clamp(x1, 0, map_w - w);
        y1 = clamp(y1, 0, map_h - h);
        std::vector<int> ys = axisPositions(y0, y1, stride);
        std::vector<int> xs = axisPositions(x0, x1, stride);
        Best scan_best = parallelReduce(
            0, i64(ys.size()), 4, Best{},
            [&](i64 begin, i64 end) {
                Best part;
                for (i64 yi = begin; yi < end; ++yi) {
                    int y = ys[size_t(yi)];
                    for (int x : xs) {
                        f64 s = windowSum(sat, sat_w, x, y, w, h);
                        part.consider(s,
                                      centerDistanceSq(x, y, w, h,
                                                       map_w, map_h),
                                      x, y);
                    }
                }
                return part;
            },
            [](Best acc, const Best &part) {
                if (part.score >= 0.0) {
                    acc.consider(part.score, part.center_dist_sq,
                                 part.x, part.y);
                }
                return acc;
            });
        if (scan_best.score >= 0.0) {
            best.consider(scan_best.score, scan_best.center_dist_sq,
                          scan_best.x, scan_best.y);
        }
        result.positions_evaluated += i64(ys.size()) * i64(xs.size());
    };

    if (config.mode == RoiSearchMode::Exhaustive) {
        scan(0, 0, map_w - w, map_h - h, 1);
    } else {
        // Coarse phase (Algorithm 1 lines 1-4).
        scan(0, 0, map_w - w, map_h - h, coarse_stride);
        if (config.mode == RoiSearchMode::TwoPhase) {
            // Fine phase around the coarse winner (lines 5-8).
            int cx = best.x;
            int cy = best.y;
            scan(cx - boundary, cy - boundary, cx + boundary,
                 cy + boundary, fine_stride);
        }
    }

    result.roi = {best.x, best.y, w, h};
    result.score = best.score;
    return result;
}

i64
roiSearchOpCount(Size map, const RoiSearchConfig &config)
{
    const int w = config.window_width;
    const int h = config.window_height;
    int coarse_stride = config.coarse_stride > 0
                            ? config.coarse_stride
                            : std::max(w, h) / 2;
    coarse_stride = std::max(coarse_stride, 1);
    int fine_stride = std::max(config.fine_stride, 1);
    int boundary = config.fine_boundary > 0 ? config.fine_boundary
                                            : coarse_stride;

    auto positions = [&](i64 range_x, i64 range_y, int stride) {
        return (range_x / stride + 1) * (range_y / stride + 1);
    };

    i64 prefix_ops = map.area() * 2; // build the parallel prefix sums
    i64 coarse_pos =
        positions(map.width - w, map.height - h, coarse_stride);
    i64 fine_pos = config.mode == RoiSearchMode::TwoPhase
                       ? positions(2 * boundary, 2 * boundary,
                                   fine_stride)
                       : 0;
    if (config.mode == RoiSearchMode::Exhaustive)
        coarse_pos = positions(map.width - w, map.height - h, 1);
    // 4 fetches + compare per window position.
    return prefix_ops + (coarse_pos + fine_pos) * 5;
}

} // namespace gssr
