#include "roi/gaze.hh"

#include <cmath>

#include "common/mathutil.hh"

namespace gssr
{

GazeModel::GazeModel(const GazeModelConfig &config, Size frame)
    : config_(config), frame_(frame), rng_(config.seed)
{
    GSSR_ASSERT(frame_.width > 0 && frame_.height > 0,
                "gaze model needs a frame size");
    current_ = {frame_.width / 2, frame_.height / 2};
    target_ = current_;
}

Point
GazeModel::pickFixationTarget(const DepthMap &depth)
{
    if (!depth.empty() &&
        rng_.bernoulli(config_.object_tracking_probability)) {
        // Fixate near the most salient (nearest, centre-weighted)
        // region: coarse 16x16 grid argmax of mean nearness x
        // centre weight.
        const int grid = 16;
        f64 best_score = -1.0;
        Point best{frame_.width / 2, frame_.height / 2};
        f64 sigma = 0.35 * std::min(depth.width(), depth.height());
        for (int gy = 0; gy < grid; ++gy) {
            for (int gx = 0; gx < grid; ++gx) {
                int x = (2 * gx + 1) * depth.width() / (2 * grid);
                int y = (2 * gy + 1) * depth.height() / (2 * grid);
                f64 score =
                    f64(depth.nearness(x, y)) *
                    gaussian2d(x, y, depth.width() * 0.5,
                               depth.height() * 0.5, sigma);
                if (score > best_score) {
                    best_score = score;
                    best = {x * frame_.width / depth.width(),
                            y * frame_.height / depth.height()};
                }
            }
        }
        return best;
    }
    // Centre-biased random fixation.
    f64 sx = config_.centre_sigma_frac * frame_.width;
    f64 sy = config_.centre_sigma_frac * frame_.height;
    int x = int(std::lround(rng_.normal(frame_.width * 0.5, sx)));
    int y = int(std::lround(rng_.normal(frame_.height * 0.5, sy)));
    return {clamp(x, 0, frame_.width - 1),
            clamp(y, 0, frame_.height - 1)};
}

Point
GazeModel::nextGaze(const DepthMap &depth, f64 dt_s)
{
    time_to_refixate_s_ -= dt_s;
    if (time_to_refixate_s_ <= 0.0) {
        target_ = pickFixationTarget(depth);
        time_to_refixate_s_ =
            std::max(0.1, rng_.normal(config_.fixation_duration_s,
                                      config_.fixation_duration_s *
                                          0.3));
    }
    // Saccade: exponential approach towards the target (fast).
    f64 alpha = 0.55;
    current_.x = int(std::lround(
        lerp(f64(current_.x), f64(target_.x), alpha)));
    current_.y = int(std::lround(
        lerp(f64(current_.y), f64(target_.y), alpha)));
    return current_;
}

CameraGazeTracker::CameraGazeTracker(const CameraTrackerConfig &config,
                                     Size frame, u64 seed)
    : config_(config), frame_(frame), rng_(seed)
{
    GSSR_ASSERT(config_.latency_frames >= 0, "negative latency");
    estimate_ = {frame_.width / 2, frame_.height / 2};
}

Point
CameraGazeTracker::observe(Point true_gaze)
{
    // Noisy measurement enters the latency pipeline.
    f64 noise = config_.estimate_noise_frac * frame_.width;
    Point measured{
        clamp(int(std::lround(true_gaze.x + rng_.normal(0.0, noise))),
              0, frame_.width - 1),
        clamp(int(std::lround(true_gaze.y + rng_.normal(0.0, noise))),
              0, frame_.height - 1)};
    pipeline_.push_back(measured);
    if (int(pipeline_.size()) > config_.latency_frames) {
        estimate_ = pipeline_.front();
        pipeline_.erase(pipeline_.begin());
    }
    return estimate_;
}

Rect
CameraGazeTracker::roiFromEstimate(Size window) const
{
    int x = clamp(estimate_.x - window.width / 2, 0,
                  frame_.width - window.width);
    int y = clamp(estimate_.y - window.height / 2, 0,
                  frame_.height - window.height);
    return {x, y, window.width, window.height};
}

} // namespace gssr
