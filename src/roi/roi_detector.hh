/**
 * @file
 * RoiDetector: the complete server-side RoI detection phase of
 * GameStreamSR (paper Fig. 6 Phase-1) — depth-map pre-processing
 * followed by Algorithm 1 search, with the server-GPU cost model and
 * the centre-fallback for depth-degenerate perspectives (Sec. VI).
 */

#ifndef GSSR_ROI_ROI_DETECTOR_HH
#define GSSR_ROI_ROI_DETECTOR_HH

#include "device/profiles.hh"
#include "roi/depth_processing.hh"
#include "roi/roi_search.hh"

namespace gssr
{

/** Complete RoI detection output for one frame. */
struct RoiDetection
{
    /** RoI window on the low-resolution frame. */
    Rect roi;

    /** Window score (sum of processed importance values). */
    f64 score = 0.0;

    /** Detection time charged to the server GPU (ms). */
    f64 server_gpu_ms = 0.0;

    /** Total arithmetic ops of pre-processing + search. */
    i64 ops = 0;

    /** False when the depth buffer was non-informative and the
     *  detector fell back to the frame-centre window. */
    bool depth_guided = true;

    /** Pre-processing diagnostics. */
    DepthPreprocessResult preprocess;
};

/** Server-side depth-guided RoI detector. */
class RoiDetector
{
  public:
    /**
     * @param preprocess_config depth pre-processing knobs.
     * @param search_config Algorithm 1 knobs (the window size fields
     *        are overridden per call).
     */
    RoiDetector(const DepthPreprocessConfig &preprocess_config,
                const RoiSearchConfig &search_config,
                const ServerProfile &server);

    /** Detector with all-default configuration. */
    explicit RoiDetector(const ServerProfile &server);

    /**
     * Detect the RoI of @p window size on @p depth.
     * Falls back to a centred window when the depth distribution is
     * degenerate (top-down / flat perspectives).
     */
    RoiDetection detect(const DepthMap &depth, Size window) const;

    const DepthPreprocessConfig &preprocessConfig() const
    {
        return preprocess_config_;
    }

    const RoiSearchConfig &searchConfig() const
    {
        return search_config_;
    }

  private:
    DepthPreprocessConfig preprocess_config_;
    RoiSearchConfig search_config_;
    ServerProfile server_;
};

} // namespace gssr

#endif // GSSR_ROI_ROI_DETECTOR_HH
