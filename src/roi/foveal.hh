/**
 * @file
 * RoI window sizing (paper Sec. IV-B1):
 *
 *  - the *minimum* desired RoI size comes from human visual
 *    physiology: the foveal visual angle (5-6 degrees) at the typical
 *    mobile viewing distance (~30 cm) spans ~1.25 inches on the
 *    panel, which the device's pixel density converts to pixels, and
 *    the SR scale factor maps onto the low-resolution frame;
 *  - the *maximum* RoI size is the largest square the client NPU can
 *    super-resolve within the real-time deadline (16.66 ms),
 *    determined by benchmarking the SR model against the NPU model.
 */

#ifndef GSSR_ROI_FOVEAL_HH
#define GSSR_ROI_FOVEAL_HH

#include "device/models.hh"
#include "sr/upscaler.hh"

namespace gssr
{

/** Human-visual-system constants (paper Sec. IV-B1). */
struct FovealParams
{
    /** Foveal visual angle in degrees (humans: 5-6). */
    f64 visual_angle_deg = 6.0;

    /** Viewing distance from eye to panel in centimetres. */
    f64 viewing_distance_cm = 30.0;
};

/** 60-FPS real-time deadline in milliseconds. */
constexpr f64 kRealTimeDeadlineMs = 1000.0 / 60.0;

/**
 * Foveal diameter on the panel in inches:
 * 2 * d * tan(angle / 2). For the defaults: ~1.24 in.
 */
f64 fovealDiameterInches(const FovealParams &params);

/**
 * Minimum desired RoI edge length in *low-resolution frame* pixels:
 * (pixel density x foveal diameter) / scale factor.
 * For a 274-PPI Galaxy Tab S8 at x2: ~172 px (paper's example).
 */
int minRoiSizePixels(const FovealParams &params, f64 display_ppi,
                     int scale_factor);

/**
 * Maximum RoI edge length (pixels, LR frame) the client can
 * super-resolve within @p deadline_ms on its NPU: the largest n such
 * that the NPU latency of @p upscaler on an n x n input meets the
 * deadline. This is the step-1 capability probe of Fig. 6.
 */
int maxRoiSizePixels(const NpuModel &npu, const Upscaler &upscaler,
                     int scale_factor,
                     f64 deadline_ms = kRealTimeDeadlineMs);

/**
 * The RoI window the client requests: the device capability bound,
 * clamped to at least the foveal minimum (when the device can afford
 * it) and to the LR frame size.
 */
Size chooseRoiWindow(const FovealParams &params, f64 display_ppi,
                     const NpuModel &npu, const Upscaler &upscaler,
                     int scale_factor, Size lr_frame);

} // namespace gssr

#endif // GSSR_ROI_FOVEAL_HH
