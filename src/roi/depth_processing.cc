#include "roi/depth_processing.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"
#include "common/parallel.hh"

namespace gssr
{

namespace
{

/** Samples per parallel chunk of the per-pixel depth passes. */
constexpr i64 kDepthGrain = 1 << 14;

/**
 * Depth histogram over [0, 1]. Chunks accumulate private histograms
 * merged in index order (integer adds, so the merge order only
 * matters for uniformity with the other reductions).
 */
std::vector<i64>
buildHistogram(const DepthMap &depth, int bins)
{
    const auto &data = depth.plane().data();
    return parallelReduce(
        0, i64(data.size()), kDepthGrain,
        std::vector<i64>(size_t(bins), 0),
        [&](i64 begin, i64 end) {
            std::vector<i64> part(size_t(bins), 0);
            for (i64 i = begin; i < end; ++i) {
                f32 d = data[size_t(i)];
                int bin = clamp(int(f64(d) * bins), 0, bins - 1);
                part[size_t(bin)] += 1;
            }
            return part;
        },
        [](std::vector<i64> acc, std::vector<i64> part) {
            for (size_t i = 0; i < acc.size(); ++i)
                acc[i] += part[i];
            return acc;
        });
}

/**
 * Find the paper's "noticeable gap (valley)" between the foreground
 * and background depth distributions: the longest run of near-empty
 * bins with significant mass on both sides. Returns the depth
 * threshold, or a negative value when no valley exists.
 */
f64
findValleyThreshold(const std::vector<i64> &hist, i64 total)
{
    const int bins = int(hist.size());
    const i64 empty_limit = std::max<i64>(1, total / 1000);
    const i64 side_mass_min = total / 20; // >= 5 % on each side

    // Prefix sums for O(1) side-mass queries.
    std::vector<i64> prefix(size_t(bins) + 1, 0);
    for (int i = 0; i < bins; ++i)
        prefix[size_t(i) + 1] = prefix[size_t(i)] + hist[size_t(i)];

    int best_start = -1, best_len = 0;
    int run_start = -1;
    for (int i = 0; i <= bins; ++i) {
        bool empty = i < bins && hist[size_t(i)] <= empty_limit;
        if (empty) {
            if (run_start < 0)
                run_start = i;
            continue;
        }
        if (run_start >= 0) {
            int run_len = i - run_start;
            i64 mass_before = prefix[size_t(run_start)];
            i64 mass_after = total - prefix[size_t(i)];
            if (mass_before >= side_mass_min &&
                mass_after >= side_mass_min && run_len > best_len) {
                best_len = run_len;
                best_start = run_start;
            }
            run_start = -1;
        }
    }
    if (best_start < 0)
        return -1.0;
    return (f64(best_start) + f64(best_len) * 0.5) / f64(bins);
}

/** Otsu's threshold on the depth histogram (fallback). */
f64
otsuThreshold(const std::vector<i64> &hist, i64 total, f64 &variance)
{
    const int bins = int(hist.size());
    f64 sum_all = 0.0;
    for (int i = 0; i < bins; ++i)
        sum_all += f64(i) * f64(hist[size_t(i)]);

    f64 best_var = 0.0;
    int best_bin = bins / 2;
    f64 sum_b = 0.0;
    i64 count_b = 0;
    for (int t = 0; t < bins; ++t) {
        count_b += hist[size_t(t)];
        if (count_b == 0)
            continue;
        i64 count_f = total - count_b;
        if (count_f == 0)
            break;
        sum_b += f64(t) * f64(hist[size_t(t)]);
        f64 mean_b = sum_b / f64(count_b);
        f64 mean_f = (sum_all - sum_b) / f64(count_f);
        f64 var = f64(count_b) * f64(count_f) * (mean_b - mean_f) *
                  (mean_b - mean_f);
        if (var > best_var) {
            best_var = var;
            best_bin = t;
        }
    }
    // Normalize: maximum possible weighted variance is
    // (total/2)^2 * (bins-1)^2.
    f64 norm = (f64(total) * 0.5) * (f64(total) * 0.5) *
               f64(bins - 1) * f64(bins - 1);
    variance = norm > 0.0 ? best_var / norm : 0.0;
    return (f64(best_bin) + 1.0) / f64(bins);
}

} // namespace

DepthPreprocessResult
preprocessDepthMap(const DepthMap &depth,
                   const DepthPreprocessConfig &config)
{
    GSSR_ASSERT(!depth.empty(), "empty depth map");
    GSSR_ASSERT(config.histogram_bins >= 4, "too few histogram bins");
    GSSR_ASSERT(config.depth_layers >= 1, "need at least one layer");

    const int width = depth.width();
    const int height = depth.height();
    const i64 total = depth.plane().sampleCount();

    DepthPreprocessResult result;

    // Step 1: Foreground Extraction via the histogram valley, with
    // Otsu as the fallback when the distribution has no clean gap.
    std::vector<i64> hist =
        buildHistogram(depth, config.histogram_bins);
    f64 threshold = findValleyThreshold(hist, total);
    bool valley_found = threshold >= 0.0;
    f64 otsu_variance = 0.0;
    if (!valley_found)
        threshold = otsuThreshold(hist, total, otsu_variance);
    result.foreground_threshold = f32(threshold);

    struct FgStats
    {
        i64 fg_count = 0;
        f64 fg_depth_sum = 0.0;
        f64 bg_depth_sum = 0.0;
    };
    const auto &depth_data = depth.plane().data();
    FgStats fg = parallelReduce(
        0, i64(depth_data.size()), kDepthGrain, FgStats{},
        [&](i64 begin, i64 end) {
            FgStats part;
            for (i64 i = begin; i < end; ++i) {
                f32 d = depth_data[size_t(i)];
                if (d < threshold) {
                    part.fg_count += 1;
                    part.fg_depth_sum += d;
                } else {
                    part.bg_depth_sum += d;
                }
            }
            return part;
        },
        [](FgStats acc, const FgStats &part) {
            acc.fg_count += part.fg_count;
            acc.fg_depth_sum += part.fg_depth_sum;
            acc.bg_depth_sum += part.bg_depth_sum;
            return acc;
        });
    i64 fg_count = fg.fg_count;
    f64 fg_depth_sum = fg.fg_depth_sum, bg_depth_sum = fg.bg_depth_sum;
    result.foreground_fraction = f64(fg_count) / f64(total);

    // Informativeness checks (Sec. VI degenerate perspectives).
    f64 fg_mean = fg_count ? fg_depth_sum / f64(fg_count) : 0.0;
    f64 bg_mean = (total - fg_count)
                      ? bg_depth_sum / f64(total - fg_count)
                      : 1.0;
    bool fraction_ok =
        result.foreground_fraction >= config.min_foreground_fraction &&
        result.foreground_fraction <= config.max_foreground_fraction;
    bool separation_ok =
        (bg_mean - fg_mean) >= config.min_depth_separation;
    result.depth_informative = fraction_ok && separation_ok;

    // Nearness map: foreground pixels weighted by closeness. Row
    // bands write disjoint ranges.
    PlaneF32 weighted(width, height, 0.0f);
    parallelFor(0, height, 32, [&](i64 y_begin, i64 y_end) {
        for (int y = int(y_begin); y < int(y_end); ++y) {
            for (int x = 0; x < width; ++x) {
                f32 d = depth.at(x, y);
                if (d < threshold)
                    weighted.at(x, y) = 1.0f - d;
            }
        }
    });

    // Step 2: Spatial Weighting — centre-biased Gaussian matrix added
    // pixel-wise (on surviving foreground pixels).
    if (config.enable_spatial_weighting) {
        f64 cx = (width - 1) * 0.5;
        f64 cy = (height - 1) * 0.5;
        f64 sigma =
            config.gaussian_sigma_frac * f64(std::min(width, height));
        parallelFor(0, height, 32, [&](i64 y_begin, i64 y_end) {
            for (int y = int(y_begin); y < int(y_end); ++y) {
                for (int x = 0; x < width; ++x) {
                    if (weighted.at(x, y) <= 0.0f)
                        continue;
                    weighted.at(x, y) += f32(
                        config.spatial_weight *
                        gaussian2d(x, y, cx, cy, sigma));
                }
            }
        });
    }

    // Steps 3 + 4: Depth Map Layering and Depth Layer Selection.
    // The selection score applies the centre-bias (insight ①) a
    // second time: without it, a layer full of near-but-peripheral
    // ground/wall pixels can outvote the layer holding the centred
    // foreground objects on open scenes (see
    // bench_ablation_preprocess).
    if (config.enable_layering) {
        f32 max_value = parallelReduce(
            0, i64(weighted.data().size()), kDepthGrain, 0.0f,
            [&](i64 begin, i64 end) {
                f32 m = 0.0f;
                for (i64 i = begin; i < end; ++i)
                    m = std::max(m, weighted.data()[size_t(i)]);
                return m;
            },
            [](f32 x, f32 y) { return std::max(x, y); });
        int layers = config.depth_layers;
        result.layer_scores.assign(size_t(layers), 0.0);
        if (max_value > 0.0f) {
            f64 cx = (width - 1) * 0.5;
            f64 cy = (height - 1) * 0.5;
            f64 sigma = config.gaussian_sigma_frac *
                        f64(std::min(width, height));
            // Per-chunk partial score vectors merged in index order
            // keep the f64 accumulation deterministic.
            result.layer_scores = parallelReduce(
                0, i64(height), 32,
                std::vector<f64>(size_t(layers), 0.0),
                [&](i64 y_begin, i64 y_end) {
                    std::vector<f64> part(size_t(layers), 0.0);
                    for (int y = int(y_begin); y < int(y_end); ++y) {
                        for (int x = 0; x < width; ++x) {
                            f32 v = weighted.at(x, y);
                            if (v <= 0.0f)
                                continue;
                            int layer = clamp(
                                int(f64(v) / max_value * layers), 0,
                                layers - 1);
                            part[size_t(layer)] +=
                                f64(v) *
                                gaussian2d(x, y, cx, cy, sigma);
                        }
                    }
                    return part;
                },
                [](std::vector<f64> acc, std::vector<f64> part) {
                    for (size_t i = 0; i < acc.size(); ++i)
                        acc[i] += part[i];
                    return acc;
                });
            int best = 0;
            for (int l = 1; l < layers; ++l) {
                if (result.layer_scores[size_t(l)] >
                    result.layer_scores[size_t(best)]) {
                    best = l;
                }
            }
            result.selected_layer = best;
            f32 lo = f32(f64(best) / layers * max_value);
            f32 hi = f32(f64(best + 1) / layers * max_value);
            parallelFor(0, i64(weighted.data().size()), kDepthGrain,
                        [&](i64 begin, i64 end) {
                for (i64 i = begin; i < end; ++i) {
                    f32 &v = weighted.data()[size_t(i)];
                    if (v <= lo || v > hi * 1.0000001f)
                        v = 0.0f;
                }
            });
        }
    }

    result.processed = std::move(weighted);
    return result;
}

i64
preprocessOpCount(Size size)
{
    // Histogram (1 op/px) + threshold scan + nearness (2 ops/px) +
    // Gaussian weighting (~6 ops/px) + layering (2 passes).
    return size.area() * 12;
}

} // namespace gssr
