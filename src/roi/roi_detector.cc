#include "roi/roi_detector.hh"

#include "common/logging.hh"

namespace gssr
{

RoiDetector::RoiDetector(const DepthPreprocessConfig &preprocess_config,
                         const RoiSearchConfig &search_config,
                         const ServerProfile &server)
    : preprocess_config_(preprocess_config),
      search_config_(search_config), server_(server)
{
}

RoiDetector::RoiDetector(const ServerProfile &server)
    : RoiDetector(DepthPreprocessConfig{}, RoiSearchConfig{}, server)
{
}

RoiDetection
RoiDetector::detect(const DepthMap &depth, Size window) const
{
    GSSR_ASSERT(window.width >= 1 && window.height >= 1,
                "RoI window not configured");
    GSSR_ASSERT(window.width <= depth.width() &&
                    window.height <= depth.height(),
                "RoI window larger than the frame");

    RoiDetection out;
    out.preprocess = preprocessDepthMap(depth, preprocess_config_);

    i64 ops = preprocessOpCount(depth.size());

    if (!out.preprocess.depth_informative) {
        // Degenerate perspective (Sec. VI): centre fallback.
        out.depth_guided = false;
        out.roi = {(depth.width() - window.width) / 2,
                   (depth.height() - window.height) / 2, window.width,
                   window.height};
        out.ops = ops;
        out.server_gpu_ms = f64(ops) / server_.gpu_ops_per_ms;
        return out;
    }

    RoiSearchConfig search = search_config_;
    search.window_width = window.width;
    search.window_height = window.height;
    RoiSearchResult found = searchRoi(out.preprocess.processed, search);

    ops += roiSearchOpCount(depth.size(), search);
    out.roi = found.roi;
    out.score = found.score;
    out.ops = ops;
    out.server_gpu_ms = f64(ops) / server_.gpu_ops_per_ms;
    return out;
}

} // namespace gssr
