/**
 * @file
 * RoI Area Searching (paper Algorithm 1): a two-phase sliding-window
 * maximization over the processed depth map — a coarse-grained scan
 * with a large stride localizes the candidate, then a fine-grained
 * scan with a small stride inside a boundary around the candidate
 * pins the final RoI. Ties break towards the frame centre.
 */

#ifndef GSSR_ROI_ROI_SEARCH_HH
#define GSSR_ROI_ROI_SEARCH_HH

#include "frame/plane.hh"

namespace gssr
{

/** Search phases available (ablation bench). */
enum class RoiSearchMode
{
    TwoPhase,   ///< Algorithm 1: coarse then fine
    CoarseOnly, ///< coarse phase only
    Exhaustive, ///< stride-1 full scan (quality upper bound)
};

/** Algorithm 1 parameters. */
struct RoiSearchConfig
{
    /** RoI window size (w, h) requested by the client. */
    int window_width = 0;
    int window_height = 0;

    /**
     * Coarse stride S; 0 selects the paper's default
     * S = max(h, w) / 2.
     */
    int coarse_stride = 0;

    /** Fine stride s (must be < S). */
    int fine_stride = 4;

    /**
     * Boundary b around the coarse result for the fine scan; 0
     * selects b = S.
     */
    int fine_boundary = 0;

    RoiSearchMode mode = RoiSearchMode::TwoPhase;
};

/** Search result. */
struct RoiSearchResult
{
    /** Winning RoI window position. */
    Rect roi;

    /** Sum of processed-map values inside the window. */
    f64 score = 0.0;

    /** Window positions evaluated (coarse + fine). */
    i64 positions_evaluated = 0;
};

/**
 * Run Algorithm 1 on the processed depth map. The window must fit
 * inside the map.
 */
RoiSearchResult searchRoi(const PlaneF32 &processed,
                          const RoiSearchConfig &config);

/**
 * Arithmetic op count of the search for the server-GPU cost model
 * (window sums on the GPU are parallel prefix sums; we charge
 * one op per pixel per evaluated window position divided by the
 * reuse factor of the integral-image formulation).
 */
i64 roiSearchOpCount(Size map, const RoiSearchConfig &config);

} // namespace gssr

#endif // GSSR_ROI_ROI_SEARCH_HH
