#include "roi/foveal.hh"

#include <cmath>

#include "common/mathutil.hh"

namespace gssr
{

f64
fovealDiameterInches(const FovealParams &params)
{
    GSSR_ASSERT(params.visual_angle_deg > 0.0 &&
                    params.viewing_distance_cm > 0.0,
                "invalid foveal parameters");
    f64 half_angle_rad =
        params.visual_angle_deg * 0.5 * M_PI / 180.0;
    f64 diameter_cm =
        2.0 * params.viewing_distance_cm * std::tan(half_angle_rad);
    return diameter_cm / 2.54;
}

int
minRoiSizePixels(const FovealParams &params, f64 display_ppi,
                 int scale_factor)
{
    GSSR_ASSERT(display_ppi > 0.0, "invalid pixel density");
    GSSR_ASSERT(scale_factor >= 1, "invalid scale factor");
    f64 display_pixels = display_ppi * fovealDiameterInches(params);
    return int(std::lround(display_pixels / f64(scale_factor)));
}

int
maxRoiSizePixels(const NpuModel &npu, const Upscaler &upscaler,
                 int scale_factor, f64 deadline_ms)
{
    // Largest n with latency(n x n) <= deadline; latency is monotone
    // in n, so binary search.
    auto latency = [&](int n) {
        i64 macs = upscaler.macs({n, n}, scale_factor);
        return npu.latencyMs(macs, i64(n) * n);
    };
    int lo = 8;
    if (latency(lo) > deadline_ms)
        return 0; // device cannot do real-time DNN SR at all
    int hi = 4096;
    while (latency(hi) <= deadline_ms && hi < 1 << 16)
        hi *= 2;
    while (lo + 1 < hi) {
        int mid = (lo + hi) / 2;
        if (latency(mid) <= deadline_ms)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

Size
chooseRoiWindow(const FovealParams &params, f64 display_ppi,
                const NpuModel &npu, const Upscaler &upscaler,
                int scale_factor, Size lr_frame)
{
    int max_edge =
        maxRoiSizePixels(npu, upscaler, scale_factor);
    int min_edge = minRoiSizePixels(params, display_ppi, scale_factor);
    if (max_edge < min_edge) {
        // High-PPI panels (Pixel 7 Pro: 512 PPI -> 317 px foveal
        // minimum) can exceed the ~300 px real-time bound; the
        // device bound wins. Warn once per process.
        static bool warned = false;
        if (!warned) {
            warned = true;
            warn("device cannot super-resolve the full foveal area "
                 "in real time (max ", max_edge, " px < foveal ",
                 min_edge, " px); using the device bound");
        }
    }
    int edge = max_edge;
    edge = clamp(edge, 1, std::min(lr_frame.width, lr_frame.height));
    return {edge, edge};
}

} // namespace gssr
