/**
 * @file
 * The unified session-control vocabulary: one typed `ControlAction`
 * per knob turn and one `KnobState` snapshot of every knob a session
 * exposes. Before this API the knobs were plumbed ad hoc — the AIMD
 * loop called GameStreamServer::setTargetBitrate directly, the
 * degradation ladder multiplied its own bitrate scale on top, the
 * fleet admission ladder mutated SessionConfig resolution/fps ints in
 * place, and SessionConfig::sr_precision was threaded separately.
 * Every one of those writers now speaks this vocabulary; the
 * QoeController (qoe/controller.hh) is the only component that
 * *applies* actions when the unified control plane is enabled, and
 * the legacy loops apply them through the same helpers when it is
 * not.
 */

#ifndef GSSR_QOE_ACTIONS_HH
#define GSSR_QOE_ACTIONS_HH

#include "common/mathutil.hh"
#include "common/types.hh"

namespace gssr::qoe
{

/** What kind of knob turn a ControlAction performs. */
enum class ActionKind
{
    Hold,           ///< explicit no-op (the null action candidates beat)
    ResolutionStep, ///< stream resolution ladder step (x3/4 per step)
    FrameRateStep,  ///< frame-rate ladder step (fps divisor x2)
    BitrateStep,    ///< encoder-target multiplicative step
    PrecisionStep,  ///< SR inference precision / degradation-tier step
    Admit,          ///< fleet admission: accept the session
    Shed,           ///< fleet admission: reject / shed the session
};

/** Action name for tables / telemetry. */
const char *actionKindName(ActionKind kind);

/**
 * One proposed (or applied) knob turn. Advisors propose these with an
 * urgency; the controller scores candidates by predicted
 * delta-QoE-per-cost and applies at most one per tick.
 */
struct ControlAction
{
    ActionKind kind = ActionKind::Hold;

    /** +1 steps toward quality, -1 toward load shedding; 0 for
     *  Hold/Admit/Shed. */
    int direction = 0;

    /**
     * Kind-specific step size: the multiplicative factor for
     * BitrateStep (e.g. 0.85 = cut to 85 %), the number of tier
     * steps for PrecisionStep, unused (1.0) otherwise.
     */
    f64 magnitude = 1.0;

    /** Advisor urgency in [0, 1]; scales the controller's score. */
    f64 urgency = 0.0;

    /** Advisor name for telemetry ("aimd", "ladder", "thermal",
     *  "admission"). */
    const char *advisor = "";
};

/** The Hold action (what the controller applies on a quiet tick). */
inline ControlAction
holdAction()
{
    return ControlAction{};
}

/**
 * Snapshot of every session knob the control plane owns. One
 * KnobState per session is the single source of truth; subsystems
 * read their knob from it instead of carrying private copies
 * (SessionConfig::sr_precision and target_bitrate_mbps seed it, the
 * fleet admission ladder rewrites lr_size / fps_divisor through it,
 * and the degradation tier lives here instead of in scattered ints).
 */
struct KnobState
{
    /** Streamed (low) resolution. */
    Size lr_size{1280, 720};

    /** 1 = full rate (60 FPS), 2 = every other tick (30 FPS). */
    int fps_divisor = 1;

    /** Encoder rate-control target (Mbit/s); 0 = fixed qp. */
    f64 target_mbps = 0.0;

    /** Session-configured SR inference precision. */
    Precision sr_precision = Precision::Fp32;

    /** Degradation tier (pipeline/degrade.hh semantics, 0..4). */
    int tier = 0;
};

/** Bounds the controller clamps knob writes against. */
struct KnobBounds
{
    f64 min_mbps = 2.0;
    f64 max_mbps = 120.0;
    int max_tier = 4;

    /** Resolution ladder floor (matches the fleet admission floor). */
    int min_width = 480;

    /** Frame-rate ladder floor: divisor 2 = 30 FPS. */
    int max_fps_divisor = 2;
};

/**
 * Apply one action to a knob state, clamped to @p bounds. Returns
 * false (state untouched) when the action cannot apply — stepping up
 * from tier 0, stepping a bitrate knob of a fixed-qp session, or an
 * Admit/Shed (admission-time actions have no per-tick knob effect).
 */
bool applyAction(KnobState &knobs, const ControlAction &action,
                 const KnobBounds &bounds);

/**
 * Gate a quality-*reducing* ladder bitrate scale behind the AIMD
 * refractory window — the fix for the double-penalty bug where the
 * degradation ladder and the AIMD loop both cut the encoder target
 * in the same tick. A scale increase (the ladder recovering) always
 * applies; a decrease is deferred while a multiplicative backoff is
 * fresh, so one overload episode produces one cut.
 */
inline f64
gatedLadderScale(f64 applied, f64 want, bool in_refractory)
{
    if (want >= applied || !in_refractory)
        return want;
    return applied;
}

} // namespace gssr::qoe

#endif // GSSR_QOE_ACTIONS_HH
