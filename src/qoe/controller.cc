#include "qoe/controller.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"
#include "obs/telemetry.hh"

namespace gssr::qoe
{

namespace
{

// Degradation-tier landmarks (pipeline/degrade.hh semantics, restated
// here to keep the what-if model free of a pipeline dependency).
constexpr int kWhatIfTierRoiShrink = 2;
constexpr int kWhatIfTierGpuOnly = 3;
constexpr int kWhatIfTierHold = 4;

/** Precision the client runs at a given degradation tier (mirrors
 *  pipeline/degrade.hh degradedPrecision, restated here to keep the
 *  what-if model free of a pipeline dependency). */
Precision
tierPrecision(Precision base, int tier)
{
    if (tier < 1)
        return base;
    if (tier == 1)
        return (base == Precision::Fp32 || base == Precision::Int16)
                   ? Precision::HybridInt8
                   : Precision::Int8;
    return Precision::Int8;
}

/** True when applying @p cand reduces the encoder bitrate target
 *  relative to @p cur (the class of action the shared refractory
 *  window meters). */
bool
reducesBitrate(const KnobState &cur, const KnobState &cand)
{
    return cur.target_mbps > 0.0 &&
           cand.target_mbps < cur.target_mbps;
}

} // namespace

QoeController::QoeController(const QoeControlConfig &config,
                             const KnobState &initial)
    : config_(config), predictor_(config.predictor), knobs_(initial),
      requested_(initial)
{
    GSSR_ASSERT(config_.hysteresis_ticks >= 0,
                "hysteresis window must be >= 0");
    GSSR_ASSERT(config_.min_action_gap_ticks >= 0,
                "action gap must be >= 0");
    GSSR_ASSERT(config_.bitrate_step > 0.0 &&
                    config_.bitrate_step <= 1.0,
                "bitrate step must be in (0, 1]");
    proposals_.reserve(8);
}

void
QoeController::setTelemetry(obs::Telemetry *telemetry, i32 track)
{
    telemetry_ = telemetry;
    telemetry_track_ = track;
    if (!telemetry_)
        return;
    obs::MetricsRegistry &reg = telemetry_->registry();
    tm_score_ = reg.gauge("qoe.score");
    tm_frame_score_ = reg.histogram(
        "qoe.frame_score", obs::HistogramLayout::linear(0.0, 100.0, 100));
    tm_actions_ = reg.counter("qoe.actions");
    tm_holds_ = reg.counter("qoe.holds");
    tm_deferred_cuts_ = reg.counter("qoe.deferred_cuts");
    tm_target_mbps_ = reg.gauge("qoe.target_mbps");
    tm_tier_ = reg.gauge("qoe.tier");
    reg.set(tm_target_mbps_, knobs_.target_mbps);
    reg.set(tm_tier_, f64(knobs_.tier));
}

void
QoeController::restoreKnobs(const KnobState &knobs, f64 now_ms)
{
    // Only the *current* state migrates; requested_ keeps the
    // operating point the session asked for at admission, so the
    // arbiter's knobCost still pulls the session back up once the
    // post-handoff distress clears.
    knobs_ = knobs;
    noteCut(now_ms);
    if (telemetry_) {
        obs::MetricsRegistry &reg = telemetry_->registry();
        reg.set(tm_target_mbps_, knobs_.target_mbps);
        reg.set(tm_tier_, f64(knobs_.tier));
    }
}

void
QoeController::observeFrame(const QoeFeatures &features)
{
    features_ = features;
    score_ = predictor_.score(features);
    observed_ = true;
    if (telemetry_) {
        obs::MetricsRegistry &reg = telemetry_->registry();
        reg.set(tm_score_, score_);
        reg.observe(tm_frame_score_, score_);
    }
}

void
QoeController::propose(const ControlAction &action)
{
    if (action.kind == ActionKind::Hold)
        return;
    proposals_.push_back(action);
}

QoeFeatures
QoeController::predictFeatures(const KnobState &cand, f64 urgency,
                               int direction) const
{
    QoeFeatures f = features_;

    // Bitrate and resolution act through bits-per-pixel: halving the
    // per-pixel budget costs roughly one qp step band (empirically
    // sub-linear, hence the 0.8 exponent).
    const f64 cur_area =
        f64(knobs_.lr_size.width) * f64(knobs_.lr_size.height);
    const f64 cand_area =
        f64(cand.lr_size.width) * f64(cand.lr_size.height);
    if (knobs_.target_mbps > 0.0 && cand.target_mbps > 0.0 &&
        cand_area > 0.0) {
        const f64 bpp_ratio = (knobs_.target_mbps / cur_area) /
                              (cand.target_mbps / cand_area);
        f.qp = clamp(f.qp * std::pow(bpp_ratio, 0.8), 1.0, 51.0);
    }
    f.resolution_scale *=
        f64(cand.lr_size.width) / f64(knobs_.lr_size.width);

    // Frame-rate ladder: divisor 2 halves the delivered rate.
    if (cand.fps_divisor != knobs_.fps_divisor && cand.fps_divisor > 0)
        f.frame_rate = clamp(f.frame_rate * f64(knobs_.fps_divisor) /
                                 f64(cand.fps_divisor),
                             1.0, 60.0);

    // Degradation tier: precision downgrade plus the coarser effects
    // of the upper tiers (RoI shrink softens detail; GPU-only loses
    // the SR pass; hold repeats stale frames).
    f.sr_precision = tierPrecision(cand.sr_precision, cand.tier);
    if (cand.tier >= kWhatIfTierRoiShrink)
        f.resolution_scale *= 0.9;
    if (cand.tier >= kWhatIfTierGpuOnly)
        f.resolution_scale *= 0.75;
    if (cand.tier >= kWhatIfTierHold) {
        f.conceal_rate = clamp(f.conceal_rate + 0.5, 0.0, 1.0);
        f.frame_rate = clamp(f.frame_rate * 0.5, 1.0, 60.0);
    }

    // Shedding under distress relieves the pressure that produced
    // the observed symptoms — concealment on a lossy channel, a
    // frame-rate shortfall on a throttled client; quality up-steps
    // get no such credit. The relief is proportional to the
    // advisor's urgency, so a routine proposal barely moves the
    // prediction while a distress call does.
    if (direction < 0) {
        const f64 relief = config_.congestion_relief *
                           clamp(urgency, 0.0, 1.0);
        f.conceal_rate =
            clamp(f.conceal_rate * (1.0 - relief), 0.0, 1.0);
        f.frame_rate = clamp(
            f.frame_rate + relief * (60.0 - f.frame_rate), 1.0, 60.0);
    }
    return f;
}

f64
QoeController::knobCost(const KnobState &cand) const
{
    // Distance from the requested operating point: being shed costs;
    // holding position is free. Keeps the greedy arbiter from parking
    // in a deep-degraded corner whose *predicted* score looks fine.
    f64 cost = 1.0;
    if (requested_.target_mbps > 0.0 && cand.target_mbps > 0.0 &&
        cand.target_mbps < requested_.target_mbps)
        cost += 0.5 * std::log2(requested_.target_mbps /
                                cand.target_mbps);
    cost += 0.4 * f64(std::max(0, cand.tier - requested_.tier));
    if (cand.lr_size.width < requested_.lr_size.width)
        cost += 0.6 * std::log2(f64(requested_.lr_size.width) /
                                f64(cand.lr_size.width));
    if (cand.fps_divisor > requested_.fps_divisor)
        cost += 0.5;
    return cost;
}

ControlAction
QoeController::decide(f64 now_ms)
{
    tick_ += 1;

    ControlAction best = holdAction();
    KnobState best_knobs = knobs_;
    f64 best_value = config_.min_gain;
    bool deferred_cut = false;

    const bool gap_open =
        tick_ - last_action_tick_ >= config_.min_action_gap_ticks;

    if (observed_ && gap_open) {
        for (const ControlAction &cand : proposals_) {
            // Hysteresis: never reverse the previous action within
            // the window (prevents tier/bitrate ping-pong).
            if (tick_ - last_action_tick_ < config_.hysteresis_ticks &&
                cand.kind == last_action_.kind &&
                cand.direction == -last_action_.direction &&
                last_action_.direction != 0)
                continue;

            KnobState next = knobs_;
            if (!applyAction(next, cand, config_.bounds))
                continue;

            // One bitrate-affecting cut per refractory window — the
            // double-penalty fix, applied uniformly to every advisor.
            if (reducesBitrate(knobs_, next) &&
                inCutRefractory(now_ms)) {
                deferred_cut = true;
                continue;
            }

            const QoeFeatures predicted =
                predictFeatures(next, cand.urgency, cand.direction);
            const f64 gain = predictor_.score(predicted) - score_;
            const f64 value = gain *
                              (1.0 + clamp(cand.urgency, 0.0, 1.0)) /
                              knobCost(next);
            if (value > best_value) {
                best_value = value;
                best = cand;
                best_knobs = next;
            }
        }
    }
    proposals_.clear();

    if (best.kind != ActionKind::Hold) {
        const bool cut = reducesBitrate(knobs_, best_knobs);
        knobs_ = best_knobs;
        last_action_ = best;
        last_action_tick_ = tick_;
        actions_applied_ += 1;
        if (cut)
            noteCut(now_ms);
    }

    if (telemetry_) {
        obs::MetricsRegistry &reg = telemetry_->registry();
        if (best.kind != ActionKind::Hold)
            reg.add(tm_actions_);
        else
            reg.add(tm_holds_);
        if (deferred_cut && best.kind == ActionKind::Hold)
            reg.add(tm_deferred_cuts_);
        reg.set(tm_target_mbps_, knobs_.target_mbps);
        reg.set(tm_tier_, f64(knobs_.tier));
        if (obs::SpanExporter *spans = telemetry_->spans()) {
            if (best.kind != ActionKind::Hold)
                spans->instant(actionKindName(best.kind), "qoe",
                               telemetry_track_, now_ms, score_);
        }
    }
    return best;
}

} // namespace gssr::qoe
