#include "qoe/predictor.hh"

#include <cmath>

#include "codec/codec.hh"
#include "common/logging.hh"
#include "common/mathutil.hh"
#include "metrics/psnr.hh"
#include "metrics/ssim.hh"
#include "render/rasterizer.hh"

namespace gssr::qoe
{

namespace
{

f64
precisionPenaltyDb(const QoePredictorConfig &c, Precision p)
{
    switch (p) {
      case Precision::Fp32:
        return 0.0;
      case Precision::Int16:
        return c.precision_penalty_int16_db;
      case Precision::HybridInt8:
        return c.precision_penalty_hybrid_db;
      case Precision::Int8:
        return c.precision_penalty_int8_db;
    }
    return 0.0;
}

} // namespace

QoePredictor::QoePredictor(const QoePredictorConfig &config)
    : config_(config)
{
    GSSR_ASSERT(config_.qp_slope >= 0.0, "qp slope must be >= 0");
    GSSR_ASSERT(config_.width_db > 0.0, "logistic width must be > 0");
    GSSR_ASSERT(config_.fps_exp >= 0.0, "fps exponent must be >= 0");
    GSSR_ASSERT(config_.conceal_exp >= 1.0,
                "conceal exponent must be >= 1");
    GSSR_ASSERT(config_.calibration.gain > 0.0,
                "calibration gain must be > 0");
}

f64
QoePredictor::spatialDb(const QoeFeatures &f) const
{
    const QoePredictorConfig &c = config_;
    const f64 res_scale = clamp(f.resolution_scale, 1.0 / 16.0, 1.0);
    f64 raw = c.psnr0 - c.qp_slope * std::max(0.0, f.qp) -
              c.res_loss_db * std::log2(1.0 / res_scale) -
              c.residual_loss_db *
                  std::log1p(std::max(0.0, f.residual_rms)) -
              c.mv_loss_db * std::log1p(std::max(0.0, f.mv_mean_px)) -
              precisionPenaltyDb(c, f.sr_precision);
    return c.calibration.gain * raw + c.calibration.offset;
}

f64
QoePredictor::score(const QoeFeatures &f) const
{
    const QoePredictorConfig &c = config_;

    // Spatial core: logistic map of the calibrated PSNR proxy into
    // [0, 1] — monotone in the dB value, hence non-increasing in qp.
    const f64 db = spatialDb(f);
    const f64 spatial =
        1.0 / (1.0 + std::exp(-(db - c.mid_db) / c.width_db));

    // Temporal term (adaptive frame-rate tradeoff): saturating power
    // of the achieved rate, monotone non-decreasing in frame rate.
    const f64 fps = clamp(f.frame_rate, 1.0, 60.0);
    const f64 temporal = std::pow(fps / 60.0, c.fps_exp);

    // Delivery term: concealed/held frames repeat stale content;
    // super-linear penalty, monotone non-increasing in conceal rate.
    const f64 conceal = clamp(f.conceal_rate, 0.0, 1.0);
    const f64 delivery = std::pow(1.0 - conceal, c.conceal_exp);

    return 100.0 * spatial * temporal * delivery;
}

CalibrationResult
calibrateQoePredictor(const QoePredictorConfig &config, Size frame_size,
                      const std::vector<std::pair<GameId, u64>> &scenes)
{
    GSSR_ASSERT(!scenes.empty(), "calibration needs at least one scene");

    // Uncalibrated model: raw dB values, identity calibration.
    QoePredictorConfig raw_config = config;
    raw_config.calibration = QoeCalibration{};
    QoePredictor raw(raw_config);

    static constexpr int kQpSweep[] = {8, 14, 24, 36};
    static constexpr int kFramesPerScene = 3;

    CalibrationResult result;
    for (const auto &[game, seed] : scenes) {
        GameWorld world(game, seed);
        CodecConfig codec;
        codec.gop_size = kFramesPerScene + 1;
        for (int qp : kQpSweep) {
            codec.qp = qp;
            GopEncoder encoder(codec, frame_size);
            FrameDecoder decoder(codec, frame_size);
            for (int i = 0; i < kFramesPerScene; ++i) {
                ColorImage frame =
                    renderScene(world.sceneAt(f64(i) / 60.0),
                                frame_size)
                        .color;
                EncodedFrame encoded = encoder.encode(frame);
                ColorImage decoded =
                    yuv420ToRgb(decoder.decode(encoded));

                CalibrationSample sample;
                sample.qp = qp;
                sample.measured_psnr = psnr(decoded, frame);
                sample.measured_ssim = ssim(decoded, frame);

                QoeFeatures f;
                f.qp = f64(encoded.qp);
                f.mv_mean_px = encoded.mv_mean_px;
                f.residual_rms = encoded.residual_rms;
                f.resolution_scale = f64(frame_size.width) / 1280.0;
                sample.raw_db = raw.spatialDb(f);
                result.samples.push_back(sample);
            }
        }
    }

    // Closed-form least squares psnr ~= gain * raw + offset.
    f64 sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
    const f64 n = f64(result.samples.size());
    for (const CalibrationSample &s : result.samples) {
        sx += s.raw_db;
        sy += s.measured_psnr;
        sxx += s.raw_db * s.raw_db;
        sxy += s.raw_db * s.measured_psnr;
    }
    const f64 denom = n * sxx - sx * sx;
    QoeCalibration fit;
    if (std::abs(denom) > 1e-9) {
        fit.gain = (n * sxy - sx * sy) / denom;
        fit.offset = (sy - fit.gain * sx) / n;
    } else {
        fit.gain = 1.0;
        fit.offset = (sy - sx) / n;
    }
    // A degenerate fit (non-positive slope) would break the
    // monotonicity contract; fall back to a pure offset correction.
    if (fit.gain <= 0.0) {
        fit.gain = 1.0;
        fit.offset = (sy - sx) / n;
    }
    result.calibration = fit;

    for (const CalibrationSample &s : result.samples) {
        const f64 err = std::abs(fit.gain * s.raw_db + fit.offset -
                                 s.measured_psnr);
        result.max_abs_error_db =
            std::max(result.max_abs_error_db, err);
    }
    return result;
}

} // namespace gssr::qoe
