#include "qoe/actions.hh"

#include <algorithm>
#include <cmath>

namespace gssr::qoe
{

const char *
actionKindName(ActionKind kind)
{
    switch (kind) {
      case ActionKind::Hold:
        return "hold";
      case ActionKind::ResolutionStep:
        return "resolution-step";
      case ActionKind::FrameRateStep:
        return "frame-rate-step";
      case ActionKind::BitrateStep:
        return "bitrate-step";
      case ActionKind::PrecisionStep:
        return "precision-step";
      case ActionKind::Admit:
        return "admit";
      case ActionKind::Shed:
        return "shed";
    }
    return "?";
}

bool
applyAction(KnobState &knobs, const ControlAction &action,
            const KnobBounds &bounds)
{
    switch (action.kind) {
      case ActionKind::Hold:
      case ActionKind::Admit:
      case ActionKind::Shed:
        // Admission outcomes and explicit holds have no per-knob
        // effect (the fleet instantiates or drops the whole session).
        return false;

      case ActionKind::ResolutionStep: {
        // The x3/4 admission ladder step, snapped to multiples of 4
        // (codec block alignment). Admission-time only: a session's
        // stream resolution is fixed once the encoder starts.
        if (action.direction >= 0)
            return false; // no in-vocabulary resolution up-step
        Size smaller{(knobs.lr_size.width * 3 / 4) & ~3,
                     (knobs.lr_size.height * 3 / 4) & ~3};
        if (smaller.width < bounds.min_width)
            return false;
        knobs.lr_size = smaller;
        return true;
      }

      case ActionKind::FrameRateStep: {
        if (action.direction < 0) {
            if (knobs.fps_divisor >= bounds.max_fps_divisor)
                return false;
            knobs.fps_divisor *= 2;
        } else {
            if (knobs.fps_divisor <= 1)
                return false;
            knobs.fps_divisor /= 2;
        }
        return true;
      }

      case ActionKind::BitrateStep: {
        if (knobs.target_mbps <= 0.0)
            return false; // fixed-qp session: no bitrate knob
        const f64 factor =
            clamp(action.magnitude, 1.0 / 16.0, 1.0);
        f64 target = action.direction < 0
                         ? knobs.target_mbps * factor
                         : knobs.target_mbps / factor;
        target = clamp(target, bounds.min_mbps, bounds.max_mbps);
        if (target == knobs.target_mbps)
            return false;
        knobs.target_mbps = target;
        return true;
      }

      case ActionKind::PrecisionStep: {
        const int steps =
            std::max(1, int(std::lround(action.magnitude)));
        int tier = knobs.tier - action.direction * steps;
        tier = clamp(tier, 0, bounds.max_tier);
        if (tier == knobs.tier)
            return false;
        knobs.tier = tier;
        return true;
      }
    }
    return false;
}

} // namespace gssr::qoe
