/**
 * @file
 * The unified per-session QoE control plane. Before this controller
 * the reproduction had three independent knob loops — AIMD bitrate
 * backoff (codec/rate_control.hh), the client thermal degradation
 * ladder (pipeline/degrade.hh) and the fleet admission ladder
 * (pipeline/fleet.hh) — each writing its own knob with no awareness
 * of the others, so one overload episode could be punished twice
 * (ladder bitrate scale x AIMD backoff in the same tick) and the
 * knob chosen was whichever loop fired first, not the one that hurt
 * QoE least.
 *
 * The redesign turns those loops into *advisors*: each proposes
 * typed ControlActions (qoe/actions.hh) with an urgency, and the
 * QoeController — the only writer of session knobs — greedily picks
 * the candidate with the best predicted delta-QoE-per-cost under a
 * cheap what-if evaluation of the QoePredictor. Hysteresis (no
 * action reversal inside a window, at most one action per gap) and a
 * shared bitrate-cut refractory window prevent oscillation and the
 * double-penalty bug by construction.
 *
 * When disabled (the default) none of this is instantiated and the
 * legacy loops behave exactly as before — controller-off sessions
 * are bit-identical to the checked-in goldens.
 */

#ifndef GSSR_QOE_CONTROLLER_HH
#define GSSR_QOE_CONTROLLER_HH

#include <vector>

#include "qoe/actions.hh"
#include "qoe/predictor.hh"

namespace gssr
{
namespace obs
{
class Telemetry;
}
} // namespace gssr

namespace gssr::qoe
{

/** Unified control-plane policy. */
struct QoeControlConfig
{
    /** Master switch; disabled = legacy independent loops. */
    bool enabled = false;

    /** Predictor weights + calibration. */
    QoePredictorConfig predictor;

    /** Knob clamps. */
    KnobBounds bounds;

    /** Multiplicative step of one controller BitrateStep. Gentler
     *  than the AIMD advisor's own 0.7 backoff: the controller cuts
     *  more often (subject to the refractory) but less deeply. */
    f64 bitrate_step = 0.85;

    /** No action may reverse the previous one within this many
     *  ticks, and at most one action applies per gap ticks. */
    int hysteresis_ticks = 3;
    int min_action_gap_ticks = 2;

    /** One bitrate-affecting cut per refractory window (ms) — the
     *  window the legacy ladder/AIMD double-cut fix also uses. */
    f64 cut_refractory_ms = 250.0;

    /** Minimum predicted QoE gain (points) needed to leave Hold. */
    f64 min_gain = 0.05;

    /** Expected conceal-rate relief of a shedding action at urgency
     *  1 (what makes "degrade now" beat Hold under distress). */
    f64 congestion_relief = 0.6;

    /** Thermal-advisor margin (deg C): while the device's headroom
     *  to the throttle knee is below this, the session proposes
     *  proactive tier steps with urgency growing as headroom
     *  shrinks — shedding *before* the knee converts into the
     *  deadline-miss cascade the reactive ladder waits for. Kept
     *  tight (and capped to the shallow precision tiers by the
     *  session) because an eager margin parks sessions in deep
     *  tiers they cannot climb out of while the soak lasts.
     *  <= 0 disables the advisor. */
    f64 thermal_margin_c = 1.0;

    /** Clean frames the unified-mode ladder advisor needs before
     *  recommending a tier up-step (eager vs. the legacy 48: the
     *  controller's own hysteresis guards oscillation). */
    int ladder_up_after_clean = 12;
};

/**
 * Greedy delta-QoE-per-cost knob arbiter. Protocol per tick (one
 * displayed frame):
 *
 *   controller.observeFrame(features);   // session-measured signals
 *   controller.propose(action);          // each advisor, 0..n times
 *   ControlAction applied = controller.decide(now_ms);
 *   // read controller.knobs() — the single source of truth
 */
class QoeController
{
  public:
    QoeController(const QoeControlConfig &config,
                  const KnobState &initial);

    /**
     * Attach a telemetry sink (not owned; null detaches). Registers
     * the qoe.* instruments: qoe.score gauge, qoe.frame_score
     * histogram, qoe.actions / qoe.holds / qoe.deferred_cuts
     * counters, qoe.target_mbps and qoe.tier gauges. Write-only.
     */
    void setTelemetry(obs::Telemetry *telemetry, i32 track);

    /** Record the signals measured on the frame just displayed. */
    void observeFrame(const QoeFeatures &features);

    /** Advisor proposal for this tick (buffered until decide). */
    void propose(const ControlAction &action);

    /** Score candidates, apply the winner to the knob state, and
     *  return it (Hold when nothing beats the status quo). */
    ControlAction decide(f64 now_ms);

    /** The session knob state (the only writer is decide()). */
    const KnobState &knobs() const { return knobs_; }

    /** QoE score of the most recently observed frame. */
    f64 lastScore() const { return score_; }

    /** Predictor evaluating this controller's calibrated model. */
    const QoePredictor &predictor() const { return predictor_; }

    /** True while a bitrate cut is fresh (shared refractory). */
    bool
    inCutRefractory(f64 now_ms) const
    {
        return now_ms - last_cut_ms_ < config_.cut_refractory_ms;
    }

    /** Arm the cut refractory for an externally applied cut. */
    void noteCut(f64 now_ms) { last_cut_ms_ = now_ms; }

    /**
     * Live-migration carryover: adopt the knob state a session had
     * on its previous server without touching the *requested*
     * operating point, so the migrated session keeps climbing back
     * toward what it originally asked for instead of treating the
     * degraded handoff state as its new target. Arms the cut
     * refractory at @p now_ms — the handoff itself is a disruption;
     * the controller must not pile a bitrate cut on top of it.
     */
    void restoreKnobs(const KnobState &knobs, f64 now_ms);

    /** Non-Hold actions applied so far. */
    i64 actionsApplied() const { return actions_applied_; }

    const QoeControlConfig &config() const { return config_; }

  private:
    /** What-if features under @p cand knobs (relief at @p urgency
     *  for shedding actions). */
    QoeFeatures predictFeatures(const KnobState &cand, f64 urgency,
                                int direction) const;

    /** Distance of @p cand from the requested operating point. */
    f64 knobCost(const KnobState &cand) const;

    QoeControlConfig config_;
    QoePredictor predictor_;
    KnobState knobs_;
    KnobState requested_;
    QoeFeatures features_;
    f64 score_ = 0.0;
    bool observed_ = false;

    std::vector<ControlAction> proposals_;
    i64 tick_ = 0;
    i64 last_action_tick_ = -1048576;
    ControlAction last_action_;
    f64 last_cut_ms_ = -1e18;
    i64 actions_applied_ = 0;

    obs::Telemetry *telemetry_ = nullptr;
    i32 telemetry_track_ = 0;
    u32 tm_score_ = 0;
    u32 tm_frame_score_ = 0;
    u32 tm_actions_ = 0;
    u32 tm_holds_ = 0;
    u32 tm_deferred_cuts_ = 0;
    u32 tm_target_mbps_ = 0;
    u32 tm_tier_ = 0;
};

} // namespace gssr::qoe

#endif // GSSR_QOE_CONTROLLER_HH
