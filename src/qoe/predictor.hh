/**
 * @file
 * Cheap per-frame QoE prediction in the style of GAMIVAL's
 * no-reference gaming-video quality model: a spatial-quality core
 * computed from signals the pipeline already emits (encoder qp, mean
 * motion-vector magnitude, residual energy, stream resolution, SR
 * precision), corrected by a temporal term for the achieved frame
 * rate (the Liu/March/Mantiuk adaptive frame-rate/resolution
 * tradeoff) and a delivery term for the windowed concealment rate.
 * No pixels are touched at runtime — the model costs a handful of
 * flops per frame, so the QoeController can evaluate what-if
 * candidates every tick.
 *
 * The spatial core is expressed in dB (a PSNR proxy) and calibrated
 * once against measured PSNR on renderer scenes
 * (calibrateQoePredictor); the checked-in default calibration was
 * produced by exactly that procedure, and tests/test_qoe.cc pins the
 * fit bounds so the constants cannot drift from the measurement.
 *
 * Monotonicity contract (property-tested): the score is
 * non-increasing in qp and in conceal rate, and non-decreasing in
 * frame rate.
 */

#ifndef GSSR_QOE_PREDICTOR_HH
#define GSSR_QOE_PREDICTOR_HH

#include <utility>
#include <vector>

#include "common/types.hh"
#include "render/games.hh"

namespace gssr::qoe
{

/** Per-frame feature vector the predictor consumes. */
struct QoeFeatures
{
    /** Encoder quantization parameter of the displayed frame. */
    f64 qp = 14.0;

    /** Mean luma motion-vector magnitude (px; 0 for intra frames). */
    f64 mv_mean_px = 0.0;

    /** RMS of the plane the encoder coded (residual for inter). */
    f64 residual_rms = 0.0;

    /** Fraction of recently displayed frames that were concealed or
     *  held, in [0, 1] (windowed). */
    f64 conceal_rate = 0.0;

    /** Achieved display frame rate (fresh frames / s). */
    f64 frame_rate = 60.0;

    /** Stream width relative to the native 1280-wide operating
     *  point, in (0, 1]. */
    f64 resolution_scale = 1.0;

    /** SR inference precision the client ran at. */
    Precision sr_precision = Precision::Fp32;
};

/**
 * Affine calibration of the spatial core against measured PSNR:
 * psnr_hat = gain * raw_db + offset. Identity when uncalibrated.
 */
struct QoeCalibration
{
    f64 gain = 1.0;
    f64 offset = 0.0;
};

/** Model weights. Defaults are the checked-in calibrated set. */
struct QoePredictorConfig
{
    /** Spatial core: raw_db = psnr0 - qp_slope*qp
     *  - res_loss*log2(1/res_scale) - residual_loss*log1p(rms)
     *  - mv_loss*log1p(mv) - precision penalty. */
    f64 psnr0 = 44.0;
    f64 qp_slope = 0.55;
    f64 res_loss_db = 2.2;
    f64 residual_loss_db = 1.2;
    f64 mv_loss_db = 0.35;
    f64 precision_penalty_hybrid_db = 0.25;
    f64 precision_penalty_int8_db = 0.9;
    f64 precision_penalty_int16_db = 0.05;

    /** Logistic dB -> [0,1] map (midpoint / width in dB). */
    f64 mid_db = 26.0;
    f64 width_db = 6.0;

    /** Temporal term exponent: (fps/60)^fps_exp. */
    f64 fps_exp = 0.45;

    /** Delivery term exponent: (1-conceal_rate)^conceal_exp. */
    f64 conceal_exp = 1.6;

    /** Calibration of the spatial core (see QoeCalibration). */
    QoeCalibration calibration;
};

/**
 * The predictor. Stateless: score() is a pure function of the
 * feature vector, so the controller can evaluate candidate knob
 * settings without touching session state.
 */
class QoePredictor
{
  public:
    QoePredictor() = default;
    explicit QoePredictor(const QoePredictorConfig &config);

    /** Calibrated spatial core in dB (the PSNR proxy). */
    f64 spatialDb(const QoeFeatures &f) const;

    /** QoE score in [0, 100]. */
    f64 score(const QoeFeatures &f) const;

    const QoePredictorConfig &config() const { return config_; }

  private:
    QoePredictorConfig config_;
};

/** One calibration sample: model input vs. pixel measurement. */
struct CalibrationSample
{
    f64 raw_db = 0.0;      ///< uncalibrated spatial core
    f64 measured_psnr = 0.0;
    f64 measured_ssim = 0.0;
    int qp = 0;
};

/** Result of calibrateQoePredictor. */
struct CalibrationResult
{
    QoeCalibration calibration;

    /** Max |calibrated raw_db - measured PSNR| over the samples. */
    f64 max_abs_error_db = 0.0;

    /** The samples themselves (tests pin bounds against these). */
    std::vector<CalibrationSample> samples;
};

/**
 * Calibrate the spatial core against measured PSNR/SSIM: renders a
 * few frames of each given renderer scene, encodes/decodes them at a
 * sweep of qp values with the real codec, measures PSNR and SSIM
 * against the pre-encode frame, and least-squares fits the affine
 * map from the model's raw dB to measured PSNR. Deterministic: same
 * games/seeds/size -> same calibration.
 */
CalibrationResult calibrateQoePredictor(
    const QoePredictorConfig &config, Size frame_size,
    const std::vector<std::pair<GameId, u64>> &scenes);

} // namespace gssr::qoe

#endif // GSSR_QOE_PREDICTOR_HH
