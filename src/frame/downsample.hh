/**
 * @file
 * Integer box-filter downsampling. Rendering at k x resolution and
 * box-downsampling is exactly k x k supersampling anti-aliasing —
 * the streaming server renders its low-resolution frames this way
 * (real game engines render anti-aliased frames; a point-sampled
 * low-resolution rasterization would bake aliasing noise into the
 * stream that no upscaler could undo).
 */

#ifndef GSSR_FRAME_DOWNSAMPLE_HH
#define GSSR_FRAME_DOWNSAMPLE_HH

#include "frame/depth_map.hh"
#include "frame/image.hh"

namespace gssr
{

/** Box-downsample a u8 plane by integer factor @p k (dims divisible). */
PlaneU8 boxDownsample(const PlaneU8 &in, int k);

/** Box-downsample a float plane by integer factor @p k. */
PlaneF32 boxDownsample(const PlaneF32 &in, int k);

/** Box-downsample all three channels. */
ColorImage boxDownsample(const ColorImage &in, int k);

/** Box-downsample a depth buffer (average depth per block). */
DepthMap boxDownsample(const DepthMap &in, int k);

} // namespace gssr

#endif // GSSR_FRAME_DOWNSAMPLE_HH
