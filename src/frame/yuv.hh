/**
 * @file
 * YUV 4:2:0 image representation and BT.601 full-range conversion to
 * and from planar RGB. The video codec operates on Yuv420Image.
 */

#ifndef GSSR_FRAME_YUV_HH
#define GSSR_FRAME_YUV_HH

#include "frame/image.hh"
#include "frame/plane.hh"

namespace gssr
{

/**
 * Planar YUV image with 4:2:0 chroma subsampling. Luma is full
 * resolution; U and V are half resolution in both dimensions.
 * Dimensions must be even.
 */
struct Yuv420Image
{
    PlaneU8 y;
    PlaneU8 u;
    PlaneU8 v;

    Yuv420Image() = default;

    /** Allocate planes for a @p width x @p height image (even dims). */
    Yuv420Image(int width, int height)
        : y(width, height), u(width / 2, height / 2),
          v(width / 2, height / 2)
    {
        GSSR_ASSERT(width % 2 == 0 && height % 2 == 0,
                    "YUV 4:2:0 needs even dimensions");
    }

    int width() const { return y.width(); }
    int height() const { return y.height(); }
    Size size() const { return y.size(); }
    bool empty() const { return y.empty(); }
};

/** Convert planar RGB to YUV 4:2:0 (BT.601 full range). */
Yuv420Image rgbToYuv420(const ColorImage &rgb);

/** Convert YUV 4:2:0 back to planar RGB (BT.601 full range). */
ColorImage yuv420ToRgb(const Yuv420Image &yuv);

} // namespace gssr

#endif // GSSR_FRAME_YUV_HH
