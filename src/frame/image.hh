/**
 * @file
 * ColorImage: a three-plane (R, G, B) 8-bit image, plus grayscale
 * conversion. The renderer produces ColorImages; the codec converts
 * them to YUV 4:2:0; the SR backends upscale them.
 */

#ifndef GSSR_FRAME_IMAGE_HH
#define GSSR_FRAME_IMAGE_HH

#include "frame/plane.hh"

namespace gssr
{

/** Planar 8-bit RGB image. */
class ColorImage
{
  public:
    ColorImage() = default;

    /** Image of @p width x @p height pixels, initialized to black. */
    ColorImage(int width, int height)
        : r_(width, height), g_(width, height), b_(width, height)
    {}

    explicit ColorImage(Size size) : ColorImage(size.width, size.height) {}

    int width() const { return r_.width(); }
    int height() const { return r_.height(); }
    Size size() const { return r_.size(); }
    bool empty() const { return r_.empty(); }

    PlaneU8 &r() { return r_; }
    PlaneU8 &g() { return g_; }
    PlaneU8 &b() { return b_; }
    const PlaneU8 &r() const { return r_; }
    const PlaneU8 &g() const { return g_; }
    const PlaneU8 &b() const { return b_; }

    /** Access one channel by index (0=R, 1=G, 2=B). */
    PlaneU8 &
    channel(int c)
    {
        GSSR_ASSERT(c >= 0 && c < 3, "bad channel index");
        return c == 0 ? r_ : (c == 1 ? g_ : b_);
    }

    const PlaneU8 &
    channel(int c) const
    {
        GSSR_ASSERT(c >= 0 && c < 3, "bad channel index");
        return c == 0 ? r_ : (c == 1 ? g_ : b_);
    }

    /** Set pixel (x, y) to the given RGB triple. */
    void
    setPixel(int x, int y, u8 red, u8 green, u8 blue)
    {
        r_.at(x, y) = red;
        g_.at(x, y) = green;
        b_.at(x, y) = blue;
    }

    /** Crop a rectangle out of all three channels. */
    ColorImage
    crop(const Rect &rect) const
    {
        ColorImage out;
        out.r_ = r_.crop(rect);
        out.g_ = g_.crop(rect);
        out.b_ = b_.crop(rect);
        return out;
    }

    /** Paste @p src at (x, y) in all three channels. */
    void
    blit(const ColorImage &src, int x, int y)
    {
        r_.blit(src.r_, x, y);
        g_.blit(src.g_, x, y);
        b_.blit(src.b_, x, y);
    }

    /** Fill the whole image with one RGB color. */
    void
    fill(u8 red, u8 green, u8 blue)
    {
        r_.fill(red);
        g_.fill(green);
        b_.fill(blue);
    }

    bool
    operator==(const ColorImage &o) const
    {
        return r_ == o.r_ && g_ == o.g_ && b_ == o.b_;
    }

  private:
    PlaneU8 r_;
    PlaneU8 g_;
    PlaneU8 b_;
};

/** BT.601 luma of one RGB triple (full range, rounded). */
inline u8
lumaOf(u8 r, u8 g, u8 b)
{
    f64 y = 0.299 * r + 0.587 * g + 0.114 * b;
    return u8(y + 0.5);
}

/** Convert an RGB image to a single-plane BT.601 luma image. */
inline PlaneU8
toGrayscale(const ColorImage &img)
{
    PlaneU8 out(img.width(), img.height());
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            out.at(x, y) =
                lumaOf(img.r().at(x, y), img.g().at(x, y),
                       img.b().at(x, y));
        }
    }
    return out;
}

} // namespace gssr

#endif // GSSR_FRAME_IMAGE_HH
