#include "frame/yuv.hh"

#include "common/mathutil.hh"

namespace gssr
{

Yuv420Image
rgbToYuv420(const ColorImage &rgb)
{
    GSSR_ASSERT(rgb.width() % 2 == 0 && rgb.height() % 2 == 0,
                "rgbToYuv420 needs even dimensions");
    Yuv420Image out(rgb.width(), rgb.height());

    for (int y = 0; y < rgb.height(); ++y) {
        for (int x = 0; x < rgb.width(); ++x) {
            f64 r = rgb.r().at(x, y);
            f64 g = rgb.g().at(x, y);
            f64 b = rgb.b().at(x, y);
            out.y.at(x, y) = toPixel(0.299 * r + 0.587 * g + 0.114 * b);
        }
    }

    // Chroma: average each 2x2 block, then convert.
    for (int cy = 0; cy < out.u.height(); ++cy) {
        for (int cx = 0; cx < out.u.width(); ++cx) {
            f64 r = 0.0, g = 0.0, b = 0.0;
            for (int dy = 0; dy < 2; ++dy) {
                for (int dx = 0; dx < 2; ++dx) {
                    r += rgb.r().at(cx * 2 + dx, cy * 2 + dy);
                    g += rgb.g().at(cx * 2 + dx, cy * 2 + dy);
                    b += rgb.b().at(cx * 2 + dx, cy * 2 + dy);
                }
            }
            r *= 0.25;
            g *= 0.25;
            b *= 0.25;
            f64 u = -0.168736 * r - 0.331264 * g + 0.5 * b + 128.0;
            f64 v = 0.5 * r - 0.418688 * g - 0.081312 * b + 128.0;
            out.u.at(cx, cy) = toPixel(u);
            out.v.at(cx, cy) = toPixel(v);
        }
    }
    return out;
}

ColorImage
yuv420ToRgb(const Yuv420Image &yuv)
{
    ColorImage out(yuv.width(), yuv.height());
    for (int y = 0; y < yuv.height(); ++y) {
        for (int x = 0; x < yuv.width(); ++x) {
            f64 yy = yuv.y.at(x, y);
            f64 u = f64(yuv.u.at(x / 2, y / 2)) - 128.0;
            f64 v = f64(yuv.v.at(x / 2, y / 2)) - 128.0;
            out.r().at(x, y) = toPixel(yy + 1.402 * v);
            out.g().at(x, y) = toPixel(yy - 0.344136 * u - 0.714136 * v);
            out.b().at(x, y) = toPixel(yy + 1.772 * u);
        }
    }
    return out;
}

} // namespace gssr
