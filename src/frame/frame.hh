/**
 * @file
 * Frame: one rendered game frame flowing through the streaming
 * pipeline — color, the depth buffer captured server-side, and the
 * stream metadata (index, GOP position, frame type).
 */

#ifndef GSSR_FRAME_FRAME_HH
#define GSSR_FRAME_FRAME_HH

#include "frame/depth_map.hh"
#include "frame/image.hh"

namespace gssr
{

/** Position of a frame within its GOP. */
enum class FrameType
{
    /** Reference/key frame: intra coded, anchors the GOP. */
    Reference,
    /** Non-reference frame: predicted from the previous frame. */
    NonReference,
};

/** Human-readable frame type name. */
inline const char *
frameTypeName(FrameType type)
{
    return type == FrameType::Reference ? "reference" : "non-reference";
}

/**
 * One game frame plus the server-side metadata the GameStreamSR
 * pipeline attaches to it.
 */
struct Frame
{
    /** Rendered color data (framebuffer contents). */
    ColorImage color;

    /** Depth buffer captured during rendering (empty client-side). */
    DepthMap depth;

    /** Global frame index within the stream (0-based). */
    i64 index = 0;

    /** Reference or non-reference, set by the GOP structure. */
    FrameType type = FrameType::Reference;

    /** Simulation timestamp of the user input that caused the frame. */
    f64 input_time_ms = 0.0;

    int width() const { return color.width(); }
    int height() const { return color.height(); }
    Size size() const { return color.size(); }
};

} // namespace gssr

#endif // GSSR_FRAME_FRAME_HH
