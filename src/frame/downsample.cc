#include "frame/downsample.hh"

#include "common/logging.hh"
#include "kernels/kernels.hh"

namespace gssr
{

namespace
{

template <typename T, typename Acc>
Plane<T>
downsamplePlane(const Plane<T> &in, int k)
{
    GSSR_ASSERT(k >= 1, "downsample factor must be >= 1");
    GSSR_ASSERT(in.width() % k == 0 && in.height() % k == 0,
                "plane dimensions must be divisible by the factor");
    if (k == 1)
        return in;
    Plane<T> out(in.width() / k, in.height() / k);
    const Acc norm = Acc(k) * Acc(k);
    for (int y = 0; y < out.height(); ++y) {
        for (int x = 0; x < out.width(); ++x) {
            Acc acc = 0;
            for (int dy = 0; dy < k; ++dy)
                for (int dx = 0; dx < k; ++dx)
                    acc += Acc(in.at(x * k + dx, y * k + dy));
            if constexpr (std::is_integral_v<T>) {
                out.at(x, y) = T((acc + norm / 2) / norm);
            } else {
                out.at(x, y) = T(acc / norm);
            }
        }
    }
    return out;
}

} // namespace

PlaneU8
boxDownsample(const PlaneU8 &in, int k)
{
    // 2x is the codec's downlink scale factor and by far the hottest
    // case; it goes through the SIMD kernel (exact integer match of
    // the generic (acc + 2) / 4 rounding below).
    if (k == 2 && in.width() % 2 == 0 && in.height() % 2 == 0 &&
        in.width() > 0 && in.height() > 0) {
        PlaneU8 out(in.width() / 2, in.height() / 2);
        for (int y = 0; y < out.height(); ++y)
            kern::boxDown2U8(in.row(2 * y), in.row(2 * y + 1),
                             out.row(y), out.width());
        return out;
    }
    return downsamplePlane<u8, u32>(in, k);
}

PlaneF32
boxDownsample(const PlaneF32 &in, int k)
{
    return downsamplePlane<f32, f64>(in, k);
}

ColorImage
boxDownsample(const ColorImage &in, int k)
{
    ColorImage out;
    out.r() = boxDownsample(in.r(), k);
    out.g() = boxDownsample(in.g(), k);
    out.b() = boxDownsample(in.b(), k);
    return out;
}

DepthMap
boxDownsample(const DepthMap &in, int k)
{
    return DepthMap(boxDownsample(in.plane(), k));
}

} // namespace gssr
