#include "frame/image_io.hh"

#include <fstream>
#include <vector>

#include "common/logging.hh"

namespace gssr
{

namespace
{

/** Skip whitespace and '#' comments in a PNM header. */
void
skipPnmSpace(std::istream &is)
{
    while (true) {
        int ch = is.peek();
        if (ch == '#') {
            std::string line;
            std::getline(is, line);
        } else if (std::isspace(ch)) {
            is.get();
        } else {
            return;
        }
    }
}

int
readPnmInt(std::istream &is, const std::string &path)
{
    skipPnmSpace(is);
    int value = 0;
    if (!(is >> value))
        fatal("malformed PNM header in ", path);
    return value;
}

std::ifstream
openForRead(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is)
        fatal("cannot open ", path, " for reading");
    return is;
}

std::ofstream
openForWrite(const std::string &path)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        fatal("cannot open ", path, " for writing");
    return os;
}

} // namespace

void
writePpm(const std::string &path, const ColorImage &img)
{
    auto os = openForWrite(path);
    os << "P6\n" << img.width() << " " << img.height() << "\n255\n";
    std::vector<u8> row(size_t(img.width()) * 3);
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            row[size_t(x) * 3 + 0] = img.r().at(x, y);
            row[size_t(x) * 3 + 1] = img.g().at(x, y);
            row[size_t(x) * 3 + 2] = img.b().at(x, y);
        }
        os.write(reinterpret_cast<const char *>(row.data()),
                 std::streamsize(row.size()));
    }
    if (!os)
        fatal("failed writing ", path);
}

void
writePgm(const std::string &path, const PlaneU8 &plane)
{
    auto os = openForWrite(path);
    os << "P5\n" << plane.width() << " " << plane.height() << "\n255\n";
    for (int y = 0; y < plane.height(); ++y) {
        os.write(reinterpret_cast<const char *>(plane.row(y)),
                 plane.width());
    }
    if (!os)
        fatal("failed writing ", path);
}

ColorImage
readPpm(const std::string &path)
{
    auto is = openForRead(path);
    std::string magic(2, '\0');
    is.read(magic.data(), 2);
    if (magic != "P6")
        fatal(path, " is not a binary PPM (P6) file");
    int width = readPnmInt(is, path);
    int height = readPnmInt(is, path);
    int maxval = readPnmInt(is, path);
    if (maxval != 255)
        fatal(path, ": only maxval 255 PPM supported");
    is.get(); // single whitespace after maxval

    ColorImage img(width, height);
    std::vector<u8> row(size_t(width) * 3);
    for (int y = 0; y < height; ++y) {
        is.read(reinterpret_cast<char *>(row.data()),
                std::streamsize(row.size()));
        if (!is)
            fatal(path, ": truncated PPM pixel data");
        for (int x = 0; x < width; ++x) {
            img.r().at(x, y) = row[size_t(x) * 3 + 0];
            img.g().at(x, y) = row[size_t(x) * 3 + 1];
            img.b().at(x, y) = row[size_t(x) * 3 + 2];
        }
    }
    return img;
}

PlaneU8
readPgm(const std::string &path)
{
    auto is = openForRead(path);
    std::string magic(2, '\0');
    is.read(magic.data(), 2);
    if (magic != "P5")
        fatal(path, " is not a binary PGM (P5) file");
    int width = readPnmInt(is, path);
    int height = readPnmInt(is, path);
    int maxval = readPnmInt(is, path);
    if (maxval != 255)
        fatal(path, ": only maxval 255 PGM supported");
    is.get();

    PlaneU8 plane(width, height);
    for (int y = 0; y < height; ++y) {
        is.read(reinterpret_cast<char *>(plane.row(y)), width);
        if (!is)
            fatal(path, ": truncated PGM pixel data");
    }
    return plane;
}

} // namespace gssr
