/**
 * @file
 * DepthMap: the per-pixel depth buffer captured from the rendering
 * pipeline (Sec. III-B of the paper). Depth values are normalized to
 * [0, 1] where 0 is the near plane (closest to the player) and 1 is
 * the far plane / background.
 */

#ifndef GSSR_FRAME_DEPTH_MAP_HH
#define GSSR_FRAME_DEPTH_MAP_HH

#include "frame/plane.hh"

namespace gssr
{

/**
 * Normalized depth buffer. Wraps a PlaneF32 and adds the conventions
 * the RoI pipeline relies on: nearness() converts depth to the
 * paper's "darkness intensity" (near == large), and toGrayscale()
 * renders the Fig. 5-style visualization (near == dark).
 */
class DepthMap
{
  public:
    DepthMap() = default;

    /** Depth map initialized to the far plane (1.0). */
    DepthMap(int width, int height) : depth_(width, height, 1.0f) {}

    explicit DepthMap(Size size) : DepthMap(size.width, size.height) {}

    /** Wrap an existing plane of normalized depth values. */
    explicit DepthMap(PlaneF32 plane) : depth_(std::move(plane)) {}

    int width() const { return depth_.width(); }
    int height() const { return depth_.height(); }
    Size size() const { return depth_.size(); }
    bool empty() const { return depth_.empty(); }

    /** Normalized depth at (x, y); 0 = near plane, 1 = far plane. */
    f32 &at(int x, int y) { return depth_.at(x, y); }
    f32 at(int x, int y) const { return depth_.at(x, y); }

    /** Underlying plane. */
    PlaneF32 &plane() { return depth_; }
    const PlaneF32 &plane() const { return depth_; }

    /**
     * Nearness of the pixel to the camera in [0, 1]; the quantity the
     * RoI detector maximizes (1 - depth).
     */
    f32 nearness(int x, int y) const { return 1.0f - depth_.at(x, y); }

    /**
     * Grayscale rendering of the depth buffer in the paper's Fig. 5
     * convention: near pixels are dark, far pixels are light.
     */
    PlaneU8
    toGrayscale() const
    {
        PlaneU8 out(width(), height());
        for (int y = 0; y < height(); ++y)
            for (int x = 0; x < width(); ++x)
                out.at(x, y) = u8(depth_.at(x, y) * 255.0f + 0.5f);
        return out;
    }

    /** Crop a sub-rectangle of the depth buffer. */
    DepthMap crop(const Rect &r) const { return DepthMap(depth_.crop(r)); }

  private:
    PlaneF32 depth_;
};

} // namespace gssr

#endif // GSSR_FRAME_DEPTH_MAP_HH
