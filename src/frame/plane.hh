/**
 * @file
 * Plane<T>: a dense, row-major 2-D array of samples. The fundamental
 * storage type for color channels, luma/chroma planes, depth buffers
 * and weight maps throughout the library.
 */

#ifndef GSSR_FRAME_PLANE_HH
#define GSSR_FRAME_PLANE_HH

#include <vector>

#include "common/logging.hh"
#include "common/simd.hh"
#include "common/types.hh"

namespace gssr
{

/**
 * Dense row-major 2-D sample array with bounds-checked access.
 * Storage is 32-byte-aligned (AlignedVec) so the SIMD kernel layer
 * can use aligned-friendly loads; the row pitch equals the width.
 *
 * @tparam T sample type (u8 for pixels, f32 for depth/NN data).
 */
template <typename T>
class Plane
{
  public:
    /** Empty 0x0 plane. */
    Plane() = default;

    /** Plane of @p width x @p height samples, value-initialized. */
    Plane(int width, int height, T fill_value = T{})
        : width_(width), height_(height),
          data_(size_t(i64(width) * i64(height)), fill_value)
    {
        GSSR_ASSERT(width >= 0 && height >= 0, "negative plane size");
    }

    /** Plane sized from a Size. */
    explicit Plane(Size size, T fill_value = T{})
        : Plane(size.width, size.height, fill_value)
    {}

    int width() const { return width_; }
    int height() const { return height_; }
    Size size() const { return {width_, height_}; }

    /** Total number of samples. */
    i64 sampleCount() const { return i64(width_) * i64(height_); }

    /** True when the plane holds no samples. */
    bool empty() const { return data_.empty(); }

    /** Bounds-checked sample access. */
    T &
    at(int x, int y)
    {
        checkBounds(x, y);
        return data_[size_t(i64(y) * width_ + x)];
    }

    /** Bounds-checked sample access (const). */
    const T &
    at(int x, int y) const
    {
        checkBounds(x, y);
        return data_[size_t(i64(y) * width_ + x)];
    }

    /** Sample access clamped to the plane edge (for filtering). */
    const T &
    atClamped(int x, int y) const
    {
        x = clamp(x, 0, width_ - 1);
        y = clamp(y, 0, height_ - 1);
        return data_[size_t(i64(y) * width_ + x)];
    }

    /** Raw row pointer (row @p y, unchecked within the row). */
    T *row(int y) { return &at(0, y); }
    const T *row(int y) const { return &at(0, y); }

    /** Flat sample storage in row-major order (32-byte-aligned). */
    AlignedVec<T> &data() { return data_; }
    const AlignedVec<T> &data() const { return data_; }

    /** Set every sample to @p value. */
    void
    fill(T value)
    {
        std::fill(data_.begin(), data_.end(), value);
    }

    /** Copy out the rectangle @p r (must lie inside the plane). */
    Plane<T>
    crop(const Rect &r) const
    {
        GSSR_ASSERT((Rect{0, 0, width_, height_}.contains(r)),
                    "crop rect outside plane");
        Plane<T> out(r.width, r.height);
        for (int y = 0; y < r.height; ++y) {
            const T *src = &at(r.x, r.y + y);
            T *dst = out.row(y);
            std::copy(src, src + r.width, dst);
        }
        return out;
    }

    /**
     * Paste @p src into this plane with its top-left corner at
     * (@p x, @p y). The pasted region must fit.
     */
    void
    blit(const Plane<T> &src, int x, int y)
    {
        Rect dst_rect{x, y, src.width(), src.height()};
        GSSR_ASSERT((Rect{0, 0, width_, height_}.contains(dst_rect)),
                    "blit rect outside plane");
        for (int sy = 0; sy < src.height(); ++sy) {
            const T *s = src.row(sy);
            T *d = &at(x, y + sy);
            std::copy(s, s + src.width(), d);
        }
    }

    bool
    operator==(const Plane<T> &o) const
    {
        return width_ == o.width_ && height_ == o.height_ &&
               data_ == o.data_;
    }

  private:
    void
    checkBounds(int x, int y) const
    {
        GSSR_ASSERT(x >= 0 && x < width_ && y >= 0 && y < height_,
                    "plane access out of bounds");
    }

    static int
    clamp(int v, int lo, int hi)
    {
        return v < lo ? lo : (v > hi ? hi : v);
    }

    int width_ = 0;
    int height_ = 0;
    AlignedVec<T> data_;
};

using PlaneU8 = Plane<u8>;
using PlaneF32 = Plane<f32>;
using PlaneF64 = Plane<f64>;

} // namespace gssr

#endif // GSSR_FRAME_PLANE_HH
