/**
 * @file
 * Binary PPM (P6) / PGM (P5) image reading and writing, used by the
 * examples to dump frames, depth maps and RoI visualizations.
 */

#ifndef GSSR_FRAME_IMAGE_IO_HH
#define GSSR_FRAME_IMAGE_IO_HH

#include <string>

#include "frame/image.hh"

namespace gssr
{

/** Write an RGB image as a binary PPM (P6) file. */
void writePpm(const std::string &path, const ColorImage &img);

/** Write a grayscale plane as a binary PGM (P5) file. */
void writePgm(const std::string &path, const PlaneU8 &plane);

/** Read a binary PPM (P6) file. Throws FatalError on malformed input. */
ColorImage readPpm(const std::string &path);

/** Read a binary PGM (P5) file. Throws FatalError on malformed input. */
PlaneU8 readPgm(const std::string &path);

} // namespace gssr

#endif // GSSR_FRAME_IMAGE_IO_HH
