#include "metrics/ssim.hh"

#include <array>
#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "kernels/kernels.hh"

namespace gssr
{

namespace
{

constexpr int kWindowRadius = 5; // 11x11 window
constexpr f64 kC1 = (0.01 * 255.0) * (0.01 * 255.0);
constexpr f64 kC2 = (0.03 * 255.0) * (0.03 * 255.0);

/** Samples per parallel chunk for elementwise/reduction passes. */
constexpr i64 kSampleGrain = 1 << 14;

using GaussKernel = std::array<f64, 2 * kWindowRadius + 1>;

/**
 * Shared normalized 11-tap Gaussian (sigma = 1.5), computed once for
 * the whole process. Both blur passes and every window read this one
 * table instead of rebuilding the weights, which also speeds up the
 * serial path.
 */
const GaussKernel &
gaussianKernel()
{
    static const GaussKernel table = [] {
        GaussKernel k{};
        f64 sum = 0.0;
        for (int i = -kWindowRadius; i <= kWindowRadius; ++i) {
            f64 w = std::exp(-f64(i * i) / (2.0 * 1.5 * 1.5));
            k[size_t(i + kWindowRadius)] = w;
            sum += w;
        }
        for (auto &w : k)
            w /= sum;
        return k;
    }();
    return table;
}

/**
 * Separable Gaussian blur of an f64 plane with edge clamping, through
 * the SIMD window kernels. Both passes parallelize over row bands
 * (each row writes only itself); the vertical pass hands each output
 * row the 11 pre-clamped source-row pointers so the kernel itself
 * stays branch-free. Per output sample the taps accumulate in
 * ascending order on both passes — identical to the reference loop.
 */
PlaneF64
blur(const PlaneF64 &in)
{
    const auto &kernel = gaussianKernel();
    const int h = in.height();
    const int w = in.width();
    PlaneF64 tmp(w, h);
    PlaneF64 out(w, h);
    parallelFor(0, h, 16, [&](i64 y_begin, i64 y_end) {
        for (int y = int(y_begin); y < int(y_end); ++y)
            kern::gaussRow(in.row(y), tmp.row(y), w, kernel.data(),
                           kWindowRadius);
    });
    parallelFor(0, h, 16, [&](i64 y_begin, i64 y_end) {
        const f64 *rows[2 * kWindowRadius + 1];
        for (int y = int(y_begin); y < int(y_end); ++y) {
            for (int i = -kWindowRadius; i <= kWindowRadius; ++i) {
                int sy = y + i;
                sy = sy < 0 ? 0 : (sy >= h ? h - 1 : sy);
                rows[i + kWindowRadius] = tmp.row(sy);
            }
            kern::weightedSumRows(rows, kernel.data(),
                                  2 * kWindowRadius + 1, out.row(y), w);
        }
    });
    return out;
}

PlaneF64
toF64(const PlaneU8 &in)
{
    PlaneF64 out(in.width(), in.height());
    parallelFor(0, in.sampleCount(), kSampleGrain,
                [&](i64 begin, i64 end) {
        kern::u8ToF64(in.data().data() + begin,
                      out.data().data() + begin, end - begin);
    });
    return out;
}

} // namespace

f64
ssim(const PlaneU8 &a8, const PlaneU8 &b8)
{
    GSSR_ASSERT(a8.size() == b8.size(), "SSIM of differently sized planes");
    GSSR_ASSERT(a8.sampleCount() > 0, "SSIM of empty planes");

    PlaneF64 a = toF64(a8);
    PlaneF64 b = toF64(b8);

    PlaneF64 a2(a.width(), a.height());
    PlaneF64 b2(a.width(), a.height());
    PlaneF64 ab(a.width(), a.height());
    parallelFor(0, a.sampleCount(), kSampleGrain,
                [&](i64 begin, i64 end) {
        kern::ssimProducts(a.data().data() + begin,
                           b.data().data() + begin,
                           a2.data().data() + begin,
                           b2.data().data() + begin,
                           ab.data().data() + begin, end - begin);
    });

    PlaneF64 mu_a = blur(a);
    PlaneF64 mu_b = blur(b);
    PlaneF64 s_a2 = blur(a2);
    PlaneF64 s_b2 = blur(b2);
    PlaneF64 s_ab = blur(ab);

    // Per-chunk partial sums merged in index order keep the window
    // reduction bit-exact at any thread count.
    f64 total = parallelReduce(
        0, a.sampleCount(), kSampleGrain, 0.0,
        [&](i64 begin, i64 end) {
            f64 acc = 0.0;
            for (i64 i = begin; i < end; ++i) {
                f64 ma = mu_a.data()[size_t(i)];
                f64 mb = mu_b.data()[size_t(i)];
                f64 var_a = s_a2.data()[size_t(i)] - ma * ma;
                f64 var_b = s_b2.data()[size_t(i)] - mb * mb;
                f64 cov = s_ab.data()[size_t(i)] - ma * mb;
                f64 num = (2.0 * ma * mb + kC1) * (2.0 * cov + kC2);
                f64 den =
                    (ma * ma + mb * mb + kC1) * (var_a + var_b + kC2);
                acc += num / den;
            }
            return acc;
        },
        [](f64 acc, f64 partial) { return acc + partial; });
    return total / f64(a.sampleCount());
}

f64
ssim(const ColorImage &a, const ColorImage &b)
{
    return ssim(toGrayscale(a), toGrayscale(b));
}

} // namespace gssr
