/**
 * @file
 * Perceptual patch similarity — the reproduction's stand-in for LPIPS
 * (paper Fig. 14b).
 *
 * LPIPS compares images in the feature space of a pretrained deep
 * network. No pretrained network is available offline, so we use a
 * fixed, seeded *random-convolution feature pyramid*: random deep
 * features are an established proxy for perceptual metrics (they
 * capture local structure/texture statistics, exactly what successive
 * bilinear interpolation destroys). The substitution is documented in
 * DESIGN.md §1.
 *
 * Properties preserved: (a) full-reference, (b) score in [0, 1] with
 * 0 = identical, (c) monotonically increasing under blur/detail loss,
 * (d) deterministic for a given seed.
 */

#ifndef GSSR_METRICS_PERCEPTUAL_HH
#define GSSR_METRICS_PERCEPTUAL_HH

#include <vector>

#include "frame/image.hh"

namespace gssr
{

/**
 * Fixed random-feature perceptual metric. Construct once (filters are
 * generated from the seed) and reuse across comparisons.
 */
class PerceptualMetric
{
  public:
    /** Configuration of the feature pyramid. */
    struct Config
    {
        /** Number of pyramid scales (each halves resolution). */
        int scales = 3;
        /** Random 3x3 filters per scale. */
        int filters_per_scale = 12;
        /** Seed for filter generation. */
        u64 seed = 0x5eed1234abcdULL;
    };

    /** Default configuration (3 scales, 12 filters). */
    PerceptualMetric();

    explicit PerceptualMetric(const Config &config);

    /**
     * Perceptual distance between two equally sized images, in [0, 1].
     * 0 means perceptually identical; larger means more different.
     */
    f64 distance(const ColorImage &a, const ColorImage &b) const;

  private:
    /** One 3x3 filter with zero mean and unit L2 norm. */
    struct Filter
    {
        f32 taps[9];
    };

    Config config_;
    std::vector<std::vector<Filter>> filters_; // [scale][filter]
};

} // namespace gssr

#endif // GSSR_METRICS_PERCEPTUAL_HH
