/**
 * @file
 * Pixel-wise full-reference quality metrics: mean squared error and
 * peak signal-to-noise ratio (PSNR), the objective metric of the
 * paper's Fig. 13 and Fig. 14a.
 */

#ifndef GSSR_METRICS_PSNR_HH
#define GSSR_METRICS_PSNR_HH

#include "frame/image.hh"

namespace gssr
{

/** Mean squared error between two equally sized planes. */
f64 meanSquaredError(const PlaneU8 &a, const PlaneU8 &b);

/** Mean squared error averaged over the three RGB channels. */
f64 meanSquaredError(const ColorImage &a, const ColorImage &b);

/**
 * PSNR in decibels for 8-bit data. Returns +infinity for identical
 * inputs. Computed over all three RGB channels.
 */
f64 psnr(const ColorImage &a, const ColorImage &b);

/** PSNR in decibels between two single planes (e.g. luma). */
f64 psnr(const PlaneU8 &a, const PlaneU8 &b);

} // namespace gssr

#endif // GSSR_METRICS_PSNR_HH
