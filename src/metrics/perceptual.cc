#include "metrics/perceptual.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace gssr
{

namespace
{

/** Luma plane scaled to [0, 1] floats. */
PlaneF32
toLumaF32(const ColorImage &img)
{
    PlaneF32 out(img.width(), img.height());
    for (int y = 0; y < img.height(); ++y) {
        for (int x = 0; x < img.width(); ++x) {
            f64 luma = 0.299 * img.r().at(x, y) +
                       0.587 * img.g().at(x, y) +
                       0.114 * img.b().at(x, y);
            out.at(x, y) = f32(luma / 255.0);
        }
    }
    return out;
}

/** 2x box-filter downsample (trailing odd row/column dropped). */
PlaneF32
downsample2(const PlaneF32 &in)
{
    PlaneF32 out(in.width() / 2, in.height() / 2);
    for (int y = 0; y < out.height(); ++y) {
        for (int x = 0; x < out.width(); ++x) {
            f32 acc = in.at(x * 2, y * 2) + in.at(x * 2 + 1, y * 2) +
                      in.at(x * 2, y * 2 + 1) +
                      in.at(x * 2 + 1, y * 2 + 1);
            out.at(x, y) = acc * 0.25f;
        }
    }
    return out;
}

} // namespace

PerceptualMetric::PerceptualMetric() : PerceptualMetric(Config{}) {}

PerceptualMetric::PerceptualMetric(const Config &config)
    : config_(config)
{
    GSSR_ASSERT(config_.scales >= 1, "need at least one pyramid scale");
    GSSR_ASSERT(config_.filters_per_scale >= 1, "need at least one filter");

    Rng rng(config_.seed);
    filters_.resize(size_t(config_.scales));
    for (auto &scale_filters : filters_) {
        scale_filters.resize(size_t(config_.filters_per_scale));
        for (auto &filter : scale_filters) {
            // Draw Gaussian taps, remove the mean (so flat regions give
            // zero response) and normalize to unit energy.
            f64 mean = 0.0;
            for (auto &tap : filter.taps) {
                tap = f32(rng.normal());
                mean += tap;
            }
            mean /= 9.0;
            f64 norm = 0.0;
            for (auto &tap : filter.taps) {
                tap = f32(tap - mean);
                norm += f64(tap) * f64(tap);
            }
            norm = std::sqrt(norm);
            GSSR_ASSERT(norm > 1e-9, "degenerate random filter");
            for (auto &tap : filter.taps)
                tap = f32(tap / norm);
        }
    }
}

f64
PerceptualMetric::distance(const ColorImage &a, const ColorImage &b) const
{
    GSSR_ASSERT(a.size() == b.size(),
                "perceptual distance of differently sized images");
    GSSR_ASSERT(!a.empty(), "perceptual distance of empty images");

    PlaneF32 la = toLumaF32(a);
    PlaneF32 lb = toLumaF32(b);

    f64 total = 0.0;
    int scales_used = 0;

    for (int scale = 0; scale < config_.scales; ++scale) {
        if (scale > 0) {
            if (la.width() < 6 || la.height() < 6)
                break;
            la = downsample2(la);
            lb = downsample2(lb);
        }
        const auto &bank = filters_[size_t(scale)];
        const int nf = int(bank.size());

        f64 scale_acc = 0.0;
        i64 pixel_count = 0;
        const size_t nf_s = size_t(nf);
        std::vector<f64> fa(nf_s);
        std::vector<f64> fb(nf_s);

        for (int y = 1; y + 1 < la.height(); ++y) {
            for (int x = 1; x + 1 < la.width(); ++x) {
                f64 na = 0.0, nb = 0.0;
                for (int k = 0; k < nf; ++k) {
                    const auto &f = bank[size_t(k)];
                    f64 ra = 0.0, rb = 0.0;
                    int t = 0;
                    for (int dy = -1; dy <= 1; ++dy) {
                        for (int dx = -1; dx <= 1; ++dx, ++t) {
                            ra += f.taps[t] * la.at(x + dx, y + dy);
                            rb += f.taps[t] * lb.at(x + dx, y + dy);
                        }
                    }
                    fa[size_t(k)] = ra;
                    fb[size_t(k)] = rb;
                    na += ra * ra;
                    nb += rb * rb;
                }
                // Unit-normalize the per-pixel feature vectors (LPIPS
                // style) with an epsilon guard for flat regions.
                constexpr f64 eps = 1e-6;
                na = std::sqrt(na) + eps;
                nb = std::sqrt(nb) + eps;
                f64 d = 0.0;
                for (int k = 0; k < nf; ++k) {
                    f64 diff = fa[size_t(k)] / na - fb[size_t(k)] / nb;
                    d += diff * diff;
                }
                // Max of ||ua - ub||^2 for unit vectors is 4.
                scale_acc += d / 4.0;
                pixel_count += 1;
            }
        }
        if (pixel_count > 0) {
            total += scale_acc / f64(pixel_count);
            scales_used += 1;
        }
    }
    GSSR_ASSERT(scales_used > 0, "image too small for perceptual metric");
    return total / f64(scales_used);
}

} // namespace gssr
