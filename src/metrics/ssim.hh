/**
 * @file
 * Structural similarity (SSIM) index, computed on luma with the
 * standard 11x11 Gaussian window (sigma = 1.5) of Wang et al.
 */

#ifndef GSSR_METRICS_SSIM_HH
#define GSSR_METRICS_SSIM_HH

#include "frame/image.hh"

namespace gssr
{

/** Mean SSIM between two equally sized luma planes, in [-1, 1]. */
f64 ssim(const PlaneU8 &a, const PlaneU8 &b);

/** Mean SSIM between the BT.601 lumas of two RGB images. */
f64 ssim(const ColorImage &a, const ColorImage &b);

} // namespace gssr

#endif // GSSR_METRICS_SSIM_HH
