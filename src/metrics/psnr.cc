#include "metrics/psnr.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/parallel.hh"

namespace gssr
{

f64
meanSquaredError(const PlaneU8 &a, const PlaneU8 &b)
{
    GSSR_ASSERT(a.size() == b.size(), "MSE of differently sized planes");
    GSSR_ASSERT(a.sampleCount() > 0, "MSE of empty planes");
    const auto &da = a.data();
    const auto &db = b.data();
    // Fixed-layout chunks merged in index order: bit-exact sum at any
    // thread count.
    f64 acc = parallelReduce(
        0, a.sampleCount(), i64(1) << 15, 0.0,
        [&](i64 begin, i64 end) {
            f64 part = 0.0;
            for (i64 i = begin; i < end; ++i) {
                f64 diff = f64(da[size_t(i)]) - f64(db[size_t(i)]);
                part += diff * diff;
            }
            return part;
        },
        [](f64 x, f64 y) { return x + y; });
    return acc / f64(a.sampleCount());
}

f64
meanSquaredError(const ColorImage &a, const ColorImage &b)
{
    return (meanSquaredError(a.r(), b.r()) +
            meanSquaredError(a.g(), b.g()) +
            meanSquaredError(a.b(), b.b())) / 3.0;
}

namespace
{

f64
mseToPsnr(f64 mse)
{
    if (mse <= 0.0)
        return std::numeric_limits<f64>::infinity();
    return 10.0 * std::log10(255.0 * 255.0 / mse);
}

} // namespace

f64
psnr(const ColorImage &a, const ColorImage &b)
{
    return mseToPsnr(meanSquaredError(a, b));
}

f64
psnr(const PlaneU8 &a, const PlaneU8 &b)
{
    return mseToPsnr(meanSquaredError(a, b));
}

} // namespace gssr
