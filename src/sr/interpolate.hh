/**
 * @file
 * Classical interpolation-based upscaling: bilinear (the paper's
 * non-RoI / baseline path), bicubic and Lanczos-3 (the higher-quality
 * kernels proposed for the RoI-guided SR-integrated decoder of
 * Sec. VI). All resizers use half-pixel-centre alignment.
 */

#ifndef GSSR_SR_INTERPOLATE_HH
#define GSSR_SR_INTERPOLATE_HH

#include "frame/image.hh"

namespace gssr
{

/** Interpolation kernel selection. */
enum class InterpKernel
{
    Bilinear,
    Bicubic,  ///< Catmull-Rom (a = -0.5)
    Lanczos3,
};

/** Human-readable kernel name. */
const char *interpKernelName(InterpKernel kernel);

/** Resize a u8 plane to @p target with the given kernel. */
PlaneU8 resizePlane(const PlaneU8 &in, Size target,
                    InterpKernel kernel = InterpKernel::Bilinear);

/** Resize a float plane (residuals, weights, depth). */
PlaneF32 resizePlane(const PlaneF32 &in, Size target,
                     InterpKernel kernel = InterpKernel::Bilinear);

/** Resize an RGB image channel-wise. */
ColorImage resizeImage(const ColorImage &in, Size target,
                       InterpKernel kernel = InterpKernel::Bilinear);

/**
 * Approximate arithmetic operation count of resizing to @p target
 * with @p kernel (drives the CPU/GPU latency models).
 */
i64 resizeOpCount(Size target, InterpKernel kernel);

} // namespace gssr

#endif // GSSR_SR_INTERPOLATE_HH
