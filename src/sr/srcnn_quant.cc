#include "sr/srcnn_quant.hh"

#include <algorithm>

namespace gssr
{

namespace
{

/** Activation width of a per-layer precision (Fp32 has none). */
QuantBits
actBitsFor(Precision p)
{
    GSSR_ASSERT(p == Precision::Int8 || p == Precision::Int16,
                "per-layer precision must be Int8 or Int16");
    return p == Precision::Int8 ? QuantBits::Int8 : QuantBits::Int16;
}

/** Mean squared difference between two same-shaped tensors. */
f64
meanSquaredError(const Tensor &a, const Tensor &b)
{
    GSSR_ASSERT(a.sameShape(b), "MSE shape mismatch");
    f64 sum = 0.0;
    for (size_t i = 0; i < a.data().size(); ++i) {
        f64 d = f64(a.data()[i]) - f64(b.data()[i]);
        sum += d * d;
    }
    return sum / f64(std::max<i64>(1, a.elementCount()));
}

} // namespace

SrCalibration
calibrateSrNet(const CompactSrNet &net, const std::vector<Tensor> &inputs)
{
    GSSR_ASSERT(!inputs.empty(), "calibration needs at least one input");
    SrCalibration cal;
    for (const Tensor &input : inputs) {
        GSSR_ASSERT(input.channels() == 1,
                    "SR calibration input must be single-channel luma");
        cal.conv1_in.observe(input);
        Tensor a1 = Relu::forward(net.conv1().forward(input));
        cal.conv2_in.observe(a1);
        Tensor a2 = Relu::forward(net.conv2().forward(a1));
        cal.conv3_in.observe(a2);
    }
    return cal;
}

QuantizedSrNet::QuantizedSrNet(std::shared_ptr<const CompactSrNet> net,
                               const PrecisionPlan &plan,
                               const SrCalibration &calibration)
    : net_(std::move(net)), plan_(plan)
{
    GSSR_ASSERT(net_ != nullptr, "QuantizedSrNet needs a net");
    GSSR_ASSERT(plan_.layers.size() == size_t(CompactSrNet::kConvLayers),
                "PrecisionPlan must cover all three conv layers");
    const ChannelRanges *ranges[CompactSrNet::kConvLayers] = {
        &calibration.conv1_in, &calibration.conv2_in,
        &calibration.conv3_in};
    const Conv2d *convs[CompactSrNet::kConvLayers] = {
        &net_->conv1(), &net_->conv2(), &net_->conv3()};
    std::optional<QuantizedConv2d> *slots[CompactSrNet::kConvLayers] = {
        &q1_, &q2_, &q3_};
    for (int li = 0; li < CompactSrNet::kConvLayers; ++li) {
        Precision p = plan_.layers[size_t(li)];
        if (p == Precision::Fp32)
            continue;
        QuantBits bits = actBitsFor(p);
        slots[li]->emplace(*convs[li], bits,
                           ranges[li]->tensorScale(bits));
    }
}

Tensor
QuantizedSrNet::forward(const Tensor &input) const
{
    GSSR_ASSERT(input.channels() == 1,
                "quantized SR net expects single-channel luma");
    Tensor a1 = Relu::forward(q1_ ? q1_->forward(input)
                                  : net_->conv1().forward(input));
    Tensor a2 = Relu::forward(q2_ ? q2_->forward(a1)
                                  : net_->conv2().forward(a1));
    Tensor z3 = q3_ ? q3_->forward(a2) : net_->conv3().forward(a2);
    PixelShuffle shuffle(net_->config().scale);
    Tensor residual = shuffle.forward(z3);
    Tensor out =
        bilinearUpscaleTensor(input, net_->config().scale);
    out.add(residual);
    return out;
}

std::vector<f64>
layerSensitivity(const std::shared_ptr<const CompactSrNet> &net,
                 const SrCalibration &calibration,
                 const std::vector<Tensor> &inputs)
{
    GSSR_ASSERT(!inputs.empty(), "sensitivity needs calibration inputs");
    std::vector<Tensor> references;
    references.reserve(inputs.size());
    for (const Tensor &input : inputs)
        references.push_back(net->forward(input));

    std::vector<f64> sensitivity(CompactSrNet::kConvLayers, 0.0);
    for (int li = 0; li < CompactSrNet::kConvLayers; ++li) {
        PrecisionPlan plan = PrecisionPlan::uniform(
            CompactSrNet::kConvLayers, Precision::Fp32);
        plan.layers[size_t(li)] = Precision::Int8;
        QuantizedSrNet probe(net, plan, calibration);
        f64 mse = 0.0;
        for (size_t i = 0; i < inputs.size(); ++i)
            mse += meanSquaredError(probe.forward(inputs[i]),
                                    references[i]);
        sensitivity[size_t(li)] = mse / f64(inputs.size());
    }
    return sensitivity;
}

PrecisionPlan
hybridPlan(const std::shared_ptr<const CompactSrNet> &net,
           const SrCalibration &calibration,
           const std::vector<Tensor> &inputs, int wide_layers)
{
    GSSR_ASSERT(wide_layers >= 0 &&
                    wide_layers <= CompactSrNet::kConvLayers,
                "wide-layer budget out of range");
    std::vector<f64> sens = layerSensitivity(net, calibration, inputs);

    // Rank layers by descending sensitivity; ties break on the lower
    // layer index so the plan is deterministic.
    std::vector<int> order(sens.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = int(i);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return sens[size_t(a)] > sens[size_t(b)];
    });

    PrecisionPlan plan = PrecisionPlan::uniform(
        CompactSrNet::kConvLayers, Precision::Int8);
    plan.name = precisionName(Precision::HybridInt8);
    for (int i = 0; i < wide_layers; ++i)
        plan.layers[size_t(order[size_t(i)])] = Precision::Int16;
    return plan;
}

PrecisionPlan
planForPrecision(const std::shared_ptr<const CompactSrNet> &net,
                 const SrCalibration &calibration,
                 const std::vector<Tensor> &inputs, Precision p)
{
    if (p == Precision::HybridInt8)
        return hybridPlan(net, calibration, inputs);
    return PrecisionPlan::uniform(CompactSrNet::kConvLayers, p);
}

} // namespace gssr
