/**
 * @file
 * Hybrid-precision quantized inference for the trained CompactSrNet
 * (NAWQ-SR direction): a calibration pass runs the float network over
 * representative luma inputs and records per-layer activation ranges;
 * QuantizedSrNet then re-executes the forward chain with each conv at
 * its PrecisionPlan precision (Fp32 reference layer, or int8-weight
 * QuantizedConv2d with int8/int16 activations), keeping ReLU, the
 * PixelShuffle and the global bilinear residual in float exactly as
 * the reference network does.
 *
 * The hybrid schedule is data-driven: layerSensitivity() measures the
 * output MSE of quantizing each conv alone to int8, and hybridPlan()
 * keeps the most sensitive layers at int16 activations while the rest
 * run int8 — the NAWQ-SR policy at CompactSrNet scale.
 */

#ifndef GSSR_SR_SRCNN_QUANT_HH
#define GSSR_SR_SRCNN_QUANT_HH

#include <memory>
#include <optional>
#include <vector>

#include "nn/quant.hh"
#include "sr/srcnn.hh"

namespace gssr
{

/**
 * Per-layer activation ranges of a CompactSrNet over a calibration
 * set: the observed inputs of conv1, conv2 and conv3.
 */
struct SrCalibration
{
    ChannelRanges conv1_in; ///< network input (luma, 1 channel)
    ChannelRanges conv2_in; ///< ReLU(conv1) activations
    ChannelRanges conv3_in; ///< ReLU(conv2) activations
};

/**
 * Run the float network over @p inputs (each a (1, h, w) luma tensor)
 * and collect the per-layer activation ranges.
 */
SrCalibration calibrateSrNet(const CompactSrNet &net,
                             const std::vector<Tensor> &inputs);

/**
 * CompactSrNet with a per-layer post-training-quantized forward pass.
 * Holds the float reference network (shared) plus one QuantizedConv2d
 * per non-Fp32 plan entry; Fp32 entries run the reference layer, so a
 * plan of all-Fp32 reproduces CompactSrNet::forward() bit for bit.
 */
class QuantizedSrNet
{
  public:
    /**
     * @param net trained reference network (shared, not copied).
     * @param plan per-layer precision schedule (3 entries).
     * @param calibration activation ranges for the layer boundaries.
     */
    QuantizedSrNet(std::shared_ptr<const CompactSrNet> net,
                   const PrecisionPlan &plan,
                   const SrCalibration &calibration);

    /** Upscale a (1, h, w) luma tensor to (1, h*r, w*r). */
    Tensor forward(const Tensor &input) const;

    const PrecisionPlan &plan() const { return plan_; }

  private:
    std::shared_ptr<const CompactSrNet> net_;
    PrecisionPlan plan_;
    std::optional<QuantizedConv2d> q1_;
    std::optional<QuantizedConv2d> q2_;
    std::optional<QuantizedConv2d> q3_;
};

/**
 * Quantization sensitivity of each conv layer: mean output MSE vs the
 * float network over @p inputs when that layer alone runs int8. The
 * ranking is what hybridPlan() spends its wide-precision budget on.
 */
std::vector<f64>
layerSensitivity(const std::shared_ptr<const CompactSrNet> &net,
                 const SrCalibration &calibration,
                 const std::vector<Tensor> &inputs);

/**
 * NAWQ-style hybrid schedule: the @p wide_layers most sensitive
 * layers get int16 activations, the rest int8 (weights are int8
 * everywhere). Plan name: "hybrid-int8".
 */
PrecisionPlan
hybridPlan(const std::shared_ptr<const CompactSrNet> &net,
           const SrCalibration &calibration,
           const std::vector<Tensor> &inputs, int wide_layers = 1);

/**
 * Expand a network-level Precision knob into a per-layer plan:
 * Fp32/Int16/Int8 map to uniform plans, HybridInt8 to hybridPlan().
 */
PrecisionPlan
planForPrecision(const std::shared_ptr<const CompactSrNet> &net,
                 const SrCalibration &calibration,
                 const std::vector<Tensor> &inputs, Precision p);

} // namespace gssr

#endif // GSSR_SR_SRCNN_QUANT_HH
