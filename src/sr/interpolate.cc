#include "sr/interpolate.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/mathutil.hh"

namespace gssr
{

namespace
{

/** Kernel support radius (taps = 2 * radius). */
int
kernelRadius(InterpKernel kernel)
{
    switch (kernel) {
      case InterpKernel::Bilinear:
        return 1;
      case InterpKernel::Bicubic:
        return 2;
      case InterpKernel::Lanczos3:
        return 3;
    }
    return 1;
}

/** Kernel weight at distance @p t. */
f64
kernelWeight(InterpKernel kernel, f64 t)
{
    t = std::abs(t);
    switch (kernel) {
      case InterpKernel::Bilinear:
        return t < 1.0 ? 1.0 - t : 0.0;
      case InterpKernel::Bicubic: {
        // Catmull-Rom (Keys, a = -0.5).
        constexpr f64 a = -0.5;
        if (t < 1.0)
            return ((a + 2.0) * t - (a + 3.0)) * t * t + 1.0;
        if (t < 2.0)
            return (((t - 5.0) * t + 8.0) * t - 4.0) * a;
        return 0.0;
      }
      case InterpKernel::Lanczos3: {
        if (t < 1e-9)
            return 1.0;
        if (t >= 3.0)
            return 0.0;
        f64 pit = M_PI * t;
        return 3.0 * std::sin(pit) * std::sin(pit / 3.0) / (pit * pit);
    }
    }
    return 0.0;
}

/**
 * Generic separable resize. Samples are fetched clamped; weights are
 * renormalized per output pixel so edges stay unbiased.
 */
template <typename T, typename Fetch, typename Store>
void
resizeGeneric(int in_w, int in_h, int out_w, int out_h,
              InterpKernel kernel, Fetch fetch, Store store)
{
    const int radius = kernelRadius(kernel);
    const f64 sx = f64(in_w) / f64(out_w);
    const f64 sy = f64(in_h) / f64(out_h);

    // Horizontal pass into a temporary float buffer.
    std::vector<f64> tmp(size_t(out_w) * size_t(in_h));
    for (int x = 0; x < out_w; ++x) {
        f64 src_x = (x + 0.5) * sx - 0.5;
        int x0 = int(std::floor(src_x)) - radius + 1;
        f64 weights[8];
        f64 weight_sum = 0.0;
        int taps = 2 * radius;
        for (int k = 0; k < taps; ++k) {
            weights[k] = kernelWeight(kernel, src_x - (x0 + k));
            weight_sum += weights[k];
        }
        for (int y = 0; y < in_h; ++y) {
            f64 acc = 0.0;
            for (int k = 0; k < taps; ++k)
                acc += weights[k] * fetch(x0 + k, y);
            tmp[size_t(y) * size_t(out_w) + size_t(x)] =
                acc / weight_sum;
        }
    }

    // Vertical pass.
    for (int y = 0; y < out_h; ++y) {
        f64 src_y = (y + 0.5) * sy - 0.5;
        int y0 = int(std::floor(src_y)) - radius + 1;
        f64 weights[8];
        f64 weight_sum = 0.0;
        int taps = 2 * radius;
        for (int k = 0; k < taps; ++k) {
            weights[k] = kernelWeight(kernel, src_y - (y0 + k));
            weight_sum += weights[k];
        }
        for (int x = 0; x < out_w; ++x) {
            f64 acc = 0.0;
            for (int k = 0; k < taps; ++k) {
                int yy = clamp(y0 + k, 0, in_h - 1);
                acc += weights[k] *
                       tmp[size_t(yy) * size_t(out_w) + size_t(x)];
            }
            store(x, y, acc / weight_sum);
        }
    }
}

} // namespace

const char *
interpKernelName(InterpKernel kernel)
{
    switch (kernel) {
      case InterpKernel::Bilinear:
        return "bilinear";
      case InterpKernel::Bicubic:
        return "bicubic";
      case InterpKernel::Lanczos3:
        return "lanczos3";
    }
    return "?";
}

PlaneU8
resizePlane(const PlaneU8 &in, Size target, InterpKernel kernel)
{
    GSSR_ASSERT(!in.empty() && target.width > 0 && target.height > 0,
                "resize of empty plane");
    PlaneU8 out(target.width, target.height);
    resizeGeneric<u8>(
        in.width(), in.height(), target.width, target.height, kernel,
        [&](int x, int y) { return f64(in.atClamped(x, y)); },
        [&](int x, int y, f64 v) { out.at(x, y) = toPixel(v); });
    return out;
}

PlaneF32
resizePlane(const PlaneF32 &in, Size target, InterpKernel kernel)
{
    GSSR_ASSERT(!in.empty() && target.width > 0 && target.height > 0,
                "resize of empty plane");
    PlaneF32 out(target.width, target.height);
    resizeGeneric<f32>(
        in.width(), in.height(), target.width, target.height, kernel,
        [&](int x, int y) { return f64(in.atClamped(x, y)); },
        [&](int x, int y, f64 v) { out.at(x, y) = f32(v); });
    return out;
}

ColorImage
resizeImage(const ColorImage &in, Size target, InterpKernel kernel)
{
    ColorImage out(target.width, target.height);
    out.r() = resizePlane(in.r(), target, kernel);
    out.g() = resizePlane(in.g(), target, kernel);
    out.b() = resizePlane(in.b(), target, kernel);
    return out;
}

i64
resizeOpCount(Size target, InterpKernel kernel)
{
    // Separable filter: taps MACs per pixel per pass, two passes,
    // three channels.
    i64 taps = 2 * kernelRadius(kernel);
    return target.area() * taps * 2 * 3;
}

} // namespace gssr
