/**
 * @file
 * CompactSrNet: a small trainable residual super-resolution CNN
 * (ESPCN/VDSR-flavored) that is trained *in-process* on renderer
 * output and serves as the executable quality stand-in for a trained
 * EDSR (see DESIGN.md §1: a randomly initialized EDSR cannot beat
 * bilinear; a trained compact net preserves the DNN-SR > interpolation
 * quality ordering the paper's experiments rely on).
 *
 * Architecture (luma, [0,1]):
 *   conv 1->C (3x3) + ReLU
 *   conv C->C (3x3) + ReLU
 *   conv C->r^2 (3x3)
 *   PixelShuffle(r)
 *   output = bilinear_upscale(input) + network residual
 *
 * The global residual connection guarantees the untrained network
 * starts at bilinear quality and training can only sharpen from
 * there.
 */

#ifndef GSSR_SR_SRCNN_HH
#define GSSR_SR_SRCNN_HH

#include <string>

#include "nn/layers.hh"
#include "nn/optimizer.hh"

namespace gssr
{

/** CompactSrNet hyperparameters. */
struct CompactSrConfig
{
    int channels = 14;
    int scale = 2;
    u64 seed = 3;
};

/** Trainable compact SR network operating on single-channel tensors. */
class CompactSrNet
{
  public:
    CompactSrNet();

    explicit CompactSrNet(const CompactSrConfig &config);

    /** Upscale a (1, h, w) tensor to (1, h*r, w*r). */
    Tensor forward(const Tensor &input) const;

    /**
     * One training step on an (input, target) pair: forward, MSE
     * loss, backward, gradient accumulation. Caller owns the Adam
     * step (allows mini-batching by accumulating several pairs).
     * @return the MSE loss of this pair.
     */
    f64 accumulateGradients(const Tensor &input, const Tensor &target);

    /** Trainable parameters for the optimizer / serialization. */
    std::vector<ParamRef> params();

    /** Multiply-accumulate count for an h x w input. */
    i64 macs(int h, int w) const;

    /** Save weights to @p path. */
    void save(const std::string &path);

    /** Load weights from @p path; false if the file is absent. */
    bool load(const std::string &path);

    const CompactSrConfig &config() const { return config_; }

    /** Number of conv layers (the unit of a PrecisionPlan entry). */
    static constexpr int kConvLayers = 3;

    /** The trained conv layers, in forward order — consumed by the
     *  quantized inference wrapper (sr/srcnn_quant.hh), which
     *  re-runs the forward chain with per-layer precision. */
    const Conv2d &conv1() const { return conv1_; }
    const Conv2d &conv2() const { return conv2_; }
    const Conv2d &conv3() const { return conv3_; }

  private:
    /** Forward pass retaining intermediate activations. */
    struct Activations
    {
        Tensor z1, a1, z2, a2, z3;
        Tensor base; // bilinear-upscaled input
    };

    Tensor forwardInternal(const Tensor &input, Activations *acts) const;

    CompactSrConfig config_;
    Conv2d conv1_;
    Conv2d conv2_;
    Conv2d conv3_;
    PixelShuffle shuffle_;
};

/** Bilinear x-factor upscale of a (1, h, w) tensor (shared helper). */
Tensor bilinearUpscaleTensor(const Tensor &input, int factor);

} // namespace gssr

#endif // GSSR_SR_SRCNN_HH
