/**
 * @file
 * In-process training of CompactSrNet on (low-res, high-res) luma
 * pairs produced by the game renderer — patch sampling, Adam updates
 * and PSNR evaluation.
 */

#ifndef GSSR_SR_TRAINER_HH
#define GSSR_SR_TRAINER_HH

#include <vector>

#include "sr/srcnn.hh"

namespace gssr
{

/** One aligned training pair (HR is scale x the LR size). */
struct TrainingPair
{
    PlaneU8 lr_luma;
    PlaneU8 hr_luma;
};

/** Training configuration. */
struct TrainerConfig
{
    int iterations = 1500;
    int patch_size = 48; ///< LR patch edge length
    int batch_size = 4;  ///< pairs accumulated per Adam step
    f64 learning_rate = 2e-3;
    u64 seed = 11;
};

/**
 * Patch-based SR trainer.
 */
class SrTrainer
{
  public:
    /** @param net the network to train (borrowed). */
    SrTrainer(CompactSrNet &net, const TrainerConfig &config);

    /** Register a training pair (copied). */
    void addPair(PlaneU8 lr_luma, PlaneU8 hr_luma);

    /**
     * Run the configured number of iterations.
     * @return final smoothed training loss.
     */
    f64 train();

    /** Mean luma PSNR of the net over full registered pairs. */
    f64 evaluatePsnr() const;

    /** Mean luma PSNR of plain bilinear over the registered pairs. */
    f64 bilinearPsnr() const;

  private:
    CompactSrNet &net_;
    TrainerConfig config_;
    std::vector<TrainingPair> pairs_;
};

/**
 * Convenience: obtain a CompactSrNet trained on frames of the given
 * game worlds, cached at @p cache_path (trained once, then reloaded).
 * Training data: luma of LR/HR renders of a few frames per world.
 *
 * @param cache_path weights cache file ("" disables caching).
 */
CompactSrNet trainedSrNet(const std::string &cache_path,
                          const TrainerConfig &config = TrainerConfig{});

} // namespace gssr

#endif // GSSR_SR_TRAINER_HH
